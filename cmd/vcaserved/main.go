// Command vcaserved runs the simulation sweep service: a long-running
// HTTP daemon that accepts config-space sweep jobs, executes them on
// the memoized simulator with per-tenant fair scheduling, and streams
// per-cell results (with the full event-counter map) as they land.
//
// Usage:
//
//	vcaserved                                  # serve on :8437, cache in .simcache
//	vcaserved -addr 127.0.0.1:0 -cachedir /var/cache/vca
//	vcaserved -workers 8 -queue 8192 -maxcells 2048 -jobtimeout 30m
//	vcaserved -route http://10.0.0.1:8437,http://10.0.0.2:8437
//
// With -route the daemon runs as a shard router instead of a worker:
// it serves the identical API, but dispatches each cell to the worker
// owning its cache key on a consistent-hash ring, so identical cells
// from any tenant hit the same worker's cache and singleflight table
// (internal/server/shard; topology runbook in docs/SERVICE.md).
//
// Endpoints (full reference with request/response schemas and curl
// examples in docs/SERVICE.md):
//
//	POST /v1/sweeps               submit a sweep (202 + job id)
//	GET  /v1/sweeps/{id}          poll status
//	GET  /v1/sweeps/{id}/results  stream NDJSON results as they land
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (503 while draining)
//	GET  /metrics                 Prometheus text format
//	GET  /metrics.json            raw metric samples (router scrape feed)
//	GET  /debug/pprof/            live profiling (only with -pprof)
//
// On SIGTERM or SIGINT the daemon drains gracefully: /readyz turns 503
// and new submissions are refused, while queued and running cells
// finish within -draintimeout; cells still running after that are
// abandoned and reported failed. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vca/internal/server"
	"vca/internal/server/shard"
	"vca/internal/simcache"
)

var (
	flagAddr     = flag.String("addr", ":8437", "listen address (host:port; port 0 picks a free port and prints it)")
	flagCacheDir = flag.String("cachedir", ".simcache", "shared result-cache directory (content-addressed; safe to share with cmd/experiments)")
	flagNoCache  = flag.Bool("nocache", false, "serve without the shared result store: every cell simulates, singleflight dedup is disabled (testing only)")

	flagWorkers    = flag.Int("workers", 0, "cell-executing worker goroutines (0 = GOMAXPROCS)")
	flagQueue      = flag.Int("queue", 4096, "maximum queued cells across all tenants; submissions beyond it get HTTP 429")
	flagMaxCells   = flag.Int("maxcells", 1024, "maximum cells one sweep may expand to; larger submissions get HTTP 400")
	flagJobTimeout = flag.Duration("jobtimeout", 10*time.Minute, "default per-job wall-time budget (requests may override with timeout_sec)")

	flagRoute    = flag.String("route", "", "run as a shard router over this comma-separated worker URL list instead of executing cells locally")
	flagVNodes   = flag.Int("vnodes", 128, "router: virtual nodes per worker on the consistent-hash ring")
	flagInflight = flag.Int("inflight", 16, "router: concurrent cell dispatches per worker")

	flagStreamTimeout = flag.Duration("streamtimeout", time.Minute, "per-result write deadline on NDJSON result streams; a reader stalled longer loses its stream (negative disables)")
	flagPprof         = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator-only; see docs/SERVICE.md)")

	flagDrainTimeout = flag.Duration("draintimeout", 30*time.Second, "on SIGTERM/SIGINT, how long to let queued and running cells finish before abandoning them")
)

// service is what main needs from either mode: the worker (server.New)
// and the router (shard.New) both serve the same API and drain the same
// way — one binary, two roles.
type service interface {
	Handler() http.Handler
	Drain(context.Context) error
}

// workerOnlyFlags cannot take effect in -route mode; passing one
// explicitly is a configuration error, not something to ignore.
var workerOnlyFlags = map[string]bool{
	"cachedir": true, "nocache": true, "workers": true, "queue": true,
}

// routerOnlyFlags likewise only make sense with -route.
var routerOnlyFlags = map[string]bool{"vnodes": true, "inflight": true}

func buildService() (service, error) {
	if *flagRoute == "" {
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			if routerOnlyFlags[f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return nil, fmt.Errorf("%s only apply with -route", strings.Join(bad, ", "))
		}
		var cache *simcache.Cache
		if !*flagNoCache {
			var err error
			cache, err = simcache.Open(*flagCacheDir)
			if err != nil {
				return nil, err
			}
		}
		return server.New(server.Options{
			Cache:              cache,
			Workers:            *flagWorkers,
			QueueLimit:         *flagQueue,
			MaxCellsPerSweep:   *flagMaxCells,
			JobTimeout:         *flagJobTimeout,
			StreamWriteTimeout: *flagStreamTimeout,
			EnablePprof:        *flagPprof,
		}), nil
	}

	var bad []string
	flag.Visit(func(f *flag.Flag) {
		if workerOnlyFlags[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return nil, fmt.Errorf("%s do not apply with -route (cells execute on the workers)", strings.Join(bad, ", "))
	}
	return shard.New(shard.Options{
		Workers:            strings.Split(*flagRoute, ","),
		VNodes:             *flagVNodes,
		Inflight:           *flagInflight,
		MaxCellsPerSweep:   *flagMaxCells,
		JobTimeout:         *flagJobTimeout,
		StreamWriteTimeout: *flagStreamTimeout,
		EnablePprof:        *flagPprof,
	})
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"vcaserved — simulation sweep service (API reference and runbook: docs/SERVICE.md)\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vcaserved: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	svc, err := buildService()
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	// The smoke harnesses (internal/tools/servesmoke, shardsmoke) parse
	// this line to learn the bound port; keep the format stable.
	fmt.Printf("vcaserved: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vcaserved: %v — draining (up to %v; signal again to exit now)\n", sig, *flagDrainTimeout)
	}

	// Second signal: abandon the drain.
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "vcaserved: second signal, exiting immediately")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *flagDrainTimeout)
	defer cancel()
	drainErr := svc.Drain(ctx)
	httpSrv.Shutdown(ctx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "vcaserved: drain incomplete, in-flight cells abandoned: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "vcaserved: drained cleanly")
}

func fail(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "vcaserved:", err)
	os.Exit(1)
}
