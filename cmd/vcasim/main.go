// Command vcasim runs one benchmark (or a multiprogrammed set) on a
// chosen machine model and prints the measurements.
//
// Usage:
//
//	vcasim -bench crafty -arch vca-windowed -regs 128
//	vcasim -bench crafty,mesa -arch vca-flat -regs 192          # 2-thread SMT
//	vcasim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	vca "vca"
	"vca/internal/minic"
	"vca/internal/workload"
)

var (
	flagBench = flag.String("bench", "crafty", "comma-separated benchmark names (one per thread)")
	flagArch  = flag.String("arch", "baseline", "baseline | conv-windowed | ideal-windowed | vca-flat | vca-windowed")
	flagRegs  = flag.Int("regs", 256, "physical register file size")
	flagPorts = flag.Int("ports", 2, "data cache ports")
	flagStop  = flag.Uint64("stop", 0, "stop after any thread commits N instructions (0 = run to exit)")
	flagList  = flag.Bool("list", false, "list benchmarks and exit")
	flagTrace = flag.Bool("trace", false, "print a per-committed-instruction trace to stderr")
)

func main() {
	flag.Parse()
	if *flagList {
		for _, b := range workload.All() {
			kind := "int"
			if b.FP {
				kind = "fp"
			}
			fmt.Printf("%-16s %s\n", b.Name, kind)
		}
		return
	}

	arch, ok := map[string]vca.Arch{
		"baseline":       vca.Baseline,
		"conv-windowed":  vca.ConvWindowed,
		"ideal-windowed": vca.IdealWindowed,
		"vca-flat":       vca.VCAFlat,
		"vca-windowed":   vca.VCAWindowed,
	}[*flagArch]
	if !ok {
		fail(fmt.Errorf("unknown architecture %q", *flagArch))
	}

	abi := minic.ABIFlat
	if arch.Windowed() {
		abi = minic.ABIWindowed
	}
	var progs []*vca.Program
	var names []string
	for _, name := range strings.Split(*flagBench, ",") {
		b, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		p, err := b.Build(abi)
		if err != nil {
			fail(err)
		}
		progs = append(progs, p)
		names = append(names, b.Name)
	}

	spec := vca.MachineSpec{
		Arch:      arch,
		PhysRegs:  *flagRegs,
		DL1Ports:  *flagPorts,
		StopAfter: *flagStop,
	}
	if *flagTrace {
		spec.Trace = os.Stderr
	}
	res, err := vca.Run(spec, progs...)
	if err != nil {
		fail(err)
	}

	fmt.Printf("arch=%s regs=%d ports=%d threads=%d\n", arch, *flagRegs, *flagPorts, len(progs))
	fmt.Printf("cycles=%d  IPC=%.3f\n", res.Cycles, res.IPC())
	for i, t := range res.Threads {
		fmt.Printf("thread %d (%s): committed=%d CPI=%.3f done=%v output=%q\n",
			i, names[i], t.Committed, t.CPI, t.Done, t.Output)
	}
	fmt.Printf("DL1 accesses=%d (program=%d spill/fill=%d window-trap=%d) missrate=%.4f\n",
		res.DL1.TotalAccesses(), res.DL1.Accesses[0], res.DL1.Accesses[1], res.DL1.Accesses[2], res.DL1.MissRate())
	fmt.Printf("mispredicts=%d squashed=%d windowTraps=%d spills=%d fills=%d\n",
		res.Mispredicts, res.Squashed, res.WindowTraps, res.SpillsIssued, res.FillsIssued)
	if res.VCAStats != nil {
		s := res.VCAStats
		fmt.Printf("vca: srcHits=%d fills=%d spills=%d overwriteFrees=%d tableEvicts=%d physEvicts=%d renameStalls=%d\n",
			s.SrcHits, s.Fills, s.Spills, s.Overwrites, s.TableConflictEvicts, s.PhysEvicts, s.RenameStalls)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcasim:", err)
	os.Exit(1)
}
