// Command vcasim runs one benchmark (or a multiprogrammed set) on a
// chosen machine model and prints the measurements.
//
// Usage:
//
//	vcasim -bench crafty -arch vca-windowed -regs 128
//	vcasim -bench crafty,mesa -arch vca-flat -regs 192          # 2-thread SMT
//	vcasim -bench gcc_expr -arch vca-windowed -stats stats.json # counter dump
//	vcasim -bench twolf -stop 20000 -chrometrace trace.json     # Perfetto timeline
//	vcasim -bench crafty -fastforward 1000000 -stop 50000       # skip warmup functionally
//	vcasim -bench crafty -fastforward 1000000 -checkpoint ck.json
//	vcasim -bench crafty -restore ck.json -stop 50000           # resume from the image
//	vcasim -list
//
// The counter catalogue and the trace-viewer workflow are documented in
// docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	vca "vca"
	"vca/internal/minic"
	"vca/internal/workload"
)

var (
	flagBench = flag.String("bench", "crafty", "comma-separated benchmark names (one per thread)")
	flagArch  = flag.String("arch", "baseline", "baseline | conv-windowed | ideal-windowed | vca-flat | vca-windowed")
	flagRegs  = flag.Int("regs", 256, "physical register file size")
	flagPorts = flag.Int("ports", 2, "data cache ports")
	flagStop  = flag.Uint64("stop", 0, "stop after any thread commits N instructions (0 = run to exit)")
	flagList  = flag.Bool("list", false, "list benchmarks and exit")
	flagTrace = flag.Bool("trace", false, "print a per-committed-instruction trace to stderr")

	flagStats  = flag.String("stats", "", "write the full event-counter dump to this file (.csv for CSV, otherwise JSON)")
	flagChrome = flag.String("chrometrace", "", "record a Chrome trace-event timeline and write it to this file (bound the run with -stop; excludes -fastforward/-restore, which would start the timeline mid-program)")

	flagCache    = flag.Bool("cache", false, "memoize the run in the on-disk result cache (ignored with -trace/-stats/-chrometrace, which need a live run)")
	flagCacheDir = flag.String("cachedir", ".simcache", "result cache directory for -cache")

	flagFastForward = flag.Uint64("fastforward", 0, "skip the first N instructions of every thread at functional speed before detailed simulation")
	flagCheckpoint  = flag.String("checkpoint", "", "write the fast-forwarded architectural state to this file (single thread, requires -fastforward)")
	flagRestore     = flag.String("restore", "", "start the detailed run from a checkpoint file instead of reset (single thread, excludes -fastforward/-checkpoint)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"vcasim — run benchmarks on a chosen machine model (counters: docs/OBSERVABILITY.md)\n\n"+
				"Flag interactions:\n"+
				"  -checkpoint requires -fastforward; -restore excludes both; each needs a single-thread run\n"+
				"  -chrometrace excludes -fastforward/-restore and should be bounded with -stop\n"+
				"  -cache is ignored with -trace/-stats/-chrometrace (those need a live, uncached run)\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *flagList {
		for _, b := range workload.All() {
			kind := "int"
			if b.FP {
				kind = "fp"
			}
			fmt.Printf("%-16s %s\n", b.Name, kind)
		}
		return
	}

	arch, ok := map[string]vca.Arch{
		"baseline":       vca.Baseline,
		"conv-windowed":  vca.ConvWindowed,
		"ideal-windowed": vca.IdealWindowed,
		"vca-flat":       vca.VCAFlat,
		"vca-windowed":   vca.VCAWindowed,
	}[*flagArch]
	if !ok {
		fail(fmt.Errorf("unknown architecture %q", *flagArch))
	}

	abi := minic.ABIFlat
	if arch.Windowed() {
		abi = minic.ABIWindowed
	}
	var progs []*vca.Program
	var names []string
	for _, name := range strings.Split(*flagBench, ",") {
		b, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		p, err := b.Build(abi)
		if err != nil {
			fail(err)
		}
		progs = append(progs, p)
		names = append(names, b.Name)
	}

	if *flagCheckpoint != "" && *flagFastForward == 0 {
		fail(fmt.Errorf("-checkpoint requires -fastforward (nothing to capture at instruction 0)"))
	}
	if *flagRestore != "" && (*flagFastForward > 0 || *flagCheckpoint != "") {
		fail(fmt.Errorf("-restore starts from an existing image; it excludes -fastforward and -checkpoint"))
	}
	if *flagChrome != "" && (*flagFastForward > 0 || *flagRestore != "") {
		fail(fmt.Errorf("-chrometrace cannot record a run that starts mid-program; drop -fastforward/-restore"))
	}
	if (*flagCheckpoint != "" || *flagRestore != "") && len(progs) != 1 {
		fail(fmt.Errorf("-checkpoint/-restore operate on a single-thread run, got %d threads", len(progs)))
	}

	spec := vca.MachineSpec{
		Arch:      arch,
		PhysRegs:  *flagRegs,
		DL1Ports:  *flagPorts,
		StopAfter: *flagStop,
	}
	switch {
	case *flagRestore != "":
		ck, err := vca.LoadCheckpoint(*flagRestore)
		if err != nil {
			fail(err)
		}
		spec.Restore = []*vca.Checkpoint{ck}
		fmt.Fprintf(os.Stderr, "vcasim: restored %s at instruction %d from %s\n", ck.Program, ck.Insts, *flagRestore)
	case *flagCheckpoint != "":
		// Fast-forward here (not inside Run) so the image can be saved.
		ck, err := vca.FastForward(progs[0], arch.Windowed(), *flagFastForward)
		if err != nil {
			fail(err)
		}
		if err := vca.SaveCheckpoint(*flagCheckpoint, ck); err != nil {
			fail(err)
		}
		addr, err := ck.ContentAddress()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "vcasim: wrote checkpoint %s (inst %d, state %.12s)\n", *flagCheckpoint, ck.Insts, addr)
		spec.Restore = []*vca.Checkpoint{ck}
	case *flagFastForward > 0:
		spec.FastForward = *flagFastForward
	}
	if *flagTrace {
		spec.Trace = os.Stderr
	}
	if *flagChrome != "" {
		spec.ChromeTrace = vca.NewTraceRecorder()
	}
	// The -stats dump reads the live metrics registry, which a cache
	// hit does not carry — always simulate when it is requested.
	if *flagCache && *flagStats == "" {
		cache, err := vca.OpenResultCache(*flagCacheDir)
		if err != nil {
			fail(err)
		}
		spec.Cache = cache
		defer func() {
			fmt.Fprintf(os.Stderr, "vcasim: simcache %v in %s\n", cache.Stats(), cache.Dir())
		}()
	}
	res, err := vca.Run(spec, progs...)
	if err != nil {
		fail(err)
	}

	if *flagStats != "" {
		if err := writeStats(res, *flagStats, arch, progs, names); err != nil {
			fail(err)
		}
	}
	if *flagChrome != "" {
		if err := writeToFile(*flagChrome, spec.ChromeTrace.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "vcasim: wrote %d trace events to %s (open at ui.perfetto.dev)\n",
			spec.ChromeTrace.Len(), *flagChrome)
	}

	fmt.Printf("arch=%s regs=%d ports=%d threads=%d\n", arch, *flagRegs, *flagPorts, len(progs))
	if *flagFastForward > 0 {
		fmt.Printf("fastforward=%d (functional; cycles and counters below cover the detailed region only)\n", *flagFastForward)
	}
	fmt.Printf("cycles=%d  IPC=%.3f\n", res.Cycles, res.IPC())
	for i, t := range res.Threads {
		fmt.Printf("thread %d (%s): committed=%d CPI=%.3f done=%v output=%q\n",
			i, names[i], t.Committed, t.CPI, t.Done, t.Output)
	}
	fmt.Printf("DL1 accesses=%d (program=%d spill/fill=%d window-trap=%d) missrate=%.4f\n",
		res.DL1.TotalAccesses(), res.DL1.Accesses[0], res.DL1.Accesses[1], res.DL1.Accesses[2], res.DL1.MissRate())
	fmt.Printf("mispredicts=%d squashed=%d windowTraps=%d spills=%d fills=%d\n",
		res.Mispredicts, res.Squashed, res.WindowTraps, res.SpillsIssued, res.FillsIssued)
	if res.VCAStats != nil {
		s := res.VCAStats
		fmt.Printf("vca: srcHits=%d fills=%d spills=%d overwriteFrees=%d tableEvicts=%d physEvicts=%d renameStalls=%d\n",
			s.SrcHits, s.Fills, s.Spills, s.Overwrites, s.TableConflictEvicts, s.PhysEvicts, s.RenameStalls)
	}
}

// writeStats dumps the run's event counters: CSV when the path ends in
// .csv, the full JSON document (with a run-identification header)
// otherwise.
func writeStats(res vca.Result, path string, arch vca.Arch, progs []*vca.Program, names []string) error {
	if strings.HasSuffix(path, ".csv") {
		return writeToFile(path, res.WriteStatsCSV)
	}
	var committed uint64
	for _, t := range res.Threads {
		committed += t.Committed
	}
	hdr := &vca.StatsHeader{
		Arch:      arch.String(),
		PhysRegs:  *flagRegs,
		Threads:   len(progs),
		Workloads: strings.Join(names, ","),
		Cycles:    res.Cycles,
		Committed: committed,
	}
	return writeToFile(path, func(w io.Writer) error { return res.WriteStats(w, hdr) })
}

func writeToFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcasim:", err)
	os.Exit(1)
}
