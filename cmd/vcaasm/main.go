// Command vcaasm assembles a source file and either disassembles the
// image or runs it on the functional emulator.
//
// Usage:
//
//	vcaasm prog.s             # assemble + disassemble
//	vcaasm -run prog.s        # assemble + run functionally
//	vcaasm -run -windowed prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"vca/internal/asm"
	"vca/internal/emu"
)

var (
	flagRun      = flag.Bool("run", false, "run the program on the functional emulator")
	flagWindowed = flag.Bool("windowed", false, "enable register-window call/return semantics")
	flagMax      = flag.Uint64("max", 1<<30, "instruction budget when running")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vcaasm [-run] [-windowed] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := asm.AssembleWith(string(src), asm.Options{Name: flag.Arg(0)})
	if err != nil {
		fail(err)
	}
	if !*flagRun {
		fmt.Print(prog.Disasm())
		fmt.Printf("; text: %d instructions, data: %d bytes, entry %#x\n",
			len(prog.Text), len(prog.Data), prog.Entry)
		return
	}
	m := emu.New(prog, emu.Config{Windowed: *flagWindowed, MaxInsts: *flagMax})
	reason, err := m.Run()
	if err != nil {
		fail(err)
	}
	os.Stdout.Write(m.Output.Bytes())
	_, code := m.Exited()
	fmt.Fprintf(os.Stderr, "\n[%v: %d instructions, exit %d]\n", reason, m.Stats.Insts, code)
	os.Exit(int(code))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcaasm:", err)
	os.Exit(1)
}
