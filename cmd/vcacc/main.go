// Command vcacc compiles a mini-C source file to assembly or runs it.
//
// Usage:
//
//	vcacc prog.c                   # emit flat-ABI assembly on stdout
//	vcacc -abi windowed prog.c
//	vcacc -run prog.c              # compile + run on the emulator
package main

import (
	"flag"
	"fmt"
	"os"

	"vca/internal/emu"
	"vca/internal/minic"
)

var (
	flagABI = flag.String("abi", "flat", "flat | windowed")
	flagRun = flag.Bool("run", false, "compile and run on the functional emulator")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vcacc [-abi flat|windowed] [-run] file.c")
		os.Exit(2)
	}
	abi := minic.ABIFlat
	switch *flagABI {
	case "flat":
	case "windowed":
		abi = minic.ABIWindowed
	default:
		fail(fmt.Errorf("unknown ABI %q", *flagABI))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if !*flagRun {
		text, err := minic.Compile(string(src), abi)
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
		return
	}
	prog, err := minic.Build(flag.Arg(0), string(src), abi)
	if err != nil {
		fail(err)
	}
	m := emu.New(prog, emu.Config{Windowed: abi == minic.ABIWindowed})
	if _, err := m.Run(); err != nil {
		fail(err)
	}
	os.Stdout.Write(m.Output.Bytes())
	_, code := m.Exited()
	fmt.Fprintf(os.Stderr, "\n[%d instructions, exit %d]\n", m.Stats.Insts, code)
	os.Exit(int(code))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcacc:", err)
	os.Exit(1)
}
