package main

// counterpoint.go — the -counterpoint selector: refute-and-refine over
// the randomized config cross-product. Unlike the golden-matrix gate
// (internal/tools/counterpointgate), this sweep runs generated programs
// on generated machines, so every refutation can hand its (machine,
// program) pair to the verify shrinker for a minimal JSON repro.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"vca/internal/counterpoint"
)

// counterpointSweep runs the counter-oracle sweep and exits non-zero
// if any predicate was refuted (printing each refutation with its
// shrunk repro as JSON) or if the harness itself failed. A predicate
// that is vacuous across this sweep is reported but not fatal — the
// golden-matrix gate owns the vacuity guarantee.
func counterpointSweep(seed int64, predicates, reportPath string) {
	var names []string
	if predicates != "" {
		for _, n := range strings.Split(predicates, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	fmt.Printf("== Counter-oracle sweep: seed %d ==\n", seed)
	rep, err := counterpoint.Sweep(counterpoint.SweepOptions{
		Seed:       seed,
		Jobs:       *flagJobs,
		Predicates: names,
		Progress: func(done, total int, cell string, refuted int) {
			status := "ok"
			if refuted > 0 {
				status = fmt.Sprintf("%d REFUTED", refuted)
			}
			fmt.Printf("cell %3d/%d %-44s %s\n", done, total, cell, status)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: counterpoint harness failures:", err)
	}
	if rep == nil {
		os.Exit(1)
	}

	fmt.Printf("\n%-28s %6s %8s %8s %14s  %s\n", "predicate", "holds", "refuted", "vacuous", "min-slack", "tightest cell")
	for _, s := range rep.Predicates {
		slack, cell := "-", ""
		if s.MinSlack != nil {
			slack = fmt.Sprintf("%d", *s.MinSlack)
			cell = s.MinSlackCell
		}
		fmt.Printf("%-28s %6d %8d %8d %14s  %s\n", s.Name, s.Holds, s.Refuted, s.Vacuous, slack, cell)
	}
	for _, name := range rep.VacuousEverywhere() {
		fmt.Printf("note: %s was vacuous across this sweep (the golden-matrix gate covers it)\n", name)
	}

	if reportPath != "" {
		b, merr := rep.MarshalIndent()
		check(merr)
		check(os.WriteFile(reportPath, append(b, '\n'), 0o644))
		fmt.Printf("report: %s\n", reportPath)
	}

	if len(rep.Refutations) == 0 && err == nil {
		fmt.Printf("all %d predicates survived %d cells; no refutations\n", len(rep.Predicates), rep.Cells)
		return
	}
	for _, ref := range rep.Refutations {
		b, merr := json.MarshalIndent(ref, "", "  ")
		check(merr)
		fmt.Printf("refutation:\n%s\n", b)
	}
	os.Exit(1)
}
