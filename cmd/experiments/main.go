// Command experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated machine suite.
//
// Usage:
//
//	experiments -all                 # everything (several minutes)
//	experiments -table1 -table2
//	experiments -fig4 -fig5          # register-window sweeps (shared runs)
//	experiments -fig6                # single-cache-port sweep
//	experiments -fig7                # SMT weighted speedups
//	experiments -fig8                # SMT + register windows
//	experiments -stop N              # per-run commit budget (default 150000)
//	experiments -sweep N             # N randomized lockstep verification runs
//	experiments -sweepseed S         # sweep RNG seed (default 1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"vca/internal/core"
	"vca/internal/experiments"
	"vca/internal/simcache"
	"vca/internal/verify"
)

var (
	flagAll    = flag.Bool("all", false, "run every experiment")
	flagTable1 = flag.Bool("table1", false, "print baseline parameters (Table 1)")
	flagTable2 = flag.Bool("table2", false, "path-length ratios (Table 2)")
	flagFig4   = flag.Bool("fig4", false, "register-window execution time (Figure 4)")
	flagFig5   = flag.Bool("fig5", false, "register-window cache accesses (Figure 5)")
	flagFig6   = flag.Bool("fig6", false, "single-port execution time (Figure 6)")
	flagFig7   = flag.Bool("fig7", false, "SMT weighted speedup (Figure 7)")
	flagFig8   = flag.Bool("fig8", false, "SMT + register windows (Figure 8)")
	flagStop   = flag.Uint64("stop", 150_000, "per-run commit budget (0 = full runs)")

	flagSweep     = flag.Int("sweep", 0, "run N randomized machine configurations in lockstep with the emulator (invariant checker + co-simulation); shrunk repros print as JSON on divergence")
	flagSweepSeed = flag.Int64("sweepseed", 1, "RNG seed for -sweep and -counterpoint (a fixed seed reproduces the exact configuration sequence; meaningless without one of them)")

	flagCounterpoint = flag.Bool("counterpoint", false, "refute-and-refine: sweep the config cross-product and evaluate every counter-algebra predicate against each cell's counter map; refutations shrink to minimal repros (docs/VERIFICATION.md \"Counter oracle\")")
	flagPredicates   = flag.String("predicates", "", "comma-separated predicate names to evaluate (requires -counterpoint; default: the full catalogue)")
	flagCPReport     = flag.String("cpreport", "", "write the counterpoint refinement report JSON to this file (requires -counterpoint)")

	flagJobs       = flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	flagCache      = flag.Bool("cache", true, "memoize simulation results on disk (EXPERIMENTS.md \"Result cache\"; -cache=false also disables -cachedir/-cacheclear/-cachestats)")
	flagCacheDir   = flag.String("cachedir", ".simcache", "result cache directory (requires -cache)")
	flagCacheClear = flag.Bool("cacheclear", false, "clear the result cache before running (requires -cache)")
	flagCacheStats = flag.String("cachestats", "", "write end-of-run cache hit/miss counters as JSON to this file (requires -cache)")

	flagBenchJSON  = flag.String("benchjson", "", "measure simulator throughput on a fixed workload matrix and write JSON to this file (rows always simulate — the cache is never consulted, only its traffic counters are recorded in the report)")
	flagCPUProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	flagMemProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"experiments — regenerate the paper's tables and figures (results commentary: EXPERIMENTS.md)\n\n"+
				"At least one selector is required: -all, -table1/2, -fig4..8, -benchjson, -sweep, -counterpoint, or -cacheclear.\n"+
				"Flag interactions:\n"+
				"  -sweep and -counterpoint are mutually exclusive (each owns the run's exit status)\n"+
				"  -sweepseed only affects -sweep and -counterpoint\n"+
				"  -predicates and -cpreport require -counterpoint\n"+
				"  -cachedir/-cacheclear/-cachestats require -cache (the default)\n"+
				"  -benchjson rows always simulate; the cache is never consulted for them\n"+
				"  -counterpoint cells always simulate fresh (predicates measure the live machine)\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *flagAll {
		*flagTable1, *flagTable2 = true, true
		*flagFig4, *flagFig5, *flagFig6 = true, true, true
		*flagFig7, *flagFig8 = true, true
	}
	if !(*flagTable1 || *flagTable2 || *flagFig4 || *flagFig5 || *flagFig6 || *flagFig7 || *flagFig8 || *flagBenchJSON != "" || *flagSweep > 0 || *flagCounterpoint || *flagCacheClear) {
		flag.Usage()
		os.Exit(2)
	}
	if *flagSweep > 0 && *flagCounterpoint {
		fmt.Fprintln(os.Stderr, "experiments: -sweep and -counterpoint are mutually exclusive (each owns the run's exit status)")
		os.Exit(2)
	}
	if (*flagPredicates != "" || *flagCPReport != "") && !*flagCounterpoint {
		fmt.Fprintln(os.Stderr, "experiments: -predicates and -cpreport require -counterpoint")
		os.Exit(2)
	}

	experiments.SetJobs(*flagJobs)
	var cache *simcache.Cache
	if *flagCache {
		var err error
		cache, err = simcache.Open(*flagCacheDir)
		check(err)
		if *flagCacheClear {
			check(cache.Clear())
		}
		experiments.SetCache(cache)
		defer func() {
			if s := cache.Stats(); s.Hits+s.Misses > 0 || *flagCacheStats != "" {
				fmt.Fprintf(os.Stderr, "simcache: %s in %s\n", s, cache.Dir())
			}
		}()
		if *flagCacheStats != "" {
			defer func() { check(writeCacheStats(*flagCacheStats, cache)) }()
		}
	}

	if *flagCPUProfile != "" {
		f, err := os.Create(*flagCPUProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *flagMemProfile != "" {
		defer func() {
			f, err := os.Create(*flagMemProfile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	if *flagBenchJSON != "" {
		check(benchJSON(*flagBenchJSON, cache))
	}
	if *flagSweep > 0 {
		sweep(*flagSweepSeed, *flagSweep)
	}
	if *flagCounterpoint {
		counterpointSweep(*flagSweepSeed, *flagPredicates, *flagCPReport)
	}
	if *flagTable1 {
		table1()
	}
	if *flagTable2 {
		check(table2())
	}
	if *flagFig4 || *flagFig5 {
		check(figs45(*flagFig4, *flagFig5))
	}
	if *flagFig6 {
		check(fig6())
	}
	if *flagFig7 {
		check(fig7())
	}
	if *flagFig8 {
		check(fig8())
	}
}

// sweep runs the config-space lockstep verification sweep and exits
// non-zero if any run diverged (printing each shrunk repro as JSON —
// the format docs/VERIFICATION.md documents) or a configuration took
// the harness down (panic, reported as a failed cell).
func sweep(seed int64, n int) {
	fmt.Printf("== Lockstep verification sweep: %d runs, seed %d ==\n", n, seed)
	repros, err := verify.Sweep(seed, n, *flagJobs, func(i int, failed bool) {
		status := "ok"
		if failed {
			status = "DIVERGED"
		}
		fmt.Printf("run %3d/%d: %s\n", i+1, n, status)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: sweep harness failures:", err)
	}
	if len(repros) == 0 && err == nil {
		fmt.Println("all runs agree with the functional emulator; no invariant violations")
		return
	}
	for _, r := range repros {
		b, err := json.MarshalIndent(r, "", "  ")
		check(err)
		fmt.Printf("minimal repro:\n%s\n", b)
	}
	os.Exit(1)
}

// writeCacheStats dumps the cache traffic counters as JSON (consumed
// by internal/tools/cachecheck in the `make cache-ci` gate).
func writeCacheStats(path string, cache *simcache.Cache) error {
	b, err := json.MarshalIndent(cache.Stats(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func table1() {
	cfg := core.DefaultConfig(core.RenameConventional, core.WindowNone, 1, 256)
	fmt.Println("== Table 1: baseline processor parameters ==")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Machine width\t%d\n", cfg.Width)
	fmt.Fprintf(w, "Instruction queue\t%d\n", cfg.IQSize)
	fmt.Fprintf(w, "Reorder buffer\t%d\n", cfg.ROBSize)
	fmt.Fprintf(w, "Pipeline depth (fetch to exec)\t%d cycles\n", cfg.FrontLat+3)
	fmt.Fprintf(w, "DL1 ports\t%d R/W\n", cfg.Hier.DL1Ports)
	fmt.Fprintf(w, "DL1\t%dK %d-way, %d-cycle hit\n", cfg.Hier.DL1.SizeBytes>>10, cfg.Hier.DL1.Ways, cfg.Hier.DL1.HitLat)
	fmt.Fprintf(w, "IL1\t%dK %d-way, %d-cycle hit\n", cfg.Hier.IL1.SizeBytes>>10, cfg.Hier.IL1.Ways, cfg.Hier.IL1.HitLat)
	fmt.Fprintf(w, "L2\t%dM %d-way, %d-cycle hit\n", cfg.Hier.L2.SizeBytes>>20, cfg.Hier.L2.Ways, cfg.Hier.L2.HitLat)
	fmt.Fprintf(w, "Memory latency\t%d cycles\n", cfg.Hier.MemLat)
	fmt.Fprintf(w, "Branch predictor\thybrid (bimodal+gshare), %d-entry RAS\n", cfg.BP.RASDepth)
	w.Flush()
	fmt.Println()
}

func table2() error {
	rows, avg, err := experiments.Table2()
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: path-length ratio (windowed / flat, full runs) ==")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\n", r.Benchmark, r.Ratio)
	}
	fmt.Fprintf(w, "Average\t%.2f\n", avg)
	w.Flush()
	fmt.Println()
	return nil
}

func printSweep(title, metric string, cells []experiments.SweepCell, pick func(experiments.SweepCell) float64) {
	fmt.Printf("== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "physical registers\t")
	for _, r := range experiments.RegWindowSizes {
		fmt.Fprintf(w, "%d\t", r)
	}
	fmt.Fprintln(w)
	for _, a := range experiments.RegWindowArchs {
		fmt.Fprintf(w, "%s\t", a)
		for _, r := range experiments.RegWindowSizes {
			if c, ok := experiments.Cell(cells, a, r); ok {
				fmt.Fprintf(w, "%.3f\t", pick(c))
			} else {
				fmt.Fprintf(w, "—\t")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Printf("(%s, normalized to dual-port baseline with 256 registers)\n\n", metric)
}

func figs45(f4, f5 bool) error {
	cells, err := experiments.RegWindowSweep(2, *flagStop)
	if err != nil {
		return err
	}
	if f4 {
		printSweep("Figure 4: register window execution time", "estimated execution time",
			cells, func(c experiments.SweepCell) float64 { return c.NormTime })
	}
	if f5 {
		printSweep("Figure 5: register window data cache accesses", "total data cache accesses",
			cells, func(c experiments.SweepCell) float64 { return c.NormAccesses })
	}
	return nil
}

func fig6() error {
	cells, err := experiments.RegWindowSweep(1, *flagStop)
	if err != nil {
		return err
	}
	printSweep("Figure 6: single cache port execution time", "estimated execution time",
		cells, func(c experiments.SweepCell) float64 { return c.NormTime })
	return nil
}

func printSMT(title string, cells []experiments.SMTCell, sizes []int, series []string, pick func(experiments.SMTCell) float64, note string) {
	fmt.Printf("== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "physical registers\t")
	for _, r := range sizes {
		fmt.Fprintf(w, "%d\t", r)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%s\t", s)
		for _, r := range sizes {
			if c, ok := experiments.SMTCellFor(cells, s, r); ok {
				fmt.Fprintf(w, "%.3f\t", pick(c))
			} else {
				fmt.Fprintf(w, "—\t")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println(note)
	fmt.Println()
}

func fig7() error {
	opts := experiments.DefaultSMTOptions()
	opts.StopAfter = *flagStop
	if opts.StopAfter == 0 {
		opts.StopAfter = 250_000
	}
	cells, err := experiments.SMTSweep(opts)
	if err != nil {
		return err
	}
	printSMT("Figure 7: SMT performance", cells, experiments.SMTSizes,
		[]string{"vca 2T", "vca 4T", "baseline 2T", "baseline 4T"},
		func(c experiments.SMTCell) float64 { return c.Speedup },
		"(weighted speedup vs single-thread baseline with 256 registers)")
	return nil
}

func fig8() error {
	opts := experiments.DefaultSMTOptions()
	opts.StopAfter = *flagStop
	if opts.StopAfter == 0 {
		opts.StopAfter = 250_000
	}
	opts.Windowed = true
	opts.OneThread = true
	cells, err := experiments.SMTSweep(opts)
	if err != nil {
		return err
	}
	series := []string{"vca 1T", "vca 2T", "vca 4T", "baseline 1T", "baseline 2T", "baseline 4T"}
	printSMT("Figure 8: SMT + register window performance", cells, experiments.SMTSizes, series,
		func(c experiments.SMTCell) float64 { return c.Speedup },
		"(weighted speedup vs single-thread baseline with 256 registers; vca series run windowed binaries)")
	printSMT("Section 4.3: weighted data cache accesses", cells, experiments.SMTSizes, series,
		func(c experiments.SMTCell) float64 { return c.Accesses },
		"(sum over threads of accesses/inst relative to single-thread baseline)")
	return nil
}
