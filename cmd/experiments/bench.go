package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
	"vca/internal/workload"
)

// benchStop is the fixed commit budget of the throughput matrix. It
// matches the per-run budget of the detailed experiments so the recorded
// MIPS numbers describe the same work every figure pays for.
const benchStop = 100_000

// funcBenchBudget is the instruction budget of the functional A/B leg:
// larger than benchStop so the tens-of-MIPS engine accumulates enough
// wall time (tens of milliseconds) to measure stably.
const funcBenchBudget = 2_000_000

// benchRow is one (architecture, workload) point of the matrix.
type benchRow struct {
	Name     string
	Arch     core.RenameModel
	Window   core.WindowModel
	PhysRegs int
	Workload string
	ABI      minic.ABI
}

// benchMatrix is the fixed workload matrix of the BENCH_*.json
// trajectory. Do not reorder or rename entries: later perf PRs append
// BENCH_N.json files and compare rows by name.
var benchMatrix = []benchRow{
	{"baseline-256/crafty", core.RenameConventional, core.WindowNone, 256, "crafty", minic.ABIFlat},
	{"vca-window-128/gcc_expr", core.RenameVCA, core.WindowVCA, 128, "gcc_expr", minic.ABIWindowed},
	{"conv-window-128/gcc_expr", core.RenameConventional, core.WindowConventional, 128, "gcc_expr", minic.ABIWindowed},
	{"vca-flat-128/twolf", core.RenameVCA, core.WindowNone, 128, "twolf", minic.ABIFlat},
}

// benchResult is one measured row of the JSON report. Since schema 2 a
// row also carries the full event-counter map of the measured run (see
// docs/OBSERVABILITY.md), so a throughput regression can be traced to
// the microarchitectural event mix that caused it. Since schema 4 a row
// carries the functional A/B leg: the fast engine (emu.FastRun, the
// fast-forward path) timed on the same workload, and its speedup over
// the detailed core measured in the same invocation on the same host.
type benchResult struct {
	Name          string  `json:"name"`
	PhysRegs      int     `json:"phys_regs"`
	Workload      string  `json:"workload"`
	StopAfter     uint64  `json:"stop_after"`
	Committed     uint64  `json:"committed"`
	Cycles        uint64  `json:"cycles"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimMIPS       float64 `json:"sim_mips"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	// FuncInsts instructions ran on the fast functional engine in
	// FuncWallSeconds, giving FuncMIPS; FuncSpeedup is ns-per-inst of
	// the detailed run divided by ns-per-inst of the functional run.
	FuncInsts       uint64            `json:"func_insts"`
	FuncWallSeconds float64           `json:"func_wall_seconds"`
	FuncMIPS        float64           `json:"func_mips"`
	FuncSpeedup     float64           `json:"func_speedup"`
	Counters        map[string]uint64 `json:"counters,omitempty"`
}

// benchReport is the BENCH_*.json schema.
//
// Schema history: 2 added per-row counter maps; 3 added GoMaxProcs
// (NumCPU alone misattributed capped-GOMAXPROCS runs: the harness
// parallelizes with runtime.GOMAXPROCS(0), not runtime.NumCPU()) and
// the simcache traffic block; 4 added the functional A/B leg
// (func_insts/func_wall_seconds/func_mips/func_speedup per row and
// mean_func_mips/mean_func_speedup).
type benchReport struct {
	Schema int    `json:"schema"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GoMaxProcs is the
	// parallelism the harness actually ran with. They differ under
	// GOMAXPROCS caps (cgroup limits, taskset, GOMAXPROCS=N).
	NumCPU           int               `json:"num_cpu"`
	GoMaxProcs       int               `json:"gomaxprocs"`
	CoSim            bool              `json:"cosim"`
	Rows             []benchResult     `json:"rows"`
	TotalWallSeconds float64           `json:"total_wall_seconds"`
	MeanSimMIPS      float64           `json:"mean_sim_mips"`
	MeanFuncMIPS     float64           `json:"mean_func_mips"`
	MeanFuncSpeedup  float64           `json:"mean_func_speedup"`
	Cache            map[string]uint64 `json:"cache,omitempty"` // simcache.* traffic counters of this invocation
}

// funcBench times the fast functional engine executing budget
// instructions of prog (restarting the program if it exits early, so
// exactly budget instructions are measured).
func funcBench(prog *program.Program, windowed bool, budget uint64) (insts uint64, wall float64, err error) {
	m := emu.New(prog, emu.Config{Windowed: windowed})
	if _, err := m.FastRun(benchStop); err != nil { // warm up: predecode, touch pages
		return 0, 0, err
	}
	start := time.Now()
	need := budget
	for need > 0 {
		ran, err := m.FastRun(need)
		if err != nil {
			return 0, 0, err
		}
		need -= ran
		if ex, _ := m.Exited(); ex {
			m = emu.New(prog, emu.Config{Windowed: windowed})
		}
	}
	return budget, time.Since(start).Seconds(), nil
}

// benchJSON measures simulator throughput (simulated MIPS = committed
// instructions per host second, detailed core with co-simulation on) on
// the fixed matrix and writes the report. Runs are sequential and
// single-threaded so wall time and allocation counts are attributable;
// the result cache is deliberately not consulted (a memoized run has
// no meaningful wall time), but its traffic counters from the wider
// invocation are recorded so a suspicious MIPS figure can be checked
// against how much simulation actually ran.
func benchJSON(path string, cache *simcache.Cache) error {
	rep := benchReport{
		Schema:     4,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CoSim:      true,
	}
	var mipsSum, funcMipsSum, funcSpeedupSum float64
	for _, row := range benchMatrix {
		bench, err := workload.ByName(row.Workload)
		if err != nil {
			return err
		}
		prog, err := bench.Build(row.ABI)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(row.Arch, row.Window, 1, row.PhysRegs)
		cfg.StopAfter = benchStop
		cfg.MaxCycles = 1 << 34
		windowed := row.ABI == minic.ABIWindowed

		// Warm-up run: exclude one-time build/JIT-ish effects (page
		// faults, branch predictor of the host) from the measured run.
		if _, err := runOnce(cfg, prog, windowed); err != nil {
			return err
		}

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		run, err := runOnce(cfg, prog, windowed)
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)

		var committed uint64
		for _, t := range run.Threads {
			committed += t.Committed
		}
		res := benchResult{
			Name:        row.Name,
			PhysRegs:    row.PhysRegs,
			Workload:    row.Workload,
			StopAfter:   benchStop,
			Committed:   committed,
			Cycles:      run.Cycles,
			WallSeconds: wall,
			Counters:    run.Metrics.CounterMap(),
		}
		if wall > 0 {
			res.SimMIPS = float64(committed) / wall / 1e6
		}
		if committed > 0 {
			res.AllocsPerInst = float64(ms1.Mallocs-ms0.Mallocs) / float64(committed)
		}

		fInsts, fWall, err := funcBench(prog, windowed, funcBenchBudget)
		if err != nil {
			return err
		}
		res.FuncInsts = fInsts
		res.FuncWallSeconds = fWall
		if fWall > 0 {
			res.FuncMIPS = float64(fInsts) / fWall / 1e6
		}
		if res.SimMIPS > 0 {
			res.FuncSpeedup = res.FuncMIPS / res.SimMIPS
		}

		rep.Rows = append(rep.Rows, res)
		rep.TotalWallSeconds += wall + fWall
		mipsSum += res.SimMIPS
		funcMipsSum += res.FuncMIPS
		funcSpeedupSum += res.FuncSpeedup
		fmt.Fprintf(os.Stderr, "bench %-26s %8d inst  %6.3fs  %6.3f simMIPS  %.3f allocs/inst  | func %6.1f MIPS  %5.1fx\n",
			row.Name, committed, wall, res.SimMIPS, res.AllocsPerInst, res.FuncMIPS, res.FuncSpeedup)
	}
	if len(rep.Rows) > 0 {
		rep.MeanSimMIPS = mipsSum / float64(len(rep.Rows))
		rep.MeanFuncMIPS = funcMipsSum / float64(len(rep.Rows))
		rep.MeanFuncSpeedup = funcSpeedupSum / float64(len(rep.Rows))
	}
	if cache != nil {
		// Zero hits here is the desired proof: every row above was
		// simulated for real, not replayed from the cache.
		rep.Cache = cache.MetricsRegistry().CounterMap()
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

func runOnce(cfg core.Config, prog *program.Program, windowed bool) (*core.Result, error) {
	m, err := core.New(cfg, []*program.Program{prog}, windowed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}
