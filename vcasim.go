// Package vca is the public facade of the Virtual Context Architecture
// reproduction: it compiles (or assembles) programs for the simulated ISA
// and runs them on cycle-level machine models with either a conventional
// rename substrate or the VCA substrate of Oehmke et al., "How to Fake
// 1000 Registers" (MICRO-38, 2005).
//
// Quick start:
//
//	prog, _ := vca.CompileC(mySource, vca.ABIWindowed)
//	res, _ := vca.Run(vca.MachineSpec{
//	        Arch:     vca.VCAWindowed,
//	        PhysRegs: 192,
//	}, prog)
//	fmt.Println(res.Output(0), res.IPC())
//
// Beyond compile-and-run, the facade covers the repository's
// measurement workflow end to end:
//
//   - MachineSpec.StopAfter bounds detailed simulation;
//     MachineSpec.FastForward skips a warmup prefix on the fast
//     functional engine before detailed simulation begins, and
//     MachineSpec.Restore starts from a saved Checkpoint instead
//     (DESIGN.md §12).
//   - Result carries per-thread output, cycle/commit counts, and—when
//     a run is created with observability enabled—the full event-
//     counter registry (docs/OBSERVABILITY.md) for stats dumps and
//     timeline recording.
//   - MachineSpec.Cache (opened with OpenResultCache) memoizes runs in
//     the on-disk result store (internal/simcache), the same
//     content-addressed cache the experiment harness and the sweep
//     service share.
//
// The deeper layers remain available under internal/ for the experiment
// harness; this package exposes the stable surface a downstream user
// needs: compile, assemble, configure, run, measure.
package vca

import (
	"fmt"
	"io"
	"os"

	"vca/internal/asm"
	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/metrics"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
)

// ABI selects the calling convention for compiled programs.
type ABI = minic.ABI

// ABI values.
const (
	ABIFlat     = minic.ABIFlat
	ABIWindowed = minic.ABIWindowed
)

// Program is a loadable executable image.
type Program = program.Program

// CompileC compiles mini-C source (see internal/minic for the language)
// under the given ABI.
func CompileC(source string, abi ABI) (*Program, error) {
	return minic.Build("program", source, abi)
}

// Assemble assembles assembly source (see internal/asm for the syntax).
func Assemble(source string) (*Program, error) {
	return asm.Assemble(source)
}

// Arch names the machine models of the paper's evaluation.
type Arch int

const (
	// Baseline is the conventional non-windowed out-of-order machine
	// (Table 1). Runs flat-ABI binaries.
	Baseline Arch = iota
	// ConvWindowed expands the register file into hardware windows with
	// trap-based overflow/underflow handling (§4.1). Windowed binaries.
	ConvWindowed
	// IdealWindowed handles window spills/fills instantly without cache
	// traffic — the §4.1 lower bound. Windowed binaries.
	IdealWindowed
	// VCAFlat is the virtual context architecture running flat binaries
	// (the SMT study of §4.2).
	VCAFlat
	// VCAWindowed is the virtual context architecture with register
	// windows (§2.1.5). Windowed binaries.
	VCAWindowed
)

func (a Arch) String() string {
	switch a {
	case Baseline:
		return "baseline"
	case ConvWindowed:
		return "conventional-windowed"
	case IdealWindowed:
		return "ideal-windowed"
	case VCAFlat:
		return "vca-flat"
	case VCAWindowed:
		return "vca-windowed"
	}
	return "?"
}

// Windowed reports whether the architecture executes windowed binaries.
func (a Arch) Windowed() bool {
	switch a {
	case ConvWindowed, IdealWindowed, VCAWindowed:
		return true
	}
	return false
}

// MachineSpec configures a simulation. Zero values take the paper's
// Table 1 defaults.
type MachineSpec struct {
	Arch     Arch
	PhysRegs int // default 256
	Threads  int // default = number of programs
	DL1Ports int // default 2
	// StopAfter ends the run once any thread commits this many
	// instructions (0 = run to completion).
	StopAfter uint64
	// DisableCoSim turns off the per-instruction architectural cross-check
	// against the functional emulator (on by default).
	DisableCoSim bool
	// Check runs the cycle-level invariant checker after every simulated
	// cycle (free-list conservation, queue age order, counter identities;
	// see docs/VERIFICATION.md). Off by default; a violation aborts Run.
	Check bool
	// Trace, when non-nil, receives one line per committed instruction.
	Trace io.Writer
	// ChromeTrace, when non-nil, records a Chrome trace-event timeline of
	// the run (per-uop pipeline-stage slices, stall instants, occupancy
	// counters). Write it out afterwards with TraceRecorder.WriteJSON and
	// load the file at ui.perfetto.dev or chrome://tracing. Timeline
	// recording buffers events in memory — bound the run with StopAfter.
	ChromeTrace *TraceRecorder
	// Cache, when non-nil, memoizes the run in a content-addressed
	// on-disk result cache (see internal/simcache and the "Result
	// cache" section of EXPERIMENTS.md): an identical (config,
	// programs) pair is
	// answered from disk without simulating. Ignored — the run always
	// simulates — when Trace, ChromeTrace, or Check is set, because a
	// replayed result has no live metrics registry or event stream
	// (Result.Metrics is nil on a cache hit).
	Cache *ResultCache
	// FastForward skips the first N instructions of every thread at
	// functional speed (tens of MIPS, emu.FastRun) and transplants the
	// resulting architectural state into the detailed machine, which then
	// simulates from there. StopAfter still counts detailed commits only.
	// Mutually exclusive with Restore and ChromeTrace.
	FastForward uint64
	// Restore starts thread i from Restore[i] (a checkpoint previously
	// produced by FastForward, Checkpoint files, or a region walk) instead
	// of architectural reset; nil entries start from reset. Mutually
	// exclusive with FastForward and ChromeTrace.
	Restore []*Checkpoint
}

// Checkpoint re-exports the serializable, content-addressed
// architectural-state image (see internal/emu): the handoff format
// between the fast functional engine and the detailed core.
type Checkpoint = emu.Checkpoint

// FastForward executes exactly n instructions of p on the fast
// functional engine and returns the resulting checkpoint. It fails if
// the program exits or faults before the budget is reached.
func FastForward(p *Program, windowed bool, n uint64) (*Checkpoint, error) {
	m := emu.New(p, emu.Config{Windowed: windowed})
	executed, err := m.FastRun(n)
	if err != nil {
		return nil, err
	}
	if executed < n {
		return nil, fmt.Errorf("vca: program exited after %d of %d fast-forward instructions", executed, n)
	}
	return m.Checkpoint(), nil
}

// LoadCheckpoint reads a checkpoint file written by SaveCheckpoint,
// verifying its schema version and content checksum.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return emu.DecodeCheckpoint(f)
}

// SaveCheckpoint writes a checkpoint as a checksummed JSON file.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ck.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ResultCache re-exports the content-addressed simulation result cache;
// open one with OpenResultCache and share it across Run calls.
type ResultCache = simcache.Cache

// OpenResultCache creates (if needed) and opens a result cache
// directory for MachineSpec.Cache.
func OpenResultCache(dir string) (*ResultCache, error) { return simcache.Open(dir) }

// TraceRecorder re-exports the Chrome trace-event recorder; see
// MachineSpec.ChromeTrace and docs/OBSERVABILITY.md.
type TraceRecorder = metrics.TraceRecorder

// NewTraceRecorder returns an empty timeline recorder for
// MachineSpec.ChromeTrace.
func NewTraceRecorder() *TraceRecorder { return metrics.NewTraceRecorder() }

// StatsHeader re-exports the run-identification header of a stats dump;
// see Result.WriteStats.
type StatsHeader = metrics.Header

// Result re-exports the core simulation result.
type Result struct {
	*core.Result
}

// Output returns the program output of thread t.
func (r Result) Output(t int) string { return r.Threads[t].Output }

// WriteStats writes the run's full event-counter dump as a deterministic
// JSON document (see docs/OBSERVABILITY.md for the counter catalogue).
// hdr may be nil.
func (r Result) WriteStats(w io.Writer, hdr *StatsHeader) error {
	return r.Metrics.WriteJSON(w, hdr)
}

// WriteStatsCSV writes the counter dump as CSV (one row per metric;
// histogram buckets are omitted — use WriteStats for distributions).
func (r Result) WriteStatsCSV(w io.Writer) error {
	return r.Metrics.WriteCSV(w)
}

// Run executes one program per hardware thread on the specified machine.
func Run(spec MachineSpec, progs ...*Program) (Result, error) {
	if len(progs) == 0 {
		return Result{}, fmt.Errorf("vca: no programs")
	}
	if spec.Threads == 0 {
		spec.Threads = len(progs)
	}
	if spec.PhysRegs == 0 {
		spec.PhysRegs = 256
	}
	if spec.DL1Ports == 0 {
		spec.DL1Ports = 2
	}
	var cfg core.Config
	switch spec.Arch {
	case Baseline:
		cfg = core.DefaultConfig(core.RenameConventional, core.WindowNone, spec.Threads, spec.PhysRegs)
	case ConvWindowed:
		cfg = core.DefaultConfig(core.RenameConventional, core.WindowConventional, spec.Threads, spec.PhysRegs)
	case IdealWindowed:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowIdeal, spec.Threads, spec.PhysRegs)
	case VCAFlat:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowNone, spec.Threads, spec.PhysRegs)
	case VCAWindowed:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowVCA, spec.Threads, spec.PhysRegs)
	default:
		return Result{}, fmt.Errorf("vca: unknown architecture %v", spec.Arch)
	}
	cfg.Hier.DL1Ports = spec.DL1Ports
	cfg.StopAfter = spec.StopAfter
	cfg.CoSim = !spec.DisableCoSim
	cfg.Check = spec.Check
	cfg.TraceWriter = spec.Trace
	cfg.ChromeTrace = spec.ChromeTrace
	restores := spec.Restore
	if spec.FastForward > 0 {
		if len(spec.Restore) > 0 {
			return Result{}, fmt.Errorf("vca: FastForward and Restore are mutually exclusive")
		}
		restores = make([]*Checkpoint, len(progs))
		for i, p := range progs {
			ck, err := FastForward(p, spec.Arch.Windowed(), spec.FastForward)
			if err != nil {
				return Result{}, fmt.Errorf("vca: fast-forwarding thread %d: %w", i, err)
			}
			restores[i] = ck
		}
	}
	if len(restores) > 0 {
		if spec.ChromeTrace != nil {
			return Result{}, fmt.Errorf("vca: ChromeTrace cannot record a run that starts mid-program (drop FastForward/Restore or the recorder)")
		}
		if len(restores) > len(progs) {
			return Result{}, fmt.Errorf("vca: %d restore checkpoints for %d threads", len(restores), len(progs))
		}
	}
	if cache := spec.Cache; cache != nil && spec.Trace == nil && spec.ChromeTrace == nil && !spec.Check {
		var (
			res *core.Result
			err error
		)
		if len(restores) > 0 {
			res, _, _, err = cache.RunMachineFrom(cfg, progs, spec.Arch.Windowed(), restores)
		} else {
			res, _, _, err = cache.RunMachine(cfg, progs, spec.Arch.Windowed())
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res}, nil
	}
	m, err := core.New(cfg, progs, spec.Arch.Windowed())
	if err != nil {
		return Result{}, err
	}
	for i, ck := range restores {
		if ck == nil {
			continue
		}
		if err := m.InjectCheckpoint(i, ck); err != nil {
			return Result{}, err
		}
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{res}, nil
}

// Emulate runs a program on the functional (non-cycle-accurate) emulator
// and returns its output and dynamic instruction count.
func Emulate(p *Program, windowed bool) (output string, insts uint64, err error) {
	m := emu.New(p, emu.Config{Windowed: windowed})
	reason, err := m.Run()
	if err != nil {
		return "", 0, err
	}
	if reason != emu.StopExited {
		return "", 0, fmt.Errorf("vca: emulation stopped: %v", reason)
	}
	return m.Output.String(), m.Stats.Insts, nil
}
