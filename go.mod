module vca

go 1.22
