package vca

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// statsSrc is a small but non-trivial workload for the stats dump tests:
// calls (window rotation), loads/stores, and a data-dependent branch so
// the branch and memory counters are exercised.
const statsSrc = `
int buf[64];
int sum(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i = i + 1) {
		buf[i] = i * 3;
		if (buf[i] > 20) { s = s + buf[i]; } else { s = s - 1; }
	}
	return s;
}
int main() {
	int t = 0;
	int k;
	for (k = 1; k <= 12; k = k + 1) { t = t + sum(k); }
	print_int(t);
	return 0;
}`

func statsRun(t *testing.T) (Result, *StatsHeader) {
	t.Helper()
	prog, err := CompileC(statsSrc, ABIWindowed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(MachineSpec{Arch: VCAWindowed, PhysRegs: 128}, prog)
	if err != nil {
		t.Fatal(err)
	}
	hdr := &StatsHeader{
		Arch:      VCAWindowed.String(),
		PhysRegs:  128,
		Threads:   1,
		Workloads: "stats_src",
		Cycles:    res.Cycles,
		Committed: res.Threads[0].Committed,
	}
	return res, hdr
}

// TestStatsDumpGolden pins the rendered JSON stats document — schema
// field, header shape, metric naming, units, and values — against
// testdata/stats_golden.json. Regenerate with `go test -run
// TestStatsDumpGolden -update .` after an intentional surface change,
// and review the golden diff as part of the change.
func TestStatsDumpGolden(t *testing.T) {
	res, hdr := statsRun(t)
	var buf bytes.Buffer
	if err := res.WriteStats(&buf, hdr); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "stats_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stats dump diverges from %s (regenerate with -update if intentional)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestStatsDumpSchema checks the structural invariants every consumer
// relies on, independent of the golden file: a schema number, the run
// header, and uniquely named, sorted metrics that each carry a kind and
// a unit.
func TestStatsDumpSchema(t *testing.T) {
	res, hdr := statsRun(t)
	var buf bytes.Buffer
	if err := res.WriteStats(&buf, hdr); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Schema int `json:"schema"`
		Run    *struct {
			Arch      string `json:"arch"`
			Cycles    uint64 `json:"cycles"`
			Committed uint64 `json:"committed"`
		} `json:"run"`
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
			Unit string `json:"unit"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema < 1 {
		t.Errorf("schema = %d, want >= 1", doc.Schema)
	}
	if doc.Run == nil || doc.Run.Arch != "vca-windowed" || doc.Run.Committed == 0 {
		t.Errorf("bad run header: %+v", doc.Run)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("no metrics in dump")
	}
	names := make([]string, len(doc.Metrics))
	seen := make(map[string]bool)
	for i, m := range doc.Metrics {
		names[i] = m.Name
		if m.Name == "" || m.Kind == "" || m.Unit == "" {
			t.Errorf("metric %d incomplete: %+v", i, m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
	}
	if !sort.StringsAreSorted(names) {
		t.Error("metrics are not sorted by name")
	}
	for _, want := range []string{
		"core.cycles", "core.commit.insts.t0", "core.rename.stall.vca_astq",
		"mem.dl1.accesses.spill_fill", "branch.cond_mispredicts", "rename.vca.src_hits",
	} {
		if !seen[want] {
			t.Errorf("expected metric %q missing from dump", want)
		}
	}
}

// TestStatsDumpDeterministic runs the same configuration twice and
// requires byte-identical dumps — the property that makes stats files
// diffable across code changes.
func TestStatsDumpDeterministic(t *testing.T) {
	var dumps [2]bytes.Buffer
	for i := range dumps {
		res, hdr := statsRun(t)
		if err := res.WriteStats(&dumps[i], hdr); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
		t.Error("two identical runs produced different stats dumps")
	}
}

// TestStatsCSV sanity-checks the CSV form: header row plus one row per
// metric, with the counter columns parseable.
func TestStatsCSV(t *testing.T) {
	res, _ := statsRun(t)
	var buf bytes.Buffer
	if err := res.WriteStatsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "name,kind,unit,value,count,sum,max,mean" {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	if len(lines) != res.Metrics.Len()+1 {
		t.Errorf("CSV rows = %d, want %d metrics + header", len(lines)-1, res.Metrics.Len())
	}
}
