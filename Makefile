GO ?= go

.PHONY: all build test test-race fuzz-smoke sweep counterpoint-gate check ci docs-check analyze fix-audit bench benchjson experiments cache-smoke cache-ci bench-smoke region-gate serve-smoke shard-smoke shard-bench serve clean gitignore-check

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and every test must pass.
test:
	$(GO) test ./...

# Full suite under the race detector. The sweep-heavy packages run
# close to the default 10-minute package budget on small hosts once the
# race detector's overhead lands, so the budget is set explicitly.
test-race:
	$(GO) test -race -timeout 30m ./...

# Short-budget native fuzzing over the three fuzz targets (assembler,
# mini-C compiler, whole-stack lockstep). Each target gets a small time
# budget on top of replaying its committed corpus; failures minimize
# into testdata/fuzz/ automatically.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/minic -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzRandomProgramsLockstep$$' -fuzztime $(FUZZTIME)

# Fixed-seed config-space lockstep sweep (see docs/VERIFICATION.md).
sweep:
	$(GO) run ./cmd/experiments -sweep 25 -sweepseed 1

# Counter-oracle gate: evaluate every counterpoint predicate against
# the golden matrix (scheduler grid + windowed-SMT + restored cells)
# under the race detector. Fails on any refutation (an accounting bug)
# or any predicate that was vacuous across the whole matrix (an oracle
# with no teeth). See docs/VERIFICATION.md "Counter oracle".
counterpoint-gate:
	$(GO) run -race ./internal/tools/counterpointgate

# Result-cache round-trip smoke: hits must reproduce cold-run results
# bit for bit across the whole workload matrix.
cache-smoke:
	$(GO) test ./internal/simcache -run 'TestCacheRoundTrip' -count=1

# Result-cache CI round trip: run the same experiment twice against a
# fresh cache directory. The second pass must print byte-identical
# output and be served almost entirely (>= 90%) from the cache —
# cachecheck fails the build otherwise.
CACHECI_DIR := .simcache-ci
cache-ci:
	rm -rf $(CACHECI_DIR)
	mkdir -p $(CACHECI_DIR)
	$(GO) run ./cmd/experiments -fig4 -stop 10000 -cachedir $(CACHECI_DIR) \
		-cachestats $(CACHECI_DIR)/pass1.json > $(CACHECI_DIR)/pass1.out
	$(GO) run ./cmd/experiments -fig4 -stop 10000 -cachedir $(CACHECI_DIR) \
		-cachestats $(CACHECI_DIR)/pass2.json > $(CACHECI_DIR)/pass2.out
	cmp $(CACHECI_DIR)/pass1.out $(CACHECI_DIR)/pass2.out
	$(GO) run ./internal/tools/cachecheck -stats $(CACHECI_DIR)/pass2.json -min 0.9
	rm -rf $(CACHECI_DIR)

# Parallel-region identity gate: a K-way parallel-region run must
# stitch to the bit-identical counter map of a sequential run, and to
# the architectural results (committed count, output) of one continuous
# detailed run of the same budget. See internal/experiments/regions.go.
region-gate:
	$(GO) test ./internal/experiments -run '^TestRegionStitchedIdentityGate$$' -count=1 -v

# Sweep-service smoke gate: build and start a real vcaserved, submit a
# tiny sweep over HTTP, assert /healthz + /readyz + /metrics and that
# the streamed NDJSON results are byte-identical to a direct in-process
# simcache.Runner run, then SIGTERM and require a clean drain (exit 0).
# See docs/SERVICE.md.
serve-smoke:
	$(GO) run ./internal/tools/servesmoke

# Sharded-fabric smoke gate: build vcaserved, start 2 workers + router
# (+ a single daemon as reference), and assert over real processes that
# the merged stream is byte-identical to a single daemon's, that two
# tenants' identical sweeps cost the FLEET exactly one simulation per
# distinct cell (aggregated /metrics: misses == simulations), and that
# SIGKILLing a worker mid-sweep loses and duplicates nothing. See
# docs/SERVICE.md "Sharded deployment".
shard-smoke:
	$(GO) run ./internal/tools/shardsmoke

# Honest sharded-throughput measurement (1 vs 2 workers + cache-affine
# replay), printed as JSON for EXPERIMENTS.md; never asserted, because
# wall-clock scaling depends on host cores.
shard-bench:
	$(GO) run ./internal/tools/shardsmoke -bench

# Run the sweep service locally with defaults (docs/SERVICE.md).
serve:
	$(GO) run ./cmd/vcaserved

# Determinism & hot-path lint suite: every first-party analysis pass
# (internal/analyzers, docs/ANALYZERS.md) over the whole module. Zero
# findings is a hard gate in `make check` and `make ci`; the suite's
# clean-tree regression test pins the same property under `go test`.
analyze:
	$(GO) run ./internal/tools/analyze

# Triage mode for the lint suite: print every finding but exit 0, for
# working through a sweep after an analyzer or annotation change.
fix-audit:
	$(GO) run ./internal/tools/analyze -nofail

# Extended gate: static checks, the lint suite, the race suite, the
# fuzz smoke, the cache round-trip smoke, the parallel-region identity
# gate, the counter-oracle gate, and the sweep-service smoke. Slower
# than `make test`; run before sending a change.
check: docs-check analyze gitignore-check test-race fuzz-smoke cache-smoke region-gate counterpoint-gate serve-smoke shard-smoke

# Continuous-integration gate: everything check runs, plus the
# fixed-seed verification sweep, the run-twice cache round trip, and the
# throughput smoke gate (detailed + functional engines).
ci: build docs-check analyze gitignore-check test-race fuzz-smoke cache-smoke region-gate counterpoint-gate serve-smoke shard-smoke sweep cache-ci bench-smoke

# Documentation gate: all Go code gofmt-clean (examples included),
# go vet over everything, and no broken relative links in any *.md.
docs-check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./internal/tools/linkcheck

# Simulator throughput microbenchmarks (ns/inst, simMIPS, allocs/inst).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkTable1Baseline|BenchmarkCorePipeline' -benchmem .

# Throughput smoke gate (wired into `make ci`): BenchmarkSimThroughput at
# a fixed -benchtime, best-of-3, compared against the committed baseline
# (bench_smoke_baseline.json). Fails on an allocs/inst regression above
# the PR-1 steady-state floor or a >25% ns/inst regression.
bench-smoke:
	$(GO) run ./internal/tools/benchsmoke -baseline bench_smoke_baseline.json

# Regenerate the committed throughput report for this tree. Bump the
# target filename when the tree's performance character changes; older
# BENCH_N.json files stay committed as the trajectory.
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_5.json

# Full paper evaluation at the default commit budget.
experiments:
	$(GO) run ./cmd/experiments -all

# Remove stray build and run artifacts. Everything removed here must
# also be covered by .gitignore (gitignore-check enforces this, and runs
# as part of `make check` and `make ci`).
clean:
	rm -f *.test *.prof *.pprof experiments_output.txt stats.json trace.json
	rm -f experiments vcaasm vcacc vcasim vcaserved
	rm -rf .simcache-ci

# Every artifact `make clean` removes must be git-ignored, so a build or
# experiment run can never dirty the tree.
gitignore-check:
	@for f in vca.test core.test cpu.prof heap.pprof experiments_output.txt \
	    stats.json trace.json experiments vcaasm vcacc vcasim vcaserved .simcache-ci/; do \
		git check-ignore -q "$$f" || { echo "gitignore-check: $$f is not covered by .gitignore"; exit 1; }; \
	done
	@echo "gitignore-check: all clean artifacts are ignored"
