GO ?= go

.PHONY: all build test check bench benchjson experiments

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and every test must pass.
test:
	$(GO) test ./...

# Extended gate: static checks plus the full suite under the race
# detector. Slower than `make test`; run before sending a change.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Simulator throughput microbenchmarks (ns/inst, simMIPS, allocs/inst).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkTable1Baseline|BenchmarkCorePipeline' -benchmem .

# Regenerate the committed throughput report for this tree.
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_1.json

# Full paper evaluation at the default commit budget.
experiments:
	$(GO) run ./cmd/experiments -all
