GO ?= go

.PHONY: all build test check docs-check bench benchjson experiments

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and every test must pass.
test:
	$(GO) test ./...

# Extended gate: static checks plus the full suite under the race
# detector. Slower than `make test`; run before sending a change.
check: docs-check
	$(GO) test -race ./...

# Documentation gate: all Go code gofmt-clean (examples included),
# go vet over everything, and no broken relative links in any *.md.
docs-check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./internal/tools/linkcheck

# Simulator throughput microbenchmarks (ns/inst, simMIPS, allocs/inst).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkTable1Baseline|BenchmarkCorePipeline' -benchmem .

# Regenerate the committed throughput report for this tree. Bump the
# target filename when the tree's performance character changes; older
# BENCH_N.json files stay committed as the trajectory.
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_2.json

# Full paper evaluation at the default commit budget.
experiments:
	$(GO) run ./cmd/experiments -all
