GO ?= go

.PHONY: all build test test-race fuzz-smoke sweep check ci docs-check bench benchjson experiments

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and every test must pass.
test:
	$(GO) test ./...

# Full suite under the race detector.
test-race:
	$(GO) test -race ./...

# Short-budget native fuzzing over the three fuzz targets (assembler,
# mini-C compiler, whole-stack lockstep). Each target gets a small time
# budget on top of replaying its committed corpus; failures minimize
# into testdata/fuzz/ automatically.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/minic -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzRandomProgramsLockstep$$' -fuzztime $(FUZZTIME)

# Fixed-seed config-space lockstep sweep (see docs/VERIFICATION.md).
sweep:
	$(GO) run ./cmd/experiments -sweep 25 -sweepseed 1

# Extended gate: static checks, the race suite, and the fuzz smoke.
# Slower than `make test`; run before sending a change.
check: docs-check test-race fuzz-smoke

# Continuous-integration gate: everything check runs, plus the
# fixed-seed verification sweep.
ci: build docs-check test-race fuzz-smoke sweep

# Documentation gate: all Go code gofmt-clean (examples included),
# go vet over everything, and no broken relative links in any *.md.
docs-check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./internal/tools/linkcheck

# Simulator throughput microbenchmarks (ns/inst, simMIPS, allocs/inst).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkTable1Baseline|BenchmarkCorePipeline' -benchmem .

# Regenerate the committed throughput report for this tree. Bump the
# target filename when the tree's performance character changes; older
# BENCH_N.json files stay committed as the trajectory.
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_2.json

# Full paper evaluation at the default commit budget.
experiments:
	$(GO) run ./cmd/experiments -all
