package vca

import (
	"strings"
	"testing"
)

const facadeSrc = `
int sq(int x) { return x * x; }
int main() {
	int s = 0;
	int i;
	for (i = 1; i <= 10; i = i + 1) { s = s + sq(i); }
	print_int(s);   // 385
	return 0;
}`

func TestFacadeCompileEmulateRun(t *testing.T) {
	for _, abi := range []ABI{ABIFlat, ABIWindowed} {
		prog, err := CompileC(facadeSrc, abi)
		if err != nil {
			t.Fatalf("%v: %v", abi, err)
		}
		out, insts, err := Emulate(prog, abi == ABIWindowed)
		if err != nil {
			t.Fatalf("%v: %v", abi, err)
		}
		if out != "385" || insts == 0 {
			t.Errorf("%v: out=%q insts=%d", abi, out, insts)
		}
	}
}

func TestFacadeAllArchitectures(t *testing.T) {
	flat, err := CompileC(facadeSrc, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	win, err := CompileC(facadeSrc, ABIWindowed)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		arch Arch
		prog *Program
		regs int
	}{
		{Baseline, flat, 256},
		{VCAFlat, flat, 96},
		{ConvWindowed, win, 160},
		{IdealWindowed, win, 128},
		{VCAWindowed, win, 72},
	}
	for _, c := range cases {
		res, err := Run(MachineSpec{Arch: c.arch, PhysRegs: c.regs}, c.prog)
		if err != nil {
			t.Fatalf("%v: %v", c.arch, err)
		}
		if got := res.Output(0); got != "385" {
			t.Errorf("%v: output %q", c.arch, got)
		}
		if res.IPC() <= 0 || res.Cycles == 0 {
			t.Errorf("%v: empty metrics", c.arch)
		}
	}
}

func TestFacadeAssemble(t *testing.T) {
	prog, err := Assemble(`
main:   li a0, 42
        syscall 2
        li a0, 0
        syscall 0
`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Emulate(prog, false)
	if err != nil || out != "42" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := CompileC("int main( {", ABIFlat); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := Run(MachineSpec{}); err == nil {
		t.Error("no programs accepted")
	}
	prog, _ := CompileC(facadeSrc, ABIFlat)
	// Flat binary on a windowed machine must be rejected up front? The
	// facade picks windowed-ness from the arch, so this runs the flat
	// binary with window semantics: the spec is consistent by
	// construction and simply executes. What must fail is an impossible
	// machine:
	if _, err := Run(MachineSpec{Arch: Baseline, PhysRegs: 64}, prog); err == nil {
		t.Error("baseline with 64 registers must be rejected")
	}
	if _, err := Run(MachineSpec{Arch: Arch(99)}, prog); err == nil {
		t.Error("unknown arch accepted")
	}
}

// TestManyThreads exercises the paper's §6 claim that VCA state per
// thread is only a PC and base pointers: eight threads share a 192-entry
// register file — less than a third of their combined architectural state.
func TestManyThreads(t *testing.T) {
	prog, err := CompileC(facadeSrc, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*Program, 8)
	for i := range progs {
		progs[i] = prog
	}
	res, err := Run(MachineSpec{Arch: VCAFlat, PhysRegs: 192}, progs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if res.Output(i) != "385" {
			t.Errorf("thread %d output %q", i, res.Output(i))
		}
		if !res.Threads[i].Done {
			t.Errorf("thread %d did not finish", i)
		}
	}
}

// TestFacadeFastForward splices a run at its midpoint: the first half
// executes on the fast functional engine, the second half on the
// detailed machine (with co-simulation on, so the transplant is audited
// per instruction). Functional output prefix + detailed output suffix
// must reassemble the complete program output.
func TestFacadeFastForward(t *testing.T) {
	for _, arch := range []Arch{Baseline, VCAWindowed} {
		abi := ABIFlat
		if arch.Windowed() {
			abi = ABIWindowed
		}
		prog, err := CompileC(facadeSrc, abi)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		_, total, err := Emulate(prog, arch.Windowed())
		if err != nil {
			t.Fatal(err)
		}
		cut := total / 2
		ck, err := FastForward(prog, arch.Windowed(), cut)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if ck.Insts != cut {
			t.Fatalf("%v: checkpoint at inst %d, want %d", arch, ck.Insts, cut)
		}
		res, err := Run(MachineSpec{Arch: arch, FastForward: cut}, prog)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if got := string(ck.Output) + res.Output(0); got != "385" {
			t.Errorf("%v: spliced output %q, want 385", arch, got)
		}
		if got := res.Threads[0].Committed; got != total-cut {
			t.Errorf("%v: detailed committed %d, want %d", arch, got, total-cut)
		}
	}
}

// TestFacadeCheckpointFile round-trips a checkpoint through Save/Load
// and resumes a detailed run from the loaded image.
func TestFacadeCheckpointFile(t *testing.T) {
	prog, err := CompileC(facadeSrc, ABIWindowed)
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := Emulate(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	cut := total / 3
	ck, err := FastForward(prog, true, cut)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ck.json"
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	wantAddr, _ := ck.ContentAddress()
	gotAddr, _ := loaded.ContentAddress()
	if wantAddr != gotAddr {
		t.Fatalf("file round trip changed the image: %.12s -> %.12s", wantAddr, gotAddr)
	}
	res, err := Run(MachineSpec{Arch: VCAWindowed, Restore: []*Checkpoint{loaded}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(loaded.Output) + res.Output(0); got != "385" {
		t.Errorf("resumed output %q, want 385", got)
	}
}

func TestFacadeFastForwardErrors(t *testing.T) {
	prog, err := CompileC(facadeSrc, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := FastForward(prog, false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(MachineSpec{Arch: Baseline, FastForward: 10, Restore: []*Checkpoint{ck}}, prog); err == nil {
		t.Error("FastForward+Restore accepted")
	}
	if _, err := Run(MachineSpec{Arch: Baseline, FastForward: 10, ChromeTrace: NewTraceRecorder()}, prog); err == nil {
		t.Error("FastForward+ChromeTrace accepted")
	}
	if _, err := Run(MachineSpec{Arch: Baseline, Restore: []*Checkpoint{ck, ck}}, prog); err == nil {
		t.Error("more checkpoints than threads accepted")
	}
	if _, err := FastForward(prog, false, 1<<40); err == nil {
		t.Error("fast-forward past program exit accepted")
	}
}

func TestArchStrings(t *testing.T) {
	for _, a := range []Arch{Baseline, ConvWindowed, IdealWindowed, VCAFlat, VCAWindowed} {
		if strings.Contains(a.String(), "?") {
			t.Errorf("arch %d has no name", a)
		}
	}
	if Baseline.Windowed() || !VCAWindowed.Windowed() {
		t.Error("windowed classification wrong")
	}
}
