package vca

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"vca/internal/minic"
	"vca/internal/workload"
)

// schedGoldenArchs is the architecture axis of the scheduler golden
// matrix: the three machine flavors the paper's figures compare. The
// conventional-window and ideal-window models are covered separately by
// the core package's own tests; the matrix here pins the full workload
// suite on the three models every figure sweeps.
var schedGoldenArchs = []Arch{Baseline, VCAFlat, VCAWindowed}

// schedGoldenStop keeps the 15x3 matrix fast enough for the tier-1 test
// run while still deep enough to exercise spills, squashes, and
// long-latency stalls on every workload.
const schedGoldenStop = 25_000

// schedGoldenExtended widens the matrix beyond the single-threaded
// grid: a conventional-window SMT pair in the one-resident-window band
// (heavy trap traffic), a VCA-windowed SMT pair, and two
// checkpoint-restored runs that fast-forward 5000 instructions on the
// functional engine before detailed simulation. These pin the exact
// paths the counter-oracle matrix (internal/experiments,
// `make counterpoint-gate`) measures.
var schedGoldenExtended = []struct {
	key         string
	arch        Arch
	workloads   []string
	physRegs    int
	fastForward uint64
}{
	{"conventional-windowed/2T:gcc_expr+parser", ConvWindowed, []string{"gcc_expr", "parser"}, 144, 0},
	{"vca-windowed/2T:crafty+twolf", VCAWindowed, []string{"crafty", "twolf"}, 192, 0},
	{"baseline/ff:bzip2_graphic", Baseline, []string{"bzip2_graphic"}, 256, 5_000},
	{"vca-windowed/ff:gap", VCAWindowed, []string{"gap"}, 128, 5_000},
}

// schedGoldenCell runs one (workload, arch) cell and returns a digest of
// everything the experiments consume: the Result aggregates and the full
// deterministic stats dump (every counter, histogram, and occupancy
// track).
func schedGoldenCell(t *testing.T, archIdx Arch, w workload.Benchmark) string {
	t.Helper()
	abi := minic.ABIFlat
	if archIdx.Windowed() {
		abi = minic.ABIWindowed
	}
	prog, err := w.Build(abi)
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	physRegs := 256
	if archIdx != Baseline {
		physRegs = 128
	}
	res, err := Run(MachineSpec{Arch: archIdx, PhysRegs: physRegs, StopAfter: schedGoldenStop}, prog)
	if err != nil {
		t.Fatalf("%s/%s: run: %v", archIdx, w.Name, err)
	}
	return schedGoldenDigest(t, res)
}

// schedGoldenExtendedCell runs one widened cell: one program per
// hardware thread, optionally restored from a functional fast-forward.
func schedGoldenExtendedCell(t *testing.T, arch Arch, names []string, physRegs int, ff uint64) string {
	t.Helper()
	abi := minic.ABIFlat
	if arch.Windowed() {
		abi = minic.ABIWindowed
	}
	progs := make([]*Program, len(names))
	for i, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		progs[i], err = w.Build(abi)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
	}
	res, err := Run(MachineSpec{
		Arch:        arch,
		PhysRegs:    physRegs,
		StopAfter:   schedGoldenStop,
		FastForward: ff,
	}, progs...)
	if err != nil {
		t.Fatalf("%s %v: run: %v", arch, names, err)
	}
	return schedGoldenDigest(t, res)
}

func schedGoldenDigest(t *testing.T, res Result) string {
	t.Helper()
	h := sha256.New()
	resJSON, err := json.Marshal(res.Result)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(resJSON)
	var stats bytes.Buffer
	if err := res.WriteStats(&stats, nil); err != nil {
		t.Fatal(err)
	}
	h.Write(stats.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// TestSchedulerGoldenMatrix pins the simulated output of all 15 workloads
// on baseline, VCA-flat, and VCA-windowed machines against digests
// recorded before the event-driven scheduler rework: identical Result
// stats, identical counter maps, identical occupancy histograms. Any
// cycle-level behavior change — an instruction issuing a cycle early, a
// stall attributed to a different cause, an occupancy sample missed by
// the quiesced-cycle skip — lands here as a digest mismatch.
//
// Regenerate (only for a change that is *meant* to alter simulated
// behavior) with: go test -run TestSchedulerGoldenMatrix -update
func TestSchedulerGoldenMatrix(t *testing.T) {
	goldenPath := filepath.Join("testdata", "sched_golden.json")
	got := make(map[string]string)
	for _, arch := range schedGoldenArchs {
		for _, w := range workload.All() {
			key := fmt.Sprintf("%s/%s", arch, w.Name)
			got[key] = schedGoldenCell(t, arch, w)
		}
	}
	for _, c := range schedGoldenExtended {
		got[c.key] = schedGoldenExtendedCell(t, c.arch, c.workloads, c.physRegs, c.fastForward)
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		out, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(goldenPath, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (run with -update to generate): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, matrix produced %d", len(want), len(got))
	}
	for key, wd := range want {
		if gd, ok := got[key]; !ok {
			t.Errorf("%s: missing from run", key)
		} else if gd != wd {
			t.Errorf("%s: simulated output diverged from pre-rework golden (digest %s, want %s)", key, gd[:12], wd[:12])
		}
	}
}
