package progen

import (
	"math/rand"
	"testing"

	"vca/internal/asm"
	"vca/internal/emu"
	"vca/internal/isa"
	"vca/internal/program"
)

// runBoth assembles a generated program and runs it under both emulator
// ABIs, requiring identical output — the dual-ABI safety property every
// generated program must have.
func runBoth(t *testing.T, src string) string {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	run := func(windowed bool) string {
		m := emu.New(prog, emu.Config{Windowed: windowed, MaxInsts: 10_000_000})
		reason, err := m.Run()
		if err != nil || reason != emu.StopExited {
			t.Fatalf("emu (windowed=%v): %v (%v)\n%s", windowed, err, reason, src)
		}
		return m.Output.String()
	}
	flat := run(false)
	if win := run(true); win != flat {
		t.Fatalf("ABI divergence: flat %q, windowed %q\n%s", flat, win, src)
	}
	return flat
}

func TestFromSeedDualABISafe(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		runBoth(t, FromSeed(seed))
	}
}

// TestAllFeaturesTogether forces every generator feature on at its
// maximum so none of them hides behind seed luck.
func TestAllFeaturesTogether(t *testing.T) {
	cfgs := []Config{
		{Helpers: 4, Recursion: true, MaxRecDepth: 12, Blocks: 64, Loops: true, Aliasing: true},
		{WindowLadder: 7, Recursion: true, MaxRecDepth: 12, Blocks: 32, Loops: true, Aliasing: true},
		{WindowLadder: 7, Blocks: 48},
		{Recursion: true, MaxRecDepth: 12, Blocks: 24},
		{Blocks: 1},
	}
	for i, cfg := range cfgs {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed*100 + int64(i)))
			runBoth(t, Generate(r, cfg))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Default())
	b := Generate(rand.New(rand.NewSource(7)), Default())
	if a != b {
		t.Fatal("Generate is not deterministic for a fixed seed and config")
	}
}

func TestNormalizedClampsToSafeEnvelope(t *testing.T) {
	c := Config{Helpers: 99, WindowLadder: 99, Recursion: true, MaxRecDepth: 99, Blocks: 9999}.normalized()
	if c.WindowLadder != 7 || c.Helpers != 0 {
		t.Errorf("ladder/helpers not clamped: %+v", c)
	}
	if c.MaxRecDepth != 12 {
		t.Errorf("MaxRecDepth not clamped: %d", c.MaxRecDepth)
	}
	if c.Blocks != 64 {
		t.Errorf("Blocks not clamped: %d", c.Blocks)
	}
	if d := (Config{}).normalized(); d.Blocks != 16 || d.MaxRecDepth != 8 {
		t.Errorf("zero-value defaults wrong: %+v", d)
	}
}

// TestGenerateSMT checks each per-thread program independently satisfies
// the dual-ABI property and that thread programs actually differ.
func TestGenerateSMT(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	progs := GenerateSMT(r, Default(), 4)
	if len(progs) != 4 {
		t.Fatalf("got %d programs, want 4", len(progs))
	}
	distinct := false
	for i, src := range progs {
		runBoth(t, src)
		if i > 0 && src != progs[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all SMT thread programs are identical")
	}
}

// TestRecursionStackFits checks the deepest configured recursion stays
// within the generated rstk backing store (12 levels * 8 bytes = 96 of
// the 128 reserved), and that register-space layout assumptions used by
// the window-stress ladder hold.
func TestRecursionStackFits(t *testing.T) {
	if maxDepth := (Config{Recursion: true, MaxRecDepth: 12}).normalized().MaxRecDepth; maxDepth*8 > 128 {
		t.Fatalf("recursion stack may overflow: depth %d needs %d bytes, rstk has 128", maxDepth, maxDepth*8)
	}
	// Ladder depth 7 plus main is 8 windows; every thread's register space
	// holds vastly more than that.
	if depth := 8 * isa.WindowBytes; uint64(depth) > program.RegSpaceStride {
		t.Fatalf("ladder windows exceed a thread's register space")
	}
}
