// Package progen generates random — but structurally safe — assembly
// programs for differential testing of the simulator. It grew out of
// the ad-hoc generator in internal/core's fuzz test and is shared by
// the native fuzz harnesses, the squash/SMT stress tests, and the
// config-space sweep runner (internal/verify).
//
// Every generated program is dual-ABI-safe: one binary produces the
// same output under the flat and the windowed calling convention, so it
// can run unmodified on all machine models (and both emulator modes)
// and any output difference indicts the machine, not the program. The
// construction rules:
//
//   - Control flow terminates by construction: branches are forward,
//     except loop back-edges driven by a dedicated down-counting
//     register (gp) that nothing else touches, and recursion bounded by
//     a decrementing argument with a zero guard.
//   - Helpers are called strictly downward (fK may call fJ only for
//     J < K), so call depth is bounded.
//   - Each helper owns a disjoint set of windowed registers and writes
//     every one of them before any read, so flat (shared registers) and
//     windowed (fresh frame) semantics coincide exactly.
//   - The recursive helper touches no windowed registers at all: its
//     return-address stack and accumulator live in data memory and its
//     scratch registers are globals, so arbitrary window rotation —
//     including the depth clamp on VCA-window machines — cannot change
//     its result.
//   - main keeps its state in caller-saved temporaries and globals that
//     no helper touches.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config selects which structures a generated program contains. The
// zero value generates a minimal straight-line program; Default returns
// the general-purpose mix.
type Config struct {
	// Helpers is the length of the downward-call helper chain (0-4).
	// Each helper keeps live state in its own windowed registers.
	Helpers int `json:"helpers"`
	// WindowLadder is the depth of an unconditional call ladder (0-7)
	// that drives the machine to its maximum window depth on every
	// traversal — the window-stress mode. The ladder owns the windowed
	// register files, so it replaces Helpers when non-zero.
	WindowLadder int `json:"window_ladder,omitempty"`
	// Recursion includes a bounded recursive helper with a memory-based
	// return-address stack.
	Recursion bool `json:"recursion,omitempty"`
	// MaxRecDepth bounds recursion depth (default 8, capped at 12).
	MaxRecDepth int `json:"max_rec_depth,omitempty"`
	// Blocks is the number of random blocks in main (default 16).
	Blocks int `json:"blocks"`
	// Loops enables bounded backward loops in main.
	Loops bool `json:"loops,omitempty"`
	// Aliasing enables overlapping mixed-width load/store blocks through
	// the scratch buffer (exercises store-forwarding and partial-overlap
	// ordering in the LSQ).
	Aliasing bool `json:"aliasing,omitempty"`
}

// Default returns the general-purpose generator mix.
func Default() Config {
	return Config{Helpers: 3, Recursion: true, Blocks: 16, Loops: true, Aliasing: true}
}

// normalized clamps a configuration into the generator's safe envelope.
func (c Config) normalized() Config {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	c.Helpers = clamp(c.Helpers, 0, 4)
	c.WindowLadder = clamp(c.WindowLadder, 0, 7)
	if c.WindowLadder > 0 {
		c.Helpers = 0 // the ladder owns the windowed register files
	}
	if c.MaxRecDepth == 0 {
		c.MaxRecDepth = 8
	}
	c.MaxRecDepth = clamp(c.MaxRecDepth, 1, 12)
	if c.Blocks == 0 {
		c.Blocks = 16
	}
	c.Blocks = clamp(c.Blocks, 1, 64)
	return c
}

// FromSeed derives a varied configuration and program from one seed —
// the single-knob entry point the fuzz harnesses use.
func FromSeed(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	cfg := Config{
		Helpers:  r.Intn(5),
		Blocks:   8 + r.Intn(24),
		Loops:    r.Intn(2) == 0,
		Aliasing: r.Intn(2) == 0,
	}
	if r.Intn(3) == 0 {
		cfg.WindowLadder = 2 + r.Intn(6)
	}
	if r.Intn(2) == 0 {
		cfg.Recursion = true
		cfg.MaxRecDepth = 2 + r.Intn(9)
	}
	return Generate(r, cfg)
}

// GenerateSMT returns one program per hardware thread, with per-thread
// structural jitter so the threads stress different machine paths.
func GenerateSMT(r *rand.Rand, cfg Config, threads int) []string {
	out := make([]string, threads)
	for t := range out {
		c := cfg
		c.Blocks = 1 + cfg.Blocks + r.Intn(8)
		if t%2 == 1 && c.WindowLadder == 0 && r.Intn(2) == 0 {
			c.WindowLadder = 2 + r.Intn(4)
		}
		out[t] = Generate(r, c)
	}
	return out
}

type gen struct {
	b      strings.Builder
	r      *rand.Rand
	cfg    Config
	labelN int
	// call targets available to main and loop bodies
	calls []string
}

// Generate emits one dual-ABI-safe assembly program.
func Generate(r *rand.Rand, cfg Config) string {
	g := &gen{r: r, cfg: cfg.normalized()}
	g.emitHelpers()
	g.emitLadder()
	g.emitRecursive()
	g.emitMain()
	g.emitData()
	return g.b.String()
}

func (g *gen) label() string {
	g.labelN++
	return fmt.Sprintf("L%d", g.labelN)
}

func (g *gen) f(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// emitHelpers writes the downward-call helper chain f0..f{n-1}. Helper
// fK owns windowed work registers s{3K}..s{3K+2} and return-address
// stash s{15-K} — disjoint across helpers, so values stay live across
// nested calls under both ABIs.
func (g *gen) emitHelpers() {
	for k := 0; k < g.cfg.Helpers; k++ {
		w0 := fmt.Sprintf("s%d", 3*k)
		w1 := fmt.Sprintf("s%d", 3*k+1)
		w2 := fmt.Sprintf("s%d", 3*k+2)
		stash := fmt.Sprintf("s%d", 15-k)
		g.f("f%d:\n", k)
		// Windowed-safe: write own windowed registers before any read.
		g.f("        mov %s, ra\n", stash)
		g.f("        mov %s, a0\n", w0)
		g.f("        li %s, %d\n", w1, g.r.Intn(1000))
		g.f("        li %s, %d\n", w2, 1+g.r.Intn(50))
		for i, ops := 0, 3+g.r.Intn(8); i < ops; i++ {
			g.emitALU([]string{w0, w1, w2})
		}
		if k > 0 && g.r.Intn(2) == 0 {
			g.f("        add a0, %s, %s\n", w0, w1)
			g.f("        jsr f%d\n", g.r.Intn(k))
			g.f("        add %s, %s, v0\n", w0, w0)
		}
		g.f("        add v0, %s, %s\n", w0, w2)
		g.f("        ret (%s)\n", stash)
		g.calls = append(g.calls, fmt.Sprintf("f%d", k))
	}
}

// emitLadder writes the window-stress call ladder l{d-1} -> ... -> l0:
// each rung calls the next unconditionally, so one call from main
// reaches the full configured call depth (forcing window spills on
// small machines and traps on conventional-window ones). Rung K owns
// work register s{K} and stash s{15-K}.
func (g *gen) emitLadder() {
	for k := 0; k < g.cfg.WindowLadder; k++ {
		work := fmt.Sprintf("s%d", k)
		stash := fmt.Sprintf("s%d", 15-k)
		g.f("l%d:\n", k)
		g.f("        mov %s, ra\n", stash)
		g.f("        addi %s, a0, %d\n", work, 1+g.r.Intn(97))
		if k > 0 {
			g.f("        mov a0, %s\n", work)
			g.f("        jsr l%d\n", k-1)
			g.f("        add %s, %s, v0\n", work, work)
		}
		g.f("        addi v0, %s, %d\n", work, g.r.Intn(13))
		g.f("        ret (%s)\n", stash)
	}
	if g.cfg.WindowLadder > 0 {
		g.calls = append(g.calls, fmt.Sprintf("l%d", g.cfg.WindowLadder-1))
	}
}

// emitRecursive writes frec, the bounded recursive helper. It uses no
// windowed registers: the return address is pushed on a memory stack
// (rstk via the rsp cell), the running result accumulates in the racc
// cell, and scratch lives in the global a4/a5 registers — so its
// behavior is identical at any window depth, clamped or not.
func (g *gen) emitRecursive() {
	if !g.cfg.Recursion {
		return
	}
	base := g.label()
	g.f("frec:\n")
	g.f("        beq a0, %s\n", base)
	// Push ra on the memory stack.
	g.f("        la a4, rsp\n")
	g.f("        ldq a5, 0(a4)\n")
	g.f("        stq ra, 0(a5)\n")
	g.f("        addi a5, a5, 8\n")
	g.f("        stq a5, 0(a4)\n")
	g.f("        addi a0, a0, -1\n")
	g.f("        jsr frec\n")
	// Accumulate into the memory cell.
	g.f("        la a4, racc\n")
	g.f("        ldq a5, 0(a4)\n")
	g.f("        addi a5, a5, %d\n", 1+g.r.Intn(211))
	g.f("        stq a5, 0(a4)\n")
	// Pop ra and return the accumulator.
	g.f("        la a4, rsp\n")
	g.f("        ldq a5, 0(a4)\n")
	g.f("        addi a5, a5, -8\n")
	g.f("        stq a5, 0(a4)\n")
	g.f("        ldq ra, 0(a5)\n")
	g.f("        la a4, racc\n")
	g.f("        ldq v0, 0(a4)\n")
	g.f("        ret (ra)\n")
	g.f("%s:\n", base)
	g.f("        li v0, %d\n", g.r.Intn(89))
	g.f("        ret (ra)\n")
}

// emitMain writes the main body: temporaries t0..t3 hold live state (no
// helper touches them), t4 is an address/mask scratch, gp is the loop
// counter. Ends by printing two bounded checksums and exiting.
func (g *gen) emitMain() {
	g.f("main:\n")
	if g.cfg.Recursion {
		// Initialize the recursion helper's memory stack pointer.
		g.f("        la a4, rsp\n")
		g.f("        la a5, rstk\n")
		g.f("        stq a5, 0(a4)\n")
	}
	g.f("        li t0, %d\n", g.r.Intn(100))
	g.f("        li t1, %d\n", 1+g.r.Intn(100))
	g.f("        li t2, %d\n", 1+g.r.Intn(100))
	g.f("        li t3, %d\n", g.r.Intn(100))
	for i := 0; i < g.cfg.Blocks; i++ {
		g.emitBlock(true)
	}
	g.f("        li t4, 0xffffff\n")
	g.f("        and a0, t0, t4\n")
	g.f("        syscall 2\n")
	g.f("        xor a0, t1, t2\n")
	g.f("        and a0, a0, t4\n")
	g.f("        syscall 2\n")
	g.f("        li a0, 0\n")
	g.f("        syscall 0\n")
}

// emitBlock writes one random main-body block. topLevel gates the block
// kinds that may not nest (loops).
func (g *gen) emitBlock(topLevel bool) {
	kinds := []func(){
		func() { g.emitALU([]string{"t0", "t1", "t2", "t3"}) },
		g.emitForwardBranch,
		g.emitMemRoundTrip,
	}
	if g.cfg.Aliasing {
		kinds = append(kinds, g.emitAliasing)
	}
	if len(g.calls) > 0 || g.cfg.Recursion {
		kinds = append(kinds, g.emitCall)
	}
	if topLevel && g.cfg.Loops {
		kinds = append(kinds, g.emitLoop)
	}
	kinds[g.r.Intn(len(kinds))]()
}

func (g *gen) emitForwardBranch() {
	l := g.label()
	reg := []string{"t1", "t2", "t3"}[g.r.Intn(3)]
	op := []string{"beq", "bne", "blt", "bge"}[g.r.Intn(4)]
	g.f("        %s %s, %s\n", op, reg, l)
	for j := 0; j <= g.r.Intn(3); j++ {
		g.emitALU([]string{"t0", "t1", "t2"})
	}
	g.f("%s:\n", l)
}

func (g *gen) emitMemRoundTrip() {
	off := 8 * g.r.Intn(8)
	g.f("        la t4, buf\n")
	g.f("        stq t%d, %d(t4)\n", g.r.Intn(4), off)
	g.f("        ldq t%d, %d(t4)\n", 1+g.r.Intn(3), off)
}

// emitAliasing writes a burst of overlapping mixed-width accesses at
// one buffer neighborhood: quad/long/byte stores and loads whose spans
// intersect, driving the LSQ through store-forwarding hits, partial
// overlaps (which must wait for commit), and sub-word extension.
func (g *gen) emitAliasing() {
	base := g.r.Intn(13) * 8 // keep every access within buf
	g.f("        la t4, buf\n")
	g.f("        stq t%d, %d(t4)\n", g.r.Intn(4), base)
	n := 2 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		t := g.r.Intn(4)
		switch g.r.Intn(6) {
		case 0:
			g.f("        stl t%d, %d(t4)\n", t, base+4*g.r.Intn(3))
		case 1:
			g.f("        stb t%d, %d(t4)\n", t, base+g.r.Intn(9))
		case 2:
			g.f("        ldl t%d, %d(t4)\n", t, base+4*g.r.Intn(2))
		case 3:
			g.f("        ldbu t%d, %d(t4)\n", t, base+g.r.Intn(9))
		case 4:
			g.f("        ldq t%d, %d(t4)\n", t, base)
		case 5:
			g.f("        stq t%d, %d(t4)\n", t, base+8*g.r.Intn(2))
		}
	}
	g.f("        ldq t%d, %d(t4)\n", 1+g.r.Intn(3), base)
}

func (g *gen) emitCall() {
	targets := g.calls
	if g.cfg.Recursion && (len(targets) == 0 || g.r.Intn(3) == 0) {
		g.f("        li a0, %d\n", 1+g.r.Intn(g.cfg.MaxRecDepth))
		g.f("        jsr frec\n")
		g.f("        add t0, t0, v0\n")
		return
	}
	g.f("        mov a0, t%d\n", g.r.Intn(4))
	g.f("        jsr %s\n", targets[g.r.Intn(len(targets))])
	g.f("        add t0, t0, v0\n")
}

// emitLoop writes a bounded backward loop. The counter lives in gp,
// which no other generated code touches, so the loop terminates
// regardless of what the body computes.
func (g *gen) emitLoop() {
	l := g.label()
	g.f("        li gp, %d\n", 2+g.r.Intn(5))
	g.f("%s:\n", l)
	for j, n := 0, 1+g.r.Intn(3); j < n; j++ {
		g.emitBlock(false)
	}
	g.f("        addi gp, gp, -1\n")
	g.f("        bgt gp, %s\n", l)
}

func (g *gen) emitALU(regs []string) {
	d := regs[g.r.Intn(len(regs))]
	a := regs[g.r.Intn(len(regs))]
	c := regs[g.r.Intn(len(regs))]
	switch g.r.Intn(8) {
	case 0:
		g.f("        add %s, %s, %s\n", d, a, c)
	case 1:
		g.f("        sub %s, %s, %s\n", d, a, c)
	case 2:
		g.f("        mul %s, %s, %s\n", d, a, c)
	case 3:
		g.f("        xor %s, %s, %s\n", d, a, c)
	case 4:
		g.f("        addi %s, %s, %d\n", d, a, g.r.Intn(4096)-2048)
	case 5:
		g.f("        slli %s, %s, %d\n", d, a, g.r.Intn(8))
		g.f("        srai %s, %s, %d\n", d, d, g.r.Intn(4))
	case 6:
		g.f("        cmplt %s, %s, %s\n", d, a, c)
	case 7:
		g.f("        div %s, %s, %s\n", d, a, c)
	}
}

// emitData writes the data section: the load/store scratch buffer and
// the recursion helper's stack and accumulator cells.
func (g *gen) emitData() {
	g.f("        .data\n")
	g.f("buf:    .space 128\n")
	g.f("rstk:   .space 128\n")
	g.f("rsp:    .space 8\n")
	g.f("racc:   .space 8\n")
}
