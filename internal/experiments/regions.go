package experiments

import (
	"fmt"

	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/program"
	"vca/internal/simcache"
)

// Parallel-region simulation: the detailed run of one program is split
// into K consecutive regions of RegionLen committed instructions. A
// functional fast-forward walk (emu.FastRun, tens of MIPS) manufactures
// the architectural checkpoint at each region boundary; each region is
// then simulated on the detailed core independently — region i starts by
// transplanting boundary checkpoint i (core.InjectCheckpoint) and stops
// exactly RegionLen commits later (core.Config.StopExact) — so the K
// detailed simulations, by far the dominant cost, run concurrently on
// the shared job runner.
//
// Stitching sums the per-region counter maps, cycles, and committed
// counts and concatenates the per-region program output. Architectural
// quantities stitch exactly: the regions partition the committed
// instruction stream, so committed counts, output, and exit status are
// identical to a continuous run by construction (the audit below proves
// it). Microarchitectural quantities (cycles, cache misses, predictor
// traffic) carry a per-region cold-start: every region after the first
// begins with cold caches and predictors the continuous run had warm, so
// the stitched cycle count is an upper bound that tightens as RegionLen
// grows. EXPERIMENTS.md quantifies the effect.
//
// Determinism contract: region jobs are independent and deterministic,
// so the stitched result is bit-identical whatever the worker count.
// TestRegionStitchedGoldenMatrix pins parallel-vs-sequential identity
// across the 45-cell golden matrix; Audit mode additionally proves, per
// boundary, that the detailed core's extracted end-of-region state is
// content-address-identical to the functional walk's checkpoint.

// RegionOptions configures one parallel-region run.
type RegionOptions struct {
	// Regions is K, the maximum number of regions (≥ 1). The program
	// exiting during the functional walk truncates the plan.
	Regions int
	// RegionLen is the committed-instruction length of each region.
	RegionLen uint64
	// Jobs is the worker count for the detailed region simulations
	// (0 = GOMAXPROCS; 1 = strictly sequential, the identity-gate
	// reference).
	Jobs int
	// NoCache bypasses the result/checkpoint cache even when one is
	// installed, forcing every region to simulate (identity gates must
	// compare two real simulations, not a simulation against its own
	// cached copy).
	NoCache bool
	// Audit runs every region with co-simulation and the invariant
	// checker and cross-checks each region's extracted end state against
	// the functional walk's checkpoint for the same boundary (the region-
	// level state-transplant audit). Implies NoCache.
	Audit bool
}

// Region is one stitched segment of a parallel-region run.
type Region struct {
	Index      int
	StartInsts uint64 // absolute committed-instruction position of the region start
	StartAddr  string // content address of the starting checkpoint ("" = architectural reset)
	Result     *core.Result
	Counters   map[string]uint64
	CacheHit   bool
}

// RegionResult is the stitched outcome of a parallel-region run.
type RegionResult struct {
	Regions []Region
	// Cycles is the summed per-region cycle count (upper bound on the
	// continuous run's cycles; see the package comment on cold-start).
	Cycles uint64
	// Committed is the total committed instructions across regions.
	Committed uint64
	// Output is the concatenated program output, identical to a
	// continuous run's.
	Output   string
	Exited   bool
	ExitCode int64
	// Counters is the summed per-region counter map.
	Counters map[string]uint64
}

// regionBoundary is one region start produced by the functional walk.
type regionBoundary struct {
	startInsts uint64
	ck         *emu.Checkpoint // nil for region 0 (architectural reset)
}

// planRegions walks the program functionally and returns the region
// boundaries, ending early if the program exits. Boundary checkpoints
// are content-addressed into the installed cache (unless disabled) so a
// later sweep over the same program reuses the walk.
func planRegions(prog *program.Program, windowed bool, opts RegionOptions, c *simcache.Cache) ([]regionBoundary, error) {
	bounds := []regionBoundary{{startInsts: 0}}
	progHash := emu.ProgramHash(prog)
	fm := emu.New(prog, emu.Config{Windowed: windowed})
	pos := uint64(0)
	for i := 1; i < opts.Regions; i++ {
		target := uint64(i) * opts.RegionLen
		key := simcache.CheckpointKey(progHash, windowed, target)
		if ck, ok := c.GetCheckpoint(key); ok {
			if err := fm.RestoreCheckpoint(ck); err != nil {
				return nil, fmt.Errorf("experiments: cached boundary %d: %w", target, err)
			}
			pos = target
			bounds = append(bounds, regionBoundary{startInsts: target, ck: ck})
			continue
		}
		executed, err := fm.FastRun(target - pos)
		if err != nil {
			return nil, fmt.Errorf("experiments: fast-forward to %d: %w", target, err)
		}
		pos += executed
		if pos < target {
			break // program exits inside the previous region; plan truncated
		}
		if exited, _ := fm.Exited(); exited {
			break // exit lands exactly on the boundary: nothing left to simulate
		}
		ck := fm.Checkpoint()
		if err := c.PutCheckpoint(key, ck); err != nil {
			return nil, err
		}
		bounds = append(bounds, regionBoundary{startInsts: target, ck: ck})
	}
	return bounds, nil
}

// RunRegions simulates one program as Regions independent detailed
// segments and stitches the results. cfg's StopAfter/StopExact are
// overridden per region.
func RunRegions(cfg core.Config, prog *program.Program, windowed bool, opts RegionOptions) (*RegionResult, error) {
	if opts.Regions < 1 {
		return nil, fmt.Errorf("experiments: Regions must be >= 1 (got %d)", opts.Regions)
	}
	if opts.RegionLen == 0 {
		return nil, fmt.Errorf("experiments: RegionLen must be > 0")
	}
	c := cache
	if opts.NoCache || opts.Audit {
		c = nil
	}

	bounds, err := planRegions(prog, windowed, opts, c)
	if err != nil {
		return nil, err
	}

	cfg.StopAfter = opts.RegionLen
	cfg.StopExact = true
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 34
	}
	if opts.Audit {
		cfg.CoSim = true
		cfg.Check = true
	}

	regions := make([]Region, len(bounds))
	r := simcache.Runner{Jobs: opts.Jobs}
	err = r.Run(len(bounds), func(i int) error {
		b := bounds[i]
		reg := Region{Index: i, StartInsts: b.startInsts}
		if b.ck != nil {
			addr, err := b.ck.ContentAddress()
			if err != nil {
				return err
			}
			reg.StartAddr = addr
		}
		var next *emu.Checkpoint // functional image of this region's end boundary, when known
		if i+1 < len(bounds) {
			next = bounds[i+1].ck
		}
		if opts.Audit {
			res, counters, err := runRegionAudited(cfg, prog, windowed, b.ck, next)
			if err != nil {
				return err
			}
			reg.Result, reg.Counters = res, counters
		} else {
			var cks []*emu.Checkpoint
			if b.ck != nil {
				cks = []*emu.Checkpoint{b.ck}
			}
			res, counters, hit, err := c.RunMachineFrom(cfg, []*program.Program{prog}, windowed, cks)
			if err != nil {
				return err
			}
			reg.Result, reg.Counters, reg.CacheHit = res, counters, hit
		}
		regions[i] = reg
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stitchRegions(regions)
}

// runRegionAudited simulates one region with co-simulation and, when the
// functional walk knows this region's end boundary, proves the detailed
// core reached exactly that architectural state.
func runRegionAudited(cfg core.Config, prog *program.Program, windowed bool, start, end *emu.Checkpoint) (*core.Result, map[string]uint64, error) {
	m, err := core.New(cfg, []*program.Program{prog}, windowed)
	if err != nil {
		return nil, nil, err
	}
	if start != nil {
		if err := m.InjectCheckpoint(0, start); err != nil {
			return nil, nil, err
		}
	}
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	if end != nil {
		got, err := m.ExtractCheckpoint(0)
		if err != nil {
			return nil, nil, err
		}
		gotAddr, err := got.ContentAddress()
		if err != nil {
			return nil, nil, err
		}
		wantAddr, err := end.ContentAddress()
		if err != nil {
			return nil, nil, err
		}
		if gotAddr != wantAddr {
			return nil, nil, fmt.Errorf("experiments: region audit: detailed end state %.12s != functional boundary %.12s at inst %d",
				gotAddr, wantAddr, end.Insts)
		}
	}
	return res, res.Metrics.CounterMap(), nil
}

// stitchRegions reduces the per-region results to the stitched totals.
func stitchRegions(regions []Region) (*RegionResult, error) {
	out := &RegionResult{Regions: regions, Counters: map[string]uint64{}}
	for i, reg := range regions {
		res := reg.Result
		if res == nil {
			return nil, fmt.Errorf("experiments: region %d has no result", i)
		}
		if len(res.Threads) != 1 {
			return nil, fmt.Errorf("experiments: region stitching is single-threaded (region %d has %d threads)", i, len(res.Threads))
		}
		t := res.Threads[0]
		out.Cycles += res.Cycles
		out.Committed += t.Committed
		out.Output += t.Output
		if t.Done {
			if i != len(regions)-1 {
				return nil, fmt.Errorf("experiments: region %d exited but %d regions follow", i, len(regions)-1-i)
			}
			out.Exited, out.ExitCode = true, t.ExitCode
		}
		for k, v := range reg.Counters {
			out.Counters[k] += v
		}
	}
	return out, nil
}
