package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"vca/internal/simcache"
	"vca/internal/workload"
)

const testStop = 60_000 // per-run commit budget keeps the matrix fast

func TestTable2(t *testing.T) {
	rows, avg, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.All()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio >= 1.001 || r.Ratio < 0.6 {
			t.Errorf("%s ratio %.3f out of range", r.Benchmark, r.Ratio)
		}
	}
	if avg < 0.85 || avg > 0.99 {
		t.Errorf("average ratio %.3f", avg)
	}
}

func TestRegWindowSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	if raceDetectorOn {
		t.Skip("full-budget sweep takes tens of minutes under the race detector (see race_on_test.go)")
	}
	cells, err := RegWindowSweep(2, testStop)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline cannot run at 64 registers; VCA and ideal can.
	if _, ok := Cell(cells, ArchBaseline, 64); ok {
		t.Error("baseline should be invalid at 64 registers")
	}
	if _, ok := Cell(cells, ArchConvWindow, 64); ok {
		t.Error("conventional windows should be invalid at 64 registers")
	}
	vca64, ok := Cell(cells, ArchVCAWindow, 64)
	if !ok {
		t.Fatal("VCA must run at 64 registers")
	}
	if vca64.NormTime <= 0 {
		t.Error("VCA@64 has no time")
	}

	base256, _ := Cell(cells, ArchBaseline, 256)
	vca256, _ := Cell(cells, ArchVCAWindow, 256)
	ideal256, _ := Cell(cells, ArchIdealWindow, 256)

	// Figure 4 shapes: VCA beats the baseline at 256 registers and tracks
	// ideal closely (paper: within 1%; we allow 5% for the synthetic
	// suite).
	if vca256.NormTime >= base256.NormTime {
		t.Errorf("VCA@256 time %.3f not better than baseline %.3f",
			vca256.NormTime, base256.NormTime)
	}
	if vca256.NormTime > ideal256.NormTime*1.05 {
		t.Errorf("VCA@256 %.3f more than 5%% above ideal %.3f",
			vca256.NormTime, ideal256.NormTime)
	}
	// Baseline degrades as registers shrink.
	base128, _ := Cell(cells, ArchBaseline, 128)
	if base128.NormTime <= base256.NormTime {
		t.Errorf("baseline@128 %.3f should be slower than @256 %.3f",
			base128.NormTime, base256.NormTime)
	}
	// VCA's advantage grows with fewer registers (Figure 4 discussion).
	vca128, _ := Cell(cells, ArchVCAWindow, 128)
	gap256 := base256.NormTime - vca256.NormTime
	gap128 := base128.NormTime - vca128.NormTime
	if gap128 <= gap256 {
		t.Errorf("VCA advantage should grow as registers shrink: gap128=%.3f gap256=%.3f",
			gap128, gap256)
	}

	// Figure 5 shapes: VCA makes noticeably fewer data-cache accesses
	// than the baseline at 256 regs (paper: ~20% fewer); ideal fewer
	// still; conventional windows generate bursty trap traffic at small
	// sizes.
	if vca256.NormAccesses >= base256.NormAccesses {
		t.Errorf("VCA@256 accesses %.3f not below baseline %.3f",
			vca256.NormAccesses, base256.NormAccesses)
	}
	if ideal256.NormAccesses >= base256.NormAccesses {
		t.Error("ideal windows should reduce cache accesses")
	}
	conv128, okc := Cell(cells, ArchConvWindow, 128)
	if okc {
		vcaAcc128, _ := Cell(cells, ArchVCAWindow, 128)
		if conv128.NormAccesses <= vcaAcc128.NormAccesses {
			t.Errorf("conventional windows @128 (%.3f) should out-traffic VCA (%.3f)",
				conv128.NormAccesses, vcaAcc128.NormAccesses)
		}
	}

	for _, c := range cells {
		if c.Valid {
			t.Logf("%-16s regs=%3d time=%.3f accesses=%.3f", c.Arch, c.PhysRegs, c.NormTime, c.NormAccesses)
		} else {
			t.Logf("%-16s regs=%3d (cannot run)", c.Arch, c.PhysRegs)
		}
	}
}

func TestSinglePortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	if raceDetectorOn {
		t.Skip("full-budget sweep takes tens of minutes under the race detector (see race_on_test.go)")
	}
	dual, err := RegWindowSweep(2, testStop)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RegWindowSweep(1, testStop)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6: single-port machines are never faster than dual-port, and
	// single-port VCA lands near the dual-port baseline at 256 registers
	// (paper: 0.5% slowdown; we allow 10%).
	b256d, _ := Cell(dual, ArchBaseline, 256)
	v256s, _ := Cell(single, ArchVCAWindow, 256)
	b256s, _ := Cell(single, ArchBaseline, 256)
	if b256s.NormTime < b256d.NormTime*0.999 {
		t.Errorf("single-port baseline (%.3f) faster than dual-port (%.3f)?",
			b256s.NormTime, b256d.NormTime)
	}
	if v256s.NormTime > b256d.NormTime*1.10 {
		t.Errorf("single-port VCA %.3f should approach dual-port baseline %.3f",
			v256s.NormTime, b256d.NormTime)
	}
	t.Logf("dual baseline=%.3f single baseline=%.3f single vca=%.3f",
		b256d.NormTime, b256s.NormTime, v256s.NormTime)
}

func TestWorkloadSelection(t *testing.T) {
	two, four, err := SelectSMTWorkloads(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 6 || len(four) != 5 {
		t.Fatalf("selected %d/%d workloads", len(two), len(four))
	}
	for _, w := range two {
		if len(w) != 2 || !distinct(w) {
			t.Errorf("bad 2T workload %v", names(w))
		}
	}
	for _, w := range four {
		if len(w) != 4 || !distinct(w) {
			t.Errorf("bad 4T workload %v", names(w))
		}
		t.Logf("4T workload: %v", names(w))
	}
}

func names(ws []workload.Benchmark) []string {
	var out []string
	for _, w := range ws {
		out = append(out, w.Name)
	}
	return out
}

func TestSMTSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	if raceDetectorOn {
		t.Skip("full-budget sweep takes tens of minutes under the race detector (see race_on_test.go)")
	}
	opts := SMTOptions{K2: 3, K4: 3, StopAfter: 50_000, Sizes: []int{128, 192, 320, 448}}
	cells, err := SMTSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Conventional SMT cannot run 2T at 128 regs or 4T at 256, VCA can.
	if _, ok := SMTCellFor(cells, "baseline 2T", 128); ok {
		t.Error("baseline 2T should not run at 128 registers")
	}
	if v, ok := SMTCellFor(cells, "vca 2T", 128); !ok || v.Speedup <= 0 {
		t.Error("vca 2T must run at 128 registers")
	}
	v4, ok := SMTCellFor(cells, "vca 4T", 192)
	if !ok {
		t.Fatal("vca 4T must run at 192 registers")
	}
	b4, ok := SMTCellFor(cells, "baseline 4T", 448)
	if !ok {
		t.Fatal("baseline 4T must run at 448")
	}
	// The headline claim (§4.2): VCA 4T at 192 registers achieves
	// performance comparable to the baseline with 448 (paper: 98.7%; we
	// require >= 85% on the synthetic suite).
	if v4.Speedup < 0.85*b4.Speedup {
		t.Errorf("vca 4T@192 speedup %.3f below 85%% of baseline 4T@448 %.3f",
			v4.Speedup, b4.Speedup)
	}
	// More threads help VCA: 4T speedup > 2T at large sizes.
	v2, _ := SMTCellFor(cells, "vca 2T", 448)
	v4448, _ := SMTCellFor(cells, "vca 4T", 448)
	if v4448.Speedup <= v2.Speedup*0.9 {
		t.Errorf("vca 4T@448 %.3f should not trail 2T %.3f", v4448.Speedup, v2.Speedup)
	}
	for _, c := range cells {
		if c.Valid {
			t.Logf("%-12s regs=%3d speedup=%.3f wacc=%.3f", c.Series, c.PhysRegs, c.Speedup, c.Accesses)
		}
	}
}

// TestParallelForStopsOnError checks that after a worker reports an
// error, parallelFor stops dispatching the remaining jobs rather than
// running the full matrix.
func TestParallelForStopsOnError(t *testing.T) {
	const n = 10_000
	var calls atomic.Int64
	err := parallelFor(n, func(i int) error {
		calls.Add(1)
		time.Sleep(100 * time.Microsecond)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := calls.Load(); got > n/2 {
		t.Fatalf("dispatched %d of %d jobs after the first error; dispatch should have stopped", got, n)
	}
}

// withCache installs a fresh result cache for the duration of a test.
// The experiments package state is global, so tests using it cannot run
// in parallel with each other — none of this file's tests call
// t.Parallel().
func withCache(t *testing.T) *simcache.Cache {
	t.Helper()
	c, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetCache(c)
	t.Cleanup(func() { SetCache(nil) })
	return c
}

// TestSweepRunTwiceMemoized is the run-twice acceptance demo at test
// scale: a second pass over an identical sweep matrix must reproduce
// the exact cells with zero re-simulated jobs, and the hit/miss
// counters must prove it. The matrix here is a small explicit one so
// the test stays cheap under -race; `make cache-ci` runs the same
// round trip over the full Figure 4 sweep at the command level.
func TestSweepRunTwiceMemoized(t *testing.T) {
	cache := withCache(t)
	benches := workload.CallFrequent()[:4]
	archs := []Arch{ArchBaseline, ArchVCAWindow}
	const stop = 5_000

	pass := func() []Metrics {
		cells := make([]Metrics, len(benches)*len(archs))
		err := parallelFor(len(cells), func(i int) error {
			m, err := RunSingle(benches[i%len(benches)], archs[i/len(benches)], 256, 2, stop)
			cells[i] = m
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}

	cold := pass()
	afterCold := cache.Stats()
	if want := uint64(len(cold)); afterCold.Misses != want || afterCold.Hits != 0 {
		t.Fatalf("cold pass stats %v, want %d misses", afterCold, want)
	}

	warm := pass()
	afterWarm := cache.Stats()
	if afterWarm.Misses != afterCold.Misses {
		t.Fatalf("warm pass re-simulated %d jobs; want 0 (stats %v)",
			afterWarm.Misses-afterCold.Misses, afterWarm)
	}
	if afterWarm.Hits != afterCold.Misses {
		t.Fatalf("warm pass hit %d of %d jobs (stats %v)", afterWarm.Hits, afterCold.Misses, afterWarm)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("memoized sweep differs from cold sweep:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestSweepResumesAfterInterrupt kills a sweep partway (a failing job
// aborts dispatch) and re-runs it: completed cells must come from the
// cache, not re-simulation.
func TestSweepResumesAfterInterrupt(t *testing.T) {
	cache := withCache(t)
	benches := workload.CallFrequent()[:6]
	const stop = 5_000

	run := func(interruptAt int) error {
		return parallelFor(len(benches), func(i int) error {
			if i == interruptAt {
				return errors.New("simulated interrupt")
			}
			met, err := RunSingle(benches[i], ArchVCAWindow, 128, 2, stop)
			if err == nil && !met.Valid {
				err = errors.New("invalid cell")
			}
			return err
		})
	}
	if err := run(3); err == nil {
		t.Fatal("interrupt did not surface")
	}
	interrupted := cache.Stats()
	if interrupted.Stores == 0 {
		t.Fatal("interrupted sweep stored nothing")
	}
	if err := run(-1); err != nil {
		t.Fatal(err)
	}
	final := cache.Stats()
	if final.Hits != interrupted.Stores {
		t.Errorf("resume re-simulated completed cells: %d hits, want %d", final.Hits, interrupted.Stores)
	}
	if final.Misses != uint64(len(benches)) {
		t.Errorf("total misses %d, want %d (each cell simulated exactly once)", final.Misses, len(benches))
	}
}
