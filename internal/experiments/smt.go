package experiments

import (
	"fmt"

	"vca/internal/cluster"
	"vca/internal/minic"
	"vca/internal/stats"
	"vca/internal/workload"
)

// featureVector characterizes one multiprogrammed workload for the §3.2
// clustering: for each per-benchmark statistic we take the mean and the
// absolute difference across members (order-independent), giving the
// 14-dimensional vectors the paper reduces with PCA.
func featureVector(members []workload.Benchmark) ([]float64, error) {
	per := make([][]float64, len(members))
	for i, b := range members {
		p, err := b.Profile(minic.ABIFlat)
		if err != nil {
			return nil, err
		}
		s := p.Stats
		insts := float64(s.Insts)
		per[i] = []float64{
			float64(s.Loads+s.Stores) / insts,
			float64(s.CondBranches) / insts,
			float64(s.TakenCond) / float64(s.CondBranches+1),
			float64(s.Calls) / insts,
			float64(s.FPOps) / insts,
			insts,
			float64(s.MaxCallDepth),
		}
	}
	dims := len(per[0])
	out := make([]float64, 0, 2*dims)
	for d := 0; d < dims; d++ {
		var mean, spread float64
		for _, p := range per {
			mean += p[d]
		}
		mean /= float64(len(per))
		for _, p := range per {
			diff := p[d] - mean
			if diff < 0 {
				diff = -diff
			}
			spread += diff
		}
		out = append(out, mean, spread/float64(len(per)))
	}
	return out, nil
}

// SelectSMTWorkloads applies the §3.2 methodology: enumerate all
// two-benchmark combinations, characterize each with a statistics vector,
// reduce with PCA, cluster with average linkage, and keep cluster
// representatives. Four-thread workloads are built the same way from
// pairs of selected two-thread workloads ("We repeated this process on
// all pairs of two-thread workloads").
func SelectSMTWorkloads(k2, k4 int) (two [][]workload.Benchmark, four [][]workload.Benchmark, err error) {
	benches := workload.All()
	var pairs [][]workload.Benchmark
	for i := 0; i < len(benches); i++ {
		for j := i + 1; j < len(benches); j++ {
			pairs = append(pairs, []workload.Benchmark{benches[i], benches[j]})
		}
	}
	feats := make([][]float64, len(pairs))
	if err := parallelFor(len(pairs), func(i int) error {
		f, err := featureVector(pairs[i])
		feats[i] = f
		return err
	}); err != nil {
		return nil, nil, err
	}
	reps, err := cluster.SelectWorkloads(feats, k2, 6)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range reps {
		two = append(two, pairs[r])
	}

	// Four-thread candidates: pairs of selected two-thread workloads with
	// four distinct members.
	var quads [][]workload.Benchmark
	for i := 0; i < len(two); i++ {
		for j := i + 1; j < len(two); j++ {
			members := append(append([]workload.Benchmark{}, two[i]...), two[j]...)
			if distinct(members) {
				quads = append(quads, members)
			}
		}
	}
	if len(quads) == 0 {
		return nil, nil, fmt.Errorf("experiments: no distinct four-thread workloads")
	}
	qfeats := make([][]float64, len(quads))
	if err := parallelFor(len(quads), func(i int) error {
		f, err := featureVector(quads[i])
		qfeats[i] = f
		return err
	}); err != nil {
		return nil, nil, err
	}
	qreps, err := cluster.SelectWorkloads(qfeats, k4, 6)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range qreps {
		four = append(four, quads[r])
	}
	return two, four, nil
}

func distinct(ms []workload.Benchmark) bool {
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			return false
		}
		seen[m.Name] = true
	}
	return true
}

// SMTSizes is the Figure 7/8 x-axis.
var SMTSizes = []int{64, 128, 192, 256, 320, 384, 448}

// SMTCell is one (series, size) point: mean weighted speedup over the
// selected workloads, and the mean weighted cache-access metric (§4.3).
type SMTCell struct {
	Series   string // e.g. "vca 2T", "baseline 4T"
	Arch     Arch
	Threads  int
	PhysRegs int
	Valid    bool
	Speedup  float64
	Accesses float64 // weighted cache accesses
}

// SMTOptions configures the SMT sweeps.
type SMTOptions struct {
	K2, K4    int    // cluster counts for 2- and 4-thread workloads
	StopAfter uint64 // per-thread commit budget for detailed runs
	Windowed  bool   // Figure 8: VCA runs windowed binaries
	OneThread bool   // include 1T series (Figure 8)
	Sizes     []int
}

// DefaultSMTOptions mirrors the paper's setup at this repository's scale.
func DefaultSMTOptions() SMTOptions {
	return SMTOptions{K2: 6, K4: 5, StopAfter: 250_000, Sizes: SMTSizes}
}

// SMTSweep produces Figure 7 (Windowed=false) or Figure 8
// (Windowed=true, OneThread=true). Speedups are relative to
// single-threaded execution on the baseline with 256 registers.
func SMTSweep(opts SMTOptions) ([]SMTCell, error) {
	if opts.K2 == 0 {
		opts = DefaultSMTOptions()
	}
	two, four, err := SelectSMTWorkloads(opts.K2, opts.K4)
	if err != nil {
		return nil, err
	}

	// Single-thread reference times on the baseline with 256 registers
	// (per §4.2: "speedups are relative to single-threaded execution on
	// the baseline architecture with 256 physical registers").
	benches := workload.All()
	refTimes := make([]float64, len(benches))
	refAPIs := make([]float64, len(benches))
	if err := parallelFor(len(benches), func(i int) error {
		met, err := RunSingle(benches[i], ArchBaseline, 256, 2, opts.StopAfter)
		if err != nil {
			return err
		}
		flat, err := benches[i].Profile(minic.ABIFlat)
		if err != nil {
			return err
		}
		refTimes[i] = stats.ExecTime(met.CPI, flat.Stats.Insts)
		refAPIs[i] = met.AccPerInst
		return nil
	}); err != nil {
		return nil, err
	}
	refTime := map[string]float64{}
	refAPI := map[string]float64{}
	for i, b := range benches {
		refTime[b.Name] = refTimes[i]
		refAPI[b.Name] = refAPIs[i]
	}

	vcaArch := ArchVCAFlat
	if opts.Windowed {
		vcaArch = ArchVCAWindow
	}

	type series struct {
		name    string
		arch    Arch
		threads int
		sets    [][]workload.Benchmark
	}
	var all []series
	if opts.OneThread {
		var ones [][]workload.Benchmark
		for _, b := range workload.CallFrequent() {
			ones = append(ones, []workload.Benchmark{b})
		}
		all = append(all,
			series{"vca 1T", vcaArch, 1, ones},
			series{"baseline 1T", ArchBaseline, 1, ones},
		)
	}
	all = append(all,
		series{"vca 2T", vcaArch, 2, two},
		series{"vca 4T", vcaArch, 4, four},
		series{"baseline 2T", ArchBaseline, 2, two},
		series{"baseline 4T", ArchBaseline, 4, four},
	)

	type job struct {
		s    series
		regs int
	}
	var jobs []job
	for _, s := range all {
		for _, r := range opts.Sizes {
			jobs = append(jobs, job{s, r})
		}
	}
	cells := make([]SMTCell, len(jobs))
	err = parallelFor(len(jobs), func(j int) error {
		jb := jobs[j]
		cell := SMTCell{Series: jb.s.name, Arch: jb.s.arch, Threads: jb.s.threads, PhysRegs: jb.regs}
		var sps, was []float64
		for _, members := range jb.s.sets {
			met, err := RunSMT(members, jb.s.arch, jb.regs, 2, opts.StopAfter)
			if err != nil {
				return fmt.Errorf("%s/%d: %w", jb.s.name, jb.regs, err)
			}
			if !met.Valid {
				cells[j] = cell
				return nil
			}
			var singles, smts, sAPI, mAPI []float64
			for ti, b := range members {
				prof, err := b.Profile(jb.s.arch.ABI())
				if err != nil {
					return err
				}
				singles = append(singles, refTime[b.Name])
				smts = append(smts, stats.ExecTime(met.PerThreadCPI[ti], prof.Stats.Insts))
				sAPI = append(sAPI, refAPI[b.Name])
				mAPI = append(mAPI, met.PerThreadAPI[ti])
			}
			sp, err := stats.WeightedSpeedup(singles, smts)
			if err != nil {
				return err
			}
			wa, err := stats.WeightedCacheAccesses(sAPI, mAPI)
			if err != nil {
				return err
			}
			sps = append(sps, sp)
			was = append(was, wa)
		}
		cell.Valid = true
		cell.Speedup = stats.Mean(sps)
		cell.Accesses = stats.Mean(was)
		cells[j] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// SMTCellFor locates a cell by series name and size.
func SMTCellFor(cells []SMTCell, series string, regs int) (SMTCell, bool) {
	for _, c := range cells {
		if c.Series == series && c.PhysRegs == regs {
			return c, c.Valid
		}
	}
	return SMTCell{}, false
}
