package experiments

// counterpoint.go — the counter-oracle's golden matrix: the same
// 15-workload × 3-architecture grid the scheduler golden test pins,
// extended with windowed-SMT and checkpoint-restored cells, each
// measured into the (counter map, parameter map) form the
// internal/counterpoint predicates evaluate. The counterpoint gate
// (internal/tools/counterpointgate, `make counterpoint-gate`) and the
// counterpoint teeth tests both consume this matrix, so "no predicate
// is vacuous across the golden matrix" is a single, shared definition.

import (
	"fmt"

	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
	"vca/internal/verify"
	"vca/internal/workload"
)

// MatrixStop is the per-cell commit budget of the counter-oracle
// matrix — the same depth the scheduler golden matrix uses, deep
// enough to exercise spills, squashes, window traps, and long-latency
// stalls on every workload.
const MatrixStop = 25_000

// MatrixCell is one golden-matrix measurement: an architecture, one
// workload per hardware thread, a register-file size, and optionally a
// functional fast-forward prefix (so predicates are also pinned
// against checkpoint-restored counter maps).
type MatrixCell struct {
	Name        string   // stable cell identifier, e.g. "vca (flat)/gap"
	Arch        Arch     // machine model
	Workloads   []string // one benchmark name per thread
	PhysRegs    int      // register-file size
	FastForward uint64   // functional warmup instructions per thread (0 = cold)
}

// CounterpointMatrix returns the counter-oracle cell set: the 45-cell
// scheduler golden grid (15 workloads × baseline/VCA-flat/VCA-windowed,
// single-threaded, 256/128 registers) plus four extended cells — a
// conventional-window SMT pair (the only family that takes window
// traps, so the trap predicates have something to measure), a
// VCA-windowed SMT pair, and two checkpoint-restored runs.
func CounterpointMatrix() []MatrixCell {
	var cells []MatrixCell
	for _, arch := range []Arch{ArchBaseline, ArchVCAFlat, ArchVCAWindow} {
		regs := 256
		if arch != ArchBaseline {
			regs = 128
		}
		for _, w := range workload.All() {
			cells = append(cells, MatrixCell{
				Name:      fmt.Sprintf("%s/%s", arch, w.Name),
				Arch:      arch,
				Workloads: []string{w.Name},
				PhysRegs:  regs,
			})
		}
	}
	cells = append(cells,
		MatrixCell{
			Name:      "register window/2T:gcc_expr+parser",
			Arch:      ArchConvWindow,
			Workloads: []string{"gcc_expr", "parser"},
			// A 2-thread conventional-window machine constructs only in the
			// one-resident-window band (the windowed logical file scales
			// with PhysRegs, so nwin must stay at 1): every call past depth
			// one traps, which is exactly the traffic the window-trap
			// predicates need to measure.
			PhysRegs: 144,
		},
		MatrixCell{
			Name:      "vca/2T:crafty+twolf",
			Arch:      ArchVCAWindow,
			Workloads: []string{"crafty", "twolf"},
			PhysRegs:  192,
		},
		MatrixCell{
			Name:        "baseline/ff:bzip2_graphic",
			Arch:        ArchBaseline,
			Workloads:   []string{"bzip2_graphic"},
			PhysRegs:    256,
			FastForward: 5_000,
		},
		MatrixCell{
			Name:        "vca/ff:gap",
			Arch:        ArchVCAWindow,
			Workloads:   []string{"gap"},
			PhysRegs:    128,
			FastForward: 5_000,
		},
	)
	return cells
}

// RunMatrixCell measures one cell: it builds the per-thread programs,
// optionally fast-forwards each on the functional engine, runs the
// detailed machine to the commit budget, and returns the run's counter
// map plus the config-derived parameter map the predicates reference.
//
// With a non-nil cache the run funnels through RunMachineShared (or
// RunMachineFrom for restored cells) — memoized, singleflight-
// coalesced — which is how the gate makes the simcache.* service
// predicates measurable; a nil cache simulates directly.
func RunMatrixCell(c MatrixCell, stop uint64, cc *simcache.Cache) (counters, params map[string]uint64, err error) {
	cfg, ok := c.Arch.Config(len(c.Workloads), c.PhysRegs, 2)
	if !ok {
		return nil, nil, fmt.Errorf("counterpoint: %s: architecture rejects %d registers", c.Name, c.PhysRegs)
	}
	cfg.StopAfter = stop
	cfg.MaxCycles = 1 << 34
	windowed := c.Arch.ABI() == minic.ABIWindowed

	progs, err := buildPrograms(c.Arch, c.Workloads)
	if err != nil {
		return nil, nil, fmt.Errorf("counterpoint: %s: %w", c.Name, err)
	}

	if c.FastForward > 0 {
		cks := make([]*emu.Checkpoint, len(progs))
		for i, p := range progs {
			m := emu.New(p, emu.Config{Windowed: windowed})
			executed, err := m.FastRun(c.FastForward)
			if err != nil {
				return nil, nil, fmt.Errorf("counterpoint: %s: fast-forward thread %d: %w", c.Name, i, err)
			}
			if executed < c.FastForward {
				return nil, nil, fmt.Errorf("counterpoint: %s: thread %d exited during warmup (%d < %d insts)", c.Name, i, executed, c.FastForward)
			}
			cks[i] = m.Checkpoint()
		}
		_, counters, _, err = cc.RunMachineFrom(cfg, progs, windowed, cks)
	} else {
		_, counters, _, err = cc.RunMachineShared(cfg, progs, windowed)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("counterpoint: %s: %w", c.Name, err)
	}
	return counters, verify.ConfigParams(cfg), nil
}

func buildPrograms(arch Arch, names []string) ([]*program.Program, error) {
	progs := make([]*program.Program, len(names))
	for i, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := b.Build(arch.ABI())
		if err != nil {
			return nil, err
		}
		progs[i] = p
	}
	return progs, nil
}
