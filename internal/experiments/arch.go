// Package experiments drives the paper's evaluation (§4): it builds the
// machine configurations of Figures 4-8, runs the workload suite on
// them, and reduces the results to the numbers the paper plots.
//
// The pieces, one file each:
//
//   - arch.go — the Arch enumeration (baseline, conventional/ideal
//     register windows, VCA flat/windowed) and its Config builder, the
//     single place the paper's Table 1 machines are parameterized. An
//     Arch that cannot operate at a requested register-file size
//     reports ok=false ("No Baseline" in the figures).
//   - regwin.go — the single-thread register-window sweeps
//     (Figures 4-6) and their weighted cache-access reduction (§4.3).
//   - smt.go — multiprogrammed SMT sweeps (Figures 7-8) over the
//     clustered workload pairings.
//   - regions.go — checkpointed parallel-region runs: K detailed
//     regions planned by one functional walk, stitched to bit-identical
//     counter maps (DESIGN.md §12).
//
// Every simulation funnels through the package-wide simcache.Runner
// and optional result cache (SetJobs/SetCache), so sweeps parallelize
// and memoize uniformly. Consumers: cmd/experiments (human-readable
// tables), the repository benchmark harness (bench_test.go), and the
// sweep service (internal/server), which reuses the Arch builder for
// its HTTP job API.
package experiments

import (
	"fmt"

	"vca/internal/core"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
	"vca/internal/workload"
)

// Package-wide execution state: the shared job runner and the optional
// result cache. Both default to "plain": GOMAXPROCS workers, no
// memoization. cmd/experiments wires the -jobs/-cache* flags here; the
// public sweep API is unchanged.
var (
	runner = simcache.Runner{}
	cache  *simcache.Cache // nil = simulate every job
)

// SetJobs sets the worker count of every sweep (0 restores GOMAXPROCS).
func SetJobs(n int) { runner.Jobs = n }

// SetCache installs the result cache consulted by every simulation job
// (nil disables memoization).
func SetCache(c *simcache.Cache) { cache = c }

// CacheStats reports the installed cache's traffic (zero when disabled).
func CacheStats() simcache.Stats { return cache.Stats() }

// Arch enumerates the compared architectures.
type Arch int

const (
	// ArchBaseline is the conventional non-windowed machine (flat ABI).
	ArchBaseline Arch = iota
	// ArchConvWindow is the conventional register-window machine with
	// trap-based overflow handling (§4.1).
	ArchConvWindow
	// ArchIdealWindow handles window spills/fills instantaneously without
	// cache traffic (the lower bound of §4.1).
	ArchIdealWindow
	// ArchVCAWindow is VCA running windowed binaries.
	ArchVCAWindow
	// ArchVCAFlat is VCA running flat binaries (the SMT study of §4.2).
	ArchVCAFlat
)

func (a Arch) String() string {
	switch a {
	case ArchBaseline:
		return "baseline"
	case ArchConvWindow:
		return "register window"
	case ArchIdealWindow:
		return "ideal"
	case ArchVCAWindow:
		return "vca"
	case ArchVCAFlat:
		return "vca (flat)"
	}
	return "?"
}

// ABI returns the binary flavor the architecture executes.
func (a Arch) ABI() minic.ABI {
	switch a {
	case ArchConvWindow, ArchIdealWindow, ArchVCAWindow:
		return minic.ABIWindowed
	}
	return minic.ABIFlat
}

// Config builds the core configuration, or ok=false when the architecture
// cannot operate at this size (the paper's "No Baseline" regions).
func (a Arch) Config(threads, physRegs, dl1Ports int) (core.Config, bool) {
	var cfg core.Config
	switch a {
	case ArchBaseline:
		cfg = core.DefaultConfig(core.RenameConventional, core.WindowNone, threads, physRegs)
		if physRegs <= threads*64 {
			return cfg, false
		}
	case ArchConvWindow:
		cfg = core.DefaultConfig(core.RenameConventional, core.WindowConventional, threads, physRegs)
		if (physRegs-64-32)/32 < 1 {
			return cfg, false
		}
	case ArchIdealWindow:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowIdeal, threads, physRegs)
	case ArchVCAWindow:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowVCA, threads, physRegs)
	case ArchVCAFlat:
		cfg = core.DefaultConfig(core.RenameVCA, core.WindowNone, threads, physRegs)
	}
	cfg.Hier.DL1Ports = dl1Ports
	return cfg, true
}

// Metrics are the per-run quantities the figures reduce.
type Metrics struct {
	Valid     bool
	Cycles    uint64
	Committed uint64
	CPI       float64
	// AccPerInst is total DL1 accesses (speculative included, all causes)
	// divided by committed instructions.
	AccPerInst float64
	// PerThreadCPI / PerThreadAPI support the weighted SMT metrics.
	PerThreadCPI []float64
	PerThreadAPI []float64
	WindowTraps  uint64
	Spills       uint64
	Fills        uint64
}

// RunSingle runs one benchmark alone on an architecture.
func RunSingle(b workload.Benchmark, arch Arch, physRegs, dl1Ports int, stopAfter uint64) (Metrics, error) {
	cfg, ok := arch.Config(1, physRegs, dl1Ports)
	if !ok {
		return Metrics{}, nil
	}
	prog, err := b.Build(arch.ABI())
	if err != nil {
		return Metrics{}, err
	}
	return runMachine(cfg, []*program.Program{prog}, arch.ABI() == minic.ABIWindowed, stopAfter)
}

// RunSMT runs a multiprogrammed workload.
func RunSMT(benches []workload.Benchmark, arch Arch, physRegs, dl1Ports int, stopAfter uint64) (Metrics, error) {
	cfg, ok := arch.Config(len(benches), physRegs, dl1Ports)
	if !ok {
		return Metrics{}, nil
	}
	progs := make([]*program.Program, len(benches))
	for i, b := range benches {
		p, err := b.Build(arch.ABI())
		if err != nil {
			return Metrics{}, err
		}
		progs[i] = p
	}
	return runMachine(cfg, progs, arch.ABI() == minic.ABIWindowed, stopAfter)
}

func runMachine(cfg core.Config, progs []*program.Program, windowed bool, stopAfter uint64) (Metrics, error) {
	cfg.StopAfter = stopAfter
	cfg.MaxCycles = 1 << 34
	res, _, _, err := cache.RunMachine(cfg, progs, windowed)
	if err != nil {
		return Metrics{}, err
	}
	var committed uint64
	for _, t := range res.Threads {
		committed += t.Committed
	}
	if committed == 0 {
		return Metrics{}, fmt.Errorf("experiments: no instructions committed")
	}
	met := Metrics{
		Valid:       true,
		Cycles:      res.Cycles,
		Committed:   committed,
		CPI:         float64(res.Cycles) / float64(committed),
		AccPerInst:  float64(res.DL1Accesses()) / float64(committed),
		WindowTraps: res.WindowTraps,
		Spills:      res.SpillsIssued,
		Fills:       res.FillsIssued,
	}
	for _, t := range res.Threads {
		if t.Committed == 0 {
			return Metrics{}, fmt.Errorf("experiments: a thread committed nothing")
		}
		met.PerThreadCPI = append(met.PerThreadCPI, float64(res.Cycles)/float64(t.Committed))
	}
	// Per-thread cache accesses are not separable in a shared cache; the
	// weighted cache metric uses each thread's share approximated by its
	// committed fraction of the run's accesses-per-instruction.
	for _, t := range res.Threads {
		met.PerThreadAPI = append(met.PerThreadAPI, met.AccPerInst*float64(t.Committed)/float64(committed)*float64(len(res.Threads)))
	}
	return met, nil
}

// parallelFor dispatches fn(i) for i in [0,n) through the package's
// shared runner (simcache.Runner): panic-safe jobs, deterministic
// lowest-index-first error aggregation, -jobs-controlled parallelism.
func parallelFor(n int, fn func(i int) error) error {
	return runner.Run(n, fn)
}
