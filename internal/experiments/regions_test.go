package experiments

import (
	"reflect"
	"testing"

	"vca/internal/core"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
	"vca/internal/workload"
)

// regionMatrixArchs is the architecture axis of the stitched-identity
// matrix — the same three models the scheduler golden matrix pins.
var regionMatrixArchs = []Arch{ArchBaseline, ArchVCAFlat, ArchVCAWindow}

func regionCfg(t *testing.T, arch Arch) (core.Config, bool) {
	t.Helper()
	physRegs := 256
	if arch != ArchBaseline {
		physRegs = 128
	}
	cfg, ok := arch.Config(1, physRegs, 2)
	if !ok {
		t.Fatalf("%v invalid at %d registers", arch, physRegs)
	}
	return cfg, arch.ABI() == minic.ABIWindowed
}

func buildFor(t *testing.T, b workload.Benchmark, arch Arch) *program.Program {
	t.Helper()
	p, err := b.Build(arch.ABI())
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return p
}

// assertStitchedEqual demands bit-identical stitched results: counter
// maps, cycles, committed counts, output, exit status.
func assertStitchedEqual(t *testing.T, tag string, par, seq *RegionResult) {
	t.Helper()
	if len(par.Regions) != len(seq.Regions) {
		t.Fatalf("%s: parallel %d regions, sequential %d", tag, len(par.Regions), len(seq.Regions))
	}
	if par.Cycles != seq.Cycles || par.Committed != seq.Committed {
		t.Errorf("%s: cycles/committed %d/%d parallel vs %d/%d sequential",
			tag, par.Cycles, par.Committed, seq.Cycles, seq.Committed)
	}
	if par.Output != seq.Output {
		t.Errorf("%s: stitched outputs differ", tag)
	}
	if par.Exited != seq.Exited || par.ExitCode != seq.ExitCode {
		t.Errorf("%s: exit state differs", tag)
	}
	if !reflect.DeepEqual(par.Counters, seq.Counters) {
		for k, v := range par.Counters {
			if seq.Counters[k] != v {
				t.Errorf("%s: counter %s: parallel %d, sequential %d", tag, k, v, seq.Counters[k])
			}
		}
		for k, v := range seq.Counters {
			if _, ok := par.Counters[k]; !ok {
				t.Errorf("%s: counter %s=%d missing from parallel run", tag, k, v)
			}
		}
		t.Fatalf("%s: stitched counter maps differ", tag)
	}
}

// TestRegionStitchedGoldenMatrix proves, across the 45-cell golden
// matrix (baseline, VCA-flat, VCA-windowed × all 15 workloads), that
// parallel-region simulation is bit-deterministic: the stitched counter
// map, cycle count, output, and exit status of a K-way parallel run are
// identical to the same regions simulated strictly sequentially. The
// cache is bypassed on both sides, so two real simulations are compared.
func TestRegionStitchedGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opts := RegionOptions{Regions: 3, RegionLen: 2000, NoCache: true}
	for _, arch := range regionMatrixArchs {
		cfg, windowed := regionCfg(t, arch)
		for _, b := range workload.All() {
			prog := buildFor(t, b, arch)
			par := opts
			par.Jobs = 0 // GOMAXPROCS workers
			pres, err := RunRegions(cfg, prog, windowed, par)
			if err != nil {
				t.Fatalf("%v/%s parallel: %v", arch, b.Name, err)
			}
			seq := opts
			seq.Jobs = 1
			sres, err := RunRegions(cfg, prog, windowed, seq)
			if err != nil {
				t.Fatalf("%v/%s sequential: %v", arch, b.Name, err)
			}
			assertStitchedEqual(t, arch.String()+"/"+b.Name, pres, sres)
		}
	}
}

// TestRegionAudit runs parallel regions in Audit mode on one workload
// per architecture: every region simulates with co-simulation and the
// invariant checker, and each region's extracted end-of-region state
// must be content-address-identical to the functional walk's checkpoint
// for the same boundary. This is the region-level state-transplant
// audit: it proves the regions partition the committed instruction
// stream exactly.
func TestRegionAudit(t *testing.T) {
	b, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []Arch{ArchBaseline, ArchConvWindow, ArchVCAWindow, ArchVCAFlat} {
		cfg, windowed := regionCfg(t, arch)
		prog := buildFor(t, b, arch)
		res, err := RunRegions(cfg, prog, windowed, RegionOptions{Regions: 3, RegionLen: 1500, Audit: true})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if len(res.Regions) != 3 || res.Committed != 4500 {
			t.Fatalf("%v: %d regions, %d committed; want 3 regions, 4500 committed", arch, len(res.Regions), res.Committed)
		}
	}
}

// TestRegionStitchedIdentityGate is the CI gate run by cmd/benchsmoke:
// one cell, two identity proofs. (1) Parallel and sequential stitching
// are bit-identical. (2) The stitched run is architecturally identical
// to one continuous detailed run of the same total budget — same
// committed count, same program output — with only microarchitectural
// warmup (cycles) allowed to differ.
func TestRegionStitchedIdentityGate(t *testing.T) {
	b, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	const regions, regionLen = 4, 1500
	arch := ArchVCAWindow
	cfg, windowed := regionCfg(t, arch)
	prog := buildFor(t, b, arch)

	opts := RegionOptions{Regions: regions, RegionLen: regionLen, NoCache: true}
	par := opts
	pres, err := RunRegions(cfg, prog, windowed, par)
	if err != nil {
		t.Fatal(err)
	}
	seq := opts
	seq.Jobs = 1
	sres, err := RunRegions(cfg, prog, windowed, seq)
	if err != nil {
		t.Fatal(err)
	}
	assertStitchedEqual(t, "gate", pres, sres)

	// Continuous reference at the same exact budget.
	contCfg := cfg
	contCfg.StopAfter = regions * regionLen
	contCfg.StopExact = true
	contCfg.MaxCycles = 1 << 34
	m, err := core.New(contCfg, []*program.Program{prog}, windowed)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pres.Committed, cont.Threads[0].Committed; got != want {
		t.Errorf("stitched committed %d, continuous %d", got, want)
	}
	if pres.Output != cont.Threads[0].Output {
		t.Errorf("stitched output %q, continuous %q", pres.Output, cont.Threads[0].Output)
	}
	delta := float64(int64(pres.Cycles)-int64(cont.Cycles)) / float64(cont.Cycles)
	t.Logf("warmup boundary effect: stitched %d cycles vs continuous %d (%+.2f%%)",
		pres.Cycles, cont.Cycles, 100*delta)
}

// TestRegionWalkCaches: with a cache installed, the boundary walk stores
// its checkpoints and region results; a second identical run answers
// both from the cache.
func TestRegionWalkCaches(t *testing.T) {
	dir := t.TempDir()
	c, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetCache(c)
	defer SetCache(nil)

	b, err := workload.ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	arch := ArchVCAFlat
	cfg, windowed := regionCfg(t, arch)
	prog := buildFor(t, b, arch)
	opts := RegionOptions{Regions: 3, RegionLen: 1000}

	cold, err := RunRegions(cfg, prog, windowed, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, reg := range cold.Regions {
		if reg.CacheHit {
			t.Errorf("cold region %d hit the cache", i)
		}
	}
	s := c.Stats()
	if s.CkStores != 2 || s.Stores != 3 {
		t.Fatalf("cold traffic %+v, want 2 checkpoint stores and 3 result stores", s)
	}

	warm, err := RunRegions(cfg, prog, windowed, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, reg := range warm.Regions {
		if !reg.CacheHit {
			t.Errorf("warm region %d missed the cache", i)
		}
	}
	assertStitchedEqual(t, "cache", cold, warm)
	if s := c.Stats(); s.CkHits != 2 {
		t.Fatalf("warm traffic %+v, want 2 checkpoint hits", s)
	}
}
