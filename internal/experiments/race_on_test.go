//go:build race

package experiments

// raceDetectorOn gates the full-budget sweep tests: under the race
// detector a single sweep cell runs an order of magnitude slower, and
// the full matrices take tens of minutes on small hosts. The sweeps'
// numeric-shape assertions add no race coverage beyond what the small
// concurrent tests in this package and internal/simcache exercise, so
// `make test-race` skips them; `make test` always runs them in full.
const raceDetectorOn = true
