package experiments

import (
	"fmt"

	"vca/internal/minic"
	"vca/internal/stats"
	"vca/internal/workload"
)

// Table2Row is one path-length-ratio measurement.
type Table2Row struct {
	Benchmark string
	Ratio     float64
}

// Table2 reproduces the paper's Table 2: the windowed/flat dynamic
// path-length ratio of every benchmark, from complete functional runs.
func Table2() ([]Table2Row, float64, error) {
	benches := workload.All()
	rows := make([]Table2Row, len(benches))
	err := parallelFor(len(benches), func(i int) error {
		r, err := benches[i].PathLengthRatio()
		if err != nil {
			return err
		}
		rows[i] = Table2Row{Benchmark: benches[i].Name, Ratio: r}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var sum float64
	for _, r := range rows {
		sum += r.Ratio
	}
	return rows, sum / float64(len(rows)), nil
}

// RegWindowSizes is the Figure 4-6 x-axis.
var RegWindowSizes = []int{64, 128, 192, 256}

// RegWindowArchs is the Figure 4-6 series set.
var RegWindowArchs = []Arch{ArchBaseline, ArchIdealWindow, ArchConvWindow, ArchVCAWindow}

// SweepCell is one (architecture, size) point averaged over the
// call-frequent benchmark subset.
type SweepCell struct {
	Arch     Arch
	PhysRegs int
	Valid    bool
	// NormTime is estimated execution time (CPI x complete path length)
	// normalized to the dual-port baseline with 256 registers (Figures 4
	// and 6).
	NormTime float64
	// NormAccesses is total data-cache accesses normalized the same way
	// (Figure 5).
	NormAccesses float64
}

// RegWindowSweep produces Figures 4 and 5 (dl1Ports=2) or Figure 6
// (dl1Ports=1; normalization stays against the dual-port baseline).
// stopAfter caps detailed simulation per run (0 = run to completion).
func RegWindowSweep(dl1Ports int, stopAfter uint64) ([]SweepCell, error) {
	benches := workload.CallFrequent()

	type job struct {
		arch Arch
		regs int
	}
	var jobs []job
	for _, a := range RegWindowArchs {
		for _, r := range RegWindowSizes {
			jobs = append(jobs, job{a, r})
		}
	}

	// Per-benchmark reference: dual-port baseline at 256 registers.
	refTime := make([]float64, len(benches))
	refAcc := make([]float64, len(benches))
	err := parallelFor(len(benches), func(i int) error {
		met, err := RunSingle(benches[i], ArchBaseline, 256, 2, stopAfter)
		if err != nil {
			return fmt.Errorf("reference %s: %w", benches[i].Name, err)
		}
		flat, err := benches[i].Profile(minic.ABIFlat)
		if err != nil {
			return err
		}
		refTime[i] = stats.ExecTime(met.CPI, flat.Stats.Insts)
		refAcc[i] = stats.AccessesTotal(met.AccPerInst, flat.Stats.Insts)
		return nil
	})
	if err != nil {
		return nil, err
	}

	cells := make([]SweepCell, len(jobs))
	err = parallelFor(len(jobs), func(j int) error {
		jb := jobs[j]
		cell := SweepCell{Arch: jb.arch, PhysRegs: jb.regs}
		var times, accs []float64
		for i, b := range benches {
			met, err := RunSingle(b, jb.arch, jb.regs, dl1Ports, stopAfter)
			if err != nil {
				return fmt.Errorf("%v/%d/%s: %w", jb.arch, jb.regs, b.Name, err)
			}
			if !met.Valid {
				cells[j] = cell // Valid stays false
				return nil
			}
			prof, err := b.Profile(jb.arch.ABI())
			if err != nil {
				return err
			}
			times = append(times, stats.ExecTime(met.CPI, prof.Stats.Insts)/refTime[i])
			accs = append(accs, stats.AccessesTotal(met.AccPerInst, prof.Stats.Insts)/refAcc[i])
		}
		cell.Valid = true
		cell.NormTime = stats.Mean(times)
		cell.NormAccesses = stats.Mean(accs)
		cells[j] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Cell finds the sweep cell for (arch, regs).
func Cell(cells []SweepCell, a Arch, regs int) (SweepCell, bool) {
	for _, c := range cells {
		if c.Arch == a && c.PhysRegs == regs {
			return c, c.Valid
		}
	}
	return SweepCell{}, false
}
