// Package promexport renders internal/metrics samples in the
// Prometheus text exposition format (version 0.0.4), the wire form a
// Prometheus server scrapes from an HTTP /metrics endpoint.
//
// The simulator's metrics surface (see internal/metrics and
// docs/OBSERVABILITY.md) is deliberately minimal: dot-separated names,
// three kinds (counter, histogram, occupancy), power-of-two buckets.
// This package maps that surface onto Prometheus conventions without
// pulling in the client library:
//
//   - Names are prefixed with a namespace and sanitized: every rune
//     outside [a-zA-Z0-9_] becomes '_', so "simcache.sf_hits" exported
//     under namespace "vca" is vca_simcache_sf_hits.
//   - Counters gain the conventional _total suffix and TYPE counter.
//   - Histograms and occupancies become native Prometheus histograms:
//     cumulative _bucket{le="..."} series, _sum, and _count. Because
//     the source buckets hold integer values in [lo, hi), the inclusive
//     Prometheus upper bound is hi-1; the overflow bucket maps to
//     le="+Inf". An occupancy's high-water mark is emitted as an extra
//     _max gauge.
//   - A Sample whose Kind is "gauge" (produced by service-level
//     snapshots, not by the core registry) is exported as TYPE gauge
//     with no suffix.
//
// The exporter is deterministic: identical snapshots render to
// byte-identical text, which is what lets tests assert on exact series.
// docs/SERVICE.md and docs/OBSERVABILITY.md carry the full name mapping
// for every registered metric.
package promexport

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"vca/internal/metrics"
)

// sanitize maps a dotted metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; we use '_' for every rejected rune and no
// colons (those are reserved for recording rules by convention).
func sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the exposition format (backslash
// and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Write renders samples under the given namespace. Samples are emitted
// in name order regardless of input order, so output is deterministic.
// A sample with an unknown Kind is skipped rather than guessed at.
func Write(w io.Writer, namespace string, samples []metrics.Sample) error {
	sorted := make([]metrics.Sample, len(samples))
	copy(sorted, samples)
	slices.SortFunc(sorted, func(a, b metrics.Sample) int { return strings.Compare(a.Name, b.Name) })

	for i := range sorted {
		s := &sorted[i]
		base := sanitize(namespace + "_" + s.Name)
		switch s.Kind {
		case "counter":
			if err := writeHeader(w, base+"_total", "counter", s); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_total %d\n", base, s.Value); err != nil {
				return err
			}
		case "gauge":
			if err := writeHeader(w, base, "gauge", s); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", base, s.Value); err != nil {
				return err
			}
		case "histogram", "occupancy":
			if err := writeHistogram(w, base, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, kind string, s *metrics.Sample) error {
	if s.Desc != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(s.Desc)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

func writeHistogram(w io.Writer, base string, s *metrics.Sample) error {
	if err := writeHeader(w, base, "histogram", s); err != nil {
		return err
	}
	// Source buckets are non-cumulative [lo, hi) counts over integers;
	// Prometheus buckets are cumulative with inclusive upper bounds.
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.Hi != 0 {
			le = fmt.Sprintf("%d", b.Hi-1)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, le, cum); err != nil {
			return err
		}
	}
	// Prometheus requires a closing +Inf bucket equal to _count; emit it
	// when the last source bucket was bounded (or there were no buckets).
	if n := len(s.Buckets); n == 0 || s.Buckets[n-1].Hi != 0 {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", base, s.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", base, s.Sum, base, s.Count); err != nil {
		return err
	}
	if s.Kind == "occupancy" {
		if _, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", base, base, s.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteRegistry is the common whole-registry form: it snapshots r and
// writes every metric under the namespace.
func WriteRegistry(w io.Writer, namespace string, r *metrics.Registry) error {
	return Write(w, namespace, r.Snapshot())
}
