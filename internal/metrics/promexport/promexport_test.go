package promexport

import (
	"strings"
	"testing"

	"vca/internal/metrics"
)

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"simcache.sf_hits":       "simcache_sf_hits",
		"core.fetch.stall.empty": "core_fetch_stall_empty",
		"9lives":                 "_lives",
		"a-b c":                  "a_b_c",
	} {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCounterAndGauge(t *testing.T) {
	var b strings.Builder
	err := Write(&b, "vca", []metrics.Sample{
		{Name: "server.queue_depth", Kind: "gauge", Value: 7, Desc: "cells waiting in the queue"},
		{Name: "simcache.sf_hits", Kind: "counter", Value: 3, Desc: "coalesced jobs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP vca_simcache_sf_hits_total coalesced jobs\n",
		"# TYPE vca_simcache_sf_hits_total counter\n",
		"vca_simcache_sf_hits_total 3\n",
		"# TYPE vca_server_queue_depth gauge\n",
		"vca_server_queue_depth 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: sorted by source name, simcache before server? No:
	// "server.queue_depth" < "simcache.sf_hits" lexicographically.
	if strings.Index(out, "vca_server_queue_depth") > strings.Index(out, "vca_simcache_sf_hits_total") {
		t.Errorf("samples not emitted in sorted name order:\n%s", out)
	}
}

func TestWriteHistogramCumulative(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("server.latency_us", "us", "request latency")
	for _, v := range []uint64{0, 1, 1, 3, 900} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WriteRegistry(&b, "vca", r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets: v=0 → [0,1) le="0"; v=1,1 → [1,2) le="1"; v=3 → [2,4)
	// le="3"; v=900 → [512,1024) le="1023". Cumulative: 1, 3, 4, 5,
	// then a closing +Inf at count 5.
	for _, want := range []string{
		"# TYPE vca_server_latency_us histogram\n",
		`vca_server_latency_us_bucket{le="0"} 1` + "\n",
		`vca_server_latency_us_bucket{le="1"} 3` + "\n",
		`vca_server_latency_us_bucket{le="3"} 4` + "\n",
		`vca_server_latency_us_bucket{le="1023"} 5` + "\n",
		`vca_server_latency_us_bucket{le="+Inf"} 5` + "\n",
		"vca_server_latency_us_sum 905\n",
		"vca_server_latency_us_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteOccupancyMax(t *testing.T) {
	r := metrics.NewRegistry()
	o := r.Occupancy("core.rob.occupancy", "entries", "ROB residency")
	o.Observe(4)
	o.Observe(9)
	var b strings.Builder
	if err := WriteRegistry(&b, "vca", r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vca_core_rob_occupancy histogram\n",
		"# TYPE vca_core_rob_occupancy_max gauge\n",
		"vca_core_rob_occupancy_max 9\n",
		"vca_core_rob_occupancy_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteEmptyRegistry pins the degenerate scrape: a registry with
// nothing registered renders to empty output, not an error and not a
// stray header.
func TestWriteEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := WriteRegistry(&b, "vca", metrics.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty registry rendered %q, want empty output", b.String())
	}
	// A sample with an unknown kind is skipped, not guessed at.
	b.Reset()
	if err := Write(&b, "vca", []metrics.Sample{{Name: "x", Kind: "mystery", Value: 3}}); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("unknown-kind sample rendered %q, want nothing", b.String())
	}
}

// TestWriteNeverObservedHistogram pins the all-zero-bucket case: a
// histogram that was registered but never observed must still render a
// complete, valid series — a TYPE header, a single closing +Inf bucket
// at zero, and zero _sum/_count — because Prometheus rejects a
// histogram without its +Inf bucket.
func TestWriteNeverObservedHistogram(t *testing.T) {
	r := metrics.NewRegistry()
	r.Histogram("core.iq.wait_cycles", "cycles", "issue-queue wait")
	var b strings.Builder
	if err := WriteRegistry(&b, "vca", r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vca_core_iq_wait_cycles histogram\n",
		`vca_core_iq_wait_cycles_bucket{le="+Inf"} 0` + "\n",
		"vca_core_iq_wait_cycles_sum 0\n",
		"vca_core_iq_wait_cycles_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "_bucket{"); n != 1 {
		t.Errorf("never-observed histogram emitted %d bucket series, want only the closing +Inf:\n%s", n, out)
	}
}

// TestWriteNeverSampledOccupancy pins the untouched-occupancy case: a
// queue that never saw a sample still exports its _max gauge (at zero)
// alongside the empty histogram, so dashboards can tell "never
// sampled" from "series missing".
func TestWriteNeverSampledOccupancy(t *testing.T) {
	r := metrics.NewRegistry()
	r.Occupancy("core.astq.occupancy", "entries", "ASTQ residency")
	var b strings.Builder
	if err := WriteRegistry(&b, "vca", r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vca_core_astq_occupancy histogram\n",
		`vca_core_astq_occupancy_bucket{le="+Inf"} 0` + "\n",
		"vca_core_astq_occupancy_count 0\n",
		"# TYPE vca_core_astq_occupancy_max gauge\n",
		"vca_core_astq_occupancy_max 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteDeterministic pins that two identical snapshots render to
// byte-identical text — what lets the service tests and the smoke gate
// assert on exact series.
func TestWriteDeterministic(t *testing.T) {
	samples := []metrics.Sample{
		{Name: "b", Kind: "counter", Value: 1},
		{Name: "a", Kind: "gauge", Value: 2},
	}
	var x, y strings.Builder
	if err := Write(&x, "vca", samples); err != nil {
		t.Fatal(err)
	}
	if err := Write(&y, "vca", samples); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("identical snapshots rendered differently")
	}
	if strings.Index(x.String(), "vca_a") > strings.Index(x.String(), "vca_b_total") {
		t.Fatalf("not sorted:\n%s", x.String())
	}
}
