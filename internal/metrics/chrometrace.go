package metrics

import (
	"encoding/json"
	"io"
)

// TraceRecorder accumulates Chrome trace-event-format events (the JSON
// consumed by chrome://tracing and https://ui.perfetto.dev) describing a
// simulated pipeline over time. The core emits, per committed
// instruction, one complete ("X") slice per pipeline stage it occupied,
// plus per-cycle counter ("C") series for queue occupancies and instant
// ("i") events for stall causes — so a bubble visible on the timeline
// sits next to the event that caused it.
//
// Time base: one simulated cycle is recorded as one microsecond (the
// trace format's native ts unit), so "1 µs" in the viewer reads as "1
// cycle". Recording is opt-in and buffered in memory; a committed
// instruction produces ~4 slices, so bound long runs with a commit
// budget (vcasim -stop) before tracing them.
type TraceRecorder struct {
	events []traceEvent
}

// Arg is one key/value annotation attached to a trace event.
type Arg struct {
	Key string
	Val string
}

const maxArgs = 3

type traceEvent struct {
	name  string
	cat   string
	ph    byte // 'X', 'C', 'i', 'M'
	ts    uint64
	dur   uint64
	pid   int
	tid   int
	value uint64 // 'C' events
	nargs int
	args  [maxArgs]Arg
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// Len returns the number of recorded events.
func (t *TraceRecorder) Len() int { return len(t.events) }

func (t *TraceRecorder) push(e traceEvent, args []Arg) {
	if len(args) > maxArgs {
		args = args[:maxArgs]
	}
	e.nargs = copy(e.args[:], args)
	t.events = append(t.events, e)
}

// Complete records a complete slice: a named span of dur cycles starting
// at cycle ts on track (pid, tid).
func (t *TraceRecorder) Complete(name, cat string, pid, tid int, ts, dur uint64, args ...Arg) {
	t.push(traceEvent{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, pid: pid, tid: tid}, args)
}

// Instant records a point event at cycle ts on track (pid, tid) — used
// for stall causes.
func (t *TraceRecorder) Instant(name, cat string, pid, tid int, ts uint64, args ...Arg) {
	t.push(traceEvent{name: name, cat: cat, ph: 'i', ts: ts, pid: pid, tid: tid}, args)
}

// Counter records one point of a counter series (rendered as a stacked
// area chart by the viewers).
func (t *TraceRecorder) Counter(name string, pid int, ts, value uint64) {
	t.push(traceEvent{name: name, ph: 'C', ts: ts, pid: pid, value: value}, nil)
}

// NameProcess labels a pid (one simulated hardware thread) in the viewer.
func (t *TraceRecorder) NameProcess(pid int, name string) {
	t.push(traceEvent{name: "process_name", ph: 'M', pid: pid}, []Arg{{Key: "name", Val: name}})
}

// NameThread labels a tid (one pipeline-stage lane) within a pid.
func (t *TraceRecorder) NameThread(pid, tid int, name string) {
	t.push(traceEvent{name: "thread_name", ph: 'M', pid: pid, tid: tid}, []Arg{{Key: "name", Val: name}})
}

// jsonEvent is the wire form of one event. Counter values are numeric
// (the viewers chart them); annotation args are strings.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the accumulated events as a Chrome trace-event JSON
// object. Load the file at ui.perfetto.dev (drag and drop) or
// chrome://tracing.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range t.events {
		e := &t.events[i]
		je := jsonEvent{Name: e.name, Cat: e.cat, Ph: string(rune(e.ph)), TS: e.ts, PID: e.pid, TID: e.tid}
		switch e.ph {
		case 'X':
			d := e.dur
			je.Dur = &d
		case 'C':
			je.Args = map[string]any{"value": e.value}
		case 'i':
			je.S = "t" // thread-scoped instant
		}
		if e.nargs > 0 {
			if je.Args == nil {
				je.Args = make(map[string]any, e.nargs)
			}
			for _, a := range e.args[:e.nargs] {
				je.Args[a.Key] = a.Val
			}
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if err := encodeEvent(w, je); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// encodeEvent marshals one event without a trailing newline so the
// separators stay under our control.
func encodeEvent(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
