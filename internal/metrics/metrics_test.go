package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 30, 31}, {1 << 40, NumBuckets - 1}, {^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bounds round-trip: every value must fall inside its bucket's range.
	for _, v := range []uint64{0, 1, 2, 3, 5, 100, 1 << 20} {
		lo, hi := BucketBounds(BucketOf(v))
		if v < lo || (hi != 0 && v >= hi) {
			t.Errorf("value %d outside its bucket bounds [%d, %d)", v, lo, hi)
		}
	}
}

func TestHistogramAndOccupancy(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 4, 9} {
		h.Observe(v)
	}
	if h.Count != 5 || h.Sum != 15 {
		t.Fatalf("count=%d sum=%d, want 5/15", h.Count, h.Sum)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean=%v, want 3", got)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[3] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("unexpected buckets %v", h.Buckets)
	}

	var o Occupancy
	o.Observe(3)
	o.Observe(7)
	o.Observe(2)
	if o.Max != 7 {
		t.Fatalf("max=%d, want 7", o.Max)
	}
	if o.Mean() != 4 {
		t.Fatalf("mean=%v, want 4", o.Mean())
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("z.last", "events", "registered first, sorts last")
	var adopted Counter
	r.RegisterCounter("a.first", "cycles", "adopted field", &adopted)
	adopted.Inc()
	h := r.Histogram("m.hist", "insts", "")
	o := r.Occupancy("m.occ", "entries", "")
	c.Add(3)
	h.Observe(5)
	o.Observe(9)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if byName["z.last"].Value != 3 {
		t.Errorf("counter value %d, want 3", byName["z.last"].Value)
	}
	if s := byName["m.occ"]; s.Max != 9 || s.Count != 1 || len(s.Buckets) != 1 {
		t.Errorf("occupancy sample %+v", s)
	}

	cm := r.CounterMap()
	if len(cm) != 2 || cm["z.last"] != 3 {
		t.Errorf("counter map %v", cm)
	}
}

// TestRegistryPerturb covers the fault-injection hook the counterpoint
// teeth tests lean on: shifting a live counter up, clamping at zero on
// a drain, refusing to touch non-counter kinds, and reporting absence.
func TestRegistryPerturb(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.commit.uops", "uops", "")
	c.Add(10)
	r.Histogram("core.iq.wait", "cycles", "")

	if !r.Perturb("core.commit.uops", 5) {
		t.Fatal("Perturb did not find a registered counter")
	}
	if got := r.CounterMap()["core.commit.uops"]; got != 15 {
		t.Errorf("after +5: %d, want 15", got)
	}
	if !r.Perturb("core.commit.uops", -100) {
		t.Fatal("draining perturb did not find the counter")
	}
	if got := r.CounterMap()["core.commit.uops"]; got != 0 {
		t.Errorf("drain did not clamp at zero: %d", got)
	}
	if r.Perturb("core.iq.wait", 1) {
		t.Error("Perturb touched a histogram")
	}
	if r.Perturb("no.such.counter", 1) {
		t.Error("Perturb claimed to find an unregistered name")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "", "")
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b", "events", "").Add(2)
		r.Counter("a", "cycles", "").Inc()
		r.Occupancy("q", "entries", "").Observe(4)
		return r
	}
	var w1, w2 bytes.Buffer
	if err := build().WriteJSON(&w1, &Header{Arch: "test", Cycles: 10}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&w2, &Header{Arch: "test", Cycles: 10}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("two identical registries exported different JSON")
	}
	var doc map[string]any
	if err := json.Unmarshal(w1.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc["schema"].(float64) != DumpSchema {
		t.Fatalf("schema = %v", doc["schema"])
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "events", "").Add(7)
	var w bytes.Buffer
	if err := r.WriteCSV(&w); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(w.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "c,counter,events,7,") {
		t.Fatalf("unexpected CSV:\n%s", w.String())
	}
}

func TestTraceRecorderJSON(t *testing.T) {
	tr := NewTraceRecorder()
	tr.NameProcess(0, "thread 0")
	tr.NameThread(0, 2, "execute")
	tr.Complete("addq r1, r2, r3", "pipeline", 0, 2, 100, 3, Arg{Key: "pc", Val: "0x10040"})
	tr.Instant("rename-stall: rob_full", "stall", 0, 1, 104)
	tr.Counter("occ.rob", 0, 104, 17)
	var w bytes.Buffer
	if err := tr.WriteJSON(&w); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, w.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[2]
	if x["ph"] != "X" || x["dur"].(float64) != 3 || x["args"].(map[string]any)["pc"] != "0x10040" {
		t.Errorf("complete event wrong: %v", x)
	}
	c := doc.TraceEvents[4]
	if c["ph"] != "C" || c["args"].(map[string]any)["value"].(float64) != 17 {
		t.Errorf("counter event wrong: %v", c)
	}
}
