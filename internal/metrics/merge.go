package metrics

import (
	"cmp"
	"slices"
	"strings"
)

// Merge combines sample sets from multiple registries into one
// fleet-wide set, the aggregation the shard router's /metrics performs
// over its workers' registries (internal/server/shard). Samples with
// the same Name merge by Kind:
//
//   - counters and gauges sum their Values (a fleet's jobs_done is the
//     sum of its workers'; a fleet's queue_depth likewise);
//   - histograms and occupancies sum Count and Sum, take the maximum
//     Max, recompute Mean, and merge buckets by [Lo, Hi) bounds —
//     every registry uses the same power-of-two bucket scheme, so
//     bounds align exactly and no resampling is needed;
//   - Kind, Unit, and Desc come from the first set that carries the
//     name. A name carrying conflicting Kinds across sets keeps the
//     first Kind and ignores later mismatched samples rather than
//     summing unlike things.
//
// The output is sorted by Name, so merging is deterministic: identical
// input sets produce byte-identical /metrics output downstream.
func Merge(sets ...[]Sample) []Sample {
	merged := make(map[string]*Sample)
	for _, set := range sets {
		for i := range set {
			s := &set[i]
			m, ok := merged[s.Name]
			if !ok {
				cp := *s
				cp.Buckets = slices.Clone(s.Buckets)
				merged[s.Name] = &cp
				continue
			}
			if m.Kind != s.Kind {
				continue // conflicting kinds: keep the first, skip the rest
			}
			switch s.Kind {
			case "counter", "gauge":
				m.Value += s.Value
			case "histogram", "occupancy":
				m.Count += s.Count
				m.Sum += s.Sum
				if s.Max > m.Max {
					m.Max = s.Max
				}
				m.Buckets = mergeBuckets(m.Buckets, s.Buckets)
			}
		}
	}
	out := make([]Sample, 0, len(merged))
	for _, s := range merged { //lint:maporder samples are collected then sorted by name before return
		if s.Kind == "histogram" || s.Kind == "occupancy" {
			if s.Count > 0 {
				s.Mean = float64(s.Sum) / float64(s.Count)
			} else {
				s.Mean = 0
			}
		}
		out = append(out, *s)
	}
	slices.SortFunc(out, func(a, b Sample) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// mergeBuckets sums two non-cumulative bucket lists by their [Lo, Hi)
// bounds. Both lists are already sorted by Lo (Snapshot emits them that
// way), and the unbounded overflow bucket (Hi == 0) sorts last by Lo,
// so a single ordered merge suffices.
func mergeBuckets(a, b []Bucket) []Bucket {
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Lo == b[j].Lo && a[i].Hi == b[j].Hi:
			out = append(out, Bucket{Lo: a[i].Lo, Hi: a[i].Hi, Count: a[i].Count + b[j].Count})
			i++
			j++
		case cmp.Less(a[i].Lo, b[j].Lo):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
