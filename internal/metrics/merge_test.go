package metrics

import (
	"reflect"
	"testing"
)

func TestMergeCountersAndGauges(t *testing.T) {
	a := []Sample{
		{Name: "server.cells_done", Kind: "counter", Unit: "events", Desc: "cells", Value: 3},
		{Name: "server.queue_depth", Kind: "gauge", Unit: "events", Value: 2},
		{Name: "only.in_a", Kind: "counter", Unit: "events", Value: 7},
	}
	b := []Sample{
		{Name: "server.queue_depth", Kind: "gauge", Unit: "events", Value: 5},
		{Name: "server.cells_done", Kind: "counter", Unit: "events", Value: 4},
		{Name: "only.in_b", Kind: "counter", Unit: "events", Value: 1},
	}
	got := Merge(a, b)
	want := []Sample{
		{Name: "only.in_a", Kind: "counter", Unit: "events", Value: 7},
		{Name: "only.in_b", Kind: "counter", Unit: "events", Value: 1},
		{Name: "server.cells_done", Kind: "counter", Unit: "events", Desc: "cells", Value: 7},
		{Name: "server.queue_depth", Kind: "gauge", Unit: "events", Value: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge =\n%+v\nwant\n%+v", got, want)
	}
}

func TestMergeHistograms(t *testing.T) {
	a := []Sample{{
		Name: "server.latency.cell_us", Kind: "histogram", Unit: "us",
		Count: 3, Sum: 30, Mean: 10,
		Buckets: []Bucket{{Lo: 0, Hi: 8, Count: 1}, {Lo: 8, Hi: 16, Count: 2}},
	}}
	b := []Sample{{
		Name: "server.latency.cell_us", Kind: "histogram", Unit: "us",
		Count: 2, Sum: 50, Mean: 25,
		Buckets: []Bucket{{Lo: 8, Hi: 16, Count: 1}, {Lo: 32, Hi: 0, Count: 1}},
	}}
	got := Merge(a, b)
	if len(got) != 1 {
		t.Fatalf("merged %d samples, want 1", len(got))
	}
	m := got[0]
	if m.Count != 5 || m.Sum != 80 || m.Mean != 16 {
		t.Errorf("count/sum/mean = %d/%d/%v, want 5/80/16", m.Count, m.Sum, m.Mean)
	}
	wantBuckets := []Bucket{{Lo: 0, Hi: 8, Count: 1}, {Lo: 8, Hi: 16, Count: 3}, {Lo: 32, Hi: 0, Count: 1}}
	if !reflect.DeepEqual(m.Buckets, wantBuckets) {
		t.Errorf("buckets = %+v, want %+v", m.Buckets, wantBuckets)
	}
}

func TestMergeOccupancyMax(t *testing.T) {
	a := []Sample{{Name: "core.rob_occ", Kind: "occupancy", Count: 2, Sum: 10, Max: 9}}
	b := []Sample{{Name: "core.rob_occ", Kind: "occupancy", Count: 1, Sum: 2, Max: 31}}
	got := Merge(a, b)
	if len(got) != 1 || got[0].Max != 31 || got[0].Count != 3 {
		t.Fatalf("occupancy merge = %+v, want max 31 count 3", got)
	}
}

// TestMergeRealRegistries pins the end-to-end property the router
// depends on: merging N snapshots of registries built through the real
// counter/histogram paths equals one registry that observed the union
// of the traffic.
func TestMergeRealRegistries(t *testing.T) {
	build := func(observations []uint64, adds uint64) *Registry {
		r := NewRegistry()
		c := r.Counter("t.count", "events", "d")
		c.Add(adds)
		h := r.Histogram("t.hist", "us", "d")
		for _, v := range observations {
			h.Observe(v)
		}
		return r
	}
	a := build([]uint64{1, 5, 900}, 3)
	b := build([]uint64{2, 70000}, 4)
	union := build([]uint64{1, 5, 900, 2, 70000}, 7)

	got := Merge(a.Snapshot(), b.Snapshot())
	want := union.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged snapshots =\n%+v\nwant union registry\n%+v", got, want)
	}
}

// TestMergeDeterministic: permuting the input sets must not change the
// aggregate values, and the output is always name-sorted.
func TestMergeDeterministic(t *testing.T) {
	a := []Sample{{Name: "x", Kind: "counter", Value: 1}, {Name: "y", Kind: "counter", Value: 2}}
	b := []Sample{{Name: "y", Kind: "counter", Value: 3}, {Name: "x", Kind: "counter", Value: 4}}
	ab, ba := Merge(a, b), Merge(b, a)
	if len(ab) != 2 || ab[0].Name != "x" || ab[1].Name != "y" {
		t.Fatalf("output not name-sorted: %+v", ab)
	}
	for i := range ab {
		if ab[i].Value != ba[i].Value || ab[i].Name != ba[i].Name {
			t.Fatalf("merge order changed aggregates: %+v vs %+v", ab, ba)
		}
	}
}
