// Package metrics is the simulator's hardware-event-counter surface: a
// registry of named Counters, power-of-two-bucketed Histograms, and
// queue Occupancy trackers that components register once at construction
// and then bump through plain struct fields on the hot path — no map
// lookup, no interface call, no allocation per event.
//
// The design follows the instrumentation discipline of counter-driven
// microarchitecture validation (CounterPoint; see PAPERS.md): every rate
// the paper's evaluation depends on — rename stalls, spill/fill traffic,
// window-trap overhead, per-cause cache accesses — is exposed as a named
// event with a unit, so an assumption about the machine can be refuted
// with a measurement rather than re-argued. Naming, units, and the
// stall-cause taxonomy are documented in docs/OBSERVABILITY.md.
//
// Hot-path contract: a Counter is a uint64 (bump with c.Inc() or a plain
// ++ on the struct field); Histogram.Observe is a bits.Len64 plus three
// adds; Occupancy.Observe adds a max track on top. The Registry is
// touched only at construction and at export time, never per cycle.
// Exporters (JSON, CSV — export.go) and the Chrome trace-event recorder
// (chrometrace.go) read from a point-in-time Snapshot.
package metrics

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"
)

// Counter is a monotonically increasing event count. Components hold it
// by value inside their own stats structs (or obtain a pointer from
// Registry.Counter) and bump it directly; the registry keeps a pointer
// for export. Existing plain-uint64 stat fields register via a pointer
// conversion: (*metrics.Counter)(&stats.Field).
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0
// counts zero values; bucket i (1 ≤ i < NumBuckets-1) counts values v
// with 2^(i-1) ≤ v < 2^i; the last bucket absorbs everything larger.
const NumBuckets = 32

// Histogram is a fixed power-of-two-bucketed distribution. Observe is
// allocation-free and branch-light so it can run per cycle.
type Histogram struct {
	Count   Counter
	Sum     Counter
	Buckets [NumBuckets]Counter
}

// BucketOf returns the bucket index a value lands in.
func BucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBounds returns the inclusive lower and exclusive upper value
// bound of bucket i (the last bucket's upper bound is reported as 0,
// meaning unbounded).
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	if i >= NumBuckets-1 {
		return 1 << (NumBuckets - 2), 0
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.Count++
	h.Sum += Counter(v)
	h.Buckets[BucketOf(v)]++
}

// ObserveN records the same value n times, equivalent to (but O(1)
// instead of O(n)) calling Observe(v) n times. Event-driven simulators
// use it to bulk-account a run of identical per-cycle samples when the
// sampled state is provably frozen across skipped cycles.
func (h *Histogram) ObserveN(v, n uint64) {
	h.Count += Counter(n)
	h.Sum += Counter(v * n)
	h.Buckets[BucketOf(v)] += Counter(n)
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Occupancy tracks a queue's occupancy over time: sampled once per
// cycle, it accumulates the full distribution plus the high-water mark,
// giving both average residency (Sum/Count) and saturation evidence
// (Max, top buckets).
type Occupancy struct {
	Hist Histogram
	Max  Counter
}

// Observe records one occupancy sample.
func (o *Occupancy) Observe(n uint64) {
	o.Hist.Observe(n)
	if Counter(n) > o.Max {
		o.Max = Counter(n)
	}
}

// ObserveN records the same occupancy sample n times (see
// Histogram.ObserveN).
func (o *Occupancy) ObserveN(v, n uint64) {
	o.Hist.ObserveN(v, n)
	if Counter(v) > o.Max {
		o.Max = Counter(v)
	}
}

// Mean returns the average occupancy.
func (o *Occupancy) Mean() float64 { return o.Hist.Mean() }

// Kind discriminates the registered metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindHistogram
	KindOccupancy
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	case KindOccupancy:
		return "occupancy"
	}
	return "?"
}

type entry struct {
	name string
	unit string
	desc string
	kind Kind
	c    *Counter
	h    *Histogram
	o    *Occupancy
}

// Registry holds the named metrics of one machine instance. It is not
// safe for concurrent use; a simulator is single-threaded and each
// Machine owns its own Registry.
type Registry struct {
	entries []entry
	byName  map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) add(e entry) {
	if _, dup := r.byName[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", e.name))
	}
	r.byName[e.name] = struct{}{}
	r.entries = append(r.entries, e)
}

// Counter allocates and registers a fresh counter.
func (r *Registry) Counter(name, unit, desc string) *Counter {
	c := new(Counter)
	r.RegisterCounter(name, unit, desc, c)
	return c
}

// RegisterCounter adopts an existing counter field. This is the
// no-indirection path: the component keeps bumping its own struct field
// and the registry only remembers where it lives.
func (r *Registry) RegisterCounter(name, unit, desc string, c *Counter) {
	r.add(entry{name: name, unit: unit, desc: desc, kind: KindCounter, c: c})
}

// Histogram allocates and registers a fresh histogram.
func (r *Registry) Histogram(name, unit, desc string) *Histogram {
	h := new(Histogram)
	r.RegisterHistogram(name, unit, desc, h)
	return h
}

// RegisterHistogram adopts an existing histogram field.
func (r *Registry) RegisterHistogram(name, unit, desc string, h *Histogram) {
	r.add(entry{name: name, unit: unit, desc: desc, kind: KindHistogram, h: h})
}

// Occupancy allocates and registers a fresh occupancy tracker.
func (r *Registry) Occupancy(name, unit, desc string) *Occupancy {
	o := new(Occupancy)
	r.RegisterOccupancy(name, unit, desc, o)
	return o
}

// RegisterOccupancy adopts an existing occupancy tracker.
func (r *Registry) RegisterOccupancy(name, unit, desc string, o *Occupancy) {
	r.add(entry{name: name, unit: unit, desc: desc, kind: KindOccupancy, o: o})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.entries) }

// Bucket is one non-empty histogram bucket in a Sample: values v with
// Lo ≤ v < Hi (Hi == 0 means unbounded above).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi,omitempty"`
	Count uint64 `json:"count"`
}

// Sample is the exported point-in-time value of one metric. Counter
// samples carry Value; histogram and occupancy samples carry
// Count/Sum/Mean (and Max for occupancy) plus the non-empty buckets.
type Sample struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Unit    string   `json:"unit"`
	Desc    string   `json:"desc,omitempty"`
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func histSample(s *Sample, h *Histogram) {
	s.Count = h.Count.Value()
	s.Sum = h.Sum.Value()
	s.Mean = h.Mean()
	for i := range h.Buckets {
		if h.Buckets[i] == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: h.Buckets[i].Value()})
	}
}

// Snapshot returns every metric's current value, sorted by name, so two
// identical runs export byte-identical dumps.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		s := Sample{Name: e.name, Kind: e.kind.String(), Unit: e.unit, Desc: e.desc}
		switch e.kind {
		case KindCounter:
			s.Value = e.c.Value()
		case KindHistogram:
			histSample(&s, e.h)
		case KindOccupancy:
			histSample(&s, &e.o.Hist)
			s.Max = e.o.Max.Value()
		}
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b Sample) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Perturb shifts a registered counter by delta, clamping at zero, and
// reports whether the counter exists. It is a fault-injection hook for
// the counter-oracle teeth tests (the registry analogue of the
// invariant checker's InjectLeak): a perturbed counter flows through
// every exporter — Snapshot, CounterMap, promexport — exactly like a
// real miscount, so a test can prove the counterpoint predicates
// actually fire on a violated relation. Never call it on a registry
// whose run you intend to keep.
func (r *Registry) Perturb(name string, delta int64) bool {
	for i := range r.entries {
		e := &r.entries[i]
		if e.name != name || e.kind != KindCounter {
			continue
		}
		switch {
		case delta >= 0:
			*e.c += Counter(delta)
		case uint64(-delta) >= e.c.Value():
			*e.c = 0
		default:
			*e.c -= Counter(-delta)
		}
		return true
	}
	return false
}

// CounterMap returns just the plain counters as a name→value map — the
// compact form merged into BENCH_*.json throughput rows.
func (r *Registry) CounterMap() map[string]uint64 {
	out := make(map[string]uint64, len(r.entries))
	for i := range r.entries {
		if e := &r.entries[i]; e.kind == KindCounter {
			out[e.name] = e.c.Value()
		}
	}
	return out
}
