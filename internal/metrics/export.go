package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Dump is the on-disk JSON stats document (`vcasim -stats out.json`).
// Schema evolution contract: DumpSchema bumps whenever a field is
// renamed, removed, or changes meaning; adding fields is backward
// compatible and does not bump it. The golden-file test in
// stats_export_test.go pins the rendered form.
const DumpSchema = 1

// Header carries run identification alongside the counter samples so a
// dump is interpretable on its own.
type Header struct {
	Arch      string `json:"arch,omitempty"`
	PhysRegs  int    `json:"phys_regs,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	Workloads string `json:"workloads,omitempty"`
	Cycles    uint64 `json:"cycles,omitempty"`
	Committed uint64 `json:"committed,omitempty"`
}

type dump struct {
	Schema  int      `json:"schema"`
	Header  *Header  `json:"run,omitempty"`
	Metrics []Sample `json:"metrics"`
}

// WriteJSON writes the registry's snapshot as an indented, sorted,
// deterministic JSON document. hdr may be nil.
func (r *Registry) WriteJSON(w io.Writer, hdr *Header) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump{Schema: DumpSchema, Header: hdr, Metrics: r.Snapshot()})
}

// WriteCSV writes one row per metric: name, kind, unit, value, count,
// sum, max, mean. Histogram buckets are omitted from the CSV form — use
// the JSON dump for full distributions.
func (r *Registry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "unit", "value", "count", "sum", "max", "mean"}); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, s := range r.Snapshot() {
		row := []string{s.Name, s.Kind, s.Unit, u(s.Value), u(s.Count), u(s.Sum), u(s.Max),
			strconv.FormatFloat(s.Mean, 'g', -1, 64)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
