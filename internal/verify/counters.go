package verify

// counters.go — counter-map extraction for the counterpoint oracle.
// Where RunOne runs a spec in full lockstep (co-simulation + per-cycle
// invariant checker) and reports divergence, RunCounters runs the same
// spec as a plain measurement: checker and co-sim off, and the result
// is the run's counter map plus the config-derived parameters the
// counter-algebra predicates reference. The counterpoint sweep and its
// shrinker callbacks funnel through here, so a predicate refutation is
// a statement about the *measured machine*, independent of the
// invariant checker's own bookkeeping.

import (
	"fmt"

	"vca/internal/core"
	"vca/internal/isa"
)

// Params returns the configuration-derived parameters counterpoint
// predicates may reference (pipeline width, thread count, register
// file size, window slots, DL1 ports), with defaults resolved exactly
// as the machine resolves them.
func (s MachineSpec) Params() (map[string]uint64, error) {
	cfg, err := s.coreConfig()
	if err != nil {
		return nil, err
	}
	return ConfigParams(cfg), nil
}

// ConfigParams derives the predicate parameter map from a resolved
// core configuration (the non-spec path used by the golden matrix).
func ConfigParams(cfg core.Config) map[string]uint64 {
	return map[string]uint64{
		"width":        uint64(cfg.Width),
		"threads":      uint64(cfg.Threads),
		"phys_regs":    uint64(cfg.PhysRegs),
		"window_slots": uint64(isa.WindowSlots),
		"dl1_ports":    uint64(cfg.Hier.DL1Ports),
	}
}

// RunCounters executes one (machine, program) pair as a measurement
// run — co-simulation and the invariant checker disabled — and returns
// its counter map. The run is capped at MaxCycles like every verify
// run, so a pathological configuration errors out instead of hanging.
func RunCounters(ms MachineSpec, ps ProgramSpec) (map[string]uint64, error) {
	cfg, err := ms.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.CoSim = false
	cfg.Check = false
	progs, _, err := ps.programs(ms.Threads, ms.Windowed())
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg, progs, ms.Windowed())
	if err != nil {
		return nil, fmt.Errorf("verify: machine construction: %w", err)
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("verify: %s/%s: %w", ms.Rename, ms.Window, err)
	}
	return res.Metrics.CounterMap(), nil
}

// Constructs reports whether the spec builds a valid machine. The
// counterpoint planner uses it to reject cross-product cells that the
// machine constructor would refuse (e.g. too few physical registers
// for the thread count).
func (s MachineSpec) Constructs() bool { return s.constructs() }
