package verify

// Shrink reduces a failing (machine, program) pair to a locally minimal
// one: greedy descent over a fixed candidate list, accepting any
// transformation after which fails still reports true, iterated to a
// fixpoint. The candidate order matters for repro quality — structural
// program features first (they dominate readability of the generated
// source), then program size, then machine scale.
func Shrink(ms MachineSpec, ps ProgramSpec, fails func(MachineSpec, ProgramSpec) bool) (MachineSpec, ProgramSpec) {
	type candidate func(*MachineSpec, *ProgramSpec) bool // returns false when inapplicable

	halve := func(v *int, floor int) bool {
		if *v <= floor {
			return false
		}
		*v /= 2
		if *v < floor {
			*v = floor
		}
		return true
	}
	dec := func(v *int, floor int) bool {
		if *v <= floor {
			return false
		}
		*v--
		return true
	}

	candidates := []candidate{
		// Program structure.
		func(m *MachineSpec, p *ProgramSpec) bool {
			if !p.Gen.Recursion {
				return false
			}
			p.Gen.Recursion = false
			p.Gen.MaxRecDepth = 0
			return true
		},
		func(m *MachineSpec, p *ProgramSpec) bool {
			if !p.Gen.Aliasing {
				return false
			}
			p.Gen.Aliasing = false
			return true
		},
		func(m *MachineSpec, p *ProgramSpec) bool {
			if !p.Gen.Loops {
				return false
			}
			p.Gen.Loops = false
			return true
		},
		func(m *MachineSpec, p *ProgramSpec) bool { return dec(&p.Gen.WindowLadder, 0) },
		func(m *MachineSpec, p *ProgramSpec) bool { return dec(&p.Gen.Helpers, 0) },
		func(m *MachineSpec, p *ProgramSpec) bool { return dec(&p.Gen.MaxRecDepth, 1) },
		// Program size.
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&p.Gen.Blocks, 1) },
		func(m *MachineSpec, p *ProgramSpec) bool { return dec(&p.Gen.Blocks, 1) },
		// Machine scale. Thread reduction regenerates fewer programs from
		// the same seed, so the failure must survive the re-generation.
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&m.Threads, 1) },
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&m.Width, 1) },
		func(m *MachineSpec, p *ProgramSpec) bool { return dec(&m.Width, 1) },
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&m.ROBSize, 8) },
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&m.IQSize, 4) },
		func(m *MachineSpec, p *ProgramSpec) bool { return halve(&m.LSQSize, 4) },
	}

	for changed := true; changed; {
		changed = false
		for _, c := range candidates {
			for {
				m, p := ms, ps
				if !c(&m, &p) {
					break
				}
				if m != ms && !m.constructs() {
					break
				}
				if !fails(m, p) {
					break
				}
				ms, ps = m, p
				changed = true
			}
		}
	}
	return ms, ps
}
