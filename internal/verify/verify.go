// Package verify implements the config-space lockstep sweep: it samples
// randomized machine configurations and randomized (dual-ABI-safe)
// programs, runs each pair on the cycle-level core with co-simulation
// and the per-cycle invariant checker enabled, and — when a run
// diverges from the functional emulator or trips an invariant — shrinks
// the failing (machine, program) pair to a minimal reproduction that
// serializes as JSON. `cmd/experiments -sweep` is the command-line
// entry point; docs/VERIFICATION.md documents the repro format.
package verify

import (
	"fmt"
	"math/rand"
	"sync"

	"vca/internal/asm"
	"vca/internal/core"
	"vca/internal/emu"
	"vca/internal/progen"
	"vca/internal/program"
	"vca/internal/simcache"
)

// MachineSpec is the JSON-serializable description of one sampled
// machine configuration. Unset size fields take the paper's Table 1
// defaults (DefaultConfig).
type MachineSpec struct {
	Rename   string `json:"rename"` // "conventional" | "vca"
	Window   string `json:"window"` // "none" | "conv" | "ideal" | "vca"
	Threads  int    `json:"threads"`
	PhysRegs int    `json:"phys_regs"`
	Width    int    `json:"width,omitempty"`
	ROBSize  int    `json:"rob,omitempty"`
	IQSize   int    `json:"iq,omitempty"`
	LSQSize  int    `json:"lsq,omitempty"`
	ASTQSize int    `json:"astq,omitempty"`

	// VCA rename-table geometry (ignored for conventional rename).
	TableSets  int `json:"table_sets,omitempty"`
	TableWays  int `json:"table_ways,omitempty"`
	TablePorts int `json:"table_ports,omitempty"`
	ASTQWrites int `json:"astq_writes,omitempty"`

	// Data-cache geometry.
	DL1KB     int `json:"dl1_kb,omitempty"`
	DL1Ways   int `json:"dl1_ways,omitempty"`
	BlockBits int `json:"block_bits,omitempty"`
	DL1Ports  int `json:"dl1_ports,omitempty"`
}

// ProgramSpec pins the generated workload: the generator configuration
// plus the random seed. Threads come from the machine spec.
type ProgramSpec struct {
	Seed int64         `json:"seed"`
	Gen  progen.Config `json:"gen"`
}

// Repro is one shrunk failure: the minimal machine/program pair that
// still fails, plus the failure the original pair produced.
type Repro struct {
	Machine MachineSpec `json:"machine"`
	Program ProgramSpec `json:"program"`
	Failure string      `json:"failure"`
}

// Windowed reports whether the machine runs windowed-ABI binaries.
func (s MachineSpec) Windowed() bool {
	return s.Window == "conv" || s.Window == "ideal" || s.Window == "vca"
}

// coreConfig translates the spec into a core configuration with
// co-simulation and invariant checking enabled.
func (s MachineSpec) coreConfig() (core.Config, error) {
	var rm core.RenameModel
	switch s.Rename {
	case "conventional":
		rm = core.RenameConventional
	case "vca":
		rm = core.RenameVCA
	default:
		return core.Config{}, fmt.Errorf("verify: unknown rename model %q", s.Rename)
	}
	var wm core.WindowModel
	switch s.Window {
	case "none":
		wm = core.WindowNone
	case "conv":
		wm = core.WindowConventional
	case "ideal":
		wm = core.WindowIdeal
	case "vca":
		wm = core.WindowVCA
	default:
		return core.Config{}, fmt.Errorf("verify: unknown window model %q", s.Window)
	}
	cfg := core.DefaultConfig(rm, wm, s.Threads, s.PhysRegs)
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&cfg.Width, s.Width)
	set(&cfg.ROBSize, s.ROBSize)
	set(&cfg.IQSize, s.IQSize)
	set(&cfg.LSQSize, s.LSQSize)
	set(&cfg.ASTQSize, s.ASTQSize)
	set(&cfg.VCA.Sets, s.TableSets)
	set(&cfg.VCA.Ways, s.TableWays)
	set(&cfg.VCA.Ports, s.TablePorts)
	set(&cfg.VCA.ASTQWrites, s.ASTQWrites)
	if s.DL1KB != 0 {
		cfg.Hier.DL1.SizeBytes = s.DL1KB << 10
	}
	set(&cfg.Hier.DL1.Ways, s.DL1Ways)
	set(&cfg.Hier.DL1.BlockBits, s.BlockBits)
	set(&cfg.Hier.DL1Ports, s.DL1Ports)
	cfg.CoSim = true
	cfg.Check = true
	cfg.MaxCycles = 50_000_000
	return cfg, nil
}

// programs generates, assembles, and functionally executes the per-thread
// programs, returning them with their reference outputs.
func (p ProgramSpec) programs(threads int, windowed bool) ([]*program.Program, []string, error) {
	srcs := progen.GenerateSMT(rand.New(rand.NewSource(p.Seed)), p.Gen, threads)
	progs := make([]*program.Program, threads)
	want := make([]string, threads)
	for i, src := range srcs {
		prog, err := asm.Assemble(src)
		if err != nil {
			return nil, nil, fmt.Errorf("verify: generated program %d does not assemble: %w", i, err)
		}
		m := emu.New(prog, emu.Config{Windowed: windowed, MaxInsts: 10_000_000})
		reason, err := m.Run()
		if err != nil || reason != emu.StopExited {
			return nil, nil, fmt.Errorf("verify: reference run of program %d: %v (%v)", i, err, reason)
		}
		progs[i] = prog
		want[i] = m.Output.String()
	}
	return progs, want, nil
}

// RunOne executes one (machine, program) pair in lockstep with the
// functional emulator. A nil result means the run committed every
// instruction in agreement with the reference, produced identical
// output on every thread, and never violated a cycle-level invariant.
func RunOne(ms MachineSpec, ps ProgramSpec) error {
	cfg, err := ms.coreConfig()
	if err != nil {
		return err
	}
	progs, want, err := ps.programs(ms.Threads, ms.Windowed())
	if err != nil {
		return err
	}
	m, err := core.New(cfg, progs, ms.Windowed())
	if err != nil {
		return fmt.Errorf("verify: machine construction: %w", err)
	}
	res, err := m.Run()
	if err != nil {
		return fmt.Errorf("verify: %s/%s: %w", ms.Rename, ms.Window, err)
	}
	for i := range progs {
		if got := res.Threads[i].Output; got != want[i] {
			return fmt.Errorf("verify: %s/%s thread %d output %q, want %q",
				ms.Rename, ms.Window, i, got, want[i])
		}
	}
	return nil
}

// constructs reports whether the spec builds a valid machine (the
// sampler uses it to reject out-of-range configurations, e.g. too few
// physical registers for the thread count).
func (s MachineSpec) constructs() bool {
	cfg, err := s.coreConfig()
	if err != nil {
		return false
	}
	prog, err := asm.Assemble("main:\n        li a0, 0\n        syscall 0\n")
	if err != nil {
		return false
	}
	progs := make([]*program.Program, s.Threads)
	for i := range progs {
		progs[i] = prog
	}
	_, err = core.New(cfg, progs, s.Windowed())
	return err == nil
}

// SampleSpec draws one valid random machine configuration and a program
// configuration stressing it.
func SampleSpec(r *rand.Rand) (MachineSpec, ProgramSpec) {
	var ms MachineSpec
	for {
		ms = MachineSpec{
			Threads: []int{1, 1, 2, 4}[r.Intn(4)],
			Width:   []int{1, 2, 4, 8}[r.Intn(4)],
			ROBSize: 32 << r.Intn(3),
			IQSize:  16 << r.Intn(2),
			LSQSize: 16 << r.Intn(2),

			DL1KB:     4 << r.Intn(5),
			DL1Ways:   1 << r.Intn(3),
			BlockBits: 5 + r.Intn(2),
			DL1Ports:  1 + r.Intn(2),
		}
		if r.Intn(2) == 0 {
			ms.Rename = "conventional"
			ms.Window = []string{"none", "conv"}[r.Intn(2)]
			// Enough physical registers for every thread's logical file
			// plus some number of in-flight destinations.
			ms.PhysRegs = 65*ms.Threads + 32*(1+r.Intn(5))
			if ms.Window == "conv" {
				if ms.Threads > 2 {
					continue // windowed SMT beyond 2 threads: not a paper config
				}
				// Room for at least one resident window per thread.
				ms.PhysRegs = 96 + 32*(ms.Threads+r.Intn(5)) + 65*ms.Threads
			}
		} else {
			ms.Rename = "vca"
			ms.Window = []string{"none", "ideal", "vca"}[r.Intn(3)]
			ms.PhysRegs = 40 + r.Intn(260) // the register cache can be tiny
			ms.ASTQSize = 8 << r.Intn(2)
			ms.TableSets = 16 << r.Intn(3)
			ms.TableWays = 2 + r.Intn(5)
			ms.TablePorts = 4 + r.Intn(5)
			ms.ASTQWrites = 1 + r.Intn(4)
		}
		if ms.constructs() {
			break
		}
	}

	ps := ProgramSpec{
		Seed: r.Int63(),
		Gen: progen.Config{
			Helpers:  r.Intn(5),
			Blocks:   8 + r.Intn(25),
			Loops:    r.Intn(2) == 0,
			Aliasing: r.Intn(2) == 0,
		},
	}
	if ms.Windowed() && r.Intn(2) == 0 {
		ps.Gen.WindowLadder = 2 + r.Intn(6)
	}
	if r.Intn(2) == 0 {
		ps.Gen.Recursion = true
		ps.Gen.MaxRecDepth = 2 + r.Intn(9)
	}
	return ms, ps
}

// Case is one planned sweep run: a sampled machine and the program
// spec (with its pinned seed) to run on it.
type Case struct {
	Machine MachineSpec `json:"machine"`
	Program ProgramSpec `json:"program"`
}

// Plan samples the sweep's n cases up front from a fixed seed. The
// sampling pass is strictly sequential over one RNG, so the planned
// cases — including every program's repro seed — are a pure function
// of (seed, n), independent of how many workers later execute them.
// (The previous Sweep consumed a shared RNG in dispatch order, which
// would have tied repro seeds to worker scheduling once the sweep ran
// in parallel.)
func Plan(seed int64, n int) []Case {
	r := rand.New(rand.NewSource(seed))
	out := make([]Case, n)
	for i := range out {
		out[i].Machine, out[i].Program = SampleSpec(r)
	}
	return out
}

// runOne is indirected for worker-independence tests.
var runOne = RunOne

// Sweep plans and runs n configurations from a fixed seed on the
// shared job runner (jobs=0 means GOMAXPROCS workers). Each divergence
// is shrunk to a minimal reproduction; repros are returned in run-index
// order regardless of completion order. progress (optional) receives
// one call per run, delivered in index order. The returned error
// aggregates harness-level failures (a panicking configuration, never
// a mere divergence), lowest run index first.
func Sweep(seed int64, n, jobs int, progress func(i int, failed bool)) ([]Repro, error) {
	cases := Plan(seed, n)
	repros := make([]*Repro, n)
	failed := make([]bool, n)

	// Deliver progress strictly in index order as runs complete.
	var (
		mu       sync.Mutex
		done     = make([]bool, n)
		nextTell = 0
	)
	tell := func(i int) {
		if progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for nextTell < n && done[nextTell] {
			progress(nextTell, failed[nextTell])
			nextTell++
		}
	}

	runner := simcache.Runner{Jobs: jobs, KeepGoing: true}
	err := runner.Run(n, func(i int) error {
		defer tell(i) // also on panic, so in-order progress never stalls
		c := cases[i]
		if err := runOne(c.Machine, c.Program); err != nil {
			failed[i] = true
			sm, sp := Shrink(c.Machine, c.Program, func(m MachineSpec, p ProgramSpec) bool {
				return runOne(m, p) != nil
			})
			repros[i] = &Repro{Machine: sm, Program: sp, Failure: err.Error()}
		}
		return nil
	})

	var out []Repro
	for _, r := range repros {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out, err
}
