package verify

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vca/internal/progen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRunOneCanonicalSpecs runs one fixed program spec on a
// representative machine from each rename/window family.
func TestRunOneCanonicalSpecs(t *testing.T) {
	ps := ProgramSpec{Seed: 1234, Gen: progen.Config{
		Helpers: 2, Blocks: 10, Loops: true, Aliasing: true, Recursion: true, MaxRecDepth: 4,
	}}
	specs := []MachineSpec{
		{Rename: "conventional", Window: "none", Threads: 1, PhysRegs: 128},
		{Rename: "conventional", Window: "conv", Threads: 1, PhysRegs: 160},
		{Rename: "vca", Window: "none", Threads: 2, PhysRegs: 96},
		{Rename: "vca", Window: "ideal", Threads: 1, PhysRegs: 128},
		{Rename: "vca", Window: "vca", Threads: 1, PhysRegs: 56},
	}
	for _, ms := range specs {
		if err := RunOne(ms, ps); err != nil {
			t.Errorf("%s/%s: %v", ms.Rename, ms.Window, err)
		}
	}
}

// TestSweepFixedSeed runs the sweep the `make ci` target uses, scaled
// down: a fixed seed must produce zero divergences.
func TestSweepFixedSeed(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	repros := Sweep(7, n, nil)
	for _, r := range repros {
		b, _ := json.MarshalIndent(r, "", "  ")
		t.Errorf("sweep divergence:\n%s", b)
	}
}

func TestSampleSpecAlwaysConstructs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		ms, ps := SampleSpec(r)
		if !ms.constructs() {
			t.Fatalf("sampled spec does not construct: %+v", ms)
		}
		if ps.Gen.Blocks == 0 {
			t.Fatalf("sampled program spec has no blocks: %+v", ps)
		}
	}
}

// TestShrinkGolden drives the shrinker with a synthetic failure
// predicate and compares the minimal pair against a golden fixture —
// the proof that greedy shrinking actually reaches the minimum and
// stays deterministic. Regenerate with -update.
func TestShrinkGolden(t *testing.T) {
	ms := MachineSpec{
		Rename: "vca", Window: "vca", Threads: 4, PhysRegs: 200,
		Width: 8, ROBSize: 256, IQSize: 64, LSQSize: 64,
	}
	ps := ProgramSpec{Seed: 42, Gen: progen.Config{
		Helpers: 4, WindowLadder: 5, Recursion: true, MaxRecDepth: 9,
		Blocks: 32, Loops: true, Aliasing: true,
	}}
	// Synthetic failure: an aliasing bug that needs a few blocks to
	// manifest and at least two-wide issue, independent of everything
	// else. calls counts predicate evaluations (shrink cost).
	calls := 0
	fails := func(m MachineSpec, p ProgramSpec) bool {
		calls++
		return p.Gen.Aliasing && p.Gen.Blocks >= 4 && m.Width >= 2
	}
	if !fails(ms, ps) {
		t.Fatal("initial pair must fail")
	}
	sm, sp := Shrink(ms, ps, fails)
	if !fails(sm, sp) {
		t.Fatal("shrunk pair no longer fails")
	}
	if sp.Gen.Blocks != 4 || sm.Width != 2 || !sp.Gen.Aliasing {
		t.Errorf("not minimal: blocks=%d width=%d aliasing=%v", sp.Gen.Blocks, sm.Width, sp.Gen.Aliasing)
	}
	if sp.Gen.Recursion || sp.Gen.Loops || sp.Gen.Helpers != 0 || sp.Gen.WindowLadder != 0 {
		t.Errorf("irrelevant program features survived: %+v", sp.Gen)
	}
	if calls > 200 {
		t.Errorf("shrinker used %d predicate evaluations, want <= 200", calls)
	}

	got, err := json.MarshalIndent(Repro{Machine: sm, Program: sp, Failure: "synthetic"}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "shrink_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("shrunk repro differs from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReproRoundTrips checks the JSON wire format survives a round trip
// (the sweep prints repros for humans to re-run).
func TestReproRoundTrips(t *testing.T) {
	in := Repro{
		Machine: MachineSpec{Rename: "vca", Window: "none", Threads: 2, PhysRegs: 96, TableSets: 32},
		Program: ProgramSpec{Seed: 5, Gen: progen.Config{Blocks: 8, Aliasing: true}},
		Failure: "example",
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Repro
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the repro: %+v vs %+v", out, in)
	}
}
