package verify

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"vca/internal/progen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRunOneCanonicalSpecs runs one fixed program spec on a
// representative machine from each rename/window family.
func TestRunOneCanonicalSpecs(t *testing.T) {
	ps := ProgramSpec{Seed: 1234, Gen: progen.Config{
		Helpers: 2, Blocks: 10, Loops: true, Aliasing: true, Recursion: true, MaxRecDepth: 4,
	}}
	specs := []MachineSpec{
		{Rename: "conventional", Window: "none", Threads: 1, PhysRegs: 128},
		{Rename: "conventional", Window: "conv", Threads: 1, PhysRegs: 160},
		{Rename: "vca", Window: "none", Threads: 2, PhysRegs: 96},
		{Rename: "vca", Window: "ideal", Threads: 1, PhysRegs: 128},
		{Rename: "vca", Window: "vca", Threads: 1, PhysRegs: 56},
	}
	for _, ms := range specs {
		if err := RunOne(ms, ps); err != nil {
			t.Errorf("%s/%s: %v", ms.Rename, ms.Window, err)
		}
	}
}

// TestSweepFixedSeed runs the sweep the `make ci` target uses, scaled
// down: a fixed seed must produce zero divergences.
func TestSweepFixedSeed(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	repros, err := Sweep(7, n, 0, nil)
	if err != nil {
		t.Errorf("sweep harness failure: %v", err)
	}
	for _, r := range repros {
		b, _ := json.MarshalIndent(r, "", "  ")
		t.Errorf("sweep divergence:\n%s", b)
	}
}

func TestSampleSpecAlwaysConstructs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		ms, ps := SampleSpec(r)
		if !ms.constructs() {
			t.Fatalf("sampled spec does not construct: %+v", ms)
		}
		if ps.Gen.Blocks == 0 {
			t.Fatalf("sampled program spec has no blocks: %+v", ps)
		}
	}
}

// TestPlanIndependentOfWorkerCount is the RNG-derivation regression
// test: the sweep's sampled machines and program repro seeds must be a
// pure function of (seed, n) — never of how many workers execute the
// runs or in which order they finish. Plan samples sequentially up
// front, so two plans agree exactly, and a parallel sweep visits the
// same cases as a serial one.
func TestPlanIndependentOfWorkerCount(t *testing.T) {
	const n = 12
	a, b := Plan(1234, n), Plan(1234, n)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Plan is not deterministic")
	}
	seeds := map[int64]bool{}
	for _, c := range a {
		seeds[c.Program.Seed] = true
	}
	if len(seeds) != n {
		t.Errorf("program seeds not distinct: %d unique of %d", len(seeds), n)
	}

	// Stub the runner-facing entry point: record which cases each sweep
	// executes and fail a fixed subset, so shrinking and repro assembly
	// run too. The stub must be deterministic in the case content (not
	// the call order) for the cross-worker comparison to be meaningful.
	old := runOne
	defer func() { runOne = old }()
	var mu sync.Mutex
	seen := map[int][]Case{} // jobs → executed cases, in run-index order
	var jobs int
	runOne = func(ms MachineSpec, ps ProgramSpec) error {
		mu.Lock()
		seen[jobs] = append(seen[jobs], Case{ms, ps})
		mu.Unlock()
		if ps.Seed%3 == 0 { // deterministic synthetic divergence
			return errors.New("synthetic divergence")
		}
		return nil
	}

	var repros [][]Repro
	for _, jobs = range []int{1, 4} {
		rs, err := Sweep(1234, n, jobs, nil)
		if err != nil {
			t.Fatal(err)
		}
		repros = append(repros, rs)
	}
	if !reflect.DeepEqual(repros[0], repros[1]) {
		t.Errorf("repro lists differ between 1 and 4 workers:\n%+v\nvs\n%+v", repros[0], repros[1])
	}
	// Same top-level cases executed (order may differ under 4 workers;
	// shrink probes append too, so compare the planned prefix as sets).
	for _, jobs := range []int{1, 4} {
		got := map[int64]bool{}
		for _, c := range seen[jobs] {
			got[c.Program.Seed] = true
		}
		for _, c := range a {
			if !got[c.Program.Seed] {
				t.Errorf("jobs=%d: planned case with seed %d never ran", jobs, c.Program.Seed)
			}
		}
	}
}

// TestSweepProgressInOrder: progress callbacks arrive strictly in run
// order even when completions race.
func TestSweepProgressInOrder(t *testing.T) {
	old := runOne
	defer func() { runOne = old }()
	runOne = func(ms MachineSpec, ps ProgramSpec) error {
		time.Sleep(time.Duration(ps.Seed%5) * time.Millisecond)
		return nil
	}
	const n = 16
	var got []int
	if _, err := Sweep(9, n, 4, func(i int, failed bool) {
		got = append(got, i) // serialized by Sweep's ordered delivery
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("progress fired %d times, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("progress out of order at %d: %v", i, got)
		}
	}
}

// TestShrinkGolden drives the shrinker with a synthetic failure
// predicate and compares the minimal pair against a golden fixture —
// the proof that greedy shrinking actually reaches the minimum and
// stays deterministic. Regenerate with -update.
func TestShrinkGolden(t *testing.T) {
	ms := MachineSpec{
		Rename: "vca", Window: "vca", Threads: 4, PhysRegs: 200,
		Width: 8, ROBSize: 256, IQSize: 64, LSQSize: 64,
	}
	ps := ProgramSpec{Seed: 42, Gen: progen.Config{
		Helpers: 4, WindowLadder: 5, Recursion: true, MaxRecDepth: 9,
		Blocks: 32, Loops: true, Aliasing: true,
	}}
	// Synthetic failure: an aliasing bug that needs a few blocks to
	// manifest and at least two-wide issue, independent of everything
	// else. calls counts predicate evaluations (shrink cost).
	calls := 0
	fails := func(m MachineSpec, p ProgramSpec) bool {
		calls++
		return p.Gen.Aliasing && p.Gen.Blocks >= 4 && m.Width >= 2
	}
	if !fails(ms, ps) {
		t.Fatal("initial pair must fail")
	}
	sm, sp := Shrink(ms, ps, fails)
	if !fails(sm, sp) {
		t.Fatal("shrunk pair no longer fails")
	}
	if sp.Gen.Blocks != 4 || sm.Width != 2 || !sp.Gen.Aliasing {
		t.Errorf("not minimal: blocks=%d width=%d aliasing=%v", sp.Gen.Blocks, sm.Width, sp.Gen.Aliasing)
	}
	if sp.Gen.Recursion || sp.Gen.Loops || sp.Gen.Helpers != 0 || sp.Gen.WindowLadder != 0 {
		t.Errorf("irrelevant program features survived: %+v", sp.Gen)
	}
	if calls > 200 {
		t.Errorf("shrinker used %d predicate evaluations, want <= 200", calls)
	}

	got, err := json.MarshalIndent(Repro{Machine: sm, Program: sp, Failure: "synthetic"}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "shrink_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("shrunk repro differs from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReproRoundTrips checks the JSON wire format survives a round trip
// (the sweep prints repros for humans to re-run).
func TestReproRoundTrips(t *testing.T) {
	in := Repro{
		Machine: MachineSpec{Rename: "vca", Window: "none", Threads: 2, PhysRegs: 96, TableSets: 32},
		Program: ProgramSpec{Seed: 5, Gen: progen.Config{Blocks: 8, Aliasing: true}},
		Failure: "example",
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Repro
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the repro: %+v vs %+v", out, in)
	}
}
