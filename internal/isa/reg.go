// Package isa defines the simulated instruction-set architecture used
// throughout the repository: a 64-bit, fixed-width (32-bit instructions)
// RISC machine in the style of the Alpha ISA the paper targets, extended —
// exactly as the paper's §3.1 describes — with a register-window variant in
// which call and return instructions rotate the windowed subset of the
// register file.
//
// The ISA has 32 integer registers (r31 hardwired to zero) and 32
// floating-point registers (f31 hardwired to +0.0). Following the paper,
// every register used to communicate values across a function-call boundary
// (arguments, return values, sp, ra, gp, assembler temporaries) is global
// (non-windowed); the callee-saved set r0–r15 / f0–f15 is windowed.
package isa

import "fmt"

// NumIntRegs and NumFPRegs give the architectural register file shape.
// NumArchRegs is the unified count used by rename machinery: integer
// registers occupy ids [0,32) and floating-point registers [32,64).
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumArchRegs = NumIntRegs + NumFPRegs
)

// Reg is a unified architectural register id: 0–31 integer, 32–63 floating
// point. The two hardwired-zero registers are ZeroInt (r31) and ZeroFP (f63
// in unified numbering, i.e. f31).
type Reg uint8

// Hardwired zero registers and common ABI registers (unified numbering).
const (
	ZeroInt Reg = 31
	ZeroFP  Reg = 32 + 31

	// Integer ABI registers. r0–r15 are the windowed/callee-saved set.
	RegV0 Reg = 16 // return value (alias of first argument register)
	RegA0 Reg = 16 // arguments a0–a5 = r16–r21
	RegA1 Reg = 17
	RegA2 Reg = 18
	RegA3 Reg = 19
	RegA4 Reg = 20
	RegA5 Reg = 21
	RegT0 Reg = 22 // caller-saved temporaries t0–t3 = r22–r25
	RegT1 Reg = 23
	RegT2 Reg = 24
	RegT3 Reg = 25
	RegRA Reg = 26 // return address
	RegAT Reg = 27 // assembler temporary
	RegGP Reg = 28 // global pointer
	RegSP Reg = 29 // stack pointer
	RegT4 Reg = 30 // extra caller-saved temporary

	// Floating-point ABI registers (unified ids). f0–f15 windowed.
	RegFA0 Reg = 32 + 16 // fp arguments fa0–fa3 = f16–f19
	RegFA1 Reg = 32 + 17
	RegFA2 Reg = 32 + 18
	RegFA3 Reg = 32 + 19
	RegFV0 Reg = 32 + 16 // fp return value
	RegFT0 Reg = 32 + 20 // fp temporaries ft0–ft10 = f20–f30
)

// RegNone marks "no register" in decoded-instruction operand slots.
const RegNone Reg = 0xFF

// IsInt reports whether r names an integer register.
func (r Reg) IsInt() bool { return r < NumIntRegs }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumArchRegs }

// IsZero reports whether r is one of the two hardwired zero registers.
// Zero registers are never renamed and never allocated physical storage.
func (r Reg) IsZero() bool { return r == ZeroInt || r == ZeroFP }

// IntReg and FPReg build unified ids from per-file indices.
func IntReg(i int) Reg { return Reg(i) }
func FPReg(i int) Reg  { return Reg(NumIntRegs + i) }

// FileIndex returns the index of r within its own register file (0–31).
func (r Reg) FileIndex() int {
	if r.IsFP() {
		return int(r) - NumIntRegs
	}
	return int(r)
}

// Register windows. The windowed subset is r0–r15 and f0–f15: 32 slots per
// window frame, 8 bytes each. Calls move the window base pointer down by
// WindowBytes; returns move it back up (the register stack grows downward,
// like the memory stack).
const (
	WindowedPerFile = 16
	WindowSlots     = 2 * WindowedPerFile // 32 slots: 16 int + 16 fp
	WindowBytes     = WindowSlots * 8     // 256 bytes per window frame
	GlobalSlots     = NumArchRegs - WindowSlots
)

// IsWindowed reports whether r belongs to the windowed register class: the
// class whose logical identity changes on every call and return when
// register windows are enabled (§2.1.5).
func (r Reg) IsWindowed() bool {
	return int(r) < WindowedPerFile ||
		(r.IsFP() && r.FileIndex() < WindowedPerFile)
}

// WindowSlot returns r's slot within a window frame (0–31). It panics if r
// is not windowed; callers must check IsWindowed first.
func (r Reg) WindowSlot() int {
	switch {
	case int(r) < WindowedPerFile:
		return int(r)
	case r.IsFP() && r.FileIndex() < WindowedPerFile:
		return WindowedPerFile + r.FileIndex()
	}
	panic(fmt.Sprintf("isa: WindowSlot of non-windowed register %v", r))
}

// GlobalSlot returns r's slot within the global (non-windowed) register
// space (0–31). It panics if r is windowed.
func (r Reg) GlobalSlot() int {
	switch {
	case r.IsInt() && int(r) >= WindowedPerFile:
		return int(r) - WindowedPerFile
	case r.IsFP() && r.FileIndex() >= WindowedPerFile:
		return WindowedPerFile + r.FileIndex() - WindowedPerFile
	}
	panic(fmt.Sprintf("isa: GlobalSlot of windowed register %v", r))
}

var intRegNames = [NumIntRegs]string{
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "s12", "s13", "s14", "s15",
	"a0", "a1", "a2", "a3", "a4", "a5",
	"t0", "t1", "t2", "t3",
	"ra", "at", "gp", "sp", "t4", "zero",
}

var fpRegNames = [NumFPRegs]string{
	"fs0", "fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "fs12", "fs13", "fs14", "fs15",
	"fa0", "fa1", "fa2", "fa3",
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5",
	"ft6", "ft7", "ft8", "ft9", "ft10", "fzero",
}

// String returns the ABI name of the register (e.g. "sp", "a0", "fs3").
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return intRegNames[r]
	case r.IsFP():
		return fpRegNames[r.FileIndex()]
	}
	return fmt.Sprintf("reg%d?", uint8(r))
}

// RegByName resolves an ABI register name (or raw "rN"/"fN" form) to a
// unified register id. It returns RegNone, false for unknown names.
func RegByName(name string) (Reg, bool) {
	if r, ok := regNameTable[name]; ok {
		return r, true
	}
	return RegNone, false
}

var regNameTable = func() map[string]Reg {
	m := make(map[string]Reg, 4*NumIntRegs)
	for i := 0; i < NumIntRegs; i++ {
		m[intRegNames[i]] = Reg(i)
		m[fmt.Sprintf("r%d", i)] = Reg(i)
		m[fpRegNames[i]] = FPReg(i)
		m[fmt.Sprintf("f%d", i)] = FPReg(i)
	}
	m["v0"] = RegV0
	m["fv0"] = RegFV0
	return m
}()
