package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegClasses(t *testing.T) {
	if !ZeroInt.IsZero() || !ZeroFP.IsZero() {
		t.Fatal("zero registers not recognized")
	}
	if ZeroInt.IsWindowed() || ZeroFP.IsWindowed() {
		t.Error("zero registers must be global")
	}
	for i := 0; i < WindowedPerFile; i++ {
		if !IntReg(i).IsWindowed() || !FPReg(i).IsWindowed() {
			t.Errorf("r%d/f%d should be windowed", i, i)
		}
	}
	for i := WindowedPerFile; i < NumIntRegs; i++ {
		if IntReg(i).IsWindowed() || FPReg(i).IsWindowed() {
			t.Errorf("r%d/f%d should be global", i, i)
		}
	}
	if RegSP.IsWindowed() || RegRA.IsWindowed() || RegA0.IsWindowed() {
		t.Error("ABI cross-call registers must be global")
	}
}

func TestWindowSlotsUniqueAndComplete(t *testing.T) {
	seenW := map[int]Reg{}
	seenG := map[int]Reg{}
	for r := Reg(0); r < NumArchRegs; r++ {
		if r.IsWindowed() {
			s := r.WindowSlot()
			if s < 0 || s >= WindowSlots {
				t.Fatalf("window slot %d of %v out of range", s, r)
			}
			if prev, dup := seenW[s]; dup {
				t.Fatalf("window slot %d assigned to both %v and %v", s, prev, r)
			}
			seenW[s] = r
		} else {
			s := r.GlobalSlot()
			if s < 0 || s >= GlobalSlots {
				t.Fatalf("global slot %d of %v out of range", s, r)
			}
			if prev, dup := seenG[s]; dup {
				t.Fatalf("global slot %d assigned to both %v and %v", s, prev, r)
			}
			seenG[s] = r
		}
	}
	if len(seenW) != WindowSlots {
		t.Errorf("got %d windowed slots, want %d", len(seenW), WindowSlots)
	}
	if len(seenG) != GlobalSlots {
		t.Errorf("got %d global slots, want %d", len(seenG), GlobalSlots)
	}
}

func TestRegNames(t *testing.T) {
	cases := map[string]Reg{
		"sp": RegSP, "ra": RegRA, "zero": ZeroInt, "r31": ZeroInt,
		"a0": RegA0, "v0": RegV0, "s0": 0, "r5": 5,
		"fzero": ZeroFP, "f0": FPReg(0), "fs3": FPReg(3), "fa0": RegFA0,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %v,%v; want %v", name, got, ok, want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName accepted bogus name")
	}
	for r := Reg(0); r < NumArchRegs; r++ {
		back, ok := RegByName(r.String())
		if !ok || back != r {
			t.Errorf("round trip of %v via name %q failed", r, r.String())
		}
	}
}

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	insts := []Inst{
		{Op: OpAdd, A: 1, B: 2, C: 3},
		{Op: OpFMul, A: 30, B: 29, C: 28},
		{Op: OpAddI, A: 29, B: 29, Imm: -8},
		{Op: OpLdQ, A: 29, B: 4, Imm: Imm14Max},
		{Op: OpStB, A: 16, B: 17, Imm: Imm14Min},
		{Op: OpBne, A: 22, Imm: -300},
		{Op: OpJmp, Imm: Disp24Min},
		{Op: OpJsr, Imm: Disp24Max},
		{Op: OpRet, A: 26},
		{Op: OpJsrR, A: 24},
		{Op: OpSyscall, Imm: SysPutInt},
	}
	for _, in := range insts {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out := Decode(w)
		if out != in {
			t.Errorf("round trip %+v -> %+v", in, out)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := EncodeI(OpAddI, 0, 0, Imm14Max+1); err == nil {
		t.Error("EncodeI accepted oversized immediate")
	}
	if _, err := EncodeBr(OpBeq, 0, Disp19Min-1); err == nil {
		t.Error("EncodeBr accepted oversized displacement")
	}
	if _, err := EncodeJ(OpJmp, Disp24Max+1); err == nil {
		t.Error("EncodeJ accepted oversized displacement")
	}
}

// Property: every encodable instruction round-trips through Decode.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(opRaw uint8, a, b, c uint8, imm int32) bool {
		op := Op(opRaw % uint8(numOps))
		if op == OpInvalid {
			return true
		}
		in := Inst{Op: op, A: a & 31, B: b & 31, C: c & 31}
		switch op.Fmt() {
		case FmtR:
			// all fields used as built
		case FmtI:
			in.C = 0
			in.Imm = imm%(Imm14Max+1) - 0 // in range after mod
			if in.Imm < Imm14Min {
				in.Imm = Imm14Min
			}
		case FmtBr:
			in.B, in.C = 0, 0
			in.Imm = imm % (Disp19Max + 1)
		case FmtJ:
			in.A, in.B, in.C = 0, 0, 0
			in.Imm = imm % (Disp24Max + 1)
		case FmtJR:
			in.B, in.C = 0, 0
		case FmtSys:
			in.A, in.B, in.C = 0, 0, 0
			in.Imm = int32(uint16(imm))
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func u64(x int64) uint64 { return uint64(x) }

func TestEvalALUInteger(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, ^uint64(0)},
		{OpMul, 7, 6, 42},
		{OpDiv, u64(-7), 2, u64(-3)},
		{OpDiv, 5, 0, 0},
		{OpDiv, u64(math.MinInt64), u64(-1), u64(math.MinInt64)},
		{OpRem, 7, 3, 1},
		{OpRem, 7, 0, 7},
		{OpRem, u64(math.MinInt64), u64(-1), 0},
		{OpAnd, 0xF0, 0x3C, 0x30},
		{OpOr, 0xF0, 0x0F, 0xFF},
		{OpXor, 0xFF, 0x0F, 0xF0},
		{OpSll, 1, 63, 1 << 63},
		{OpSll, 1, 64, 1}, // shift counts mod 64
		{OpSrl, 1 << 63, 63, 1},
		{OpSra, 1 << 63, 63, ^uint64(0)},
		{OpCmpEq, 4, 4, 1},
		{OpCmpEq, 4, 5, 0},
		{OpCmpLt, u64(-1), 0, 1},
		{OpCmpULt, u64(-1), 0, 0},
		{OpCmpLe, 3, 3, 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	b := math.Float64bits
	if got := EvalALU(OpFAdd, b(1.5), b(2.25)); math.Float64frombits(got) != 3.75 {
		t.Errorf("fadd = %v", math.Float64frombits(got))
	}
	if got := EvalALU(OpFDiv, b(1), b(4)); math.Float64frombits(got) != 0.25 {
		t.Errorf("fdiv = %v", math.Float64frombits(got))
	}
	if got := EvalALU(OpFSqrt, b(9), 0); math.Float64frombits(got) != 3 {
		t.Errorf("fsqrt = %v", math.Float64frombits(got))
	}
	if got := EvalALU(OpFCmpLt, b(-1), b(1)); got != 1 {
		t.Errorf("fcmplt = %d", got)
	}
	if got := EvalALU(OpCvtIF, u64(-3), 0); math.Float64frombits(got) != -3 {
		t.Errorf("cvtif = %v", math.Float64frombits(got))
	}
	if got := EvalALU(OpCvtFI, b(-3.9), 0); int64(got) != -3 {
		t.Errorf("cvtfi = %d (want trunc toward zero)", int64(got))
	}
}

func TestBranchSemantics(t *testing.T) {
	neg := u64(-5)
	cases := []struct {
		op    Op
		a     uint64
		taken bool
	}{
		{OpBeq, 0, true}, {OpBeq, 1, false},
		{OpBne, 0, false}, {OpBne, neg, true},
		{OpBlt, neg, true}, {OpBlt, 0, false},
		{OpBle, 0, true}, {OpBle, 1, false},
		{OpBgt, 1, true}, {OpBgt, 0, false},
		{OpBge, 0, true}, {OpBge, neg, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a); got != c.taken {
			t.Errorf("%v(%d) taken = %v, want %v", c.op, int64(c.a), got, c.taken)
		}
	}
}

func TestControlTargets(t *testing.T) {
	i := Inst{Op: OpBeq, A: 0, Imm: -2}
	if tgt, ok := i.ControlTarget(0x1000); !ok || tgt != 0x1000+4-8 {
		t.Errorf("branch target = %#x,%v", tgt, ok)
	}
	j := Inst{Op: OpJsr, Imm: 10}
	if tgt, ok := j.ControlTarget(0x2000); !ok || tgt != 0x2000+4+40 {
		t.Errorf("jsr target = %#x,%v", tgt, ok)
	}
	r := Inst{Op: OpRet, A: uint8(RegRA)}
	if _, ok := r.ControlTarget(0); ok {
		t.Error("ret should have no static target")
	}
}

func TestOperandExtraction(t *testing.T) {
	// stq t0, 16(sp): base sp, value t0, no dest.
	st := Inst{Op: OpStQ, A: uint8(RegSP), B: uint8(RegT0), Imm: 16}
	if st.SrcA() != RegSP || st.SrcB() != RegT0 || st.Dest() != RegNone {
		t.Errorf("store operands: srcA=%v srcB=%v dest=%v", st.SrcA(), st.SrcB(), st.Dest())
	}
	// ldf fs0, 0(a0): dest is FP.
	ld := Inst{Op: OpLdF, A: uint8(RegA0), B: 0}
	if ld.Dest() != FPReg(0) || ld.SrcA() != RegA0 {
		t.Errorf("ldf operands: dest=%v srcA=%v", ld.Dest(), ld.SrcA())
	}
	// jsr writes ra.
	call := Inst{Op: OpJsr, Imm: 4}
	if call.Dest() != RegRA {
		t.Errorf("jsr dest = %v", call.Dest())
	}
	// fcmplt writes an integer register from FP sources.
	fc := Inst{Op: OpFCmpLt, A: 1, B: 2, C: uint8(RegT1)}
	if fc.Dest() != RegT1 || !fc.SrcA().IsFP() || !fc.SrcB().IsFP() {
		t.Errorf("fcmp operands: dest=%v srcA=%v srcB=%v", fc.Dest(), fc.SrcA(), fc.SrcB())
	}
	// Writes to zero registers are not renamed.
	z := Inst{Op: OpAddI, A: uint8(ZeroInt), B: uint8(ZeroInt), Imm: 0}
	if z.DestRenamed() != RegNone {
		t.Error("write to zero register should not be renamed")
	}
	if z.Dest() != ZeroInt {
		t.Error("architectural dest of nop should still be r31")
	}
}

func TestWindowDelta(t *testing.T) {
	if (Inst{Op: OpJsr}).WindowDelta() != -WindowBytes {
		t.Error("jsr must push a window")
	}
	if (Inst{Op: OpJsrR}).WindowDelta() != -WindowBytes {
		t.Error("jsrr must push a window")
	}
	if (Inst{Op: OpRet}).WindowDelta() != WindowBytes {
		t.Error("ret must pop a window")
	}
	if (Inst{Op: OpJmp}).WindowDelta() != 0 || (Inst{Op: OpAdd}).WindowDelta() != 0 {
		t.Error("non-call/ret must not move the window")
	}
}

func TestImmOperandExtension(t *testing.T) {
	// ori zero-extends, addi sign-extends.
	or := Inst{Op: OpOrI, Imm: -1 & Imm14Mask} // all 14 bits set
	or.Imm = signExtend(uint32(or.Imm), 14)
	if or.ImmOperand() != Imm14Mask {
		t.Errorf("ori imm = %#x, want %#x", or.ImmOperand(), Imm14Mask)
	}
	ad := Inst{Op: OpAddI, Imm: -1}
	if int64(ad.ImmOperand()) != -1 {
		t.Errorf("addi imm = %d, want -1", int64(ad.ImmOperand()))
	}
}

func TestOpMetadata(t *testing.T) {
	if OpLdQ.MemBytes() != 8 || OpLdL.MemBytes() != 4 || OpStB.MemBytes() != 1 {
		t.Error("wrong memory access sizes")
	}
	if !OpLdL.MemSigned() || OpLdBU.MemSigned() {
		t.Error("wrong load extension flags")
	}
	if !OpBeq.IsControl() || !OpRet.IsControl() || OpAdd.IsControl() {
		t.Error("wrong control classification")
	}
	if !OpLdF.IsMem() || OpFAdd.IsMem() {
		t.Error("wrong memory classification")
	}
	for op := Op(1); op < numOps; op++ {
		if op.Latency() < 1 {
			t.Errorf("%v has non-positive latency", op)
		}
		if op.String() == "" || op.String() == "op?" {
			t.Errorf("op %d has no name", op)
		}
		back, ok := OpByName(op.String())
		if !ok || back != op {
			t.Errorf("mnemonic round trip failed for %v", op)
		}
	}
}
