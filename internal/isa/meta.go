package isa

// Meta is the fully pre-derived operand/class view of one decoded
// instruction. The hot simulator loops (fetch, rename, the functional
// emulator's step) each need the same handful of facts — which registers
// the instruction reads and writes, its scheduling class, how control
// transfers classify — and deriving them from the instruction word costs
// several opTable lookups and format switches per instruction per stage.
// Precomputing them once per static instruction (see program.Meta) turns
// every per-dynamic-instruction derivation into a single indexed load.
type Meta struct {
	// Architectural operands as the functional model reads them:
	// RegNone marks an absent operand. Dest includes hardwired zero
	// destinations (writes to them are discarded by WriteReg).
	SrcA, SrcB, Dest Reg
	// Rename view of the same operands: hardwired zero registers are
	// normalized to RegNone (they are never renamed and read as zero).
	RenSrcA, RenSrcB, RenDest Reg

	Class Class
	Ctl   CtlKind
	Call  bool // control transfer pushes a return address (jsr/jsrr)

	HasImm    bool  // second ALU operand is the immediate
	MemSigned bool  // load sign-extends
	MemBytes  uint8 // memory access size (0 for non-memory ops)
	Imm       uint64
}

// CtlKind classifies control transfers the way the fetch stage predicts
// them; CtlNone marks non-control instructions.
type CtlKind uint8

const (
	CtlNone     CtlKind = iota
	CtlCond             // conditional branch
	CtlRet              // return (predicted via the RAS)
	CtlIndirect         // register-indirect jump or call (BTB-predicted)
	CtlDirect           // direct jump or call (statically-known target)
)

// MetaOf derives the metadata for one instruction. It is pure table
// work — callers should cache the result per static instruction rather
// than calling it per dynamic one.
func MetaOf(i Inst) Meta {
	m := Meta{
		SrcA:  i.SrcA(),
		SrcB:  i.SrcB(),
		Dest:  i.Dest(),
		Class: i.Op.OpClass(),
	}
	m.RenSrcA, m.RenSrcB, m.RenDest = normReg(m.SrcA), normReg(m.SrcB), i.DestRenamed()
	switch m.Class {
	case ClassBranch:
		m.Ctl = CtlCond
	case ClassRet:
		m.Ctl = CtlRet
	case ClassJump:
		if i.Op == OpJmpR {
			m.Ctl = CtlIndirect
		} else {
			m.Ctl = CtlDirect
		}
	case ClassCall:
		m.Call = true
		if i.Op == OpJsrR {
			m.Ctl = CtlIndirect
		} else {
			m.Ctl = CtlDirect
		}
	}
	if i.HasImmOperand() {
		m.HasImm = true
		m.Imm = i.ImmOperand()
	}
	m.MemBytes = uint8(i.Op.MemBytes())
	m.MemSigned = i.Op.MemSigned()
	return m
}

// normReg maps hardwired zero registers to RegNone (the rename view).
func normReg(r Reg) Reg {
	if r == RegNone || r.IsZero() {
		return RegNone
	}
	return r
}
