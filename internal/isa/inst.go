package isa

import "math"

// regOf converts a raw 5-bit field to a unified register id.
func regOf(field uint8, fp bool) Reg {
	if fp {
		return FPReg(int(field))
	}
	return Reg(field)
}

// SrcA returns the first source register, or RegNone. For memory ops this
// is the base address register; for branches, the tested register; for
// indirect jumps/calls/returns, the target register.
func (i Inst) SrcA() Reg {
	info := &opTable[i.Op]
	if !info.srcA {
		return RegNone
	}
	return regOf(i.A, info.srcAFP)
}

// SrcB returns the second source register, or RegNone. For stores this is
// the value being stored.
func (i Inst) SrcB() Reg {
	info := &opTable[i.Op]
	if !info.srcB {
		return RegNone
	}
	return regOf(i.B, info.srcBFP)
}

// Dest returns the destination register, or RegNone. Writes to the
// hardwired zero registers are architectural no-ops; callers that allocate
// rename resources should treat a zero-register destination as RegNone
// (DestRenamed does this).
func (i Inst) Dest() Reg {
	info := &opTable[i.Op]
	if !info.dst {
		return RegNone
	}
	switch i.Op.OpClass() {
	case ClassCall:
		return RegRA
	case ClassLoad:
		return regOf(i.B, info.dstFP)
	default: // FmtR register-register, FmtI register-immediate
		if i.Op.Fmt() == FmtI {
			return regOf(i.B, info.dstFP)
		}
		return regOf(i.C, info.dstFP)
	}
}

// DestRenamed returns the destination register for rename purposes:
// RegNone when the architectural destination is a hardwired zero register.
func (i Inst) DestRenamed() Reg {
	d := i.Dest()
	if d != RegNone && d.IsZero() {
		return RegNone
	}
	return d
}

// HasImmOperand reports whether the second ALU operand comes from the
// immediate field rather than SrcB.
func (i Inst) HasImmOperand() bool {
	return i.Op.Fmt() == FmtI && !i.Op.IsMem()
}

// ImmOperand returns the immediate as the 64-bit second operand. Logical
// and shift immediates are zero-extended (so the assembler can splice
// 14-bit chunks when synthesizing large constants); arithmetic and compare
// immediates are sign-extended.
func (i Inst) ImmOperand() uint64 {
	switch i.Op {
	case OpAndI, OpOrI, OpXorI, OpSllI, OpSrlI, OpSraI:
		return uint64(uint32(i.Imm) & Imm14Mask)
	default:
		return uint64(int64(i.Imm))
	}
}

// EvalALU computes the result of any ALU, FP, or conversion instruction
// from its (already selected) operand values. Operand and result floating
// point values are IEEE-754 bit patterns. Control-flow and memory ops must
// not be passed here.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd, OpAddI:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return uint64(sdiv(int64(a), int64(b)))
	case OpRem:
		return uint64(srem(int64(a), int64(b)))
	case OpAnd, OpAndI:
		return a & b
	case OpOr, OpOrI:
		return a | b
	case OpXor, OpXorI:
		return a ^ b
	case OpSll, OpSllI:
		return a << (b & 63)
	case OpSrl, OpSrlI:
		return a >> (b & 63)
	case OpSra, OpSraI:
		return uint64(int64(a) >> (b & 63))
	case OpCmpEq, OpCmpEqI:
		return boolVal(a == b)
	case OpCmpLt, OpCmpLtI:
		return boolVal(int64(a) < int64(b))
	case OpCmpLe, OpCmpLeI:
		return boolVal(int64(a) <= int64(b))
	case OpCmpULt, OpCmpULtI:
		return boolVal(a < b)

	case OpFAdd:
		return fbits(ffloat(a) + ffloat(b))
	case OpFSub:
		return fbits(ffloat(a) - ffloat(b))
	case OpFMul:
		return fbits(ffloat(a) * ffloat(b))
	case OpFDiv:
		return fbits(ffloat(a) / ffloat(b))
	case OpFSqrt:
		return fbits(math.Sqrt(ffloat(a)))
	case OpFMov:
		return a
	case OpFCmpEq:
		return boolVal(ffloat(a) == ffloat(b))
	case OpFCmpLt:
		return boolVal(ffloat(a) < ffloat(b))
	case OpFCmpLe:
		return boolVal(ffloat(a) <= ffloat(b))
	case OpCvtIF:
		return fbits(float64(int64(a)))
	case OpCvtFI:
		return uint64(int64(ffloat(a)))
	}
	return 0
}

// sdiv is signed division with the ISA's defined edge cases: division by
// zero yields 0, and MinInt64/-1 wraps to MinInt64 (two's complement).
func sdiv(a, b int64) int64 {
	switch {
	case b == 0:
		return 0
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	}
	return a / b
}

// srem is signed remainder: x rem 0 yields x; MinInt64 rem -1 yields 0.
func srem(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return a % b
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func ffloat(bits uint64) float64 { return math.Float64frombits(bits) }
func fbits(f float64) uint64     { return math.Float64bits(f) }

// BranchTaken evaluates a conditional branch against the tested register
// value (signed comparisons against zero, as in Alpha).
func BranchTaken(op Op, a uint64) bool {
	v := int64(a)
	switch op {
	case OpBeq:
		return v == 0
	case OpBne:
		return v != 0
	case OpBlt:
		return v < 0
	case OpBle:
		return v <= 0
	case OpBgt:
		return v > 0
	case OpBge:
		return v >= 0
	}
	return false
}

// ControlTarget returns the statically-known target of a pc-relative
// control instruction (branches, jmp, jsr). pc is the instruction's own
// address. Indirect ops (jmpr, jsrr, ret) have no static target and return
// ok == false.
func (i Inst) ControlTarget(pc uint64) (target uint64, ok bool) {
	switch i.Op.Fmt() {
	case FmtBr, FmtJ:
		return pc + 4 + uint64(int64(i.Imm))*4, true
	}
	return 0, false
}

// MemEA computes a memory instruction's effective address from its base
// register value.
func (i Inst) MemEA(base uint64) uint64 {
	return base + uint64(int64(i.Imm))
}

// WindowDelta returns the change a control instruction makes to the window
// base pointer on a windowed machine, in bytes: calls push a frame
// (-WindowBytes), returns pop one (+WindowBytes), everything else 0.
func (i Inst) WindowDelta() int64 {
	switch i.Op.OpClass() {
	case ClassCall:
		return -WindowBytes
	case ClassRet:
		return +WindowBytes
	}
	return 0
}
