package isa

import "fmt"

// Instruction word layout (32 bits):
//
//	[31:24] opcode
//	FmtR:   [23:19]=A  [18:14]=B  [13:9]=C
//	FmtI:   [23:19]=A  [18:14]=B  [13:0]=imm14 (signed)
//	FmtBr:  [23:19]=A  [18:0]=disp19 (signed, in words)
//	FmtJ:   [23:0]=disp24 (signed, in words)
//	FmtJR:  [23:19]=A
//	FmtSys: [15:0]=code16
//
// Field A/B/C are 5-bit per-file register indices; whether they index the
// integer or FP file is a property of the opcode (see opTable).

// Immediate field ranges.
const (
	Imm14Min  = -(1 << 13)
	Imm14Max  = 1<<13 - 1
	Imm14Mask = 1<<14 - 1
	Disp19Min = -(1 << 18)
	Disp19Max = 1<<18 - 1
	Disp24Min = -(1 << 23)
	Disp24Max = 1<<23 - 1
)

// Word is a raw, encoded instruction.
type Word uint32

// Inst is a decoded instruction: opcode plus raw operand fields. Use the
// operand accessors (SrcA, SrcB, Dest, ...) rather than the raw fields when
// you need architectural register ids.
type Inst struct {
	Op      Op
	A, B, C uint8 // raw 5-bit register fields
	Imm     int32 // imm14 / disp19 / disp24 / code16, sign-extended as appropriate
}

// EncodeR builds a register-register instruction C := A op B.
func EncodeR(op Op, a, b, c uint8) Word {
	return Word(op)<<24 | Word(a&31)<<19 | Word(b&31)<<14 | Word(c&31)<<9
}

// EncodeI builds a register-immediate instruction (also loads and stores).
func EncodeI(op Op, a, b uint8, imm int32) (Word, error) {
	if imm < Imm14Min || imm > Imm14Max {
		return 0, fmt.Errorf("isa: immediate %d out of 14-bit range for %v", imm, op)
	}
	return Word(op)<<24 | Word(a&31)<<19 | Word(b&31)<<14 | Word(uint32(imm)&Imm14Mask), nil
}

// EncodeBr builds a conditional branch with a word displacement.
func EncodeBr(op Op, a uint8, disp int32) (Word, error) {
	if disp < Disp19Min || disp > Disp19Max {
		return 0, fmt.Errorf("isa: branch displacement %d out of 19-bit range", disp)
	}
	return Word(op)<<24 | Word(a&31)<<19 | Word(uint32(disp)&(1<<19-1)), nil
}

// EncodeJ builds a pc-relative jump or call with a word displacement.
func EncodeJ(op Op, disp int32) (Word, error) {
	if disp < Disp24Min || disp > Disp24Max {
		return 0, fmt.Errorf("isa: jump displacement %d out of 24-bit range", disp)
	}
	return Word(op)<<24 | Word(uint32(disp)&(1<<24-1)), nil
}

// EncodeJR builds a register-indirect jump, call, or return.
func EncodeJR(op Op, a uint8) Word {
	return Word(op)<<24 | Word(a&31)<<19
}

// EncodeSys builds a syscall.
func EncodeSys(code uint16) Word {
	return Word(OpSyscall)<<24 | Word(code)
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a raw instruction word. Unassigned opcode bytes decode to
// an Inst with Op == OpInvalid.
func Decode(w Word) Inst {
	op := Op(w >> 24)
	if op >= numOps {
		op = OpInvalid
	}
	inst := Inst{Op: op}
	switch op.Fmt() {
	case FmtR:
		inst.A = uint8(w>>19) & 31
		inst.B = uint8(w>>14) & 31
		inst.C = uint8(w>>9) & 31
	case FmtI:
		inst.A = uint8(w>>19) & 31
		inst.B = uint8(w>>14) & 31
		inst.Imm = signExtend(uint32(w)&Imm14Mask, 14)
	case FmtBr:
		inst.A = uint8(w>>19) & 31
		inst.Imm = signExtend(uint32(w)&(1<<19-1), 19)
	case FmtJ:
		inst.Imm = signExtend(uint32(w)&(1<<24-1), 24)
	case FmtJR:
		inst.A = uint8(w>>19) & 31
	case FmtSys:
		inst.Imm = int32(uint32(w) & 0xFFFF)
	}
	return inst
}

// Encode re-encodes a decoded instruction. Decode(Encode(i)) == i for any
// valid instruction (the property tests rely on this).
func (i Inst) Encode() (Word, error) {
	switch i.Op.Fmt() {
	case FmtR:
		return EncodeR(i.Op, i.A, i.B, i.C), nil
	case FmtI:
		return EncodeI(i.Op, i.A, i.B, i.Imm)
	case FmtBr:
		return EncodeBr(i.Op, i.A, i.Imm)
	case FmtJ:
		return EncodeJ(i.Op, i.Imm)
	case FmtJR:
		return EncodeJR(i.Op, i.A), nil
	case FmtSys:
		if i.Op == OpSyscall {
			return EncodeSys(uint16(i.Imm)), nil
		}
	}
	return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
}
