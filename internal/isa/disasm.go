package isa

import "fmt"

// String disassembles the instruction into assembler syntax. PC-relative
// displacements are shown raw (in words); use DisasmAt for resolved
// addresses.
func (i Inst) String() string {
	switch i.Op.Fmt() {
	case FmtR:
		if !opTable[i.Op].srcB { // unary: fsqrt, fmov, cvt*
			return fmt.Sprintf("%s %s, %s", i.Op, i.Dest(), i.SrcA())
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dest(), i.SrcA(), i.SrcB())
	case FmtI:
		switch i.Op.OpClass() {
		case ClassLoad:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Dest(), i.Imm, i.SrcA())
		case ClassStore:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.SrcB(), i.Imm, i.SrcA())
		default:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dest(), i.SrcA(), i.Imm)
		}
	case FmtBr:
		return fmt.Sprintf("%s %s, %d", i.Op, i.SrcA(), i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case FmtJR:
		return fmt.Sprintf("%s (%s)", i.Op, regOf(i.A, false))
	case FmtSys:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	}
	return "??"
}

// DisasmAt disassembles with pc-relative targets resolved to absolute
// addresses, for trace output.
func (i Inst) DisasmAt(pc uint64) string {
	if t, ok := i.ControlTarget(pc); ok {
		switch i.Op.Fmt() {
		case FmtBr:
			return fmt.Sprintf("%s %s, 0x%x", i.Op, i.SrcA(), t)
		case FmtJ:
			return fmt.Sprintf("%s 0x%x", i.Op, t)
		}
	}
	return i.String()
}
