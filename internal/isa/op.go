package isa

// Op is an opcode. The zero value OpInvalid decodes from any word whose
// opcode byte is not assigned.
type Op uint8

// Format describes how an instruction word's operand bits are laid out.
type Format uint8

const (
	FmtR   Format = iota // op | A(5) | B(5) | C(5): C := A op B
	FmtI                 // op | A(5) | B(5) | imm14: B := A op imm (loads: B := mem[A+imm]; stores: mem[A+imm] := B)
	FmtBr                // op | A(5) | disp19: conditional branch on A versus zero
	FmtJ                 // op | disp24: pc-relative jump or call
	FmtJR                // op | A(5): register-indirect jump, call, or return
	FmtSys               // op | code16
)

// Class is the broad functional class the pipeline schedules by.
type Class uint8

const (
	ClassInvalid Class = iota
	ClassIntALU        // single-cycle integer ops
	ClassIntMul
	ClassIntDiv
	ClassFPALU // add/sub/cmp/cvt/mov
	ClassFPMul
	ClassFPDiv // div and sqrt
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional direct jumps
	ClassCall   // direct and indirect calls (window push when windowed)
	ClassRet    // returns (window pop when windowed)
	ClassSyscall
)

// Opcodes. The numeric values are the opcode byte in the encoding and are
// stable: programs assembled by internal/asm embed them.
const (
	OpInvalid Op = iota

	// Integer register-register.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed divide; divide by zero yields 0 (checked by compilers)
	OpRem // signed remainder; x rem 0 yields x
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq
	OpCmpLt  // signed
	OpCmpLe  // signed
	OpCmpULt // unsigned

	// Integer register-immediate (imm14, sign-extended except logical ops,
	// which zero-extend so the assembler can splice 14-bit chunks).
	OpAddI
	OpAndI
	OpOrI
	OpXorI
	OpSllI
	OpSrlI
	OpSraI
	OpCmpEqI
	OpCmpLtI
	OpCmpLeI
	OpCmpULtI

	// Memory. Loads: B := mem[A+imm]. Stores: mem[A+imm] := B.
	OpLdQ  // 64-bit load
	OpLdL  // 32-bit load, sign-extended
	OpLdBU // 8-bit load, zero-extended
	OpStQ
	OpStL
	OpStB
	OpLdF // 64-bit FP load (B names an FP register)
	OpStF

	// Control. Conditional branches compare register A against zero.
	OpBeq
	OpBne
	OpBlt
	OpBle
	OpBgt
	OpBge
	OpJmp  // pc-relative unconditional
	OpJmpR // register-indirect unconditional (computed goto)
	OpJsr  // pc-relative call; writes ra; rotates window when windowed
	OpJsrR // register-indirect call
	OpRet  // register-indirect return via A (normally ra)

	// Floating point. Register fields name the FP file except where noted.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt  // C := sqrt(A)
	OpFMov   // C := A
	OpFCmpEq // C is an *integer* register: 1/0
	OpFCmpLt
	OpFCmpLe
	OpCvtIF // C(fp) := float64(int64(A(int)))
	OpCvtFI // C(int) := int64(trunc(A(fp)))

	OpSyscall

	numOps
)

// NumOps is the number of defined opcodes (exported for table-driven tests).
const NumOps = int(numOps)

// Syscall codes (the imm16 field of OpSyscall).
const (
	SysExit     = 0 // a0 = exit status
	SysPutChar  = 1 // a0 = byte
	SysPutInt   = 2 // a0 = signed integer, printed in decimal
	SysPutFloat = 3 // fa0 = float64, printed with %g
	SysPutStr   = 4 // a0 = address, a1 = length
)

type opInfo struct {
	name  string
	fmt   Format
	class Class
	// Operand register classes. srcA/srcB/dst are true when the
	// corresponding field names a register the instruction reads/writes;
	// the *FP flags say which file the field indexes.
	srcA, srcAFP bool
	srcB, srcBFP bool
	dst, dstFP   bool
	lat          int // execution latency in cycles (memory adds cache time)
}

var opTable = [numOps]opInfo{
	OpInvalid: {name: "invalid", fmt: FmtSys, class: ClassInvalid, lat: 1},

	OpAdd:    {name: "add", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpSub:    {name: "sub", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpMul:    {name: "mul", fmt: FmtR, class: ClassIntMul, srcA: true, srcB: true, dst: true, lat: 3},
	OpDiv:    {name: "div", fmt: FmtR, class: ClassIntDiv, srcA: true, srcB: true, dst: true, lat: 20},
	OpRem:    {name: "rem", fmt: FmtR, class: ClassIntDiv, srcA: true, srcB: true, dst: true, lat: 20},
	OpAnd:    {name: "and", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpOr:     {name: "or", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpXor:    {name: "xor", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpSll:    {name: "sll", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpSrl:    {name: "srl", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpSra:    {name: "sra", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpCmpEq:  {name: "cmpeq", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpCmpLt:  {name: "cmplt", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpCmpLe:  {name: "cmple", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},
	OpCmpULt: {name: "cmpult", fmt: FmtR, class: ClassIntALU, srcA: true, srcB: true, dst: true, lat: 1},

	OpAddI:    {name: "addi", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpAndI:    {name: "andi", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpOrI:     {name: "ori", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpXorI:    {name: "xori", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpSllI:    {name: "slli", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpSrlI:    {name: "srli", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpSraI:    {name: "srai", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpCmpEqI:  {name: "cmpeqi", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpCmpLtI:  {name: "cmplti", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpCmpLeI:  {name: "cmplei", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},
	OpCmpULtI: {name: "cmpulti", fmt: FmtI, class: ClassIntALU, srcA: true, dst: true, lat: 1},

	OpLdQ:  {name: "ldq", fmt: FmtI, class: ClassLoad, srcA: true, dst: true, lat: 1},
	OpLdL:  {name: "ldl", fmt: FmtI, class: ClassLoad, srcA: true, dst: true, lat: 1},
	OpLdBU: {name: "ldbu", fmt: FmtI, class: ClassLoad, srcA: true, dst: true, lat: 1},
	OpStQ:  {name: "stq", fmt: FmtI, class: ClassStore, srcA: true, srcB: true, lat: 1},
	OpStL:  {name: "stl", fmt: FmtI, class: ClassStore, srcA: true, srcB: true, lat: 1},
	OpStB:  {name: "stb", fmt: FmtI, class: ClassStore, srcA: true, srcB: true, lat: 1},
	OpLdF:  {name: "ldf", fmt: FmtI, class: ClassLoad, srcA: true, dst: true, dstFP: true, lat: 1},
	OpStF:  {name: "stf", fmt: FmtI, class: ClassStore, srcA: true, srcB: true, srcBFP: true, lat: 1},

	OpBeq:  {name: "beq", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpBne:  {name: "bne", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpBlt:  {name: "blt", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpBle:  {name: "ble", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpBgt:  {name: "bgt", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpBge:  {name: "bge", fmt: FmtBr, class: ClassBranch, srcA: true, lat: 1},
	OpJmp:  {name: "jmp", fmt: FmtJ, class: ClassJump, lat: 1},
	OpJmpR: {name: "jmpr", fmt: FmtJR, class: ClassJump, srcA: true, lat: 1},
	OpJsr:  {name: "jsr", fmt: FmtJ, class: ClassCall, dst: true, lat: 1},
	OpJsrR: {name: "jsrr", fmt: FmtJR, class: ClassCall, srcA: true, dst: true, lat: 1},
	OpRet:  {name: "ret", fmt: FmtJR, class: ClassRet, srcA: true, lat: 1},

	OpFAdd:   {name: "fadd", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, dstFP: true, lat: 4},
	OpFSub:   {name: "fsub", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, dstFP: true, lat: 4},
	OpFMul:   {name: "fmul", fmt: FmtR, class: ClassFPMul, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, dstFP: true, lat: 4},
	OpFDiv:   {name: "fdiv", fmt: FmtR, class: ClassFPDiv, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, dstFP: true, lat: 12},
	OpFSqrt:  {name: "fsqrt", fmt: FmtR, class: ClassFPDiv, srcA: true, srcAFP: true, dst: true, dstFP: true, lat: 24},
	OpFMov:   {name: "fmov", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, dst: true, dstFP: true, lat: 1},
	OpFCmpEq: {name: "fcmpeq", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, lat: 2},
	OpFCmpLt: {name: "fcmplt", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, lat: 2},
	OpFCmpLe: {name: "fcmple", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, srcB: true, srcBFP: true, dst: true, lat: 2},
	OpCvtIF:  {name: "cvtif", fmt: FmtR, class: ClassFPALU, srcA: true, dst: true, dstFP: true, lat: 2},
	OpCvtFI:  {name: "cvtfi", fmt: FmtR, class: ClassFPALU, srcA: true, srcAFP: true, dst: true, lat: 2},

	OpSyscall: {name: "syscall", fmt: FmtSys, class: ClassSyscall, lat: 1},
}

// String returns the mnemonic.
func (op Op) String() string {
	if int(op) < len(opTable) {
		return opTable[op].name
	}
	return "op?"
}

// Valid reports whether op is a defined opcode other than OpInvalid.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// Fmt returns the instruction word format.
func (op Op) Fmt() Format { return opTable[op].fmt }

// OpClass returns the scheduling class.
func (op Op) OpClass() Class { return opTable[op].class }

// Latency returns the execution latency in cycles. Loads and stores report
// the address-generation cycle only; cache access time is added by the
// memory system.
func (op Op) Latency() int { return opTable[op].lat }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool {
	c := opTable[op].class
	return c == ClassLoad || c == ClassStore
}

// IsControl reports whether op can redirect the PC.
func (op Op) IsControl() bool {
	switch opTable[op].class {
	case ClassBranch, ClassJump, ClassCall, ClassRet:
		return true
	}
	return false
}

// MemBytes returns the access size in bytes for memory ops (0 otherwise).
func (op Op) MemBytes() int {
	switch op {
	case OpLdQ, OpStQ, OpLdF, OpStF:
		return 8
	case OpLdL, OpStL:
		return 4
	case OpLdBU, OpStB:
		return 1
	}
	return 0
}

// MemSigned reports whether a load sign-extends.
func (op Op) MemSigned() bool { return op == OpLdL }

// OpByName resolves a mnemonic. It returns OpInvalid, false if unknown.
func OpByName(name string) (Op, bool) {
	op, ok := opNameTable[name]
	return op, ok
}

var opNameTable = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
