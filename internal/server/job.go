package server

import (
	"context"
	"sync"
	"time"
)

// JobState is the lifecycle of a sweep job as reported by the status
// endpoint. A job is "queued" until its first cell dispatches,
// "running" while any cell is queued or in flight, and "done" once
// every cell has an answer (failed cells included — per-cell errors are
// results, not job states; CellsFailed counts them).
type JobState string

// Job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
)

// Job is one admitted sweep: its cells, their results as they land, and
// the bookkeeping the status and streaming endpoints read. Results
// append in completion order; every appended result wakes the streaming
// readers (broadcast on cond).
type Job struct {
	ID       string
	Tenant   string
	Priority Priority
	Req      SweepRequest
	Cells    []Cell

	// ctx carries the per-job timeout: once it expires, not-yet-started
	// cells fail immediately with the context error instead of
	// simulating. cancel releases the timer when the job finishes.
	ctx    context.Context
	cancel context.CancelFunc

	created time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	started  bool
	finished time.Time
	results  []CellResult // completion order
	failed   int
}

func NewJob(id string, req SweepRequest, prio Priority, cells []Cell, base context.Context, timeout time.Duration) *Job {
	ctx, cancel := context.WithTimeout(base, timeout)
	j := &Job{
		ID:       id,
		Tenant:   req.Tenant,
		Priority: prio,
		Req:      req,
		Cells:    cells,
		ctx:      ctx,
		cancel:   cancel,
		created:  time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// MarkStarted flips the job to running on its first dispatched cell.
func (j *Job) MarkStarted() {
	j.mu.Lock()
	j.started = true
	j.mu.Unlock()
}

// AppendResult records one finished cell and wakes streamers; it
// returns true when this was the job's last cell. The single daemon's
// workers and the shard router's dispatchers both land results here —
// exactly once per admitted cell.
func (j *Job) AppendResult(r CellResult) (last bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, r)
	if r.Error != "" {
		j.failed++
	}
	last = len(j.results) == len(j.Cells)
	if last {
		j.finished = time.Now()
		j.cancel() // release the timeout timer
	}
	j.cond.Broadcast()
	return last
}

// ResultAt blocks until result index i exists, the job is done, or ctx
// is cancelled. ok=false means no more results will come (stream done)
// or the reader gave up.
func (j *Job) ResultAt(ctx context.Context, i int) (CellResult, bool) {
	// A goroutine bridges ctx cancellation into the cond so a stuck
	// reader whose client disconnected does not leak.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if i < len(j.results) {
			return j.results[i], true
		}
		if len(j.results) == len(j.Cells) || ctx.Err() != nil {
			return CellResult{}, false
		}
		j.cond.Wait()
	}
}

// missingCells returns, in ascending order, the indices of cells that
// have no recorded result. Non-empty only when cells were lost (queue
// corruption); see Server.reconcileLostCells.
func (j *Job) missingCells() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.results) >= len(j.Cells) {
		return nil
	}
	have := make([]bool, len(j.Cells))
	for i := range j.results {
		if ix := j.results[i].Index; ix >= 0 && ix < len(have) {
			have[ix] = true
		}
	}
	missing := make([]int, 0, len(j.Cells)-len(j.results))
	for i, h := range have {
		if !h {
			missing = append(missing, i)
		}
	}
	return missing
}

// Status is the GET /v1/sweeps/{id} body.
type Status struct {
	ID          string   `json:"id"`
	Tenant      string   `json:"tenant"`
	Priority    string   `json:"priority"`
	State       JobState `json:"state"`
	CellsTotal  int      `json:"cells_total"`
	CellsDone   int      `json:"cells_done"`
	CellsFailed int      `json:"cells_failed"`
	Created     string   `json:"created"` // RFC 3339
	ElapsedSec  float64  `json:"elapsed_sec"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Priority:    j.Priority.String(),
		CellsTotal:  len(j.Cells),
		CellsDone:   len(j.results),
		CellsFailed: j.failed,
		Created:     j.created.UTC().Format(time.RFC3339),
	}
	switch {
	case len(j.results) == len(j.Cells):
		s.State = StateDone
		s.ElapsedSec = j.finished.Sub(j.created).Seconds()
	case j.started:
		s.State = StateRunning
		s.ElapsedSec = time.Since(j.created).Seconds()
	default:
		s.State = StateQueued
		s.ElapsedSec = time.Since(j.created).Seconds()
	}
	return s
}

// Context returns the job's context, which carries the per-job timeout.
// The shard router derives per-cell dispatch contexts from it so a
// routed cell observes the same wall-time budget as a local one.
func (j *Job) Context() context.Context { return j.ctx }
