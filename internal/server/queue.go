package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Priority is a job's scheduling class. Lower values dispatch first;
// within a class, tenants share capacity round-robin and each tenant's
// own cells run FIFO. The classes are strict: a queued interactive cell
// always dispatches before any normal cell, and normal before batch —
// starvation of batch work by a saturating interactive tenant is the
// documented, intended behavior (docs/SERVICE.md discusses when to use
// each class).
type Priority int

// Priority classes, highest first.
const (
	PriorityInteractive Priority = iota
	PriorityNormal
	PriorityBatch
	numPriorities
)

// ParsePriority maps the wire names onto the classes; "" selects
// PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "interactive":
		return PriorityInteractive, nil
	case "normal", "":
		return PriorityNormal, nil
	case "batch":
		return PriorityBatch, nil
	}
	return 0, errors.New(`priority must be "interactive", "normal", or "batch"`)
}

func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityNormal:
		return "normal"
	case PriorityBatch:
		return "batch"
	}
	return "?"
}

// Queue errors.
var (
	// ErrQueueFull is returned by Push when admitting the cells would
	// exceed the queue bound; the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("queue full")
	// ErrQueueClosed is returned by Push once draining has begun; the
	// HTTP layer maps it to 503.
	ErrQueueClosed = errors.New("queue draining")
)

// InvariantError records one detected divergence between the queue's
// size counter and what its dispatch rings actually held. The queue
// repairs itself from the per-tenant FIFOs (the ground truth) and keeps
// serving; the error survives as a structured record — queryable via
// Queue.InvariantFailure, counted by the server.queue_invariant_failures
// metric, and carried in the result of any admitted cell the divergence
// caused to vanish (Server.Drain fails such cells explicitly rather
// than leaving their jobs unfinished forever).
type InvariantError struct {
	Size  int // the size counter's claim at detection
	Found int // queued cells actually present in the per-tenant FIFOs
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("server: queue invariant violated: size counter claimed %d queued cell(s) but the rings held %d; queue resynced from the per-tenant FIFOs", e.Size, e.Found)
}

// workItem is one schedulable unit: a single sweep cell of a job.
type workItem struct {
	job  *Job
	cell int // index into job.Cells
}

// tenantQ is one tenant's FIFO within a priority class.
type tenantQ struct {
	name  string
	items []workItem
	head  int // pop index; compacted when the queue empties
}

func (t *tenantQ) empty() bool { return t.head >= len(t.items) }

func (t *tenantQ) pop() workItem {
	it := t.items[t.head]
	t.items[t.head] = workItem{} // drop the *Job reference for GC
	t.head++
	if t.empty() {
		t.items, t.head = t.items[:0], 0
	}
	return it
}

// class is one priority level: per-tenant FIFOs plus a round-robin ring
// over the tenants that currently have work.
type class struct {
	tenants map[string]*tenantQ
	ring    []*tenantQ // tenants with pending items, in rotation order
	next    int        // ring cursor
}

// Queue is the service's bounded work queue: cells enter tagged with
// (tenant, priority) and leave in strict-priority, tenant-fair,
// per-tenant-FIFO order. All methods are safe for concurrent use; Pop
// blocks until work is available or the queue is closed and empty.
//
// Fairness model: within a priority class the dispatcher cycles over
// the tenants that have pending cells, taking one cell per tenant per
// turn. A tenant that enqueues a 10,000-cell sweep therefore cannot
// lock out a tenant that enqueues one cell afterwards; the newcomer's
// first cell dispatches within one rotation.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	limit   int // maximum queued cells across all classes
	size    int
	classes [numPriorities]class
	closed  bool

	// Invariant-failure record: count (atomic, exported as the
	// server.queue_invariant_failures counter) and the most recent
	// divergence (under mu).
	invariantFailures atomic.Uint64
	lastInvariant     *InvariantError
}

// NewQueue returns a queue admitting at most limit cells (limit <= 0
// means an effectively unbounded 1<<30).
func NewQueue(limit int) *Queue {
	if limit <= 0 {
		limit = 1 << 30
	}
	q := &Queue{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	for i := range q.classes {
		q.classes[i].tenants = make(map[string]*tenantQ)
	}
	return q
}

// Push admits n cells of job atomically: either every cell is queued or
// none is (so a sweep is never half-admitted). Returns ErrQueueFull or
// ErrQueueClosed without queueing anything on failure.
func (q *Queue) Push(job *Job, cells []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size+len(cells) > q.limit {
		return ErrQueueFull
	}
	c := &q.classes[job.Priority]
	tq := c.tenants[job.Tenant]
	if tq == nil {
		tq = &tenantQ{name: job.Tenant}
		c.tenants[job.Tenant] = tq
	}
	wasEmpty := tq.empty()
	for _, i := range cells {
		tq.items = append(tq.items, workItem{job: job, cell: i})
	}
	if wasEmpty && len(cells) > 0 {
		c.ring = append(c.ring, tq)
	}
	q.size += len(cells)
	q.cond.Broadcast()
	return nil
}

// Pop removes the next cell in scheduling order, blocking while the
// queue is empty. ok is false once the queue is closed and fully
// drained — the worker-exit signal.
//
// size > 0 should always imply some ring is non-empty. If a bookkeeping
// bug ever breaks that invariant, Pop does not kill the daemon: it
// rebuilds the rings and the size counter from the per-tenant FIFOs
// (resyncLocked), records the divergence, and retries.
func (q *Queue) Pop() (it workItem, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.size == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.size == 0 {
			return workItem{}, false
		}
		for p := range q.classes {
			c := &q.classes[p]
			if len(c.ring) == 0 {
				continue
			}
			if c.next >= len(c.ring) {
				c.next = 0
			}
			tq := c.ring[c.next]
			it = tq.pop()
			if tq.empty() {
				// Remove from rotation; the cursor now points at the
				// following tenant, so no extra advance.
				c.ring = append(c.ring[:c.next], c.ring[c.next+1:]...)
			} else {
				c.next++
			}
			q.size--
			return it, true
		}
		// The size counter claims work but every ring is empty: the
		// accounting has diverged. Repair and retry; after the resync
		// the state is consistent, so the next iteration either
		// dispatches, blocks, or reports the queue drained.
		q.resyncLocked()
	}
}

// resyncLocked rebuilds every class's dispatch ring and the global size
// counter from the per-tenant FIFOs — the queue's ground truth — and
// records the divergence it repaired. Tenants re-enter each ring in
// name order so post-repair dispatch order is deterministic. Callers
// must hold q.mu.
func (q *Queue) resyncLocked() {
	e := &InvariantError{Size: q.size}
	for p := range q.classes {
		c := &q.classes[p]
		names := make([]string, 0, len(c.tenants))
		for name, tq := range c.tenants { //lint:maporder names are collected then sorted before the ring is rebuilt
			if !tq.empty() {
				names = append(names, name)
			}
		}
		slices.Sort(names)
		c.ring = c.ring[:0]
		c.next = 0
		for _, name := range names {
			tq := c.tenants[name]
			c.ring = append(c.ring, tq)
			e.Found += len(tq.items) - tq.head
		}
	}
	q.size = e.Found
	q.lastInvariant = e
	q.invariantFailures.Add(1)
}

// InvariantFailures returns how many times Pop had to repair a
// size/ring divergence (the server.queue_invariant_failures counter).
func (q *Queue) InvariantFailures() uint64 {
	return q.invariantFailures.Load()
}

// InvariantFailure returns the most recent repaired divergence, nil if
// the invariant has never failed.
func (q *Queue) InvariantFailure() *InvariantError {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lastInvariant
}

// Close stops admission: subsequent Push calls fail with
// ErrQueueClosed, and Pop returns ok=false once the already-admitted
// cells have drained. Closing an already-closed queue is a no-op.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of queued (not yet dispatched) cells.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
