package server

import (
	"fmt"
	"strings"
	"sync"

	"vca/internal/core"
	"vca/internal/experiments"
	"vca/internal/minic"
	"vca/internal/program"
	"vca/internal/simcache"
	"vca/internal/workload"
)

// SweepRequest is the POST /v1/sweeps body: a config-space sweep
// expressed as a cross product. Every combination of (arch, phys_regs,
// dl1_ports, benchmarks entry) becomes one cell; cells are independent
// simulation jobs and stream back individually as they finish.
//
// A benchmarks entry is a comma-separated list of workload names, one
// per SMT hardware thread ("crafty" is a single-thread cell,
// "crafty,mesa" a 2-thread multiprogrammed cell). Arch names are the
// public ones cmd/vcasim uses: baseline, conv-windowed, ideal-windowed,
// vca-flat, vca-windowed.
type SweepRequest struct {
	// Tenant is the fair-scheduling key; "" maps to "default". Cells of
	// different tenants in the same priority class dispatch round-robin.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the scheduling class: "interactive", "normal"
	// (default), or "batch". Classes are strict; see docs/SERVICE.md.
	Priority string `json:"priority,omitempty"`
	// Benchmarks, Archs, PhysRegs, DL1Ports span the sweep's cross
	// product. DL1Ports defaults to [2] (the paper's dual-port baseline).
	Benchmarks []string `json:"benchmarks"`
	Archs      []string `json:"archs"`
	PhysRegs   []int    `json:"phys_regs"`
	DL1Ports   []int    `json:"dl1_ports,omitempty"`
	// StopAfter caps detailed simulation per cell: the run ends once any
	// thread commits this many instructions (0 = run to completion).
	StopAfter uint64 `json:"stop_after,omitempty"`
	// TimeoutSec bounds the whole job's wall time from admission; cells
	// not finished when it expires fail with a timeout error. 0 takes
	// the server default (-jobtimeout).
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// Cell is one point of a sweep's cross product, fully describing one
// simulation job.
type Cell struct {
	Index      int    `json:"index"`
	Arch       string `json:"arch"`
	Benchmarks string `json:"benchmarks"` // comma-separated, one per thread
	PhysRegs   int    `json:"phys_regs"`
	DL1Ports   int    `json:"dl1_ports"`
	StopAfter  uint64 `json:"stop_after,omitempty"`
}

// CellResult is one line of the NDJSON results stream. Valid=false
// cells are the sweep's "No Baseline" regions: the architecture cannot
// operate at that register-file size (experiments.Arch.Config), which
// is a well-formed answer, not an error.
//
// Counters is the run's full flat event-counter map — the CounterPoint
// surface (PAPERS.md): exposing every counter through the job API lets
// downstream validation evaluate counter-algebra predicates without
// re-running anything. CacheKey is the job's content address in the
// shared result store, usable for provenance auditing against the
// store's index.json.
type CellResult struct {
	Cell
	Valid     bool              `json:"valid"`
	Cycles    uint64            `json:"cycles,omitempty"`
	Committed uint64            `json:"committed,omitempty"`
	IPC       float64           `json:"ipc,omitempty"`
	Outputs   []string          `json:"outputs,omitempty"` // per-thread program output
	CacheKey  string            `json:"cache_key,omitempty"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// archByName maps the public architecture names (cmd/vcasim -arch) onto
// the experiment harness's configuration builder.
var archByName = map[string]experiments.Arch{
	"baseline":       experiments.ArchBaseline,
	"conv-windowed":  experiments.ArchConvWindow,
	"ideal-windowed": experiments.ArchIdealWindow,
	"vca-flat":       experiments.ArchVCAFlat,
	"vca-windowed":   experiments.ArchVCAWindow,
}

// ArchNames returns the accepted arch names, for error messages.
func ArchNames() []string {
	return []string{"baseline", "conv-windowed", "ideal-windowed", "vca-flat", "vca-windowed"}
}

// ExpandCells validates a request and expands its cross product into
// cells in deterministic order (arch-major, then phys_regs, then
// dl1_ports, then benchmarks). It rejects unknown arch or benchmark
// names, empty axes, and sweeps larger than maxCells.
func ExpandCells(req *SweepRequest, maxCells int) ([]Cell, error) {
	if len(req.Benchmarks) == 0 || len(req.Archs) == 0 || len(req.PhysRegs) == 0 {
		return nil, fmt.Errorf("benchmarks, archs, and phys_regs must each be non-empty")
	}
	ports := req.DL1Ports
	if len(ports) == 0 {
		ports = []int{2}
	}
	for _, a := range req.Archs {
		if _, ok := archByName[a]; !ok {
			return nil, fmt.Errorf("unknown arch %q (want one of %s)", a, strings.Join(ArchNames(), ", "))
		}
	}
	for _, b := range req.Benchmarks {
		for _, name := range strings.Split(b, ",") {
			if _, err := workload.ByName(strings.TrimSpace(name)); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range req.PhysRegs {
		if r <= 0 {
			return nil, fmt.Errorf("phys_regs must be positive, got %d", r)
		}
	}
	for _, p := range ports {
		if p <= 0 {
			return nil, fmt.Errorf("dl1_ports must be positive, got %d", p)
		}
	}
	n := len(req.Archs) * len(req.PhysRegs) * len(ports) * len(req.Benchmarks)
	if maxCells > 0 && n > maxCells {
		return nil, fmt.Errorf("sweep expands to %d cells, above the per-sweep limit %d", n, maxCells)
	}
	cells := make([]Cell, 0, n)
	for _, a := range req.Archs {
		for _, r := range req.PhysRegs {
			for _, p := range ports {
				for _, b := range req.Benchmarks {
					cells = append(cells, Cell{
						Index:      len(cells),
						Arch:       a,
						Benchmarks: b,
						PhysRegs:   r,
						DL1Ports:   p,
						StopAfter:  req.StopAfter,
					})
				}
			}
		}
	}
	return cells, nil
}

// progMemo caches built workload programs by (ABI, benchmark name).
// Workload compilation is deterministic, and a built Program is
// read-only to the simulator (core.New copies the image into machine
// memory; SMT runs already share one Program across threads), so every
// cell of a sweep — and every sweep of a daemon's lifetime — can share
// one build per (ABI, name). The shard router leans on this hardest:
// it derives a routing key for every cell at admission time, which
// without the memo would recompile the workload per cell.
var progMemo sync.Map // "abi|name" -> *program.Program

func buildProgram(abi minic.ABI, name string) (*program.Program, error) {
	memoKey := fmt.Sprintf("%d|%s", abi, name)
	if p, ok := progMemo.Load(memoKey); ok {
		return p.(*program.Program), nil
	}
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := b.Build(abi)
	if err != nil {
		return nil, err
	}
	progMemo.Store(memoKey, p)
	return p, nil
}

// buildCell resolves a cell to a runnable (config, programs, windowed)
// triple. ok=false means the architecture cannot operate at this size —
// the caller reports an invalid (but successful) cell.
func buildCell(c Cell) (cfg core.Config, progs []*program.Program, windowed bool, ok bool, err error) {
	arch, known := archByName[c.Arch]
	if !known {
		return core.Config{}, nil, false, false, fmt.Errorf("unknown arch %q", c.Arch)
	}
	names := strings.Split(c.Benchmarks, ",")
	cfg, ok = arch.Config(len(names), c.PhysRegs, c.DL1Ports)
	if !ok {
		return core.Config{}, nil, false, false, nil
	}
	abi := arch.ABI()
	for _, name := range names {
		p, err := buildProgram(abi, strings.TrimSpace(name))
		if err != nil {
			return core.Config{}, nil, false, false, err
		}
		progs = append(progs, p)
	}
	cfg.StopAfter = c.StopAfter
	cfg.MaxCycles = 1 << 34
	return cfg, progs, abi == minic.ABIWindowed, true, nil
}

// CellKey returns the simcache content address the cell's simulation
// will be stored under — the key RunCell's RunMachineShared derives on
// the worker. The shard router computes it before admission and feeds
// it to the consistent-hash ring, so identical cells from any tenant
// land on the worker whose cache (and in-flight singleflight table)
// already covers them. ok=false is the "No Baseline" region: the cell
// never simulates, so it has no content address and needs no worker.
func CellKey(c Cell) (key string, ok bool, err error) {
	cfg, progs, windowed, ok, err := buildCell(c)
	if err != nil || !ok {
		return "", ok, err
	}
	return simcache.Key(cfg, progs, windowed), true, nil
}

// RunCell executes one cell against the shared store with singleflight
// dedup and reduces the outcome to its wire form. Simulation failures
// land in CellResult.Error (the cell is answered, the job continues) —
// the same discipline simcache.Runner applies to failing jobs.
func RunCell(cache *simcache.Cache, c Cell) CellResult {
	out := CellResult{Cell: c}
	cfg, progs, windowed, ok, err := buildCell(c)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	if !ok {
		return out // Valid stays false: a "No Baseline" region
	}
	res, counters, _, err := cache.RunMachineShared(cfg, progs, windowed)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Valid = true
	out.Cycles = res.Cycles
	out.IPC = res.IPC()
	out.CacheKey = simcache.Key(cfg, progs, windowed)
	out.Counters = counters
	for _, t := range res.Threads {
		out.Committed += t.Committed
		out.Outputs = append(out.Outputs, t.Output)
	}
	return out
}

// RunCells is the direct, in-process path: the same cells the service
// would queue, dispatched through the standard simcache.Runner. The
// service's streamed results are byte-identical (per cell, as JSON) to
// this function's output over the same cache — the end-to-end identity
// the httptest suite and `make serve-smoke` assert.
func RunCells(cache *simcache.Cache, jobs int, cells []Cell) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	r := simcache.Runner{Jobs: jobs, KeepGoing: true}
	err := r.Run(len(cells), func(i int) error {
		out[i] = RunCell(cache, cells[i])
		return nil
	})
	return out, err
}
