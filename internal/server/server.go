// Package server implements the simulation sweep service behind
// cmd/vcaserved: an HTTP JSON job API over the memoized simulation
// infrastructure (internal/simcache, internal/experiments), turning the
// experiment harness into a long-running daemon that many clients share.
//
// # API surface
//
//	POST /v1/sweeps               submit a config-space sweep (202 + job id)
//	GET  /v1/sweeps/{id}          poll job status
//	GET  /v1/sweeps/{id}/results  stream per-cell results as NDJSON as they land
//	GET  /healthz                 liveness (process up)
//	GET  /readyz                  readiness (503 while draining)
//	GET  /metrics                 Prometheus text format (internal/metrics/promexport)
//
// A sweep expands into independent cells (one simulation each) that
// enter a bounded work queue with strict priority classes and
// round-robin fairness across tenants (queue.go). Workers execute cells
// against a shared content-addressed result store with singleflight
// dedup (simcache.RunMachineShared): N concurrent clients asking for
// the same (config, program) pay for exactly one simulation. Results
// stream back the moment each cell lands, carrying the run's full
// event-counter map — the CounterPoint-style surface downstream
// validation consumes (PAPERS.md).
//
// The server drains gracefully: Drain stops admission (readyz turns
// 503, submissions get 503, the queue closes), lets queued and running
// cells finish within the drain budget, then cancels stragglers. Every
// operational knob, metric series, and alerting rule is documented in
// docs/SERVICE.md; the architecture and its design decisions are
// DESIGN.md §13.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vca/internal/metrics"
	"vca/internal/simcache"
)

// Options configures a Server. Zero values take the documented
// defaults, so Options{} is a runnable development configuration.
type Options struct {
	// Cache is the shared result store. nil disables memoization and
	// singleflight (every cell simulates) — not recommended for serving.
	Cache *simcache.Cache
	// Workers is the number of cell-executing goroutines
	// (0 = GOMAXPROCS).
	Workers int
	// QueueLimit bounds the number of queued cells across all tenants
	// (0 = 4096). Submissions that would exceed it get 429.
	QueueLimit int
	// MaxCellsPerSweep bounds a single sweep's expansion (0 = 1024).
	// Larger submissions get 400.
	MaxCellsPerSweep int
	// JobTimeout is the default per-job wall-time budget, overridable
	// per request via timeout_sec (0 = 10m).
	JobTimeout time.Duration
	// StreamWriteTimeout is the per-result write deadline on NDJSON
	// result streams (0 = 1m, negative disables); see
	// HandlerOptions.StreamWriteTimeout.
	StreamWriteTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default; operator-only, see docs/SERVICE.md).
	EnablePprof bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.QueueLimit <= 0 {
		out.QueueLimit = 4096
	}
	if out.MaxCellsPerSweep <= 0 {
		out.MaxCellsPerSweep = 1024
	}
	if out.JobTimeout <= 0 {
		out.JobTimeout = 10 * time.Minute
	}
	return out
}

// Server is the sweep service: queue, workers, job table, metrics.
// Create with New, mount Handler on an http.Server, and call Drain on
// shutdown. All methods are safe for concurrent use.
type Server struct {
	opts  Options
	cache *simcache.Cache
	queue *Queue
	met   serviceMetrics

	baseCtx    context.Context // parent of every job context
	cancelBase context.CancelFunc
	draining   atomic.Bool

	wg  sync.WaitGroup // worker goroutines
	seq atomic.Uint64  // job id sequence

	mu   sync.Mutex
	jobs map[string]*Job
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:  o,
		cache: o.Cache,
		queue: NewQueue(o.QueueLimit),
		jobs:  make(map[string]*Job),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker pulls cells in scheduling order and executes them until the
// queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		it, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runItem(it)
	}
}

// runItem executes one cell with the job's deadline and records the
// result. A cell whose job deadline already expired (or whose server is
// force-draining) fails without simulating; a cell that exceeds the
// deadline mid-run is reported failed while its simulation goroutine
// drains on its own, bounded by Config.MaxCycles — the same abandonment
// discipline as simcache.Runner timeouts.
func (s *Server) runItem(it workItem) {
	j := it.job
	j.MarkStarted()
	cell := j.Cells[it.cell]

	var res CellResult
	if err := j.ctx.Err(); err != nil {
		res = CellResult{Cell: cell, Error: fmt.Sprintf("cell not started: %v", err)}
	} else {
		s.met.cellsRunning.Add(1)
		start := time.Now()
		done := make(chan CellResult, 1)
		go func() { done <- RunCell(s.cache, cell) }()
		select {
		case res = <-done:
		case <-j.ctx.Done():
			res = CellResult{Cell: cell, Error: fmt.Sprintf("cell abandoned after %v: %v", time.Since(start).Round(time.Millisecond), j.ctx.Err())}
		}
		s.met.latCell.Observe(uint64(time.Since(start).Microseconds()))
		s.met.cellsRunning.Add(-1)
	}

	s.recordResult(j, res)
}

// recordResult appends one finished cell to its job and keeps the
// service counters consistent. It is shared by the worker path and the
// drain-time reconciliation of lost cells, so a reconciled failure is
// indistinguishable from a worker-recorded one on the metric surface.
func (s *Server) recordResult(j *Job, res CellResult) {
	s.met.cellsDone.Add(1)
	if res.Error != "" {
		s.met.cellsFailed.Add(1)
	} else if !res.Valid {
		s.met.cellsInvalid.Add(1)
	}
	if last := j.AppendResult(res); last {
		s.met.jobsRunning.Add(-1)
		s.met.jobsDone.Add(1)
		if j.Status().CellsFailed > 0 {
			s.met.jobsFailed.Add(1)
		}
	}
}

// Submit validates and admits a sweep, returning the queued job. The
// error is ErrQueueFull/ErrQueueClosed for capacity refusals, or a
// validation error otherwise.
func (s *Server) Submit(req SweepRequest) (*Job, error) {
	if s.draining.Load() {
		s.met.jobsRejected.Add(1)
		return nil, ErrQueueClosed
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		s.met.jobsRejected.Add(1)
		return nil, err
	}
	cells, err := ExpandCells(&req, s.opts.MaxCellsPerSweep)
	if err != nil {
		s.met.jobsRejected.Add(1)
		return nil, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	timeout := s.opts.JobTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec) * time.Second
	}
	id := fmt.Sprintf("sw-%06d", s.seq.Add(1))
	j := NewJob(id, req, prio, cells, s.baseCtx, timeout)

	indices := make([]int, len(cells))
	for i := range indices {
		indices[i] = i
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if err := s.queue.Push(j, indices); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		j.cancel()
		s.met.jobsRejected.Add(1)
		return nil, err
	}
	s.met.jobsSubmitted.Add(1)
	s.met.jobsRunning.Add(1)
	s.met.cellsSubmitted.Add(uint64(len(cells)))
	return j, nil
}

// Job looks up an admitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Drain performs the graceful-shutdown sequence: stop admission, close
// the queue, and wait for queued + running cells to finish. If ctx
// expires first, every outstanding job context is cancelled so workers
// abandon their cells and exit; Drain then waits for the workers
// themselves. Returns nil on a clean drain, ctx.Err() when work was
// abandoned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.cancelBase()
	case <-ctx.Done():
		s.cancelBase() // abandon in-flight cells; workers record errors and exit
		<-done
		err = ctx.Err()
	}
	s.reconcileLostCells()
	return err
}

// reconcileLostCells answers every admitted cell that no worker ever
// recorded a result for. In normal operation there are none: even
// abandoned and expired cells get explicit error results. A cell can
// only vanish through queue-accounting corruption (see
// Queue.InvariantFailure), and the contract is that its job must still
// finish — with a structured error naming the divergence — rather than
// hang its streaming readers and hold its running-jobs slot forever.
func (s *Server) reconcileLostCells() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs { //lint:maporder reconciliation order does not matter: each job's missing cells are failed independently, in index order
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		for _, ci := range j.missingCells() {
			msg := "cell lost without a result (queue accounting divergence)"
			if inv := s.queue.InvariantFailure(); inv != nil {
				msg = fmt.Sprintf("cell lost without a result: %v", inv)
			}
			s.recordResult(j, CellResult{Cell: j.Cells[ci], Error: msg})
		}
	}
}

// Draining reports whether Drain has begun (readyz state).
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP routing table (the shared sweep
// API over this server as its Backend; see api.go).
func (s *Server) Handler() http.Handler {
	return NewHandler(s, HandlerOptions{
		StreamWriteTimeout: s.opts.StreamWriteTimeout,
		Pprof:              s.opts.EnablePprof,
	})
}

// MetricSamples implements Backend: the service-level series plus the
// shared result store's counters — everything /metrics renders. The
// full name mapping lives in docs/SERVICE.md and docs/OBSERVABILITY.md.
func (s *Server) MetricSamples() []metrics.Sample {
	samples := s.met.snapshot(s.queue.Depth(), s.queue.InvariantFailures())
	if s.cache != nil {
		samples = append(samples, s.cache.MetricsRegistry().Snapshot()...)
	}
	return samples
}

// ObserveLatency implements Backend: handler latencies land in the
// server.latency.* histograms.
func (s *Server) ObserveLatency(route string, us uint64) {
	switch route {
	case RouteSubmit:
		s.met.latSubmit.Observe(us)
	case RouteStatus:
		s.met.latStatus.Observe(us)
	case RouteResults:
		s.met.latResults.Observe(us)
	}
}

// Metrics returns a point-in-time sample set of the service metrics —
// the same data /metrics renders, for in-process consumers and tests.
func (s *Server) Metrics() []metrics.Sample {
	return s.met.snapshot(s.queue.Depth(), s.queue.InvariantFailures())
}
