package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vca/internal/server"
	"vca/internal/simcache"
)

// newWorker builds one real vcaserved backend (own cache, own httptest
// listener) — the router's tests shard over genuine workers, not stubs,
// so every assertion covers the actual wire protocol.
func newWorker(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	cache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Options{Workers: 2, Cache: cache})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func newTestRouter(t *testing.T, opts Options) (*Router, *httptest.Server) {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r.Drain(ctx)
	})
	return r, ts
}

func submitSweep(t *testing.T, url string, req server.SweepRequest) (id string, cells int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var out struct {
		ID         string `json:"id"`
		CellsTotal int    `json:"cells_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, out.CellsTotal
}

func streamResults(t *testing.T, url, id string) []server.CellResult {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var out []server.CellResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var r server.CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func promValue(t *testing.T, text, series string) (uint64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		var v uint64
		for _, c := range rest {
			if c < '0' || c > '9' {
				break
			}
			v = v*10 + uint64(c-'0')
		}
		return v, true
	}
	return 0, false
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return b.String()
}

// TestRouterByteIdentity is the topology-transparency gate: the same
// sweep through a 2-worker router must stream back byte-identical cells
// (as JSON) to the direct in-process path — including the "No Baseline"
// cell the router answers locally without touching any worker.
func TestRouterByteIdentity(t *testing.T) {
	req := server.SweepRequest{
		Tenant:     "e2e",
		Benchmarks: []string{"crafty"},
		Archs:      []string{"baseline", "vca-windowed"},
		PhysRegs:   []int{64, 256}, // baseline@64 is a "No Baseline" region
		StopAfter:  3000,
	}
	cells, err := server.ExpandCells(&req, 0)
	if err != nil {
		t.Fatal(err)
	}
	directCache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := server.RunCells(directCache, 2, cells)
	if err != nil {
		t.Fatal(err)
	}

	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	r, rts := newTestRouter(t, Options{Workers: []string{w1.URL, w2.URL}, HealthInterval: -1})

	id, n := submitSweep(t, rts.URL, req)
	if n != len(cells) {
		t.Fatalf("router expanded %d cells, direct %d", n, len(cells))
	}
	streamed := streamResults(t, rts.URL, id)
	if len(streamed) != len(direct) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(direct))
	}
	sort.Slice(streamed, func(a, b int) bool { return streamed[a].Index < streamed[b].Index })
	for i := range direct {
		want, _ := json.Marshal(&direct[i])
		got, _ := json.Marshal(&streamed[i])
		if !bytes.Equal(want, got) {
			t.Errorf("cell %d differs:\n router: %s\n direct: %s", i, got, want)
		}
	}

	// The invalid cell never left the router; the rest dispatched.
	if local := r.met.cellsLocal.Load(); local != 1 {
		t.Errorf("cells_local = %d, want 1 (baseline@64)", local)
	}
	if routed := r.met.cellsRouted.Load(); routed != uint64(len(cells)-1) {
		t.Errorf("cells_routed = %d, want %d", routed, len(cells)-1)
	}
	var perWorker uint64
	for i := range r.met.perWorker {
		perWorker += r.met.perWorker[i].Load()
	}
	if perWorker != r.met.cellsRouted.Load() {
		t.Errorf("per-worker routed sum %d != cells_routed %d", perWorker, r.met.cellsRouted.Load())
	}

	// Status through the router agrees.
	resp, err := http.Get(rts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st server.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != server.StateDone || st.CellsDone != n || st.CellsFailed != 0 {
		t.Fatalf("status = %+v, want done/%d/0", st, n)
	}
}

// TestRouterFleetDedup is the cache-affinity gate: identical cells from
// different tenants route to the same worker, so the FLEET simulates
// each distinct cell exactly once — readable from the router's
// aggregated /metrics as misses == distinct cells, with the router's
// own server.shard.* counters alongside.
func TestRouterFleetDedup(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	_, rts := newTestRouter(t, Options{Workers: []string{w1.URL, w2.URL}, HealthInterval: -1})

	req := server.SweepRequest{
		Tenant:     "tenant-a",
		Benchmarks: []string{"mesa"},
		Archs:      []string{"vca-flat"},
		PhysRegs:   []int{128, 192}, // 2 distinct cells
		StopAfter:  3000,
	}
	var ids [2]string
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rq := req
			if i == 1 {
				rq.Tenant = "tenant-b"
			}
			id, _ := submitSweep(t, rts.URL, rq)
			ids[i] = id
		}(i)
	}
	wg.Wait()

	var first []byte
	for i, id := range ids {
		res := streamResults(t, rts.URL, id)
		if len(res) != 2 {
			t.Fatalf("submission %d: %d results, want 2", i, len(res))
		}
		sort.Slice(res, func(a, b int) bool { return res[a].Index < res[b].Index })
		for _, cr := range res {
			if cr.Error != "" || !cr.Valid {
				t.Fatalf("submission %d: bad result %+v", i, cr)
			}
		}
		b, _ := json.Marshal(res)
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatal("tenants received different answers for identical sweeps")
		}
	}

	text := scrapeMetrics(t, rts.URL)
	misses, ok := promValue(t, text, "vca_simcache_misses_total")
	if !ok {
		t.Fatalf("aggregated /metrics lacks vca_simcache_misses_total:\n%s", text)
	}
	if misses != 2 {
		t.Errorf("fleet-wide misses = %d, want exactly 2 simulations for 2 tenants x 2 identical cells", misses)
	}
	hits, _ := promValue(t, text, "vca_simcache_hits_total")
	sfHits, _ := promValue(t, text, "vca_simcache_sf_hits_total")
	if hits+sfHits != 2 {
		t.Errorf("fleet hits(%d) + sf_hits(%d) = %d, want 2 deduplicated cells", hits, sfHits, hits+sfHits)
	}
	// Aggregated worker series and router-own series share the endpoint.
	if cells, _ := promValue(t, text, "vca_server_cells_done_total"); cells != 4 {
		t.Errorf("aggregated worker cells_done = %d, want 4 single-cell dispatches", cells)
	}
	if jobs, _ := promValue(t, text, "vca_server_shard_jobs_done_total"); jobs != 2 {
		t.Errorf("router jobs_done = %d, want 2", jobs)
	}
	if routed, _ := promValue(t, text, "vca_server_shard_cells_routed_total"); routed != 4 {
		t.Errorf("router cells_routed = %d, want 4", routed)
	}
}

// TestRouterFailover pins the retry/failover path deterministically: a
// worker that accepts a cell but kills the results stream (a crash
// mid-dispatch as the router observes it) costs retries, a mark-down,
// and a failover — and the cell is still answered exactly once, with
// the correct result, by the ring successor.
func TestRouterFailover(t *testing.T) {
	_, live := newWorker(t)

	// The flaky worker 202-accepts every sweep, then cuts every results
	// stream at the socket.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"id": "sw-000001", "cells_total": 1,
			"status_url":  "/v1/sweeps/sw-000001",
			"results_url": "/v1/sweeps/sw-000001/results",
		})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := http.NewResponseController(w).Hijack()
		if err == nil {
			conn.Close()
		}
	})
	flaky := httptest.NewServer(mux)
	t.Cleanup(flaky.Close)

	r, rts := newTestRouter(t, Options{
		Workers:        []string{live.URL, flaky.URL},
		HealthInterval: -1, // no prober: the dispatch path alone must detect the death
		RetryAttempts:  2,
		RetryBase:      5 * time.Millisecond,
	})

	// Pick a cell whose ring owner is the flaky worker, so the dispatch
	// provably exercises failure first. The ring hashes listener URLs,
	// so the probe is at runtime — but deterministic once chosen.
	cell := server.Cell{Arch: "vca-flat", Benchmarks: "crafty", DL1Ports: 2, StopAfter: 2500}
	found := false
	for _, pr := range []int{96, 128, 160, 192, 224, 256, 288, 320} {
		cell.PhysRegs = pr
		key, ok, err := server.CellKey(cell)
		if err != nil || !ok {
			t.Fatalf("CellKey(%+v): ok=%v err=%v", cell, ok, err)
		}
		if r.ring.Owner(key) == strings.TrimRight(flaky.URL, "/") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no candidate cell hashed to the flaky worker — widen the candidate list")
	}

	id, _ := submitSweep(t, rts.URL, server.SweepRequest{
		Benchmarks: []string{cell.Benchmarks},
		Archs:      []string{cell.Arch},
		PhysRegs:   []int{cell.PhysRegs},
		StopAfter:  cell.StopAfter,
	})
	res := streamResults(t, rts.URL, id)
	if len(res) != 1 {
		t.Fatalf("%d results, want exactly 1 (no duplicate answers through failover)", len(res))
	}
	if res[0].Error != "" || !res[0].Valid {
		t.Fatalf("failover result: %+v", res[0])
	}

	if got := r.met.retries.Load(); got == 0 {
		t.Error("retries = 0, want backoff re-attempts against the flaky worker")
	}
	if got := r.met.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := r.met.remapped.Load(); got != 1 {
		t.Errorf("remapped = %d, want 1 (cell served off its primary shard)", got)
	}
	if r.pool.Healthy(strings.TrimRight(flaky.URL, "/")) {
		t.Error("flaky worker still marked healthy after transport failures")
	}
}

// TestRouterValidationAndDrain: the router rejects what a worker would
// reject (same API, same errors), and drains like one (readyz 503,
// submissions 503, admitted work still answered).
func TestRouterValidationAndDrain(t *testing.T) {
	_, w1 := newWorker(t)
	r, rts := newTestRouter(t, Options{Workers: []string{w1.URL}, HealthInterval: -1, MaxCellsPerSweep: 4})

	for name, req := range map[string]server.SweepRequest{
		"unknown arch": {Benchmarks: []string{"crafty"}, Archs: []string{"pdp11"}, PhysRegs: []int{256}},
		"bad priority": {Benchmarks: []string{"crafty"}, Archs: []string{"baseline"}, PhysRegs: []int{256}, Priority: "urgent"},
		"too large":    {Benchmarks: []string{"crafty"}, Archs: []string{"baseline"}, PhysRegs: []int{64, 128, 192, 256, 320}},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(rts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	req := server.SweepRequest{Benchmarks: []string{"gap"}, Archs: []string{"baseline"}, PhysRegs: []int{256}, StopAfter: 2000}
	id, _ := submitSweep(t, rts.URL, req)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := streamResults(t, rts.URL, id)
	if len(res) != 1 || res[0].Error != "" || !res[0].Valid {
		t.Fatalf("drained job results: %+v", res)
	}
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(req)
	resp, err = http.Post(rts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
}
