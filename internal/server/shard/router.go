package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vca/internal/metrics"
	"vca/internal/server"
)

// Options configures a Router. Zero values take the documented
// defaults, so only Workers is required.
type Options struct {
	// Workers are the vcaserved base URLs the router shards over
	// (e.g. "http://10.0.0.1:8080"). Required, non-empty, distinct.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring
	// (0 = 128). More vnodes = better balance, larger ring.
	VNodes int
	// MaxCellsPerSweep bounds a single sweep's expansion (0 = 1024),
	// mirroring the worker-side limit so the router rejects what a
	// worker would have rejected.
	MaxCellsPerSweep int
	// JobTimeout is the default per-job wall-time budget, overridable
	// per request via timeout_sec (0 = 10m). Dispatched cells carry the
	// remaining budget to their worker, so a routed cell observes the
	// same deadline as a local one.
	JobTimeout time.Duration
	// Inflight bounds the router's concurrent dispatches per worker
	// (0 = 16). Beyond it, cells queue in the router rather than piling
	// connections onto a busy worker.
	Inflight int
	// RetryAttempts is how many times a cell is tried against one
	// worker before failing over to the ring successor (0 = 3).
	RetryAttempts int
	// RetryBase is the first retry's backoff; each further retry
	// doubles it (0 = 100ms).
	RetryBase time.Duration
	// HealthInterval is the background /readyz probe period (0 = 2s;
	// negative disables probing — dispatch-path failures still mark
	// workers down, but nothing brings a recovered worker back).
	HealthInterval time.Duration
	// ScrapeTimeout bounds each worker /metrics.json fetch during
	// aggregation (0 = 2s).
	ScrapeTimeout time.Duration
	// StreamWriteTimeout and EnablePprof pass through to the HTTP
	// layer; see server.HandlerOptions.
	StreamWriteTimeout time.Duration
	EnablePprof        bool
	// Client overrides the dispatch HTTP client (nil builds one with a
	// keep-alive pool sized to Inflight per worker).
	Client *http.Client
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.VNodes <= 0 {
		out.VNodes = 128
	}
	if out.MaxCellsPerSweep <= 0 {
		out.MaxCellsPerSweep = 1024
	}
	if out.JobTimeout <= 0 {
		out.JobTimeout = 10 * time.Minute
	}
	if out.Inflight <= 0 {
		out.Inflight = 16
	}
	if out.RetryAttempts <= 0 {
		out.RetryAttempts = 3
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 100 * time.Millisecond
	}
	if out.HealthInterval == 0 {
		out.HealthInterval = 2 * time.Second
	}
	if out.ScrapeTimeout <= 0 {
		out.ScrapeTimeout = 2 * time.Second
	}
	return out
}

// Router fans sweeps out across a fleet of vcaserved workers with
// cache-affine cell routing (see the package comment). It implements
// server.Backend, so server.NewHandler serves the identical client API
// over it that a single worker serves.
type Router struct {
	opts Options
	ring *Ring
	pool *workerPool
	met  routerMetrics

	baseCtx    context.Context // parent of every job context
	cancelBase context.CancelFunc
	draining   atomic.Bool

	wg  sync.WaitGroup // per-cell dispatcher goroutines
	seq atomic.Uint64  // job id sequence

	mu   sync.Mutex
	jobs map[string]*server.Job
}

// New builds a router over the given workers and starts its health
// prober. Callers own shutdown via Drain.
func New(opts Options) (*Router, error) {
	o := opts.withDefaults()
	if len(o.Workers) == 0 {
		return nil, fmt.Errorf("shard router needs at least one worker")
	}
	workers := make([]string, len(o.Workers))
	seen := make(map[string]bool, len(o.Workers))
	for i, w := range o.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" {
			return nil, fmt.Errorf("worker %d: empty URL", i)
		}
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			w = "http://" + w
		}
		if seen[w] {
			return nil, fmt.Errorf("duplicate worker %s", w)
		}
		seen[w] = true
		workers[i] = w
	}
	o.Workers = workers
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: o.Inflight, // persistent connections cover the full dispatch window
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	r := &Router{
		opts: o,
		ring: NewRing(workers, o.VNodes),
		pool: newWorkerPool(workers, o.Client, o.Inflight, o.HealthInterval),
		jobs: make(map[string]*server.Job),
	}
	r.met.perWorker = make([]atomic.Uint64, len(workers))
	r.baseCtx, r.cancelBase = context.WithCancel(context.Background())
	return r, nil
}

// Submit implements server.Backend: validate, expand, and dispatch
// every cell to its ring owner. Validation is identical to a worker's —
// the router rejects exactly what a single daemon would reject, so
// clients see one API regardless of topology.
func (r *Router) Submit(req server.SweepRequest) (*server.Job, error) {
	if r.draining.Load() {
		r.met.jobsRejected.Add(1)
		return nil, server.ErrQueueClosed
	}
	prio, err := server.ParsePriority(req.Priority)
	if err != nil {
		r.met.jobsRejected.Add(1)
		return nil, err
	}
	cells, err := server.ExpandCells(&req, r.opts.MaxCellsPerSweep)
	if err != nil {
		r.met.jobsRejected.Add(1)
		return nil, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	timeout := r.opts.JobTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec) * time.Second
	}
	id := fmt.Sprintf("sw-%06d", r.seq.Add(1))
	j := server.NewJob(id, req, prio, cells, r.baseCtx, timeout)
	r.mu.Lock()
	r.jobs[id] = j
	r.mu.Unlock()
	r.met.jobsSubmitted.Add(1)
	r.met.jobsRunning.Add(1)
	// Cells dispatch immediately — the router has no queue of its own
	// (worker queues provide the priority classes and tenant fairness),
	// so the job is running from admission.
	j.MarkStarted()
	r.wg.Add(len(cells))
	for i := range cells {
		go r.dispatchCell(j, cells[i])
	}
	return j, nil
}

// Job implements server.Backend.
func (r *Router) Job(id string) (*server.Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Draining implements server.Backend.
func (r *Router) Draining() bool { return r.draining.Load() }

// Handler returns the router's HTTP routing table — the same sweep API
// a worker serves, over this router as its Backend.
func (r *Router) Handler() http.Handler {
	return server.NewHandler(r, server.HandlerOptions{
		StreamWriteTimeout: r.opts.StreamWriteTimeout,
		Pprof:              r.opts.EnablePprof,
	})
}

// record lands one answered cell in its job, exactly once per admitted
// cell — every dispatchCell return path funnels through here.
func (r *Router) record(j *server.Job, res server.CellResult) {
	if last := j.AppendResult(res); last {
		r.met.jobsRunning.Add(-1)
		r.met.jobsDone.Add(1)
	}
}

// Dispatch error classes. Busy (worker 429) fails over without marking
// the worker down — it is healthy, just full. Draining (worker 503)
// fails over immediately and marks the worker down; the prober brings
// it back if it returns. A permanentError is a final answer (version
// skew: the worker rejected a cell the router admitted).
var (
	errWorkerBusy     = errors.New("worker queue full")
	errWorkerDraining = errors.New("worker draining")
)

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// dispatchCell routes one cell: derive its content address, walk the
// ring from its owner, and record exactly one result whatever happens.
func (r *Router) dispatchCell(j *server.Job, cell server.Cell) {
	defer r.wg.Done()
	key, ok, err := server.CellKey(cell)
	if err != nil {
		// A build failure needs no worker: answer it locally with the
		// exact error RunCell would produce.
		r.met.cellsLocal.Add(1)
		r.record(j, server.CellResult{Cell: cell, Error: err.Error()})
		return
	}
	if !ok {
		// "No Baseline" region: the architecture cannot operate at this
		// size. A well-formed Valid=false answer, no simulation, no key.
		r.met.cellsLocal.Add(1)
		r.record(j, server.CellResult{Cell: cell})
		return
	}

	order := r.ring.Successors(key)
	candidates := make([]string, 0, len(order))
	for _, w := range order {
		if r.pool.Healthy(w) {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		candidates = order // a fully-marked-down fleet still gets one pass
	}
	var lastErr error
	for wi, w := range candidates {
		if err := j.Context().Err(); err != nil {
			r.met.cellsFailed.Add(1)
			r.record(j, server.CellResult{Cell: cell, Error: fmt.Sprintf("cell not started: %v", err)})
			return
		}
		if wi > 0 {
			r.met.failovers.Add(1)
		}
		res, err := r.tryWorker(j, w, cell)
		if err == nil {
			if w != order[0] {
				r.met.remapped.Add(1)
			}
			r.met.cellsRouted.Add(1)
			r.met.perWorker[r.pool.index[w]].Add(1)
			r.record(j, res)
			return
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			r.met.cellsFailed.Add(1)
			r.record(j, server.CellResult{Cell: cell, Error: err.Error()})
			return
		}
		if !errors.Is(err, errWorkerBusy) {
			r.pool.MarkDown(w)
		}
		lastErr = err
	}
	r.met.cellsFailed.Add(1)
	r.record(j, server.CellResult{Cell: cell, Error: fmt.Sprintf("cell undeliverable: every worker failed, last: %v", lastErr)})
}

// tryWorker runs the per-worker retry loop: up to RetryAttempts
// dispatches with exponential backoff, under the worker's in-flight
// slot. A draining worker short-circuits to failover.
func (r *Router) tryWorker(j *server.Job, worker string, cell server.Cell) (server.CellResult, error) {
	ctx := j.Context()
	if err := r.pool.Acquire(ctx, worker); err != nil {
		return server.CellResult{}, err // job deadline: dispatchCell answers it
	}
	defer r.pool.Release(worker)
	r.met.cellsInflight.Add(1)
	defer r.met.cellsInflight.Add(-1)

	var lastErr error
	for attempt := 0; attempt < r.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			r.met.retries.Add(1)
			if !sleepCtx(ctx, r.opts.RetryBase<<(attempt-1)) {
				return server.CellResult{}, ctx.Err()
			}
		}
		start := time.Now()
		res, err := r.dispatchOnce(ctx, worker, j, cell)
		if err == nil {
			r.met.latDispatch.Observe(uint64(time.Since(start).Microseconds()))
			return res, nil
		}
		lastErr = err
		var perm *permanentError
		if errors.As(err, &perm) || errors.Is(err, errWorkerDraining) || ctx.Err() != nil {
			break
		}
	}
	return server.CellResult{}, lastErr
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// dispatchOnce performs one round trip: submit the cell to the worker
// as a single-cell sweep (the worker API is unchanged — a router
// dispatch is indistinguishable from a tiny client sweep), then read
// its one-line NDJSON result stream. The returned result carries the
// original cell coordinates, so the merged client stream is
// byte-identical per cell to a single daemon's.
func (r *Router) dispatchOnce(ctx context.Context, worker string, j *server.Job, cell server.Cell) (server.CellResult, error) {
	var zero server.CellResult
	wreq := server.SweepRequest{
		Tenant:     j.Tenant,
		Priority:   j.Priority.String(),
		Benchmarks: []string{cell.Benchmarks},
		Archs:      []string{cell.Arch},
		PhysRegs:   []int{cell.PhysRegs},
		DL1Ports:   []int{cell.DL1Ports},
		StopAfter:  cell.StopAfter,
	}
	// The worker's job budget is the router job's remaining budget plus
	// a second, so the router-side deadline always fires first and the
	// client sees one consistent timeout error.
	if dl, ok := ctx.Deadline(); ok {
		wreq.TimeoutSec = int(time.Until(dl).Seconds()) + 1
		if wreq.TimeoutSec < 1 {
			wreq.TimeoutSec = 1
		}
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return zero, &permanentError{fmt.Errorf("encoding cell request: %w", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return zero, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return zero, fmt.Errorf("submitting to %s: %w", worker, err)
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests:
		drainBody(resp)
		return zero, fmt.Errorf("%w: %s", errWorkerBusy, worker)
	case http.StatusServiceUnavailable:
		drainBody(resp)
		return zero, fmt.Errorf("%w: %s", errWorkerDraining, worker)
	default:
		msg := readError(resp)
		return zero, &permanentError{fmt.Errorf("worker %s rejected cell (status %d): %s", worker, resp.StatusCode, msg)}
	}
	var acc struct {
		ID         string `json:"id"`
		ResultsURL string `json:"results_url"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil {
		return zero, fmt.Errorf("decoding %s accept body: %w", worker, err)
	}

	rreq, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+acc.ResultsURL, nil)
	if err != nil {
		return zero, &permanentError{err}
	}
	rresp, err := r.opts.Client.Do(rreq)
	if err != nil {
		return zero, fmt.Errorf("streaming from %s: %w", worker, err)
	}
	defer drainBody(rresp)
	if rresp.StatusCode != http.StatusOK {
		return zero, fmt.Errorf("worker %s results stream: status %d", worker, rresp.StatusCode)
	}
	var res server.CellResult
	if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
		// Stream cut before the result landed: the worker died mid-cell.
		// Retryable — re-simulation elsewhere is safe, results append to
		// the job only here, after a complete line.
		return zero, fmt.Errorf("reading result from %s: %w", worker, err)
	}
	res.Cell = cell // restore the original sweep coordinates (Index above all)
	return res, nil
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

func readError(resp *http.Response) string {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return e.Error
	}
	return "unknown error"
}

// MetricSamples implements server.Backend: every worker's registry
// (scraped concurrently from /metrics.json) merged by metrics.Merge,
// plus the router's own server.shard.* series. One scrape of the router
// answers for the fleet — fleet-wide misses == simulations is readable
// from this one endpoint.
func (r *Router) MetricSamples() []metrics.Sample {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ScrapeTimeout)
	defer cancel()
	sets := make([][]metrics.Sample, len(r.opts.Workers)+1)
	var wg sync.WaitGroup
	for i, w := range r.opts.Workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			s, err := scrapeWorker(ctx, r.opts.Client, w)
			if err != nil {
				r.met.scrapeErrors.Add(1)
				return
			}
			sets[i] = s
		}(i, w)
	}
	wg.Wait()
	sets[len(sets)-1] = r.met.ownSamples(r.opts.Workers, r.pool.HealthyCount())
	return metrics.Merge(sets...)
}

// ObserveLatency implements server.Backend; router handler latencies
// land under server.shard.latency.* so they never merge-sum with the
// aggregated worker server.latency.* series.
func (r *Router) ObserveLatency(route string, us uint64) {
	switch route {
	case server.RouteSubmit:
		r.met.latSubmit.Observe(us)
	case server.RouteStatus:
		r.met.latStatus.Observe(us)
	case server.RouteResults:
		r.met.latResults.Observe(us)
	}
}

// Drain performs graceful shutdown: stop admission (readyz turns 503),
// let in-flight cells finish, and if ctx expires first cancel every job
// context so dispatchers record errors and exit. Every admitted cell is
// answered either way. Returns nil on a clean drain, ctx.Err() when
// work was abandoned.
func (r *Router) Drain(ctx context.Context) error {
	r.draining.Store(true)
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		r.cancelBase()
	case <-ctx.Done():
		r.cancelBase() // abandon in-flight dispatches; they record errors
		<-done
		err = ctx.Err()
	}
	r.pool.Close()
	return err
}
