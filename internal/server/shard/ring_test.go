package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates n deterministic pseudo-random keys shaped like
// simcache content addresses (hex sha256 strings hash uniformly, and so
// do these — hashKey re-hashes either way).
func ringKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%016x-%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

func workerNames(n int) []string {
	w := make([]string, n)
	for i := range w {
		w[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return w
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"w1", "w2", "w3"}, 64)
	b := NewRing([]string{"w3", "w1", "w2"}, 64) // permuted member order
	for _, k := range ringKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings over permuted member sets disagree on %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// chi2Owner computes the χ² uniformity statistic of a ring's key
// assignment over K deterministic keys: Σ (observed - K/N)² / (K/N).
func chi2Owner(r *Ring, keys []string) float64 {
	counts := make(map[string]int, len(r.Nodes()))
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	n := len(r.Nodes())
	expected := float64(len(keys)) / float64(n)
	chi2 := 0.0
	for _, w := range r.Nodes() {
		d := float64(counts[w]) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// TestRingBalance holds the vnode scheme to a χ²-style uniformity
// bound. Two variance sources feed the statistic: multinomial key
// sampling (expectation N-1) and the ring's own vnode arc-length
// spread, which contributes ≈ K·(N-1)/(N·V) for V vnodes per worker.
// The bound is 4× that combined expectation, loose enough that only a
// genuinely skewed ring — too few vnodes, a broken hash — trips it.
// A direct per-worker share bound and a vnode-improvement check (128
// vnodes beat 4) ride along.
func TestRingBalance(t *testing.T) {
	const K = 20000
	keys := ringKeys(K)
	for _, n := range []int{2, 3, 5, 8} {
		workers := workerNames(n)
		r := NewRing(workers, 128)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		expected := float64(K) / float64(n)
		// No worker may hold more than 2x or less than half its fair
		// share — the operational definition of "balanced enough".
		for _, w := range workers {
			if c := counts[w]; float64(c) > 2*expected || float64(c) < expected/2 {
				t.Errorf("n=%d: worker %s owns %d of %d keys (fair share %.0f)", n, w, c, K, expected)
			}
		}
		chi2 := chi2Owner(r, keys)
		limit := 4 * float64(n-1) * (1 + float64(K)/float64(n*128))
		if chi2 > limit {
			t.Errorf("n=%d: chi2 statistic %.1f above %.1f — ring is unbalanced: %v", n, chi2, limit, counts)
		}
		// More vnodes must mean better balance: the whole point of
		// virtual nodes is shrinking arc-length variance (~1/V).
		if sparse := chi2Owner(NewRing(workers, 4), keys); n > 2 && chi2 >= sparse {
			t.Errorf("n=%d: 128 vnodes (chi2 %.1f) no better than 4 vnodes (chi2 %.1f)", n, chi2, sparse)
		}
	}
}

// TestRingMinimalRemappingOnLeave pins the consistent-hashing contract:
// removing a worker moves exactly the keys it owned, and every moved
// key lands on a surviving worker. No key moves between two survivors.
func TestRingMinimalRemappingOnLeave(t *testing.T) {
	keys := ringKeys(10000)
	full := NewRing(workerNames(4), 128)
	dead := "http://worker-2:8080"
	reduced := full.Without(dead)

	moved := 0
	for _, k := range keys {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == dead {
			moved++
			if after == dead {
				t.Fatalf("key %q still owned by removed worker", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved between survivors: %s -> %s", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed worker owned no keys — balance is broken")
	}
}

// TestRingMinimalRemappingOnJoin: adding a worker moves only keys that
// the newcomer now owns — about K/N of them, never more than a loose
// 2x bound — and moves them only to the newcomer.
func TestRingMinimalRemappingOnJoin(t *testing.T) {
	keys := ringKeys(10000)
	base := NewRing(workerNames(4), 128)
	joined := base.With("http://worker-new:8080")

	moved := 0
	for _, k := range keys {
		before, after := base.Owner(k), joined.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != "http://worker-new:8080" {
			t.Fatalf("key %q moved to %s, not the joining worker", k, after)
		}
	}
	fair := len(keys) / len(joined.Nodes())
	if moved == 0 {
		t.Fatal("joining worker received no keys")
	}
	if moved > 2*fair {
		t.Fatalf("join moved %d keys, above 2x the fair share %d", moved, fair)
	}
}

// TestRingSuccessors: the failover order starts at the owner, covers
// every member exactly once, and skipping the owner yields the same
// worker that a ring without the owner would choose — the property that
// makes failover and permanent removal agree.
func TestRingSuccessors(t *testing.T) {
	workers := workerNames(4)
	r := NewRing(workers, 128)
	for _, k := range ringKeys(2000) {
		succ := r.Successors(k)
		if len(succ) != len(workers) {
			t.Fatalf("Successors(%q) has %d entries, want %d", k, len(succ), len(workers))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors(%q)[0] = %s, want owner %s", k, succ[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, w := range succ {
			if seen[w] {
				t.Fatalf("Successors(%q) repeats %s", k, w)
			}
			seen[w] = true
		}
		if got, want := succ[1], r.Without(succ[0]).Owner(k); got != want {
			t.Fatalf("failover for %q goes to %s, but removal would route to %s", k, got, want)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	one := NewRing([]string{"solo"}, 128)
	for _, k := range ringKeys(100) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-worker ring must own everything")
		}
	}
	dup := NewRing([]string{"a", "a", "b"}, 16)
	if n := len(dup.Nodes()); n != 2 {
		t.Fatalf("duplicate members not compacted: %d nodes", n)
	}
	if got := NewRing([]string{"a", "b"}, 0).vnodes; got != 128 {
		t.Fatalf("vnodes default = %d, want 128", got)
	}
}
