package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"vca/internal/metrics"
	"vca/internal/server"
)

// routerMetrics is the router's own counter surface, exported under
// server.shard.* next to the aggregated worker registries. Routed cells
// are also counted per shard (server.shard.routed.w<i>), which is what
// lets an operator see affinity working: re-submitting a sweep moves
// no per-shard counter differently than the first submission did.
// docs/OBSERVABILITY.md carries the full table.
type routerMetrics struct {
	jobsSubmitted atomic.Uint64 // sweeps accepted by the router (202)
	jobsRejected  atomic.Uint64 // sweeps refused (validation, draining)
	jobsDone      atomic.Uint64 // sweeps whose last cell was answered
	jobsRunning   atomic.Int64  // sweeps admitted, not yet finished (gauge)

	cellsRouted   atomic.Uint64 // cells dispatched to some worker
	cellsLocal    atomic.Uint64 // cells answered locally (No-Baseline / build errors)
	cellsFailed   atomic.Uint64 // cells that exhausted every worker
	cellsInflight atomic.Int64  // cells currently dispatched (gauge)

	retries   atomic.Uint64 // re-attempts against the same worker (backoff path)
	failovers atomic.Uint64 // cells moved to a ring successor after a worker failed
	remapped  atomic.Uint64 // cells routed off their primary shard (owner unhealthy)

	scrapeErrors atomic.Uint64 // worker /metrics.json fetches that failed

	perWorker []atomic.Uint64 // routed cells per shard, index-aligned with workers

	latSubmit   server.AtomicHistogram // POST /v1/sweeps handler latency (µs)
	latStatus   server.AtomicHistogram // GET /v1/sweeps/{id} handler latency (µs)
	latResults  server.AtomicHistogram // GET .../results stream duration (µs)
	latDispatch server.AtomicHistogram // per-cell dispatch round trip incl. worker queue+sim (µs)
}

// ownSamples renders the router-local series. workersTotal/healthy are
// sampled by the caller (the pool owns them).
func (m *routerMetrics) ownSamples(workers []string, healthy int) []metrics.Sample {
	ctr := func(name string, v uint64, desc string) metrics.Sample {
		return metrics.Sample{Name: name, Kind: "counter", Unit: "events", Desc: desc, Value: v}
	}
	gauge := func(name string, v int64, desc string) metrics.Sample {
		if v < 0 {
			v = 0
		}
		return metrics.Sample{Name: name, Kind: "gauge", Unit: "events", Desc: desc, Value: uint64(v)}
	}
	out := []metrics.Sample{
		ctr("server.shard.jobs_submitted", m.jobsSubmitted.Load(), "sweep jobs accepted by the router"),
		ctr("server.shard.jobs_rejected", m.jobsRejected.Load(), "sweep submissions the router refused (validation or draining)"),
		ctr("server.shard.jobs_done", m.jobsDone.Load(), "sweep jobs whose last cell was answered"),
		gauge("server.shard.jobs_running", m.jobsRunning.Load(), "sweep jobs admitted by the router and not yet finished"),
		ctr("server.shard.cells_routed", m.cellsRouted.Load(), "cells dispatched to a worker"),
		ctr("server.shard.cells_local", m.cellsLocal.Load(), "cells answered by the router without dispatch (No-Baseline regions and build errors)"),
		ctr("server.shard.cells_failed", m.cellsFailed.Load(), "cells that exhausted every worker and were answered with an error"),
		gauge("server.shard.cells_inflight", m.cellsInflight.Load(), "cells currently dispatched to workers"),
		ctr("server.shard.retries", m.retries.Load(), "dispatch re-attempts against the same worker (exponential backoff)"),
		ctr("server.shard.failovers", m.failovers.Load(), "cells re-dispatched to a ring successor after their worker failed"),
		ctr("server.shard.remapped", m.remapped.Load(), "cells routed off their primary shard because its worker was unhealthy (remap fraction = remapped / cells_routed)"),
		ctr("server.shard.scrape_errors", m.scrapeErrors.Load(), "worker /metrics.json aggregation fetches that failed"),
		gauge("server.shard.workers", int64(len(workers)), "configured workers"),
		gauge("server.shard.workers_healthy", int64(healthy), "workers currently believed dispatchable"),
	}
	for i := range m.perWorker {
		out = append(out, ctr(fmt.Sprintf("server.shard.routed.w%d", i), m.perWorker[i].Load(),
			fmt.Sprintf("cells routed to shard w%d (%s)", i, workers[i])))
	}
	out = append(out,
		m.latSubmit.Sample("server.shard.latency.submit_us", "us", "router POST /v1/sweeps handler latency"),
		m.latStatus.Sample("server.shard.latency.status_us", "us", "router GET /v1/sweeps/{id} handler latency"),
		m.latResults.Sample("server.shard.latency.results_us", "us", "router GET /v1/sweeps/{id}/results stream duration"),
		m.latDispatch.Sample("server.shard.latency.dispatch_us", "us", "per-cell dispatch round trip (worker queue wait and simulation included)"),
	)
	return out
}

// scrapeWorker fetches one worker's raw metric samples from its
// /metrics.json endpoint — the lossless form metrics.Merge aggregates
// (re-parsing Prometheus text would drop bucket bounds and kinds).
func scrapeWorker(ctx context.Context, client *http.Client, worker string) ([]metrics.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics.json: status %d", worker, resp.StatusCode)
	}
	var samples []metrics.Sample
	if err := json.NewDecoder(resp.Body).Decode(&samples); err != nil {
		return nil, fmt.Errorf("decoding %s/metrics.json: %w", worker, err)
	}
	return samples, nil
}
