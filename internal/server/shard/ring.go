// Package shard turns N independent vcaserved workers into one
// cache-affine sweep fleet. A Router accepts the unchanged sweep API
// (POST /v1/sweeps and friends — it mounts server.NewHandler like any
// worker), expands each sweep into cells, derives every cell's simcache
// content address (server.CellKey), and routes it on a consistent-hash
// ring so identical cells — from any tenant, in any sweep, at any time
// — always land on the same worker and hit that worker's shared result
// cache and singleflight table. That extends the PR-7 invariant
// "misses == simulations" from one daemon to the whole fleet: a cell
// simulates exactly once fleet-wide, no matter how many tenants ask.
//
// Dispatch is per cell over pooled persistent HTTP connections, with
// per-cell retry + exponential backoff against the owning worker and
// failover to the ring successor when a worker dies mid-sweep; worker
// NDJSON streams merge back into one completion-ordered client stream
// through the shared server.Job machinery. /metrics aggregates every
// worker's registry (fetched as raw samples from /metrics.json, merged
// by metrics.Merge) plus the router's own server.shard.* counters.
//
// Topology, failure semantics, and the cache-affinity guarantee are
// documented in docs/SERVICE.md ("Sharded deployment"); the
// acceptance gate is `make shard-smoke` (internal/tools/shardsmoke).
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes: each worker owns
// VNodes points on a 64-bit circle, and a key belongs to the worker
// owning the first point at or after the key's hash. Virtual nodes keep
// the key space balanced (ring_test.go holds a χ²-style bound); the
// ring structure keeps remapping minimal — when a worker joins or
// leaves, only the keys in the arcs it gains or loses move, about K/N
// of them, and no key ever moves between two surviving workers.
//
// A Ring is immutable after New; membership changes build a new ring
// (With/Without). The Router never rebuilds its ring on failure —
// it routes around dead workers by walking successors — so a worker
// that comes back finds its key space exactly where it left it.
type Ring struct {
	nodes  []string // distinct members, sorted (for deterministic walks)
	points []point  // vnode points, sorted by hash
	vnodes int
}

type point struct {
	hash uint64
	node int // index into nodes
}

// hashKey positions an arbitrary key (a simcache content address) on
// the circle. The full SHA-256 is taken even though cache keys are
// already digests: routing must also behave for non-digest keys, and
// the double hash keeps vnode points and keys in one family.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

func hashVNode(node string, i int) uint64 {
	sum := sha256.Sum256(fmt.Appendf(nil, "%s#%d", node, i))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given distinct workers with vnodes
// virtual nodes each (vnodes <= 0 takes 128). Node order does not
// matter: rings over permutations of the same set route identically.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	r := &Ring{nodes: slices.Clone(nodes), vnodes: vnodes}
	slices.Sort(r.nodes)
	r.nodes = slices.Compact(r.nodes)
	r.points = make([]point, 0, len(r.nodes)*vnodes)
	for ni, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hashVNode(n, i), node: ni})
		}
	}
	slices.SortFunc(r.points, func(a, b point) int {
		if a.hash != b.hash {
			if a.hash < b.hash {
				return -1
			}
			return 1
		}
		return a.node - b.node // ties broken by node index: deterministic
	})
	return r
}

// Nodes returns the ring's members in sorted order.
func (r *Ring) Nodes() []string { return slices.Clone(r.nodes) }

// With returns a new ring with node added (a no-op copy if present).
func (r *Ring) With(node string) *Ring {
	return NewRing(append(slices.Clone(r.nodes), node), r.vnodes)
}

// Without returns a new ring with node removed.
func (r *Ring) Without(node string) *Ring {
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	return NewRing(keep, r.vnodes)
}

// Owner returns the worker owning key — the cache-affine destination.
// Panics on an empty ring (a router requires at least one worker).
func (r *Ring) Owner(key string) string {
	return r.nodes[r.ownerIndex(hashKey(key))]
}

func (r *Ring) ownerIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].node
}

// Successors returns every worker in ring order starting from key's
// owner: Successors(key)[0] is Owner(key), and each later entry is the
// next distinct worker walking clockwise from the owning point — the
// failover order. The slice has one entry per member.
func (r *Ring) Successors(key string) []string {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for off := 0; off < len(r.points) && len(out) < len(r.nodes); off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
