package shard

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// workerPool tracks the health of the router's workers and bounds the
// router's concurrency against each one. Health has two inputs:
//
//   - the dispatch path marks a worker down the moment an attempt
//     against it fails at the transport level (fast failover — no cell
//     waits for a probe cycle to notice a dead worker);
//   - a background prober GETs every worker's /readyz on an interval,
//     bringing recovered workers back up (and draining workers down, so
//     new cells route around a worker that is shutting down while its
//     in-flight streams finish).
//
// A worker's slot semaphore bounds how many cells the router holds in
// flight against it at once; beyond that, dispatchers queue locally
// rather than piling connections onto the worker.
type workerPool struct {
	workers []string
	client  *http.Client
	healthy []atomic.Bool
	slots   []chan struct{}
	index   map[string]int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newWorkerPool(workers []string, client *http.Client, inflight int, probeEvery time.Duration) *workerPool {
	p := &workerPool{
		workers: workers,
		client:  client,
		healthy: make([]atomic.Bool, len(workers)),
		slots:   make([]chan struct{}, len(workers)),
		index:   make(map[string]int, len(workers)),
		stop:    make(chan struct{}),
	}
	for i, w := range workers {
		p.healthy[i].Store(true) // optimistic: the first dispatch corrects it
		p.slots[i] = make(chan struct{}, inflight)
		p.index[w] = i
	}
	if probeEvery > 0 {
		p.wg.Add(1)
		go p.probeLoop(probeEvery)
	}
	return p
}

// Healthy reports whether the worker is currently believed dispatchable.
func (p *workerPool) Healthy(worker string) bool {
	return p.healthy[p.index[worker]].Load()
}

// MarkDown records a dispatch-path failure against worker.
func (p *workerPool) MarkDown(worker string) {
	p.healthy[p.index[worker]].Store(false)
}

// HealthyCount returns how many workers are currently believed up.
func (p *workerPool) HealthyCount() int {
	n := 0
	for i := range p.healthy {
		if p.healthy[i].Load() {
			n++
		}
	}
	return n
}

// Acquire takes an in-flight slot against worker, waiting for one to
// free or ctx to expire. Release returns it.
func (p *workerPool) Acquire(ctx context.Context, worker string) error {
	select {
	case p.slots[p.index[worker]] <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *workerPool) Release(worker string) {
	<-p.slots[p.index[worker]]
}

// probeLoop polls every worker's /readyz. A 200 marks the worker up; a
// refusal, timeout, or non-200 (a draining worker answers 503) marks it
// down for new dispatches.
func (p *workerPool) probeLoop(every time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		for i, w := range p.workers {
			p.healthy[i].Store(p.probe(w))
		}
	}
}

func (p *workerPool) probe(worker string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Close stops the prober and waits for it.
func (p *workerPool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
