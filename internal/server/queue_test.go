package server

import (
	"strings"
	"sync"
	"testing"
)

func testJob(tenant string, prio Priority, cells int) *Job {
	j := &Job{ID: "t-" + tenant, Tenant: tenant, Priority: prio, Cells: make([]Cell, cells)}
	j.cond = sync.NewCond(&j.mu)
	return j
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestQueueTenantFairness pins the round-robin guarantee: a tenant that
// floods the queue cannot lock out a tenant that arrives later — the
// dispatcher takes one cell per tenant per rotation.
func TestQueueTenantFairness(t *testing.T) {
	q := NewQueue(0)
	a := testJob("alice", PriorityNormal, 4)
	b := testJob("bob", PriorityNormal, 2)
	if err := q.Push(a, indices(4)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(b, indices(2)); err != nil {
		t.Fatal(err)
	}
	var order []string
	for i := 0; i < 6; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		order = append(order, it.job.Tenant)
	}
	want := []string{"alice", "bob", "alice", "bob", "alice", "alice"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d after draining", q.Depth())
	}
}

// TestQueuePriorityClasses pins strict priorities: interactive cells
// dispatch before normal, normal before batch, regardless of arrival
// order.
func TestQueuePriorityClasses(t *testing.T) {
	q := NewQueue(0)
	batch := testJob("x", PriorityBatch, 2)
	normal := testJob("y", PriorityNormal, 1)
	inter := testJob("z", PriorityInteractive, 1)
	for _, j := range []*Job{batch, normal, inter} {
		if err := q.Push(j, indices(len(j.Cells))); err != nil {
			t.Fatal(err)
		}
	}
	var got []Priority
	for i := 0; i < 4; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		got = append(got, it.job.Priority)
	}
	want := []Priority{PriorityInteractive, PriorityNormal, PriorityBatch, PriorityBatch}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order %v, want %v", got, want)
		}
	}
}

// TestQueueBoundAndClose pins the admission-control contract: a push
// that would exceed the bound is refused atomically (nothing queued),
// and pushes after Close fail with ErrQueueClosed while queued cells
// still drain.
func TestQueueBoundAndClose(t *testing.T) {
	q := NewQueue(3)
	j := testJob("a", PriorityNormal, 2)
	if err := q.Push(j, indices(2)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob("b", PriorityNormal, 2), indices(2)); err != ErrQueueFull {
		t.Fatalf("overfull push: err = %v, want ErrQueueFull", err)
	}
	if q.Depth() != 2 {
		t.Fatalf("rejected push leaked items: depth = %d", q.Depth())
	}
	q.Close()
	if err := q.Push(testJob("c", PriorityNormal, 1), indices(1)); err != ErrQueueClosed {
		t.Fatalf("push after close: err = %v, want ErrQueueClosed", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("queued cell %d lost on close", i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned an item from a closed empty queue")
	}
}

// TestQueueConcurrent hammers the queue from concurrent producers and
// consumers — the `-race` target over the scheduler. Every pushed cell
// must be popped exactly once.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue(0)
	const producers, perProducer, consumers = 8, 50, 4

	var popped sync.Map
	var wg sync.WaitGroup
	var consumerWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			for {
				it, ok := q.Pop()
				if !ok {
					return
				}
				if _, dup := popped.LoadOrStore([2]any{it.job, it.cell}, true); dup {
					t.Errorf("cell popped twice: %s/%d", it.job.Tenant, it.cell)
					return
				}
			}
		}()
	}
	tenants := []string{"a", "b", "c"}
	prios := []Priority{PriorityInteractive, PriorityNormal, PriorityBatch}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			j := testJob(tenants[p%len(tenants)], prios[p%len(prios)], perProducer)
			for i := 0; i < perProducer; i++ {
				if err := q.Push(j, []int{i}); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	consumerWG.Wait()

	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != producers*perProducer {
		t.Fatalf("popped %d cells, pushed %d", n, producers*perProducer)
	}
}

// TestQueueInvariantResync pins the self-repair contract: a divergence
// between the size counter and the dispatch rings — the condition that
// used to panic the popping worker and kill the daemon — is repaired
// in place from the per-tenant FIFOs, recorded as a structured
// InvariantError, and the queue keeps serving in FIFO order.
func TestQueueInvariantResync(t *testing.T) {
	q := NewQueue(0)
	j := testJob("alice", PriorityNormal, 3)
	if err := q.Push(j, indices(3)); err != nil {
		t.Fatal(err)
	}

	// Corruption one: the dispatch ring vanishes while the tenant FIFO
	// still holds every cell (size > 0, rings empty).
	q.mu.Lock()
	q.classes[PriorityNormal].ring = nil
	q.mu.Unlock()

	for i := 0; i < 3; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue reported drained", i)
		}
		if it.cell != i {
			t.Fatalf("pop %d: got cell %d; resync must preserve FIFO order", i, it.cell)
		}
	}
	if got := q.InvariantFailures(); got != 1 {
		t.Fatalf("InvariantFailures = %d, want 1", got)
	}
	inv := q.InvariantFailure()
	if inv == nil || inv.Size != 3 || inv.Found != 3 {
		t.Fatalf("InvariantFailure = %+v, want Size=3 Found=3", inv)
	}
	if !strings.Contains(inv.Error(), "queue invariant violated") {
		t.Fatalf("InvariantError.Error() = %q", inv.Error())
	}

	// Corruption two: cells vanish from the FIFO (and its ring slot)
	// while the size counter still claims them — the lost-cell
	// divergence. The resync must conclude the queue is empty rather
	// than spinning, so a closed queue reports drained.
	j2 := testJob("bob", PriorityNormal, 2)
	if err := q.Push(j2, indices(2)); err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	tq := q.classes[PriorityNormal].tenants["bob"]
	tq.items, tq.head = tq.items[:0], 0
	q.classes[PriorityNormal].ring = nil
	q.mu.Unlock()

	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after lost-cell corruption returned an item")
	}
	if got := q.InvariantFailures(); got != 2 {
		t.Fatalf("InvariantFailures = %d, want 2", got)
	}
	if inv := q.InvariantFailure(); inv == nil || inv.Size != 2 || inv.Found != 0 {
		t.Fatalf("InvariantFailure = %+v, want Size=2 Found=0", inv)
	}
}
