package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"vca/internal/metrics"
	"vca/internal/metrics/promexport"
)

// Backend is what the HTTP layer needs from a sweep service. Two
// implementations exist: Server (a single daemon executing cells on its
// own worker pool) and shard.Router (a fan-out front end dispatching
// cells to N Servers over HTTP). Both serve the identical client API —
// a client cannot tell a router from a worker — which is what lets
// `vcaserved -route ...` drop in front of an existing deployment
// without touching any client.
type Backend interface {
	// Submit validates and admits one sweep. Errors: ErrQueueFull (429),
	// ErrQueueClosed (503), anything else is a validation failure (400).
	Submit(req SweepRequest) (*Job, error)
	// Job looks up an admitted job by id.
	Job(id string) (*Job, bool)
	// Draining reports whether graceful shutdown has begun (readyz 503).
	Draining() bool
	// MetricSamples returns the full metric surface /metrics renders —
	// for a router, the merged worker registries plus its own counters.
	MetricSamples() []metrics.Sample
	// ObserveLatency records one handler latency observation in
	// microseconds; route is one of RouteSubmit/RouteStatus/RouteResults.
	ObserveLatency(route string, us uint64)
}

// Handler latency routes.
const (
	RouteSubmit  = "submit"
	RouteStatus  = "status"
	RouteResults = "results"
)

// HandlerOptions tunes the shared HTTP layer.
type HandlerOptions struct {
	// StreamWriteTimeout is the per-result write deadline on NDJSON
	// result streams: every line must reach the socket within it, so one
	// stalled reader holds at most one stream goroutine for one deadline
	// (never a cell worker — results land in the job regardless).
	// 0 takes the 1m default; negative disables the deadline.
	StreamWriteTimeout time.Duration
	// StreamBufBytes sizes each result stream's write buffer (0 = 32
	// KiB). The buffer bounds per-stream memory: a stalled reader costs
	// one buffer, not an unbounded queue of encoded results.
	StreamBufBytes int
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: the profiling surface is operator-only (docs/SERVICE.md).
	Pprof bool
}

func (o *HandlerOptions) withDefaults() HandlerOptions {
	out := *o
	if out.StreamWriteTimeout == 0 {
		out.StreamWriteTimeout = time.Minute
	}
	if out.StreamBufBytes <= 0 {
		out.StreamBufBytes = 32 << 10
	}
	return out
}

// NewHandler returns the sweep-service routing table over any Backend.
// Server.Handler wraps it for the single daemon; the shard router
// mounts it unchanged, which is what keeps the two wire-compatible.
func NewHandler(b Backend, opts HandlerOptions) http.Handler {
	o := opts.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(b, w, r)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleStatus(b, w, r)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		handleResults(b, &o, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if b.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		promexport.Write(w, "vca", b.MetricSamples())
	})
	// The machine-readable twin of /metrics: the raw sample set as JSON.
	// The shard router scrapes its workers here — merging samples is
	// exact, where re-parsing Prometheus text would be lossy (histogram
	// bucket bounds, kinds, units).
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(b.MetricSamples())
	})
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// httpError is the uniform JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func handleSubmit(b Backend, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { b.ObserveLatency(RouteSubmit, uint64(time.Since(start).Microseconds())) }()

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep request: %w", err))
		return
	}
	j, err := b.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":          j.ID,
		"cells_total": len(j.Cells),
		"status_url":  "/v1/sweeps/" + j.ID,
		"results_url": "/v1/sweeps/" + j.ID + "/results",
	})
}

func handleStatus(b Backend, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { b.ObserveLatency(RouteStatus, uint64(time.Since(start).Microseconds())) }()

	j, ok := b.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Status())
}

// handleResults streams the job's cell results as NDJSON in completion
// order: results already landed are sent immediately, then the
// connection stays open until the job finishes or the client goes away.
//
// Each line is encoded into a bounded buffer and explicitly flushed
// under a per-write deadline, so a reader that stops consuming costs the
// service exactly one stream goroutine, one buffer, and one deadline —
// never a cell worker. Workers append results to the job regardless of
// who is reading; when the flush deadline fires the stream goroutine
// errors out and the connection closes, while the job (and every other
// reader) proceeds untouched. The slow-client test pins this.
func handleResults(b Backend, o *HandlerOptions, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { b.ObserveLatency(RouteResults, uint64(time.Since(start).Microseconds())) }()

	j, ok := b.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	bw := bufio.NewWriterSize(w, o.StreamBufBytes)
	enc := json.NewEncoder(bw)
	for i := 0; ; i++ {
		res, ok := j.ResultAt(r.Context(), i)
		if !ok {
			// Clear the per-write deadline so a keep-alive connection is
			// reusable after a clean end of stream.
			rc.SetWriteDeadline(time.Time{})
			return
		}
		if o.StreamWriteTimeout > 0 {
			// Arm (or re-arm) the write deadline for this result only: a
			// stream legitimately sits idle between results, so the clock
			// must not run while blocked in ResultAt above.
			rc.SetWriteDeadline(time.Now().Add(o.StreamWriteTimeout))
		}
		if err := enc.Encode(&res); err != nil {
			return // buffer flush failed mid-encode: client stalled or gone
		}
		if err := bw.Flush(); err != nil {
			return
		}
		rc.Flush()
	}
}
