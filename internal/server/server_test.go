package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vca/internal/simcache"
)

// newTestServer builds a server over a fresh cache directory and an
// httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Cache == nil {
		cache, err := simcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = cache
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func submitSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (id string, cells int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var out struct {
		ID         string `json:"id"`
		CellsTotal int    `json:"cells_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, out.CellsTotal
}

func streamResults(t *testing.T, ts *httptest.Server, id string) []CellResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	var out []CellResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var r CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEndToEndByteIdentity is the acceptance gate: a sweep submitted
// over HTTP and streamed back as NDJSON must be byte-identical, cell
// for cell, to the same cells dispatched directly through
// simcache.Runner in-process (RunCells) — same results, same counters,
// same JSON bytes. The service adds transport and scheduling, never
// semantics.
func TestEndToEndByteIdentity(t *testing.T) {
	req := SweepRequest{
		Tenant:     "e2e",
		Benchmarks: []string{"crafty"},
		Archs:      []string{"baseline", "vca-windowed"},
		PhysRegs:   []int{64, 256}, // baseline@64 is a "No Baseline" region
		StopAfter:  3000,
	}

	// Direct path: same cells, standard Runner, its own cache dir.
	cells, err := ExpandCells(&req, 0)
	if err != nil {
		t.Fatal(err)
	}
	directCache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunCells(directCache, 2, cells)
	if err != nil {
		t.Fatal(err)
	}

	// Service path: fresh cache, HTTP round trip.
	_, ts := newTestServer(t, Options{Workers: 2})
	id, n := submitSweep(t, ts, req)
	if n != len(cells) {
		t.Fatalf("service expanded %d cells, direct %d", n, len(cells))
	}
	streamed := streamResults(t, ts, id)
	if len(streamed) != len(direct) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(direct))
	}
	sort.Slice(streamed, func(a, b int) bool { return streamed[a].Index < streamed[b].Index })

	sawInvalid := false
	for i := range direct {
		want, _ := json.Marshal(&direct[i])
		got, _ := json.Marshal(&streamed[i])
		if !bytes.Equal(want, got) {
			t.Errorf("cell %d differs:\n service: %s\n direct:  %s", i, got, want)
		}
		if direct[i].Error != "" {
			t.Errorf("cell %d failed: %s", i, direct[i].Error)
		}
		if !direct[i].Valid {
			sawInvalid = true
		} else {
			if len(direct[i].Counters) == 0 {
				t.Errorf("cell %d carries no counter map", i)
			}
			if direct[i].CacheKey == "" {
				t.Errorf("cell %d carries no cache key", i)
			}
		}
	}
	if !sawInvalid {
		t.Error("sweep should contain a No-Baseline (invalid) cell: baseline@64")
	}

	// Status endpoint agrees.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone || st.CellsDone != len(cells) || st.CellsFailed != 0 {
		t.Fatalf("status = %+v, want done/%d/0", st, len(cells))
	}
}

// promValue extracts a single series value from Prometheus text output.
func promValue(t *testing.T, text, series string) (uint64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v uint64
		if n, _ := fmt.Sscanf(line, series+" %d", &v); n == 1 &&
			strings.HasPrefix(line, series+" ") {
			return v, true
		}
	}
	return 0, false
}

// TestSingleflightConcurrentSubmissions is the second acceptance gate:
// K concurrent submissions of the identical single-cell sweep must
// trigger exactly one simulation, proven by the cache/singleflight
// counters exposed on /metrics — vca_simcache_misses_total == 1 and
// sf_hits + hits == K-1 — while every client still receives a full
// result.
func TestSingleflightConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := SweepRequest{
		Tenant:     "dedup",
		Benchmarks: []string{"mesa"},
		Archs:      []string{"vca-flat"},
		PhysRegs:   []int{192},
		StopAfter:  4000,
	}

	const K = 6
	ids := make([]string, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], _ = submitSweep(t, ts, req)
		}(i)
	}
	wg.Wait()

	var first []byte
	for i, id := range ids {
		res := streamResults(t, ts, id)
		if len(res) != 1 || res[0].Error != "" || !res[0].Valid {
			t.Fatalf("submission %d: unexpected results %+v", i, res)
		}
		b, _ := json.Marshal(&res[0])
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("submission %d result differs from submission 0", i)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	text := body.String()

	misses, ok := promValue(t, text, "vca_simcache_misses_total")
	if !ok {
		t.Fatalf("/metrics lacks vca_simcache_misses_total:\n%s", text)
	}
	hits, _ := promValue(t, text, "vca_simcache_hits_total")
	sfHits, ok := promValue(t, text, "vca_simcache_sf_hits_total")
	if !ok {
		t.Fatalf("/metrics lacks vca_simcache_sf_hits_total:\n%s", text)
	}
	if misses != 1 {
		t.Errorf("vca_simcache_misses_total = %d, want exactly 1 simulation for %d identical submissions", misses, K)
	}
	if hits+sfHits != K-1 {
		t.Errorf("hits(%d) + sf_hits(%d) = %d, want %d coalesced/memoized answers", hits, sfHits, hits+sfHits, K-1)
	}
	if done, _ := promValue(t, text, "vca_server_jobs_done_total"); done != K {
		t.Errorf("vca_server_jobs_done_total = %d, want %d", done, K)
	}
	if cells, _ := promValue(t, text, "vca_server_cells_done_total"); cells != K {
		t.Errorf("vca_server_cells_done_total = %d, want %d", cells, K)
	}
}

// TestGracefulDrain pins the shutdown sequence: Drain lets admitted
// work finish, flips /readyz to 503, and refuses new submissions with
// 503, while already-streamed results stay complete.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	req := SweepRequest{
		Benchmarks: []string{"gap"},
		Archs:      []string{"baseline"},
		PhysRegs:   []int{256},
		StopAfter:  3000,
	}
	id, _ := submitSweep(t, ts, req)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The admitted job finished with a real answer.
	res := streamResults(t, ts, id)
	if len(res) != 1 || res[0].Error != "" || !res[0].Valid {
		t.Fatalf("drained job results: %+v", res)
	}

	// Readiness reflects the drain; liveness does not.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200", resp.StatusCode)
	}

	// New submissions are refused with 503.
	body, _ := json.Marshal(req)
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
}

// TestForcedDrainAnswersEveryCell pins drain convergence under an
// expired budget: even when the drain context is already cancelled,
// every admitted cell receives an answer (abandoned cells report
// errors, queued cells fail fast) and workers exit.
func TestForcedDrainAnswersEveryCell(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	req := SweepRequest{
		Benchmarks: []string{"crafty", "twolf", "parser"},
		Archs:      []string{"baseline"},
		PhysRegs:   []int{256},
		StopAfter:  2000,
	}
	id, n := submitSweep(t, ts, req)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()     // expired before the drain starts
	s.Drain(ctx) // error value depends on timing; convergence is the contract

	res := streamResults(t, ts, id)
	if len(res) != n {
		t.Fatalf("forced drain answered %d of %d cells", len(res), n)
	}
}

// TestSubmitValidation pins the 400-family behavior.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCellsPerSweep: 4})
	for name, req := range map[string]SweepRequest{
		"unknown arch":  {Benchmarks: []string{"crafty"}, Archs: []string{"pdp11"}, PhysRegs: []int{256}},
		"unknown bench": {Benchmarks: []string{"doom"}, Archs: []string{"baseline"}, PhysRegs: []int{256}},
		"empty axes":    {Benchmarks: []string{"crafty"}, Archs: []string{"baseline"}},
		"bad priority":  {Benchmarks: []string{"crafty"}, Archs: []string{"baseline"}, PhysRegs: []int{256}, Priority: "urgent"},
		"too large":     {Benchmarks: []string{"crafty"}, Archs: []string{"baseline"}, PhysRegs: []int{64, 128, 192, 256, 320}},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/sw-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestQueueFullRejection pins 429 on a saturated queue: admission is
// atomic per sweep, so a sweep larger than the remaining queue capacity
// is refused whole, deterministically, regardless of worker progress.
func TestQueueFullRejection(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueLimit: 1})
	req := SweepRequest{
		Benchmarks: []string{"crafty"},
		Archs:      []string{"baseline"},
		PhysRegs:   []int{192, 256}, // 2 cells > QueueLimit 1
		StopAfter:  2000,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep: status %d, want 429", resp.StatusCode)
	}
}

// TestQueueDivergenceSurvivesAndAnswers simulates the queue-accounting
// divergence at the service level: a cell stolen out of a tenant FIFO
// behind the queue's back, so the size counter claims one more cell
// than the rings can ever deliver. The daemon used to die on a panic in
// Pop; the contract now is that it survives, repairs the queue, exports
// the divergence counter, and still answers every admitted cell — the
// lost one with a structured error at drain time.
func TestQueueDivergenceSurvivesAndAnswers(t *testing.T) {
	cache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Build the server without its worker pool so the admitted cells are
	// still queued when the corruption is injected.
	o := (&Options{Workers: 2, Cache: cache}).withDefaults()
	s := &Server{opts: o, cache: cache, queue: NewQueue(o.QueueLimit), jobs: make(map[string]*Job)}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())

	j, err := s.Submit(SweepRequest{
		Benchmarks: []string{"gap", "crafty", "twolf"},
		Archs:      []string{"baseline"},
		PhysRegs:   []int{256},
		StopAfter:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := len(j.Cells)

	// Steal the first queued cell: the FIFO loses a workItem while the
	// size counter still claims it.
	q := s.queue
	q.mu.Lock()
	tq := q.classes[PriorityNormal].tenants["default"]
	stolen := tq.items[tq.head].cell
	copy(tq.items[tq.head:], tq.items[tq.head+1:])
	tq.items = tq.items[:len(tq.items)-1]
	q.mu.Unlock()

	// Start the workers. They serve the surviving cells, then hit the
	// divergence (size claims one more cell than the rings hold), repair
	// it, and drain cleanly.
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if got := q.InvariantFailures(); got != 1 {
		t.Fatalf("InvariantFailures = %d, want 1", got)
	}

	// Every admitted cell must have an answer; the stolen one carries
	// the structured divergence error, the rest succeeded normally.
	st := j.Status()
	if st.State != StateDone || st.CellsDone != n || st.CellsFailed != 1 {
		t.Fatalf("status = %+v, want done with %d results and 1 failure", st, n)
	}
	failed := 0
	for i := 0; i < n; i++ {
		res, ok := j.ResultAt(context.Background(), i)
		if !ok {
			t.Fatalf("result %d missing", i)
		}
		if res.Error == "" {
			continue
		}
		failed++
		if res.Index != stolen {
			t.Errorf("failed cell index = %d, want stolen index %d", res.Index, stolen)
		}
		if !strings.Contains(res.Error, "cell lost without a result") || !strings.Contains(res.Error, "queue invariant violated") {
			t.Errorf("lost-cell error = %q, want the structured divergence message", res.Error)
		}
	}
	if failed != 1 {
		t.Fatalf("failed cells = %d, want exactly the stolen one", failed)
	}

	// The repair is visible on the metric surface.
	var v uint64
	found := false
	for _, sm := range s.Metrics() {
		if sm.Name == "server.queue_invariant_failures" {
			v, found = sm.Value, true
		}
	}
	if !found || v != 1 {
		t.Fatalf("server.queue_invariant_failures sample = %d (found=%v), want 1", v, found)
	}
}

// waitUntil polls cond until it holds or the timeout expires.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSlowClientCannotStallService pins the bounded-stream contract the
// NDJSON path documents: a reader that requests a result stream and
// then never consumes a byte costs the service one stream goroutine,
// one bounded buffer, and one write deadline — never a cell worker.
// The job must finish on schedule, the stalled stream must be reaped by
// the per-result write deadline, and a healthy client must still be
// able to stream the complete result set afterwards.
func TestSlowClientCannotStallService(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, StreamWriteTimeout: 300 * time.Millisecond})

	// One simulation, a flood of bytes: 1024 copies of the same cell all
	// answer from cache/singleflight, but each streams its full ~2.4KB
	// result line, so the ~2.5MB NDJSON body cannot fit in any socket
	// buffer and the writes against the stalled reader must block.
	bench := make([]string, 1024)
	for i := range bench {
		bench[i] = "crafty"
	}
	req := SweepRequest{
		Tenant:     "slow",
		Benchmarks: bench,
		Archs:      []string{"vca-flat"},
		PhysRegs:   []int{192},
		StopAfter:  3000,
	}
	id, n := submitSweep(t, ts, req)

	// A raw TCP client with a shrunken receive window that sends the
	// stream request and then never reads.
	d := net.Dialer{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		cerr := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF, 4<<10)
		})
		if cerr != nil {
			return cerr
		}
		return serr
	}}
	conn, err := d.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/sweeps/%s/results HTTP/1.1\r\nHost: vcaserved\r\n\r\n", id)

	// Every cell still completes: workers append results to the job
	// without ever touching a stream.
	waitUntil(t, 60*time.Second, "job completion behind a stalled reader", func() bool {
		j, ok := s.Job(id)
		if !ok {
			return false
		}
		st := j.Status()
		return st.State == StateDone && st.CellsDone == n && st.CellsFailed == 0
	})

	// The write deadline reaps the stalled stream: its handler exits
	// (recording a results-latency observation) with the client still
	// not reading.
	waitUntil(t, 10*time.Second, "stalled stream reaped by the write deadline", func() bool {
		for _, sm := range s.Metrics() {
			if sm.Name == "server.latency.results_us" {
				return sm.Count >= 1
			}
		}
		return false
	})

	// The service is fully usable after the stall: a healthy client
	// streams all n results.
	res := streamResults(t, ts, id)
	if len(res) != n {
		t.Fatalf("healthy client got %d results, want %d", len(res), n)
	}
}
