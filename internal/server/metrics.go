package server

import (
	"sync/atomic"

	"vca/internal/metrics"
)

// AtomicHistogram is the concurrency-safe sibling of metrics.Histogram:
// same power-of-two bucket scheme, atomic increments, so HTTP handler
// goroutines can observe latencies while the /metrics handler reads a
// consistent-enough snapshot. (internal/metrics proper stays
// single-threaded by design — a simulator owns its registry; the
// service and the shard router are the components with true
// concurrency.)
type AtomicHistogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [metrics.NumBuckets]atomic.Uint64
}

func (h *AtomicHistogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[metrics.BucketOf(v)].Add(1)
}

// Sample renders the histogram as a metrics.Sample, reusing the
// Snapshot conventions (non-empty buckets only, [lo,hi) bounds).
func (h *AtomicHistogram) Sample(name, unit, desc string) metrics.Sample {
	s := metrics.Sample{Name: name, Kind: "histogram", Unit: unit, Desc: desc}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := metrics.BucketBounds(i)
		s.Buckets = append(s.Buckets, metrics.Bucket{Lo: lo, Hi: hi, Count: n})
	}
	return s
}

// serviceMetrics is the service-level counter surface, everything the
// ops runbook (docs/SERVICE.md) alerts on. All fields are atomics;
// snapshot() renders them as metrics.Samples for the Prometheus
// exporter alongside the shared cache's own counters.
type serviceMetrics struct {
	jobsSubmitted atomic.Uint64 // sweeps accepted (202)
	jobsRejected  atomic.Uint64 // sweeps refused: queue full, draining, validation
	jobsDone      atomic.Uint64 // sweeps whose last cell finished
	jobsFailed    atomic.Uint64 // sweeps finished with >= 1 failed cell
	jobsRunning   atomic.Int64  // sweeps admitted and not yet finished (gauge)

	cellsSubmitted atomic.Uint64 // cells queued
	cellsDone      atomic.Uint64 // cells finished, any outcome
	cellsFailed    atomic.Uint64 // cells finished in error (timeout included)
	cellsInvalid   atomic.Uint64 // cells skipped: arch can't operate at that size
	cellsRunning   atomic.Int64  // cells currently simulating (gauge)

	latSubmit  AtomicHistogram // POST /v1/sweeps handler latency (µs)
	latStatus  AtomicHistogram // GET /v1/sweeps/{id} handler latency (µs)
	latResults AtomicHistogram // GET .../results total stream time (µs)
	latCell    AtomicHistogram // per-cell wall time, queue wait excluded (µs)
}

// snapshot renders the service metrics; queueDepth and
// queueInvariantFailures are sampled by the caller (the queue owns
// them).
func (m *serviceMetrics) snapshot(queueDepth int, queueInvariantFailures uint64) []metrics.Sample {
	ctr := func(name string, v uint64, desc string) metrics.Sample {
		return metrics.Sample{Name: name, Kind: "counter", Unit: "events", Desc: desc, Value: v}
	}
	gauge := func(name string, v int64, desc string) metrics.Sample {
		if v < 0 {
			v = 0
		}
		return metrics.Sample{Name: name, Kind: "gauge", Unit: "events", Desc: desc, Value: uint64(v)}
	}
	return []metrics.Sample{
		ctr("server.jobs_submitted", m.jobsSubmitted.Load(), "sweep jobs accepted"),
		ctr("server.jobs_rejected", m.jobsRejected.Load(), "sweep submissions refused (queue full, draining, or invalid)"),
		ctr("server.jobs_done", m.jobsDone.Load(), "sweep jobs finished (all cells done)"),
		ctr("server.jobs_failed", m.jobsFailed.Load(), "sweep jobs finished with at least one failed cell"),
		gauge("server.jobs_running", m.jobsRunning.Load(), "sweep jobs admitted and not yet finished"),
		ctr("server.cells_submitted", m.cellsSubmitted.Load(), "sweep cells queued"),
		ctr("server.cells_done", m.cellsDone.Load(), "sweep cells finished (any outcome)"),
		ctr("server.cells_failed", m.cellsFailed.Load(), "sweep cells that finished in error"),
		ctr("server.cells_invalid", m.cellsInvalid.Load(), "sweep cells skipped because the architecture cannot operate at that size"),
		gauge("server.cells_running", m.cellsRunning.Load(), "sweep cells currently simulating"),
		gauge("server.queue_depth", int64(queueDepth), "cells waiting in the work queue"),
		ctr("server.queue_invariant_failures", queueInvariantFailures, "queue size/ring divergences repaired in place (each one is a bug; alert on any increase)"),
		m.latSubmit.Sample("server.latency.submit_us", "us", "POST /v1/sweeps handler latency"),
		m.latStatus.Sample("server.latency.status_us", "us", "GET /v1/sweeps/{id} handler latency"),
		m.latResults.Sample("server.latency.results_us", "us", "GET /v1/sweeps/{id}/results stream duration"),
		m.latCell.Sample("server.latency.cell_us", "us", "per-cell simulation wall time (queue wait excluded)"),
	}
}
