package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x0102030405060708)
	if got := m.Read(0x1000, 8); got != 0x0102030405060708 {
		t.Errorf("read back %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x05060708 {
		t.Errorf("partial read %#x", got)
	}
	if got := m.ByteAt(0x1007); got != 0x01 {
		t.Errorf("little-endian top byte %#x", got)
	}
	if got := m.Read(0x9999_0000, 8); got != 0 {
		t.Errorf("unwritten memory should be zero, got %#x", got)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles page boundary
	m.Write(addr, 8, 0xDEADBEEFCAFEF00D)
	if got := m.Read(addr, 8); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("straddled read %#x", got)
	}
}

func TestMemoryBytesAndClone(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x2000, []byte("hello"))
	if string(m.ReadBytes(0x2000, 5)) != "hello" {
		t.Error("byte round trip failed")
	}
	c := m.Clone()
	c.SetByte(0x2000, 'H')
	if m.ByteAt(0x2000) != 'h' {
		t.Error("clone aliases original")
	}
	if m.Footprint() == 0 {
		t.Error("footprint should count touched pages")
	}
}

// Property: a write followed by a read at any address/size returns the
// value truncated to size bytes.
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, sizeRaw uint8, v uint64) bool {
		size := int(sizeRaw%8) + 1
		addr %= 1 << 40
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func testCache(ways int) *Cache {
	return NewCache(CacheConfig{Name: "T", SizeBytes: 1024, Ways: ways, BlockBits: 6, HitLat: 3}, nil, 100)
}

func TestCacheHitMiss(t *testing.T) {
	c := testCache(4) // 4 sets x 4 ways x 64B
	if lat := c.Access(0x100, false, CauseProgram); lat != 103 {
		t.Errorf("cold miss latency %d, want 103", lat)
	}
	if lat := c.Access(0x104, false, CauseProgram); lat != 3 {
		t.Errorf("same-block hit latency %d, want 3", lat)
	}
	if c.Stats.TotalAccesses() != 2 || c.Stats.TotalMisses() != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.MissRate() != 0.5 {
		t.Errorf("miss rate %v", c.Stats.MissRate())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := testCache(2) // 8 sets, 2 ways
	// Three blocks mapping to the same set (set 0): addresses k*8*64.
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a, false, CauseProgram)
	c.Access(b, false, CauseProgram)
	c.Access(a, false, CauseProgram) // a most recent
	c.Access(d, false, CauseProgram) // evicts b (LRU)
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("a and d should be resident")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted as LRU")
	}
}

func TestCacheWritebackCounted(t *testing.T) {
	c := testCache(1)                    // direct-mapped: 16 sets
	c.Access(0, true, CauseProgram)      // dirty
	c.Access(16*64, false, CauseProgram) // evicts dirty block
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Clean eviction: no additional writeback.
	c.Access(32*64, false, CauseProgram)
	if c.Stats.Writebacks != 1 {
		t.Errorf("clean eviction counted as writeback")
	}
}

func TestCacheCauseAccounting(t *testing.T) {
	c := testCache(4)
	c.Access(0, false, CauseProgram)
	c.Access(64, true, CauseSpillFill)
	c.Access(128, true, CauseSpillFill)
	c.Access(192, false, CauseWindowTrap)
	if c.Stats.Accesses[CauseProgram] != 1 ||
		c.Stats.Accesses[CauseSpillFill] != 2 ||
		c.Stats.Accesses[CauseWindowTrap] != 1 {
		t.Errorf("cause accounting wrong: %+v", c.Stats.Accesses)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: DL1 miss + L2 miss + memory.
	lat := h.DataAccess(0x8000, false, CauseProgram)
	if lat != 3+15+250 {
		t.Errorf("cold access latency %d, want %d", lat, 3+15+250)
	}
	// Now resident in both levels.
	if lat := h.DataAccess(0x8000, false, CauseProgram); lat != 3 {
		t.Errorf("DL1 hit latency %d", lat)
	}
	// Instruction fetch through IL1 hits the L2 block already fetched?
	// Different block: cold path costs IL1+L2+mem.
	if lat := h.InstFetch(0x20_0000); lat != 1+15+250 {
		t.Errorf("cold fetch latency %d", lat)
	}
	if lat := h.InstFetch(0x20_0000); lat != 1 {
		t.Errorf("warm fetch latency %d", lat)
	}
	// IL1 and DL1 share the L2: a data access to the fetched block hits L2.
	if lat := h.DataAccess(0x20_0000, false, CauseProgram); lat != 3+15 {
		t.Errorf("L2-shared access latency %d, want 18", lat)
	}
}

func TestCacheFlush(t *testing.T) {
	c := testCache(4)
	c.Access(0, true, CauseProgram)
	c.Access(64, false, CauseProgram)
	c.Flush()
	if c.Contains(0) || c.Contains(64) {
		t.Error("flush left lines resident")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("flush should write back the dirty line once, got %d", c.Stats.Writebacks)
	}
}

// Property: after accessing address A, Contains(A) always holds, and the
// number of resident blocks in a set never exceeds the way count.
func TestQuickCacheResidency(t *testing.T) {
	c := testCache(2)
	f := func(addrs []uint16) bool {
		for _, a16 := range addrs {
			a := uint64(a16) << 3
			c.Access(a, a16%3 == 0, CauseProgram)
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad geometry")
		}
	}()
	NewCache(CacheConfig{Name: "bad", SizeBytes: 1000, Ways: 3, BlockBits: 6, HitLat: 1}, nil, 10)
}
