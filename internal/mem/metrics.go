package mem

import "vca/internal/metrics"

// Slug returns the AccessCause's metric-name form (String returns the
// human form, which contains characters unsuitable for counter names).
func (c AccessCause) Slug() string {
	switch c {
	case CauseProgram:
		return "program"
	case CauseSpillFill:
		return "spill_fill"
	case CauseWindowTrap:
		return "window_trap"
	}
	return "unknown"
}

// RegisterMetrics exposes one cache level's traffic counters under
// prefix (e.g. "mem.dl1"): per-cause accesses and misses, plus
// writebacks. The registry adopts pointers into Stats, so the cache
// keeps bumping its own fields and export reads them in place.
//
// The cache model is blocking (no MSHRs), so there are no
// outstanding-miss or merge counters to report; a miss's full latency is
// charged to the access that triggered it (see docs/OBSERVABILITY.md).
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	for cause := AccessCause(0); cause < NumCauses; cause++ {
		r.RegisterCounter(prefix+".accesses."+cause.Slug(), "accesses",
			c.cfg.Name+" accesses caused by "+cause.String()+" traffic",
			(*metrics.Counter)(&c.Stats.Accesses[cause]))
		r.RegisterCounter(prefix+".misses."+cause.Slug(), "misses",
			c.cfg.Name+" misses caused by "+cause.String()+" traffic",
			(*metrics.Counter)(&c.Stats.Misses[cause]))
	}
	r.RegisterCounter(prefix+".writebacks", "blocks",
		"dirty blocks written back from "+c.cfg.Name,
		(*metrics.Counter)(&c.Stats.Writebacks))
}

// RegisterMetrics registers every level of the hierarchy under the
// mem.* namespace.
func (h *Hierarchy) RegisterMetrics(r *metrics.Registry) {
	h.IL1.RegisterMetrics(r, "mem.il1")
	h.DL1.RegisterMetrics(r, "mem.dl1")
	h.L2.RegisterMetrics(r, "mem.l2")
}
