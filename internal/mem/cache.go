package mem

import "fmt"

// AccessCause tags why a data-cache access happened. Figure 5 and the
// §4.3 discussion depend on separating ordinary program loads/stores from
// the register traffic added by VCA spill/fill and by conventional
// register-window overflow/underflow handling.
type AccessCause uint8

const (
	CauseProgram    AccessCause = iota // loads/stores in the binary
	CauseSpillFill                     // VCA ASTQ spill and fill operations
	CauseWindowTrap                    // conventional window overflow/underflow copying
	NumCauses
)

func (c AccessCause) String() string {
	switch c {
	case CauseProgram:
		return "program"
	case CauseSpillFill:
		return "spill/fill"
	case CauseWindowTrap:
		return "window-trap"
	}
	return "?"
}

// CacheConfig shapes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	BlockBits int // log2 of block size
	HitLat    int // cycles on hit
}

// CacheStats counts traffic at one level.
type CacheStats struct {
	Accesses   [NumCauses]uint64
	Misses     [NumCauses]uint64
	Writebacks uint64
}

// TotalAccesses sums accesses across causes.
func (s *CacheStats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.Accesses {
		t += v
	}
	return t
}

// TotalMisses sums misses across causes.
func (s *CacheStats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}

// MissRate returns misses/accesses (0 when idle).
func (s *CacheStats) MissRate() float64 {
	a := s.TotalAccesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(a)
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is one timing-only set-associative write-back, write-allocate
// cache level with true-LRU replacement.
type Cache struct {
	cfg    CacheConfig
	sets   int
	lines  [][]cacheLine // [set][way]
	tick   uint64
	next   *Cache // nil = backed by main memory
	memLat int
	Stats  CacheStats

	// Geometry derived once in NewCache; index/victimAddr are on the
	// per-access hot path and must not recompute log2(sets).
	blockShift uint
	setShift   uint
	setMask    uint64
}

// NewCache builds a cache level. next may be nil, in which case misses cost
// memLat. The configuration must describe a power-of-two geometry.
func NewCache(cfg CacheConfig, next *Cache, memLat int) *Cache {
	block := 1 << cfg.BlockBits
	if cfg.SizeBytes%(block*cfg.Ways) != 0 {
		panic(fmt.Sprintf("mem: cache %s: size %d not divisible by ways*block", cfg.Name, cfg.SizeBytes))
	}
	sets := cfg.SizeBytes / (block * cfg.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	lines := make([][]cacheLine, sets)
	backing := make([]cacheLine, sets*cfg.Ways)
	for i := range lines {
		lines[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg: cfg, sets: sets, lines: lines, next: next, memLat: memLat,
		blockShift: uint(cfg.BlockBits),
		setShift:   uint(len2(sets)),
		setMask:    uint64(sets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// CheckInvariants validates the directory's structural invariants: no
// set may hold two valid lines with the same tag (a duplicate makes hits
// nondeterministic in way order), and LRU stamps may not exceed the
// cache's access clock. Used by the core's opt-in invariant checker.
func (c *Cache) CheckInvariants() error {
	for set, ways := range c.lines {
		for i := range ways {
			if !ways[i].valid {
				continue
			}
			if ways[i].lru > c.tick {
				return fmt.Errorf("mem: %s set %d way %d has LRU stamp %d beyond clock %d",
					c.cfg.Name, set, i, ways[i].lru, c.tick)
			}
			for j := i + 1; j < len(ways); j++ {
				if ways[j].valid && ways[j].tag == ways[i].tag {
					return fmt.Errorf("mem: %s set %d holds tag %#x in ways %d and %d",
						c.cfg.Name, set, ways[i].tag, i, j)
				}
			}
		}
	}
	return nil
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.blockShift
	return int(blk & c.setMask), blk >> c.setShift
}

func len2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Access performs a timing access, recursing to the next level on a miss.
// It returns the total latency in cycles.
func (c *Cache) Access(addr uint64, write bool, cause AccessCause) int {
	c.tick++
	c.Stats.Accesses[cause]++
	set, tag := c.index(addr)
	ways := c.lines[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			return c.cfg.HitLat
		}
	}
	// Miss: fetch from below, replace LRU way.
	c.Stats.Misses[cause]++
	lat := c.cfg.HitLat + c.fill(addr, cause)
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Stats.Writebacks++
		// Write-back traffic to the next level is timing-overlapped with
		// the demand fill (modeled as free, standard for write buffers),
		// but still counted at the next level as a write access.
		if c.next != nil {
			c.next.countWriteback(c.victimAddr(set, ways[victim].tag))
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.tick}
	return lat
}

func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	return (tag<<c.setShift | uint64(set)) << c.blockShift
}

// countWriteback records an eviction write arriving from the level above
// without charging demand latency. It updates (or allocates) the line.
func (c *Cache) countWriteback(addr uint64) {
	c.tick++
	set, tag := c.index(addr)
	ways := c.lines[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = true
			ways[i].lru = c.tick
			return
		}
	}
	// Victim buffer bypass: line not present below; treat as allocated.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: true, lru: c.tick}
}

// fill models the latency of obtaining the block from the level below.
func (c *Cache) fill(addr uint64, cause AccessCause) int {
	if c.next == nil {
		return c.memLat
	}
	return c.next.Access(addr, false, cause)
}

// Contains reports whether addr's block is currently resident (testing
// hook).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.lines[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines (counts dirty lines as writebacks).
func (c *Cache) Flush() {
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid && c.lines[s][w].dirty {
				c.Stats.Writebacks++
			}
			c.lines[s][w] = cacheLine{}
		}
	}
}
