package mem

// HierarchyConfig describes the full memory system of Table 1.
type HierarchyConfig struct {
	IL1      CacheConfig
	DL1      CacheConfig
	L2       CacheConfig
	MemLat   int
	DL1Ports int // read/write ports on the data cache (2 baseline, 1 in Fig. 6)
}

// DefaultHierarchyConfig returns the paper's Table 1 memory parameters:
// 64K 4-way DL1 with 3-cycle hits, 64K 4-way IL1 with 1-cycle hits,
// 1M 4-way L2 with 15-cycle hits, 250-cycle memory, 2 DL1 ports.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:      CacheConfig{Name: "IL1", SizeBytes: 64 << 10, Ways: 4, BlockBits: 6, HitLat: 1},
		DL1:      CacheConfig{Name: "DL1", SizeBytes: 64 << 10, Ways: 4, BlockBits: 6, HitLat: 3},
		L2:       CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 4, BlockBits: 6, HitLat: 15},
		MemLat:   250,
		DL1Ports: 2,
	}
}

// Hierarchy bundles the cache levels over a shared L2.
type Hierarchy struct {
	cfg HierarchyConfig
	IL1 *Cache
	DL1 *Cache
	L2  *Cache
}

// NewHierarchy builds the three-level system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	l2 := NewCache(cfg.L2, nil, cfg.MemLat)
	return &Hierarchy{
		cfg: cfg,
		IL1: NewCache(cfg.IL1, l2, 0),
		DL1: NewCache(cfg.DL1, l2, 0),
		L2:  l2,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// DataAccess performs a timing access through DL1 and returns its latency.
func (h *Hierarchy) DataAccess(addr uint64, write bool, cause AccessCause) int {
	return h.DL1.Access(addr, write, cause)
}

// InstFetch performs a timing fetch through IL1 and returns its latency.
func (h *Hierarchy) InstFetch(addr uint64) int {
	return h.IL1.Access(addr, false, CauseProgram)
}

// DataAccesses returns the DL1 stats — the quantity Figures 5 plots.
func (h *Hierarchy) DataAccesses() CacheStats { return h.DL1.Stats }

// CheckInvariants validates every level's directory structure (see
// Cache.CheckInvariants).
func (h *Hierarchy) CheckInvariants() error {
	for _, c := range []*Cache{h.IL1, h.DL1, h.L2} {
		if err := c.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
