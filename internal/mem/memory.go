// Package mem provides the simulated memory system: a sparse 64-bit
// physical memory holding all program data, and a timing-only
// set-associative write-back cache hierarchy (IL1/DL1/L2 + main memory)
// matching the paper's Table 1.
//
// The functional/timing split is deliberate: caches model latency and
// traffic only, while data always lives in Memory, so functional
// correctness never depends on cache state and the emulator, the
// detailed core, and co-simulation all read the same bytes. Memory is
// organized as sparse 4 KiB pages with a one-entry page cache and
// word-granular fast paths (see DESIGN.md §8).
//
// The hierarchy matters to the paper because VCA turns register
// pressure into memory traffic: spills and fills are ordinary data-cache
// accesses competing with program loads and stores for DL1 ports
// (§2.2.2). Every access is therefore tagged with an AccessCause —
// CauseProgram, CauseSpillFill (VCA ASTQ traffic), or CauseWindowTrap
// (the conventional window model's injected whole-window copies, §4.1) —
// and each cache level keeps per-cause access and miss counts. That
// split is exactly the decomposition of Figure 5 (data-cache accesses by
// source) and of the §4.3 SMT cache-traffic claims, and it is exported
// through the metrics registry as mem.<level>.accesses.<cause> /
// .misses.<cause> (metrics.go; catalogue in docs/OBSERVABILITY.md).
//
// The caches are blocking — no MSHRs, no miss merging: a miss's full
// latency is charged to the access that triggered it, and the simulated
// machine's only memory-level parallelism is across the DL1's ports.
// This is the paper's (and M5's default) level of memory-system detail;
// the relationships the figures depend on are traffic ratios, which
// blocking caches preserve.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
)

// pageBits gives 4 KiB pages for the sparse memory map.
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse little-endian byte-addressable memory. The zero value
// is ready to use; unwritten locations read as zero.
//
// The page map is consulted once per access, not once per byte: whole-word
// accesses that stay inside one page go through fixed-width fast paths,
// and a single-entry page cache (a software TLB) short-circuits the map
// lookup entirely for the common same-page-as-last-time case.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// Last-page cache. lastPage is nil until the first hit is installed;
	// it is only ever set alongside lastKey, so a key match with a non-nil
	// page is always valid.
	lastKey  uint64
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	key := addr >> pageBits
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read loads size bytes little-endian (size 1–8). Accesses may straddle
// pages; those fall back to the byte loop.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off : off+8])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off : off+4]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off : off+2]))
		case 1:
			return uint64(p[off])
		default:
			var v uint64
			for i := 0; i < size; i++ {
				v |= uint64(p[off+i]) << (8 * i)
			}
			return v
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes little-endian (size 1–8).
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := int(addr & (pageSize - 1))
	if off+size <= pageSize {
		p := m.page(addr, true)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:off+8], v)
		case 4:
			binary.LittleEndian.PutUint32(p[off:off+4], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(p[off:off+2], uint16(v))
		case 1:
			p[off] = byte(v)
		default:
			for i := 0; i < size; i++ {
				p[off+i] = byte(v >> (8 * i))
			}
		}
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr, one page at a time.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		a := addr + uint64(i)
		off := int(a & (pageSize - 1))
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p := m.page(a, false); p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		} // absent pages read as zero, already the slice default
		i += chunk
	}
	return out
}

// WriteBytes copies data into memory starting at addr, one page at a
// time. It satisfies program.Loader.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for i := 0; i < len(data); {
		a := addr + uint64(i)
		off := int(a & (pageSize - 1))
		chunk := pageSize - off
		if chunk > len(data)-i {
			chunk = len(data) - i
		}
		copy(m.page(a, true)[off:off+chunk], data[i:i+chunk])
		i += chunk
	}
}

// Footprint returns the number of distinct pages touched, a cheap working-
// set statistic used by the workload clustering step.
func (m *Memory) Footprint() int { return len(m.pages) }

// PageImage is one resident page of a memory snapshot: the page's base
// address and a copy of its PageSize bytes.
type PageImage struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"`
}

// PageSize is the snapshot/restore granularity (the sparse map's page
// size).
const PageSize = pageSize

// Snapshot returns a deep copy of every resident non-zero page, sorted by
// address — the deterministic serializable form checkpoints embed
// (internal/emu). All-zero pages are dropped: an unwritten page and an
// absent page are indistinguishable to Read, so dropping them keeps the
// image content-addressable regardless of touch order.
func (m *Memory) Snapshot() []PageImage {
	keys := make([]uint64, 0, len(m.pages))
	//lint:maporder keys are collected then sorted before the image is built
	for k, p := range m.pages {
		if *p != [pageSize]byte{} {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	out := make([]PageImage, len(keys))
	for i, k := range keys {
		data := make([]byte, pageSize)
		copy(data, m.pages[k][:])
		out[i] = PageImage{Addr: k << pageBits, Data: data}
	}
	return out
}

// Restore replaces the memory's entire contents with the snapshot: every
// existing page is dropped and the snapshot's pages are installed. Pages
// shorter than PageSize are zero-filled at the tail; an unaligned or
// oversized page is an error.
func (m *Memory) Restore(pages []PageImage) error {
	m.pages = make(map[uint64]*[pageSize]byte, len(pages))
	m.lastKey, m.lastPage = 0, nil
	for _, pg := range pages {
		if pg.Addr&(pageSize-1) != 0 {
			return fmt.Errorf("mem: snapshot page at unaligned address %#x", pg.Addr)
		}
		if len(pg.Data) > pageSize {
			return fmt.Errorf("mem: snapshot page at %#x has %d bytes (max %d)", pg.Addr, len(pg.Data), pageSize)
		}
		p := new([pageSize]byte)
		copy(p[:], pg.Data)
		m.pages[pg.Addr>>pageBits] = p
	}
	return nil
}

// EqualContents reports whether two memories hold identical bytes
// (ignoring page residency: an absent page equals an all-zero one). Used
// by the state-transplant audit and checkpoint tests.
func (m *Memory) EqualContents(o *Memory) bool {
	a, b := m.Snapshot(), o.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (used by tests that fork architectural state).
// The clone starts with a cold page cache.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	return c
}
