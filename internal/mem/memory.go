// Package mem provides the simulated memory system: a sparse 64-bit
// physical memory holding program data, and a timing-only set-associative
// write-back cache hierarchy (IL1/DL1/L2 + main memory) matching the
// paper's Table 1. Caches model latency and traffic; data always lives in
// Memory, so functional correctness never depends on cache state.
package mem

// pageBits gives 4 KiB pages for the sparse memory map.
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse little-endian byte-addressable memory. The zero value
// is ready to use; unwritten locations read as zero.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte stores one byte.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read loads size bytes little-endian (size 1–8). Accesses may straddle
// pages.
func (m *Memory) Read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes little-endian (size 1–8).
func (m *Memory) Write(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// WriteBytes copies data into memory starting at addr. It satisfies
// program.Loader.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint64(i), b)
	}
}

// Footprint returns the number of distinct pages touched, a cheap working-
// set statistic used by the workload clustering step.
func (m *Memory) Footprint() int { return len(m.pages) }

// Clone returns a deep copy (used by tests that fork architectural state).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	return c
}
