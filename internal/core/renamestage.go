package core

import (
	"fmt"

	"vca/internal/isa"
	"vca/internal/program"
	"vca/internal/rename"
)

// renameStage renames up to Width instructions in order: injected window
// trap operations first (per thread), then fetched instructions that have
// traversed the front end. VCA machines additionally respect the rename
// table port budget and the ASTQ write budget (§3), stalling in order when
// either is exhausted.
//
//vca:hot
func (m *Machine) renameStage() {
	// Per-cycle VCA budgets (carrying over any overshoot as debt).
	if m.cfg.Rename == RenameVCA {
		m.portCredit += m.cfg.VCA.Ports
		if m.portCredit > m.cfg.VCA.Ports {
			m.portCredit = m.cfg.VCA.Ports
		}
		m.astqCredit += m.cfg.VCA.ASTQWrites
		if m.astqCredit > m.cfg.VCA.ASTQWrites {
			m.astqCredit = m.cfg.VCA.ASTQWrites
		}
	}

	budget := m.cfg.Width
	renamed := 0

	// Injected window-trap memory operations rename with priority.
	for _, th := range m.threads {
		for budget > 0 && th.injectPending() > 0 {
			u := th.pendingInject[th.injectHead]
			if !m.renameOne(th, u) { // renameOne recorded the stall cause
				return
			}
			th.popInject()
			m.cnt.renameInjected++
			budget--
			renamed++
		}
	}

	for budget > 0 && m.fetchHead < len(m.fetchQ) {
		fe := m.fetchQ[m.fetchHead]
		if fe.readyAt > m.cycle {
			if renamed == 0 {
				m.noteRenameStall(m.threads[fe.u.thread], rsEmpty)
			}
			return
		}
		th := m.threads[fe.u.thread]
		if m.cycle < th.renameBlockedUntil {
			m.noteRenameStall(th, rsWalk)
			return // recovery walk in progress (in-order stall)
		}
		if !m.renameOne(th, fe.u) { // renameOne recorded the stall cause
			m.stats.RenameStallCycles++
			return
		}
		m.popFetchQ(th)
		budget--
		renamed++
	}
	if renamed == 0 && !m.Done() {
		m.noteRenameStall(nil, rsEmpty)
	}
}

// popFetchQ consumes the head fetch-queue entry. The queue is a slice
// with a head index rather than a re-sliced slice so the backing array is
// recycled instead of reallocated; once the consumed prefix dominates,
// the live tail is copied down in place.
func (m *Machine) popFetchQ(th *thread) {
	th.inFetchQ--
	m.fetchHead++
	if m.fetchHead == len(m.fetchQ) {
		m.fetchQ = m.fetchQ[:0]
		m.fetchHead = 0
	} else if m.fetchHead >= 64 && m.fetchHead*2 >= len(m.fetchQ) {
		n := copy(m.fetchQ, m.fetchQ[m.fetchHead:])
		m.fetchQ = m.fetchQ[:n]
		m.fetchHead = 0
	}
}

// renameOne renames and dispatches a single uop. It returns false when a
// structural hazard stalls rename this cycle (the uop stays queued).
func (m *Machine) renameOne(th *thread, u *uop) bool {
	if m.robLen() >= m.cfg.ROBSize {
		m.stats.ROBFullStalls++
		m.noteRenameStall(th, rsROBFull)
		return false
	}
	if m.iqCount >= m.cfg.IQSize {
		m.stats.IQFullStalls++
		m.noteRenameStall(th, rsIQFull)
		return false
	}
	if u.isStore() && m.lsqCount() >= m.cfg.LSQSize {
		m.noteRenameStall(th, rsLSQFull)
		return false
	}

	srcs, dest := m.operandsOf(th, u)
	ok := false
	switch m.cfg.Rename {
	case RenameConventional:
		ok = m.renameConventional(th, u, srcs, dest)
		if !ok {
			m.noteRenameStall(th, rsNoPhys)
		}
	case RenameVCA:
		ok = m.renameVCA(th, u, srcs, dest) // records its own stall cause
	}
	if !ok {
		return false
	}

	// Window bookkeeping: calls/returns rotate the speculative window
	// after their own operands rename (a return reads its target register
	// in the callee's window).
	if !u.injected {
		switch m.cfg.Window {
		case WindowVCA, WindowIdeal:
			// Clamp rotation to the thread's register space: wrong-path
			// returns at depth zero (or runaway wrong-path recursion)
			// must not escape into another context's backing store.
			delta := u.inst.WindowDelta()
			_, wbpTop := program.ThreadRegSpace(th.id)
			next := th.specWBP + uint64(delta)
			if delta != 0 && next <= wbpTop && next > th.gbp+4096 {
				u.wbpDelta = delta
				th.specWBP = next
			}
		case WindowConventional:
			switch u.class {
			case isa.ClassCall:
				u.depDelta = 1
			case isa.ClassRet:
				if th.specDepth > 0 {
					u.depDelta = -1
				}
			}
			th.specDepth += u.depDelta
		}
	}

	m.rob = append(m.rob, u)
	th.robCount++
	m.cnt.renameUops++
	u.renamedAt = uint32(m.cycle)
	u.inIQ = true
	m.iqCount++
	if u.isStore() {
		m.lsq = append(m.lsq, u)
		u.inLSQ = true
		th.lsqStores++
	}
	// Wire into the wakeup network last: the rename path above (including
	// applyVCAOps' ideal instant fills) must have finalized source
	// readiness first.
	m.registerDispatch(u)
	return true
}

func (m *Machine) lsqCount() int { return len(m.lsq) }

// operandsOf returns a uop's architectural operands positionally:
// srcs[0] is SrcA, srcs[1] is SrcB; RegNone marks absent operands and
// hardwired zero registers (which read as zero and are never renamed).
// For fetched instructions the operands were precomputed at fetch from
// the program's predecoded metadata.
func (m *Machine) operandsOf(th *thread, u *uop) (srcs [2]isa.Reg, dest isa.Reg) {
	if u.injected {
		// Injected trap ops address logical slots directly; handled by
		// the per-substrate rename paths.
		return [2]isa.Reg{isa.RegNone, isa.RegNone}, isa.RegNone
	}
	if u.class == isa.ClassSyscall {
		srcs[0], srcs[1] = isa.RegNone, isa.RegNone
		for i, r := range syscallSrcs(u.inst.Imm) {
			srcs[i] = r
		}
		return srcs, isa.RegNone
	}
	return u.renSrcs, u.renDest
}

// renameConventional maps sources through the map table and allocates the
// destination from the free list.
func (m *Machine) renameConventional(th *thread, u *uop, srcs [2]isa.Reg, dest isa.Reg) bool {
	if u.injected {
		if u.injStore {
			u.nsrc = 2
			u.srcRegs[0] = isa.RegNone
			u.srcPhys[0] = m.conv.Lookup(th.id, u.injLogical)
			return true
		}
		newP, prev, ok := m.conv.AllocateDest(th.id, u.injLogical)
		if !ok {
			return false
		}
		u.destReg = isa.RegNone
		u.destLog = u.injLogical
		u.destPhys, u.destPrev = newP, prev
		m.physReady[newP] = false
		return true
	}

	for i, r := range srcs {
		u.srcRegs[i] = r
		if r != isa.RegNone {
			u.srcPhys[i] = m.conv.Lookup(th.id, m.logicalOf(th, r, false))
		}
	}
	u.nsrc = 2
	if dest != isa.RegNone {
		log := m.logicalOf(th, dest, false)
		newP, prev, ok := m.conv.AllocateDest(th.id, log)
		if !ok {
			return false
		}
		u.destReg = dest
		u.destLog = log
		u.destPhys, u.destPrev = newP, prev
		m.physReady[newP] = false
	} else {
		u.destReg = isa.RegNone
	}
	return true
}

// renameVCA maps operands through the tagged rename table, generating
// spills and fills (§2.1.1). Ideal-window machines apply the generated
// operations instantaneously and for free.
func (m *Machine) renameVCA(th *thread, u *uop, srcs [2]isa.Reg, dest isa.Reg) bool {
	ideal := m.cfg.Window == WindowIdeal

	if !ideal {
		if m.astqCredit <= 0 {
			m.noteRenameStall(th, rsVCAASTQ)
			return false
		}
		if m.portCredit <= 0 {
			m.noteRenameStall(th, rsVCAPorts)
			return false
		}
		if m.astqLen() >= m.cfg.ASTQSize {
			m.noteRenameStall(th, rsVCAASTQ)
			return false
		}
	}

	// Compute logical register addresses; duplicate addresses combine
	// into one lookup/port. At most three operands, so the duplicate
	// check is direct comparison rather than a map.
	var addrs [2]uint64
	for i, r := range srcs {
		if r != isa.RegNone {
			addrs[i] = m.regAddr(th, r)
		}
	}
	var destAddr uint64
	if dest != isa.RegNone {
		destAddr = m.regAddr(th, dest)
	}
	hasA, hasB := srcs[0] != isa.RegNone, srcs[1] != isa.RegNone
	lookups := 0
	if hasA {
		lookups++
	}
	if hasB && !(hasA && addrs[1] == addrs[0]) {
		lookups++
	}
	if dest != isa.RegNone &&
		!(hasA && destAddr == addrs[0]) && !(hasB && destAddr == addrs[1]) {
		lookups++
	}
	if !ideal && m.portCredit < lookups {
		m.noteRenameStall(th, rsVCAPorts)
		return false
	}

	ops := m.opsScratch[:0]
	var pinned [2]int
	npinned := 0

	for i, r := range srcs {
		if r == isa.RegNone {
			continue
		}
		phys, _, ok := m.vca.RenameSource(addrs[i], &ops)
		if !ok {
			m.noteRenameStall(th, rsVCATable)
			m.unpinVCASources(pinned[:npinned])
			m.applyVCAOps(th, ops, ideal) // evictions already happened
			m.opsScratch = ops[:0]
			return false
		}
		pinned[npinned] = phys
		npinned++
		u.srcRegs[i] = r
		u.srcPhys[i] = phys
	}
	u.nsrc = 2

	if dest != isa.RegNone {
		newP, prev, ok := m.vca.RenameDest(destAddr, &ops)
		if !ok {
			m.noteRenameStall(th, rsVCATable)
			m.unpinVCASources(pinned[:npinned])
			m.applyVCAOps(th, ops, ideal)
			m.opsScratch = ops[:0]
			return false
		}
		u.destReg = dest
		u.destAddr = destAddr
		u.destPhys, u.destPrev = newP, prev
		m.physReady[newP] = false
	} else {
		u.destReg = isa.RegNone
	}

	m.portCredit -= lookups
	m.astqCredit -= len(ops)
	m.applyVCAOps(th, ops, ideal)
	m.opsScratch = ops[:0]
	return true
}

// unpinVCASources undoes the source pins of a partially renamed uop
// when a later operand stalls the rename (hoisted out of renameVCA so
// the undo path costs no closure allocation per rename).
//
//vca:hot
func (m *Machine) unpinVCASources(pinned []int) {
	for _, p := range pinned {
		m.vca.ReleaseSource(p)
		m.vca.ReleaseRetired(p)
	}
}

// applyVCAOps routes renamer-generated spills and fills either to the
// ASTQ (normal VCA) or applies them instantly (ideal windows). Each
// operation belongs to the thread that owns the logical register address —
// an eviction during thread A's rename may spill thread B's register,
// which must land in B's backing store.
func (m *Machine) applyVCAOps(th *thread, ops []rename.MemOp, ideal bool) {
	ops = append(ops, m.vca.DrainRSIDOps()...)
	for _, op := range ops {
		owner := m.ownerOf(op.Addr)
		if ideal {
			if op.IsSpill {
				owner.mem.Write(op.Addr, 8, op.Value)
			} else {
				m.physVal[op.Phys] = owner.mem.Read(op.Addr, 8)
				m.physReady[op.Phys] = true
				m.wakeConsumers(op.Phys)
			}
			continue
		}
		if !op.IsSpill {
			m.physReady[op.Phys] = false
		}
		m.astqSeq++
		m.astq = append(m.astq, astqEntry{op: op, thread: owner.id, enq: m.astqSeq})
	}
}

// ownerOf maps a logical-register backing address to its thread context.
func (m *Machine) ownerOf(addr uint64) *thread {
	t := int((addr - program.RegSpaceBase) / program.RegSpaceStride)
	if t < 0 || t >= len(m.threads) {
		panic(fmt.Sprintf("core: register address %#x belongs to no thread", addr))
	}
	return m.threads[t]
}
