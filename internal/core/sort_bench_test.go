package core

import (
	"math/rand"
	"testing"
)

// Benchmarks for sortBySeq on the set sizes the writeback stage actually
// produces: the resolved-control list rarely exceeds the machine width,
// and is typically 1-4 entries. sortInsertion below is the replaced
// hand-rolled O(n²) implementation, kept as the benchmark baseline so
// the cost of slices.SortFunc on these tiny inputs stays visible:
//
//	go test ./internal/core -bench 'BenchmarkSort' -benchtime 200000x
//
// Measured: slices.SortFunc pays a fixed dispatch overhead of ~2-15ns
// per call on 1-4 element sets (8.5 vs 6.2ns at n=1, 29 vs 14ns at
// n=4). Control instructions resolve on a minority of cycles and the
// simulator runs at ~200ns per instruction, so the end-to-end effect on
// BenchmarkCorePipeline is below measurement noise — while SortFunc
// removes the quadratic cliff if a wide machine ever resolves many
// branches in one cycle.
func sortInsertion(us []*uop) {
	for i := 1; i < len(us); i++ {
		u := us[i]
		j := i - 1
		for j >= 0 && us[j].seq > u.seq {
			us[j+1] = us[j]
			j--
		}
		us[j+1] = u
	}
}

// benchSets builds reproducible shuffled resolved sets of one size.
func benchSets(n, count int) [][]*uop {
	rng := rand.New(rand.NewSource(int64(n)))
	sets := make([][]*uop, count)
	for i := range sets {
		s := make([]*uop, n)
		for k := range s {
			s[k] = &uop{seq: uint64(rng.Intn(1000))}
		}
		sets[i] = s
	}
	return sets
}

func benchSort(b *testing.B, n int, sort func([]*uop)) {
	sets := benchSets(n, 64)
	scratch := make([]*uop, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, sets[i&63])
		sort(scratch)
	}
}

func BenchmarkSortBySeq1(b *testing.B)     { benchSort(b, 1, sortBySeq) }
func BenchmarkSortBySeq2(b *testing.B)     { benchSort(b, 2, sortBySeq) }
func BenchmarkSortBySeq4(b *testing.B)     { benchSort(b, 4, sortBySeq) }
func BenchmarkSortBySeq8(b *testing.B)     { benchSort(b, 8, sortBySeq) }
func BenchmarkSortInsertion1(b *testing.B) { benchSort(b, 1, sortInsertion) }
func BenchmarkSortInsertion2(b *testing.B) { benchSort(b, 2, sortInsertion) }
func BenchmarkSortInsertion4(b *testing.B) { benchSort(b, 4, sortInsertion) }
func BenchmarkSortInsertion8(b *testing.B) { benchSort(b, 8, sortInsertion) }

// TestSortBySeqMatchesInsertion pins the two implementations to the same
// ordering on every size the writeback stage produces.
func TestSortBySeqMatchesInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(8)
		a := make([]*uop, n)
		for i := range a {
			a[i] = &uop{seq: uint64(rng.Intn(32))}
		}
		b := append([]*uop{}, a...)
		sortBySeq(a)
		sortInsertion(b)
		for i := range a {
			if a[i].seq != b[i].seq {
				t.Fatalf("trial %d: order differs at %d", trial, i)
			}
		}
	}
}
