package core

import (
	"math"

	"vca/internal/branch"
	"vca/internal/mem"
	"vca/internal/metrics"
	"vca/internal/rename"
)

func mathFloat64frombits(bits uint64) float64 { return math.Float64frombits(bits) }

// ThreadResult summarizes one hardware thread's execution.
type ThreadResult struct {
	Committed uint64
	Done      bool
	ExitCode  int64
	Output    string
	CPI       float64
}

// Result is everything the experiment harness consumes from one run.
type Result struct {
	Cycles  uint64
	Threads []ThreadResult

	DL1 mem.CacheStats
	IL1 mem.CacheStats
	L2  mem.CacheStats

	Mispredicts       uint64
	Squashed          uint64
	WindowTraps       uint64
	SpillsIssued      uint64
	FillsIssued       uint64
	RenameStallCycles uint64

	VCAStats *rename.VCAStats // nil on conventional machines
	Branch   branchSummary

	// Metrics is the machine's full event-counter registry (see
	// internal/metrics and docs/OBSERVABILITY.md); exporters read it via
	// Snapshot/WriteJSON/WriteCSV/CounterMap. It is excluded from JSON
	// serialization: a Result restored from the result cache
	// (internal/simcache) carries the flat counter map instead and has a
	// nil registry.
	Metrics *metrics.Registry `json:"-"`
}

type branchSummary struct {
	CondLookups uint64
	CondMispred uint64
	RASPredicts uint64
	BTBMisses   uint64
}

// IPC returns total committed instructions per cycle.
func (r *Result) IPC() float64 {
	var total uint64
	for _, t := range r.Threads {
		total += t.Committed
	}
	if r.Cycles == 0 {
		return 0
	}
	return float64(total) / float64(r.Cycles)
}

// DL1Accesses returns the total data-cache accesses — the Figure 5 metric
// (program + spill/fill + window-trap traffic, speculative included).
func (r *Result) DL1Accesses() uint64 { return r.DL1.TotalAccesses() }

func (m *Machine) result() *Result {
	m.stats.Cycles = m.cycle // mirror into the registered core.cycles counter
	r := &Result{
		Cycles:            m.cycle,
		Metrics:           m.metrics,
		DL1:               m.hier.DL1.Stats,
		IL1:               m.hier.IL1.Stats,
		L2:                m.hier.L2.Stats,
		Mispredicts:       m.stats.Mispredicts,
		Squashed:          m.stats.Squashed,
		WindowTraps:       m.stats.WindowTraps,
		SpillsIssued:      m.stats.SpillsIssued,
		FillsIssued:       m.stats.FillsIssued,
		RenameStallCycles: m.stats.RenameStallCycles,
		Branch: branchSummary{
			CondLookups: m.bp.CondLookups,
			CondMispred: m.bp.CondMispred,
			RASPredicts: m.bp.RASPredicts,
			BTBMisses:   m.bp.BTBMisses,
		},
	}
	if m.vca != nil {
		s := m.vca.Stats
		r.VCAStats = &s
	}
	for _, th := range m.threads {
		tr := ThreadResult{
			Committed: th.committed,
			Done:      th.done,
			ExitCode:  th.exitCode,
			Output:    th.output.String(),
		}
		if th.committed > 0 {
			tr.CPI = float64(m.cycle) / float64(th.committed)
		}
		r.Threads = append(r.Threads, tr)
	}
	return r
}

// Predictor exposes the branch predictor for white-box tests.
func (m *Machine) Predictor() *branch.Predictor { return m.bp }

// Cycle returns the current cycle (for tests).
func (m *Machine) Cycle() uint64 { return m.cycle }
