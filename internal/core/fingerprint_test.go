package core

import (
	"strings"
	"testing"

	"vca/internal/metrics"
)

func TestFingerprintStableAndComplete(t *testing.T) {
	cfg := DefaultConfig(RenameVCA, WindowVCA, 2, 128)
	fp := cfg.Fingerprint()
	if fp != cfg.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	// Every semantic knob the experiments sweep must appear by name.
	for _, want := range []string{"Threads=2", "PhysRegs=128", "Rename=1", "Window=2",
		"Width=", "ROBSize=", "StopAfter=", "VCA{", "Hier{", "BP{", "DL1Ports="} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint missing %q:\n%s", want, fp)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig(RenameConventional, WindowNone, 1, 256)
	fp := base.Fingerprint()

	mutations := []func(*Config){
		func(c *Config) { c.PhysRegs = 192 },
		func(c *Config) { c.Threads = 2 },
		func(c *Config) { c.Width = 8 },
		func(c *Config) { c.StopAfter = 1 },
		func(c *Config) { c.MaxCycles = 7 },
		func(c *Config) { c.Hier.DL1Ports = 1 },
		func(c *Config) { c.Hier.DL1.SizeBytes = 4 << 10 },
		func(c *Config) { c.VCA.Ways = 7 },
		func(c *Config) { c.BP.RASDepth = 3 },
		func(c *Config) { c.RecoveryWalk = !c.RecoveryWalk },
		func(c *Config) { c.TrapPenalty = 99 },
	}
	for i, mutate := range mutations {
		c := base
		mutate(&c)
		if c.Fingerprint() == fp {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestFingerprintIgnoresObservability(t *testing.T) {
	base := DefaultConfig(RenameConventional, WindowNone, 1, 256)
	fp := base.Fingerprint()

	c := base
	c.CoSim = !c.CoSim
	c.Check = true
	c.TraceWriter = &strings.Builder{}
	c.ChromeTrace = metrics.NewTraceRecorder()
	if c.Fingerprint() != fp {
		t.Error("observability-only fields changed the fingerprint")
	}
}
