package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vca/internal/asm"
	"vca/internal/minic"
	"vca/internal/progen"
	"vca/internal/program"
	"vca/internal/workload"
)

// TestCheckerMatrix runs every benchmark on every canonical machine
// model with the cycle-level invariant checker (and co-simulation)
// enabled. The acceptance bar for the checker itself: zero violations
// across the full workload x model matrix.
func TestCheckerMatrix(t *testing.T) {
	budget := uint64(10_000)
	if testing.Short() {
		budget = 2_500
	}
	for _, mc := range testMachines() {
		mc := mc
		abi := minic.ABIFlat
		if mc.windowed {
			abi = minic.ABIWindowed
		}
		for _, b := range workload.All() {
			b := b
			t.Run(fmt.Sprintf("%s/%s", mc.name, b.Name), func(t *testing.T) {
				t.Parallel()
				prog, err := b.Build(abi)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				cfg := mc.cfg
				cfg.StopAfter = budget
				m, err := New(cfg, []*program.Program{prog}, mc.windowed)
				if err != nil {
					t.Fatalf("new: %v", err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("invariant violation or divergence: %v", err)
				}
			})
		}
	}
}

// TestCheckerCatchesInjectedLeak proves the free-list conservation
// invariant has teeth: deliberately dropping one physical register from
// the VCA free list is caught by the explicit CheckNow audit and aborts
// a checked Run on its first cycle.
func TestCheckerCatchesInjectedLeak(t *testing.T) {
	src := progen.FromSeed(3)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := DefaultConfig(RenameVCA, WindowNone, 1, 64)
	cfg.Check = true
	m, err := New(cfg, []*program.Program{prog}, false)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := m.CheckNow(); err != nil {
		t.Fatalf("clean machine fails audit: %v", err)
	}
	if !m.vca.InjectLeak() {
		t.Fatal("no free register available to leak")
	}
	if err := m.CheckNow(); err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("CheckNow after injected leak: got %v, want a leak violation", err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("checked Run after injected leak: got %v, want a leak violation", err)
	}
}

// TestSquashDuringWindowTrap drives a conventional-window machine (two
// resident windows at 160 physical registers) with a deep unconditional
// call ladder plus data-dependent branches and loops, so branch-recovery
// squashes and window overflow/underflow traps interleave densely —
// including flushes that land while injected trap operations are still
// in flight. The invariant checker and co-simulation audit every cycle.
func TestSquashDuringWindowTrap(t *testing.T) {
	cfg := DefaultConfig(RenameConventional, WindowConventional, 1, 160)
	cfg.Check = true
	cfg.MaxCycles = 50_000_000

	r := rand.New(rand.NewSource(11))
	gcfg := progen.Config{WindowLadder: 7, Blocks: 40, Loops: true, Aliasing: true}
	for i := 0; i < 6; i++ {
		src := progen.Generate(r, gcfg)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v\n%s", err, src)
		}
		want := runEmu(t, prog, true)
		m, err := New(cfg, []*program.Program{prog}, true)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v\n%s", err, src)
		}
		if got := res.Threads[0].Output; got != want {
			t.Fatalf("output %q, want %q\n%s", got, want, src)
		}
		if res.WindowTraps == 0 {
			t.Errorf("program %d: expected window traps on a depth-7 ladder with 2 resident windows", i)
		}
		if res.Mispredicts == 0 || res.Squashed == 0 {
			t.Errorf("program %d: expected mispredict squashes (mispredicts=%d squashed=%d)",
				i, res.Mispredicts, res.Squashed)
		}
	}
}

// TestSMTConvWindowTrapHeavy runs two threads on a conventional-window
// machine sized to a single resident window per thread (136 physical
// registers), the most trap-heavy configuration constructible: every
// call and return of either thread traps, with round-robin fetch
// interleaving both threads' injected window operations.
func TestSMTConvWindowTrapHeavy(t *testing.T) {
	cfg := DefaultConfig(RenameConventional, WindowConventional, 2, 136)
	cfg.Check = true
	cfg.MaxCycles = 50_000_000

	r := rand.New(rand.NewSource(23))
	srcs := progen.GenerateSMT(r, progen.Config{Helpers: 3, Blocks: 12, Loops: true}, 2)
	progs := make([]*program.Program, len(srcs))
	want := make([]string, len(srcs))
	for i, src := range srcs {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("thread %d assemble: %v\n%s", i, err, src)
		}
		progs[i] = prog
		want[i] = runEmu(t, prog, true)
	}
	m, err := New(cfg, progs, true)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := range progs {
		if got := res.Threads[i].Output; got != want[i] {
			t.Errorf("thread %d output %q, want %q", i, got, want[i])
		}
	}
	if res.WindowTraps == 0 {
		t.Error("expected window traps with one resident window per thread")
	}
}

// TestSMTVCAFlatFourThreads runs four threads through the VCA rename
// substrate (flat ABI) with ICOUNT fetch, checking per-thread outputs
// and that all four threads make progress under the shared register
// cache with the checker auditing cross-thread conservation.
func TestSMTVCAFlatFourThreads(t *testing.T) {
	cfg := DefaultConfig(RenameVCA, WindowNone, 4, 256)
	cfg.Check = true
	cfg.MaxCycles = 50_000_000

	r := rand.New(rand.NewSource(31))
	srcs := progen.GenerateSMT(r, progen.Config{Blocks: 10, Loops: true, Aliasing: true}, 4)
	progs := make([]*program.Program, len(srcs))
	want := make([]string, len(srcs))
	for i, src := range srcs {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("thread %d assemble: %v\n%s", i, err, src)
		}
		progs[i] = prog
		want[i] = runEmu(t, prog, false)
	}
	m, err := New(cfg, progs, false)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := range progs {
		if got := res.Threads[i].Output; got != want[i] {
			t.Errorf("thread %d output %q, want %q", i, got, want[i])
		}
		if res.Threads[i].Committed == 0 {
			t.Errorf("thread %d committed nothing", i)
		}
	}
}
