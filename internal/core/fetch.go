package core

import (
	"vca/internal/isa"
)

// fetchBufCap bounds how far fetch may run ahead of rename: it must cover
// the front-end pipeline (FrontLat stages of Width instructions) plus
// slack, or the front end starves structurally.
func (m *Machine) fetchBufCap() int {
	return m.cfg.Width * (m.cfg.FrontLat + 2)
}

// fetchStage picks one thread per cycle (ICOUNT policy: fewest in-flight
// instructions) and fetches up to Width instructions along the predicted
// path. Instructions arrive at the rename stage FrontLat cycles later
// (+ instruction-cache miss time).
//
//vca:hot
func (m *Machine) fetchStage() {
	th := m.pickFetchThread()
	if th == nil {
		m.noteFetchStall()
		return
	}

	// One IL1 probe per fetch group; misses delay the group's arrival.
	il1 := m.hier.InstFetch(th.cacheAddr(th.pc))
	extra := uint64(0)
	if il1 > m.cfg.Hier.IL1.HitLat {
		extra = uint64(il1 - m.cfg.Hier.IL1.HitLat)
	}
	readyAt := m.cycle + uint64(m.cfg.FrontLat) + extra

	for n := 0; n < m.cfg.Width; n++ {
		if m.fetchBufCount(th) >= m.fetchBufCap() {
			break
		}
		inst, mt := th.instAt(th.pc)
		m.seq++
		u := m.newUop()
		u.seq = m.seq
		u.thread = th.id
		u.fetchedAt = uint32(m.cycle)
		u.pc = th.pc
		u.inst = inst
		u.class = mt.Class
		u.renSrcs[0], u.renSrcs[1], u.renDest = mt.RenSrcA, mt.RenSrcB, mt.RenDest
		u.destPhys, u.destPrev = -1, -1
		u.srcPhys[0], u.srcPhys[1] = -1, -1

		nextPC := th.pc + 4
		endGroup := false
		if mt.Ctl != isa.CtlNone {
			u.isCtl = true
			switch mt.Ctl {
			case isa.CtlCond:
				taken, ck := m.bp.PredictCond(th.id, th.pc)
				u.ck = ck
				u.predTaken = taken
				if taken {
					t, _ := inst.ControlTarget(th.pc)
					nextPC = t
					endGroup = true
				}
			case isa.CtlRet:
				t, ck := m.bp.PredictReturn(th.id, th.pc)
				u.ck = ck
				u.predTaken = true
				nextPC = t
				endGroup = true
			case isa.CtlIndirect:
				t, hit, ck := m.bp.PredictIndirect(th.id, th.pc)
				u.ck = ck
				u.predTaken = true
				if hit {
					nextPC = t
				} // else guess fall-through; repaired at resolve
				if mt.Call {
					m.bp.PushRAS(th.id, th.pc+4)
				}
				endGroup = true
			default: // direct jmp/jsr
				u.ck = m.bp.CheckpointFor(th.id)
				u.predTaken = true
				t, _ := inst.ControlTarget(th.pc)
				nextPC = t
				if mt.Call {
					m.bp.PushRAS(th.id, th.pc+4)
				}
				endGroup = true
			}
		}
		u.predNPC = nextPC

		m.fetchQ = append(m.fetchQ, fetchEntry{u: u, readyAt: readyAt})
		th.inFetchQ++
		th.inFlight++
		m.stats.Fetched++
		th.pc = nextPC
		if endGroup {
			break
		}
	}
}

// instAt reads the predecoded text image and its metadata, avoiding any
// per-instruction re-derivation on the fetch hot path. Off-text and
// misaligned PCs (wrong path) decode as invalid, matching
// program.InstAt's zero-word semantics; a pc below TextBase wraps to a
// huge index and fails the bound.
func (th *thread) instAt(pc uint64) (isa.Inst, *isa.Meta) {
	if i := pc - th.prog.TextBase; pc%4 == 0 && i < uint64(len(th.text))*4 {
		return th.text[i/4], &th.meta[i/4]
	}
	return invalidInst, &invalidMeta
}

var (
	invalidInst = isa.Decode(0)
	invalidMeta = isa.MetaOf(invalidInst)
)

// pickFetchThread implements ICOUNT: the runnable thread with the fewest
// in-flight instructions fetches.
func (m *Machine) pickFetchThread() *thread {
	var best *thread
	for _, th := range m.threads {
		if th.done || m.cycle < th.fetchBlockedUntil || th.injectPending() > 0 {
			continue
		}
		if m.fetchBufCount(th) >= m.fetchBufCap() {
			continue
		}
		if best == nil || th.inFlight < best.inFlight {
			best = th
		}
	}
	return best
}

// fetchBufCount is the thread's fetch-buffer occupancy, maintained
// incrementally (fetch push, rename pop, squash drop) so the ICOUNT
// policy never scans the queue.
func (m *Machine) fetchBufCount(th *thread) int { return th.inFetchQ }

// syscallSrcs returns the architectural registers a syscall reads.
func syscallSrcs(code int32) []isa.Reg {
	switch code {
	case isa.SysExit, isa.SysPutChar, isa.SysPutInt:
		return []isa.Reg{isa.RegA0}
	case isa.SysPutFloat:
		return []isa.Reg{isa.RegFA0}
	case isa.SysPutStr:
		return []isa.Reg{isa.RegA0, isa.RegA1}
	}
	return nil
}
