package core

import (
	"strings"
	"testing"

	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/program"
)

// Shared test programs (mini-C, compiled under both ABIs).

const srcCountdown = `
int main() {
	int i;
	int total = 0;
	for (i = 0; i < 200; i = i + 1) {
		total = total + i;
		if (total > 5000) { total = total - 4000; }
	}
	print_int(total);
	return 0;
}`

const srcFib = `
int fib(int n) {
	if (n <= 1) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() {
	print_int(fib(12));
	return 0;
}`

const srcMemory = `
int arr[64];
int main() {
	int i;
	for (i = 0; i < 64; i = i + 1) { arr[i] = i * 3; }
	int sum = 0;
	for (i = 0; i < 64; i = i + 1) { sum = sum + arr[i]; }
	print_int(sum);   // 3*2016 = 6048
	arr[0] = sum;
	print_int(arr[0]);
	return 0;
}`

const srcFloat = `
float vals[16];
int main() {
	int i;
	for (i = 0; i < 16; i = i + 1) { vals[i] = (float)i * 0.5; }
	float s = 0.0;
	for (i = 0; i < 16; i = i + 1) { s = s + vals[i]; }
	print_float(s);   // 60
	return 0;
}`

const srcCalls = `
int mix(int a, int b) { return a * 10 + b; }
int twice(int x) { return mix(x, x) + mix(x + 1, x - 1); }
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 50; i = i + 1) { acc = acc + twice(i % 7); }
	print_int(acc);
	return 0;
}`

var testSources = map[string]string{
	"countdown": srcCountdown,
	"fib":       srcFib,
	"memory":    srcMemory,
	"float":     srcFloat,
	"calls":     srcCalls,
}

func buildProg(t testing.TB, name, src string, abi minic.ABI) *program.Program {
	t.Helper()
	p, err := minic.Build(name, src, abi)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return p
}

// refRun produces the expected output via the functional emulator.
func refRun(t testing.TB, p *program.Program, windowed bool) string {
	t.Helper()
	m := emu.New(p, emu.Config{Windowed: windowed, MaxInsts: 100_000_000})
	if reason, err := m.Run(); err != nil || reason != emu.StopExited {
		t.Fatalf("reference run: %v (%v)", err, reason)
	}
	return m.Output.String()
}

// runCore runs one single-threaded program on the given machine config
// with co-simulation enabled.
func runCore(t testing.TB, cfg Config, p *program.Program, windowed bool) *Result {
	t.Helper()
	cfg.MaxCycles = 50_000_000
	m, err := New(cfg, []*program.Program{p}, windowed)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestBaselineRunsAllPrograms(t *testing.T) {
	for name, src := range testSources {
		t.Run(name, func(t *testing.T) {
			p := buildProg(t, name, src, minic.ABIFlat)
			want := refRun(t, p, false)
			cfg := DefaultConfig(RenameConventional, WindowNone, 1, 256)
			res := runCore(t, cfg, p, false)
			if got := res.Threads[0].Output; got != want {
				t.Errorf("output %q, want %q", got, want)
			}
			if !res.Threads[0].Done || res.Threads[0].ExitCode != 0 {
				t.Errorf("thread state: %+v", res.Threads[0])
			}
			if res.IPC() <= 0 {
				t.Error("IPC should be positive")
			}
		})
	}
}

func TestVCAFlatRunsAllPrograms(t *testing.T) {
	for name, src := range testSources {
		t.Run(name, func(t *testing.T) {
			p := buildProg(t, name, src, minic.ABIFlat)
			want := refRun(t, p, false)
			for _, regs := range []int{48, 96, 256} {
				cfg := DefaultConfig(RenameVCA, WindowNone, 1, regs)
				res := runCore(t, cfg, p, false)
				if got := res.Threads[0].Output; got != want {
					t.Errorf("regs=%d: output %q, want %q", regs, got, want)
				}
			}
		})
	}
}

func TestVCAWindowedRunsAllPrograms(t *testing.T) {
	for name, src := range testSources {
		t.Run(name, func(t *testing.T) {
			p := buildProg(t, name, src, minic.ABIWindowed)
			want := refRun(t, p, true)
			for _, regs := range []int{64, 128, 256} {
				cfg := DefaultConfig(RenameVCA, WindowVCA, 1, regs)
				res := runCore(t, cfg, p, true)
				if got := res.Threads[0].Output; got != want {
					t.Errorf("regs=%d: output %q, want %q", regs, got, want)
				}
			}
		})
	}
}

func TestConventionalWindowRunsAllPrograms(t *testing.T) {
	for name, src := range testSources {
		t.Run(name, func(t *testing.T) {
			p := buildProg(t, name, src, minic.ABIWindowed)
			want := refRun(t, p, true)
			// 160 regs -> 2 windows: deep recursion must trap repeatedly.
			for _, regs := range []int{160, 256} {
				cfg := DefaultConfig(RenameConventional, WindowConventional, 1, regs)
				res := runCore(t, cfg, p, true)
				if got := res.Threads[0].Output; got != want {
					t.Errorf("regs=%d: output %q, want %q", regs, got, want)
				}
			}
		})
	}
}

func TestIdealWindowRunsAllPrograms(t *testing.T) {
	for name, src := range testSources {
		t.Run(name, func(t *testing.T) {
			p := buildProg(t, name, src, minic.ABIWindowed)
			want := refRun(t, p, true)
			cfg := DefaultConfig(RenameVCA, WindowIdeal, 1, 128)
			res := runCore(t, cfg, p, true)
			if got := res.Threads[0].Output; got != want {
				t.Errorf("output %q, want %q", got, want)
			}
			// Ideal windows never touch the data cache for register traffic.
			if res.DL1.Accesses[1] != 0 { // CauseSpillFill
				t.Errorf("ideal windows produced %d spill/fill cache accesses", res.DL1.Accesses[1])
			}
		})
	}
}

func TestConventionalWindowTrapsFire(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	cfg := DefaultConfig(RenameConventional, WindowConventional, 1, 160) // 2 windows
	res := runCore(t, cfg, p, true)
	if res.WindowTraps == 0 {
		t.Error("fib(12) with 2 windows must overflow/underflow")
	}
	if res.DL1.Accesses[2] == 0 { // CauseWindowTrap
		t.Error("window traps must generate cache accesses")
	}
	// More windows -> fewer traps.
	cfg2 := DefaultConfig(RenameConventional, WindowConventional, 1, 256) // 5 windows
	res2 := runCore(t, cfg2, p, true)
	if res2.WindowTraps >= res.WindowTraps {
		t.Errorf("traps: 2win=%d, 5win=%d — more windows should trap less",
			res.WindowTraps, res2.WindowTraps)
	}
}

func TestVCASpillsUnderRegisterPressure(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	small := runCore(t, DefaultConfig(RenameVCA, WindowVCA, 1, 40), p, true)
	large := runCore(t, DefaultConfig(RenameVCA, WindowVCA, 1, 256), p, true)
	if small.SpillsIssued+small.FillsIssued == 0 {
		t.Error("40-register VCA machine should spill/fill")
	}
	// fib's live register working set is small, so most traffic comes from
	// rename-table set conflicts (present at every size); physical-register
	// pressure must add evictions on top, never reduce traffic or speed.
	if small.VCAStats.PhysEvicts == 0 {
		t.Error("40-register VCA machine should evict for physical registers")
	}
	if large.VCAStats.PhysEvicts != 0 {
		t.Errorf("256-register machine evicted %d times for physical registers", large.VCAStats.PhysEvicts)
	}
	if small.SpillsIssued+small.FillsIssued < large.SpillsIssued+large.FillsIssued {
		t.Errorf("spill+fill: 40 regs %d < 256 regs %d",
			small.SpillsIssued+small.FillsIssued, large.SpillsIssued+large.FillsIssued)
	}
	if small.Cycles < large.Cycles {
		t.Errorf("cycles: 40 regs %d < 256 regs %d", small.Cycles, large.Cycles)
	}
}

func TestBaselineCannotRunAt64Registers(t *testing.T) {
	p := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	cfg := DefaultConfig(RenameConventional, WindowNone, 1, 64)
	if _, err := New(cfg, []*program.Program{p}, false); err == nil {
		t.Error("baseline must reject 64 physical registers (no rename registers)")
	}
	// VCA runs fine there (§4.2).
	cfgV := DefaultConfig(RenameVCA, WindowNone, 1, 64)
	if _, err := New(cfgV, []*program.Program{p}, false); err != nil {
		t.Errorf("VCA should run at 64 registers: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	p := buildProg(t, "calls", srcCalls, minic.ABIFlat)
	cfg := DefaultConfig(RenameVCA, WindowNone, 1, 96)
	r1 := runCore(t, cfg, p, false)
	r2 := runCore(t, cfg, p, false)
	if r1.Cycles != r2.Cycles || r1.DL1Accesses() != r2.DL1Accesses() {
		t.Errorf("non-deterministic: %d/%d cycles, %d/%d accesses",
			r1.Cycles, r2.Cycles, r1.DL1Accesses(), r2.DL1Accesses())
	}
}

func TestMorePhysicalRegistersNeverSlower(t *testing.T) {
	p := buildProg(t, "calls", srcCalls, minic.ABIFlat)
	prev := uint64(1 << 62)
	for _, regs := range []int{80, 128, 192, 256} {
		cfg := DefaultConfig(RenameVCA, WindowNone, 1, regs)
		res := runCore(t, cfg, p, false)
		// Allow 2% noise (alignment of squashes etc.).
		if float64(res.Cycles) > float64(prev)*1.02 {
			t.Errorf("%d regs took %d cycles, more than %d at fewer registers", regs, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(RenameConventional, WindowVCA, 1, 128)
	if err := bad.Validate(); err == nil {
		t.Error("conventional rename + VCA windows must be rejected")
	}
	bad2 := DefaultConfig(RenameVCA, WindowConventional, 1, 128)
	if err := bad2.Validate(); err == nil {
		t.Error("VCA rename + conventional windows must be rejected")
	}
	p := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	cfg := DefaultConfig(RenameConventional, WindowNone, 1, 128)
	if _, err := New(cfg, []*program.Program{p}, true); err == nil {
		t.Error("windowed flag mismatch must be rejected")
	}
}

func TestStopAfterBudget(t *testing.T) {
	p := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	cfg := DefaultConfig(RenameConventional, WindowNone, 1, 128)
	cfg.StopAfter = 500
	res := runCore(t, cfg, p, false)
	if res.Threads[0].Committed < 500 {
		t.Errorf("committed %d, want >= 500", res.Threads[0].Committed)
	}
	if res.Threads[0].Done {
		t.Error("program should not have finished in 500 instructions")
	}
}

func TestSMTTwoThreads(t *testing.T) {
	p1 := buildProg(t, "fib", srcFib, minic.ABIFlat)
	p2 := buildProg(t, "memory", srcMemory, minic.ABIFlat)
	want1 := refRun(t, p1, false)
	want2 := refRun(t, p2, false)
	for _, rm := range []RenameModel{RenameConventional, RenameVCA} {
		regs := 192
		if rm == RenameConventional {
			regs = 256 // must exceed 2x64 logical
		}
		cfg := DefaultConfig(rm, WindowNone, 2, regs)
		m, err := New(cfg, []*program.Program{p1, p2}, false)
		if err != nil {
			t.Fatalf("%v: %v", rm, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", rm, err)
		}
		if res.Threads[0].Output != want1 || res.Threads[1].Output != want2 {
			t.Errorf("%v SMT outputs %q/%q, want %q/%q", rm,
				res.Threads[0].Output, res.Threads[1].Output, want1, want2)
		}
	}
}

func TestSMTFourThreadsVCAWindowed(t *testing.T) {
	var progs []*program.Program
	var wants []string
	for _, name := range []string{"fib", "memory", "calls", "countdown"} {
		p := buildProg(t, name, testSources[name], minic.ABIWindowed)
		progs = append(progs, p)
		wants = append(wants, refRun(t, p, true))
	}
	cfg := DefaultConfig(RenameVCA, WindowVCA, 4, 192)
	m, err := New(cfg, progs, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range wants {
		if res.Threads[i].Output != w {
			t.Errorf("thread %d output %q, want %q", i, res.Threads[i].Output, w)
		}
	}
	// 4 threads x 64 logical registers on 192 physical: the headline claim.
	if !strings.Contains("ok", "ok") {
		t.Fatal()
	}
}

func TestVCAInvariantsAfterRun(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	cfg := DefaultConfig(RenameVCA, WindowVCA, 1, 72)
	cfg.MaxCycles = 50_000_000
	m, err := New(cfg, []*program.Program{p}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.vca.CheckInvariants(); err != nil {
		t.Errorf("post-run VCA invariants: %v", err)
	}
}
