package core

import (
	"vca/internal/isa"
	"vca/internal/rename"
)

// recoverFrom handles a mispredicted control instruction: squash every
// younger instruction of the same thread, repair rename state
// (youngest-first rollback), restore the branch predictor, and redirect
// fetch. VCA machines additionally charge the commit-table walk that
// rebuilds the rename table (§2.1.3).
func (m *Machine) recoverFrom(u *uop) {
	th := m.threads[u.thread]
	// The Pentium-4-style walk (§2.1.3) iterates from the ROB head up to
	// the mispredicted branch, replaying older instructions' renames into
	// the commit-table copy; its cost is the number of older in-flight
	// instructions, and it overlaps the front-end refill.
	walked := 0
	for _, v := range m.rob[m.robHead:] {
		if v.seq >= u.seq {
			break
		}
		walked++
	}
	m.flushYounger(th, u.seq)

	// Front-end repair: restore to the checkpoint and re-apply this
	// instruction's own effect with the now-known outcome.
	switch {
	case u.class == isa.ClassBranch:
		m.bp.RecoverCond(th.id, u.ck, u.taken)
	case u.class == isa.ClassCall:
		m.bp.Recover(th.id, u.ck)
		m.bp.PushRAS(th.id, u.pc+4)
	case u.class == isa.ClassRet:
		m.bp.Recover(th.id, u.ck)
		m.bp.PopRAS(th.id)
	default:
		m.bp.Recover(th.id, u.ck)
	}

	th.pc = u.actualNPC
	th.fetchBlockedUntil = m.cycle + 1
	if m.cfg.RecoveryWalk && walked > 0 {
		walk := uint64((walked + m.cfg.Width - 1) / m.cfg.Width)
		blocked := m.cycle + walk
		if blocked > th.renameBlockedUntil {
			th.renameBlockedUntil = blocked
		}
	}
}

// flushYounger squashes all instructions of thread th younger than seq,
// rolling back rename state youngest-first. It returns the number of
// renamed (ROB-resident) instructions squashed.
func (m *Machine) flushYounger(th *thread, seq uint64) int {
	// Un-renamed instructions in the fetch buffer just disappear (their
	// uops go straight back to the pool: nothing else references them).
	// The live window starts at fetchHead; the kept prefix is compacted to
	// the front so the head index resets.
	keptF := m.fetchQ[:0]
	for _, fe := range m.fetchQ[m.fetchHead:] {
		if fe.u.thread == th.id && fe.u.seq > seq {
			th.inFlight--
			th.inFetchQ--
			m.stats.Squashed++
			m.freeUop(fe.u)
			continue
		}
		keptF = append(keptF, fe)
	}
	m.fetchQ = keptF
	m.fetchHead = 0

	// Collect ROB victims (they are in ascending seq order), compacting
	// the survivors to the front of the backing array.
	victims := m.victimScratch[:0]
	keptR := m.rob[:0]
	for _, v := range m.rob[m.robHead:] {
		if v.thread == th.id && v.seq > seq {
			victims = append(victims, v)
			continue
		}
		keptR = append(keptR, v)
	}
	m.rob = keptR
	m.robHead = 0

	// Roll back youngest-first.
	for i := len(victims) - 1; i >= 0; i-- {
		m.rollbackUop(th, victims[i])
	}

	if len(victims) > 0 {
		m.purgeStructures(th.id, seq)
	}
	th.robCount -= len(victims)
	m.stats.Squashed += uint64(len(victims))
	m.cnt.squashedROB.Add(uint64(len(victims)))

	// Victims are now out of every structure; recycle them. A victim may
	// still sit in writeback's resolved scratch this cycle, which is safe:
	// its squashed flag survives until the pool hands it out again, and no
	// allocation happens before the writeback stage finishes.
	n := len(victims)
	for _, v := range victims {
		m.freeUop(v)
	}
	m.victimScratch = victims[:0]
	return n
}

// rollbackUop undoes one squashed instruction's rename-time state and
// unlinks it from the event-driven scheduler: its consumer-list
// registrations (if still waiting on sources) or its timing-wheel
// bucket (if in flight). Ready-list removal happens in purgeStructures,
// which filters the list once per squash.
func (m *Machine) rollbackUop(th *thread, v *uop) {
	v.squashed = true
	if !v.issued && !v.injected {
		th.inFlight--
	}
	if v.injected {
		// Unreachable in practice (injected operations are always the
		// oldest in-flight work of their thread), but keep the drain
		// counter conservative if that ever changes.
		th.injectedLive--
	}
	if v.inIQ {
		v.inIQ = false
		m.iqCount--
		m.cnt.squashedIQ++
		m.unregisterConsumers(v)
	} else if v.inWheel {
		m.ewheel.remove(v)
	}
	switch m.cfg.Rename {
	case RenameConventional:
		if v.destPhys != rename.PhysNone && v.destPhys >= 0 {
			m.conv.RollbackDest(th.id, v.destLog, v.destPhys, v.destPrev)
		}
	case RenameVCA:
		for i := 0; i < v.nsrc; i++ {
			p := v.srcPhys[i]
			if p >= 0 {
				m.vca.ReleaseSource(p)
				m.vca.ReleaseRetired(p)
			}
		}
		if v.destPhys >= 0 {
			m.vca.RollbackDest(v.destAddr, v.destPhys, v.destPrev)
		}
	}
	th.specWBP -= uint64(v.wbpDelta)
	th.specDepth -= v.depDelta
}

// purgeStructures removes squashed uops from the LSQ and the ready
// list (consumer lists and wheel buckets are unlinked per victim in
// rollbackUop).
func (m *Machine) purgeStructures(tid int, seq uint64) {
	// "keep v" means v survives the squash: another thread's uop, or one
	// at or older than the squash point. Written out inline at both
	// filters — a keep closure would capture tid/seq and allocate.
	lsq := m.lsq[:0]
	for _, v := range m.lsq {
		if v.thread != tid || v.seq <= seq {
			lsq = append(lsq, v)
		} else {
			m.threads[v.thread].lsqStores--
		}
	}
	m.lsq = lsq
	ready := m.ready[:0]
	for _, v := range m.ready {
		if v.thread != tid || v.seq <= seq {
			ready = append(ready, v)
		} else {
			v.inReady = false
		}
	}
	m.ready = ready
}
