package core

import (
	"testing"

	"vca/internal/emu"
	"vca/internal/program"
)

// testMachine is one canonical machine model used across the
// differential tests: the paper's seven single-thread configurations.
type testMachine struct {
	name     string
	cfg      Config
	windowed bool
}

// testMachines returns the seven canonical machine models with
// co-simulation and the cycle-level invariant checker enabled.
func testMachines() []testMachine {
	ms := []testMachine{
		{"baseline", DefaultConfig(RenameConventional, WindowNone, 1, 128), false},
		{"vca-flat-small", DefaultConfig(RenameVCA, WindowNone, 1, 48), false},
		{"vca-flat", DefaultConfig(RenameVCA, WindowNone, 1, 192), false},
		{"conv-window", DefaultConfig(RenameConventional, WindowConventional, 1, 160), true},
		{"ideal-window", DefaultConfig(RenameVCA, WindowIdeal, 1, 128), true},
		{"vca-window-small", DefaultConfig(RenameVCA, WindowVCA, 1, 56), true},
		{"vca-window", DefaultConfig(RenameVCA, WindowVCA, 1, 256), true},
	}
	for i := range ms {
		ms[i].cfg.Check = true
		ms[i].cfg.MaxCycles = 20_000_000
	}
	return ms
}

// runEmu executes a program on the functional emulator and returns its
// output.
func runEmu(t *testing.T, p *program.Program, windowed bool) string {
	t.Helper()
	m := emu.New(p, emu.Config{Windowed: windowed, MaxInsts: 10_000_000})
	reason, err := m.Run()
	if err != nil || reason != emu.StopExited {
		t.Fatalf("emu run: %v (%v)", err, reason)
	}
	return m.Output.String()
}
