package core

import (
	"strings"
	"testing"

	"vca/internal/minic"
	"vca/internal/program"
)

// TestWindowTrapTrafficExact checks that every conventional-window trap
// copies exactly one whole window: 32 slots per overflow (stores) and per
// underflow (loads), all tagged CauseWindowTrap in the cache stats.
func TestWindowTrapTrafficExact(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	cfg := DefaultConfig(RenameConventional, WindowConventional, 1, 160) // 2 windows
	res := runCore(t, cfg, p, true)
	if res.WindowTraps == 0 {
		t.Fatal("expected traps")
	}
	trapAccesses := res.DL1.Accesses[2] // CauseWindowTrap
	if trapAccesses != 32*res.WindowTraps {
		t.Errorf("trap accesses %d, want exactly 32 x %d traps = %d",
			trapAccesses, res.WindowTraps, 32*res.WindowTraps)
	}
}

// TestVCAExtremePressureLiveness: a VCA machine with barely more physical
// registers than one instruction's operands must still finish (forward
// progress through pin-drain, §2.1.2).
func TestVCAExtremePressureLiveness(t *testing.T) {
	p := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	cfg := DefaultConfig(RenameVCA, WindowNone, 1, 8)
	cfg.MaxCycles = 100_000_000
	res := runCore(t, cfg, p, false)
	if !res.Threads[0].Done {
		t.Fatal("program did not finish under extreme register pressure")
	}
	if res.SpillsIssued == 0 || res.FillsIssued == 0 {
		t.Error("extreme pressure must generate spills and fills")
	}
}

// TestRenameAssocSweep: fewer rename-table ways must never make the
// machine faster, and must increase table-conflict evictions.
func TestRenameAssocSweep(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	// Associativity 1 can deadlock an instruction whose two sources map
	// to the same set (§2.1.1); the machine must refuse to build.
	bad := DefaultConfig(RenameVCA, WindowVCA, 1, 192)
	bad.VCA.Ways = 1
	if _, err := New(bad, []*program.Program{p}, true); err == nil {
		t.Error("1-way VCA rename table must be rejected (deadlock risk)")
	}

	var prevCycles uint64
	var prevEvicts uint64
	first := true
	for _, ways := range []int{6, 4, 3, 2} {
		cfg := DefaultConfig(RenameVCA, WindowVCA, 1, 192)
		cfg.VCA.Ways = ways
		cfg.MaxCycles = 100_000_000
		m, err := New(cfg, []*program.Program{p}, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
		evicts := res.VCAStats.TableConflictEvicts
		t.Logf("ways=%d cycles=%d tableEvicts=%d", ways, res.Cycles, evicts)
		if !first {
			if float64(res.Cycles) < float64(prevCycles)*0.98 {
				t.Errorf("ways=%d (%d cycles) notably faster than more-associative config (%d)",
					ways, res.Cycles, prevCycles)
			}
			if evicts < prevEvicts {
				t.Errorf("ways=%d evictions %d decreased vs %d", ways, evicts, prevEvicts)
			}
		}
		prevCycles, prevEvicts = res.Cycles, evicts
		first = false
	}
}

// TestASTQDepthEffect: a one-entry ASTQ must not beat the four-entry
// configuration the paper settled on (§2.2.2).
func TestASTQDepthEffect(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	run := func(depth int) uint64 {
		cfg := DefaultConfig(RenameVCA, WindowVCA, 1, 64)
		cfg.ASTQSize = depth
		cfg.MaxCycles = 100_000_000
		m, err := New(cfg, []*program.Program{p}, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		return res.Cycles
	}
	c1, c4 := run(1), run(4)
	t.Logf("astq=1: %d cycles, astq=4: %d cycles", c1, c4)
	if float64(c1) < float64(c4)*0.99 {
		t.Errorf("one-entry ASTQ (%d) beat four entries (%d)", c1, c4)
	}
}

// TestSpillFillTrafficAccounted: VCA spill/fill cache accesses must equal
// the issued operation counts exactly.
func TestSpillFillTrafficAccounted(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	cfg := DefaultConfig(RenameVCA, WindowVCA, 1, 64)
	res := runCore(t, cfg, p, true)
	got := res.DL1.Accesses[1] // CauseSpillFill
	want := res.SpillsIssued + res.FillsIssued
	if got != want {
		t.Errorf("spill/fill cache accesses %d, want %d", got, want)
	}
	if got == 0 {
		t.Error("expected register traffic at 64 registers")
	}
}

// TestPerThreadOutputsIsolated: SMT threads must not interleave output or
// architectural state.
func TestPerThreadOutputsIsolated(t *testing.T) {
	p1 := buildProg(t, "fib", srcFib, minic.ABIFlat)
	p2 := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	cfg := DefaultConfig(RenameVCA, WindowNone, 2, 96)
	cfg.MaxCycles = 100_000_000
	m, err := New(cfg, []*program.Program{p1, p2}, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].Output != refRun(t, p1, false) {
		t.Error("thread 0 output corrupted")
	}
	if res.Threads[1].Output != refRun(t, p2, false) {
		t.Error("thread 1 output corrupted")
	}
}

// TestTraceOutput checks the commit-trace facility produces one parsable
// line per committed instruction.
func TestTraceOutput(t *testing.T) {
	p := buildProg(t, "countdown", srcCountdown, minic.ABIFlat)
	var buf strings.Builder
	cfg := DefaultConfig(RenameConventional, WindowNone, 1, 128)
	cfg.TraceWriter = &buf
	cfg.MaxCycles = 10_000_000
	m, err := New(cfg, []*program.Program{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if uint64(lines) != res.Threads[0].Committed {
		t.Errorf("%d trace lines for %d committed instructions", lines, res.Threads[0].Committed)
	}
	if !strings.Contains(buf.String(), "addi") || !strings.Contains(buf.String(), "cyc ") {
		t.Error("trace content missing expected fields")
	}
}
