package core

import (
	"testing"

	"vca/internal/minic"
	"vca/internal/program"
)

// TestVCARegPressurePlumbing verifies PhysRegs reaches the VCA renamer
// and that pressure shows up as physical-register evictions.
func TestVCARegPressurePlumbing(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIWindowed)
	for _, regs := range []int{40, 64, 256} {
		cfg := DefaultConfig(RenameVCA, WindowVCA, 1, regs)
		cfg.MaxCycles = 50_000_000
		m, err := New(cfg, []*program.Program{p}, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.vca.FreeCount() != regs {
			t.Fatalf("free count %d != %d", m.vca.FreeCount(), regs)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("regs=%d cycles=%d spills=%d fills=%d tableEvicts=%d physEvicts=%d",
			regs, res.Cycles, res.SpillsIssued, res.FillsIssued,
			res.VCAStats.TableConflictEvicts, res.VCAStats.PhysEvicts)
	}
}

// TestSMTWindowedMatrix co-simulates windowed VCA SMT across thread and
// register-count combinations (regression: cross-thread spill routing).
func TestSMTWindowedMatrix(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, regs := range []int{128, 192, 320} {
			var progs []*program.Program
			names := []string{"fib", "memory", "calls", "countdown"}[:n]
			for _, name := range names {
				progs = append(progs, buildProg(t, name, testSources[name], minic.ABIWindowed))
			}
			cfg := DefaultConfig(RenameVCA, WindowVCA, n, regs)
			cfg.MaxCycles = 50_000_000
			m, err := New(cfg, progs, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Errorf("threads=%d regs=%d: %v", n, regs, err)
			} else {
				t.Logf("threads=%d regs=%d ok", n, regs)
			}
		}
	}
}
