package core

import (
	"math/rand"
	"reflect"
	"testing"

	"vca/internal/asm"
	"vca/internal/progen"
	"vca/internal/program"
)

// This file covers the scheduler/squash interaction of the event-driven
// core: squashes must unlink victims from the wakeup network's consumer
// lists, from the ready list, and from future timing-wheel buckets, and
// machines whose squashes land during window traps or with ASTQ
// completions still pending must stay invariant-clean and produce
// output identical to an uninstrumented Run.

// stepper drives a Machine one simulated cycle at a time by replaying
// Run's loop body verbatim, so a test can inspect scheduler structures
// between cycles. Behavioral equivalence with Run is asserted by
// TestStepDrivenRunMatchesRun below.
type stepper struct {
	m    *Machine
	done bool
}

func (s *stepper) step(t *testing.T) {
	t.Helper()
	m := s.m
	if m.cycle == 0 {
		m.cycle = 1
	} else {
		m.cycle++
	}
	m.dl1Ports = m.cfg.Hier.DL1Ports
	m.commitStage()
	if m.err != nil {
		t.Fatalf("cycle %d: %v", m.cycle, m.err)
	}
	m.writebackStage()
	m.issueStage()
	m.renameStage()
	m.fetchStage()
	m.sampleOccupancy()
	if m.cfg.Check {
		if m.checkCycle(); m.err != nil {
			t.Fatalf("cycle %d: %v", m.cycle, m.err)
		}
	}
	if m.Done() {
		s.done = true
		return
	}
	m.quiesceSkip()
	if m.err != nil {
		t.Fatalf("cycle %d: %v", m.cycle, m.err)
	}
}

// uopRef snapshots a uop's identity: pool recycling reuses the struct,
// so a pointer alone cannot witness "this instruction was squashed" —
// the sequence number disambiguates.
type uopRef struct {
	u   *uop
	seq uint64
}

func snapshotScheduler(m *Machine) (cons, ready, wheel []uopRef) {
	for _, refs := range m.consumers {
		for _, cr := range refs {
			cons = append(cons, uopRef{cr.u, cr.u.seq})
		}
	}
	for _, u := range m.ready {
		ready = append(ready, uopRef{u, u.seq})
	}
	for _, b := range m.ewheel.buckets {
		for _, u := range b {
			// Strictly future buckets: not completing on the very next
			// cycle's writeback.
			if u.doneAt > m.cycle+1 {
				wheel = append(wheel, uopRef{u, u.seq})
			}
		}
	}
	return
}

func anySquashed(refs []uopRef) bool {
	for _, r := range refs {
		if r.u.squashed && r.u.seq == r.seq {
			return true
		}
	}
	return false
}

// assertNoSquashedResidue fails if any squashed uop is still reachable
// from a scheduler structure — the unlink-on-squash obligation.
func assertNoSquashedResidue(t *testing.T, m *Machine) {
	t.Helper()
	for p, refs := range m.consumers {
		for _, cr := range refs {
			if cr.u.squashed {
				t.Fatalf("cycle %d: squashed uop seq %d still on consumer list of p%d", m.cycle, cr.u.seq, p)
			}
		}
	}
	for _, u := range m.ready {
		if u.squashed {
			t.Fatalf("cycle %d: squashed uop seq %d still on ready list", m.cycle, u.seq)
		}
		if !u.inReady {
			t.Fatalf("cycle %d: ready-list entry seq %d lost its inReady flag", m.cycle, u.seq)
		}
	}
	for _, b := range m.ewheel.buckets {
		for _, u := range b {
			if u.squashed {
				t.Fatalf("cycle %d: squashed uop seq %d still in wheel bucket (doneAt %d)", m.cycle, u.seq, u.doneAt)
			}
			if !u.inWheel {
				t.Fatalf("cycle %d: wheel entry seq %d lost its inWheel flag", m.cycle, u.seq)
			}
		}
	}
}

func buildProgram(t *testing.T, seed int64, gcfg progen.Config) *program.Program {
	t.Helper()
	src := progen.Generate(rand.New(rand.NewSource(seed)), gcfg)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	return prog
}

// TestSquashUnlinksSchedulerStructures steps a checked VCA machine over
// branchy programs until it has directly witnessed a squash hitting a
// uop that was (a) registered on a consumer list, (b) sitting on the
// ready list, and (c) parked in a future wheel bucket — then verifies
// after every cycle that no squashed uop remains reachable, that
// CheckNow stays clean, and that the run's output matches the reference
// emulator.
func TestSquashUnlinksSchedulerStructures(t *testing.T) {
	gcfg := progen.Config{Blocks: 40, Loops: true, Aliasing: true}
	sawCons, sawReady, sawWheel := false, false, false
	for seed := int64(1); seed <= 6; seed++ {
		prog := buildProgram(t, seed, gcfg)
		want := runEmu(t, prog, false)

		cfg := DefaultConfig(RenameVCA, WindowNone, 1, 96)
		cfg.Check = true
		m, err := New(cfg, []*program.Program{prog}, false)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		s := &stepper{m: m}
		for cycles := 0; !s.done && cycles < 2_000_000; cycles++ {
			squashedBefore := m.stats.Squashed
			cons, ready, wheel := snapshotScheduler(m)
			s.step(t)
			if m.stats.Squashed > squashedBefore {
				sawCons = sawCons || anySquashed(cons)
				sawReady = sawReady || anySquashed(ready)
				sawWheel = sawWheel || anySquashed(wheel)
			}
			assertNoSquashedResidue(t, m)
		}
		if !s.done {
			t.Fatalf("seed %d: machine did not finish", seed)
		}
		if err := m.CheckNow(); err != nil {
			t.Fatalf("seed %d: CheckNow after completion: %v", seed, err)
		}
		if got := m.result().Threads[0].Output; got != want {
			t.Fatalf("seed %d: output %q, want %q", seed, got, want)
		}
	}
	if !sawCons || !sawReady || !sawWheel {
		t.Fatalf("squash scenarios not all witnessed: consumer-list=%v ready-list=%v wheel=%v",
			sawCons, sawReady, sawWheel)
	}
}

// TestSquashDuringTrapsAndASTQ witnesses the two timing-sensitive squash
// windows the event scheduler must survive: a conventional-window
// machine squashing while injected window-trap operations are still
// pending rename, and a VCA-windowed machine squashing while ASTQ
// spill/fill completions are still parked in the ASTQ timing wheel.
func TestSquashDuringTrapsAndASTQ(t *testing.T) {
	t.Run("conventional window trap in flight", func(t *testing.T) {
		// A trap flushes its own thread's younger instructions before
		// injecting, so on one thread nothing squashable remains while
		// injections are pending; the overlap needs SMT — one thread's
		// mispredicts squashing while the other's trap operations await
		// rename. 136 physical registers leave one resident window per
		// thread, so every call and return traps.
		saw := false
		for seed := int64(1); seed <= 4 && !saw; seed++ {
			progA := buildProgram(t, seed, progen.Config{WindowLadder: 7, Blocks: 20, Loops: true})
			progB := buildProgram(t, seed+100, progen.Config{Blocks: 40, Loops: true, Aliasing: true})
			wantA := runEmu(t, progA, true)
			wantB := runEmu(t, progB, true)
			cfg := DefaultConfig(RenameConventional, WindowConventional, 2, 136)
			cfg.Check = true
			m, err := New(cfg, []*program.Program{progA, progB}, true)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			s := &stepper{m: m}
			for cycles := 0; !s.done && cycles < 4_000_000; cycles++ {
				squashedBefore := m.stats.Squashed
				pendingTrap := false
				for _, th := range m.threads {
					pendingTrap = pendingTrap || th.injectPending() > 0
				}
				s.step(t)
				if pendingTrap && m.stats.Squashed > squashedBefore {
					saw = true
				}
				assertNoSquashedResidue(t, m)
			}
			if err := m.CheckNow(); err != nil {
				t.Fatalf("seed %d: CheckNow: %v", seed, err)
			}
			res := m.result()
			if got := res.Threads[0].Output; got != wantA {
				t.Fatalf("seed %d: thread 0 output %q, want %q", seed, got, wantA)
			}
			if got := res.Threads[1].Output; got != wantB {
				t.Fatalf("seed %d: thread 1 output %q, want %q", seed, got, wantB)
			}
		}
		if !saw {
			t.Fatal("no squash landed while window-trap operations were pending")
		}
	})
	t.Run("vca astq completions pending", func(t *testing.T) {
		gcfg := progen.Config{WindowLadder: 6, Blocks: 30, Loops: true}
		saw := false
		for seed := int64(1); seed <= 4 && !saw; seed++ {
			prog := buildProgram(t, seed, gcfg)
			want := runEmu(t, prog, true)
			// 64 registers: heavy spill/fill traffic keeps the ASTQ busy.
			cfg := DefaultConfig(RenameVCA, WindowVCA, 1, 64)
			cfg.Check = true
			m, err := New(cfg, []*program.Program{prog}, true)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			s := &stepper{m: m}
			for cycles := 0; !s.done && cycles < 2_000_000; cycles++ {
				squashedBefore := m.stats.Squashed
				pendingASTQ := m.awheel.count > 0
				s.step(t)
				if pendingASTQ && m.stats.Squashed > squashedBefore {
					saw = true
				}
				assertNoSquashedResidue(t, m)
			}
			if err := m.CheckNow(); err != nil {
				t.Fatalf("seed %d: CheckNow: %v", seed, err)
			}
			if got := m.result().Threads[0].Output; got != want {
				t.Fatalf("seed %d: output %q, want %q", seed, got, want)
			}
		}
		if !saw {
			t.Fatal("no squash landed while ASTQ completions were in the wheel")
		}
	})
}

// TestStepDrivenRunMatchesRun proves the stepper's cycle replay is
// faithful: the same program on two identical machines — one driven by
// Run, one stepped — must produce bit-identical Results, down to the
// full counter map.
func TestStepDrivenRunMatchesRun(t *testing.T) {
	prog := buildProgram(t, 7, progen.Config{Blocks: 30, Loops: true, Aliasing: true})
	cfg := DefaultConfig(RenameVCA, WindowNone, 1, 96)

	mRun, err := New(cfg, []*program.Program{prog}, false)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	want, err := mRun.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	mStep, err := New(cfg, []*program.Program{prog}, false)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	s := &stepper{m: mStep}
	for cycles := 0; !s.done && cycles < 2_000_000; cycles++ {
		s.step(t)
	}
	if !s.done {
		t.Fatal("stepped machine did not finish")
	}
	got := mStep.result()

	wantCounters, gotCounters := want.Metrics.CounterMap(), got.Metrics.CounterMap()
	if !reflect.DeepEqual(wantCounters, gotCounters) {
		for k, v := range wantCounters {
			if gotCounters[k] != v {
				t.Errorf("counter %s: stepped %d, Run %d", k, gotCounters[k], v)
			}
		}
		t.Fatal("counter maps diverge between Run and stepped execution")
	}
	wantCmp, gotCmp := *want, *got
	wantCmp.Metrics, gotCmp.Metrics = nil, nil
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Fatalf("results diverge:\nRun:     %+v\nstepped: %+v", wantCmp, gotCmp)
	}
}
