package core

import (
	"fmt"
	"io"

	"vca/internal/isa"
)

// TraceWriter, when set on a Config, receives one line per committed
// instruction — the standard way to debug a simulated program or to diff
// two machine models instruction by instruction:
//
//	cyc 001234 t0 0001_0040 addi sp, sp, -32        sp=0x7ffffe0
//	cyc 001236 t0 0001_0044 stq ra, 24(sp)          [0x7fffff8]=0x10008
//
// Injected window-trap operations are tagged with '*'.

// traceCommit emits one trace line for a committing uop.
func (m *Machine) traceCommit(w io.Writer, th *thread, u *uop) {
	tag := ' '
	if u.injected {
		tag = '*'
	}
	var effect string
	switch {
	case u.isStore():
		effect = fmt.Sprintf("[%#x]=%#x", u.ea, u.storeData)
	case u.destPhys >= 0 && u.destReg != isa.RegNone:
		effect = fmt.Sprintf("%v=%#x", u.destReg, m.physVal[u.destPhys])
	case u.isCtl:
		effect = fmt.Sprintf("-> %#x", u.actualNPC)
	}
	disasm := "window-trap op"
	if !u.injected {
		disasm = u.inst.DisasmAt(u.pc)
	}
	fmt.Fprintf(w, "cyc %06d t%d %08x%c %-28s %s\n",
		m.cycle, th.id, u.pc, tag, disasm, effect)
}
