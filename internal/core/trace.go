package core

import (
	"fmt"
	"io"

	"vca/internal/isa"
)

// TraceWriter, when set on a Config, receives one line per committed
// instruction — the standard way to debug a simulated program or to diff
// two machine models instruction by instruction:
//
//	cyc 001234 t0 0001_0040 addi sp, sp, -32        sp=0x7ffffe0
//	cyc 001236 t0 0001_0044 stq ra, 24(sp)          [0x7fffff8]=0x10008
//
// Injected window-trap operations are tagged with '*'.

// traceCommit emits one trace line for a committing uop.
// Commit tracing only runs with a -trace writer attached, never in
// measured configurations.
//
//vca:cold
func (m *Machine) traceCommit(w io.Writer, th *thread, u *uop) {
	tag := ' '
	if u.injected {
		tag = '*'
	}
	var effect string
	switch {
	case u.isStore():
		effect = fmt.Sprintf("[%#x]=%#x", u.ea, u.storeData)
	case u.destPhys >= 0 && u.destReg != isa.RegNone:
		effect = fmt.Sprintf("%v=%#x", u.destReg, m.physVal[u.destPhys])
	case u.isCtl:
		effect = fmt.Sprintf("-> %#x", u.actualNPC)
	}
	disasm := u.inst.DisasmAt(u.pc)
	if u.injected {
		disasm = injectedDisasm(u)
	}
	fmt.Fprintf(w, "cyc %06d t%d %08x%c %-28s %s\n",
		m.cycle, th.id, u.pc, tag, disasm, effect)
}

// injectedDisasm renders an injected window-trap memory operation
// distinctly instead of the former catch-all "window-trap op": win.save
// is the store that copies a logical register slot out to the backing
// store on overflow, win.restore the load that brings it back on
// underflow.
// Reachable only from traceCommit.
//
//vca:cold
func injectedDisasm(u *uop) string {
	op := "win.restore"
	if u.injStore {
		op = "win.save"
	}
	return fmt.Sprintf("%s l%d, [%#x]", op, u.injLogical, u.injAddr)
}
