package core

import (
	"reflect"
	"testing"

	"vca/internal/minic"
	"vca/internal/program"
)

// TestDeterminismFullResult runs the same configuration twice back to
// back and requires the complete Result — every counter, every cache
// stat, every thread summary — to be identical. This is the guard the
// uop pool and scratch-buffer reuse must never violate: recycled state
// leaking across instructions would show up here as a diverging stat.
func TestDeterminismFullResult(t *testing.T) {
	cases := []struct {
		name     string
		rename   RenameModel
		window   WindowModel
		abi      minic.ABI
		physRegs int
	}{
		{"vca-windowed-small", RenameVCA, WindowVCA, minic.ABIWindowed, 96},
		{"conv-window-traps", RenameConventional, WindowConventional, minic.ABIWindowed, 128},
		{"baseline-flat", RenameConventional, WindowNone, minic.ABIFlat, 256},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildProg(t, "fib", srcFib, tc.abi)
			cfg := DefaultConfig(tc.rename, tc.window, 1, tc.physRegs)
			windowed := tc.abi == minic.ABIWindowed
			run := func() *Result {
				m, err := New(cfg, []*program.Program{p}, windowed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1, r2 := run(), run()
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("back-to-back runs diverged:\nfirst:  %+v\nsecond: %+v", r1, r2)
			}
		})
	}
}

// TestSteadyStateAllocs pins the simulator's per-committed-instruction
// allocation rate near zero. With the uop pool, the page-cached memory,
// and the retained scratch buffers, a run's allocations are dominated by
// machine construction and one-time structure growth, both amortized
// over the commit budget; a regression that allocates per instruction
// (the pre-pool behavior was ~4 allocs/inst) trips this immediately.
//
// Co-simulation is off: the golden-model emulator is a separate
// subsystem, and its syscall output formatting may allocate.
func TestSteadyStateAllocs(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIFlat)
	cfg := DefaultConfig(RenameVCA, WindowNone, 1, 128)
	cfg.CoSim = false
	cfg.StopAfter = 40_000

	// Machine construction allocates (register file, rename table, cache
	// arrays); measure it separately so the bound tracks only the cycle
	// loop itself.
	construction := testing.AllocsPerRun(3, func() {
		if _, err := New(cfg, []*program.Program{p}, false); err != nil {
			t.Fatal(err)
		}
	})

	var committed uint64
	perRun := testing.AllocsPerRun(3, func() {
		m, err := New(cfg, []*program.Program{p}, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		committed = res.Threads[0].Committed
	})
	if committed == 0 {
		t.Fatal("no instructions committed")
	}
	steady := perRun - construction
	perInst := steady / float64(committed)
	t.Logf("%.0f allocs/run (%.0f construction), %d committed, %.4f allocs/inst",
		perRun, construction, committed, perInst)
	if perInst > 0.05 {
		t.Errorf("steady-state allocation regression: %.4f allocs per committed instruction (want <= 0.05)", perInst)
	}
}
