package core

import (
	"bytes"
	"fmt"

	"vca/internal/branch"
	"vca/internal/emu"
	"vca/internal/isa"
	"vca/internal/mem"
	"vca/internal/metrics"
	"vca/internal/program"
	"vca/internal/rename"
)

// thread is one hardware thread context: a program, its memory image, the
// front-end state, and (depending on the machine) window bookkeeping.
type thread struct {
	id   int
	prog *program.Program
	text []isa.Inst
	meta []isa.Meta // predecoded operand/class view, index-aligned with text
	mem  *mem.Memory

	pc       uint64
	commitPC uint64 // next PC in committed order (checkpoint extraction)
	done     bool
	exitCode int64
	output   bytes.Buffer

	committed uint64
	inFlight  int // front-end + IQ occupancy, for ICOUNT fetch
	inFetchQ  int // this thread's fetch-buffer entries (fetchBufCap check)
	lsqStores int // this thread's stores resident in the LSQ
	robCount  int // this thread's ROB residency (occupancy sampling)

	fetchBlockedUntil  uint64
	renameBlockedUntil uint64

	// VCA base pointers (§2.1.4/2.1.5). specWBP is the rename-time
	// (speculative) window base pointer; commitWBP tracks committed state
	// for diagnostics.
	gbp, specWBP, commitWBP uint64

	// Conventional register windows (§4.1).
	specDepth   int
	commitDepth int
	winBase     int // oldest resident window depth

	// Window-trap memory ops awaiting rename, drained from injectHead so
	// the backing array is reused across traps (a trap injects a whole
	// window's worth of slots at once).
	pendingInject []*uop
	injectHead    int
	injectedLive  int // injected uops created but not yet committed

	windowed bool // this thread's binary uses the windowed ABI

	ref *emu.Machine // co-simulation golden model

	memTag uint64 // distinguishes per-thread addresses in shared caches
}

// Machine is the cycle-level simulated processor.
type Machine struct {
	cfg     Config
	threads []*thread
	hier    *mem.Hierarchy
	bp      *branch.Predictor

	conv *rename.Conventional
	vca  *rename.VCA
	nwin int // conventional window count

	physVal   []uint64
	physReady []bool

	cycle uint64
	seq   uint64
	lsq   []*uop

	// Event-driven scheduler (wakeup.go / wheel.go / quiesce.go). The IQ
	// no longer exists as a scanned slice: a dispatched uop lives on
	// consumer lists until its sources resolve, then on the ready list
	// until issue; iqCount tracks logical IQ occupancy for the size limit
	// and occupancy sampling. ewheel/awheel bucket in-flight completions
	// by doneAt. noSkip is a test knob disabling the quiesced-cycle skip.
	iqCount     int
	ready       []*uop
	readyDirty  bool
	dispatchSeq uint64
	consumers   [][]consRef
	ewheel      execWheel
	awheel      astqWheel
	noSkip      bool

	// FIFO queues drained from the front every cycle. Each is a slice
	// plus a head index so pops recycle the backing array instead of
	// reallocating it (the re-slice-and-append pattern allocates a fresh
	// array every time the consumed prefix exhausts the capacity).
	rob       []*uop
	robHead   int
	fetchQ    []fetchEntry // decoded, predicted, awaiting rename
	fetchHead int
	astq      []astqEntry
	astqHead  int

	// Allocation-free steady state: recycled uops and per-cycle scratch
	// buffers (retained across cycles so the hot loop never allocates).
	uopPool         []*uop
	opsScratch      []rename.MemOp
	resolvedScratch []*uop
	victimScratch   []*uop

	// Per-cycle resource budgets (reset each cycle; rename credits may
	// carry debt from a multi-operation instruction).
	dl1Ports   int
	portCredit int
	astqCredit int

	stats   Stats
	metrics *metrics.Registry
	cnt     coreCounters
	chk     *checker // lazily built by the opt-in invariant checker
	astqSeq uint64   // ASTQ enqueue stamp (FIFO-order invariant)
	err     error
}

type fetchEntry struct {
	u       *uop
	readyAt uint64 // cycle at which it reaches the rename stage
}

type astqEntry struct {
	op     rename.MemOp
	thread int
	doneAt uint64
	issued bool
	enq    uint64 // enqueue stamp; the queue must stay ascending (FIFO)
}

// Stats aggregates the measurements the experiments consume.
type Stats struct {
	Cycles            uint64
	Committed         []uint64 // per thread
	Fetched           uint64
	Squashed          uint64
	Mispredicts       uint64
	WindowTraps       uint64
	SpillsIssued      uint64
	FillsIssued       uint64
	RenameStallCycles uint64
	IQFullStalls      uint64
	ROBFullStalls     uint64
}

// New builds a machine running the given programs (one per thread; their
// count must equal cfg.Threads). Windowed binaries must be run on a
// machine with a window model and vice versa.
func New(cfg Config, progs []*program.Program, windowed bool) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) != cfg.Threads {
		return nil, fmt.Errorf("core: %d programs for %d threads", len(progs), cfg.Threads)
	}
	if windowed != (cfg.Window != WindowNone) {
		return nil, fmt.Errorf("core: windowed-binary flag %v does not match window model %v", windowed, cfg.Window)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 40
	}

	m := &Machine{
		cfg:  cfg,
		hier: mem.NewHierarchy(cfg.Hier),
		bp:   branch.New(cfg.BP),
	}
	m.stats.Committed = make([]uint64, cfg.Threads)
	m.physVal = make([]uint64, cfg.PhysRegs)
	m.physReady = make([]bool, cfg.PhysRegs)
	// Pre-carve per-register consumer-list capacity from one backing
	// array (same reasoning as the wheel buckets: reach allocation-free
	// steady state without per-list append growth).
	m.consumers = make([][]consRef, cfg.PhysRegs)
	consBacking := make([]consRef, cfg.PhysRegs*4)
	for p := range m.consumers {
		m.consumers[p] = consBacking[p*4 : p*4 : (p+1)*4]
	}
	m.ready = make([]*uop, 0, cfg.IQSize)
	memSpan := cfg.Hier.DL1.HitLat + cfg.Hier.L2.HitLat + cfg.Hier.MemLat
	m.ewheel.init(memSpan)
	m.awheel.init(memSpan)

	// Rename substrate.
	switch cfg.Rename {
	case RenameConventional:
		logical := isa.NumArchRegs
		if cfg.Window == WindowConventional {
			m.nwin = (cfg.PhysRegs - 64 - isa.GlobalSlots) / isa.WindowSlots
			if m.nwin < 1 {
				return nil, fmt.Errorf("core: %d physical registers cannot hold any register window (need >= %d)",
					cfg.PhysRegs, 64+isa.GlobalSlots+isa.WindowSlots)
			}
			logical = isa.GlobalSlots + m.nwin*isa.WindowSlots
		}
		conv, err := rename.NewConventional(cfg.Threads, logical, cfg.PhysRegs)
		if err != nil {
			return nil, err
		}
		m.conv = conv
	case RenameVCA:
		vcfg := cfg.VCA
		vcfg.PhysRegs = cfg.PhysRegs
		m.vca = rename.NewVCA(vcfg)
		m.vca.ReadValue = func(p int) uint64 { return m.physVal[p] }
	}

	// Threads.
	for t := 0; t < cfg.Threads; t++ {
		p := progs[t]
		if err := p.Validate(); err != nil {
			return nil, err
		}
		th := &thread{
			id:       t,
			prog:     p,
			text:     p.Predecode(),
			meta:     p.Meta(),
			mem:      mem.NewMemory(),
			pc:       p.Entry,
			commitPC: p.Entry,
			windowed: windowed,
			memTag:   uint64(t) << 44,
		}
		p.LoadInto(th.mem)
		gbp, wbp := program.ThreadRegSpace(t)
		th.gbp, th.specWBP, th.commitWBP = gbp, wbp, wbp
		m.threads = append(m.threads, th)

		m.initRegs(th)

		if cfg.CoSim {
			th.ref = emu.New(p, emu.Config{Windowed: windowed})
		}
	}

	m.metrics = metrics.NewRegistry()
	m.registerMetrics()
	if cfg.ChromeTrace != nil {
		m.initChromeTrace()
	}
	return m, nil
}

// initRegs installs initial architectural values (everything zero except
// sp). Conventional machines write the pre-allocated physical registers;
// VCA machines write the memory-mapped backing store, from which values
// fill on demand.
func (m *Machine) initRegs(th *thread) {
	setReg := func(r isa.Reg, v uint64) {
		switch m.cfg.Rename {
		case RenameConventional:
			log := m.logicalOf(th, r, true)
			p := m.conv.Lookup(th.id, log)
			m.physVal[p] = v
			m.physReady[p] = true
		case RenameVCA:
			th.mem.Write(m.regAddr(th, r), 8, v)
		}
	}
	if m.cfg.Rename == RenameConventional {
		// All pre-allocated mappings start ready with value zero.
		for l := 0; l < m.convLogicalCount(); l++ {
			p := m.conv.Lookup(th.id, l)
			m.physVal[p] = 0
			m.physReady[p] = true
		}
	}
	setReg(isa.RegSP, program.StackTop)
}

func (m *Machine) convLogicalCount() int {
	if m.cfg.Window == WindowConventional {
		return isa.GlobalSlots + m.nwin*isa.WindowSlots
	}
	return isa.NumArchRegs
}

// logicalOf maps an architectural register to a conventional logical
// index, applying the window mapping when enabled. committed selects
// commit-time depth instead of the speculative rename-time depth.
func (m *Machine) logicalOf(th *thread, r isa.Reg, committed bool) int {
	if m.cfg.Window != WindowConventional {
		return int(r)
	}
	if !r.IsWindowed() {
		return r.GlobalSlot()
	}
	d := th.specDepth
	if committed {
		d = th.commitDepth
	}
	return isa.GlobalSlots + (d%m.nwin)*isa.WindowSlots + r.WindowSlot()
}

// winSlotLogical returns the logical index of window slot s at depth d.
func (m *Machine) winSlotLogical(d, s int) int {
	return isa.GlobalSlots + (d%m.nwin)*isa.WindowSlots + s
}

// regAddr computes the VCA logical register memory address (§2.1.1): the
// register index selects the windowed or global base pointer, which is
// summed with the slot offset.
func (m *Machine) regAddr(th *thread, r isa.Reg) uint64 {
	if m.cfg.Window != WindowNone && r.IsWindowed() {
		return th.specWBP + 8*uint64(r.WindowSlot())
	}
	if m.cfg.Window == WindowNone {
		return th.gbp + 8*uint64(r)
	}
	return th.gbp + 8*uint64(r.GlobalSlot())
}

// windowAddr gives the backing-store address of window depth d for
// conventional window traps (shared layout with VCA window stacks).
func (m *Machine) windowAddr(th *thread, d int) uint64 {
	_, wbpTop := program.ThreadRegSpace(th.id)
	return wbpTop - uint64(d)*isa.WindowBytes
}

// cacheAddr tags a thread-local address for the shared cache hierarchy.
func (th *thread) cacheAddr(addr uint64) uint64 { return addr ^ th.memTag }

// Done reports whether every thread has exited.
func (m *Machine) Done() bool {
	for _, th := range m.threads {
		if !th.done {
			return false
		}
	}
	return true
}

// Run simulates until completion, the StopAfter commit budget, an error,
// or MaxCycles. It returns the collected statistics.
func (m *Machine) Run() (*Result, error) {
	for m.cycle = 1; m.cycle <= m.cfg.MaxCycles; m.cycle++ {
		m.dl1Ports = m.cfg.Hier.DL1Ports

		m.commitStage()
		if m.err != nil {
			return nil, m.err
		}
		m.writebackStage()
		m.issueStage()
		m.renameStage()
		m.fetchStage()
		m.sampleOccupancy()
		if m.cfg.Check {
			if m.checkCycle(); m.err != nil {
				return nil, m.err
			}
		}

		if m.Done() {
			break
		}
		if m.cfg.StopAfter > 0 {
			for _, th := range m.threads {
				if th.committed >= m.cfg.StopAfter {
					// Under StopExact the boundary must leave committed
					// window state whole: when the budget lands on a
					// trapping call/return, keep cycling until the trap's
					// injected spill/fill operations have all committed
					// (commit of real instructions stays frozen).
					if m.cfg.StopExact && th.injectedLive > 0 {
						continue
					}
					return m.result(), nil
				}
			}
		}

		m.quiesceSkip()
		if m.err != nil {
			return nil, m.err
		}
	}
	if m.cycle > m.cfg.MaxCycles {
		return nil, fmt.Errorf("core: exceeded %d cycles (hang?)", m.cfg.MaxCycles)
	}
	return m.result(), nil
}

// robLen is the live ROB occupancy.
func (m *Machine) robLen() int { return len(m.rob) - m.robHead }

// popROB consumes the oldest live ROB entry, resetting or compacting the
// backing array once the consumed prefix dominates.
func (m *Machine) popROB() {
	m.robHead++
	if m.robHead == len(m.rob) {
		m.rob = m.rob[:0]
		m.robHead = 0
	} else if m.robHead >= 256 && m.robHead*2 >= len(m.rob) {
		n := copy(m.rob, m.rob[m.robHead:])
		m.rob = m.rob[:n]
		m.robHead = 0
	}
}

// injectPending is the number of window-trap operations still awaiting
// rename.
func (th *thread) injectPending() int { return len(th.pendingInject) - th.injectHead }

// popInject consumes the oldest pending injected operation. The queue
// fully drains between traps (a trap cannot fire while injections are
// outstanding), so emptying it resets the backing array for reuse.
func (th *thread) popInject() {
	th.injectHead++
	if th.injectHead == len(th.pendingInject) {
		th.pendingInject = th.pendingInject[:0]
		th.injectHead = 0
	}
}

// astqLen is the live ASTQ occupancy.
func (m *Machine) astqLen() int { return len(m.astq) - m.astqHead }

// popASTQ consumes the oldest live ASTQ entry.
func (m *Machine) popASTQ() {
	m.astqHead++
	if m.astqHead == len(m.astq) {
		m.astq = m.astq[:0]
		m.astqHead = 0
	} else if m.astqHead >= 64 && m.astqHead*2 >= len(m.astq) {
		n := copy(m.astq, m.astq[m.astqHead:])
		m.astq = m.astq[:n]
		m.astqHead = 0
	}
}

// readSrc returns the current value of a renamed source (zero registers
// and absent operands read as zero).
func (m *Machine) readSrc(u *uop, i int) uint64 {
	p := u.srcPhys[i]
	if p == rename.PhysNone {
		return 0
	}
	return m.physVal[p]
}

func (m *Machine) srcReady(u *uop, i int) bool {
	p := u.srcPhys[i]
	return p == rename.PhysNone || m.physReady[p]
}

func (m *Machine) allSrcsReady(u *uop) bool {
	for i := 0; i < u.nsrc; i++ {
		if !m.srcReady(u, i) {
			return false
		}
	}
	return true
}
