package core

import (
	"fmt"

	"vca/internal/metrics"
)

// Chrome-trace timeline recording (opt-in via Config.ChromeTrace; see
// internal/metrics/chrometrace.go for the format). Each simulated
// hardware thread is one trace "process"; within it, the pipeline is
// split into fixed lanes so a committed instruction appears as four
// stacked slices — front end, queue wait, execute, retire wait — whose
// gaps and stretches are the pipeline's bubbles. Stall-cause instants
// and occupancy counter tracks land on the same time axis.
const (
	laneFrontend = 0 // fetch through rename arrival
	laneQueue    = 1 // rename to issue (IQ residency)
	laneExec     = 2 // issue to completion
	laneRetire   = 3 // completion to commit (ROB head wait)
	laneASTQ     = 4 // VCA spill/fill operations in flight
)

// initChromeTrace labels the processes and lanes once at construction.
func (m *Machine) initChromeTrace() {
	rec := m.cfg.ChromeTrace
	for _, th := range m.threads {
		rec.NameProcess(th.id, fmt.Sprintf("thread %d (%s)", th.id, th.prog.Name))
		rec.NameThread(th.id, laneFrontend, "front end")
		rec.NameThread(th.id, laneQueue, "queue")
		rec.NameThread(th.id, laneExec, "execute")
		rec.NameThread(th.id, laneRetire, "retire")
		rec.NameThread(th.id, laneASTQ, "astq")
	}
}

// chromeCommit emits the per-stage slices of a committing uop. Injected
// window-trap operations enter the pipeline at rename, so their
// front-end slice is skipped (fetchedAt stays zero; cycles start at 1).
// Config-gated tracing (m.ctrace nil in measured configurations).
//
//vca:cold
func (m *Machine) chromeCommit(th *thread, u *uop) {
	rec := m.cfg.ChromeTrace
	name := chromeName(u)
	pcArg := metrics.Arg{Key: "pc", Val: fmt.Sprintf("%#x", u.pc)}
	seqArg := metrics.Arg{Key: "seq", Val: fmt.Sprintf("%d", u.seq)}
	fetched, renamed, issued := uint64(u.fetchedAt), uint64(u.renamedAt), uint64(u.issuedAt)
	if fetched > 0 && renamed >= fetched {
		rec.Complete(name, "frontend", th.id, laneFrontend, fetched, renamed-fetched, pcArg, seqArg)
	}
	if renamed > 0 && issued >= renamed {
		rec.Complete(name, "queue", th.id, laneQueue, renamed, issued-renamed, pcArg, seqArg)
	}
	if issued > 0 && u.doneAt >= issued {
		rec.Complete(name, "execute", th.id, laneExec, issued, u.doneAt-issued, pcArg, seqArg)
	}
	if u.doneAt > 0 && m.cycle >= u.doneAt {
		rec.Complete(name, "retire", th.id, laneRetire, u.doneAt, m.cycle-u.doneAt, pcArg, seqArg)
	}
}

// chromeASTQ emits one completed spill/fill operation on the ASTQ lane.
// Config-gated tracing (m.ctrace nil in measured configurations).
//
//vca:cold
func (m *Machine) chromeASTQ(e astqEntry, issuedAt uint64) {
	rec := m.cfg.ChromeTrace
	name := "fill"
	if e.op.IsSpill {
		name = "spill"
	}
	rec.Complete(name, "astq", e.thread, laneASTQ, issuedAt, e.doneAt-issuedAt,
		metrics.Arg{Key: "addr", Val: fmt.Sprintf("%#x", e.op.Addr)})
}

// chromeName is the slice label: the disassembled instruction, or the
// injected window-trap operation's synthetic mnemonic.
func chromeName(u *uop) string {
	if u.injected {
		return injectedDisasm(u)
	}
	return u.inst.DisasmAt(u.pc)
}
