package core

import (
	"cmp"
	"slices"

	"vca/internal/isa"
	"vca/internal/mem"
)

// issueStage selects ready instructions from the ready list in age
// (dispatch) order, subject to functional-unit and data-cache-port
// limits, and executes them (the simulator computes values at issue;
// completion is signaled after the operation's latency by the writeback
// stage). Leftover data-cache ports issue the head of the ASTQ (§2.2.2).
//
// The ready list holds exactly the IQ residents with all sources ready
// (the wakeup network's invariant), so the old full-IQ scan's stall
// evidence falls out directly: issueNoReady is "IQ non-empty and ready
// list empty" — the width cutoff cannot hide the first ready uop, since
// width only decrements when something (necessarily ready) issues.
//
//vca:hot
func (m *Machine) issueStage() {
	intALU := m.cfg.IntALUs
	mulDiv := m.cfg.IntMulDivs
	fpu := m.cfg.FPUs
	width := m.cfg.Width

	// Per-cycle stall evidence: whether a ready instruction was denied a
	// functional unit or a DL1 port (several causes may fire in one
	// cycle).
	anyReady := len(m.ready) > 0
	fuSat := false
	dl1Denied := false

	m.sortReady()
	kept := m.ready[:0]
	for idx, u := range m.ready {
		if width == 0 {
			// Issue bandwidth exhausted: nothing younger can issue either,
			// so keep the rest of the list wholesale (kept trails idx, so
			// the overlapping copy is safe).
			kept = append(kept, m.ready[idx:]...)
			break
		}
		issued := false
		switch {
		case u.isLoad():
			if m.dl1Ports == 0 {
				dl1Denied = true
			} else {
				issued = m.tryIssueLoad(u)
			}
		case u.isStore():
			issued = m.tryIssueStore(u)
		case u.class == isa.ClassIntMul || u.class == isa.ClassIntDiv:
			if mulDiv > 0 {
				mulDiv--
				m.execute(u)
				issued = true
			} else {
				fuSat = true
			}
		case u.class == isa.ClassFPALU || u.class == isa.ClassFPMul || u.class == isa.ClassFPDiv:
			if fpu > 0 {
				fpu--
				m.execute(u)
				issued = true
			} else {
				fuSat = true
			}
		default: // integer ALU, control, syscall, invalid
			if intALU > 0 {
				intALU--
				m.execute(u)
				issued = true
			} else {
				fuSat = true
			}
		}
		if issued {
			width--
			u.issued = true
			u.issuedAt = uint32(m.cycle)
			m.cnt.issueUops++
			u.inIQ = false
			u.inReady = false
			m.iqCount--
			if !u.injected {
				m.threads[u.thread].inFlight--
			}
			m.ewheel.insert(u, m.cycle)
		} else {
			kept = append(kept, u)
		}
	}
	m.ready = kept

	if m.iqCount > 0 && !anyReady {
		m.cnt.issueNoReady++
	}
	if fuSat {
		m.cnt.issueFUSat++
	}
	if dl1Denied {
		m.cnt.issueDL1Ports++
	}

	// ASTQ: spill/fill operations use leftover memory ports, in FIFO
	// order.
	for m.dl1Ports > 0 && m.astqLen() > 0 {
		e := m.astq[m.astqHead]
		m.popASTQ()
		m.dl1Ports--
		th := m.threads[e.thread]
		lat := m.hier.DataAccess(th.cacheAddr(e.op.Addr), e.op.IsSpill, mem.CauseSpillFill)
		if e.op.IsSpill {
			th.mem.Write(e.op.Addr, 8, e.op.Value)
			m.stats.SpillsIssued++
		} else {
			m.stats.FillsIssued++
		}
		e.issued = true
		e.doneAt = m.cycle + uint64(lat)
		if m.cfg.ChromeTrace != nil {
			m.chromeASTQ(e, m.cycle)
		}
		m.awheel.insert(e, m.cycle)
	}
}

// tryIssueLoad issues a load if memory ordering allows: every older store
// of the same thread must have a resolved address (conservative
// disambiguation); an exact-covering older store forwards its data.
// Injected window-trap loads address the register backing store, which
// program stores never alias, so they skip the ordering check. The caller
// has already checked DL1 port availability.
func (m *Machine) tryIssueLoad(u *uop) bool {
	base := m.readSrc(u, 0)
	ea := u.inst.MemEA(base)
	size := u.inst.Op.MemBytes()
	if u.injected {
		ea, size = u.injAddr, 8
	}

	var fwd *uop
	if !u.injected && m.threads[u.thread].lsqStores > 0 {
		// The walk only matters when this thread has stores in flight; the
		// per-thread count lets store-free stretches skip it entirely.
		for _, s := range m.lsq {
			if s.thread != u.thread || s.seq >= u.seq {
				continue
			}
			if !s.issued {
				m.cnt.loadOrderBlocked++
				return false // unresolved older store address
			}
			// Resolved: check overlap.
			sEnd, lEnd := s.ea+uint64(s.memBytes), ea+uint64(size)
			if s.ea < lEnd && ea < sEnd {
				if s.ea <= ea && lEnd <= sEnd {
					fwd = s // youngest covering store wins (keep scanning)
				} else {
					m.cnt.loadOrderBlocked++
					return false // partial overlap: wait for the store to commit
				}
			}
		}
	}

	m.dl1Ports--
	th := m.threads[u.thread]
	u.ea, u.memBytes = ea, size
	lat := m.hier.DataAccess(th.cacheAddr(ea), false, u.cause())
	var raw uint64
	if fwd != nil {
		raw = fwd.storeData >> (8 * (ea - fwd.ea))
		if size < 8 {
			raw &= 1<<(8*size) - 1
		}
	} else {
		raw = th.mem.Read(ea, size)
	}
	u.result = loadExtend(u.inst.Op, raw, u.injected)
	u.doneAt = m.cycle + 1 + uint64(lat)
	return true
}

func (u *uop) cause() mem.AccessCause {
	if u.injected {
		return mem.CauseWindowTrap
	}
	return mem.CauseProgram
}

func loadExtend(op isa.Op, raw uint64, injected bool) uint64 {
	if injected {
		return raw
	}
	if op.MemSigned() {
		return uint64(int64(int32(raw)))
	}
	return raw
}

// tryIssueStore resolves a store's address and captures its data; the
// cache write happens at commit.
func (m *Machine) tryIssueStore(u *uop) bool {
	if u.injected {
		u.ea, u.memBytes = u.injAddr, 8
		u.storeData = m.readSrc(u, 0)
	} else {
		u.ea = u.inst.MemEA(m.readSrc(u, 0))
		u.memBytes = u.inst.Op.MemBytes()
		u.storeData = m.readSrc(u, 1)
		if u.memBytes < 8 {
			u.storeData &= 1<<(8*u.memBytes) - 1
		}
	}
	u.doneAt = m.cycle + 1
	return true
}

// execute computes a non-memory uop's result and schedules completion.
func (m *Machine) execute(u *uop) {
	a := m.readSrc(u, 0)
	b := m.readSrc(u, 1)
	if u.inst.HasImmOperand() {
		b = u.inst.ImmOperand()
	}
	u.doneAt = m.cycle + uint64(u.inst.Op.Latency())

	switch u.class {
	case isa.ClassBranch:
		u.taken = isa.BranchTaken(u.inst.Op, a)
		if u.taken {
			u.actualNPC, _ = u.inst.ControlTarget(u.pc)
		} else {
			u.actualNPC = u.pc + 4
		}
	case isa.ClassJump:
		u.taken = true
		if u.inst.Op == isa.OpJmp {
			u.actualNPC, _ = u.inst.ControlTarget(u.pc)
		} else {
			u.actualNPC = a
		}
	case isa.ClassCall:
		u.taken = true
		u.result = u.pc + 4 // ra
		if u.inst.Op == isa.OpJsr {
			u.actualNPC, _ = u.inst.ControlTarget(u.pc)
		} else {
			u.actualNPC = a
		}
	case isa.ClassRet:
		u.taken = true
		u.actualNPC = a
	case isa.ClassSyscall:
		u.sysVals[0], u.sysVals[1] = a, b
	case isa.ClassInvalid:
		// Wrong-path garbage; completes as a no-op and is squashed
		// before commit (commit errors out otherwise).
	default:
		u.result = isa.EvalALU(u.inst.Op, a, b)
	}
}

// writebackStage completes executions and ASTQ operations whose latency
// has elapsed: destination registers become ready, dependents wake onto
// the ready list, and control instructions resolve (possibly triggering
// recovery). The timing wheels hand over exactly this cycle's bucket;
// nothing else in flight is touched.
//
//vca:hot
func (m *Machine) writebackStage() {
	resolved := m.resolvedScratch[:0]
	for _, u := range m.ewheel.take(m.cycle) {
		u.inWheel = false
		u.done = true
		if u.destPhys >= 0 {
			m.physVal[u.destPhys] = u.result
			m.physReady[u.destPhys] = true
			m.wakeConsumers(u.destPhys)
		}
		if u.isCtl {
			resolved = append(resolved, u)
		}
	}

	// Resolve oldest-first; a recovery may squash younger branches that
	// resolved in the same cycle — they must then be ignored.
	sortBySeq(resolved)
	for _, u := range resolved {
		if !u.squashed {
			m.resolveControl(u)
		}
	}
	m.resolvedScratch = resolved[:0]

	for _, e := range m.awheel.take(m.cycle) {
		if !e.op.IsSpill {
			// Fill completes: deliver the value unless the register was
			// recycled after its consumers were squashed.
			if m.vca.FillLive(e.op.Addr, e.op.Phys) {
				th := m.threads[e.thread]
				m.physVal[e.op.Phys] = th.mem.Read(e.op.Addr, 8)
				m.physReady[e.op.Phys] = true
				m.wakeConsumers(e.op.Phys)
			}
		}
	}
}

func sortBySeq(us []*uop) {
	slices.SortFunc(us, func(a, b *uop) int { return cmp.Compare(a.seq, b.seq) })
}

// resolveControl trains the predictor and recovers from mispredictions.
func (m *Machine) resolveControl(u *uop) {
	mispred := u.actualNPC != u.predNPC
	if u.class == isa.ClassBranch {
		m.bp.ResolveCond(u.pc, u.ck, u.taken, mispred)
	} else if u.inst.Op == isa.OpJmpR || u.inst.Op == isa.OpJsrR || u.inst.Op == isa.OpRet {
		m.bp.UpdateBTB(u.pc, u.actualNPC)
	}
	if mispred {
		m.stats.Mispredicts++
		m.recoverFrom(u)
	}
}
