package core

import (
	"fmt"

	"vca/internal/metrics"
)

// This file is the core's observability surface: the stall-cause
// taxonomy for each pipeline stage, the per-thread queue occupancy
// trackers, and the registration of every counter into the machine's
// metrics.Registry. Counters are plain struct fields bumped inline on
// the hot path; the registry is only consulted at construction and
// export time. The full name/unit catalogue is docs/OBSERVABILITY.md.

// fetchStall classifies cycles in which the fetch stage picked no
// thread. When several threads are held for different reasons in the
// same cycle, the cause is attributed with the priority threads_done >
// inject_pending > blocked > buffer_full (documented in
// docs/OBSERVABILITY.md).
type fetchStall uint8

const (
	fsThreadsDone fetchStall = iota // every thread has exited
	fsInject                        // window-trap operations await rename
	fsBlocked                       // trap penalty or misprediction redirect
	fsBufFull                       // fetch buffer at capacity
	numFetchStalls
)

func (c fetchStall) String() string {
	switch c {
	case fsThreadsDone:
		return "threads_done"
	case fsInject:
		return "inject_pending"
	case fsBlocked:
		return "blocked"
	case fsBufFull:
		return "buffer_full"
	}
	return "?"
}

// renameStall classifies rename-stage stalls: the in-order stage found
// work but could not rename its head this cycle. At most one cause
// fires per cycle (the stage stops at the first blocked uop).
type renameStall uint8

const (
	rsROBFull  renameStall = iota // reorder buffer at capacity
	rsIQFull                      // instruction queue at capacity
	rsLSQFull                     // store queue at capacity
	rsNoPhys                      // conventional free list empty
	rsVCAPorts                    // VCA rename-table port credit exhausted
	rsVCAASTQ                     // ASTQ full or write credit exhausted
	rsVCATable                    // VCA: no evictable register or table way
	rsWalk                        // misprediction recovery walk in progress
	rsEmpty                       // nothing ready from the front end
	numRenameStalls
)

func (c renameStall) String() string {
	switch c {
	case rsROBFull:
		return "rob_full"
	case rsIQFull:
		return "iq_full"
	case rsLSQFull:
		return "lsq_full"
	case rsNoPhys:
		return "no_phys"
	case rsVCAPorts:
		return "vca_ports"
	case rsVCAASTQ:
		return "vca_astq"
	case rsVCATable:
		return "vca_table"
	case rsWalk:
		return "walk"
	case rsEmpty:
		return "empty"
	}
	return "?"
}

// commitStall classifies cycles in which the commit stage retired
// nothing while the ROB was non-empty, by what the ROB head was doing.
type commitStall uint8

const (
	csHeadLoad  commitStall = iota // head is a load awaiting data
	csHeadStore                    // head is a store awaiting address/data
	csHeadExec                     // head is non-memory work in flight
	csStorePort                    // head store is done but no DL1 port remains
	numCommitStalls
)

func (c commitStall) String() string {
	switch c {
	case csHeadLoad:
		return "head_load"
	case csHeadStore:
		return "head_store"
	case csHeadExec:
		return "head_exec"
	case csStorePort:
		return "store_port"
	}
	return "?"
}

// coreCounters aggregates the always-on pipeline event counters. They
// are separate from Stats (the legacy experiment aggregates) but share
// storage with it where the two overlap, via pointer registration.
type coreCounters struct {
	fetchStall  [numFetchStalls]metrics.Counter
	renameUops  metrics.Counter
	renameStall [numRenameStalls]metrics.Counter
	issueUops   metrics.Counter

	// Issue-stage cycle counters. Unlike rename, several causes can
	// hold different instructions in the same cycle, so these are not
	// mutually exclusive: each counts cycles in which that condition
	// denied at least one otherwise-issuable instruction.
	issueNoReady  metrics.Counter // IQ non-empty, nothing had ready sources
	issueFUSat    metrics.Counter // a ready uop was denied a functional unit
	issueDL1Ports metrics.Counter // a ready memory op was denied a cache port

	loadOrderBlocked metrics.Counter // events: load held behind an older store

	commitStall [numCommitStalls]metrics.Counter

	// Flow-conservation counters. Together with renameUops and issueUops
	// they close the queue-accounting identities the invariant checker
	// asserts every cycle (docs/VERIFICATION.md): every uop that enters a
	// structure is accounted for when it leaves.
	commitUops     metrics.Counter // uops retired from the ROB (injected included)
	squashedROB    metrics.Counter // renamed uops squashed out of the ROB
	squashedIQ     metrics.Counter // un-issued uops purged from the IQ by squashes
	renameInjected metrics.Counter // injected window-trap operations renamed

	robOcc  []metrics.Occupancy // per thread
	lsqOcc  []metrics.Occupancy // per thread
	iqOcc   metrics.Occupancy   // shared
	astqOcc metrics.Occupancy   // shared
}

// registerMetrics builds the machine's registry: core counters,
// occupancy trackers, and the counters owned by the rename, memory, and
// branch substrates. Call once from New, after those substrates exist.
func (m *Machine) registerMetrics() {
	reg := m.metrics
	cnt := &m.cnt

	c := func(name, unit, desc string, p *metrics.Counter) { reg.RegisterCounter(name, unit, desc, p) }
	legacy := func(name, unit, desc string, p *uint64) { reg.RegisterCounter(name, unit, desc, (*metrics.Counter)(p)) }

	legacy("core.cycles", "cycles", "simulated cycles elapsed", &m.stats.Cycles)
	legacy("core.fetch.insts", "insts", "instructions fetched (wrong path included)", &m.stats.Fetched)
	for i := fetchStall(0); i < numFetchStalls; i++ {
		c("core.fetch.stall."+i.String(), "cycles", "fetch picked no thread: "+i.String(), &cnt.fetchStall[i])
	}

	c("core.rename.uops", "uops", "uops renamed and dispatched (injected included)", &cnt.renameUops)
	for i := renameStall(0); i < numRenameStalls; i++ {
		c("core.rename.stall."+i.String(), "cycles", "rename blocked: "+i.String(), &cnt.renameStall[i])
	}
	legacy("core.rename.stall_cycles", "cycles", "cycles the rename head stalled on a structural hazard", &m.stats.RenameStallCycles)

	c("core.issue.uops", "uops", "uops issued to functional units or cache ports", &cnt.issueUops)
	c("core.issue.stall.no_ready", "cycles", "IQ non-empty but no instruction had ready sources", &cnt.issueNoReady)
	c("core.issue.stall.fu_saturated", "cycles", "a ready instruction was denied a functional unit", &cnt.issueFUSat)
	c("core.issue.stall.dl1_ports", "cycles", "a ready memory operation was denied a DL1 port", &cnt.issueDL1Ports)
	c("core.issue.load_order_blocked", "events", "loads held behind an unresolved or overlapping older store", &cnt.loadOrderBlocked)

	for i := commitStall(0); i < numCommitStalls; i++ {
		c("core.commit.stall."+i.String(), "cycles", "commit retired nothing: "+i.String(), &cnt.commitStall[i])
	}
	c("core.commit.uops", "uops", "uops retired from the ROB (injected included)", &cnt.commitUops)
	c("core.squash.rob_uops", "uops", "renamed uops squashed out of the ROB", &cnt.squashedROB)
	c("core.squash.iq_uops", "uops", "un-issued uops purged from the IQ by squashes", &cnt.squashedIQ)
	c("core.rename.injected_uops", "uops", "injected window-trap operations renamed", &cnt.renameInjected)
	legacy("core.commit.squashed", "uops", "uops squashed by mispredictions, traps, and exits", &m.stats.Squashed)
	legacy("core.exec.mispredicts", "events", "resolved control instructions that mispredicted", &m.stats.Mispredicts)
	legacy("core.window.traps", "events", "conventional window overflow/underflow traps", &m.stats.WindowTraps)
	legacy("core.astq.spills_issued", "ops", "ASTQ spill operations issued to the DL1", &m.stats.SpillsIssued)
	legacy("core.astq.fills_issued", "ops", "ASTQ fill operations issued to the DL1", &m.stats.FillsIssued)

	cnt.robOcc = make([]metrics.Occupancy, m.cfg.Threads)
	cnt.lsqOcc = make([]metrics.Occupancy, m.cfg.Threads)
	for t := 0; t < m.cfg.Threads; t++ {
		legacy(fmt.Sprintf("core.commit.insts.t%d", t), "insts", "instructions committed by this thread", &m.stats.Committed[t])
		reg.RegisterOccupancy(fmt.Sprintf("core.occ.rob.t%d", t), "entries", "this thread's ROB residency, sampled per cycle", &cnt.robOcc[t])
		reg.RegisterOccupancy(fmt.Sprintf("core.occ.lsq.t%d", t), "entries", "this thread's LSQ store residency, sampled per cycle", &cnt.lsqOcc[t])
	}
	reg.RegisterOccupancy("core.occ.iq", "entries", "shared instruction-queue occupancy, sampled per cycle", &cnt.iqOcc)
	reg.RegisterOccupancy("core.occ.astq", "entries", "shared ASTQ occupancy, sampled per cycle", &cnt.astqOcc)

	m.hier.RegisterMetrics(reg)
	m.bp.RegisterMetrics(reg)
	if m.vca != nil {
		m.vca.Stats.RegisterMetrics(reg)
	}
}

// noteFetchStall records why fetch picked no thread this cycle, and, when
// tracing, drops an instant event on the front-end lane so the bubble is
// attributable in the timeline.
func (m *Machine) noteFetchStall() {
	allDone := true
	var anyInject, anyBlocked, anyBufFull bool
	pid := 0
	for _, th := range m.threads {
		if th.done {
			continue
		}
		allDone = false
		pid = th.id
		switch {
		case th.injectPending() > 0:
			anyInject = true
		case m.cycle < th.fetchBlockedUntil:
			anyBlocked = true
		case m.fetchBufCount(th) >= m.fetchBufCap():
			anyBufFull = true
		}
	}
	cause := fsBufFull
	switch {
	case allDone:
		cause = fsThreadsDone
	case anyInject:
		cause = fsInject
	case anyBlocked:
		cause = fsBlocked
	case anyBufFull:
		cause = fsBufFull
	}
	m.cnt.fetchStall[cause]++
	if rec := m.cfg.ChromeTrace; rec != nil && cause != fsThreadsDone {
		rec.Instant("fetch-stall: "+cause.String(), "stall", pid, laneFrontend, m.cycle)
	}
}

// noteRenameStall records one rename-stage stall cause (at most one per
// cycle: the stage stops at its first blocked uop). Structural causes
// also drop an instant on the queue lane when tracing; "empty" cycles
// are counted but not traced (they are the absence of work, not a
// hazard, and would dominate the timeline).
func (m *Machine) noteRenameStall(th *thread, cause renameStall) {
	m.cnt.renameStall[cause]++
	if rec := m.cfg.ChromeTrace; rec != nil && cause != rsEmpty {
		pid := 0
		if th != nil {
			pid = th.id
		}
		rec.Instant("rename-stall: "+cause.String(), "stall", pid, laneQueue, m.cycle)
	}
}

// noteCommitStall classifies a retired-nothing cycle by what the ROB
// head was doing. Called only when the first commit slot of the cycle is
// blocked, so each stalled cycle is counted exactly once. No trace
// instant is emitted: the head uop's retire slice already spans the wait.
func (m *Machine) noteCommitStall(u *uop) {
	m.cnt.commitStall[commitStallCause(u)]++
}

// commitStallCause classifies a not-yet-done ROB head (shared between
// the per-cycle path and the quiesced-skip bulk accounting).
func commitStallCause(u *uop) commitStall {
	switch {
	case u.isLoad():
		return csHeadLoad
	case u.isStore():
		return csHeadStore
	}
	return csHeadExec
}

// sampleOccupancy runs once per cycle after all stages and feeds the
// occupancy trackers (and, when tracing, the viewer's counter tracks).
func (m *Machine) sampleOccupancy() {
	rec := m.cfg.ChromeTrace
	for _, th := range m.threads {
		m.cnt.robOcc[th.id].Observe(uint64(th.robCount))
		m.cnt.lsqOcc[th.id].Observe(uint64(th.lsqStores))
		if rec != nil {
			rec.Counter("occ.rob", th.id, m.cycle, uint64(th.robCount))
			rec.Counter("occ.lsq", th.id, m.cycle, uint64(th.lsqStores))
		}
	}
	m.cnt.iqOcc.Observe(uint64(m.iqCount))
	m.cnt.astqOcc.Observe(uint64(m.astqLen()))
	if rec != nil {
		rec.Counter("occ.iq", 0, m.cycle, uint64(m.iqCount))
		rec.Counter("occ.astq", 0, m.cycle, uint64(m.astqLen()))
	}
}
