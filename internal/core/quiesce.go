package core

import "vca/internal/isa"

// This file implements the quiesced-cycle skip: when no pipeline stage
// can act until the next scheduled event (typical while the whole
// window waits on an L2 or memory miss), the machine advances directly
// to the cycle before that event, bulk-accounting every per-cycle
// counter and occupancy sample the polled loop would have produced.
// The skip is a pure execution-time optimization — simulated behavior,
// every counter, and every histogram stay bit-identical — so it
// refuses to fire on anything it cannot prove frozen and falls back to
// per-cycle evaluation.
//
// A cycle is "frozen" when every stage's evaluation is a pure function
// of state no stage changes:
//   - commit:    ROB empty, head not done, or head a done store with no
//                DL1 ports configured — nothing retires, one stall
//                cause per cycle.
//   - writeback: no wheel bucket fires (bounds the skip by the wheels'
//                next event).
//   - issue:     every ready uop is denied by the same frozen evidence
//                (zero-FU class, zero DL1 ports, or a load blocked by
//                the frozen LSQ); nothing changes width or ports.
//   - rename:    the fetch-queue head is not yet ready, a recovery walk
//                is in progress, or a structural hazard holds (ROB/IQ/
//                LSQ full — queues only commit/issue/squash can drain).
//                Anything deeper (substrate rename) has side effects
//                and is never dry-run: the skip just declines.
//   - fetch:     every live thread is redirect-blocked (bounds the skip
//                by its unblock cycle) or fetch-buffer-full.
//
// Within such a window every cycle produces the identical stall-cause
// increments and occupancy samples, so k cycles fold into one O(1)
// bulk update per counter (plus a closed-form fixpoint for the VCA
// rename credit top-up, which runs even in stalled cycles).

// quiesceSkip runs at the end of the main loop body, after the cycle's
// stages and checks. If the machine is provably frozen until event
// cycle E > cycle+1, it advances m.cycle to E-1 (the loop's increment
// then lands on E) and bulk-accounts the skipped cycles.
func (m *Machine) quiesceSkip() {
	if m.noSkip || m.cfg.ChromeTrace != nil {
		return
	}
	now := m.cycle
	bound := m.cfg.MaxCycles + 1 // skipping to here reproduces the hang path

	// Commit: anything retirable at the head means activity.
	var head *uop
	if m.robLen() > 0 {
		head = m.rob[m.robHead]
		if head.done && (!head.isStore() || m.cfg.Hier.DL1Ports > 0) {
			return
		}
	}

	// Rename. Injected window-trap operations rename with priority and
	// reach the substrate (side effects) — never skip over them.
	for _, th := range m.threads {
		if th.injectPending() > 0 {
			return
		}
	}
	renameCause := rsEmpty
	renameStructural := false
	if m.fetchHead < len(m.fetchQ) {
		fe := m.fetchQ[m.fetchHead]
		th := m.threads[fe.u.thread]
		switch {
		case fe.readyAt > now+1:
			// Front-end latency: stalls as "empty" until readyAt. The
			// bound keeps the window cause-homogeneous (a recovery walk
			// outlasting readyAt would change the attribution).
			renameCause = rsEmpty
			if fe.readyAt < bound {
				bound = fe.readyAt
			}
		case th.renameBlockedUntil > now+1:
			renameCause = rsWalk
			if th.renameBlockedUntil < bound {
				bound = th.renameBlockedUntil
			}
		case m.robLen() >= m.cfg.ROBSize:
			renameCause, renameStructural = rsROBFull, true
		case m.iqCount >= m.cfg.IQSize:
			renameCause, renameStructural = rsIQFull, true
		case fe.u.isStore() && m.lsqCount() >= m.cfg.LSQSize:
			renameCause, renameStructural = rsLSQFull, true
		default:
			return // head would reach the substrate: simulate the cycle
		}
	}

	// Fetch: a single fetchable thread means activity. Every blocked
	// thread bounds the window so the stall attribution stays constant.
	anyBlocked := false
	for _, th := range m.threads {
		if th.done {
			continue
		}
		if th.fetchBlockedUntil > now+1 {
			anyBlocked = true
			if th.fetchBlockedUntil < bound {
				bound = th.fetchBlockedUntil
			}
		} else if th.inFetchQ < m.fetchBufCap() {
			return
		}
	}
	fetchCause := fsBufFull
	if anyBlocked {
		fetchCause = fsBlocked
	}

	// Issue: every ready uop must be provably denied. In a frozen cycle
	// nothing issues, so the width budget never cuts the scan short and
	// all ready uops contribute stall evidence — same as the live stage.
	fuSat, dl1Denied := false, false
	var nBlockedLoads uint64
	for _, u := range m.ready {
		switch {
		case u.isLoad():
			if m.cfg.Hier.DL1Ports == 0 {
				dl1Denied = true
			} else if m.loadWouldBlock(u) {
				nBlockedLoads++ // re-attempts (and counts) every cycle
			} else {
				return
			}
		case u.isStore():
			return // stores always issue
		case u.class == isa.ClassIntMul || u.class == isa.ClassIntDiv:
			if m.cfg.IntMulDivs > 0 {
				return
			}
			fuSat = true
		case u.class == isa.ClassFPALU || u.class == isa.ClassFPMul || u.class == isa.ClassFPDiv:
			if m.cfg.FPUs > 0 {
				return
			}
			fuSat = true
		default:
			if m.cfg.IntALUs > 0 {
				return
			}
			fuSat = true
		}
	}
	if m.astqLen() > 0 && m.cfg.Hier.DL1Ports > 0 {
		return // leftover ports drain the ASTQ
	}

	// Writeback: bound by the wheels' earliest completion.
	if e, ok := m.ewheel.nextEvent(now+1, bound); ok {
		bound = e
	}
	if e, ok := m.awheel.nextEvent(now+1, bound); ok {
		bound = e
	}

	if bound <= now+1 {
		return // next event is the very next cycle: nothing to skip
	}
	k := bound - 1 - now

	// Bulk accounting: k frozen cycles, each with identical increments.
	cnt := &m.cnt
	if head != nil {
		if !head.done {
			cnt.commitStall[commitStallCause(head)].Add(k)
		} else {
			cnt.commitStall[csStorePort].Add(k)
		}
	}
	if m.iqCount > 0 && len(m.ready) == 0 {
		cnt.issueNoReady.Add(k)
	}
	if fuSat {
		cnt.issueFUSat.Add(k)
	}
	if dl1Denied {
		cnt.issueDL1Ports.Add(k)
	}
	if nBlockedLoads > 0 {
		cnt.loadOrderBlocked.Add(nBlockedLoads * k)
	}
	cnt.renameStall[renameCause].Add(k)
	if renameStructural {
		m.stats.RenameStallCycles += k
		switch renameCause {
		case rsROBFull:
			m.stats.ROBFullStalls += k
		case rsIQFull:
			m.stats.IQFullStalls += k
		}
	}
	if m.cfg.Rename == RenameVCA {
		// The per-cycle credit top-up runs even in stalled cycles;
		// replay it in closed form (it reaches a fixpoint quickly).
		m.portCredit = creditAfter(m.portCredit, m.cfg.VCA.Ports, k)
		m.astqCredit = creditAfter(m.astqCredit, m.cfg.VCA.ASTQWrites, k)
	}
	cnt.fetchStall[fetchCause].Add(k)
	for _, th := range m.threads {
		cnt.robOcc[th.id].ObserveN(uint64(th.robCount), k)
		cnt.lsqOcc[th.id].ObserveN(uint64(th.lsqStores), k)
	}
	cnt.iqOcc.ObserveN(uint64(m.iqCount), k)
	cnt.astqOcc.ObserveN(uint64(m.astqLen()), k)

	m.cycle += k
	if m.cfg.Check {
		m.checkCycle()
	}
}

// loadWouldBlock mirrors tryIssueLoad's memory-ordering walk with zero
// side effects: no port consumed, no cache access, no counter bumped.
func (m *Machine) loadWouldBlock(u *uop) bool {
	if u.injected || m.threads[u.thread].lsqStores == 0 {
		return false
	}
	ea := u.inst.MemEA(m.readSrc(u, 0))
	size := u.inst.Op.MemBytes()
	for _, s := range m.lsq {
		if s.thread != u.thread || s.seq >= u.seq {
			continue
		}
		if !s.issued {
			return true // unresolved older store address
		}
		sEnd, lEnd := s.ea+uint64(s.memBytes), ea+uint64(size)
		if s.ea < lEnd && ea < sEnd && !(s.ea <= ea && lEnd <= sEnd) {
			return true // partial overlap
		}
	}
	return false
}

// creditAfter applies k iterations of the per-cycle VCA credit top-up
// (credit += cap, clamped to cap — debt from multi-op instructions
// pays off over several cycles). It fixpoints within |debt|/cap + 1
// steps, so the loop is O(1) regardless of k.
func creditAfter(credit, cap int, k uint64) int {
	for i := uint64(0); i < k; i++ {
		next := credit + cap
		if next > cap {
			next = cap
		}
		if next == credit {
			break
		}
		credit = next
	}
	return credit
}
