package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vca/internal/asm"
	"vca/internal/emu"
	"vca/internal/program"
)

// TestRandomProgramsAllMachinesAgree generates random (but structurally
// safe) assembly programs and runs each on every machine model with
// co-simulation enabled. All architectures must produce the program's
// output; the co-simulation check additionally verifies every committed
// destination value, store, and control transfer along the way.
//
// Generated programs are dual-ABI-safe by construction:
//   - only forward branches (termination guaranteed);
//   - helpers are called only downward (no recursion, bounded depth);
//   - helpers keep state in windowed registers but always write them
//     before reading (so flat and windowed semantics coincide);
//   - main keeps its state in caller-saved registers and globals, which
//     helpers never touch.
func TestRandomProgramsAllMachinesAgree(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := genRandomProgram(rand.New(rand.NewSource(seed)))
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}

			want := runEmu(t, prog, false)
			if got := runEmu(t, prog, true); got != want {
				t.Fatalf("emulator disagrees with itself across window modes: %q vs %q", got, want)
			}

			type machine struct {
				name     string
				cfg      Config
				windowed bool
			}
			machines := []machine{
				{"baseline", DefaultConfig(RenameConventional, WindowNone, 1, 128), false},
				{"vca-flat-small", DefaultConfig(RenameVCA, WindowNone, 1, 48), false},
				{"vca-flat", DefaultConfig(RenameVCA, WindowNone, 1, 192), false},
				{"conv-window", DefaultConfig(RenameConventional, WindowConventional, 1, 160), true},
				{"ideal-window", DefaultConfig(RenameVCA, WindowIdeal, 1, 128), true},
				{"vca-window-small", DefaultConfig(RenameVCA, WindowVCA, 1, 56), true},
				{"vca-window", DefaultConfig(RenameVCA, WindowVCA, 1, 256), true},
			}
			for _, mc := range machines {
				mc.cfg.MaxCycles = 20_000_000
				m, err := New(mc.cfg, []*program.Program{prog}, mc.windowed)
				if err != nil {
					t.Fatalf("%s: %v", mc.name, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("%s: %v\n%s", mc.name, err, src)
				}
				if got := res.Threads[0].Output; got != want {
					t.Errorf("%s output %q, want %q\n%s", mc.name, got, want, src)
				}
			}
		})
	}
}

func runEmu(t *testing.T, p *program.Program, windowed bool) string {
	t.Helper()
	m := emu.New(p, emu.Config{Windowed: windowed, MaxInsts: 10_000_000})
	reason, err := m.Run()
	if err != nil || reason != emu.StopExited {
		t.Fatalf("emu run: %v (%v)", err, reason)
	}
	return m.Output.String()
}

// genRandomProgram emits a random dual-ABI-safe assembly program.
func genRandomProgram(r *rand.Rand) string {
	b := &strings.Builder{}
	labelN := 0
	label := func() string { labelN++; return fmt.Sprintf("L%d", labelN) }

	nHelpers := 2 + r.Intn(3) // at most 4

	// Helpers f0..f{n-1}; fK may call fJ for J < K. Each helper owns a
	// disjoint set of windowed registers (work s{3k}..s{3k+2}, ra stash
	// s{15-k}), so flat and windowed semantics coincide exactly even for
	// values live across nested calls.
	for k := 0; k < nHelpers; k++ {
		w0 := fmt.Sprintf("s%d", 3*k)
		w1 := fmt.Sprintf("s%d", 3*k+1)
		w2 := fmt.Sprintf("s%d", 3*k+2)
		stash := fmt.Sprintf("s%d", 15-k)
		fmt.Fprintf(b, "f%d:\n", k)
		// Windowed-safe: write own windowed registers before any read.
		fmt.Fprintf(b, "        mov %s, ra\n", stash)
		fmt.Fprintf(b, "        mov %s, a0\n", w0)
		fmt.Fprintf(b, "        li %s, %d\n", w1, r.Intn(1000))
		fmt.Fprintf(b, "        li %s, %d\n", w2, 1+r.Intn(50))
		ops := 3 + r.Intn(8)
		for i := 0; i < ops; i++ {
			emitRandomALU(b, r, []string{w0, w1, w2}, label)
		}
		if k > 0 && r.Intn(2) == 0 {
			callee := r.Intn(k)
			fmt.Fprintf(b, "        add a0, %s, %s\n", w0, w1)
			fmt.Fprintf(b, "        jsr f%d\n", callee)
			fmt.Fprintf(b, "        add %s, %s, v0\n", w0, w0)
		}
		fmt.Fprintf(b, "        add v0, %s, %s\n", w0, w2)
		fmt.Fprintf(b, "        ret (%s)\n", stash)
	}

	// main: state in t-registers and the scratch buffer; helpers never
	// touch them.
	fmt.Fprintf(b, "main:\n")
	fmt.Fprintf(b, "        li t0, %d\n", r.Intn(100))
	fmt.Fprintf(b, "        li t1, %d\n", 1+r.Intn(100))
	fmt.Fprintf(b, "        li t2, %d\n", 1+r.Intn(100))
	fmt.Fprintf(b, "        li t3, %d\n", r.Intn(100))
	blocks := 12 + r.Intn(20)
	for i := 0; i < blocks; i++ {
		switch r.Intn(5) {
		case 0, 1: // ALU block
			emitRandomALU(b, r, []string{"t0", "t1", "t2", "t3"}, label)
		case 2: // forward branch over a short block
			l := label()
			reg := []string{"t1", "t2", "t3"}[r.Intn(3)]
			op := []string{"beq", "bne", "blt", "bge"}[r.Intn(4)]
			fmt.Fprintf(b, "        %s %s, %s\n", op, reg, l)
			for j := 0; j <= r.Intn(3); j++ {
				emitRandomALU(b, r, []string{"t0", "t1", "t2"}, label)
			}
			fmt.Fprintf(b, "%s:\n", l)
		case 3: // memory round trip through the scratch buffer
			off := 8 * r.Intn(8)
			fmt.Fprintf(b, "        la t4, buf\n")
			fmt.Fprintf(b, "        stq t%d, %d(t4)\n", r.Intn(4), off)
			fmt.Fprintf(b, "        ldq t%d, %d(t4)\n", 1+r.Intn(3), off)
		case 4: // call a helper
			fmt.Fprintf(b, "        mov a0, t%d\n", r.Intn(4))
			fmt.Fprintf(b, "        jsr f%d\n", r.Intn(nHelpers))
			fmt.Fprintf(b, "        add t0, t0, v0\n")
		}
	}
	// Bound the checksum and print it.
	fmt.Fprintf(b, "        li t4, 0xffffff\n")
	fmt.Fprintf(b, "        and a0, t0, t4\n")
	fmt.Fprintf(b, "        syscall 2\n")
	fmt.Fprintf(b, "        li a0, 0\n")
	fmt.Fprintf(b, "        syscall 0\n")
	fmt.Fprintf(b, "        .data\n")
	fmt.Fprintf(b, "buf:    .space 128\n")
	return b.String()
}

func emitRandomALU(b *strings.Builder, r *rand.Rand, regs []string, label func() string) {
	d := regs[r.Intn(len(regs))]
	a := regs[r.Intn(len(regs))]
	c := regs[r.Intn(len(regs))]
	switch r.Intn(8) {
	case 0:
		fmt.Fprintf(b, "        add %s, %s, %s\n", d, a, c)
	case 1:
		fmt.Fprintf(b, "        sub %s, %s, %s\n", d, a, c)
	case 2:
		fmt.Fprintf(b, "        mul %s, %s, %s\n", d, a, c)
	case 3:
		fmt.Fprintf(b, "        xor %s, %s, %s\n", d, a, c)
	case 4:
		fmt.Fprintf(b, "        addi %s, %s, %d\n", d, a, r.Intn(4096)-2048)
	case 5:
		fmt.Fprintf(b, "        slli %s, %s, %d\n", d, a, r.Intn(8))
		fmt.Fprintf(b, "        srai %s, %s, %d\n", d, d, r.Intn(4))
	case 6:
		fmt.Fprintf(b, "        cmplt %s, %s, %s\n", d, a, c)
	case 7:
		fmt.Fprintf(b, "        div %s, %s, %s\n", d, a, c)
	}
}
