package core

import (
	"fmt"
	"testing"

	"vca/internal/asm"
	"vca/internal/progen"
	"vca/internal/program"
)

// TestRandomProgramsAllMachinesAgree generates random (but structurally
// safe, dual-ABI — see internal/progen) assembly programs and runs each
// on every machine model with co-simulation and the cycle-level
// invariant checker enabled. All architectures must produce the
// program's output; co-simulation verifies every committed destination
// value, store, and control transfer along the way, and the checker
// audits rename-substrate conservation and queue sanity every cycle.
func TestRandomProgramsAllMachinesAgree(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src := progen.FromSeed(seed)
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}

			want := runEmu(t, prog, false)
			if got := runEmu(t, prog, true); got != want {
				t.Fatalf("emulator disagrees with itself across window modes: %q vs %q", got, want)
			}

			for _, mc := range testMachines() {
				m, err := New(mc.cfg, []*program.Program{prog}, mc.windowed)
				if err != nil {
					t.Fatalf("%s: %v", mc.name, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("%s: %v\n%s", mc.name, err, src)
				}
				if got := res.Threads[0].Output; got != want {
					t.Errorf("%s output %q, want %q\n%s", mc.name, got, want, src)
				}
			}
		})
	}
}

// FuzzRandomProgramsLockstep is the native-fuzzing entry point for the
// whole stack: a seed drives progen, the generated program runs on both
// emulator ABIs and on the two most failure-prone machine models
// (conventional baseline and the smallest VCA-window machine) with
// co-simulation and invariant checking on. Any divergence or invariant
// violation fails the fuzz target; `internal/verify` shrinks failures
// found by the sweep runner the same way.
func FuzzRandomProgramsLockstep(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.FromSeed(seed)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		want := runEmu(t, prog, false)
		if got := runEmu(t, prog, true); got != want {
			t.Fatalf("emulator ABI divergence: flat %q, windowed %q\n%s", want, got, src)
		}

		for _, mc := range testMachines() {
			if mc.name != "baseline" && mc.name != "vca-window-small" {
				continue
			}
			m, err := New(mc.cfg, []*program.Program{prog}, mc.windowed)
			if err != nil {
				t.Fatalf("%s: %v", mc.name, err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("%s: %v\n%s", mc.name, err, src)
			}
			if got := res.Threads[0].Output; got != want {
				t.Errorf("%s output %q, want %q\n%s", mc.name, got, want, src)
			}
		}
	})
}
