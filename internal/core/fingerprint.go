package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// SchemaVersion identifies the simulator's cycle-level semantics for
// result memoization (internal/simcache). Bump it whenever a change to
// internal/core (or the components it drives: rename, mem, branch)
// alters simulated results — cycle counts, cache traffic, counter
// values — for an unchanged configuration and program. Cached results
// recorded under an older version then stop matching and are
// re-simulated instead of trusted.
//
// History:
//
//	1  PR 1 fast-path core (pooled uops, word-granular memory)
//	2  PR 2 event-counter registry (no timing change, counters added)
//	3  PR 3 invariant checker (opt-in, no timing change)
//	4  PR 4 first memoized release
//	5  PR 6 this version: StopExact commit freeze, checkpoint
//	   injection/extraction (no timing change for default configs, but
//	   Config gained a semantic field)
const SchemaVersion = 5

// fingerprintSkip lists Config fields that do not influence simulated
// results and therefore must not contribute to a result-cache key:
// observability hooks (trace writers) and cross-checking switches that
// only verify — never alter — the simulation.
var fingerprintSkip = map[string]bool{
	"TraceWriter": true,
	"ChromeTrace": true,
	"CoSim":       true,
	"Check":       true,
}

// Fingerprint returns a canonical, human-readable encoding of every
// semantic configuration field, suitable for content-addressing
// simulation results. Two configs with equal fingerprints produce
// bit-identical runs on the same programs (given equal SchemaVersion).
//
// The encoding walks the struct reflectively so that a newly added
// field changes the fingerprint automatically (safe direction: stale
// cache entries are invalidated, never wrongly reused). Fields listed
// in fingerprintSkip are observability-only and excluded. A field of a
// kind the walker does not understand panics, forcing an explicit
// decision when one is introduced.
func (c *Config) Fingerprint() string {
	var b strings.Builder
	writeFingerprint(&b, reflect.ValueOf(*c), "Config", true)
	return b.String()
}

func writeFingerprint(b *strings.Builder, v reflect.Value, name string, top bool) {
	switch v.Kind() {
	case reflect.Struct:
		b.WriteString(name)
		b.WriteByte('{')
		t := v.Type()
		first := true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || (top && fingerprintSkip[f.Name]) {
				continue
			}
			if !first {
				b.WriteByte(';')
			}
			first = false
			writeFingerprint(b, v.Field(i), f.Name, false)
		}
		b.WriteByte('}')
	case reflect.Bool:
		fmt.Fprintf(b, "%s=%v", name, v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(b, "%s=%d", name, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(b, "%s=%d", name, v.Uint())
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(b, "%s=%g", name, v.Float())
	case reflect.String:
		fmt.Fprintf(b, "%s=%q", name, v.String())
	case reflect.Array, reflect.Slice:
		fmt.Fprintf(b, "%s=[", name)
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			writeFingerprint(b, v.Index(i), fmt.Sprintf("%d", i), false)
		}
		b.WriteByte(']')
	case reflect.Map:
		keys := v.MapKeys()
		strs := make([]string, len(keys))
		for i, k := range keys {
			var kb strings.Builder
			writeFingerprint(&kb, v.MapIndex(k), fmt.Sprint(k.Interface()), false)
			strs[i] = kb.String()
		}
		sort.Strings(strs)
		fmt.Fprintf(b, "%s=map[%s]", name, strings.Join(strs, ","))
	default:
		panic(fmt.Sprintf("core: Config fingerprint cannot encode field %s of kind %v; "+
			"add it to fingerprintSkip if it cannot affect results, or teach "+
			"writeFingerprint the kind", name, v.Kind()))
	}
}
