// Architectural state transplant: moving a functional checkpoint
// (emu.Checkpoint) into and out of the detailed machine. Injection is
// the fast-forward handoff — N instructions run at functional speed,
// then the detailed core starts from the resulting state as if it had
// simulated them. Extraction reads the committed architectural state
// back out of the detailed structures (committed rename maps, physical
// registers, backing store, committed memory) and is cross-audited
// against the co-simulation golden model, so a transplant can never
// silently lose state.
//
// Per-substrate placement rules (the inverse of how each machine reads
// architectural registers):
//
//   - Conventional, flat: every architectural register has a committed
//     physical mapping; values go straight into the physical register
//     file via the committed map.
//   - Conventional, windowed: the nwin youngest window frames are
//     resident in the register file (winBase tracks the oldest); deeper
//     frames live in the backing store at windowAddr, exactly where a
//     window-overflow trap would have spilled them.
//   - VCA (flat, windowed, ideal): committed register state is
//     memory-mapped (§2.1.1); values are written to the backing store at
//     gbp/wbp-relative addresses and fill into physical registers on
//     demand. The rename table starts empty, so no table repair is
//     needed.
//
// Memory pages at or above program.RegSpaceBase are microarchitectural
// (the register backing store) and never cross the transplant boundary:
// injection reconstructs them from the checkpoint's window frames, and
// extraction filters them out of the page snapshot.
package core

import (
	"fmt"

	"vca/internal/emu"
	"vca/internal/isa"
	"vca/internal/program"
)

// ckRegValue reads the architectural value of register r from a
// checkpoint (current-frame view for windowed registers).
func ckRegValue(ck *emu.Checkpoint, r isa.Reg) uint64 {
	if r.IsZero() {
		return 0
	}
	if r.IsWindowed() {
		return ck.Windows[len(ck.Windows)-1][r.WindowSlot()]
	}
	return ck.Globals[r.GlobalSlot()]
}

// InjectCheckpoint installs a checkpoint as thread t's initial
// architectural state. It must be called after New and before Run: the
// machine must not have simulated a cycle yet. When the invariant
// checker is enabled (Config.Check), injection immediately round-trips
// the state through ExtractCheckpoint and fails on any difference — the
// state-transplant audit.
func (m *Machine) InjectCheckpoint(t int, ck *emu.Checkpoint) error {
	if t < 0 || t >= len(m.threads) {
		return fmt.Errorf("core: no thread %d", t)
	}
	if m.cycle != 0 {
		return fmt.Errorf("core: InjectCheckpoint must run before Run (cycle %d)", m.cycle)
	}
	th := m.threads[t]
	if err := ck.Validate(th.prog, th.windowed); err != nil {
		return err
	}
	if ck.Exited {
		return fmt.Errorf("core: checkpoint is of an exited program (status %d)", ck.ExitCode)
	}

	// Committed memory image first; register placement below may extend
	// it (non-resident conventional windows, the VCA backing store).
	if err := th.mem.Restore(ck.Pages); err != nil {
		return err
	}
	th.pc, th.commitPC = ck.PC, ck.PC

	depth := len(ck.Windows) - 1
	switch m.cfg.Rename {
	case RenameConventional:
		if m.cfg.Window == WindowConventional {
			th.specDepth, th.commitDepth = depth, depth
			th.winBase = depth - m.nwin + 1
			if th.winBase < 0 {
				th.winBase = 0
			}
			for k := 0; k <= depth; k++ {
				for s := 0; s < isa.WindowSlots; s++ {
					v := ck.Windows[k][s]
					if k >= th.winBase {
						m.physVal[m.conv.Lookup(t, m.winSlotLogical(k, s))] = v
					} else {
						th.mem.Write(m.windowAddr(th, k)+8*uint64(s), 8, v)
					}
				}
			}
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() || r.IsWindowed() {
					continue
				}
				m.physVal[m.conv.Lookup(t, r.GlobalSlot())] = ck.Globals[r.GlobalSlot()]
			}
		} else {
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() {
					continue
				}
				m.physVal[m.conv.Lookup(t, int(r))] = ckRegValue(ck, r)
			}
		}
	case RenameVCA:
		if m.cfg.Window == WindowNone {
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() {
					continue
				}
				th.mem.Write(th.gbp+8*uint64(r), 8, ckRegValue(ck, r))
			}
		} else {
			wbp := m.windowAddr(th, depth)
			th.specWBP, th.commitWBP = wbp, wbp
			for k := 0; k <= depth; k++ {
				base := m.windowAddr(th, k)
				for s := 0; s < isa.WindowSlots; s++ {
					th.mem.Write(base+8*uint64(s), 8, ck.Windows[k][s])
				}
			}
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() || r.IsWindowed() {
					continue
				}
				th.mem.Write(th.gbp+8*uint64(r.GlobalSlot()), 8, ck.Globals[r.GlobalSlot()])
			}
		}
	}

	// The co-simulation golden model resumes from the same image, so
	// commit-time cross-checking continues seamlessly across the splice.
	if th.ref != nil {
		if err := th.ref.RestoreCheckpoint(ck); err != nil {
			return err
		}
	}

	if m.cfg.Check && th.ref != nil {
		ex, err := m.ExtractCheckpoint(t)
		if err != nil {
			return fmt.Errorf("core: state-transplant audit: %w", err)
		}
		if err := auditCheckpoints(ck, ex); err != nil {
			return fmt.Errorf("core: state-transplant audit after inject: %w", err)
		}
	}
	return nil
}

// ExtractCheckpoint reads thread t's committed architectural state out
// of the detailed machine as a checkpoint image. It requires
// co-simulation (the golden model carries the execution provenance —
// cumulative instruction statistics and program output — and serves as
// the audit reference) and a drained window-trap state; call it before
// Run or after Run has returned.
//
// The extracted image is audited bit-for-bit against the golden model's
// own checkpoint before being returned: any difference means the
// detailed machine's committed state diverged from architectural truth,
// and extraction fails rather than propagating it.
func (m *Machine) ExtractCheckpoint(t int) (*emu.Checkpoint, error) {
	if t < 0 || t >= len(m.threads) {
		return nil, fmt.Errorf("core: no thread %d", t)
	}
	th := m.threads[t]
	if th.ref == nil {
		return nil, fmt.Errorf("core: ExtractCheckpoint requires co-simulation (Config.CoSim)")
	}
	if th.injectedLive > 0 || th.injectPending() > 0 {
		return nil, fmt.Errorf("core: thread %d has a window trap in flight; committed window state is incomplete", t)
	}

	golden := th.ref.Checkpoint()

	depth := 0
	switch m.cfg.Window {
	case WindowConventional:
		depth = th.commitDepth
	case WindowVCA, WindowIdeal:
		_, wbpTop := program.ThreadRegSpace(t)
		depth = int((wbpTop - th.commitWBP) / isa.WindowBytes)
	}

	ck := &emu.Checkpoint{
		Version:     emu.CheckpointVersion,
		Program:     th.prog.Name,
		ProgramHash: emu.ProgramHash(th.prog),
		Windowed:    th.windowed,
		PC:          th.commitPC,
		Globals:     make([]uint64, isa.GlobalSlots),
		Windows:     make([][]uint64, depth+1),
		Exited:      th.done,
		ExitCode:    th.exitCode,
	}
	for k := range ck.Windows {
		ck.Windows[k] = make([]uint64, isa.WindowSlots)
	}

	switch m.cfg.Rename {
	case RenameConventional:
		if m.cfg.Window == WindowConventional {
			for k := 0; k <= depth; k++ {
				for s := 0; s < isa.WindowSlots; s++ {
					if k >= th.winBase {
						ck.Windows[k][s] = m.physVal[m.conv.CommittedLookup(t, m.winSlotLogical(k, s))]
					} else {
						ck.Windows[k][s] = th.mem.Read(m.windowAddr(th, k)+8*uint64(s), 8)
					}
				}
			}
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() || r.IsWindowed() {
					continue
				}
				ck.Globals[r.GlobalSlot()] = m.physVal[m.conv.CommittedLookup(t, r.GlobalSlot())]
			}
		} else {
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() {
					continue
				}
				v := m.physVal[m.conv.CommittedLookup(t, int(r))]
				if r.IsWindowed() {
					ck.Windows[0][r.WindowSlot()] = v
				} else {
					ck.Globals[r.GlobalSlot()] = v
				}
			}
		}
	case RenameVCA:
		// Committed VCA state is memory-mapped, except that dirty
		// committed versions are cached in physical registers (§2.1.2).
		committed := func(addr uint64) uint64 {
			if p, ok := m.vca.CommittedPhys(addr); ok {
				return m.physVal[p]
			}
			return th.mem.Read(addr, 8)
		}
		if m.cfg.Window == WindowNone {
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() {
					continue
				}
				v := committed(th.gbp + 8*uint64(r))
				if r.IsWindowed() {
					ck.Windows[0][r.WindowSlot()] = v
				} else {
					ck.Globals[r.GlobalSlot()] = v
				}
			}
		} else {
			for k := 0; k <= depth; k++ {
				base := m.windowAddr(th, k)
				for s := 0; s < isa.WindowSlots; s++ {
					ck.Windows[k][s] = committed(base + 8*uint64(s))
				}
			}
			for r := isa.Reg(0); r < isa.Reg(isa.NumArchRegs); r++ {
				if r.IsZero() || r.IsWindowed() {
					continue
				}
				ck.Globals[r.GlobalSlot()] = committed(th.gbp + 8*uint64(r.GlobalSlot()))
			}
		}
	}

	// Canonicalize architecturally-dead window slots. A slot never
	// written since its frame was pushed reads as zero functionally, but
	// the detailed machine holds whatever was last in that physical
	// register or backing-store word (fresh frames are not zeroed in
	// hardware). The golden model's write masks identify dead slots;
	// their canonical value is the golden model's. Live slots keep the
	// detailed machine's value and are audited below.
	if len(golden.Windows) == len(ck.Windows) {
		for k := range ck.Windows {
			mask := golden.WMasks[k]
			for s := range ck.Windows[k] {
				if mask&(1<<uint(s)) == 0 {
					ck.Windows[k][s] = golden.Windows[k][s]
				}
			}
		}
	}
	ck.WMasks = append([]uint32(nil), golden.WMasks...)

	// Committed program memory, minus the microarchitectural backing
	// store.
	for _, pg := range th.mem.Snapshot() {
		if pg.Addr < program.RegSpaceBase {
			ck.Pages = append(ck.Pages, pg)
		}
	}

	// Execution provenance comes from the golden model, which has
	// stepped exactly the committed instruction stream.
	ck.Stats = th.ref.Stats
	ck.Insts = th.ref.Stats.Insts
	ck.Output = append([]byte(nil), th.ref.Output.Bytes()...)

	// The transplant audit: the detailed machine's committed state must
	// be bit-identical to the golden model's (dead slots canonicalized
	// above; everything else compared for real).
	if err := auditCheckpoints(golden, ck); err != nil {
		return nil, fmt.Errorf("core: state-transplant audit on extract (thread %d): %w", t, err)
	}
	return ck, nil
}

// auditCheckpoints compares two checkpoint images component-by-component
// and reports the first difference (ref is the golden/expected image).
func auditCheckpoints(ref, got *emu.Checkpoint) error {
	if ref.PC != got.PC {
		return fmt.Errorf("pc differs: golden %#x, detailed %#x", ref.PC, got.PC)
	}
	if len(ref.Windows) != len(got.Windows) {
		return fmt.Errorf("window depth differs: golden %d, detailed %d", len(ref.Windows)-1, len(got.Windows)-1)
	}
	for k := range ref.Windows {
		for s := range ref.Windows[k] {
			if ref.Windows[k][s] != got.Windows[k][s] {
				return fmt.Errorf("window frame %d slot %d differs: golden %#x, detailed %#x",
					k, s, ref.Windows[k][s], got.Windows[k][s])
			}
		}
	}
	for i := range ref.Globals {
		if ref.Globals[i] != got.Globals[i] {
			return fmt.Errorf("global slot %d differs: golden %#x, detailed %#x", i, ref.Globals[i], got.Globals[i])
		}
	}
	if ref.Exited != got.Exited || ref.ExitCode != got.ExitCode {
		return fmt.Errorf("exit state differs: golden (%v,%d), detailed (%v,%d)",
			ref.Exited, ref.ExitCode, got.Exited, got.ExitCode)
	}
	if len(ref.Pages) != len(got.Pages) {
		return fmt.Errorf("memory image differs: golden %d pages, detailed %d", len(ref.Pages), len(got.Pages))
	}
	for i := range ref.Pages {
		if ref.Pages[i].Addr != got.Pages[i].Addr {
			return fmt.Errorf("memory image differs: page %d at golden %#x, detailed %#x",
				i, ref.Pages[i].Addr, got.Pages[i].Addr)
		}
		for j := range ref.Pages[i].Data {
			if ref.Pages[i].Data[j] != got.Pages[i].Data[j] {
				return fmt.Errorf("memory differs at %#x: golden %#x, detailed %#x",
					ref.Pages[i].Addr+uint64(j), ref.Pages[i].Data[j], got.Pages[i].Data[j])
			}
		}
	}
	refAddr, err := ref.ContentAddress()
	if err != nil {
		return err
	}
	gotAddr, err := got.ContentAddress()
	if err != nil {
		return err
	}
	if refAddr != gotAddr {
		return fmt.Errorf("content address differs: golden %.12s, detailed %.12s", refAddr, gotAddr)
	}
	return nil
}
