package core

import (
	"testing"

	"vca/internal/emu"
	"vca/internal/minic"
	"vca/internal/program"
)

// fastForwardCheckpoint runs the functional engine for cut instructions
// and returns the resulting checkpoint.
func fastForwardCheckpoint(t *testing.T, p *program.Program, windowed bool, cut uint64) *emu.Checkpoint {
	t.Helper()
	fm := emu.New(p, emu.Config{Windowed: windowed})
	if _, err := fm.FastRun(cut); err != nil {
		t.Fatalf("FastRun(%d): %v", cut, err)
	}
	return fm.Checkpoint()
}

// TestInjectCheckpointResume fast-forwards half of each program
// functionally, transplants the state into every canonical detailed
// machine, and finishes the run there: the concatenated output and exit
// status must match an uninterrupted reference run. Co-simulation and
// the invariant checker stay on, so every post-splice commit is
// cross-checked and injection itself is audited by round-trip.
func TestInjectCheckpointResume(t *testing.T) {
	for _, tm := range testMachines() {
		for name, src := range map[string]string{"fib": srcFib, "memory": srcMemory} {
			t.Run(tm.name+"/"+name, func(t *testing.T) {
				abi := minic.ABIFlat
				if tm.windowed {
					abi = minic.ABIWindowed
				}
				p := buildProg(t, name, src, abi)

				// Uninterrupted reference, and the total it executes.
				ref := emu.New(p, emu.Config{Windowed: tm.windowed, MaxInsts: 10_000_000})
				if reason, err := ref.Run(); err != nil || reason != emu.StopExited {
					t.Fatalf("reference run: %v (%v)", err, reason)
				}
				want := ref.Output.String()
				cut := ref.Stats.Insts / 2
				ck := fastForwardCheckpoint(t, p, tm.windowed, cut)

				cfg := tm.cfg
				cfg.CoSim = true
				m, err := New(cfg, []*program.Program{p}, tm.windowed)
				if err != nil {
					t.Fatalf("new machine: %v", err)
				}
				if err := m.InjectCheckpoint(0, ck); err != nil {
					t.Fatalf("inject: %v", err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("run after inject: %v", err)
				}
				tr := res.Threads[0]
				if !tr.Done || tr.ExitCode != 0 {
					t.Fatalf("thread did not exit cleanly: done=%v code=%d", tr.Done, tr.ExitCode)
				}
				if got := string(ck.Output) + tr.Output; got != want {
					t.Fatalf("output mismatch:\n  checkpoint %q\n  detailed   %q\n  want       %q",
						ck.Output, tr.Output, want)
				}
				if wantCommit := ref.Stats.Insts - ck.Insts; tr.Committed != wantCommit {
					t.Fatalf("committed %d insts after splice, want %d", tr.Committed, wantCommit)
				}
			})
		}
	}
}

// TestExtractCheckpointResume runs each canonical detailed machine under
// an exact-stop budget, extracts the committed state, and finishes the
// program on the functional engine: output and exit status must match an
// uninterrupted reference run, proving extraction captured the complete
// architectural state. Extraction internally audits the image against
// the co-simulation golden model.
func TestExtractCheckpointResume(t *testing.T) {
	const budget = 2000
	for _, tm := range testMachines() {
		t.Run(tm.name, func(t *testing.T) {
			abi := minic.ABIFlat
			if tm.windowed {
				abi = minic.ABIWindowed
			}
			p := buildProg(t, "fib", srcFib, abi)
			want := refRun(t, p, tm.windowed)

			cfg := tm.cfg
			cfg.CoSim = true
			cfg.StopAfter = budget
			cfg.StopExact = true
			m, err := New(cfg, []*program.Program{p}, tm.windowed)
			if err != nil {
				t.Fatalf("new machine: %v", err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			ck, err := m.ExtractCheckpoint(0)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			if ck.Insts != budget {
				t.Fatalf("checkpoint at %d insts, want exactly %d", ck.Insts, budget)
			}

			fm, err := emu.NewFromCheckpoint(p, emu.Config{Windowed: tm.windowed, MaxInsts: 10_000_000}, ck)
			if err != nil {
				t.Fatalf("resume from checkpoint: %v", err)
			}
			if reason, err := fm.Run(); err != nil || reason != emu.StopExited {
				t.Fatalf("functional resume: %v (%v)", err, reason)
			}
			if got := fm.Output.String(); got != want {
				t.Fatalf("output mismatch after extract+resume:\n  got  %q\n  want %q", got, want)
			}
		})
	}
}

// TestInjectExtractIdentity transplants a checkpoint in and immediately
// back out of each canonical machine: the round trip must be a content-
// addressed fixed point.
func TestInjectExtractIdentity(t *testing.T) {
	for _, tm := range testMachines() {
		t.Run(tm.name, func(t *testing.T) {
			abi := minic.ABIFlat
			if tm.windowed {
				abi = minic.ABIWindowed
			}
			p := buildProg(t, "fib", srcFib, abi)
			ck := fastForwardCheckpoint(t, p, tm.windowed, 3000)

			cfg := tm.cfg
			cfg.CoSim = true
			m, err := New(cfg, []*program.Program{p}, tm.windowed)
			if err != nil {
				t.Fatalf("new machine: %v", err)
			}
			if err := m.InjectCheckpoint(0, ck); err != nil {
				t.Fatalf("inject: %v", err)
			}
			out, err := m.ExtractCheckpoint(0)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			wantAddr, err := ck.ContentAddress()
			if err != nil {
				t.Fatal(err)
			}
			gotAddr, err := out.ContentAddress()
			if err != nil {
				t.Fatal(err)
			}
			if gotAddr != wantAddr {
				t.Fatalf("round trip not a fixed point: in %.12s, out %.12s", wantAddr, gotAddr)
			}
		})
	}
}

// TestInjectCheckpointRejections covers the guard rails: injection after
// simulation has started, and injection of an exited image.
func TestInjectCheckpointRejections(t *testing.T) {
	p := buildProg(t, "fib", srcFib, minic.ABIFlat)
	ck := fastForwardCheckpoint(t, p, false, 1000)

	cfg := DefaultConfig(RenameConventional, WindowNone, 1, 128)
	cfg.MaxCycles = 100_000_000
	m, err := New(cfg, []*program.Program{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCheckpoint(0, ck); err == nil {
		t.Fatal("inject after Run succeeded; want cycle-0 guard error")
	}

	// An exited image must be rejected even on a fresh machine.
	fm := emu.New(p, emu.Config{Windowed: false, MaxInsts: 10_000_000})
	if reason, err := fm.Run(); err != nil || reason != emu.StopExited {
		t.Fatalf("emu run: %v (%v)", err, reason)
	}
	exited := fm.Checkpoint()
	m2, err := New(cfg, []*program.Program{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.InjectCheckpoint(0, exited); err == nil {
		t.Fatal("inject of exited checkpoint succeeded; want rejection")
	}
}
