package core

import (
	"fmt"

	"vca/internal/emu"
	"vca/internal/isa"
	"vca/internal/rename"
)

// commitStage retires up to Width completed instructions in order from the
// head of the shared ROB. Stores write memory (and the data cache) here;
// syscalls take effect here; conventional-window overflow/underflow traps
// are detected here (§4.1); and, when enabled, every committed instruction
// is cross-checked against the functional emulator.
//
//vca:hot
func (m *Machine) commitStage() {
	for n := 0; n < m.cfg.Width && m.robLen() > 0; n++ {
		u := m.rob[m.robHead]
		if !u.done {
			if n == 0 {
				m.noteCommitStall(u)
			}
			return
		}
		th := m.threads[u.thread]

		// Exact-stop freeze: once a thread has committed its full budget,
		// no further real instruction of that thread may retire (injected
		// window-trap operations still drain — they are architectural
		// bookkeeping of an already-committed call/return). The ROB is
		// shared and in-order, so freezing the head freezes the stage.
		if m.cfg.StopExact && m.cfg.StopAfter > 0 && !u.injected && th.committed >= m.cfg.StopAfter {
			return
		}

		if u.isStore() {
			if m.dl1Ports == 0 {
				if n == 0 {
					m.cnt.commitStall[csStorePort]++
				}
				return // store commit needs a cache port this cycle
			}
			m.dl1Ports--
			th.mem.Write(u.ea, u.memBytes, u.storeData)
			m.hier.DataAccess(th.cacheAddr(u.ea), true, u.cause())
			m.removeFromLSQ(u)
		}

		if !u.injected && u.class == isa.ClassInvalid {
			//lint:hotalloc run-fatal error construction; executes at most once per run
			m.err = fmt.Errorf("core: invalid instruction reached commit at pc %#x (%s), cycle %d",
				u.pc, th.prog.SymbolFor(u.pc), m.cycle)
			return
		}

		// Architectural rename commit.
		switch m.cfg.Rename {
		case RenameConventional:
			if u.destPhys >= 0 {
				m.conv.CommitDest(th.id, u.destLog, u.destPhys)
			}
		case RenameVCA:
			for i := 0; i < u.nsrc; i++ {
				if p := u.srcPhys[i]; p >= 0 {
					m.vca.ReleaseSource(p)
					m.vca.ReleaseRetired(p)
				}
			}
			if u.destPhys >= 0 {
				m.vca.CommitDest(u.destAddr, u.destPhys, u.destPrev)
			}
		}

		// Committed window state.
		th.commitWBP += uint64(u.wbpDelta)
		th.commitDepth += u.depDelta

		if !u.injected {
			if m.cfg.CoSim {
				if err := m.cosimCheck(th, u); err != nil {
					m.err = err
					return
				}
			}
			th.committed++
			m.stats.Committed[th.id]++
			if u.isCtl {
				th.commitPC = u.actualNPC
			} else {
				th.commitPC = u.pc + 4
			}
		} else {
			th.injectedLive--
		}
		if m.cfg.TraceWriter != nil {
			m.traceCommit(m.cfg.TraceWriter, th, u)
		}
		if m.cfg.ChromeTrace != nil {
			m.chromeCommit(th, u)
		}
		th.robCount--
		m.popROB()
		m.cnt.commitUops++

		if !u.injected && u.class == isa.ClassSyscall && m.commitSyscall(th, u) {
			m.freeUop(u)
			return // thread exited: pipeline flushed
		}

		// Conventional window overflow/underflow traps.
		if m.cfg.Window == WindowConventional && u.depDelta != 0 && m.maybeWindowTrap(th, u) {
			m.freeUop(u)
			return
		}

		// Retired and fully processed: recycle. Nothing references a
		// committed uop once it has left the ROB (done implies it already
		// left the IQ, LSQ, and in-flight execution list).
		m.freeUop(u)
	}
}

func (m *Machine) removeFromLSQ(u *uop) {
	for i, v := range m.lsq {
		if v == u {
			m.lsq = append(m.lsq[:i], m.lsq[i+1:]...)
			m.threads[u.thread].lsqStores--
			return
		}
	}
}

// commitSyscall applies a syscall's architectural effect. It reports
// whether the thread exited.
// Syscall commit is an inherently rare, I/O-bound slow path.
//
//vca:cold
func (m *Machine) commitSyscall(th *thread, u *uop) bool {
	switch u.inst.Imm {
	case isa.SysExit:
		th.done = true
		th.exitCode = int64(u.sysVals[0])
		m.flushYounger(th, u.seq)
		return true
	case isa.SysPutChar:
		th.output.WriteByte(byte(u.sysVals[0]))
	case isa.SysPutInt:
		fmt.Fprintf(&th.output, "%d", int64(u.sysVals[0]))
	case isa.SysPutFloat:
		fmt.Fprintf(&th.output, "%g", f64bits(u.sysVals[0]))
	case isa.SysPutStr:
		addr, n := u.sysVals[0], int(u.sysVals[1])
		if n >= 0 && n <= 1<<20 {
			th.output.Write(th.mem.ReadBytes(addr, n))
		}
	default:
		m.err = fmt.Errorf("core: unknown syscall %d at pc %#x", u.inst.Imm, u.pc)
	}
	return false
}

// maybeWindowTrap checks committed window residency after a call or
// return and, when a window must be copied, flushes the thread, stalls
// fetch for the trap penalty, and injects the whole-window save or
// restore memory operations (§4.1: "the pipeline delays for 10 cycles...
// load or store instructions are inserted into the pipeline"). Reports
// whether a trap fired.
func (m *Machine) maybeWindowTrap(th *thread, u *uop) bool {
	resident := th.commitDepth - th.winBase + 1
	switch {
	case u.depDelta > 0 && resident > m.nwin:
		// Overflow: save the oldest resident window.
		evict := th.winBase
		th.winBase++
		m.startTrap(th, u)
		for s := 0; s < isa.WindowSlots; s++ {
			th.pendingInject = append(th.pendingInject,
				m.newInjectedUop(th, true, m.winSlotLogical(evict, s),
					m.windowAddr(th, evict)+8*uint64(s)))
		}
		return true

	case u.depDelta < 0 && th.commitDepth < th.winBase:
		// Underflow: restore the departed window from memory.
		th.winBase--
		if th.winBase < 0 {
			//lint:hotalloc run-fatal error construction; executes at most once per run
			m.err = fmt.Errorf("core: register window underflow below frame 0 at pc %#x", u.pc)
			return true
		}
		m.startTrap(th, u)
		for s := 0; s < isa.WindowSlots; s++ {
			th.pendingInject = append(th.pendingInject,
				m.newInjectedUop(th, false, m.winSlotLogical(th.winBase, s),
					m.windowAddr(th, th.winBase)+8*uint64(s)))
		}
		return true
	}
	return false
}

// newInjectedUop builds one pooled window-trap memory operation.
func (m *Machine) newInjectedUop(th *thread, store bool, logical int, addr uint64) *uop {
	m.seq++
	iu := m.newUop()
	iu.seq = m.seq
	iu.thread = th.id
	iu.injected = true
	iu.injStore = store
	iu.injLogical = logical
	iu.injAddr = addr
	iu.destPhys, iu.destPrev = rename.PhysNone, rename.PhysNone
	iu.srcPhys[0], iu.srcPhys[1] = rename.PhysNone, rename.PhysNone
	th.injectedLive++
	return iu
}

// startTrap flushes everything younger than the trapping instruction and
// charges the trap penalty; fetch resumes at the instruction after it once
// the injected operations have renamed.
func (m *Machine) startTrap(th *thread, u *uop) {
	m.stats.WindowTraps++
	m.flushYounger(th, u.seq)
	th.pc = u.actualNPC
	th.fetchBlockedUntil = m.cycle + uint64(m.cfg.TrapPenalty)
}

// cosimCheck steps the golden-model emulator one instruction and compares
// architectural effects.
// Co-simulation cross-checking is a verification configuration, never
// a measured one.
//
//vca:cold
func (m *Machine) cosimCheck(th *thread, u *uop) error {
	var info emu.StepInfo
	if err := th.ref.StepInto(&info); err != nil {
		return fmt.Errorf("core: co-sim reference error at cycle %d: %w", m.cycle, err)
	}
	if info.PC != u.pc {
		return fmt.Errorf("core: co-sim PC mismatch at cycle %d: core %#x (%s), ref %#x (%s)",
			m.cycle, u.pc, th.prog.SymbolFor(u.pc), info.PC, th.prog.SymbolFor(info.PC))
	}
	if u.destPhys >= 0 && u.destReg != isa.RegNone {
		got := m.physVal[u.destPhys]
		if info.Dest != u.destReg || info.DestVal != got {
			return fmt.Errorf("core: co-sim dest mismatch at pc %#x (%s): core %v=%#x, ref %v=%#x",
				u.pc, u.inst.DisasmAt(u.pc), u.destReg, got, info.Dest, info.DestVal)
		}
	}
	if u.isStore() {
		if !info.IsStore || info.Addr != u.ea || info.DestVal != u.storeData {
			return fmt.Errorf("core: co-sim store mismatch at pc %#x (%s): core [%#x]=%#x, ref [%#x]=%#x",
				u.pc, u.inst.DisasmAt(u.pc), u.ea, u.storeData, info.Addr, info.DestVal)
		}
	}
	if u.isCtl && info.NextPC != u.actualNPC {
		return fmt.Errorf("core: co-sim control mismatch at pc %#x (%s): core -> %#x, ref -> %#x",
			u.pc, u.inst.DisasmAt(u.pc), u.actualNPC, info.NextPC)
	}
	return nil
}

func f64bits(bits uint64) float64 {
	return mathFloat64frombits(bits)
}
