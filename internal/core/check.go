package core

import (
	"fmt"

	"vca/internal/rename"
)

// This file is the cycle-level invariant checker behind Config.Check:
// after every simulated cycle it re-derives, from first principles, the
// state every structure ought to be in and compares. The checks fall
// into four families (catalogued in docs/VERIFICATION.md):
//
//   - Rename-substrate audits. For VCA, the Figure 2 reference counts
//     are reconstructed from the live ROB (every source read pins its
//     register, every producer pins its destination, every in-flight
//     destination rename is one pending overwrite of its previous
//     version) and must match the renamer exactly; conservation (free +
//     mapped = all) and table/commit-map consistency come from
//     rename.VCA.CheckInvariants. For the conventional substrate the
//     free-list leak check runs against the ROB's in-flight
//     destinations.
//   - Queue shape. ROB, fetch queue, IQ, LSQ, and ASTQ must be
//     age-ordered (FIFO enqueue stamps for the ASTQ), and the
//     incrementally maintained per-thread occupancy counts (robCount,
//     inFetchQ, lsqStores, inFlight) must equal a fresh scan.
//   - Counter identities. The flow counters registered in counters.go
//     must conserve uops: rename in = commit + squash + resident, for
//     each structure. A counter identity failing means the metrics the
//     experiments consume have silently drifted from the machine.
//   - Memory-system structure. Cache directories may not hold duplicate
//     tags (checked every 1024 cycles — the directories are large and
//     change slowly relative to the queues).
//
// The checker allocates its scratch once, on first use; with
// Config.Check false the only cost is one branch per cycle.

// checker holds the reusable scratch of the invariant checker so the
// per-cycle passes allocate nothing.
type checker struct {
	expectRef []int // VCA: pins justified by the live ROB
	expectOW  []int // VCA: overwriters justified by the live ROB

	inFlight []int // conventional: live destination registers

	robCount  []int // per-thread reconstructed occupancies
	fetchCnt  []int
	lsqCnt    []int
	nonIssued []int

	// Per-thread age cursor for the ordering checks. A shared queue is
	// age-ordered per thread, not globally: an injected window-trap uop
	// carries a younger seq than another thread's still-unrenamed
	// instructions yet legally renames first.
	lastSeq []uint64
}

func (m *Machine) ensureChecker() *checker {
	if m.chk == nil {
		m.chk = &checker{
			expectRef: make([]int, m.cfg.PhysRegs),
			expectOW:  make([]int, m.cfg.PhysRegs),
			robCount:  make([]int, m.cfg.Threads),
			fetchCnt:  make([]int, m.cfg.Threads),
			lsqCnt:    make([]int, m.cfg.Threads),
			nonIssued: make([]int, m.cfg.Threads),
			lastSeq:   make([]uint64, m.cfg.Threads),
		}
	}
	return m.chk
}

// checkCycle runs the end-of-cycle invariant pass and records a
// violation into m.err (Run aborts on it). The cache-directory pass
// runs every 1024 cycles.
func (m *Machine) checkCycle() {
	err := m.checkStructures(true)
	if err == nil && m.cycle&1023 == 0 {
		err = m.hier.CheckInvariants()
	}
	if err != nil {
		m.err = fmt.Errorf("core: invariant violation at cycle %d: %w", m.cycle, err)
	}
}

// CheckNow runs every invariant check immediately and returns the first
// violation. It is safe to call between cycles or after Run returns;
// tests use it to prove deliberately injected corruption is caught.
func (m *Machine) CheckNow() error {
	if err := m.checkStructures(false); err != nil {
		return err
	}
	return m.hier.CheckInvariants()
}

// checkStructures is the per-cycle structural pass. inRun gates the
// checks that only hold at the exact end of a simulated cycle (the
// occupancy-sampling identity).
func (m *Machine) checkStructures(inRun bool) error {
	chk := m.ensureChecker()
	clear(chk.expectRef)
	clear(chk.expectOW)
	clear(chk.robCount)
	clear(chk.fetchCnt)
	clear(chk.lsqCnt)
	clear(chk.nonIssued)
	chk.inFlight = chk.inFlight[:0]

	// ROB: age order, per-thread occupancy, rename pins, readiness, and
	// scheduler membership — every ROB resident is exactly one of: in
	// the IQ (validated against the wakeup network), issued and awaiting
	// completion in the timing wheel, or done.
	iqScan, readyScan, wheelScan, sumPending := 0, 0, 0, 0
	clear(chk.lastSeq)
	for _, u := range m.rob[m.robHead:] {
		if u.seq <= chk.lastSeq[u.thread] {
			return fmt.Errorf("rob age order broken: thread %d seq %d after %d", u.thread, u.seq, chk.lastSeq[u.thread])
		}
		chk.lastSeq[u.thread] = u.seq
		chk.robCount[u.thread]++
		if !u.issued && !u.injected {
			chk.nonIssued[u.thread]++
		}
		if u.destPhys >= 0 && !u.done && m.physReady[u.destPhys] {
			return fmt.Errorf("destination p%d of un-executed uop seq %d is marked ready", u.destPhys, u.seq)
		}
		switch {
		case u.inIQ:
			if u.issued {
				return fmt.Errorf("iq resident seq %d is marked issued", u.seq)
			}
			iqScan++
			pend := 0
			for i := 0; i < u.nsrc; i++ {
				p := u.srcPhys[i]
				unready := p >= 0 && !m.physReady[p]
				if u.srcWaiting[i] != unready {
					return fmt.Errorf("uop seq %d source %d: srcWaiting=%v but source-unready=%v",
						u.seq, i, u.srcWaiting[i], unready)
				}
				if !u.srcWaiting[i] {
					continue
				}
				pend++
				found := false
				for _, cr := range m.consumers[p] {
					if cr.u == u && int(cr.slot) == i {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("uop seq %d source %d awaits p%d but is not on its consumer list", u.seq, i, p)
				}
			}
			if int(u.pendingSrcs) != pend {
				return fmt.Errorf("uop seq %d pendingSrcs %d, scan finds %d waiting sources", u.seq, u.pendingSrcs, pend)
			}
			sumPending += pend
			if (pend == 0) != u.inReady {
				return fmt.Errorf("uop seq %d: %d pending sources but inReady=%v", u.seq, pend, u.inReady)
			}
			if u.inReady {
				readyScan++
			}
		case !u.issued:
			return fmt.Errorf("rob uop seq %d neither in IQ nor issued", u.seq)
		case !u.done:
			if !u.inWheel {
				return fmt.Errorf("issued uop seq %d awaits completion but is not in the timing wheel", u.seq)
			}
			wheelScan++
		default:
			if u.inWheel {
				return fmt.Errorf("completed uop seq %d still flagged in the timing wheel", u.seq)
			}
		}
		switch m.cfg.Rename {
		case RenameConventional:
			chk.inFlight = append(chk.inFlight, u.destPhys)
		case RenameVCA:
			for i := 0; i < u.nsrc; i++ {
				if p := u.srcPhys[i]; p >= 0 {
					chk.expectRef[p]++
				}
			}
			if u.destPhys >= 0 {
				chk.expectRef[u.destPhys]++
				if u.destPrev >= 0 {
					chk.expectOW[u.destPrev]++
					if addr, ok := m.vca.MappedAddr(u.destPrev); !ok || addr != u.destAddr {
						return fmt.Errorf("uop seq %d: previous version p%d of %#x no longer holds it (mapped=%v addr=%#x)",
							u.seq, u.destPrev, u.destAddr, ok, addr)
					}
				}
			}
		}
	}

	// Fetch queue: age order (global — every entry passed through the
	// fetch stage's seq assignment), not yet renamed, per-thread
	// occupancy.
	var lastSeq uint64
	for _, fe := range m.fetchQ[m.fetchHead:] {
		if fe.u.seq <= lastSeq {
			return fmt.Errorf("fetch queue age order broken: seq %d after %d", fe.u.seq, lastSeq)
		}
		lastSeq = fe.u.seq
		chk.fetchCnt[fe.u.thread]++
		if fe.u.destPhys != rename.PhysNone {
			return fmt.Errorf("un-renamed uop seq %d already has destination p%d", fe.u.seq, fe.u.destPhys)
		}
	}

	// Scheduler conservation. The ROB scan derived who must be in the
	// IQ, on the ready list, and in the wheel; the live structures must
	// agree exactly — a leak in any direction (stale consumer entry,
	// missed wakeup, un-drained bucket) breaks a count here.
	if iqScan != m.iqCount {
		return fmt.Errorf("iqCount %d, rob scan finds %d IQ residents", m.iqCount, iqScan)
	}
	var lastStamp uint64
	for i, u := range m.ready {
		if !u.inReady || !u.inIQ || u.issued || u.pendingSrcs != 0 {
			return fmt.Errorf("ready list holds seq %d with inReady=%v inIQ=%v issued=%v pendingSrcs=%d",
				u.seq, u.inReady, u.inIQ, u.issued, u.pendingSrcs)
		}
		if !m.readyDirty && i > 0 && u.stamp <= lastStamp {
			return fmt.Errorf("ready list dispatch order broken: stamp %d after %d", u.stamp, lastStamp)
		}
		lastStamp = u.stamp
	}
	if readyScan != len(m.ready) {
		return fmt.Errorf("%d source-ready IQ residents but ready list holds %d", readyScan, len(m.ready))
	}
	sumCons := 0
	for p, refs := range m.consumers {
		if len(refs) == 0 {
			continue
		}
		if m.physReady[p] {
			return fmt.Errorf("p%d is ready but still has %d registered consumers", p, len(refs))
		}
		sumCons += len(refs)
		for _, cr := range refs {
			if !cr.u.inIQ || !cr.u.srcWaiting[cr.slot] || cr.u.srcPhys[cr.slot] != p {
				return fmt.Errorf("consumer list of p%d holds stale entry (seq %d slot %d)", p, cr.u.seq, cr.slot)
			}
		}
	}
	if sumCons != sumPending {
		return fmt.Errorf("consumer lists hold %d registrations but IQ residents await %d sources", sumCons, sumPending)
	}
	wheelCount := 0
	for b, bucket := range m.ewheel.buckets {
		for _, u := range bucket {
			if !u.issued || u.done || !u.inWheel || u.squashed {
				return fmt.Errorf("wheel bucket holds seq %d with issued=%v done=%v inWheel=%v squashed=%v",
					u.seq, u.issued, u.done, u.inWheel, u.squashed)
			}
			if u.doneAt&m.ewheel.mask != uint64(b) || u.doneAt <= m.cycle {
				return fmt.Errorf("wheel bucket %d holds seq %d with doneAt %d at cycle %d", b, u.seq, u.doneAt, m.cycle)
			}
			wheelCount++
		}
	}
	if wheelCount != m.ewheel.count || wheelCount != wheelScan {
		return fmt.Errorf("timing wheel holds %d entries, count says %d, rob scan finds %d in flight",
			wheelCount, m.ewheel.count, wheelScan)
	}

	// LSQ: age order, stores only, per-thread store counts.
	clear(chk.lastSeq)
	for _, u := range m.lsq {
		if u.seq <= chk.lastSeq[u.thread] {
			return fmt.Errorf("lsq age order broken: thread %d seq %d after %d", u.thread, u.seq, chk.lastSeq[u.thread])
		}
		chk.lastSeq[u.thread] = u.seq
		if !u.isStore() || !u.inLSQ {
			return fmt.Errorf("lsq holds non-store uop seq %d (inLSQ=%v)", u.seq, u.inLSQ)
		}
		chk.lsqCnt[u.thread]++
	}

	// Per-thread incremental bookkeeping vs the fresh scans.
	for _, th := range m.threads {
		t := th.id
		if th.robCount != chk.robCount[t] {
			return fmt.Errorf("thread %d robCount %d, scan finds %d", t, th.robCount, chk.robCount[t])
		}
		if th.inFetchQ != chk.fetchCnt[t] {
			return fmt.Errorf("thread %d inFetchQ %d, scan finds %d", t, th.inFetchQ, chk.fetchCnt[t])
		}
		if th.lsqStores != chk.lsqCnt[t] {
			return fmt.Errorf("thread %d lsqStores %d, scan finds %d", t, th.lsqStores, chk.lsqCnt[t])
		}
		if want := chk.fetchCnt[t] + chk.nonIssued[t]; th.inFlight != want {
			return fmt.Errorf("thread %d ICOUNT inFlight %d, scan finds %d", t, th.inFlight, want)
		}
		if th.done && (th.robCount != 0 || th.inFetchQ != 0 || th.lsqStores != 0 || th.injectPending() != 0) {
			return fmt.Errorf("exited thread %d still owns pipeline state (rob=%d fetch=%d lsq=%d inject=%d)",
				t, th.robCount, th.inFetchQ, th.lsqStores, th.injectPending())
		}
		if m.cfg.Window == WindowConventional {
			resident := th.commitDepth - th.winBase + 1
			if th.winBase < 0 || th.winBase > th.commitDepth || resident > m.nwin {
				return fmt.Errorf("thread %d window residency broken: winBase=%d commitDepth=%d nwin=%d",
					t, th.winBase, th.commitDepth, m.nwin)
			}
			if th.specDepth < 0 {
				return fmt.Errorf("thread %d speculative window depth %d negative", t, th.specDepth)
			}
		}
	}

	// Rename substrate audits.
	switch m.cfg.Rename {
	case RenameConventional:
		if err := m.conv.CheckInvariants(chk.inFlight); err != nil {
			return err
		}
	case RenameVCA:
		if err := m.vca.CheckInvariants(); err != nil {
			return err
		}
		if err := m.vca.AuditPins(chk.expectRef, chk.expectOW); err != nil {
			return err
		}
		if n := m.vca.PendingRSIDOps(); n != 0 {
			return fmt.Errorf("%d RSID flush operations left undrained", n)
		}
		if err := m.checkASTQ(); err != nil {
			return err
		}
	}

	return m.checkCounterIdentities(inRun)
}

// checkASTQ validates the spill/fill path: FIFO enqueue order, issue
// flags, a sane occupancy bound, and — the cross-layer identity — that
// every spill and fill the renamer ever generated is either already
// issued to the DL1 (astq.*_issued counters) or still waiting in the
// queue. Ideal-window machines apply operations instantly and bypass
// the queue, so the identity does not apply there.
func (m *Machine) checkASTQ() error {
	ideal := m.cfg.Window == WindowIdeal
	var lastEnq uint64
	pendSpills, pendFills := uint64(0), uint64(0)
	for _, e := range m.astq[m.astqHead:] {
		if e.enq <= lastEnq {
			return fmt.Errorf("astq FIFO order broken: enq %d after %d", e.enq, lastEnq)
		}
		lastEnq = e.enq
		if e.issued {
			return fmt.Errorf("astq still holds issued operation (enq %d)", e.enq)
		}
		if e.op.IsSpill {
			pendSpills++
		} else {
			pendFills++
		}
	}
	awCount := 0
	for b, bucket := range m.awheel.buckets {
		for _, e := range bucket {
			if !e.issued {
				return fmt.Errorf("astq timing wheel holds un-issued operation (enq %d)", e.enq)
			}
			if e.doneAt&m.awheel.mask != uint64(b) || e.doneAt <= m.cycle {
				return fmt.Errorf("astq wheel bucket %d holds enq %d with doneAt %d at cycle %d", b, e.enq, e.doneAt, m.cycle)
			}
			awCount++
		}
	}
	if awCount != m.awheel.count {
		return fmt.Errorf("astq timing wheel holds %d entries but count says %d", awCount, m.awheel.count)
	}
	if ideal {
		if m.astqLen() != 0 {
			return fmt.Errorf("ideal-window machine has %d queued ASTQ operations", m.astqLen())
		}
		return nil
	}
	// One rename can overshoot the full-queue check by its own operation
	// burst (at most 8 spills/fills), and RSID-reuse flushes can add a
	// register-count's worth on top; beyond that the queue is runaway.
	if limit := m.cfg.ASTQSize + 8 + int(m.vca.Stats.RSIDFlushRegs); m.astqLen() > limit {
		return fmt.Errorf("astq occupancy %d exceeds plausible bound %d", m.astqLen(), limit)
	}
	vs := &m.vca.Stats
	if vs.Spills != m.stats.SpillsIssued+pendSpills {
		return fmt.Errorf("spill accounting broken: renamer generated %d, %d issued + %d pending",
			vs.Spills, m.stats.SpillsIssued, pendSpills)
	}
	if vs.Fills != m.stats.FillsIssued+pendFills {
		return fmt.Errorf("fill accounting broken: renamer generated %d, %d issued + %d pending",
			vs.Fills, m.stats.FillsIssued, pendFills)
	}
	return nil
}

// checkCounterIdentities closes the uop flow conservation equations over
// the metrics counters: what entered a structure must equal what left it
// plus what is still resident. inRun additionally ties the occupancy
// trackers to the cycle count (they sample exactly once per cycle).
func (m *Machine) checkCounterIdentities(inRun bool) error {
	cnt := &m.cnt
	renamed := cnt.renameUops.Value()
	if got, want := uint64(m.robLen()), renamed-cnt.commitUops.Value()-cnt.squashedROB.Value(); got != want {
		return fmt.Errorf("rob occupancy %d but counters imply %d (renamed %d - committed %d - squashed %d)",
			got, want, renamed, cnt.commitUops.Value(), cnt.squashedROB.Value())
	}
	if got, want := uint64(m.iqCount), renamed-cnt.issueUops.Value()-cnt.squashedIQ.Value(); got != want {
		return fmt.Errorf("iq occupancy %d but counters imply %d (renamed %d - issued %d - purged %d)",
			got, want, renamed, cnt.issueUops.Value(), cnt.squashedIQ.Value())
	}
	fromFetch := renamed - cnt.renameInjected.Value()
	dropped := m.stats.Squashed - cnt.squashedROB.Value()
	if got, want := uint64(len(m.fetchQ)-m.fetchHead), m.stats.Fetched-fromFetch-dropped; got != want {
		return fmt.Errorf("fetch queue occupancy %d but counters imply %d (fetched %d - renamed %d - dropped %d)",
			got, want, m.stats.Fetched, fromFetch, dropped)
	}
	if inRun {
		if got := cnt.iqOcc.Hist.Count.Value(); got != m.cycle {
			return fmt.Errorf("occupancy sampled %d times in %d cycles", got, m.cycle)
		}
	}
	return nil
}
