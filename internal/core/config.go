// Package core implements the cycle-level out-of-order processor model:
// a four-wide, eight-deep superscalar pipeline (Table 1) with SMT, a
// choice of rename substrate (conventional merged register file or the
// virtual context architecture), and a choice of register-window model
// (none, conventional trap-based, VCA-backed, or idealized).
//
// Values flow through the timing model: physical registers hold real
// 64-bit data and instructions execute in the execute stage, so
// mispredicted paths rename, issue, and access the cache until squashed —
// the wrong-path effects Figures 4-8 depend on. Committed architectural
// state is optionally checked instruction-by-instruction against the
// functional emulator (co-simulation).
package core

import (
	"io"

	"vca/internal/branch"
	"vca/internal/mem"
	"vca/internal/metrics"
	"vca/internal/rename"
)

// RenameModel selects the rename substrate.
type RenameModel int

const (
	RenameConventional RenameModel = iota
	RenameVCA
)

func (r RenameModel) String() string {
	if r == RenameVCA {
		return "vca"
	}
	return "conventional"
}

// WindowModel selects how register windows are provided.
type WindowModel int

const (
	// WindowNone runs flat-ABI binaries: calls and returns do not rotate
	// the register file.
	WindowNone WindowModel = iota
	// WindowConventional expands the logical register file to hold
	// multiple windows and traps (10-cycle stall + whole-window copy
	// instructions) on overflow/underflow, as in §4.1. Requires
	// RenameConventional.
	WindowConventional
	// WindowVCA rotates the thread's window base pointer at rename
	// (§2.1.5). Requires RenameVCA.
	WindowVCA
	// WindowIdeal is the paper's idealized window machine: spills and
	// fills are instantaneous and never touch the data cache. Implemented
	// as a VCA machine with free, immediate spill/fill and a conflict-free
	// rename table. Requires RenameVCA.
	WindowIdeal
)

func (w WindowModel) String() string {
	switch w {
	case WindowConventional:
		return "conv-window"
	case WindowVCA:
		return "vca-window"
	case WindowIdeal:
		return "ideal-window"
	}
	return "no-window"
}

// Config assembles a machine. DefaultConfig reproduces Table 1.
type Config struct {
	Threads  int
	PhysRegs int
	Rename   RenameModel
	Window   WindowModel

	Width       int // fetch/rename/commit width
	IQSize      int
	ROBSize     int
	LSQSize     int
	ASTQSize    int
	IntALUs     int
	IntMulDivs  int
	FPUs        int
	FrontLat    int // fetch-to-rename latency; +1 is added for VCA (extra rename stage, Fig. 1)
	TrapPenalty int // conventional window overflow/underflow stall (§4.1)

	// RecoveryWalk charges rename a walk of ceil(squashed/width) cycles
	// after a misprediction (the Pentium-4-style recovery of §2.1.3).
	// Conventional machines are modeled with rename-table checkpoints
	// (21264-style) and recover instantly.
	RecoveryWalk bool

	VCA  rename.VCAConfig
	Hier mem.HierarchyConfig
	BP   branch.Config

	// CoSim cross-checks every committed instruction against the
	// functional emulator. Architectural divergence becomes an error.
	CoSim bool

	// Check runs the cycle-level invariant checker after every simulated
	// cycle (see check.go and docs/VERIFICATION.md): rename-substrate
	// conservation and pin audits, queue age monotonicity, occupancy
	// bookkeeping, and event-counter identities. A violation aborts Run
	// with an error. Strictly opt-in: false costs one branch per cycle.
	Check bool

	// TraceWriter, when non-nil, receives one line per committed
	// instruction (see trace.go for the format).
	TraceWriter io.Writer

	// ChromeTrace, when non-nil, records a Chrome trace-event timeline of
	// the run (per-uop stage slices, stall instants, occupancy tracks —
	// see chrometrace.go). Strictly opt-in: nil costs nothing.
	ChromeTrace *metrics.TraceRecorder

	// StopAfter ends simulation once any thread has committed this many
	// instructions (0 = run to program exit).
	StopAfter uint64
	// StopExact freezes commit per thread exactly at the StopAfter
	// budget instead of finishing the commit group (plain StopAfter can
	// overshoot by up to Width-1 instructions in the stopping cycle).
	// Region simulation needs exact boundaries so per-region instruction
	// counts stitch without overlap; when the budget lands on a window
	// trap, the run drains the trap's injected operations before
	// stopping so committed window state is complete at the boundary.
	StopExact bool
	// MaxCycles guards against hangs (default 2^40).
	MaxCycles uint64
}

// DefaultConfig returns the paper's baseline processor (Table 1) for a
// given machine flavor. physRegs follows the experiment sweeps.
func DefaultConfig(rm RenameModel, wm WindowModel, threads, physRegs int) Config {
	cfg := Config{
		Threads:  threads,
		PhysRegs: physRegs,
		Rename:   rm,
		Window:   wm,

		Width:       4,
		IQSize:      128,
		ROBSize:     192,
		LSQSize:     64,
		ASTQSize:    4,
		IntALUs:     4,
		IntMulDivs:  2,
		FPUs:        2,
		FrontLat:    5, // 8-cycle fetch-to-exec minus dispatch/issue/exec
		TrapPenalty: 10,

		RecoveryWalk: rm == RenameVCA,

		VCA:  rename.DefaultVCAConfig(threads, physRegs),
		Hier: mem.DefaultHierarchyConfig(),
		BP:   branch.DefaultConfig(threads),

		CoSim:     true,
		MaxCycles: 1 << 40,
	}
	if rm == RenameVCA {
		cfg.FrontLat++ // the extra rename stage (R2 in Figure 1)
	}
	if wm == WindowIdeal {
		// The paper's ideal model idealizes only the spill/fill handling
		// ("instantaneously and without accessing the data cache", §4.1):
		// the pipeline itself — including VCA's extra rename stage and
		// recovery discipline — is unchanged. A conflict-free table makes
		// the free fills unnecessary in the first place.
		cfg.VCA.Sets = 1 << 14
		cfg.VCA.Ways = 8
		cfg.VCA.Ports = 1 << 20
		cfg.VCA.ASTQWrites = 1 << 20
	}
	return cfg
}

// Validate rejects inconsistent combinations.
func (c *Config) Validate() error {
	switch c.Window {
	case WindowConventional:
		if c.Rename != RenameConventional {
			return errConfig("WindowConventional requires RenameConventional")
		}
	case WindowVCA, WindowIdeal:
		if c.Rename != RenameVCA {
			return errConfig("VCA/ideal windows require RenameVCA")
		}
	}
	if c.Threads < 1 || c.Width < 1 || c.PhysRegs < 1 {
		return errConfig("threads, width, and physRegs must be positive")
	}
	if c.Rename == RenameVCA && c.VCA.Ways < 2 {
		// §2.1.1: the rename table needs associativity at least equal to
		// the maximum number of source operands or rename can deadlock
		// (one pinned source blocking the other's way forever).
		return errConfig("VCA rename table needs associativity >= 2 to avoid deadlock")
	}
	return nil
}

type configError string

func errConfig(s string) error      { return configError(s) }
func (e configError) Error() string { return "core: " + string(e) }
