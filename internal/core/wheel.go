package core

// This file implements the completion timing wheel: in-flight
// executions and issued ASTQ operations are bucketed by their doneAt
// cycle, so the writeback stage touches only the entries completing
// this cycle instead of scanning every in-flight one. The ring is sized
// so the full latency window fits (bucket index = doneAt mod size),
// which makes each bucket single-doneAt: two live entries can only
// share a bucket if their doneAt cycles differ by at least the ring
// size, and no in-flight latency is that long. Should a configuration
// exceed the initial sizing, the ring doubles and rehashes in place.
//
// Bucket slices are retained and reused ([:0] on drain), so the wheel
// allocates nothing in steady state. Within a bucket, entries stay in
// insertion (= issue) order — the writeback stage's processing order is
// part of the machine's deterministic, bit-reproducible behavior.

// execWheel holds issued uops awaiting completion.
type execWheel struct {
	buckets [][]*uop
	mask    uint64
	count   int
}

// wheelSize rounds a latency span up to a power of two with headroom
// for operation latencies on top of the worst-case memory access.
func wheelSize(span int) int {
	span += 64
	n := 64
	for n < span {
		n <<= 1
	}
	return n
}

// wheelBucketCap is each bucket's construction-time capacity, carved
// from one backing array so a fresh machine reaches allocation-free
// steady state without warming hundreds of buckets through append
// growth. A machine-width issue burst fits; rare hot spots (many
// completions landing on one cycle) grow that bucket normally.
const wheelBucketCap = 8

func (w *execWheel) init(span int) {
	n := wheelSize(span)
	w.buckets = make([][]*uop, n)
	w.mask = uint64(n - 1)
	backing := make([]*uop, n*wheelBucketCap)
	for i := range w.buckets {
		w.buckets[i] = backing[i*wheelBucketCap : i*wheelBucketCap : (i+1)*wheelBucketCap]
	}
}

// insert schedules u for completion at u.doneAt (> now).
func (w *execWheel) insert(u *uop, now uint64) {
	for u.doneAt-now >= uint64(len(w.buckets)) {
		w.grow()
	}
	b := u.doneAt & w.mask
	w.buckets[b] = append(w.buckets[b], u)
	u.inWheel = true
	w.count++
}

// grow doubles the ring, rehashing every entry. Each old bucket holds a
// single doneAt, so per-bucket insertion order survives the move.
func (w *execWheel) grow() {
	old := w.buckets
	w.buckets = make([][]*uop, 2*len(old))
	w.mask = uint64(len(w.buckets) - 1)
	for _, b := range old {
		for _, u := range b {
			nb := u.doneAt & w.mask
			w.buckets[nb] = append(w.buckets[nb], u)
		}
	}
}

// remove unlinks a squashed in-flight uop from its bucket.
func (w *execWheel) remove(u *uop) {
	b := w.buckets[u.doneAt&w.mask]
	for i, v := range b {
		if v == u {
			w.buckets[u.doneAt&w.mask] = append(b[:i], b[i+1:]...)
			u.inWheel = false
			w.count--
			return
		}
	}
}

// take drains the bucket for cycle now, returning its entries. The
// stored slice is reset for reuse; the returned view stays valid until
// the next insert for an equivalent cycle (a full ring lap later).
func (w *execWheel) take(now uint64) []*uop {
	b := w.buckets[now&w.mask]
	w.buckets[now&w.mask] = b[:0]
	w.count -= len(b)
	return b
}

// nextEvent returns the earliest completion cycle in [from, bound), if
// any. Every live entry's doneAt lies within one ring lap of from, so
// the forward scan is bounded by the ring size.
func (w *execWheel) nextEvent(from, bound uint64) (uint64, bool) {
	if w.count == 0 {
		return 0, false
	}
	limit := from + uint64(len(w.buckets))
	if bound < limit {
		limit = bound
	}
	for d := from; d < limit; d++ {
		if len(w.buckets[d&w.mask]) > 0 {
			return d, true
		}
	}
	return 0, false
}

// astqWheel is the same structure for issued ASTQ spill/fill
// operations. Entries are values: an issued ASTQ operation is never
// squashed — a fill whose consumers died delivers into a recycled
// register only if the mapping is still live (rename.VCA.FillLive).
type astqWheel struct {
	buckets [][]astqEntry
	mask    uint64
	count   int
}

func (w *astqWheel) init(span int) {
	n := wheelSize(span)
	w.buckets = make([][]astqEntry, n)
	w.mask = uint64(n - 1)
	backing := make([]astqEntry, n*wheelBucketCap)
	for i := range w.buckets {
		w.buckets[i] = backing[i*wheelBucketCap : i*wheelBucketCap : (i+1)*wheelBucketCap]
	}
}

func (w *astqWheel) insert(e astqEntry, now uint64) {
	for e.doneAt-now >= uint64(len(w.buckets)) {
		w.grow()
	}
	b := e.doneAt & w.mask
	w.buckets[b] = append(w.buckets[b], e)
	w.count++
}

func (w *astqWheel) grow() {
	old := w.buckets
	w.buckets = make([][]astqEntry, 2*len(old))
	w.mask = uint64(len(w.buckets) - 1)
	for _, b := range old {
		for _, e := range b {
			nb := e.doneAt & w.mask
			w.buckets[nb] = append(w.buckets[nb], e)
		}
	}
}

func (w *astqWheel) take(now uint64) []astqEntry {
	b := w.buckets[now&w.mask]
	w.buckets[now&w.mask] = b[:0]
	w.count -= len(b)
	return b
}

func (w *astqWheel) nextEvent(from, bound uint64) (uint64, bool) {
	if w.count == 0 {
		return 0, false
	}
	limit := from + uint64(len(w.buckets))
	if bound < limit {
		limit = bound
	}
	for d := from; d < limit; d++ {
		if len(w.buckets[d&w.mask]) > 0 {
			return d, true
		}
	}
	return 0, false
}
