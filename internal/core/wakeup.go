package core

import (
	"vca/internal/rename"
)

// This file implements dependence-driven wakeup. At dispatch each uop
// registers on the consumer list of every source physical register that
// is not yet ready, with a pending-source count; when writeback (or an
// ASTQ fill, or an ideal instant fill) flips physReady, the producer's
// consumer list is drained, counts decrement, and uops reaching zero
// move to the ready list. The issue stage selects from the ready list
// only — never re-polling the whole IQ.
//
// Selection order must match the old IQ scan exactly: the IQ was kept
// in rename (dispatch) order, which is NOT seq order — injected
// window-trap uops carry fresh, larger seqs yet rename before the
// trapping instruction. The ready list therefore orders by a dispatch
// serial (uop.stamp) rather than seq.
//
// Consumer-list lifetime: a registration lives only while the consumer
// sits unissued in the IQ. Squash removes it (unregisterConsumers), so
// a list never holds a freed uop: any consumer of a squashed producer
// is a younger uop of the same thread and thus itself a squash victim
// that self-unregisters first. Conversely a physical register with live
// consumers is pinned by the rename substrate (its mapping is
// referenced), so it cannot be recycled under its waiters.

// consRef is one consumer-list entry: a waiting uop and which of its
// source slots awaits this register.
type consRef struct {
	u    *uop
	slot uint8
}

// registerDispatch wires a freshly renamed uop into the wakeup network.
// Must run after the uop's sources are final — in particular after
// applyVCAOps, whose ideal-mode fills can make a source ready in the
// same cycle it was renamed.
func (m *Machine) registerDispatch(u *uop) {
	u.stamp = m.dispatchSeq
	m.dispatchSeq++
	for i := 0; i < u.nsrc; i++ {
		p := u.srcPhys[i]
		if p == rename.PhysNone || m.physReady[p] {
			continue
		}
		m.consumers[p] = append(m.consumers[p], consRef{u: u, slot: uint8(i)})
		u.srcWaiting[i] = true
		u.pendingSrcs++
	}
	if u.pendingSrcs == 0 {
		m.pushReady(u)
	}
}

// pushReady appends a now-source-ready uop to the ready list, flagging
// a sort if it lands out of dispatch order (wakeups fire in producer
// completion order, not consumer age order).
func (m *Machine) pushReady(u *uop) {
	if n := len(m.ready); n > 0 && m.ready[n-1].stamp > u.stamp {
		m.readyDirty = true
	}
	u.inReady = true
	m.ready = append(m.ready, u)
}

// sortReady restores dispatch-order selection before the issue stage
// scans the ready list. The list is nearly sorted (wakeups land a few
// positions out of place), so a direct insertion sort beats a general
// comparator sort: no function-pointer calls, and the common all-sorted
// prefix costs one compare per element.
func (m *Machine) sortReady() {
	if !m.readyDirty {
		return
	}
	m.readyDirty = false
	rs := m.ready
	for i := 1; i < len(rs); i++ {
		u := rs[i]
		j := i - 1
		for j >= 0 && rs[j].stamp > u.stamp {
			rs[j+1] = rs[j]
			j--
		}
		rs[j+1] = u
	}
}

// wakeConsumers drains the consumer list of a physical register that
// just became ready. Callers flip m.physReady[p] first.
func (m *Machine) wakeConsumers(p int) {
	refs := m.consumers[p]
	if len(refs) == 0 {
		return
	}
	for _, cr := range refs {
		cr.u.srcWaiting[cr.slot] = false
		cr.u.pendingSrcs--
		if cr.u.pendingSrcs == 0 {
			m.pushReady(cr.u)
		}
	}
	m.consumers[p] = refs[:0]
}

// unregisterConsumers removes a squashed, not-yet-ready uop's live
// consumer-list registrations.
func (m *Machine) unregisterConsumers(u *uop) {
	if u.pendingSrcs == 0 {
		return
	}
	for i := 0; i < u.nsrc; i++ {
		if !u.srcWaiting[i] {
			continue
		}
		refs := m.consumers[u.srcPhys[i]]
		for j, cr := range refs {
			if cr.u == u && int(cr.slot) == i {
				m.consumers[u.srcPhys[i]] = append(refs[:j], refs[j+1:]...)
				break
			}
		}
		u.srcWaiting[i] = false
	}
	u.pendingSrcs = 0
}
