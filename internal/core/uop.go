package core

import (
	"vca/internal/branch"
	"vca/internal/isa"
)

// uop is one in-flight instruction (or injected window-trap memory
// operation). A uop lives in the ROB from rename to commit or squash.
type uop struct {
	seq    uint64
	thread int
	pc     uint64
	inst   isa.Inst
	class  isa.Class
	// Architectural operands in the rename view (zero registers already
	// normalized to RegNone), copied from the program's predecoded
	// metadata at fetch so the rename stage never re-derives them.
	renSrcs [2]isa.Reg
	renDest isa.Reg

	// Injected window-trap traffic (conventional windows, §4.1).
	injected   bool
	injStore   bool
	injLogical int    // logical register slot
	injAddr    uint64 // backing-store address

	// Rename results.
	nsrc     int
	srcRegs  [2]isa.Reg
	srcPhys  [2]int
	destReg  isa.Reg
	destPhys int
	destPrev int
	destLog  int    // conventional logical index
	destAddr uint64 // VCA logical register address
	wbpDelta int64  // VCA window rotation applied at rename
	depDelta int    // conventional speculative window depth delta

	// Stage timestamps, consumed by the opt-in Chrome-trace recorder at
	// commit (see chrometrace.go). Zero means "never reached" — injected
	// window-trap operations skip fetch, so fetchedAt stays zero for them
	// (cycle numbering starts at 1, so zero is unambiguous). uint32 keeps
	// the pooled uop small; timeline recording of runs past 2^32 cycles
	// is not a supported combination (the trace buffer would exhaust
	// memory long before the counter wraps).
	fetchedAt uint32
	renamedAt uint32
	issuedAt  uint32

	// Execution.
	issued    bool
	done      bool
	doneAt    uint64
	inIQ      bool
	inLSQ     bool
	ea        uint64
	memBytes  int
	storeData uint64
	result    uint64

	// Event-driven scheduler state (see wakeup.go / wheel.go). stamp is
	// the dispatch-order serial: the IQ's selection order is rename order,
	// not seq order (injected window-trap uops carry younger seqs yet
	// rename first), so the ready list sorts by stamp. pendingSrcs counts
	// the source operands still awaiting a producer; srcWaiting marks
	// which slots hold a live consumer-list registration.
	stamp       uint64
	pendingSrcs int8
	srcWaiting  [2]bool
	inReady     bool // on the machine's ready list
	inWheel     bool // issued, completion pending in the timing wheel

	// Control flow.
	isCtl     bool
	predNPC   uint64
	predTaken bool
	ck        branch.Checkpoint
	actualNPC uint64
	taken     bool

	// Syscall operand capture (performed at execute, applied at commit).
	sysVals [2]uint64

	squashed bool
}

// newUop returns a fully zeroed uop, recycling the machine's free list
// when possible. Steady-state simulation allocates no uops: every uop
// returns to the pool at commit or squash.
//
// Pool safety invariant: a uop may be freed only once no machine
// structure (rob, lsq, fetchQ, pendingInject, ready list, consumer
// lists, timing wheel) references it.
// Stale pointers in writeback's resolved scratch are tolerated because a
// freed uop keeps its squashed flag until reallocation, and no uop is
// allocated between squash and the end of the writeback stage.
func (m *Machine) newUop() *uop {
	if n := len(m.uopPool); n > 0 {
		u := m.uopPool[n-1]
		m.uopPool = m.uopPool[:n-1]
		*u = uop{}
		return u
	}
	return new(uop)
}

// freeUop returns a retired or squashed uop to the pool.
func (m *Machine) freeUop(u *uop) {
	m.uopPool = append(m.uopPool, u)
}

func (u *uop) isLoad() bool {
	return (u.class == isa.ClassLoad && !u.injected) || (u.injected && !u.injStore)
}

func (u *uop) isStore() bool {
	return (u.class == isa.ClassStore && !u.injected) || (u.injected && u.injStore)
}

func (u *uop) isMem() bool { return u.isLoad() || u.isStore() }
