// Package branch implements the front-end control-flow predictors of the
// simulated machine: a hybrid conditional-branch predictor (bimodal +
// gshare with a chooser, the "Hybrid" entry in Table 1), a branch target
// buffer for indirect jumps and calls, and a per-thread return address
// stack. All predictors are shared across SMT threads except the global
// history register and the RAS, which are per-thread.
package branch

import "vca/internal/isa"

// Config sizes the predictor structures.
type Config struct {
	TableBits int // log2 entries in bimodal/gshare/chooser tables
	HistBits  int // global history length (≤ TableBits)
	BTBBits   int // log2 entries in the branch target buffer
	RASDepth  int // return address stack entries per thread
	Threads   int
}

// DefaultConfig returns a predictor comparable to the Alpha-style hybrid
// predictor the paper's baseline uses.
func DefaultConfig(threads int) Config {
	return Config{TableBits: 12, HistBits: 12, BTBBits: 10, RASDepth: 16, Threads: threads}
}

type threadState struct {
	hist  uint32
	ras   []uint64
	rasSP int // next push slot; grows upward, wraps
}

// Predictor is the complete front-end prediction machinery.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit counters
	gshare  []uint8
	chooser []uint8 // 2-bit: ≥2 favors gshare
	btbTag  []uint64
	btbTgt  []uint64
	threads []threadState

	// Statistics.
	CondLookups uint64
	CondMispred uint64
	BTBLookups  uint64
	BTBMisses   uint64
	RASPredicts uint64
}

// New builds a predictor; counters start weakly not-taken / no preference.
func New(cfg Config) *Predictor {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, 1<<cfg.TableBits),
		gshare:  make([]uint8, 1<<cfg.TableBits),
		chooser: make([]uint8, 1<<cfg.TableBits),
		btbTag:  make([]uint64, 1<<cfg.BTBBits),
		btbTgt:  make([]uint64, 1<<cfg.BTBBits),
		threads: make([]threadState, cfg.Threads),
	}
	for i := range p.chooser {
		p.bimodal[i] = 1
		p.gshare[i] = 1
		p.chooser[i] = 1
	}
	for t := range p.threads {
		p.threads[t].ras = make([]uint64, cfg.RASDepth)
	}
	return p
}

// Checkpoint captures the speculative front-end state consumed by one
// control instruction, sufficient both to train the right table entries at
// resolution and to restore the front end after a squash.
type Checkpoint struct {
	Hist   uint32
	RasSP  int
	RasTop uint64
}

func (p *Predictor) tableIdx(pc uint64) int {
	return int(pc>>2) & (1<<p.cfg.TableBits - 1)
}

func (p *Predictor) gshareIdx(pc uint64, hist uint32) int {
	return (int(pc>>2) ^ int(hist)) & (1<<p.cfg.TableBits - 1)
}

// snapshot captures thread t's speculative state.
func (p *Predictor) snapshot(t int) Checkpoint {
	ts := &p.threads[t]
	top := ts.ras[(ts.rasSP-1+p.cfg.RASDepth)%p.cfg.RASDepth]
	return Checkpoint{Hist: ts.hist, RasSP: ts.rasSP, RasTop: top}
}

// Recover restores thread t's speculative history and RAS from a
// checkpoint taken at the mispredicted instruction.
func (p *Predictor) Recover(t int, ck Checkpoint) {
	ts := &p.threads[t]
	ts.hist = ck.Hist
	ts.rasSP = ck.RasSP
	ts.ras[(ts.rasSP-1+p.cfg.RASDepth)%p.cfg.RASDepth] = ck.RasTop
}

// PredictCond predicts a conditional branch at pc for thread t, advances
// the speculative history, and returns the checkpoint to attach to the
// instruction.
func (p *Predictor) PredictCond(t int, pc uint64) (taken bool, ck Checkpoint) {
	ck = p.snapshot(t)
	ts := &p.threads[t]
	p.CondLookups++
	bi := p.bimodal[p.tableIdx(pc)] >= 2
	gs := p.gshare[p.gshareIdx(pc, ts.hist)] >= 2
	if p.chooser[p.tableIdx(pc)] >= 2 {
		taken = gs
	} else {
		taken = bi
	}
	ts.hist = ts.hist<<1 | b2u(taken)
	if p.cfg.HistBits < 32 {
		ts.hist &= 1<<p.cfg.HistBits - 1
	}
	return taken, ck
}

// ResolveCond trains the tables with the actual outcome, using the history
// that was live at prediction time (from the checkpoint). mispredicted
// reports whether the prediction disagreed; callers use it for statistics
// and recovery. Call this at branch resolution.
func (p *Predictor) ResolveCond(pc uint64, ck Checkpoint, taken, mispredicted bool) {
	if mispredicted {
		p.CondMispred++
	}
	bIdx := p.tableIdx(pc)
	gIdx := p.gshareIdx(pc, ck.Hist)
	biWas := p.bimodal[bIdx] >= 2
	gsWas := p.gshare[gIdx] >= 2
	p.bimodal[bIdx] = bump(p.bimodal[bIdx], taken)
	p.gshare[gIdx] = bump(p.gshare[gIdx], taken)
	if biWas != gsWas {
		p.chooser[bIdx] = bump(p.chooser[bIdx], gsWas == taken)
	}
}

// RecoverCond repairs the front end after a mispredicted conditional
// branch: history is restored to the checkpoint with the actual outcome
// shifted in (the branch itself is correct once re-steered; everything
// younger is squashed).
func (p *Predictor) RecoverCond(t int, ck Checkpoint, actual bool) {
	p.Recover(t, ck)
	ts := &p.threads[t]
	ts.hist = ck.Hist<<1 | b2u(actual)
	if p.cfg.HistBits < 32 {
		ts.hist &= 1<<p.cfg.HistBits - 1
	}
}

// PopRAS discards the top RAS entry; used when re-applying a return's
// front-end effect after recovery.
func (p *Predictor) PopRAS(t int) {
	ts := &p.threads[t]
	ts.rasSP = (ts.rasSP - 1 + p.cfg.RASDepth) % p.cfg.RASDepth
}

// PredictIndirect predicts the target of an indirect jump or call via the
// BTB. ok is false on a BTB miss, in which case fetch must stall or guess
// fall-through (the core treats it as predict-next and repairs at resolve).
func (p *Predictor) PredictIndirect(t int, pc uint64) (target uint64, ok bool, ck Checkpoint) {
	ck = p.snapshot(t)
	p.BTBLookups++
	idx := int(pc>>2) & (1<<p.cfg.BTBBits - 1)
	if p.btbTag[idx] == pc {
		return p.btbTgt[idx], true, ck
	}
	p.BTBMisses++
	return 0, false, ck
}

// UpdateBTB records the resolved target of an indirect control transfer.
func (p *Predictor) UpdateBTB(pc, target uint64) {
	idx := int(pc>>2) & (1<<p.cfg.BTBBits - 1)
	p.btbTag[idx] = pc
	p.btbTgt[idx] = target
}

// PushRAS records a call's return address at fetch (speculative).
func (p *Predictor) PushRAS(t int, retPC uint64) {
	ts := &p.threads[t]
	ts.ras[ts.rasSP] = retPC
	ts.rasSP = (ts.rasSP + 1) % p.cfg.RASDepth
}

// PredictReturn pops the RAS at fetch and returns the predicted return
// target plus the checkpoint (taken before the pop).
func (p *Predictor) PredictReturn(t int, pc uint64) (target uint64, ck Checkpoint) {
	ck = p.snapshot(t)
	ts := &p.threads[t]
	p.RASPredicts++
	ts.rasSP = (ts.rasSP - 1 + p.cfg.RASDepth) % p.cfg.RASDepth
	return ts.ras[ts.rasSP], ck
}

// CheckpointFor captures the current front-end state for control
// instructions that make no prediction themselves (direct jumps/calls) but
// still need recoverable state attached.
func (p *Predictor) CheckpointFor(t int) Checkpoint { return p.snapshot(t) }

// Classify returns how fetch should handle a control instruction.
func Classify(inst isa.Inst) (cond, call, ret, indirect bool) {
	switch inst.Op.OpClass() {
	case isa.ClassBranch:
		cond = true
	case isa.ClassCall:
		call = true
		indirect = inst.Op == isa.OpJsrR
	case isa.ClassRet:
		ret = true
	case isa.ClassJump:
		indirect = inst.Op == isa.OpJmpR
	}
	return
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}
