package branch

import (
	"testing"

	"vca/internal/isa"
)

func newP() *Predictor { return New(DefaultConfig(1)) }

func TestBimodalLearnsBias(t *testing.T) {
	p := newP()
	pc := uint64(0x1000)
	// Train an always-taken branch.
	for i := 0; i < 8; i++ {
		pred, ck := p.PredictCond(0, pc)
		p.ResolveCond(pc, ck, true, pred != true)
	}
	pred, ck := p.PredictCond(0, pc)
	if !pred {
		t.Error("always-taken branch predicted not-taken after training")
	}
	p.ResolveCond(pc, ck, true, false)
}

func TestGsharePatternLearning(t *testing.T) {
	p := newP()
	pc := uint64(0x2000)
	// Alternating T/N/T/N pattern: bimodal cannot learn it; gshare can.
	outcome := func(i int) bool { return i%2 == 0 }
	wrong := 0
	for i := 0; i < 400; i++ {
		pred, ck := p.PredictCond(0, pc)
		actual := outcome(i)
		if pred != actual {
			if i > 200 {
				wrong++
			}
			// Pipeline recovery: restore history with the real outcome.
			p.RecoverCond(0, ck, actual)
		}
		p.ResolveCond(pc, ck, actual, pred != actual)
	}
	if wrong > 10 {
		t.Errorf("gshare failed to learn alternating pattern: %d late mispredicts", wrong)
	}
}

func TestHistoryRecovery(t *testing.T) {
	p := newP()
	_, ck := p.PredictCond(0, 0x100)
	h0 := ck.Hist
	p.PredictCond(0, 0x104)
	p.PredictCond(0, 0x108)
	p.Recover(0, ck)
	_, ck2 := p.PredictCond(0, 0x100)
	if ck2.Hist != h0 {
		t.Errorf("history after recovery %#x, want %#x", ck2.Hist, h0)
	}
}

func TestRASPairing(t *testing.T) {
	p := newP()
	p.PushRAS(0, 0x1004)
	p.PushRAS(0, 0x2004)
	if tgt, _ := p.PredictReturn(0, 0x3000); tgt != 0x2004 {
		t.Errorf("first return predicted %#x, want 0x2004", tgt)
	}
	if tgt, _ := p.PredictReturn(0, 0x3010); tgt != 0x1004 {
		t.Errorf("second return predicted %#x, want 0x1004", tgt)
	}
}

func TestRASRecovery(t *testing.T) {
	p := newP()
	p.PushRAS(0, 0xAAA4)
	// A mispredicted branch checkpoint, then wrong-path call+ret corrupt RAS.
	_, ck := p.PredictCond(0, 0x100)
	p.PushRAS(0, 0xBBB4)
	p.PredictReturn(0, 0x200)
	p.PredictReturn(0, 0x204) // pops the good entry too
	p.Recover(0, ck)
	if tgt, _ := p.PredictReturn(0, 0x300); tgt != 0xAAA4 {
		t.Errorf("RAS after recovery predicted %#x, want 0xAAA4", tgt)
	}
}

func TestRASDepthWraps(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.RASDepth = 4
	p := New(cfg)
	for i := 0; i < 6; i++ {
		p.PushRAS(0, uint64(0x1000+4*i))
	}
	// Last 4 pushes survive: 0x1014, 0x1010, 0x100C, 0x1008.
	want := []uint64{0x1014, 0x1010, 0x100C, 0x1008}
	for _, w := range want {
		if tgt, _ := p.PredictReturn(0, 0); tgt != w {
			t.Errorf("RAS pop got %#x, want %#x", tgt, w)
		}
	}
}

func TestBTB(t *testing.T) {
	p := newP()
	if _, ok, _ := p.PredictIndirect(0, 0x500); ok {
		t.Error("cold BTB should miss")
	}
	p.UpdateBTB(0x500, 0x9000)
	tgt, ok, _ := p.PredictIndirect(0, 0x500)
	if !ok || tgt != 0x9000 {
		t.Errorf("BTB hit = %v target %#x", ok, tgt)
	}
	// Aliasing pc with different tag must miss.
	alias := uint64(0x500 + 4<<10<<2)
	if _, ok, _ := p.PredictIndirect(0, alias); ok {
		t.Error("aliased pc must miss on tag")
	}
	if p.BTBMisses != 2 {
		t.Errorf("BTBMisses = %d, want 2", p.BTBMisses)
	}
}

func TestPerThreadIsolation(t *testing.T) {
	p := New(DefaultConfig(2))
	p.PushRAS(0, 0x1111)
	p.PushRAS(1, 0x2222)
	if tgt, _ := p.PredictReturn(1, 0); tgt != 0x2222 {
		t.Error("thread 1 RAS polluted")
	}
	if tgt, _ := p.PredictReturn(0, 0); tgt != 0x1111 {
		t.Error("thread 0 RAS polluted")
	}
	// Histories are independent.
	_, ck0 := p.PredictCond(0, 0x10)
	for i := 0; i < 5; i++ {
		p.PredictCond(1, 0x20)
	}
	_, ck0b := p.PredictCond(0, 0x10)
	if ck0b.Hist>>1 != ck0.Hist&(ck0b.Hist>>1) && false {
		t.Log("history check informational")
	}
	_ = ck0
}

func TestClassify(t *testing.T) {
	cases := []struct {
		inst                      isa.Inst
		cond, call, ret, indirect bool
	}{
		{isa.Inst{Op: isa.OpBeq}, true, false, false, false},
		{isa.Inst{Op: isa.OpJsr}, false, true, false, false},
		{isa.Inst{Op: isa.OpJsrR}, false, true, false, true},
		{isa.Inst{Op: isa.OpRet}, false, false, true, false},
		{isa.Inst{Op: isa.OpJmp}, false, false, false, false},
		{isa.Inst{Op: isa.OpJmpR}, false, false, false, true},
		{isa.Inst{Op: isa.OpAdd}, false, false, false, false},
	}
	for _, c := range cases {
		cond, call, ret, ind := Classify(c.inst)
		if cond != c.cond || call != c.call || ret != c.ret || ind != c.indirect {
			t.Errorf("Classify(%v) = %v,%v,%v,%v", c.inst.Op, cond, call, ret, ind)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	if bump(3, true) != 3 || bump(0, false) != 0 {
		t.Error("counters must saturate")
	}
	if bump(1, true) != 2 || bump(2, false) != 1 {
		t.Error("counters must move")
	}
}
