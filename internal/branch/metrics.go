package branch

import "vca/internal/metrics"

// RegisterMetrics exposes the predictor's event counters under the
// branch.* namespace. The registry adopts pointers to the existing
// public stat fields, so prediction paths keep their plain increments.
func (p *Predictor) RegisterMetrics(r *metrics.Registry) {
	c := func(name, unit, desc string, f *uint64) {
		r.RegisterCounter(name, unit, desc, (*metrics.Counter)(f))
	}
	c("branch.cond_lookups", "lookups", "conditional-branch predictions made", &p.CondLookups)
	c("branch.cond_mispredicts", "events", "conditional branches resolved against their prediction", &p.CondMispred)
	c("branch.btb_lookups", "lookups", "branch-target-buffer probes for indirect control flow", &p.BTBLookups)
	c("branch.btb_misses", "events", "BTB probes that found no target (fall-through assumed)", &p.BTBMisses)
	c("branch.ras_predicts", "lookups", "return targets predicted from the return address stack", &p.RASPredicts)
}
