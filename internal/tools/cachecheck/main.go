// Command cachecheck gates the result-cache CI round trip: it reads a
// cache-statistics JSON file (written by `experiments -cachestats`) and
// fails unless the hit rate meets a threshold. The `make cache-ci`
// target runs the experiment harness twice against a fresh cache
// directory and uses cachecheck to assert that the second pass was
// served from the cache (>= 90% hits) rather than re-simulated.
//
// Usage:
//
//	go run ./internal/tools/cachecheck -stats pass2.json -min 0.9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vca/internal/simcache"
)

var (
	flagStats = flag.String("stats", "", "cache statistics JSON file (from experiments -cachestats)")
	flagMin   = flag.Float64("min", 0.9, "minimum acceptable hit rate in [0,1]")
)

func main() {
	flag.Parse()
	if *flagStats == "" {
		fmt.Fprintln(os.Stderr, "cachecheck: -stats FILE is required")
		os.Exit(2)
	}
	b, err := os.ReadFile(*flagStats)
	if err != nil {
		fail(err)
	}
	var s simcache.Stats
	if err := json.Unmarshal(b, &s); err != nil {
		fail(fmt.Errorf("%s: %v", *flagStats, err))
	}
	if s.Hits+s.Misses == 0 {
		fail(fmt.Errorf("%s records no cache lookups at all", *flagStats))
	}
	if s.Corrupt > 0 || s.Errors > 0 {
		fail(fmt.Errorf("cache reported %d corrupt entries and %d I/O errors: %v", s.Corrupt, s.Errors, s))
	}
	if got := s.HitRate(); got < *flagMin {
		fail(fmt.Errorf("hit rate %.1f%% below the %.1f%% floor: %v", 100*got, 100**flagMin, s))
	}
	fmt.Printf("cachecheck: ok — %v\n", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cachecheck:", err)
	os.Exit(1)
}
