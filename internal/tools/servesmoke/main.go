// Command servesmoke is the CI smoke gate for the sweep service
// (`make serve-smoke`): it builds and starts a real vcaserved process,
// drives it over HTTP the way a client would, and asserts the
// acceptance properties end to end:
//
//  1. /healthz and /readyz answer 200 on a fresh daemon.
//  2. A submitted sweep streams NDJSON results that are byte-identical,
//     cell for cell, to the same cells run directly in-process through
//     simcache.Runner (server.RunCells) against a separate cache.
//  3. /metrics serves Prometheus text with the service and simcache
//     series the runbook alerts on.
//  4. SIGTERM drains cleanly: the process exits 0 within the drain
//     budget.
//
// The tool exits non-zero with a diagnostic on the first violated
// property. It builds the daemon with the local toolchain, so it must
// run from the repository root (as the Makefile does).
package main

import (
	"bufio"
	"bytes"
	"cmp"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"time"

	"vca/internal/server"
	"vca/internal/simcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the daemon exactly as a release would.
	bin := filepath.Join(tmp, "vcaserved")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vcaserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building vcaserved: %w", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cachedir", filepath.Join(tmp, "cache"),
		"-workers", "2",
		"-draintimeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting vcaserved: %w", err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "vcaserved: listening on http://ADDR" once bound.
	base, err := readBaseURL(stdout)
	if err != nil {
		return err
	}
	fmt.Printf("servesmoke: daemon up at %s\n", base)

	if err := expectStatus(base+"/healthz", http.StatusOK); err != nil {
		return err
	}
	if err := expectStatus(base+"/readyz", http.StatusOK); err != nil {
		return err
	}

	// A tiny but non-trivial sweep: one valid cell per arch.
	req := server.SweepRequest{
		Tenant:     "smoke",
		Benchmarks: []string{"crafty"},
		Archs:      []string{"baseline", "vca-windowed"},
		PhysRegs:   []int{256},
		StopAfter:  3000,
	}
	streamed, err := submitAndStream(base, req)
	if err != nil {
		return err
	}

	// Direct identity reference: same cells through simcache.Runner
	// in-process, against a different cache directory.
	cells, err := server.ExpandCells(&req, 0)
	if err != nil {
		return err
	}
	directCache, err := simcache.Open(filepath.Join(tmp, "cache-direct"))
	if err != nil {
		return err
	}
	direct, err := server.RunCells(directCache, 2, cells)
	if err != nil {
		return err
	}
	if len(direct) != len(streamed) {
		return fmt.Errorf("streamed %d cells, direct run produced %d", len(streamed), len(direct))
	}
	slices.SortFunc(streamed, func(a, b server.CellResult) int { return cmp.Compare(a.Index, b.Index) })
	for i := range direct {
		want, _ := json.Marshal(&direct[i])
		got, _ := json.Marshal(&streamed[i])
		if !bytes.Equal(want, got) {
			return fmt.Errorf("cell %d not byte-identical to the direct run:\n service: %s\n direct:  %s", i, got, want)
		}
		if direct[i].Error != "" {
			return fmt.Errorf("cell %d failed: %s", i, direct[i].Error)
		}
	}
	fmt.Printf("servesmoke: %d streamed cells byte-identical to the direct simcache.Runner run\n", len(direct))

	// The metrics surface the runbook alerts on must be present.
	text, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, series := range []string{
		"vca_server_jobs_done_total 1",
		"vca_server_cells_done_total 2",
		"vca_server_queue_depth 0",
		"vca_simcache_misses_total",
		"vca_simcache_sf_hits_total",
		"vca_server_latency_cell_us_count",
	} {
		if !strings.Contains(text, series) {
			return fmt.Errorf("/metrics lacks %q:\n%s", series, text)
		}
	}
	fmt.Println("servesmoke: /metrics serves the expected series")

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(90 * time.Second):
		return fmt.Errorf("daemon did not exit within 90s of SIGTERM")
	}
	fmt.Println("servesmoke: SIGTERM drained cleanly (exit 0)")
	return nil
}

// readBaseURL scans daemon stdout for the listening line.
func readBaseURL(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	deadline := time.Now().Add(60 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "listening on "); ok {
			// Keep draining stdout in the background so the child never
			// blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return strings.TrimSpace(after), nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", fmt.Errorf("daemon never printed its listening address")
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b.String())
	}
	return b.String(), nil
}

func expectStatus(url string, want int) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

// submitAndStream submits the sweep and collects the NDJSON stream.
func submitAndStream(base string, req server.SweepRequest) ([]server.CellResult, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	var acc struct {
		ID         string `json:"id"`
		ResultsURL string `json:"results_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return nil, err
	}
	fmt.Printf("servesmoke: submitted sweep %s\n", acc.ID)

	rr, err := http.Get(base + acc.ResultsURL)
	if err != nil {
		return nil, err
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("results: status %d", rr.StatusCode)
	}
	var out []server.CellResult
	sc := bufio.NewScanner(rr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var r server.CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}
