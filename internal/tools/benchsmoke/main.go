// Command benchsmoke is the CI throughput gate: it runs
// BenchmarkSimThroughput (the root package's detailed-core benchmark:
// crafty, conventional rename, 256 physical registers, co-simulation
// on, 100k committed instructions) a few times at a fixed -benchtime
// and fails the build when either
//
//   - allocs per simulated instruction exceed the steady-state floor
//     established in PR 1 (the simulator is expected to allocate
//     essentially nothing per instruction once warm), or
//   - ns per simulated instruction regresses more than the configured
//     fraction against the committed baseline file.
//
// The baseline (bench_smoke_baseline.json) records the blessed ns/inst
// for the machine class CI runs on; re-baseline it deliberately, in a
// reviewed commit, when a change legitimately shifts throughput.
// Multiple -count passes are taken and the minimum is compared, so
// transient scheduler noise does not fail the gate; only a persistent
// slowdown across every pass can.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

type baseline struct {
	// NsPerInst is the blessed wall-nanoseconds per simulated
	// instruction (min across passes on an otherwise idle host).
	NsPerInst float64 `json:"ns_per_inst"`
	// Instructions is the benchmark's committed-instruction budget; it
	// converts go test's ns/op into ns/inst.
	Instructions float64 `json:"instructions"`
	// MaxAllocsPerInst is the PR-1 steady-state allocation floor.
	MaxAllocsPerInst float64 `json:"max_allocs_per_inst"`
	// MaxRegression is the tolerated fractional ns/inst increase.
	MaxRegression float64 `json:"max_regression"`
}

// benchLine matches e.g.
// BenchmarkSimThroughput  5  16166833 ns/op  5.68 simMIPS  1234 B/op  7 allocs/op
var benchLine = regexp.MustCompile(`^BenchmarkSimThroughput\S*\s+\d+\s+([0-9.]+) ns/op.*?\s([0-9.]+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "bench_smoke_baseline.json", "committed baseline file")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime value")
	count := flag.Int("count", 3, "benchmark passes (minimum is compared)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline: %v", err)
	}
	if base.NsPerInst <= 0 || base.Instructions <= 0 || base.MaxRegression <= 0 {
		fatal("baseline %s: ns_per_inst, instructions, and max_regression must be positive", *baselinePath)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^BenchmarkSimThroughput$",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count),
		"-benchmem", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatal("go test -bench failed: %v\n%s", err, out)
	}

	minNsOp, minAllocsOp := 0.0, 0.0
	passes := 0
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(out), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		nsOp, err1 := strconv.ParseFloat(m[1], 64)
		allocsOp, err2 := strconv.ParseFloat(m[2], 64)
		if err1 != nil || err2 != nil {
			fatal("unparseable benchmark line: %q", line)
		}
		if passes == 0 || nsOp < minNsOp {
			minNsOp = nsOp
		}
		if passes == 0 || allocsOp < minAllocsOp {
			minAllocsOp = allocsOp
		}
		passes++
	}
	if passes == 0 {
		fatal("no BenchmarkSimThroughput result in output:\n%s", out)
	}

	nsPerInst := minNsOp / base.Instructions
	allocsPerInst := minAllocsOp / base.Instructions
	limit := base.NsPerInst * (1 + base.MaxRegression)

	fmt.Printf("bench-smoke: %d passes, best %.1f ns/inst (baseline %.1f, limit %.1f), %.4f allocs/inst (max %.4f)\n",
		passes, nsPerInst, base.NsPerInst, limit, allocsPerInst, base.MaxAllocsPerInst)

	if allocsPerInst > base.MaxAllocsPerInst {
		fatal("allocs/inst %.4f exceeds steady-state floor %.4f", allocsPerInst, base.MaxAllocsPerInst)
	}
	if nsPerInst > limit {
		fatal("ns/inst %.1f regresses more than %.0f%% over baseline %.1f",
			nsPerInst, base.MaxRegression*100, base.NsPerInst)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchsmoke: "+format+"\n", args...)
	os.Exit(1)
}
