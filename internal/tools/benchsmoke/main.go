// Command benchsmoke is the CI throughput gate: it runs
// BenchmarkSimThroughput (the root package's detailed-core benchmark:
// crafty, conventional rename, 256 physical registers, co-simulation
// on, 100k committed instructions) and BenchmarkEmuFastRun (the fast
// functional engine on the same workload and budget — the fast-forward
// path) a few times at a fixed -benchtime and fails the build when any
// of
//
//   - allocs per simulated instruction exceed the steady-state floor
//     established in PR 1 (the simulator is expected to allocate
//     essentially nothing per instruction once warm),
//   - ns per simulated instruction (either engine) regresses more than
//     the configured fraction against the committed baseline file, or
//   - the functional engine's speedup over the detailed core falls
//     below the committed floor (min_fast_speedup). The floor is set
//     noise-tolerantly below the measured ratio — the honest A/B
//     numbers live in BENCH_5.json and EXPERIMENTS.md — so only a
//     real collapse of the fast path can trip it.
//
// The baseline (bench_smoke_baseline.json) records the blessed ns/inst
// for the machine class CI runs on; re-baseline it deliberately, in a
// reviewed commit, when a change legitimately shifts throughput.
// Multiple -count passes are taken and the minimum is compared, so
// transient scheduler noise does not fail the gate; only a persistent
// slowdown across every pass can.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

type baseline struct {
	// NsPerInst is the blessed wall-nanoseconds per simulated
	// instruction of the detailed core (min across passes on an
	// otherwise idle host).
	NsPerInst float64 `json:"ns_per_inst"`
	// Instructions is the benchmark's committed-instruction budget; it
	// converts go test's ns/op into ns/inst.
	Instructions float64 `json:"instructions"`
	// MaxAllocsPerInst is the PR-1 steady-state allocation floor.
	MaxAllocsPerInst float64 `json:"max_allocs_per_inst"`
	// MaxRegression is the tolerated fractional ns/inst increase
	// (applied to both engines).
	MaxRegression float64 `json:"max_regression"`

	// FastNsPerInst is the blessed ns/inst of the fast functional
	// engine (BenchmarkEmuFastRun); FastInstructions is that
	// benchmark's per-op instruction budget.
	FastNsPerInst    float64 `json:"fast_ns_per_inst"`
	FastInstructions float64 `json:"fast_instructions"`
	// MinFastSpeedup is the floor on detailed-ns-per-inst divided by
	// functional-ns-per-inst, measured in the same invocation on the
	// same host.
	MinFastSpeedup float64 `json:"min_fast_speedup"`
}

// benchLine matches e.g.
// BenchmarkSimThroughput  5  16166833 ns/op  5.68 simMIPS  1234 B/op  7 allocs/op
func benchLine(name string) *regexp.Regexp {
	return regexp.MustCompile(`^Benchmark` + name + `\S*\s+\d+\s+([0-9.]+) ns/op.*?\s([0-9.]+) allocs/op`)
}

// run executes one benchmark -count times and returns the minimum
// ns/op and allocs/op across passes.
func run(name, benchtime string, count int) (minNsOp, minAllocsOp float64) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^Benchmark"+name+"$",
		"-benchtime", benchtime, "-count", strconv.Itoa(count),
		"-benchmem", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatal("go test -bench %s failed: %v\n%s", name, err, out)
	}
	line := benchLine(name)
	passes := 0
	for _, l := range regexp.MustCompile(`\r?\n`).Split(string(out), -1) {
		m := line.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		nsOp, err1 := strconv.ParseFloat(m[1], 64)
		allocsOp, err2 := strconv.ParseFloat(m[2], 64)
		if err1 != nil || err2 != nil {
			fatal("unparseable benchmark line: %q", l)
		}
		if passes == 0 || nsOp < minNsOp {
			minNsOp = nsOp
		}
		if passes == 0 || allocsOp < minAllocsOp {
			minAllocsOp = allocsOp
		}
		passes++
	}
	if passes == 0 {
		fatal("no Benchmark%s result in output:\n%s", name, out)
	}
	return minNsOp, minAllocsOp
}

func main() {
	baselinePath := flag.String("baseline", "bench_smoke_baseline.json", "committed baseline file")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime value")
	count := flag.Int("count", 3, "benchmark passes (minimum is compared)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline: %v", err)
	}
	if base.NsPerInst <= 0 || base.Instructions <= 0 || base.MaxRegression <= 0 {
		fatal("baseline %s: ns_per_inst, instructions, and max_regression must be positive", *baselinePath)
	}
	if base.FastNsPerInst <= 0 || base.FastInstructions <= 0 || base.MinFastSpeedup <= 0 {
		fatal("baseline %s: fast_ns_per_inst, fast_instructions, and min_fast_speedup must be positive", *baselinePath)
	}

	detNsOp, detAllocsOp := run("SimThroughput", *benchtime, *count)
	fastNsOp, fastAllocsOp := run("EmuFastRun", *benchtime, *count)

	nsPerInst := detNsOp / base.Instructions
	allocsPerInst := detAllocsOp / base.Instructions
	limit := base.NsPerInst * (1 + base.MaxRegression)

	fastNsPerInst := fastNsOp / base.FastInstructions
	fastLimit := base.FastNsPerInst * (1 + base.MaxRegression)
	speedup := nsPerInst / fastNsPerInst

	fmt.Printf("bench-smoke: detailed best %.1f ns/inst (baseline %.1f, limit %.1f), %.4f allocs/inst (max %.4f)\n",
		nsPerInst, base.NsPerInst, limit, allocsPerInst, base.MaxAllocsPerInst)
	fmt.Printf("bench-smoke: functional best %.2f ns/inst (baseline %.2f, limit %.2f), speedup %.1fx (floor %.1fx)\n",
		fastNsPerInst, base.FastNsPerInst, fastLimit, speedup, base.MinFastSpeedup)

	if allocsPerInst > base.MaxAllocsPerInst {
		fatal("allocs/inst %.4f exceeds steady-state floor %.4f", allocsPerInst, base.MaxAllocsPerInst)
	}
	if nsPerInst > limit {
		fatal("ns/inst %.1f regresses more than %.0f%% over baseline %.1f",
			nsPerInst, base.MaxRegression*100, base.NsPerInst)
	}
	if fastAllocsOp != 0 {
		fatal("fast engine allocates %.1f times per batch; FastRun must be allocation-free when warm", fastAllocsOp)
	}
	if fastNsPerInst > fastLimit {
		fatal("functional ns/inst %.2f regresses more than %.0f%% over baseline %.2f",
			fastNsPerInst, base.MaxRegression*100, base.FastNsPerInst)
	}
	if speedup < base.MinFastSpeedup {
		fatal("functional engine is only %.1fx faster than the detailed core, floor is %.1fx", speedup, base.MinFastSpeedup)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchsmoke: "+format+"\n", args...)
	os.Exit(1)
}
