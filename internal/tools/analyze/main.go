// Command analyze is the repo's multichecker: it runs every first-party
// static-analysis pass (internal/analyzers/*) over the whole module and
// prints findings as file:line:col, one per line — the same contract as
// `go vet`. A non-empty report exits 1, so `make analyze` gates
// `make check` and `make ci`; `make fix-audit` runs it with -nofail for
// local triage. The passes, their annotations, and the recipe for
// adding one are documented in docs/ANALYZERS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"vca/internal/analyzers/suite"
)

func main() {
	var (
		root   = flag.String("root", "", "module root to analyze (default: nearest go.mod above the working directory)")
		nofail = flag.Bool("nofail", false, "print findings but exit 0 (triage mode, `make fix-audit`)")
		list   = flag.Bool("list", false, "list the suite's passes and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range suite.All() {
			fmt.Printf("%-10s %s\n", p.Analyzer.Name, p.Analyzer.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		dir = "."
	}
	moduleRoot, err := suite.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	findings, err := suite.Run(moduleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "analyze: %d finding(s)\n", len(findings))
		if !*nofail {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("analyze: %d passes clean over the module\n", len(suite.All()))
}
