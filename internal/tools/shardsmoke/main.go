// Command shardsmoke is the CI gate for the sharded sweep fabric
// (`make shard-smoke`): it builds vcaserved once, starts two real
// worker processes plus a router process in front of them (and one
// plain single daemon as the identity reference), drives the fleet
// over HTTP, and asserts the acceptance properties end to end:
//
//  1. The router serves the worker API unchanged: /healthz, /readyz,
//     and a sweep whose merged NDJSON stream is byte-identical, cell
//     for cell, to the single daemon's stream for the same request.
//  2. Cache affinity: a second tenant's identical sweep adds ZERO
//     fleet-wide cache misses, and the router's aggregated /metrics
//     proves the fleet invariant misses == simulations == distinct
//     cells — each distinct cell simulated exactly once across all
//     workers, no matter how many tenants asked.
//  3. Failover: SIGKILL one worker mid-sweep; every admitted cell is
//     still answered exactly once (no loss, no duplicates, no errors)
//     through re-dispatch to the ring successor.
//  4. SIGTERM drains the router and surviving worker cleanly (exit 0).
//
// With -bench the tool instead measures sharded throughput honestly
// (1-worker vs 2-worker wall time on distinct cells, plus the
// cache-affinity replay) and prints a JSON report for EXPERIMENTS.md /
// BENCH_6.json; nothing is asserted in that mode, because wall-clock
// scaling depends on host cores (docs/SERVICE.md "Sharded deployment").
//
// The tool exits non-zero with a diagnostic on the first violated
// property. It builds the daemon with the local toolchain, so it must
// run from the repository root (as the Makefile does).
package main

import (
	"bufio"
	"bytes"
	"cmp"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"time"

	"vca/internal/server"
	"vca/internal/server/shard"
)

var flagBench = flag.Bool("bench", false, "measure 1-worker vs 2-worker sharded throughput and print JSON instead of running the gate")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shardsmoke: FAIL:", err)
		os.Exit(1)
	}
	if !*flagBench {
		fmt.Println("shardsmoke: PASS")
	}
}

// daemon is one running vcaserved process (worker or router).
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

func startDaemon(bin string, args ...string) (*daemon, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting vcaserved %v: %w", args, err)
	}
	base, err := readBaseURL(stdout)
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return &daemon{cmd: cmd, base: base}, nil
}

// stop SIGTERMs the daemon and requires a clean drain (exit 0).
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%s exited non-zero after SIGTERM: %w", d.base, err)
		}
		return nil
	case <-time.After(90 * time.Second):
		return fmt.Errorf("%s did not exit within 90s of SIGTERM", d.base)
	}
}

func run() error {
	tmp, err := os.MkdirTemp("", "shardsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "vcaserved")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vcaserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building vcaserved: %w", err)
	}

	if *flagBench {
		return runBench(tmp, bin)
	}
	return runGate(tmp, bin)
}

func runGate(tmp, bin string) error {
	// Two workers, a router over them, and a single daemon as the
	// byte-identity reference — four real processes, fresh caches.
	w1, err := startDaemon(bin, "-cachedir", filepath.Join(tmp, "cache-w1"), "-workers", "2")
	if err != nil {
		return err
	}
	defer w1.cmd.Process.Kill()
	w2, err := startDaemon(bin, "-cachedir", filepath.Join(tmp, "cache-w2"), "-workers", "2")
	if err != nil {
		return err
	}
	defer w2.cmd.Process.Kill()
	router, err := startDaemon(bin, "-route", w1.base+","+w2.base)
	if err != nil {
		return err
	}
	defer router.cmd.Process.Kill()
	single, err := startDaemon(bin, "-cachedir", filepath.Join(tmp, "cache-single"), "-workers", "2")
	if err != nil {
		return err
	}
	defer single.cmd.Process.Kill()
	fmt.Printf("shardsmoke: fleet up — workers %s %s, router %s, reference %s\n",
		w1.base, w2.base, router.base, single.base)

	for _, p := range []string{"/healthz", "/readyz"} {
		if err := expectStatus(router.base+p, http.StatusOK); err != nil {
			return err
		}
	}

	// Property 1: merged-stream byte identity against the single daemon.
	// The sweep includes two "No Baseline" cells (baseline@64) that the
	// router answers locally — they must match the daemon's too.
	req := server.SweepRequest{
		Tenant:     "tenant-a",
		Benchmarks: []string{"crafty", "twolf"},
		Archs:      []string{"baseline", "vca-windowed"},
		PhysRegs:   []int{64, 256},
		StopAfter:  3000,
	}
	viaRouter, err := streamSweep(router.base, req, nil)
	if err != nil {
		return fmt.Errorf("sweep via router: %w", err)
	}
	viaSingle, err := streamSweep(single.base, req, nil)
	if err != nil {
		return fmt.Errorf("sweep via single daemon: %w", err)
	}
	if len(viaRouter) != len(viaSingle) {
		return fmt.Errorf("router streamed %d cells, single daemon %d", len(viaRouter), len(viaSingle))
	}
	byIndex := func(a, b server.CellResult) int { return cmp.Compare(a.Index, b.Index) }
	slices.SortFunc(viaRouter, byIndex)
	slices.SortFunc(viaSingle, byIndex)
	for i := range viaSingle {
		want, _ := json.Marshal(&viaSingle[i])
		got, _ := json.Marshal(&viaRouter[i])
		if !bytes.Equal(want, got) {
			return fmt.Errorf("cell %d not byte-identical across topologies:\n router: %s\n single: %s", i, got, want)
		}
		if viaSingle[i].Error != "" {
			return fmt.Errorf("cell %d failed: %s", i, viaSingle[i].Error)
		}
	}
	fmt.Printf("shardsmoke: %d merged-stream cells byte-identical to the single daemon\n", len(viaRouter))

	// Property 2: cache affinity. A different tenant submits the same
	// sweep; every cell must hit the cache of the worker that owns it.
	req2 := req
	req2.Tenant = "tenant-b"
	if _, err := streamSweep(router.base, req2, nil); err != nil {
		return fmt.Errorf("second tenant sweep: %w", err)
	}
	text, err := get(router.base + "/metrics")
	if err != nil {
		return err
	}
	// 16 admitted cells: 4 No-Baseline answered locally, 12 routed, but
	// only 6 are distinct — the fleet may simulate exactly 6 times.
	misses, _ := promValue(text, "vca_simcache_misses_total")
	sims, _ := promValue(text, "vca_simcache_simulations_total")
	hits, _ := promValue(text, "vca_simcache_hits_total")
	sfHits, _ := promValue(text, "vca_simcache_sf_hits_total")
	if misses != 6 || sims != 6 {
		return fmt.Errorf("fleet-wide misses=%d simulations=%d, want 6 and 6 (each distinct cell simulated exactly once across the fleet)", misses, sims)
	}
	if hits+sfHits != 6 {
		return fmt.Errorf("fleet-wide hits(%d)+sf_hits(%d) = %d, want 6 cache-affine answers for the second tenant", hits, sfHits, hits+sfHits)
	}
	local, _ := promValue(text, "vca_server_shard_cells_local_total")
	routed, _ := promValue(text, "vca_server_shard_cells_routed_total")
	if local != 4 || routed != 12 {
		return fmt.Errorf("router cells_local=%d cells_routed=%d, want 4 and 12", local, routed)
	}
	w1Routed, _ := promValue(text, "vca_server_shard_routed_w0_total")
	w2Routed, _ := promValue(text, "vca_server_shard_routed_w1_total")
	if w1Routed+w2Routed != routed {
		return fmt.Errorf("per-shard routed %d+%d != cells_routed %d", w1Routed, w2Routed, routed)
	}
	fmt.Printf("shardsmoke: fleet invariant holds — 6 misses == 6 simulations for 2 tenants x 6 distinct cells (shards w0=%d w1=%d)\n", w1Routed, w2Routed)

	// Property 3: SIGKILL failover. Eight distinct ~1M-instruction cells
	// keep the fleet busy for seconds; the victim is whichever worker
	// owns more of them (computed with the same ring the router uses),
	// killed the moment the first result lands.
	killReq := server.SweepRequest{
		Tenant:     "kill-test",
		Benchmarks: []string{"crafty"},
		Archs:      []string{"vca-flat"},
		PhysRegs:   []int{96, 128, 160, 192, 224, 256, 288, 320},
		StopAfter:  1000000,
	}
	cells, err := server.ExpandCells(&killReq, 0)
	if err != nil {
		return err
	}
	ring := shard.NewRing([]string{w1.base, w2.base}, 128)
	owned := map[string]int{}
	for _, c := range cells {
		key, ok, err := server.CellKey(c)
		if err != nil || !ok {
			return fmt.Errorf("CellKey(%+v): ok=%v err=%v", c, ok, err)
		}
		owned[ring.Owner(key)]++
	}
	victim, survivor := w1, w2
	if owned[w2.base] > owned[w1.base] {
		victim, survivor = w2, w1
	}
	fmt.Printf("shardsmoke: killing %s (owns %d of %d cells) after the first result\n",
		victim.base, owned[victim.base], len(cells))

	killed := make(chan error, 1)
	results, err := streamSweep(router.base, killReq, func() {
		killed <- victim.cmd.Process.Kill() // SIGKILL: no drain, no goodbye
	})
	if err != nil {
		return fmt.Errorf("failover sweep: %w", err)
	}
	if err := <-killed; err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	victim.cmd.Wait()
	if len(results) != len(cells) {
		return fmt.Errorf("failover sweep answered %d of %d admitted cells", len(results), len(cells))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if seen[r.Index] {
			return fmt.Errorf("cell %d answered twice — failover duplicated a result", r.Index)
		}
		seen[r.Index] = true
		if r.Error != "" {
			return fmt.Errorf("cell %d lost to the kill instead of failing over: %s", r.Index, r.Error)
		}
		if !r.Valid {
			return fmt.Errorf("cell %d invalid after failover", r.Index)
		}
	}
	text, err = get(router.base + "/metrics")
	if err != nil {
		return err
	}
	failovers, _ := promValue(text, "vca_server_shard_failovers_total")
	remapped, _ := promValue(text, "vca_server_shard_remapped_total")
	if failovers+remapped == 0 {
		return fmt.Errorf("worker killed mid-sweep but failovers=0 and remapped=0 — the victim's cells were not re-dispatched")
	}
	fmt.Printf("shardsmoke: SIGKILL failover — every cell answered exactly once (failovers=%d remapped=%d)\n", failovers, remapped)

	// Property 4: graceful shutdown of the survivors.
	if err := router.stop(); err != nil {
		return err
	}
	if err := survivor.stop(); err != nil {
		return err
	}
	single.stop()
	fmt.Println("shardsmoke: router and surviving worker drained cleanly")
	return nil
}

// benchReport is the -bench JSON output (consumed by EXPERIMENTS.md /
// BENCH_6.json, never asserted: wall-clock scaling is host-dependent).
type benchReport struct {
	HostCPUs          int     `json:"host_cpus"`
	Cells             int     `json:"cells"`
	StopAfter         uint64  `json:"stop_after"`
	OneWorkerSec      float64 `json:"one_worker_sec"`
	TwoWorkerSec      float64 `json:"two_worker_sec"`
	Speedup           float64 `json:"speedup"`
	AffinityReplaySec float64 `json:"affinity_replay_sec"`
}

func runBench(tmp, bin string) error {
	req := server.SweepRequest{
		Tenant:     "bench",
		Benchmarks: []string{"crafty", "twolf", "mesa", "gap"},
		Archs:      []string{"vca-flat"},
		PhysRegs:   []int{128, 256},
		StopAfter:  500000,
	}
	cells, err := server.ExpandCells(&req, 0)
	if err != nil {
		return err
	}
	measure := func(nWorkers int) (cold, replay float64, err error) {
		var workers []*daemon
		var urls []string
		for i := 0; i < nWorkers; i++ {
			w, err := startDaemon(bin,
				"-cachedir", filepath.Join(tmp, fmt.Sprintf("bench-%d-w%d", nWorkers, i)),
				"-workers", "2")
			if err != nil {
				return 0, 0, err
			}
			defer w.cmd.Process.Kill()
			workers = append(workers, w)
			urls = append(urls, w.base)
		}
		router, err := startDaemon(bin, "-route", strings.Join(urls, ","))
		if err != nil {
			return 0, 0, err
		}
		defer router.cmd.Process.Kill()

		start := time.Now()
		if _, err := streamSweep(router.base, req, nil); err != nil {
			return 0, 0, err
		}
		cold = time.Since(start).Seconds()

		// The replay: an identical sweep from another tenant, answered
		// entirely from the workers' now-warm caches.
		rq := req
		rq.Tenant = "bench-replay"
		start = time.Now()
		if _, err := streamSweep(router.base, rq, nil); err != nil {
			return 0, 0, err
		}
		replay = time.Since(start).Seconds()

		router.stop()
		for _, w := range workers {
			w.stop()
		}
		return cold, replay, nil
	}

	one, _, err := measure(1)
	if err != nil {
		return err
	}
	two, replay, err := measure(2)
	if err != nil {
		return err
	}
	rep := benchReport{
		HostCPUs:          numCPU(),
		Cells:             len(cells),
		StopAfter:         req.StopAfter,
		OneWorkerSec:      one,
		TwoWorkerSec:      two,
		Speedup:           one / two,
		AffinityReplaySec: replay,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func numCPU() int {
	// Read from the scheduler's view, not GOMAXPROCS of this tool.
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return 0
	}
	return strings.Count(string(b), "\nprocessor") + 1
}

// readBaseURL scans daemon stdout for the listening line.
func readBaseURL(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	deadline := time.Now().Add(60 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "listening on "); ok {
			// Keep draining stdout in the background so the child never
			// blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return strings.TrimSpace(after), nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", fmt.Errorf("daemon never printed its listening address")
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b.String())
	}
	return b.String(), nil
}

func expectStatus(url string, want int) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}

// promValue extracts one series value from Prometheus text output.
func promValue(text, series string) (uint64, bool) {
	for _, line := range strings.Split(text, "\n") {
		var v uint64
		if n, _ := fmt.Sscanf(line, series+" %d", &v); n == 1 && strings.HasPrefix(line, series+" ") {
			return v, true
		}
	}
	return 0, false
}

// streamSweep submits the sweep and collects the NDJSON stream; if
// afterFirst is non-nil it runs once, right after the first result
// line arrives (the failover kill hook).
func streamSweep(base string, req server.SweepRequest, afterFirst func()) ([]server.CellResult, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := bufio.NewReader(resp.Body).ReadString('\n')
		return nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, b)
	}
	var acc struct {
		ID         string `json:"id"`
		ResultsURL string `json:"results_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return nil, err
	}

	rr, err := http.Get(base + acc.ResultsURL)
	if err != nil {
		return nil, err
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("results: status %d", rr.StatusCode)
	}
	var out []server.CellResult
	sc := bufio.NewScanner(rr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var r server.CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		out = append(out, r)
		if len(out) == 1 && afterFirst != nil {
			afterFirst()
		}
	}
	return out, sc.Err()
}
