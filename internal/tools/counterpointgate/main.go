// Command counterpointgate is the counter-oracle CI gate (`make
// counterpoint-gate`): it measures the golden matrix — the scheduler
// golden grid plus the windowed-SMT and checkpoint-restored cells
// (experiments.CounterpointMatrix) — through a fresh shared result
// cache, evaluates the full counterpoint predicate catalogue against
// every cell's counter map plus the cache's own simcache.* registry,
// and prints the per-predicate slack table EXPERIMENTS.md reproduces.
//
// The gate fails (exit 1) on either oracle failure mode:
//
//   - a refutation: some cell's counters violate a predicate — a real
//     accounting bug in the simulator, never acceptable at head;
//   - a vacuous predicate: a predicate that produced no non-vacuous
//     verdict across the whole matrix — an oracle that cannot fire
//     proves nothing, so the matrix (or the predicate) must change.
//
// Usage:
//
//	go run -race ./internal/tools/counterpointgate [-stop N] [-jobs N] [-out report.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"sync"

	"vca/internal/counterpoint"
	"vca/internal/experiments"
	"vca/internal/simcache"
)

var (
	flagStop = flag.Uint64("stop", experiments.MatrixStop, "per-cell commit budget (instructions)")
	flagJobs = flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
	flagOut  = flag.String("out", "", "write the refinement report JSON to this file")
	flagV    = flag.Bool("v", false, "print every cell as it completes")
)

func main() {
	flag.Parse()

	dir, err := os.MkdirTemp("", "counterpointgate-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	cache, err := simcache.Open(dir)
	if err != nil {
		fail(err)
	}

	preds := counterpoint.Catalog()
	cells := experiments.CounterpointMatrix()
	rep := counterpoint.NewReport("matrix", preds)
	rep.Cells = len(cells) + 1 // + the cache's own registry pseudo-cell

	type cellOut struct{ verdicts []counterpoint.Verdict }
	outs := make([]cellOut, len(cells))
	var mu sync.Mutex
	runner := simcache.Runner{Jobs: *flagJobs, KeepGoing: true}
	runErr := runner.Run(len(cells), func(i int) error {
		counters, params, err := experiments.RunMatrixCell(cells[i], *flagStop, cache)
		if err != nil {
			return err
		}
		in := counterpoint.Input{Cell: cells[i].Name, Counters: counters, Params: params}
		vs := counterpoint.EvalAll(preds, in)
		mu.Lock()
		outs[i] = cellOut{verdicts: vs}
		if *flagV {
			fmt.Printf("cell %-40s ok\n", cells[i].Name)
		}
		mu.Unlock()
		return nil
	})
	if runErr != nil {
		fail(runErr)
	}

	for i, o := range outs {
		record(rep, preds, cells[i].Name, o.verdicts)
	}

	// The cache that just served the matrix is itself a measurable cell:
	// its simcache.* registry must satisfy the service-accounting
	// predicates (misses == simulations, stores <= misses).
	cacheIn := counterpoint.Input{
		Cell:     "simcache/served-matrix",
		Counters: cache.MetricsRegistry().CounterMap(),
		Params:   map[string]uint64{},
	}
	record(rep, preds, cacheIn.Cell, counterpoint.EvalAll(preds, cacheIn))
	rep.Finish()

	printTable(rep)

	if *flagOut != "" {
		b, err := rep.MarshalIndent()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*flagOut, append(b, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("report: %s\n", *flagOut)
	}

	bad := false
	for _, ref := range rep.Refutations {
		fmt.Printf("REFUTED %s at %s: %s (slack %d)\n", ref.Predicate, ref.Cell, ref.Algebra, ref.Slack)
		wk := make([]string, 0, len(ref.Witness))
		for k := range ref.Witness { //lint:maporder keys are collected then sorted before printing
			wk = append(wk, k)
		}
		slices.Sort(wk)
		for _, k := range wk {
			fmt.Printf("    witness %s = %d\n", k, ref.Witness[k])
		}
		bad = true
	}
	for _, name := range rep.VacuousEverywhere() {
		fmt.Printf("VACUOUS %s: no matrix cell exercised this predicate\n", name)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("counterpoint-gate: %d predicates held across %d cells, none vacuous\n",
		len(preds), rep.Cells)
}

// record folds one cell's verdicts into the report, capturing matrix
// refutations (no shrink: matrix cells are fixed benchmarks, not
// shrinkable generated specs — the repro *is* the named cell).
func record(rep *counterpoint.Report, preds []counterpoint.Predicate, cell string, vs []counterpoint.Verdict) {
	for pi, v := range vs {
		rep.Observe(cell, v)
		if v.Status == counterpoint.StatusRefuted {
			rep.Add(counterpoint.Refutation{
				Predicate: v.Predicate,
				Algebra:   preds[pi].Algebra(),
				Cell:      cell,
				Slack:     v.Slack,
				Witness:   v.Witness,
			})
		}
	}
}

func printTable(rep *counterpoint.Report) {
	fmt.Printf("%-28s %6s %8s %8s %14s  %s\n", "predicate", "holds", "refuted", "vacuous", "min-slack", "tightest cell")
	for _, s := range rep.Predicates {
		slack := "-"
		cell := ""
		if s.MinSlack != nil {
			slack = fmt.Sprintf("%d", *s.MinSlack)
			cell = s.MinSlackCell
		}
		fmt.Printf("%-28s %6d %8d %8d %14s  %s\n", s.Name, s.Holds, s.Refuted, s.Vacuous, slack, cell)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "counterpointgate:", err)
	os.Exit(1)
}
