// Command linkcheck verifies the repository's Markdown cross-links:
// every relative link target in every *.md file must exist on disk, and
// every heading anchor — both in-page (`#section`) and cross-file
// (`doc.md#section`) — must resolve to a real heading in the target
// file under GitHub's slugification. External (http/https/mailto) links
// are not fetched — the check is offline and deterministic so it can
// gate `make docs-check`.
//
// Usage (from the repository root):
//
//	go run ./internal/tools/linkcheck [dir]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline Markdown links and images: [text](target). Nested
// brackets in the text (e.g. [[wiki]]-style) are not used in this repo.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; setext headings are not used in this
// repo.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*$`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	anchors := map[string]map[string]bool{} // md path -> anchor set
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		broken += checkFile(path, anchors)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the file's broken relative links on stderr and
// returns how many it found. anchors memoizes per-file heading-anchor
// sets across calls.
func checkFile(path string, anchors map[string]map[string]bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		return 1
	}
	broken := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if !relativeTarget(target) {
				continue
			}
			target, frag, _ := strings.Cut(target, "#")
			resolved := path
			if target != "" {
				resolved = filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (resolved %s)\n",
						path, lineNo+1, m[1], resolved)
					broken++
					continue
				}
			}
			// Verify the heading anchor, for in-page links and for links
			// into another Markdown file alike.
			if frag == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			set, ok := anchors[resolved]
			if !ok {
				set = headingAnchors(resolved)
				anchors[resolved] = set
			}
			if !set[frag] {
				fmt.Fprintf(os.Stderr, "%s:%d: broken anchor %q (no heading in %s slugifies to %q)\n",
					path, lineNo+1, m[1], resolved, frag)
				broken++
			}
		}
	}
	return broken
}

// relativeTarget reports whether the link names something in this
// repository (a file on disk or an in-page anchor) as opposed to an
// external URL.
func relativeTarget(target string) bool {
	return !strings.Contains(target, "://") && !strings.HasPrefix(target, "mailto:")
}

// headingAnchors scans a Markdown file for ATX headings outside fenced
// code blocks and returns the set of anchors they generate. Duplicate
// headings get -1, -2, … suffixes, matching GitHub's renderer.
func headingAnchors(path string) map[string]bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	set := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := slugify(m[1])
		n := seen[base]
		seen[base] = n + 1
		if n > 0 {
			base = fmt.Sprintf("%s-%d", base, n)
		}
		set[base] = true
	}
	return set
}

// slugify converts a heading's text to its GitHub anchor: lowercase,
// spaces become hyphens, and everything that is not a letter, digit,
// hyphen, or underscore is dropped (backticks and other inline markup
// fall out of the anchor this way).
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
