// Command linkcheck verifies the repository's Markdown cross-links: every
// relative link target in every *.md file must exist on disk. External
// (http/https/mailto) links and in-page anchors are not fetched or
// resolved — the check is offline and deterministic so it can gate
// `make docs-check`.
//
// Usage (from the repository root):
//
//	go run ./internal/tools/linkcheck [dir]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links and images: [text](target). Nested
// brackets in the text (e.g. [[wiki]]-style) are not used in this repo.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		broken += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the file's broken relative links on stderr and
// returns how many it found.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		return 1
	}
	broken := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if !relativeTarget(target) {
				continue
			}
			// Drop an in-file anchor suffix; checking heading anchors would
			// couple the checker to a specific slugification, so only the
			// file part is verified.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (resolved %s)\n",
					path, lineNo+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken
}

// relativeTarget reports whether the link names something on disk (as
// opposed to an external URL or a pure in-page anchor).
func relativeTarget(target string) bool {
	if strings.HasPrefix(target, "#") {
		return false
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return false
	}
	return true
}
