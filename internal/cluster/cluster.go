// Package cluster implements the workload-selection methodology of §3.2
// (after Raasch & Reinhardt). The problem it solves: the SMT experiments
// (Figures 7 and 8) cannot afford to simulate every possible
// multiprogrammed pairing — the paper faced 253 two-thread SPEC
// combinations — so a small representative subset must be chosen in a
// way that is principled rather than hand-picked.
//
// The pipeline, mirroring the paper's description:
//
//  1. Characterize. Every candidate workload (a benchmark combination)
//     gets a statistics vector of per-thread dynamic properties —
//     instruction mix, call density, branch behavior, memory traffic —
//     measured by functional simulation (internal/emu), normalized to
//     zero mean and unit variance per dimension.
//  2. Reduce. Principal components analysis (a Jacobi eigensolver on
//     the covariance matrix — no external linear-algebra dependency)
//     projects the vectors onto the leading components, discarding
//     dimensions that are noise at this scale.
//  3. Cluster. Average-linkage agglomerative clustering merges the
//     nearest pair of clusters until the target count remains; average
//     linkage matches the Raasch methodology the paper cites.
//  4. Represent. The workload nearest each cluster centroid becomes
//     that cluster's representative in the SMT sweeps.
//
// The output is deterministic for a given benchmark suite: ties in
// merge order and centroid distance resolve to the lowest-index
// candidate, so the selected workload lists in internal/experiments are
// stable across runs and machines — a requirement for the committed
// EXPERIMENTS.md tables to be reproducible.
package cluster

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// Standardize centers each feature and scales it to unit variance
// (constant features become zero). PCA on raw mixed-unit features would be
// dominated by whichever stat has the biggest magnitude.
func Standardize(data [][]float64) [][]float64 {
	if len(data) == 0 {
		return nil
	}
	n, d := len(data), len(data[0])
	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	std := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	out := make([][]float64, n)
	for i, row := range data {
		out[i] = make([]float64, d)
		for j, v := range row {
			if std[j] > 1e-12 {
				out[i][j] = (v - mean[j]) / std[j]
			}
		}
	}
	return out
}

// PCA projects the rows of data onto their top-k principal components.
// It returns the projected data and the fraction of variance captured by
// each kept component.
func PCA(data [][]float64, k int) (proj [][]float64, explained []float64, err error) {
	n := len(data)
	if n == 0 {
		return nil, nil, fmt.Errorf("cluster: empty data")
	}
	d := len(data[0])
	if k <= 0 || k > d {
		k = d
	}
	// Covariance matrix of centered data.
	mean := make([]float64, d)
	for _, row := range data {
		if len(row) != d {
			return nil, nil, fmt.Errorf("cluster: ragged data")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range data {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}

	vals, vecs := jacobiEigen(cov)

	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if vals[a] != vals[b] {
			return cmp.Compare(vals[b], vals[a]) // descending eigenvalue
		}
		return cmp.Compare(a, b) // tie-break: original dimension index
	})

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	proj = make([][]float64, n)
	for r, row := range data {
		proj[r] = make([]float64, k)
		for c := 0; c < k; c++ {
			e := order[c]
			var s float64
			for j := 0; j < d; j++ {
				s += (row[j] - mean[j]) * vecs[j][e]
			}
			proj[r][c] = s
		}
	}
	explained = make([]float64, k)
	for c := 0; c < k; c++ {
		if total > 0 {
			explained[c] = math.Max(vals[order[c]], 0) / total
		}
	}
	return proj, explained, nil
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric matrix
// using cyclic Jacobi rotations. vecs[:][k] is the k-th eigenvector.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	d := len(a)
	m := make([][]float64, d)
	vecs = make([][]float64, d)
	for i := 0; i < d; i++ {
		m[i] = append([]float64(nil), a[i]...)
		vecs[i] = make([]float64, d)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < d; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for i := 0; i < d; i++ {
					mpi, mqi := m[p][i], m[q][i]
					m[p][i] = c*mpi - s*mqi
					m[q][i] = s*mpi + c*mqi
				}
				for i := 0; i < d; i++ {
					vip, viq := vecs[i][p], vecs[i][q]
					vecs[i][p] = c*vip - s*viq
					vecs[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, d)
	for i := 0; i < d; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AverageLinkage clusters points agglomeratively until k clusters remain,
// merging at each step the pair of clusters with the smallest average
// inter-point distance. It returns each cluster as a list of point
// indices, in deterministic order.
func AverageLinkage(points [][]float64, k int) ([][]int, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	for len(clusters) > k {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				var s float64
				for _, a := range clusters[i] {
					for _, b := range clusters[j] {
						s += math.Sqrt(dist2(points[a], points[b]))
					}
				}
				avg := s / float64(len(clusters[i])*len(clusters[j]))
				if avg < best {
					best, bi, bj = avg, i, j
				}
			}
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		slices.Sort(merged)
		next := make([][]int, 0, len(clusters)-1)
		for i, c := range clusters {
			if i != bi && i != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	slices.SortFunc(clusters, func(a, b []int) int { return cmp.Compare(a[0], b[0]) })
	return clusters, nil
}

// Representatives picks, for each cluster, the member nearest the cluster
// centroid (§3.2: "selected the workload nearest the centroid of each
// cluster").
func Representatives(points [][]float64, clusters [][]int) []int {
	reps := make([]int, len(clusters))
	for ci, members := range clusters {
		d := len(points[members[0]])
		centroid := make([]float64, d)
		for _, m := range members {
			for j, v := range points[m] {
				centroid[j] += v
			}
		}
		for j := range centroid {
			centroid[j] /= float64(len(members))
		}
		best, bestD := members[0], math.Inf(1)
		for _, m := range members {
			if dd := dist2(points[m], centroid); dd < bestD {
				best, bestD = m, dd
			}
		}
		reps[ci] = best
	}
	return reps
}

// SelectWorkloads is the full §3.2 pipeline: standardize the statistics
// vectors, reduce with PCA (keeping enough components for ~95% of the
// variance, at most maxDims), cluster to k groups with average linkage,
// and return the representative index of each group.
func SelectWorkloads(features [][]float64, k, maxDims int) ([]int, error) {
	std := Standardize(features)
	dims := maxDims
	if dims <= 0 || dims > len(std[0]) {
		dims = len(std[0])
	}
	proj, explained, err := PCA(std, dims)
	if err != nil {
		return nil, err
	}
	// Trim trailing components once 95% of variance is covered.
	keep, acc := 0, 0.0
	for i, e := range explained {
		acc += e
		keep = i + 1
		if acc >= 0.95 {
			break
		}
	}
	for i := range proj {
		proj[i] = proj[i][:keep]
	}
	clusters, err := AverageLinkage(proj, k)
	if err != nil {
		return nil, err
	}
	return Representatives(proj, clusters), nil
}
