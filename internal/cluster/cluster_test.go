package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("eigenvalues %v, want [3 1]", got)
	}
	// Eigenvectors are orthonormal.
	dot := vecs[0][0]*vecs[0][1] + vecs[1][0]*vecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Errorf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestPCARecoversDominantAxis(t *testing.T) {
	// Points spread along (1,1,0) with small noise: the first component
	// must capture most variance.
	rng := rand.New(rand.NewSource(7))
	var data [][]float64
	for i := 0; i < 200; i++ {
		s := rng.NormFloat64() * 10
		data = append(data, []float64{
			s + rng.NormFloat64()*0.1,
			s + rng.NormFloat64()*0.1,
			rng.NormFloat64() * 0.1,
		})
	}
	_, explained, err := PCA(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if explained[0] < 0.95 {
		t.Errorf("first component explains %.3f, want > 0.95", explained[0])
	}
}

func TestAverageLinkageSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var points [][]float64
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	labels := make([]int, 0, 60)
	for ci, c := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				c[0] + rng.NormFloat64(),
				c[1] + rng.NormFloat64(),
			})
			labels = append(labels, ci)
		}
	}
	clusters, err := AverageLinkage(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	// Every cluster must be label-pure.
	for _, c := range clusters {
		want := labels[c[0]]
		for _, m := range c {
			if labels[m] != want {
				t.Errorf("cluster mixes blobs %d and %d", want, labels[m])
			}
		}
		if len(c) != 20 {
			t.Errorf("cluster size %d, want 20", len(c))
		}
	}
}

func TestRepresentativesNearCentroid(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {0.4, 0.1}, {100, 100}}
	clusters := [][]int{{0, 1, 2}, {3}}
	reps := Representatives(points, clusters)
	if reps[0] != 2 {
		t.Errorf("representative of first cluster = %d, want 2 (nearest centroid)", reps[0])
	}
	if reps[1] != 3 {
		t.Errorf("singleton representative = %d", reps[1])
	}
}

func TestSelectWorkloadsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var feats [][]float64
	for b := 0; b < 4; b++ {
		for i := 0; i < 10; i++ {
			// 14-dimensional features, blobbed by b with different scales
			// per dimension (Standardize must handle this).
			row := make([]float64, 14)
			for j := range row {
				row[j] = float64(b*7) + rng.NormFloat64()*0.3
				if j%3 == 0 {
					row[j] *= 1000 // mixed units
				}
			}
			feats = append(feats, row)
		}
	}
	reps, err := SelectWorkloads(feats, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("got %d representatives", len(reps))
	}
	// One representative per blob.
	seen := map[int]bool{}
	for _, r := range reps {
		seen[r/10] = true
	}
	if len(seen) != 4 {
		t.Errorf("representatives %v do not cover all 4 blobs", reps)
	}
}

func TestStandardize(t *testing.T) {
	data := [][]float64{{1, 100, 5}, {3, 300, 5}, {5, 500, 5}}
	std := Standardize(data)
	// Column means ~0; constant column all zeros.
	for j := 0; j < 3; j++ {
		var s float64
		for i := range std {
			s += std[i][j]
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("column %d mean %v", j, s)
		}
	}
	for i := range std {
		if std[i][2] != 0 {
			t.Error("constant feature should standardize to zero")
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, _, err := PCA(nil, 2); err == nil {
		t.Error("PCA on empty data should error")
	}
	if _, err := AverageLinkage(nil, 2); err == nil {
		t.Error("clustering empty data should error")
	}
	// k > n clamps.
	cl, err := AverageLinkage([][]float64{{1}, {2}}, 5)
	if err != nil || len(cl) != 2 {
		t.Errorf("clamp failed: %v %v", cl, err)
	}
	// Single cluster.
	cl, err = AverageLinkage([][]float64{{1}, {2}, {3}}, 1)
	if err != nil || len(cl) != 1 || len(cl[0]) != 3 {
		t.Errorf("k=1: %v %v", cl, err)
	}
}
