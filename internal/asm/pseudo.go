package asm

import "vca/internal/isa"

// Large-constant synthesis. The ISA has no "load upper immediate"; instead
// the assembler splices a 64-bit constant out of 14-bit chunks: an addi
// (sign-extended top chunk) followed by slli/ori pairs. Logical immediates
// zero-extend precisely to make this splicing work (see isa.ImmOperand).

const chunkBits = 14

// liChunks returns how many 14-bit chunks are needed to represent v with
// the top chunk sign-extended (1–5).
func liChunks(v int64) int {
	for n := 1; n <= 4; n++ {
		shift := uint(64 - chunkBits*n)
		if (v<<shift)>>shift == v {
			return n
		}
	}
	return 5
}

// LiLen returns the number of instructions li expands to: 2n-1 for n
// chunks. The two-pass assembler needs sizes in pass one.
func LiLen(v int64) int { return 2*liChunks(v) - 1 }

// LaLen is the fixed size of the la pseudo-instruction. Fixing the size
// lets pass one lay out code before label addresses are known; it limits
// label addresses to 27 bits (128 MiB), which covers the entire layout in
// internal/program.
const LaLen = 3

// LaMaxAddr is the largest address la can materialize: the low chunk holds
// 14 bits and the top chunk must be non-negative in 14 signed bits.
const LaMaxAddr = 1<<(chunkBits+13) - 1 // 2^27-1

// liWords encodes the expansion of "li d, v".
func liWords(d isa.Reg, v int64) []isa.Word {
	n := liChunks(v)
	dr := uint8(d)
	zero := uint8(isa.ZeroInt)
	words := make([]isa.Word, 0, 2*n-1)
	top := v >> uint(chunkBits*(n-1))
	w, err := isa.EncodeI(isa.OpAddI, zero, dr, int32(top))
	if err != nil {
		// n was chosen so the top chunk fits; 5-chunk top is 8 bits.
		panic("asm: internal li top chunk out of range: " + err.Error())
	}
	words = append(words, w)
	for i := n - 2; i >= 0; i-- {
		chunk := (v >> uint(chunkBits*i)) & (1<<chunkBits - 1)
		sl, _ := isa.EncodeI(isa.OpSllI, dr, dr, chunkBits)
		or, _ := isa.EncodeI(isa.OpOrI, dr, dr, chunkField(chunk))
		words = append(words, sl, or)
	}
	return words
}

// chunkField converts an unsigned 14-bit chunk to the signed value whose
// 14-bit encoding carries those bits. Decode sign-extends the field;
// logical ops then zero-extend it back (isa.ImmOperand), recovering the
// chunk.
func chunkField(chunk int64) int32 {
	if chunk > isa.Imm14Max {
		chunk -= 1 << chunkBits
	}
	return int32(chunk)
}

// laWords encodes the fixed 3-instruction expansion of "la d, addr".
func laWords(d isa.Reg, addr uint64) ([]isa.Word, bool) {
	if addr > LaMaxAddr {
		return nil, false
	}
	dr := uint8(d)
	zero := uint8(isa.ZeroInt)
	lo := int32(addr & (1<<chunkBits - 1))
	top := int64(addr >> chunkBits) // fits signed 14 bits for addr ≤ LaMaxAddr
	w0, _ := isa.EncodeI(isa.OpAddI, zero, dr, int32(top))
	w1, _ := isa.EncodeI(isa.OpSllI, dr, dr, chunkBits)
	w2, _ := isa.EncodeI(isa.OpOrI, dr, dr, chunkField(int64(lo)))
	return []isa.Word{w0, w1, w2}, true
}
