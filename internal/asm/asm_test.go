package asm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vca/internal/isa"
	"vca/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addi t0, zero, 5
loop:   subi t0, t0, 1
        bne  t0, loop
        syscall 0
`)
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x, want text base %#x", p.Entry, p.TextBase)
	}
	if len(p.Text) != 4 {
		t.Fatalf("got %d words, want 4", len(p.Text))
	}
	i0 := isa.Decode(p.Text[0])
	if i0.Op != isa.OpAddI || i0.Dest() != isa.RegT0 || i0.Imm != 5 {
		t.Errorf("inst 0 = %v", i0)
	}
	i1 := isa.Decode(p.Text[1])
	if i1.Op != isa.OpAddI || i1.Imm != -1 {
		t.Errorf("subi should become addi -1, got %v", i1)
	}
	br := isa.Decode(p.Text[2])
	if br.Op != isa.OpBne {
		t.Fatalf("inst 2 = %v", br)
	}
	tgt, _ := br.ControlTarget(p.TextBase + 8)
	if want := p.Symbols["loop"]; tgt != want {
		t.Errorf("branch target %#x, want %#x", tgt, want)
	}
}

func TestLabelsAndSections(t *testing.T) {
	p := mustAssemble(t, `
        .text
_start: la a0, msg
        jsr f
        syscall 0
f:      ret
        .data
msg:    .asciz "hi\n"
        .align 8
vals:   .quad 1, 2, f
bytes:  .byte 1, 2, 3
`)
	if p.Entry != p.Symbols["_start"] {
		t.Error("entry should be _start")
	}
	msg := p.Symbols["msg"]
	if msg != p.DataBase {
		t.Errorf("msg at %#x, want data base", msg)
	}
	// "hi\n\0" is 4 bytes; vals aligned to 8.
	vals := p.Symbols["vals"]
	if vals != p.DataBase+8 {
		t.Errorf("vals at %#x, want %#x", vals, p.DataBase+8)
	}
	// Third quad holds address of f.
	off := vals - p.DataBase + 16
	var got uint64
	for i := 0; i < 8; i++ {
		got |= uint64(p.Data[off+uint64(i)]) << (8 * i)
	}
	if got != p.Symbols["f"] {
		t.Errorf(".quad f = %#x, want %#x", got, p.Symbols["f"])
	}
	if string(p.Data[0:3]) != "hi\n" || p.Data[3] != 0 {
		t.Errorf("string data wrong: %q", p.Data[:4])
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []int64{0, 1, -1, 8191, -8192, 8192, 100000, -100000,
		1 << 30, -(1 << 40), math.MaxInt64, math.MinInt64, 0x12345678}
	for _, v := range cases {
		words := liWords(isa.RegT0, v)
		if len(words) != LiLen(v) {
			t.Errorf("li %d: got %d words, LiLen says %d", v, len(words), LiLen(v))
		}
		// Evaluate the sequence.
		var regs [64]uint64
		for _, w := range words {
			in := isa.Decode(w)
			a := regs[in.SrcA()]
			if in.SrcA() == isa.ZeroInt {
				a = 0
			}
			regs[in.Dest()] = isa.EvalALU(in.Op, a, in.ImmOperand())
		}
		if got := int64(regs[isa.RegT0]); got != v {
			t.Errorf("li %d evaluated to %d", v, got)
		}
	}
}

// Property: li round-trips any 64-bit value.
func TestQuickLi(t *testing.T) {
	f := func(v int64) bool {
		var regs [64]uint64
		for _, w := range liWords(isa.RegT1, v) {
			in := isa.Decode(w)
			a := regs[in.SrcA()]
			if in.SrcA() == isa.ZeroInt {
				a = 0
			}
			regs[in.Dest()] = isa.EvalALU(in.Op, a, in.ImmOperand())
		}
		return int64(regs[isa.RegT1]) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestLaExpansion(t *testing.T) {
	p := mustAssemble(t, `
main:   la t2, buf
        syscall 0
        .data
        .space 4096
buf:    .quad 0
`)
	var regs [64]uint64
	for i := 0; i < LaLen; i++ {
		in := isa.Decode(p.Text[i])
		a := regs[in.SrcA()]
		if in.SrcA() == isa.ZeroInt {
			a = 0
		}
		regs[in.Dest()] = isa.EvalALU(in.Op, a, in.ImmOperand())
	}
	if regs[isa.RegT2] != p.Symbols["buf"] {
		t.Errorf("la produced %#x, want %#x", regs[isa.RegT2], p.Symbols["buf"])
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
main:   ldq t0, 16(sp)
        stq t0, -8(sp)
        ldf fs0, 0(a0)
        stf fa0, 8(a1)
        syscall 0
`)
	ld := isa.Decode(p.Text[0])
	if ld.Op != isa.OpLdQ || ld.SrcA() != isa.RegSP || ld.Dest() != isa.RegT0 || ld.Imm != 16 {
		t.Errorf("ldq decoded as %v (%+v)", ld, ld)
	}
	st := isa.Decode(p.Text[1])
	if st.Op != isa.OpStQ || st.SrcB() != isa.RegT0 || st.Imm != -8 {
		t.Errorf("stq decoded as %v", st)
	}
	lf := isa.Decode(p.Text[2])
	if lf.Dest() != isa.FPReg(0) || lf.SrcA() != isa.RegA0 {
		t.Errorf("ldf decoded as %v", lf)
	}
	sf := isa.Decode(p.Text[3])
	if sf.SrcB() != isa.RegFA0 || sf.SrcA() != isa.RegA1 {
		t.Errorf("stf decoded as %v", sf)
	}
}

func TestPseudoOps(t *testing.T) {
	p := mustAssemble(t, `
main:   mov t0, a0
        mov fs0, fa0
        nop
        neg t1, t0
        call main
        ret
        syscall 0
`)
	mv := isa.Decode(p.Text[0])
	if mv.Op != isa.OpOr || mv.Dest() != isa.RegT0 || mv.SrcA() != isa.RegA0 || mv.SrcB() != isa.ZeroInt {
		t.Errorf("mov = %v", mv)
	}
	fmv := isa.Decode(p.Text[1])
	if fmv.Op != isa.OpFMov || fmv.Dest() != isa.FPReg(0) || fmv.SrcA() != isa.RegFA0 {
		t.Errorf("fmov = %v", fmv)
	}
	nop := isa.Decode(p.Text[2])
	if nop.DestRenamed() != isa.RegNone {
		t.Errorf("nop renames a dest: %v", nop)
	}
	neg := isa.Decode(p.Text[3])
	if neg.Op != isa.OpSub || neg.SrcA() != isa.ZeroInt || neg.SrcB() != isa.RegT0 {
		t.Errorf("neg = %v", neg)
	}
	call := isa.Decode(p.Text[4])
	if call.Op != isa.OpJsr || call.Dest() != isa.RegRA {
		t.Errorf("call = %v", call)
	}
	ret := isa.Decode(p.Text[5])
	if ret.Op != isa.OpRet || ret.SrcA() != isa.RegRA {
		t.Errorf("ret = %v", ret)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "main: frobnicate t0, t1\n syscall 0",
		"unknown register": "main: add q9, t0, t1\n syscall 0",
		"duplicate label":  "main: nop\nmain: syscall 0",
		"undefined symbol": "main: jmp nowhere\n syscall 0",
		"bad imm range":    "main: addi t0, t0, 100000\n syscall 0",
		"inst in data":     ".data\nmain: add t0, t0, t0",
		"operand count":    "main: add t0, t1\n syscall 0",
		"unterminated str": ".data\ns: .ascii \"oops\nmain: syscall 0",
		"bad directive":    ".bogus 4\nmain: syscall 0",
		"file mix in mov":  "main: mov t0, fs0\n syscall 0",
		"empty program":    "   \n\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDoubleDirective(t *testing.T) {
	p := mustAssemble(t, `
main:   syscall 0
        .data
pi:     .double 3.5, -0.25
`)
	read := func(off int) float64 {
		var u uint64
		for i := 0; i < 8; i++ {
			u |= uint64(p.Data[off+i]) << (8 * i)
		}
		return math.Float64frombits(u)
	}
	if read(0) != 3.5 || read(8) != -0.25 {
		t.Errorf(".double data wrong: %v %v", read(0), read(8))
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	// Every text word in a real program should disassemble to something
	// the assembler recognizes structurally (no "??" or "invalid").
	p := mustAssemble(t, `
main:   li t0, 123456789
        la a0, d
        add s0, s1, s2
        fadd fs0, fs1, fs2
        fsqrt fs3, fs0
        cvtif fs4, t0
        cvtfi t1, fs4
        fcmplt t2, fs0, fs1
        beq t2, main
        jsrr t0
        jmpr t0
        syscall 2
        ret
        .data
d:      .quad 7
`)
	text := p.Disasm()
	if strings.Contains(text, "??") || strings.Contains(text, "invalid") {
		t.Errorf("disassembly contains junk:\n%s", text)
	}
	if !strings.Contains(text, "main:") {
		t.Error("disassembly missing symbol")
	}
}

func TestSymbolFor(t *testing.T) {
	p := mustAssemble(t, `
main:   nop
        nop
helper: nop
        syscall 0
`)
	if got := p.SymbolFor(p.Symbols["helper"]); got != "helper" {
		t.Errorf("SymbolFor(helper) = %q", got)
	}
	if got := p.SymbolFor(p.Symbols["main"] + 4); got != "main+0x4" {
		t.Errorf("SymbolFor(main+4) = %q", got)
	}
}

func TestProgramValidateAndLoad(t *testing.T) {
	p := mustAssemble(t, "main: syscall 0\n.data\nd: .byte 0xAB")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	img := map[uint64]byte{}
	p.LoadInto(loaderFunc(func(addr uint64, b []byte) {
		for i, v := range b {
			img[addr+uint64(i)] = v
		}
	}))
	if img[p.DataBase] != 0xAB {
		t.Error("data byte not loaded")
	}
	w := isa.Word(uint32(img[p.TextBase]) | uint32(img[p.TextBase+1])<<8 |
		uint32(img[p.TextBase+2])<<16 | uint32(img[p.TextBase+3])<<24)
	if isa.Decode(w).Op != isa.OpSyscall {
		t.Error("text word not loaded little-endian")
	}
}

type loaderFunc func(uint64, []byte)

func (f loaderFunc) WriteBytes(a uint64, b []byte) { f(a, b) }

func TestThreadRegSpaceDisjoint(t *testing.T) {
	g0, w0 := program.ThreadRegSpace(0)
	g1, w1 := program.ThreadRegSpace(1)
	if g0 == g1 || w0 == w1 {
		t.Error("thread register spaces must differ")
	}
	if w0 <= g0 || w0-g0 >= program.RegSpaceStride {
		t.Error("window stack must sit above globals within the stride")
	}
	if w1 <= g1 || w1-g1 >= program.RegSpaceStride {
		t.Error("thread 1 window stack must stay inside its region")
	}
	if (g1-program.RegSpaceBase)/program.RegSpaceStride != 1 {
		t.Error("thread 1 globals must land in region 1")
	}
	// The per-thread skew must change rename-table set alignment: base
	// pointers of different threads may not be congruent modulo the
	// 64-set x 8-byte table span.
	if (g0>>3)%64 == (g1>>3)%64 {
		t.Error("thread base pointers alias to the same rename-table sets")
	}
}
