package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vca/internal/isa"
)

// line is one source line after lexical splitting.
type line struct {
	num    int
	label  string // "" when absent
	mnem   string // instruction or directive, lower-cased; "" when label-only
	args   []string
	isDir  bool
	rawTxt string
}

// splitLines performs the lexical pass: strips comments, separates labels,
// mnemonics, and comma-separated operands (respecting string literals).
func splitLines(src string) ([]line, []error) {
	var out []line
	var errs []error
	for num, raw := range strings.Split(src, "\n") {
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		ln := line{num: num + 1, rawTxt: raw}

		// Leading label(s): "name:" — allow a label followed by an
		// instruction on the same line. Multiple labels get their own
		// synthetic lines so that all alias the same address.
		for {
			idx := strings.Index(text, ":")
			if idx < 0 || !isIdent(strings.TrimSpace(text[:idx])) {
				break
			}
			label := strings.TrimSpace(text[:idx])
			rest := strings.TrimSpace(text[idx+1:])
			if rest == "" {
				ln.label = label
				text = ""
				break
			}
			if ln.label != "" {
				out = append(out, line{num: ln.num, label: ln.label, rawTxt: raw})
			}
			ln.label = label
			text = rest
		}

		if text != "" {
			fields := strings.SplitN(text, " ", 2)
			mnemField := strings.SplitN(fields[0], "\t", 2)
			ln.mnem = strings.ToLower(mnemField[0])
			rest := ""
			if len(mnemField) == 2 {
				rest = mnemField[1]
			}
			if len(fields) == 2 {
				rest = rest + " " + fields[1]
			}
			ln.isDir = strings.HasPrefix(ln.mnem, ".")
			var err error
			ln.args, err = splitArgs(rest)
			if err != nil {
				errs = append(errs, fmt.Errorf("line %d: %v", ln.num, err))
				continue
			}
		}
		out = append(out, ln)
	}
	return out, errs
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == ';' || s[i] == '#':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// splitArgs splits an operand list on top-level commas, keeping string
// literals intact.
func splitArgs(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var args []string
	start, inStr := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == ',':
			args = append(args, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string literal")
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '$', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseReg resolves a register operand.
func parseReg(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	if r, ok := isa.RegByName(strings.ToLower(s)); ok {
		return r, nil
	}
	return isa.RegNone, fmt.Errorf("unknown register %q", s)
}

// parseInt parses an integer literal: decimal, hex (0x), character ('c'),
// with optional leading minus.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := unescape(s[1 : len(s)-1])
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad character literal %s", s)
		}
		return int64(body[0]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex (e.g. 0xFFFFFFFFFFFFFFFF).
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

// parseMem parses "disp(reg)" or "(reg)" or "label(reg)"-less plain "disp".
func parseMem(s string, resolve func(string) (int64, error)) (disp int64, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.RegNone, fmt.Errorf("bad memory operand %q (want disp(reg))", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	base, err = parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, isa.RegNone, err
	}
	if dispStr == "" {
		return 0, base, nil
	}
	disp, err = resolve(dispStr)
	return disp, base, err
}

func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case '\'':
			b.WriteByte('\'')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	return unescape(s[1 : len(s)-1])
}
