// Package asm implements a two-pass assembler for the ISA in internal/isa.
//
// Syntax is conventional:
//
//	        .text
//	main:   addi sp, sp, -32      ; comment
//	        stq  ra, 24(sp)
//	        li   t0, 0x12345678
//	        la   a0, table
//	loop:   beq  t0, done
//	        jsr  helper
//	        jmp  loop
//	done:   ldq  ra, 24(sp)
//	        ret
//	        .data
//	table:  .quad 1, 2, 3, helper
//	msg:    .asciz "hi\n"
//	buf:    .space 256
//
// Pseudo-instructions: li (64-bit constant synthesis), la (address
// materialization, fixed three words), mov, nop, neg, subi, call (alias of
// jsr), b (alias of jmp), and bare ret (returns via ra).
package asm

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"vca/internal/isa"
	"vca/internal/program"
)

// Options configures segment placement.
type Options struct {
	Name     string
	TextBase uint64
	DataBase uint64
}

// Assemble assembles source text with default segment placement.
func Assemble(src string) (*program.Program, error) {
	return AssembleWith(src, Options{})
}

// AssembleWith assembles with explicit options.
func AssembleWith(src string, opts Options) (*program.Program, error) {
	if opts.TextBase == 0 {
		opts.TextBase = program.DefaultTextBase
	}
	if opts.DataBase == 0 {
		opts.DataBase = program.DefaultDataBase
	}
	lines, errs := splitLines(src)
	a := &assembler{opts: opts, symbols: map[string]uint64{}, errs: errs}
	a.pass1(lines)
	if len(a.errs) == 0 {
		a.pass2(lines)
	}
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	p := &program.Program{
		Name:     opts.Name,
		TextBase: opts.TextBase,
		Text:     a.text,
		DataBase: opts.DataBase,
		Data:     a.data,
		Symbols:  a.symbols,
	}
	entry, ok := a.symbols["_start"]
	if !ok {
		entry, ok = a.symbols["main"]
	}
	if !ok {
		entry = opts.TextBase
	}
	p.Entry = entry
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

type assembler struct {
	opts    Options
	symbols map[string]uint64
	text    []isa.Word
	data    []byte
	errs    []error
}

func (a *assembler) errf(ln line, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("line %d: %s", ln.num, fmt.Sprintf(format, args...)))
}

// instSize returns the number of words a (possibly pseudo) instruction
// occupies; needed before labels are resolved.
func (a *assembler) instSize(ln line) int {
	switch ln.mnem {
	case "li":
		if len(ln.args) != 2 {
			a.errf(ln, "li wants 2 operands")
			return 1
		}
		v, err := parseInt(ln.args[1])
		if err != nil {
			a.errf(ln, "li: %v", err)
			return 1
		}
		return LiLen(v)
	case "la":
		return LaLen
	default:
		return 1
	}
}

func (a *assembler) pass1(lines []line) {
	textW, dataB := 0, 0
	inText := true
	define := func(ln line, name string, addr uint64) {
		if _, dup := a.symbols[name]; dup {
			a.errf(ln, "duplicate label %q", name)
			return
		}
		a.symbols[name] = addr
	}
	for _, ln := range lines {
		if ln.label != "" {
			if inText {
				define(ln, ln.label, a.opts.TextBase+uint64(textW)*4)
			} else {
				define(ln, ln.label, a.opts.DataBase+uint64(dataB))
			}
		}
		if ln.mnem == "" {
			continue
		}
		if ln.isDir {
			switch ln.mnem {
			case ".text":
				inText = true
			case ".data":
				inText = false
			case ".align":
				n, err := a.dirAlign(ln)
				if err != nil {
					a.errf(ln, "%v", err)
					continue
				}
				if inText {
					a.errf(ln, ".align only supported in .data")
					continue
				}
				for dataB%n != 0 {
					dataB++
				}
				// Re-point a label on the same line at the aligned address.
				if ln.label != "" {
					a.symbols[ln.label] = a.opts.DataBase + uint64(dataB)
				}
			case ".quad", ".double":
				dataB += 8 * len(ln.args)
			case ".long":
				dataB += 4 * len(ln.args)
			case ".byte":
				dataB += len(ln.args)
			case ".ascii", ".asciz":
				s, err := parseString(strings.Join(ln.args, ","))
				if err != nil {
					a.errf(ln, "%v", err)
					continue
				}
				dataB += len(s)
				if ln.mnem == ".asciz" {
					dataB++
				}
			case ".space":
				n, err := parseInt(strings.Join(ln.args, ""))
				if err != nil || n < 0 {
					a.errf(ln, "bad .space size")
					continue
				}
				dataB += int(n)
			default:
				a.errf(ln, "unknown directive %s", ln.mnem)
			}
			continue
		}
		if !inText {
			a.errf(ln, "instruction in .data section")
			continue
		}
		textW += a.instSize(ln)
	}
}

func (a *assembler) dirAlign(ln line) (int, error) {
	n, err := parseInt(strings.Join(ln.args, ""))
	if err != nil || n <= 0 || (n&(n-1)) != 0 {
		return 0, fmt.Errorf("bad .align operand")
	}
	return int(n), nil
}

// resolve evaluates an operand that may be an integer literal, a symbol, or
// symbol±offset.
func (a *assembler) resolve(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := parseInt(s); err == nil {
		return v, nil
	}
	base, off := s, int64(0)
	for _, sep := range []string{"+", "-"} {
		if i := strings.LastIndex(s, sep); i > 0 {
			o, err := parseInt(s[i:])
			if err == nil {
				base, off = strings.TrimSpace(s[:i]), o
				break
			}
		}
	}
	if addr, ok := a.symbols[base]; ok {
		return int64(addr) + off, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", base)
}

func (a *assembler) pass2(lines []line) {
	inText := true
	for _, ln := range lines {
		if ln.mnem == "" {
			continue
		}
		if ln.isDir {
			switch ln.mnem {
			case ".text":
				inText = true
			case ".data":
				inText = false
			case ".align":
				n, _ := a.dirAlign(ln)
				for len(a.data)%n != 0 {
					a.data = append(a.data, 0)
				}
			case ".quad":
				for _, arg := range ln.args {
					v, err := a.resolve(arg)
					if err != nil {
						a.errf(ln, "%v", err)
					}
					a.emitData(uint64(v), 8)
				}
			case ".double":
				for _, arg := range ln.args {
					var f float64
					if _, err := fmt.Sscanf(strings.TrimSpace(arg), "%g", &f); err != nil {
						a.errf(ln, "bad float %q", arg)
					}
					a.emitData(math.Float64bits(f), 8)
				}
			case ".long":
				for _, arg := range ln.args {
					v, err := a.resolve(arg)
					if err != nil {
						a.errf(ln, "%v", err)
					}
					a.emitData(uint64(v), 4)
				}
			case ".byte":
				for _, arg := range ln.args {
					v, err := a.resolve(arg)
					if err != nil {
						a.errf(ln, "%v", err)
					}
					a.emitData(uint64(v), 1)
				}
			case ".ascii", ".asciz":
				s, _ := parseString(strings.Join(ln.args, ","))
				a.data = append(a.data, s...)
				if ln.mnem == ".asciz" {
					a.data = append(a.data, 0)
				}
			case ".space":
				n, _ := parseInt(strings.Join(ln.args, ""))
				a.data = append(a.data, make([]byte, n)...)
			}
			continue
		}
		if !inText {
			continue // reported in pass 1
		}
		a.encodeInst(ln)
	}
}

func (a *assembler) emitData(v uint64, size int) {
	for i := 0; i < size; i++ {
		a.data = append(a.data, byte(v>>(8*i)))
	}
}

func (a *assembler) pc() uint64 { return a.opts.TextBase + uint64(len(a.text))*4 }

func (a *assembler) emit(w isa.Word, err error, ln line) {
	if err != nil {
		a.errf(ln, "%v", err)
	}
	a.text = append(a.text, w)
}

// encodeInst encodes one instruction (or pseudo) at the current pc.
func (a *assembler) encodeInst(ln line) {
	mnem, args := ln.mnem, ln.args

	// Pseudo-instructions first.
	wants := func(n int) bool {
		if len(args) != n {
			a.errf(ln, "%s wants %d operands, got %d", mnem, n, len(args))
			a.text = append(a.text, 0)
			return false
		}
		return true
	}
	switch mnem {
	case "li":
		if !wants(2) {
			return
		}
		d, err1 := parseReg(args[0])
		v, err2 := parseInt(args[1])
		if err1 != nil || err2 != nil {
			a.errf(ln, "li: bad operands")
			a.text = append(a.text, 0)
			return
		}
		a.text = append(a.text, liWords(d, v)...)
		return
	case "la":
		if len(args) != 2 {
			a.errf(ln, "la wants 2 operands")
			return
		}
		d, err1 := parseReg(args[0])
		addr, err2 := a.resolve(args[1])
		if err1 != nil || err2 != nil || addr < 0 {
			a.errf(ln, "la: bad operands (%v %v)", err1, err2)
			a.text = append(a.text, 0, 0, 0)
			return
		}
		words, ok := laWords(d, uint64(addr))
		if !ok {
			a.errf(ln, "la: address %#x exceeds %#x", addr, LaMaxAddr)
			a.text = append(a.text, 0, 0, 0)
			return
		}
		a.text = append(a.text, words...)
		return
	case "mov":
		if !wants(2) {
			return
		}
		d, err1 := parseReg(args[0])
		s, err2 := parseReg(args[1])
		if err1 != nil || err2 != nil {
			a.errf(ln, "mov: bad operands")
			a.text = append(a.text, 0)
			return
		}
		if d.IsFP() != s.IsFP() {
			a.errf(ln, "mov: cannot move between register files (use cvtif/cvtfi)")
		}
		if d.IsFP() {
			a.emit(isa.EncodeR(isa.OpFMov, uint8(s.FileIndex()), 0, uint8(d.FileIndex())), nil, ln)
		} else {
			a.emit(isa.EncodeR(isa.OpOr, uint8(s), uint8(isa.ZeroInt), uint8(d)), nil, ln)
		}
		return
	case "nop":
		w, err := isa.EncodeI(isa.OpAddI, uint8(isa.ZeroInt), uint8(isa.ZeroInt), 0)
		a.emit(w, err, ln)
		return
	case "neg":
		if !wants(2) {
			return
		}
		d, err1 := parseReg(args[0])
		s, err2 := parseReg(args[1])
		if err1 != nil || err2 != nil {
			a.errf(ln, "neg: bad operands")
			return
		}
		a.emit(isa.EncodeR(isa.OpSub, uint8(isa.ZeroInt), uint8(s), uint8(d)), nil, ln)
		return
	case "subi":
		if !wants(3) {
			return
		}
		mnem = "addi"
		v, err := parseInt(args[2])
		if err != nil {
			a.errf(ln, "subi: %v", err)
			return
		}
		args = []string{args[0], args[1], fmt.Sprint(-v)}
	case "call":
		mnem = "jsr"
	case "b":
		mnem = "jmp"
	case "ret":
		if len(args) == 0 {
			args = []string{"ra"}
		}
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		a.errf(ln, "unknown instruction %q", mnem)
		a.text = append(a.text, 0)
		return
	}

	need := func(n int) bool {
		if len(args) != n {
			a.errf(ln, "%s wants %d operands, got %d", mnem, n, len(args))
			a.text = append(a.text, 0)
			return false
		}
		return true
	}

	switch op.Fmt() {
	case isa.FmtR:
		// Unary R ops: fsqrt/fmov/cvt take 2 operands.
		inst := isa.Inst{Op: op}
		unary := op == isa.OpFSqrt || op == isa.OpFMov || op == isa.OpCvtIF || op == isa.OpCvtFI
		if unary {
			if !need(2) {
				return
			}
			d, e1 := parseReg(args[0])
			s, e2 := parseReg(args[1])
			if e1 != nil || e2 != nil {
				a.errf(ln, "bad operands")
				a.text = append(a.text, 0)
				return
			}
			inst.A, inst.C = uint8(s.FileIndex()), uint8(d.FileIndex())
		} else {
			if !need(3) {
				return
			}
			d, e1 := parseReg(args[0])
			s1, e2 := parseReg(args[1])
			s2, e3 := parseReg(args[2])
			if e1 != nil || e2 != nil || e3 != nil {
				a.errf(ln, "bad operands")
				a.text = append(a.text, 0)
				return
			}
			inst.A, inst.B, inst.C = uint8(s1.FileIndex()), uint8(s2.FileIndex()), uint8(d.FileIndex())
		}
		w, err := inst.Encode()
		a.emit(w, err, ln)

	case isa.FmtI:
		switch op.OpClass() {
		case isa.ClassLoad:
			if !need(2) {
				return
			}
			d, e1 := parseReg(args[0])
			disp, base, e2 := parseMem(args[1], a.resolve)
			if e1 != nil || e2 != nil {
				a.errf(ln, "bad load operands")
				a.text = append(a.text, 0)
				return
			}
			w, err := isa.EncodeI(op, uint8(base), uint8(d.FileIndex()), int32(disp))
			a.emit(w, err, ln)
		case isa.ClassStore:
			if !need(2) {
				return
			}
			v, e1 := parseReg(args[0])
			disp, base, e2 := parseMem(args[1], a.resolve)
			if e1 != nil || e2 != nil {
				a.errf(ln, "bad store operands")
				a.text = append(a.text, 0)
				return
			}
			w, err := isa.EncodeI(op, uint8(base), uint8(v.FileIndex()), int32(disp))
			a.emit(w, err, ln)
		default: // register-immediate ALU
			if !need(3) {
				return
			}
			d, e1 := parseReg(args[0])
			s, e2 := parseReg(args[1])
			imm, e3 := a.resolve(args[2])
			if e1 != nil || e2 != nil || e3 != nil {
				a.errf(ln, "bad operands")
				a.text = append(a.text, 0)
				return
			}
			w, err := isa.EncodeI(op, uint8(s), uint8(d), int32(imm))
			a.emit(w, err, ln)
		}

	case isa.FmtBr:
		if !need(2) {
			return
		}
		r, e1 := parseReg(args[0])
		target, e2 := a.resolve(args[1])
		if e1 != nil || e2 != nil {
			a.errf(ln, "bad branch operands")
			a.text = append(a.text, 0)
			return
		}
		disp := (target - int64(a.pc()) - 4) / 4
		w, err := isa.EncodeBr(op, uint8(r), int32(disp))
		a.emit(w, err, ln)

	case isa.FmtJ:
		if !need(1) {
			return
		}
		target, err := a.resolve(args[0])
		if err != nil {
			a.errf(ln, "%v", err)
			a.text = append(a.text, 0)
			return
		}
		disp := (target - int64(a.pc()) - 4) / 4
		w, err := isa.EncodeJ(op, int32(disp))
		a.emit(w, err, ln)

	case isa.FmtJR:
		if !need(1) {
			return
		}
		arg := strings.TrimSpace(args[0])
		arg = strings.TrimPrefix(arg, "(")
		arg = strings.TrimSuffix(arg, ")")
		r, err := parseReg(arg)
		if err != nil {
			a.errf(ln, "%v", err)
			a.text = append(a.text, 0)
			return
		}
		a.emit(isa.EncodeJR(op, uint8(r)), nil, ln)

	case isa.FmtSys:
		if !need(1) {
			return
		}
		code, err := a.resolve(args[0])
		if err != nil || code < 0 || code > 0xFFFF {
			a.errf(ln, "bad syscall code")
			a.text = append(a.text, 0)
			return
		}
		a.emit(isa.EncodeSys(uint16(code)), nil, ln)
	}
}
