package asm

import (
	"testing"
	"unicode/utf8"
)

// FuzzAssemble feeds arbitrary source text through the full assembler.
// The contract under test: Assemble never panics and never returns a nil
// program without an error, for any input. (The seed corpus under
// testdata/fuzz/FuzzAssemble holds both valid programs covering every
// directive and pseudo-instruction, and malformed near-misses.)
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"main:\n        li a0, 0\n        syscall 0\n",
		// Every directive and a label-heavy layout.
		"        .text\nmain:   la t0, tbl\n        ldq a0, 8(t0)\n        syscall 2\n" +
			"        li a0, 0\n        syscall 0\n" +
			"        .data\n        .align 8\ntbl:    .quad 1, 2, main\n" +
			"msg:    .asciz \"hi\\n\"\nb:      .byte 1, 2\nl:      .long 7\nd:      .double 1.5\nsp_:    .space 32\n",
		// Pseudo-instructions.
		"main:   li t0, 0x123456789abcdef\n        mov t1, t0\n        neg t2, t1\n" +
			"        subi t3, t2, 4\n        nop\n        call f\n        b out\nout:    li a0, 0\n        syscall 0\nf:      ret\n",
		// Windowed registers, call/return, branches.
		"f:      mov s15, ra\n        addi s0, a0, 1\n        add v0, s0, s0\n        ret (s15)\n" +
			"main:   li a0, 3\n        jsr f\n        mov a0, v0\n        syscall 2\n        li a0, 0\n        syscall 0\n",
		// Near-misses: unknown mnemonic, bad operand, duplicate label,
		// dangling reference, overflowing displacement.
		"main:   frobnicate t0, t1\n",
		"main:   addi t0, t9, 1\n",
		"x:\nx:      nop\n",
		"main:   jsr nowhere\n",
		"main:   ldq t0, 99999999999(sp)\n",
		"\x00\xff .data .quad",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			t.Skip()
		}
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("Assemble returned nil program without an error")
		}
	})
}
