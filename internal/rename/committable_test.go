package rename

import (
	"math/rand"
	"testing"
)

// TestCommitTableMatchesMap drives the open-addressed commit table
// through a long random interleaving of put/del/get and cross-checks
// every observation against a Go map, validating the probe-chain
// invariant (backward-shift deletion leaves no unreachable entries)
// after each step.
func TestCommitTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ct := newCommitTable(64)
	ref := map[uint64]int{}
	addrs := make([]uint64, 40)
	for i := range addrs {
		addrs[i] = 0x4000_0000_0000 + uint64(rng.Intn(1<<16))*8
	}
	for step := 0; step < 200000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(3) {
		case 0:
			if len(ref) < 60 {
				p := rng.Intn(64)
				ct.put(a, p)
				ref[a] = p
			}
		case 1:
			ct.del(a)
			delete(ref, a)
		case 2:
			p, ok := ct.get(a)
			rp, rok := ref[a]
			if ok != rok || (ok && p != rp) {
				t.Fatalf("step %d get(%#x) = %d,%v want %d,%v", step, a, p, ok, rp, rok)
			}
		}
		if err := ct.check(); err != nil {
			t.Fatalf("step %d: %v (ref len %d, ct.n %d)", step, err, len(ref), ct.n)
		}
		if ct.n != len(ref) {
			t.Fatalf("step %d: n=%d want %d", step, ct.n, len(ref))
		}
	}
}

// TestCommitTableZeroAddress exercises the dedicated side slot for
// address zero, which would otherwise collide with the empty marker.
func TestCommitTableZeroAddress(t *testing.T) {
	ct := newCommitTable(8)
	if _, ok := ct.get(0); ok {
		t.Fatal("empty table reports address 0 present")
	}
	ct.put(0, 5)
	if p, ok := ct.get(0); !ok || p != 5 {
		t.Fatalf("get(0) = %d,%v want 5,true", p, ok)
	}
	ct.put(0, 7)
	if p, _ := ct.get(0); p != 7 {
		t.Fatalf("get(0) = %d after overwrite, want 7", p)
	}
	seen := false
	if err := ct.each(func(addr uint64, phys int) error {
		if addr == 0 && phys == 7 {
			seen = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("each did not visit the zero-address entry")
	}
	ct.del(0)
	if _, ok := ct.get(0); ok {
		t.Fatal("address 0 still present after delete")
	}
}

// TestCommitTableDeleteChain deletes from the middle of occupied runs so
// the backward shift must relocate entries, then verifies every
// remaining key is still reachable.
func TestCommitTableDeleteChain(t *testing.T) {
	ct := newCommitTable(16) // 64 slots
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = 0x4000_0000_0000 + uint64(i)*8
		ct.put(keys[i], i)
	}
	for i := 0; i < len(keys); i += 2 {
		ct.del(keys[i])
	}
	if err := ct.check(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		p, ok := ct.get(k)
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted key %#x still present", k)
			}
		} else if !ok || p != i {
			t.Fatalf("get(%#x) = %d,%v want %d,true", k, p, ok, i)
		}
	}
}
