package rename

import (
	"strings"
	"testing"
)

// TestVCAInjectLeakCaught proves the conservation check has teeth at
// the substrate level: dropping a register from the free list flips
// CheckInvariants from passing to a "leaked" violation.
func TestVCAInjectLeakCaught(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	if _, _, ok := v.RenameDest(0x2000, &ops); !ok {
		t.Fatal("rename failed")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatalf("healthy renamer fails audit: %v", err)
	}
	if !v.InjectLeak() {
		t.Fatal("no free register to leak")
	}
	err := v.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("got %v, want a leak violation", err)
	}
}

// TestVCAAuditPins checks the reference-count audit against a known
// pin pattern: a renamed source holds one pin, an in-flight destination
// holds one pin plus one pending overwrite of its previous version, and
// wrong expectations are rejected.
func TestVCAAuditPins(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	src, _, ok := v.RenameSource(0x1000, &ops)
	if !ok {
		t.Fatal("source rename failed")
	}
	d1, _, ok := v.RenameDest(0x2000, &ops)
	if !ok {
		t.Fatal("dest rename failed")
	}
	d2, prev, ok := v.RenameDest(0x2000, &ops) // in-flight overwrite of d1
	if !ok || prev != d1 {
		t.Fatalf("overwrite rename: d2=%d prev=%d ok=%v", d2, prev, ok)
	}

	ref := make([]int, 8)
	ow := make([]int, 8)
	ref[src], ref[d1], ref[d2] = 1, 1, 1
	ow[d1] = 1
	if err := v.AuditPins(ref, ow); err != nil {
		t.Fatalf("correct expectation rejected: %v", err)
	}

	ref[src] = 2 // claim a pin that does not exist
	if err := v.AuditPins(ref, ow); err == nil {
		t.Fatal("over-counted pin not detected")
	}
	ref[src] = 1
	ow[d1] = 0 // deny the pending overwrite
	if err := v.AuditPins(ref, ow); err == nil {
		t.Fatal("missing overwrite expectation not detected")
	}
	ow[d1] = 1
	if err := v.AuditPins(ref[:4], ow[:4]); err == nil {
		t.Fatal("wrong audit length not detected")
	}
}

// TestVCAMappedAddr checks the table-consistency probe the core checker
// uses for in-flight previous versions.
func TestVCAMappedAddr(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	p, _, ok := v.RenameDest(0x3000, &ops)
	if !ok {
		t.Fatal("rename failed")
	}
	if addr, mapped := v.MappedAddr(p); !mapped || addr != 0x3000 {
		t.Fatalf("MappedAddr(%d) = %#x, %v", p, addr, mapped)
	}
	// A register still on the free list is unmapped.
	for q := 0; q < 8; q++ {
		if q == p {
			continue
		}
		if _, mapped := v.MappedAddr(q); mapped {
			continue // other registers may be mapped by setup; only p is guaranteed
		}
		return // found at least one unmapped free register
	}
	t.Fatal("expected at least one unmapped register")
}
