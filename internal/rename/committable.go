package rename

import (
	"fmt"
	"math/bits"
)

// commitTable maps a logical-register backing address to the physical
// register holding its committed version. It replaces a Go map on the
// renamer's hottest path: every committing destination performs a lookup
// and an insert, and every eviction a delete. The table can never hold
// more than one entry per physical register (each committed address names
// a distinct register), so a fixed open-addressed array at <=25% load
// needs no growth and stays cache-resident.
//
// A zero key marks an empty slot; address zero itself (unused by the core,
// whose register spaces start at program.RegSpaceBase, but legal through
// the API) lives in a dedicated side slot. Deletion uses backward
// shifting, keeping probe chains tombstone-free regardless of churn.
type commitTable struct {
	keys  []uint64
	vals  []int32
	mask  uint64
	shift uint
	n     int

	zeroVal int32
	zeroSet bool
}

func newCommitTable(physRegs int) commitTable {
	cap := 64
	for cap < 4*physRegs {
		cap *= 2
	}
	return commitTable{
		keys:  make([]uint64, cap),
		vals:  make([]int32, cap),
		mask:  uint64(cap - 1),
		shift: uint(64 - bits.TrailingZeros(uint(cap))),
	}
}

// slot is the home position: Fibonacci hashing on the 8-byte-aligned
// address (low three bits are always zero and carry no entropy).
func (t *commitTable) slot(addr uint64) uint64 {
	return ((addr >> 3) * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *commitTable) get(addr uint64) (int, bool) {
	if addr == 0 {
		return int(t.zeroVal), t.zeroSet
	}
	i := t.slot(addr)
	for {
		k := t.keys[i]
		if k == addr {
			return int(t.vals[i]), true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *commitTable) put(addr uint64, phys int) {
	if addr == 0 {
		t.zeroVal, t.zeroSet = int32(phys), true
		return
	}
	i := t.slot(addr)
	for {
		k := t.keys[i]
		if k == addr {
			t.vals[i] = int32(phys)
			return
		}
		if k == 0 {
			if t.n == len(t.keys)-1 {
				panic("rename: commit table over capacity")
			}
			t.keys[i] = addr
			t.vals[i] = int32(phys)
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *commitTable) del(addr uint64) {
	if addr == 0 {
		t.zeroSet = false
		return
	}
	i := t.slot(addr)
	for t.keys[i] != addr {
		if t.keys[i] == 0 {
			return
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift deletion: pull every displaced entry of the probe
	// chain back over the hole so lookups never need tombstones. An entry
	// at j may fill slot i iff i lies on its probe path, i.e. the cyclic
	// distance home->i is shorter than home->j.
	j := i
	for {
		j = (j + 1) & t.mask
		k := t.keys[j]
		if k == 0 {
			break
		}
		if h := t.slot(k); ((i - h) & t.mask) < ((j - h) & t.mask) {
			t.keys[i], t.vals[i] = k, t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.n--
}

// each visits every live entry, stopping at the first error.
func (t *commitTable) each(f func(addr uint64, phys int) error) error {
	if t.zeroSet {
		if err := f(0, int(t.zeroVal)); err != nil {
			return err
		}
	}
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		if err := f(k, int(t.vals[i])); err != nil {
			return err
		}
	}
	return nil
}

// check validates the probe-chain invariant: every entry must be
// reachable from its home slot without crossing an empty slot.
func (t *commitTable) check() error {
	live := 0
	for j, k := range t.keys {
		if k == 0 {
			continue
		}
		live++
		for i := t.slot(k); ; i = (i + 1) & t.mask {
			if i == uint64(j) {
				break
			}
			if t.keys[i] == 0 {
				return fmt.Errorf("rename: commit table entry %#x unreachable from its home slot", k)
			}
		}
	}
	if live != t.n {
		return fmt.Errorf("rename: commit table count %d but %d live entries", t.n, live)
	}
	return nil
}
