package rename

import (
	"math/rand"
	"testing"
)

func TestConventionalBasics(t *testing.T) {
	c, err := NewConventional(1, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeCount() != 64 {
		t.Fatalf("free = %d, want 64", c.FreeCount())
	}
	p0 := c.Lookup(0, 5)
	newP, prev, ok := c.AllocateDest(0, 5)
	if !ok || prev != p0 || newP == p0 {
		t.Fatalf("alloc: new=%d prev=%d ok=%v", newP, prev, ok)
	}
	if c.Lookup(0, 5) != newP {
		t.Error("speculative map not updated")
	}
	c.CommitDest(0, 5, newP)
	if c.FreeCount() != 64 {
		t.Errorf("free after commit = %d, want 64 (old freed)", c.FreeCount())
	}
	if err := c.CheckInvariants(nil); err != nil {
		t.Error(err)
	}
}

func TestConventionalRollback(t *testing.T) {
	c, _ := NewConventional(1, 64, 96)
	type rec struct{ log, newP, prev int }
	var recs []rec
	for i := 0; i < 20; i++ {
		log := i % 7
		newP, prev, ok := c.AllocateDest(0, log)
		if !ok {
			t.Fatal("unexpected stall")
		}
		recs = append(recs, rec{log, newP, prev})
	}
	// Squash everything, youngest first.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		c.RollbackDest(0, r.log, r.newP, r.prev)
	}
	if c.FreeCount() != 32 {
		t.Errorf("free = %d after full rollback, want 32", c.FreeCount())
	}
	for l := 0; l < 7; l++ {
		if c.Lookup(0, l) != l {
			t.Errorf("logical %d maps to %d after rollback, want %d", l, c.Lookup(0, l), l)
		}
	}
	if err := c.CheckInvariants(nil); err != nil {
		t.Error(err)
	}
}

func TestConventionalMinimumSize(t *testing.T) {
	if _, err := NewConventional(1, 64, 64); err == nil {
		t.Error("64 physical registers must be rejected for 64 logical (no rename registers)")
	}
	if _, err := NewConventional(4, 64, 256); err == nil {
		t.Error("4 threads x 64 logical needs > 256 physical registers")
	}
	if _, err := NewConventional(4, 64, 320); err != nil {
		t.Errorf("320 physical registers should work for 4 threads: %v", err)
	}
}

func TestConventionalStallsWhenFreeListEmpty(t *testing.T) {
	c, _ := NewConventional(1, 64, 66)
	if _, _, ok := c.AllocateDest(0, 0); !ok {
		t.Fatal("first alloc should succeed")
	}
	if _, _, ok := c.AllocateDest(0, 1); !ok {
		t.Fatal("second alloc should succeed")
	}
	if _, _, ok := c.AllocateDest(0, 2); ok {
		t.Fatal("third alloc must stall (free list empty)")
	}
}

// --- VCA ---

func newVCA(phys int) *VCA {
	cfg := DefaultVCAConfig(1, phys)
	v := NewVCA(cfg)
	v.ReadValue = func(p int) uint64 { return uint64(p) * 1000 }
	return v
}

func TestVCASourceMissFill(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	p, filled, ok := v.RenameSource(0x1000, &ops)
	if !ok || !filled || p == PhysNone {
		t.Fatalf("source miss: p=%d filled=%v ok=%v", p, filled, ok)
	}
	if len(ops) != 1 || ops[0].IsSpill || ops[0].Addr != 0x1000 {
		t.Fatalf("expected one fill op, got %+v", ops)
	}
	// Second read of the same register hits and does not fill.
	ops = nil
	p2, filled, ok := v.RenameSource(0x1000, &ops)
	if !ok || filled || p2 != p || len(ops) != 0 {
		t.Fatalf("source hit: p=%d filled=%v ops=%v", p2, filled, ops)
	}
	if v.Stats.SrcHits != 1 || v.Stats.Fills != 1 {
		t.Errorf("stats %+v", v.Stats)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCADestCommitOverwrite(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	// First write to 0x2000.
	p1, prev1, ok := v.RenameDest(0x2000, &ops)
	if !ok || prev1 != PhysNone {
		t.Fatalf("dest rename: %d %d %v", p1, prev1, ok)
	}
	v.CommitDest(0x2000, p1, prev1)
	// Second write overwrites: on commit, p1 must be freed without a spill.
	p2, prev2, ok := v.RenameDest(0x2000, &ops)
	if !ok || prev2 != p1 {
		t.Fatalf("second dest: %d prev=%d", p2, prev2)
	}
	free := v.FreeCount()
	v.CommitDest(0x2000, p2, prev2)
	if v.FreeCount() != free+1 {
		t.Errorf("overwrite did not free the old register")
	}
	if v.Stats.Spills != 0 {
		t.Errorf("overwrite must not spill, got %d spills", v.Stats.Spills)
	}
	if v.Stats.Overwrites != 1 {
		t.Errorf("overwrites = %d", v.Stats.Overwrites)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCASquashRestoresMapping(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	p1, prev1, _ := v.RenameDest(0x3000, &ops)
	v.CommitDest(0x3000, p1, prev1)
	p2, prev2, _ := v.RenameDest(0x3000, &ops)
	if prev2 != p1 {
		t.Fatal("prev should be committed version")
	}
	v.RollbackDest(0x3000, p2, prev2)
	// A subsequent source read must hit p1 again, no fill.
	ops = nil
	p, filled, ok := v.RenameSource(0x3000, &ops)
	if !ok || filled || p != p1 {
		t.Errorf("after rollback: p=%d filled=%v", p, filled)
	}
	v.ReleaseSource(p)
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCAEvictionSpillsDirty(t *testing.T) {
	v := newVCA(4) // tiny file forces eviction
	var ops []MemOp
	// Write and commit 4 registers: all dirty and unpinned.
	for i := 0; i < 4; i++ {
		addr := uint64(0x4000 + 8*i)
		p, prev, ok := v.RenameDest(addr, &ops)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		v.CommitDest(addr, p, prev)
	}
	if len(ops) != 0 {
		t.Fatalf("no spills expected yet, got %v", ops)
	}
	// A fifth mapping must evict the LRU (0x4000) and spill it.
	p, filled, ok := v.RenameSource(0x5000, &ops)
	if !ok || !filled {
		t.Fatalf("fifth rename failed: %v %v", p, ok)
	}
	var spills, fills int
	for _, op := range ops {
		if op.IsSpill {
			spills++
			if op.Addr != 0x4000 {
				t.Errorf("spilled %#x, want LRU 0x4000", op.Addr)
			}
		} else {
			fills++
		}
	}
	if spills != 1 || fills != 1 {
		t.Errorf("spills=%d fills=%d", spills, fills)
	}
	// The spilled register refills on demand.
	v.ReleaseSource(p)
	ops = nil
	p2, filled, ok := v.RenameSource(0x4000, &ops)
	if !ok || !filled {
		t.Errorf("refill of spilled register failed")
	}
	v.ReleaseSource(p2)
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCAPinnedNeverEvicted(t *testing.T) {
	v := newVCA(2)
	var ops []MemOp
	// Pin both registers as sources.
	pa, _, _ := v.RenameSource(0x100, &ops)
	pb, _, _ := v.RenameSource(0x108, &ops)
	// Third rename has nothing to evict: must stall.
	if _, _, ok := v.RenameSource(0x110, &ops); ok {
		t.Fatal("rename should stall with all registers pinned")
	}
	if v.Stats.RenameStalls == 0 {
		t.Error("stall not counted")
	}
	// Unpin one; now it succeeds.
	v.ReleaseSource(pa)
	if _, _, ok := v.RenameSource(0x110, &ops); !ok {
		t.Fatal("rename should proceed after unpin")
	}
	v.ReleaseSource(pb)
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCAOverwriteHintDemotesVictim(t *testing.T) {
	cfg := DefaultVCAConfig(1, 2)
	cfg.OverwriteHint = true
	v := NewVCA(cfg)
	v.ReadValue = func(int) uint64 { return 7 }
	var ops []MemOp
	// Two committed dirty registers; 0x100 is older (LRU favorite).
	pa, prevA, _ := v.RenameDest(0x100, &ops)
	v.CommitDest(0x100, pa, prevA)
	pb, prevB, _ := v.RenameDest(0x108, &ops)
	v.CommitDest(0x108, pb, prevB)
	// An in-flight overwriter of 0x100 marks it overwrite-pending...
	// (needs a register: use 0x108's slot? no free regs, so this rename
	// will evict — precisely the decision under test.)
	ops = nil
	_, _, ok := v.RenameDest(0x100, &ops)
	if !ok {
		t.Fatal("rename dest should evict and proceed")
	}
	// With the hint, the victim must be 0x108 (0x100 is the LRU choice but
	// it is the one being overwritten... it is not yet marked pending at
	// victim-selection time, so the hint applies to *other* overwriters).
	// The observable effect tested here: exactly one spill happened.
	spills := 0
	for _, op := range ops {
		if op.IsSpill {
			spills++
		}
	}
	if spills != 1 {
		t.Errorf("expected one spill, got %d", spills)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCATableConflictEviction(t *testing.T) {
	cfg := DefaultVCAConfig(1, 64) // 64 sets x 3 ways, plenty of phys regs
	v := NewVCA(cfg)
	v.ReadValue = func(int) uint64 { return 0 }
	var ops []MemOp
	// Four addresses in the same set (stride = sets*8 = 512 bytes).
	addrs := []uint64{0x1000, 0x1000 + 512, 0x1000 + 1024, 0x1000 + 1536}
	for _, a := range addrs[:3] {
		p, prev, ok := v.RenameDest(a, &ops)
		if !ok {
			t.Fatal("rename failed")
		}
		v.CommitDest(a, p, prev)
	}
	before := v.Stats.TableConflictEvicts
	p, _, ok := v.RenameSource(addrs[3], &ops)
	if !ok {
		t.Fatal("conflicting rename should evict, not stall")
	}
	if v.Stats.TableConflictEvicts != before+1 {
		t.Error("table conflict eviction not counted")
	}
	v.ReleaseSource(p)
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCAStillMapped(t *testing.T) {
	v := newVCA(8)
	var ops []MemOp
	p, _, _ := v.RenameSource(0x9000, &ops)
	if !v.StillMapped(0x9000, p) {
		t.Error("should be mapped")
	}
	v.ReleaseSource(p)
	// Force eviction by filling the file.
	for i := 0; i < 8; i++ {
		q, _, ok := v.RenameSource(uint64(0xA000+16*i), &ops)
		if ok {
			v.ReleaseSource(q)
		}
	}
	if v.StillMapped(0x9000, p) && v.FreeCount() == 0 {
		// 0x9000 may or may not have been the LRU victim; only assert
		// consistency, not a specific outcome.
		t.Log("0x9000 survived eviction pressure")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVCARSIDFlush(t *testing.T) {
	cfg := DefaultVCAConfig(1, 32)
	cfg.RSIDs = 2
	cfg.OffsetBits = 8 // tiny 256-byte spaces force RSID churn
	v := NewVCA(cfg)
	v.ReadValue = func(int) uint64 { return 0 }
	var ops []MemOp
	for i := 0; i < 4; i++ {
		addr := uint64(i) << 8 // each in its own space
		p, prev, ok := v.RenameDest(addr, &ops)
		if !ok {
			t.Fatal("rename failed")
		}
		v.CommitDest(addr, p, prev)
	}
	if v.Stats.RSIDMisses < 4 {
		t.Errorf("RSID misses = %d, want >= 4", v.Stats.RSIDMisses)
	}
	if v.Stats.RSIDFlushRegs == 0 {
		t.Error("RSID reuse should flush registers")
	}
	// Flush spills are retrievable.
	if got := v.DrainRSIDOps(); len(got) == 0 {
		t.Error("expected drained RSID spill ops")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Property test: a random interleaving of rename/commit/squash/release
// operations never violates the state-machine invariants, never leaks
// registers, and replays of committed state stay reachable.
func TestVCARandomizedStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		phys := 4 + rng.Intn(28)
		cfg := DefaultVCAConfig(1, phys)
		cfg.Ways = 2 + rng.Intn(3)
		cfg.Sets = 8
		v := NewVCA(cfg)
		v.ReadValue = func(int) uint64 { return 0 }

		type inflight struct {
			addr     uint64
			srcPhys  []int
			destPhys int
			destPrev int
			hasDest  bool
		}
		var pipe []inflight
		addrOf := func() uint64 { return uint64(0x1000 + 8*rng.Intn(40)) }

		for step := 0; step < 3000; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // rename a new instruction
				var ops []MemOp
				in := inflight{addr: addrOf(), destPrev: PhysNone, destPhys: PhysNone}
				okAll := true
				for s := 0; s < rng.Intn(3); s++ {
					p, _, ok := v.RenameSource(addrOf(), &ops)
					if !ok {
						okAll = false
						break
					}
					in.srcPhys = append(in.srcPhys, p)
				}
				if okAll && rng.Intn(4) > 0 {
					p, prev, ok := v.RenameDest(in.addr, &ops)
					if ok {
						in.destPhys, in.destPrev, in.hasDest = p, prev, true
					} else {
						okAll = false
					}
				}
				if !okAll {
					// Stall: undo this instruction's source pins.
					for _, p := range in.srcPhys {
						v.ReleaseSource(p)
						v.ReleaseRetired(p)
					}
					break
				}
				pipe = append(pipe, in)

			case 4, 5, 6: // commit oldest
				if len(pipe) == 0 {
					break
				}
				in := pipe[0]
				pipe = pipe[1:]
				for _, p := range in.srcPhys {
					v.ReleaseSource(p)
					v.ReleaseRetired(p)
				}
				if in.hasDest {
					v.CommitDest(in.addr, in.destPhys, in.destPrev)
				}

			case 7, 8: // squash a suffix, youngest first
				if len(pipe) == 0 {
					break
				}
				from := rng.Intn(len(pipe))
				for i := len(pipe) - 1; i >= from; i-- {
					in := pipe[i]
					for _, p := range in.srcPhys {
						v.ReleaseSource(p)
						v.ReleaseRetired(p)
					}
					if in.hasDest {
						v.RollbackDest(in.addr, in.destPhys, in.destPrev)
					}
				}
				pipe = pipe[:from]

			case 9: // invariant check
				if err := v.CheckInvariants(); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			}
		}
		// Drain: commit everything, then all registers must be
		// unpinnable and the machine consistent.
		for _, in := range pipe {
			for _, p := range in.srcPhys {
				v.ReleaseSource(p)
				v.ReleaseRetired(p)
			}
			if in.hasDest {
				v.CommitDest(in.addr, in.destPhys, in.destPrev)
			}
		}
		if err := v.CheckInvariants(); err != nil {
			t.Fatalf("trial %d drain: %v", trial, err)
		}
		for p := range v.regs {
			if v.regs[p].ref != 0 {
				t.Fatalf("trial %d: register %d still pinned after drain", trial, p)
			}
		}
	}
}

func TestDefaultVCAConfigWays(t *testing.T) {
	if DefaultVCAConfig(1, 128).Ways != 3 {
		t.Error("1 thread should use 3 ways")
	}
	if DefaultVCAConfig(2, 128).Ways != 5 {
		t.Error("2 threads should use 5 ways")
	}
	if DefaultVCAConfig(4, 128).Ways != 6 {
		t.Error("4 threads should use 6 ways")
	}
}
