// Package rename implements the two register-rename substrates the paper
// compares.
//
// The conventional substrate (Conventional, this file) is a per-thread
// map table plus a shared free list: every architectural write allocates
// a fresh physical register, the previous mapping is reclaimed when the
// writer commits, and misprediction recovery restores mappings via the
// commit-side retirement table (§2.1.3's recovery discipline). Its one
// failure mode — the free list running dry — is what limits how many
// contexts (windows × threads) a register file of a given size can hold,
// and is exactly the wall Figures 4 and 7 show the baseline hitting.
//
// The VCA substrate (VCA, vca.go) is the paper's contribution (§2):
// the physical register file becomes a cache of a memory-mapped logical
// register space. Its pieces, each mapping to a paper section:
//
//   - Logical registers are identified by full memory addresses (context
//     base pointer + 8×index, §2.1); the rename table (RenameSource,
//     RenameDest) is therefore tagged and set-associative like a cache
//     (§2.1.1). A source miss allocates a register and generates a fill;
//     replacement pressure evicts an unpinned committed register,
//     generating a spill when dirty. Both travel as MemOp values to the
//     core's ASTQ (§2.2.2).
//   - Each physical register follows the Figure 2 state machine,
//     implemented as reference counts (pins by in-flight readers and the
//     overwriting instruction) plus committed/dirty bits. Pinned
//     registers are never replaced; committed+dirty registers are the
//     cacheable architectural state.
//   - Replacement is LRU with overwrite-pending demotion (§2.1.2): a
//     register whose overwriter is already renamed is dead the moment the
//     overwriter commits, so it is the cheapest victim.
//   - The RSID translation table (§2.2.1) compresses the full 64-bit
//     address tags: the table stores a small register-space ID per
//     context page, so tag compares are narrow. Reallocating a live RSID
//     entry flushes the registers still tagged with it.
//
// Physical register *values* live in the core; this package manages
// mappings, allocation, pinning, and spill/fill generation only. That
// split keeps the substrate deterministic and directly property-testable
// (rename_test.go checks the Fig. 2 invariants: no two live mappings to
// one register, pinned registers never replaced, free + live = total).
//
// Associativity 1 is rejected at construction: an instruction's first
// pinned source can occupy the only way its second source maps to,
// deadlocking rename — the paper's §2.1.1 argument for set associativity
// is a correctness requirement, not a tuning choice.
//
// Both substrates count their events into VCAStats fields registered
// with the machine's metrics registry under rename.vca.* (metrics.go);
// the catalogue is docs/OBSERVABILITY.md.
package rename

import "fmt"

// PhysNone marks "no physical register".
const PhysNone = -1

// Conventional is the baseline renamer: every logical register of every
// thread always has a physical mapping; destinations draw from a free
// list; the previous mapping is freed when the overwriting instruction
// commits. Misspeculation recovery is record-based rollback (equivalent in
// outcome to the commit-table walk of §2.1.3; the core charges the walk's
// timing).
type Conventional struct {
	threads   int
	logical   int // logical registers per thread
	phys      int
	spec      [][]int // [thread][logical] -> phys (speculative)
	arch      [][]int // committed mappings
	free      []int
	allocated int
}

// NewConventional builds the renamer and allocates initial mappings for
// every logical register of every thread. It returns an error when the
// physical register file cannot hold the architectural state (the "No
// Baseline" region of Figures 4-8).
func NewConventional(threads, logicalPerThread, physRegs int) (*Conventional, error) {
	need := threads * logicalPerThread
	if physRegs < need+1 {
		return nil, fmt.Errorf("rename: conventional machine needs > %d physical registers for %d threads × %d logical, have %d",
			need, threads, logicalPerThread, physRegs)
	}
	c := &Conventional{threads: threads, logical: logicalPerThread, phys: physRegs}
	next := 0
	for t := 0; t < threads; t++ {
		spec := make([]int, logicalPerThread)
		arch := make([]int, logicalPerThread)
		for l := range spec {
			spec[l] = next
			arch[l] = next
			next++
		}
		c.spec = append(c.spec, spec)
		c.arch = append(c.arch, arch)
	}
	for p := next; p < physRegs; p++ {
		c.free = append(c.free, p)
	}
	c.allocated = next
	return c, nil
}

// InitialMappings returns the committed mapping table for thread t so the
// core can install initial architectural values.
func (c *Conventional) InitialMappings(t int) []int {
	out := make([]int, c.logical)
	copy(out, c.arch[t])
	return out
}

// FreeCount returns the number of free physical registers (the effective
// rename-register pool).
func (c *Conventional) FreeCount() int { return len(c.free) }

// Lookup returns the current speculative mapping of a logical register.
func (c *Conventional) Lookup(t, logical int) int { return c.spec[t][logical] }

// AllocateDest renames a destination: a fresh physical register is taken
// from the free list and becomes the speculative mapping. It returns the
// new mapping, the previous speculative mapping (needed for rollback), and
// ok=false when the free list is empty (rename must stall).
func (c *Conventional) AllocateDest(t, logical int) (newPhys, prevSpec int, ok bool) {
	if len(c.free) == 0 {
		return PhysNone, PhysNone, false
	}
	newPhys = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	prevSpec = c.spec[t][logical]
	c.spec[t][logical] = newPhys
	return newPhys, prevSpec, true
}

// CommitDest makes a destination rename architectural: the previously
// committed physical register for this logical register is freed and the
// committed table is updated.
func (c *Conventional) CommitDest(t, logical, newPhys int) {
	old := c.arch[t][logical]
	c.arch[t][logical] = newPhys
	c.free = append(c.free, old)
}

// CommittedLookup returns the committed (architectural) mapping of a
// logical register — the physical register holding its last committed
// value, regardless of in-flight speculative renames. Used by
// architectural-state extraction (core.ExtractCheckpoint).
func (c *Conventional) CommittedLookup(t, logical int) int { return c.arch[t][logical] }

// RollbackDest undoes a squashed destination rename. Records must be
// rolled back youngest-first.
func (c *Conventional) RollbackDest(t, logical, newPhys, prevSpec int) {
	c.spec[t][logical] = prevSpec
	c.free = append(c.free, newPhys)
}

// CheckInvariants verifies allocator conservation (used by tests and the
// core's debug mode): every physical register is either free or reachable
// from a table / in-flight record.
func (c *Conventional) CheckInvariants(inFlight []int) error {
	seen := make([]int, c.phys)
	for _, p := range c.free {
		seen[p]++
	}
	for t := 0; t < c.threads; t++ {
		for l := 0; l < c.logical; l++ {
			seen[c.spec[t][l]]++
			if c.arch[t][l] != c.spec[t][l] {
				seen[c.arch[t][l]]++
			}
		}
	}
	for _, p := range inFlight {
		if p != PhysNone {
			seen[p]++
		}
	}
	for p, n := range seen {
		if n == 0 {
			return fmt.Errorf("rename: physical register %d leaked", p)
		}
	}
	return nil
}
