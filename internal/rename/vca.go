package rename

import "fmt"

// VCAConfig sizes the virtual context architecture structures (§2.2,
// §3: 64 entries per way; 3/5/6 ways for 1/2/4 threads; 8 rename ports;
// at most 2 ASTQ writes per cycle).
type VCAConfig struct {
	PhysRegs   int
	Sets       int // rename-table sets
	Ways       int // rename-table associativity
	Ports      int // rename-table lookups per cycle (same-address reads combine)
	ASTQWrites int // spill/fill operations enqueued per cycle
	// OverwriteHint gives registers with an in-flight overwriter the
	// lowest replacement priority (§2.1.2). Disable for the ablation.
	OverwriteHint bool
	// RSID translation table (§2.2.1).
	RSIDs       int  // translation-table entries
	OffsetBits  int  // low address bits kept as the register-space offset
	DisableRSID bool // model a full-tag table (ablation)
}

// DefaultVCAConfig returns the paper's configuration for a given thread
// count.
func DefaultVCAConfig(threads, physRegs int) VCAConfig {
	ways := 3
	switch {
	case threads >= 4:
		ways = 6
	case threads == 2:
		ways = 5
	}
	return VCAConfig{
		PhysRegs:      physRegs,
		Sets:          64,
		Ways:          ways,
		Ports:         8,
		ASTQWrites:    2,
		OverwriteHint: true,
		RSIDs:         64,
		OffsetBits:    13,
	}
}

// physState is the per-register state of Figure 2: the backing logical
// register memory address, a reference count (pinned when > 0), the
// committed and dirty bits, LRU time, and the count of in-flight
// instructions that will overwrite this logical register. Field widths
// are chosen to pack the struct into 32 bytes: the renamer's hot paths
// (lookup, eviction scans, commit) are bound by how many of these fit a
// cache line, and int32 counts are ample for any in-flight window.
type physState struct {
	addr      uint64
	lru       uint64
	ref       int32
	owPending int32
	mapped    bool
	committed bool
	dirty     bool
}

// tableEntry packs into 16 bytes (4 entries per cache line) for the same
// reason: every rename scans a full set of ways.
type tableEntry struct {
	addr  uint64
	phys  int32
	valid bool
}

// MemOp is a spill or fill handed to the core's ASTQ.
type MemOp struct {
	Phys    int
	Addr    uint64
	IsSpill bool
	// Value carries the spilled data, captured at rename time so the
	// physical register can be reused immediately (the ASTQ's FIFO order
	// preserves the paper's spill-before-fill dependence for timing).
	Value uint64
}

// VCAStats counts renamer events.
type VCAStats struct {
	SrcHits             uint64
	Fills               uint64
	Spills              uint64
	Overwrites          uint64 // committed registers freed by overwrite (no spill)
	TableConflictEvicts uint64
	PhysEvicts          uint64
	RenameStalls        uint64
	DestAllocs          uint64 // destination registers allocated (phys-reg C̅ transitions)
	RollbackFrees       uint64 // squashed destination registers returned to the free list
	RSIDHits            uint64
	RSIDMisses          uint64
	RSIDFlushRegs       uint64
}

// VCA is the virtual context architecture renamer. The speculative rename
// table is modeled faithfully (tags, sets, ways); the commit-side table
// that drives recovery and overwrite freeing is an unbounded associative
// structure, since its conflict behavior is not what the paper evaluates.
type VCA struct {
	cfg    VCAConfig
	table  []tableEntry // sets × ways
	regs   []physState
	free   []int
	commit commitTable
	clock  uint64

	rsidTags       []uint64 // translation table: upper-address tags
	rsidLRU        []uint64
	rsidValid      []bool
	rsidLast       int // most recent hit index (fast path; no state effect)
	pendingRSIDOps []MemOp

	// ReadValue lets the renamer capture a spill victim's value at rename
	// time; the core installs it (reads the physical register file).
	ReadValue func(phys int) uint64

	Stats VCAStats
}

// NewVCA builds the renamer with all physical registers free and nothing
// mapped: unlike the conventional renamer, VCA has no minimum physical
// register requirement (§4.2 "a point where the conventional architecture
// is unable to operate").
func NewVCA(cfg VCAConfig) *VCA {
	v := &VCA{
		cfg:       cfg,
		table:     make([]tableEntry, cfg.Sets*cfg.Ways),
		regs:      make([]physState, cfg.PhysRegs),
		commit:    newCommitTable(cfg.PhysRegs),
		rsidTags:  make([]uint64, cfg.RSIDs),
		rsidLRU:   make([]uint64, cfg.RSIDs),
		rsidValid: make([]bool, cfg.RSIDs),
	}
	for p := cfg.PhysRegs - 1; p >= 0; p-- {
		v.free = append(v.free, p)
	}
	return v
}

// Config returns the active configuration.
func (v *VCA) Config() VCAConfig { return v.cfg }

// FreeCount returns the number of unmapped physical registers.
func (v *VCA) FreeCount() int { return len(v.free) }

func (v *VCA) set(addr uint64) int {
	return int(addr>>3) & (v.cfg.Sets - 1)
}

func (v *VCA) ways(addr uint64) []tableEntry {
	s := v.set(addr)
	return v.table[s*v.cfg.Ways : (s+1)*v.cfg.Ways]
}

func (v *VCA) tick() uint64 {
	v.clock++
	return v.clock
}

// lookup finds the table entry for addr.
func (v *VCA) lookup(addr uint64) (way *tableEntry, phys int) {
	ways := v.ways(addr)
	for i := range ways {
		if ways[i].valid && ways[i].addr == addr {
			return &ways[i], int(ways[i].phys)
		}
	}
	return nil, PhysNone
}

// evictable reports whether a physical register may be replaced: only
// unpinned, committed (architectural) values qualify — speculative
// destinations and pinned sources never do (Figure 2's PC̅ states and
// pinned states).
func (v *VCA) evictable(p int) bool {
	r := &v.regs[p]
	return r.mapped && r.ref == 0 && r.committed
}

// victimIn picks the best victim among the table entries of one set, or
// nil if every way is pinned. With OverwriteHint, registers whose logical
// register has an in-flight overwriter are chosen only as a last resort.
func (v *VCA) victimIn(ways []tableEntry) *tableEntry {
	var best *tableEntry
	bestKey := struct {
		ow  bool
		lru uint64
	}{}
	for i := range ways {
		e := &ways[i]
		if !e.valid || !v.evictable(int(e.phys)) {
			continue
		}
		r := &v.regs[e.phys]
		ow := v.cfg.OverwriteHint && r.owPending > 0
		if best == nil ||
			(bestKey.ow && !ow) ||
			(bestKey.ow == ow && r.lru < bestKey.lru) {
			best = e
			bestKey.ow, bestKey.lru = ow, r.lru
		}
	}
	return best
}

// evict frees the register behind a table entry, generating a spill when
// dirty. The caller gets the freed physical register.
func (v *VCA) evict(e *tableEntry, ops *[]MemOp) int {
	p := int(e.phys)
	r := &v.regs[p]
	if r.dirty {
		val := uint64(0)
		if v.ReadValue != nil {
			val = v.ReadValue(p)
		}
		*ops = append(*ops, MemOp{Phys: p, Addr: r.addr, IsSpill: true, Value: val})
		v.Stats.Spills++
	}
	v.commit.del(r.addr)
	e.valid = false
	*r = physState{}
	return p
}

// allocPhys obtains a free physical register, evicting an unpinned
// committed register (global LRU, overwrite-pending demoted) if necessary.
// Returns PhysNone if every register is pinned or speculative.
func (v *VCA) allocPhys(ops *[]MemOp) int {
	if n := len(v.free); n > 0 {
		p := v.free[n-1]
		v.free = v.free[:n-1]
		return p
	}
	// Global LRU scan over table entries.
	var best *tableEntry
	bestOW := false
	var bestLRU uint64
	for i := range v.table {
		e := &v.table[i]
		if !e.valid || !v.evictable(int(e.phys)) {
			continue
		}
		r := &v.regs[e.phys]
		ow := v.cfg.OverwriteHint && r.owPending > 0
		if best == nil || (bestOW && !ow) || (bestOW == ow && r.lru < bestLRU) {
			best, bestOW, bestLRU = e, ow, r.lru
		}
	}
	if best == nil {
		return PhysNone
	}
	v.Stats.PhysEvicts++
	return v.evict(best, ops)
}

// installMapping puts addr→phys into the rename table, evicting a way if
// the set is full. Returns false (stall) if every way of the set is
// pinned.
func (v *VCA) installMapping(addr uint64, phys int, ops *[]MemOp) bool {
	ways := v.ways(addr)
	for i := range ways {
		if !ways[i].valid {
			ways[i] = tableEntry{valid: true, addr: addr, phys: int32(phys)}
			return true
		}
	}
	victim := v.victimIn(ways)
	if victim == nil {
		return false
	}
	v.Stats.TableConflictEvicts++
	freed := v.evict(victim, ops)
	v.free = append(v.free, freed)
	*victim = tableEntry{valid: true, addr: addr, phys: int32(phys)}
	return true
}

// RenameSource maps a source logical-register address (§2.1.1). On a hit
// the register is pinned and returned. On a miss a physical register is
// allocated, mapped, pinned, and a fill is appended to ops; the core must
// treat the register as not-ready until the fill completes. ok=false
// means rename must stall this cycle (no allocatable register or table
// way).
//
//vca:hot
func (v *VCA) RenameSource(addr uint64, ops *[]MemOp) (phys int, filled bool, ok bool) {
	v.touchRSID(addr)
	if _, p := v.lookup(addr); p != PhysNone {
		v.regs[p].ref++
		v.regs[p].lru = v.tick()
		v.Stats.SrcHits++
		return p, false, true
	}
	p := v.allocPhys(ops)
	if p == PhysNone {
		v.Stats.RenameStalls++
		return PhysNone, false, false
	}
	if !v.installMapping(addr, p, ops) {
		v.free = append(v.free, p)
		v.Stats.RenameStalls++
		return PhysNone, false, false
	}
	r := &v.regs[p]
	*r = physState{addr: addr, mapped: true, ref: 1, committed: true, dirty: false, lru: v.tick()}
	v.commit.put(addr, p)
	*ops = append(*ops, MemOp{Phys: p, Addr: addr, IsSpill: false})
	v.Stats.Fills++
	return p, true, true
}

// RenameDest allocates a new physical register for a destination write to
// addr and makes it the speculative mapping. prevSpec is the previous
// speculative mapping (PhysNone on a miss — "for destination registers, a
// miss is not a problem"). The register is pinned by its producer until
// commit.
//
//vca:hot
func (v *VCA) RenameDest(addr uint64, ops *[]MemOp) (newPhys, prevSpec int, ok bool) {
	v.touchRSID(addr)
	p := v.allocPhys(ops)
	if p == PhysNone {
		v.Stats.RenameStalls++
		return PhysNone, PhysNone, false
	}
	// Look up only after allocation: allocPhys may have evicted this very
	// logical register's committed version (its value is then safe in
	// memory and the rename proceeds as a miss).
	entry, prev := v.lookup(addr)
	if entry != nil {
		// Retarget the existing entry to the new speculative version; the
		// previous version stays alive (reachable via the commit table or
		// pinned by consumers) for recovery.
		v.regs[prev].owPending++
		entry.phys = int32(p)
	} else if !v.installMapping(addr, p, ops) {
		v.free = append(v.free, p)
		v.Stats.RenameStalls++
		return PhysNone, PhysNone, false
	}
	r := &v.regs[p]
	*r = physState{addr: addr, mapped: true, ref: 1, committed: false, lru: v.tick()}
	v.Stats.DestAllocs++
	return p, prev, true
}

// ReleaseSource unpins a source register (at commit or squash of the
// consuming instruction).
//
//vca:hot
func (v *VCA) ReleaseSource(phys int) {
	if phys == PhysNone {
		return
	}
	r := &v.regs[phys]
	if r.ref <= 0 {
		panic(fmt.Sprintf("rename: releasing unpinned physical register %d", phys))
	}
	r.ref--
}

// CommitDest makes a destination write architectural: the producer's pin
// is dropped, the register becomes committed+dirty, and the previously
// committed version of the logical register (if any) is freed by
// overwrite — without any writeback, per §2.1.2.
//
//vca:hot
func (v *VCA) CommitDest(addr uint64, phys, prevSpec int) {
	r := &v.regs[phys]
	r.ref--
	r.committed = true
	r.dirty = true
	r.lru = v.tick()
	if prevSpec != PhysNone && v.regs[prevSpec].mapped && v.regs[prevSpec].addr == addr {
		v.regs[prevSpec].owPending--
	}
	if old, ok := v.commit.get(addr); ok && old != phys {
		o := &v.regs[old]
		if o.ref > 0 {
			// Still pinned by in-flight consumers; it will be freed when
			// they release if unreachable. Mark it overwritten: drop its
			// committed status so it frees on last release.
			o.committed = false
			o.dirty = false
		} else {
			v.freeUnmapped(old)
		}
		v.Stats.Overwrites++
	}
	v.commit.put(addr, phys)
}

// CommittedPhys returns the physical register caching the committed
// version of a logical-register address, or ok=false when the committed
// value lives only in the memory-mapped backing store. Used by
// architectural-state extraction (core.ExtractCheckpoint).
func (v *VCA) CommittedPhys(addr uint64) (int, bool) { return v.commit.get(addr) }

// freeUnmapped returns a register to the free list, removing any table
// entry that still points at it.
func (v *VCA) freeUnmapped(p int) {
	r := &v.regs[p]
	if r.mapped {
		if e, cur := v.lookup(r.addr); e != nil && cur == p {
			e.valid = false
		}
	}
	*r = physState{}
	v.free = append(v.free, p)
}

// ReleaseRetired handles the deferred free of an overwritten-but-pinned
// register: call after ReleaseSource drops the last pin.
//
//vca:hot
func (v *VCA) ReleaseRetired(phys int) {
	if phys == PhysNone {
		return
	}
	r := &v.regs[phys]
	if r.mapped && r.ref == 0 && !r.committed {
		// Not committed and unpinned: either an overwritten stale version
		// or an orphan; check it is not the current speculative mapping.
		if _, cur := v.lookup(r.addr); cur != phys {
			v.freeUnmapped(phys)
		}
	}
}

// RollbackDest undoes a squashed destination rename (youngest-first). The
// speculative mapping is restored to prevSpec when that register still
// holds this logical register; if it was evicted meanwhile, the mapping is
// simply removed — the committed value lives in memory and will fill on
// demand (§2.1.3's recovery made safe by the memory backing store).
//
//vca:hot
func (v *VCA) RollbackDest(addr uint64, newPhys, prevSpec int) {
	entry, cur := v.lookup(addr)
	if prevSpec != PhysNone && v.regs[prevSpec].mapped && v.regs[prevSpec].addr == addr {
		v.regs[prevSpec].owPending--
		if entry != nil && cur == newPhys {
			entry.phys = int32(prevSpec)
		}
	} else if entry != nil && cur == newPhys {
		entry.valid = false
	}
	r := &v.regs[newPhys]
	r.ref-- // producer pin
	if r.ref > 0 {
		panic("rename: squashed destination still pinned by consumers")
	}
	*r = physState{}
	v.free = append(v.free, newPhys)
	v.Stats.RollbackFrees++
}

// StillMapped reports whether addr's current speculative mapping is phys.
func (v *VCA) StillMapped(addr uint64, phys int) bool {
	_, cur := v.lookup(addr)
	return cur == phys
}

// FillLive reports whether a completing fill may deliver its value to
// phys: the register must still hold addr's committed version. A younger
// in-flight destination rename retargets the table but must not drop the
// fill (its consumers still read the old version); only recycling of the
// register after its consumers were squashed invalidates the fill.
func (v *VCA) FillLive(addr uint64, phys int) bool {
	r := &v.regs[phys]
	return r.mapped && r.addr == addr && r.committed
}

// touchRSID models the register-space-ID translation table: a miss
// allocates an entry (LRU), and reallocating a live entry would flush the
// registers of that space. The flush cost is reported through Stats and
// the FlushSpace callback is left to the core (rare; our workloads are
// sized so it never fires during measurement).
func (v *VCA) touchRSID(addr uint64) {
	if v.cfg.DisableRSID || v.cfg.RSIDs == 0 {
		return
	}
	tag := addr >> uint(v.cfg.OffsetBits)
	// Fast path: consecutive renames overwhelmingly touch the same register
	// space (one thread's globals or window region), so the last hit index
	// usually matches. A hit's only effects are the LRU touch and the stat,
	// so skipping the scan is behavior-preserving.
	if last := v.rsidLast; v.rsidValid[last] && v.rsidTags[last] == tag {
		v.rsidLRU[last] = v.tick()
		v.Stats.RSIDHits++
		return
	}
	victim, oldest := -1, ^uint64(0)
	for i := 0; i < v.cfg.RSIDs; i++ {
		if v.rsidValid[i] && v.rsidTags[i] == tag {
			v.rsidLRU[i] = v.tick()
			v.rsidLast = i
			v.Stats.RSIDHits++
			return
		}
		if !v.rsidValid[i] {
			if victim == -1 || oldest != 0 {
				victim, oldest = i, 0
			}
		} else if v.rsidLRU[i] < oldest {
			victim, oldest = i, v.rsidLRU[i]
		}
	}
	v.Stats.RSIDMisses++
	if v.rsidValid[victim] {
		// Reusing a live RSID flushes every register in that space.
		old := v.rsidTags[victim]
		var ops []MemOp
		for i := range v.table {
			e := &v.table[i]
			if e.valid && e.addr>>uint(v.cfg.OffsetBits) == old && v.evictable(int(e.phys)) {
				v.Stats.RSIDFlushRegs++
				freed := v.evict(e, &ops)
				v.free = append(v.free, freed)
			}
		}
		v.pendingRSIDOps = append(v.pendingRSIDOps, ops...)
	}
	v.rsidValid[victim] = true
	v.rsidTags[victim] = tag
	v.rsidLRU[victim] = v.tick()
	v.rsidLast = victim
}

// DrainRSIDOps returns spills generated by RSID-reuse flushes since the
// last call.
func (v *VCA) DrainRSIDOps() []MemOp {
	ops := v.pendingRSIDOps
	v.pendingRSIDOps = nil
	return ops
}

// MappedAddr reports the logical-register address a physical register
// currently holds (ok=false when it is unmapped). The core's invariant
// checker uses this to validate that every in-flight instruction's
// previous-version pointer still names the version it captured at rename.
func (v *VCA) MappedAddr(p int) (addr uint64, ok bool) {
	r := &v.regs[p]
	return r.addr, r.mapped
}

// PendingRSIDOps reports how many RSID-reuse spill operations await
// DrainRSIDOps. Between rename cycles the queue must be empty (every
// rename path drains it into the ASTQ before returning).
func (v *VCA) PendingRSIDOps() int { return len(v.pendingRSIDOps) }

// AuditPins cross-checks every register's Figure 2 reference counts
// against the core's independently reconstructed in-flight view:
// expectRef[p] is the number of pins (source reads plus the producer's
// own pin) the ROB currently justifies, expectOW[p] the number of
// in-flight overwriters. Both slices must have PhysRegs entries.
func (v *VCA) AuditPins(expectRef, expectOW []int) error {
	if len(expectRef) != len(v.regs) || len(expectOW) != len(v.regs) {
		return fmt.Errorf("vca: audit slices sized %d/%d, want %d", len(expectRef), len(expectOW), len(v.regs))
	}
	for p := range v.regs {
		r := &v.regs[p]
		if int(r.ref) != expectRef[p] {
			return fmt.Errorf("vca: register %d ref count %d, but %d in-flight pins justify it (%+v)",
				p, r.ref, expectRef[p], *r)
		}
		if int(r.owPending) != expectOW[p] {
			return fmt.Errorf("vca: register %d overwrite-pending %d, but %d in-flight overwriters exist (%+v)",
				p, r.owPending, expectOW[p], *r)
		}
		if expectRef[p] > 0 && !r.mapped {
			return fmt.Errorf("vca: register %d pinned by %d in-flight readers but unmapped", p, expectRef[p])
		}
	}
	return nil
}

// InjectLeak drops one register off the free list without mapping it — a
// deliberate conservation violation so tests can prove the invariant
// checker notices. Returns false when the free list is empty.
func (v *VCA) InjectLeak() bool {
	if len(v.free) == 0 {
		return false
	}
	v.free = v.free[:len(v.free)-1]
	return true
}

// CheckInvariants validates the Figure 2 state machine globally: table
// entries and register states must be mutually consistent, no register
// may be both free and mapped, and — conservation — every register must
// be exactly one of free or mapped (a register that is neither has
// leaked; doubly listed free registers are double-frees).
func (v *VCA) CheckInvariants() error {
	inFree := make([]bool, v.cfg.PhysRegs)
	for _, p := range v.free {
		if inFree[p] {
			return fmt.Errorf("vca: register %d double-freed", p)
		}
		inFree[p] = true
	}
	seen := make([]bool, v.cfg.PhysRegs)
	for i := range v.table {
		e := &v.table[i]
		if !e.valid {
			continue
		}
		if seen[e.phys] {
			return fmt.Errorf("vca: register %d mapped by two table entries", e.phys)
		}
		seen[e.phys] = true
		if inFree[e.phys] {
			return fmt.Errorf("vca: register %d is free but mapped to %#x", e.phys, e.addr)
		}
		r := &v.regs[e.phys]
		if !r.mapped || r.addr != e.addr {
			return fmt.Errorf("vca: table entry %#x disagrees with register %d state (%+v)", e.addr, e.phys, r)
		}
	}
	if err := v.commit.check(); err != nil {
		return err
	}
	if err := v.commit.each(func(addr uint64, p int) error {
		r := &v.regs[p]
		if !r.mapped || r.addr != addr {
			return fmt.Errorf("vca: commit table entry %#x -> %d inconsistent (%+v)", addr, p, r)
		}
		if !r.committed {
			return fmt.Errorf("vca: commit table references uncommitted register %d", p)
		}
		return nil
	}); err != nil {
		return err
	}
	for p := range v.regs {
		r := &v.regs[p]
		if r.ref < 0 || r.owPending < 0 {
			return fmt.Errorf("vca: register %d has negative counts (%+v)", p, r)
		}
		switch {
		case inFree[p] && r.mapped:
			return fmt.Errorf("vca: register %d is simultaneously free and mapped to %#x", p, r.addr)
		case !inFree[p] && !r.mapped:
			return fmt.Errorf("vca: register %d leaked (neither free nor mapped)", p)
		case inFree[p] && (r.ref != 0 || r.owPending != 0 || r.committed || r.dirty):
			return fmt.Errorf("vca: free register %d has residual state (%+v)", p, *r)
		}
	}
	return nil
}
