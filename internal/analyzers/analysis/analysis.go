// Package analysis is the repo's first-party static-analysis framework:
// a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API (Analyzer / Pass / Diagnostic)
// built on the standard library's go/ast and go/types.
//
// The repo vendors no third-party modules — the module graph is empty by
// policy — so the x/tools analysis driver is not available. The passes
// under internal/analyzers/* are written against this shim instead; the
// API surface is kept close enough to x/tools that a pass ports to a
// real golang.org/x/tools/go/analysis.Analyzer by changing imports. The
// suite, what each pass enforces, and the annotation grammar are
// documented in docs/ANALYZERS.md.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name (the prefix of
// every diagnostic it reports), a doc sentence, and the Run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run. All
// fields are read-only for the pass; diagnostics go through Report.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Ann indexes the package's comment annotations (//hot, //cold,
	// //lint:...) by file line; see Annotations.
	Ann *Annotations

	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}
