package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotations indexes a package's analyzer-facing comments. Two
// grammars exist (docs/ANALYZERS.md):
//
//   - Function annotations: a line of the function's doc comment that is
//     exactly the tag ("//vca:hot", "//vca:cold"), optionally followed by
//     prose after a space. They mark hot-path membership for the hotalloc
//     pass. The directive form survives gofmt, which would reflow a bare
//     "//hot" into prose.
//
//   - Statement annotations ("//lint:maporder ..."): attached to the
//     statement on the same source line or the line directly above it.
//     They suppress a specific diagnostic at that site and should carry a
//     short justification.
type Annotations struct {
	fset *token.FileSet
	// byLine maps filename → line → the comment text on that line
	// (all comments on the line, joined).
	byLine map[string]map[int]string
}

func indexAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, byLine: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				m := a.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					a.byLine[pos.Filename] = m
				}
				m[pos.Line] += c.Text
			}
		}
	}
	return a
}

// StmtAllowed reports whether a statement annotation tag (e.g.
// "//lint:maporder") is present on pos's line or the line directly
// above it.
func (a *Annotations) StmtAllowed(pos token.Pos, tag string) bool {
	p := a.fset.Position(pos)
	m := a.byLine[p.Filename]
	if m == nil {
		return false
	}
	return hasTag(m[p.Line], tag) || hasTag(m[p.Line-1], tag)
}

// FuncTagged reports whether a function declaration's doc comment
// carries the tag (e.g. "//hot") as a whole line.
func FuncTagged(decl *ast.FuncDecl, tag string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if hasTag(c.Text, tag) {
			return true
		}
	}
	return false
}

// hasTag reports whether comment text contains tag as a whole token:
// the tag itself, or the tag followed by whitespace or a colon.
func hasTag(text, tag string) bool {
	for t := text; ; {
		i := strings.Index(t, tag)
		if i < 0 {
			return false
		}
		rest := t[i+len(tag):]
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':' {
			return true
		}
		t = rest
	}
}
