package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Package is one loaded, type-checked, comment-indexed package — the
// input a Pass is built from.
type Package struct {
	Dir       string
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Ann       *Annotations
}

// Loader type-checks package directories from source. It wraps the
// standard library's source importer (go/importer "source" mode), which
// resolves module-internal import paths through the go command and
// type-checks dependencies from source — no export data and no
// third-party loader needed. Dependencies are cached across Load calls,
// so loading every package in the repo pays for each shared dependency
// once.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and dependency cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses and type-checks the non-test Go files of dir as import
// path path. Test files are excluded by design: the analyzers police
// shipped code, and test helpers legitimately use wall clocks and
// unsorted iteration.
func (l *Loader) Load(dir, path string) (*Package, error) {
	names, err := GoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Dir:       dir,
		Path:      path,
		Fset:      l.Fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
		Ann:       indexAnnotations(l.Fset, files),
	}, nil
}

// GoFiles lists the non-test .go file names of dir in sorted order.
func GoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	slices.Sort(names)
	return names, nil
}

// Run executes one analyzer over the package and returns its findings
// in position order.
func (p *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.TypesInfo,
		Ann:       p.Ann,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int { return cmp.Compare(a.Pos, b.Pos) })
	return diags, nil
}
