// Package metricregtest is the metricreg analyzer fixture: names with
// no literal root and registrations after an export are flagged; the
// constant-prefix, literal-Sprintf, and forwarding-wrapper forms stay
// silent.
package metricregtest

import (
	"fmt"

	"vca/internal/metrics"
)

const prefix = "fixture."

// Good shows every sanctioned naming form.
func Good(reg *metrics.Registry, threads int) {
	reg.Counter("fixture.cycles", "cycles", "literal name")
	reg.Counter(prefix+"commits", "events", "constant-prefix concatenation")
	for t := 0; t < threads; t++ {
		reg.Counter(fmt.Sprintf("fixture.occ.t%d", t), "events", "literal Sprintf format")
	}
}

// Forward is a forwarding wrapper: the parameter root is allowed here,
// and the rule applies to Forward's call sites instead.
func Forward(reg *metrics.Registry, name string) *metrics.Counter {
	return reg.Counter(name+".hits", "events", "wrapper-forwarded name")
}

// Bad synthesizes a name entirely from runtime values.
func Bad(reg *metrics.Registry, names []string) {
	for _, n := range names {
		v := n + ".miss"
		reg.Counter(v, "events", "runtime-synthesized name") // want "has no literal root"
	}
}

// LateRegistration registers after the registry was already exported in
// the same function: the snapshot the caller took is missing the metric.
func LateRegistration(reg *metrics.Registry) []metrics.Sample {
	snap := reg.Snapshot()
	reg.Counter("fixture.late", "events", "registered too late") // want "after the registry was exported"
	return snap
}
