// Package metricreg implements the metricreg analyzer, policing the
// internal/metrics registration discipline that keeps the counter
// surface complete and greppable:
//
//   - A registration name must have a literal root: a constant
//     expression, a concatenation whose leftmost operand is constant
//     ("simcache." + name), or fmt.Sprintf with a literal format
//     ("core.occ.rob.t%d"). A name synthesized entirely from runtime
//     values cannot be cross-referenced by docs/OBSERVABILITY.md or
//     found when a promexport series needs explaining. A name rooted in
//     a string parameter of the enclosing function is a forwarding
//     wrapper and is allowed: the rule applies to the wrapper's call
//     sites instead, so every concrete name still bottoms out in a
//     literal somewhere up the call chain.
//
//   - Registration must happen at construction, before the registry is
//     first exported: a Registry.Counter/Histogram/Occupancy/Register*
//     call positioned after a Snapshot or CounterMap call in the same
//     function is registered too late — the exported dump the caller
//     already took is missing the metric.
package metricreg

import (
	"go/ast"
	"go/token"
	"go/types"

	"vca/internal/analyzers/analysis"
)

// Analyzer enforces literal-rooted, export-before-use metric
// registration.
var Analyzer = &analysis.Analyzer{
	Name: "metricreg",
	Doc:  "metric registration names must have a literal root and precede the registry's first export",
	Run:  run,
}

const metricsPath = "vca/internal/metrics"

// registration methods (name is the first argument) and export methods
// of metrics.Registry.
var (
	registerMethods = map[string]bool{
		"Counter": true, "Histogram": true, "Occupancy": true,
		"RegisterCounter": true, "RegisterHistogram": true, "RegisterOccupancy": true,
	}
	exportMethods = map[string]bool{
		"Snapshot": true, "CounterMap": true,
	}
)

func run(pass *analysis.Pass) error {
	params := paramObjects(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, params)
		}
	}
	return nil
}

// paramObjects collects every function and closure parameter object in
// the package — the "forwarding wrapper" roots hasLiteralRoot accepts.
func paramObjects(pass *analysis.Pass) map[types.Object]bool {
	params := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				addFields(n.Recv)
				addFields(n.Type.Params)
			case *ast.FuncLit:
				addFields(n.Type.Params)
			}
			return true
		})
	}
	return params
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	// Position of the first export call in this function, if any.
	firstExport := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _ := registryCall(pass, call); kind == callExport && (!firstExport.IsValid() || call.Pos() < firstExport) {
			firstExport = call.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, method := registryCall(pass, call)
		if kind != callRegister {
			return true
		}
		if len(call.Args) > 0 && !hasLiteralRoot(pass, params, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry."+method+" has no literal root; build names from a constant prefix or a literal fmt.Sprintf format so docs/OBSERVABILITY.md and promexport stay complete")
		}
		if firstExport.IsValid() && call.Pos() > firstExport {
			pass.Reportf(call.Pos(), "metric registered via Registry."+method+" after the registry was exported (Snapshot/CounterMap) in the same function; register every metric at construction, before the first export")
		}
		return true
	})
}

type callKind int

const (
	callNone callKind = iota
	callRegister
	callExport
)

// registryCall classifies a call as a metrics.Registry registration or
// export, returning the method name.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (callKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return callNone, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPath {
		return callNone, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return callNone, ""
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return callNone, ""
	}
	switch {
	case registerMethods[fn.Name()]:
		return callRegister, fn.Name()
	case exportMethods[fn.Name()]:
		return callExport, fn.Name()
	}
	return callNone, ""
}

// hasLiteralRoot reports whether a name expression is anchored in a
// compile-time literal: a constant, a + concatenation whose leftmost
// operand has a literal root, fmt.Sprintf with a constant format, or a
// parameter of the enclosing function (a forwarding wrapper — the
// wrapper's call sites are checked in turn).
func hasLiteralRoot(pass *analysis.Pass, params map[types.Object]bool, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return hasLiteralRoot(pass, params, e.X)
	case *ast.Ident:
		return params[pass.TypesInfo.Uses[e]]
	case *ast.BinaryExpr:
		return e.Op == token.ADD && hasLiteralRoot(pass, params, e.X)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
			return false
		}
		return len(e.Args) > 0 && hasLiteralRoot(pass, params, e.Args[0])
	}
	return false
}
