package suite_test

import (
	"testing"

	"vca/internal/analyzers/suite"
)

// TestTreeClean pins the repo itself at zero findings: every diagnostic
// the suite can produce on shipped code is either fixed or carries an
// inline justification. `make analyze` enforces the same gate in CI;
// this test makes plain `go test ./...` catch a regression too.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := suite.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := suite.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
