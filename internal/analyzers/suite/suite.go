// Package suite assembles the repo's analyzer suite — which passes
// exist and which packages each one polices — and runs it over the
// tree. It is the single source of truth shared by the multichecker
// driver (internal/tools/analyze, `make analyze`) and the clean-tree
// regression test that pins the suite to zero findings on the repo
// itself.
package suite

import (
	"errors"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"vca/internal/analyzers/analysis"
	"vca/internal/analyzers/hotalloc"
	"vca/internal/analyzers/maprange"
	"vca/internal/analyzers/metricreg"
	"vca/internal/analyzers/nodeterm"
	"vca/internal/analyzers/sortfunc"
)

// deterministicPackages are the packages whose output must be a pure
// function of (config, program, seed) — the scope of the nodeterm pass.
// Golden matrices, simcache content addresses, and checkpoint images
// are all derived from what these packages compute.
var deterministicPackages = []string{
	"vca/internal/core",
	"vca/internal/rename",
	"vca/internal/mem",
	"vca/internal/emu",
	"vca/internal/branch",
}

// Pass couples an analyzer with the import-path scope it runs on.
type Pass struct {
	Analyzer *analysis.Analyzer
	// Include reports whether the pass polices the package; nil means
	// the whole tree.
	Include func(importPath string) bool
}

// All returns the suite in the order findings are reported.
func All() []Pass {
	inDeterministic := func(path string) bool {
		for _, p := range deterministicPackages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
	return []Pass{
		{Analyzer: nodeterm.Analyzer, Include: inDeterministic},
		{Analyzer: maprange.Analyzer},
		{Analyzer: hotalloc.Analyzer},
		{Analyzer: metricreg.Analyzer},
		{Analyzer: sortfunc.Analyzer},
	}
}

// Finding is one reported diagnostic, positioned and attributed.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in file:line:col form (path as given —
// Run reports paths relative to the root it walked).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// ModuleRoot locates the repo root by walking up from dir to the
// directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", errors.New("suite: no go.mod found above " + dir)
		}
		abs = parent
	}
}

// Packages walks the module and returns (dir, importPath) for every
// buildable non-test package, skipping testdata (analyzer fixtures
// intentionally contain findings) and dot-directories.
func Packages(root string) (dirs, paths []string, err error) {
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := analysis.GoFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		importPath := "vca"
		if rel != "." {
			importPath = "vca/" + filepath.ToSlash(rel)
		}
		dirs = append(dirs, p)
		paths = append(paths, importPath)
		return nil
	})
	return dirs, paths, err
}

// Run executes every applicable pass over every package under root and
// returns the findings with root-relative file paths, ordered by
// package, then pass, then position.
func Run(root string) ([]Finding, error) {
	dirs, paths, err := Packages(root)
	if err != nil {
		return nil, err
	}
	passes := All()
	loader := analysis.NewLoader()
	var out []Finding
	for i, dir := range dirs {
		importPath := paths[i]
		var pkg *analysis.Package
		for _, p := range passes {
			if p.Include != nil && !p.Include(importPath) {
				continue
			}
			if pkg == nil {
				pkg, err = loader.Load(dir, importPath)
				if err != nil {
					return nil, err
				}
			}
			diags, err := pkg.Run(p.Analyzer)
			if err != nil {
				return nil, fmt.Errorf("suite: %s on %s: %w", p.Analyzer.Name, importPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if rel, err := filepath.Rel(root, pos.Filename); err == nil {
					pos.Filename = filepath.ToSlash(rel)
				}
				out = append(out, Finding{Pos: pos, Analyzer: p.Analyzer.Name, Message: d.Message})
			}
		}
	}
	return out, nil
}
