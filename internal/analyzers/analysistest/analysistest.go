// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, the same
// convention as golang.org/x/tools/go/analysis/analysistest (and the
// prysm tools/analyzers suites the repo's passes are modeled on): a
// diagnostic must be reported on every line carrying a want comment and
// must match one of the line's quoted regular expressions; a diagnostic
// on a line with no matching want is an error, as is a want that nothing
// matched.
package analysistest

import (
	"fmt"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"testing"

	"vca/internal/analyzers/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir as a package and checks analyzer a's diagnostics
// against the package's want comments. The package must type-check; its
// import path is synthesized from the directory name.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkg, err := loader.Load(dir, "analyzertest/"+strings.ReplaceAll(dir, "\\", "/"))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		ws := wants[key]
		ok := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants { //lint:maporder keys are collected then sorted before use
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %s", key, w.raw)
			}
		}
	}
}

// collectWants extracts the want expectations, keyed file:line.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", key, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: q})
				}
			}
		}
	}
	return wants
}
