// Package nodeterm implements the nodeterm analyzer: no wall-clock
// reads, no globally-seeded randomness, and no environment-dependent
// values inside the deterministic simulation packages (internal/core,
// internal/rename, internal/mem, internal/emu, internal/branch).
//
// Everything those packages produce — golden counter matrices, simcache
// content addresses, checkpoint images — must be a pure function of
// (config, program, seed). A time.Now, an unseeded math/rand call, or an
// os.Getenv in that code is a determinism bug even when today's output
// happens not to depend on it; this pass, modeled on prysm's cryptorand
// analyzer, makes the convention mechanical. Explicitly seeded sources
// (rand.New(rand.NewSource(seed)), rand.NewPCG, ...) stay allowed: the
// seed is provenance the caller controls.
package nodeterm

import (
	"go/ast"
	"go/types"

	"vca/internal/analyzers/analysis"
)

// Analyzer flags nondeterminism sources in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock time, unseeded randomness, and environment reads in deterministic simulation packages",
	Run:  run,
}

// banned maps package path → function name → the diagnostic. An empty
// inner map bans every package-level function except allowedRand.
var banned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time is nondeterministic; derive timing from the simulated cycle count or take an explicit timestamp parameter",
		"Since": "wall-clock time is nondeterministic; derive timing from the simulated cycle count or take an explicit timestamp parameter",
		"Until": "wall-clock time is nondeterministic; derive timing from the simulated cycle count or take an explicit timestamp parameter",
	},
	"os": {
		"Getenv":    "environment-dependent values break run-to-run determinism; thread configuration through core.Config instead",
		"LookupEnv": "environment-dependent values break run-to-run determinism; thread configuration through core.Config instead",
		"Environ":   "environment-dependent values break run-to-run determinism; thread configuration through core.Config instead",
		"Hostname":  "host-dependent values break run-to-run determinism; thread configuration through core.Config instead",
		"Getpid":    "process-dependent values break run-to-run determinism; thread configuration through core.Config instead",
	},
}

// allowedRand is the math/rand surface that carries an explicit seed and
// therefore stays deterministic: constructors of seedable sources.
// Methods on *rand.Rand are always allowed — the value exists only
// downstream of a constructor.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

const randMsg = "package-level math/rand functions use the shared global source; construct an explicitly seeded rand.New(rand.NewSource(seed)) and pass it down"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (receiver present) are allowed: *rand.Rand methods
			// derive from a seeded source; time.Duration methods etc. are
			// pure values.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch path := fn.Pkg().Path(); path {
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(), randMsg)
				}
			default:
				if msg, ok := banned[path][fn.Name()]; ok {
					pass.Reportf(sel.Pos(), msg)
				}
			}
			return true
		})
	}
	return nil
}
