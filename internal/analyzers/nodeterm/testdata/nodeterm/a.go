// Package nodetermtest is the nodeterm analyzer fixture: the flagged
// lines carry want comments; the explicitly seeded constructions at the
// bottom must stay silent.
package nodetermtest

import (
	"math/rand"
	"os"
	"time"
)

func Clock() int64 {
	t := time.Now() // want "wall-clock time is nondeterministic"
	return t.Unix()
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock time is nondeterministic"
}

func FromEnv() string {
	return os.Getenv("VCA_MODE") // want "environment-dependent values break run-to-run determinism"
}

func GlobalRand() int {
	return rand.Intn(16) // want "package-level math/rand functions use the shared global source"
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "package-level math/rand functions use the shared global source"
}

// SeededRand is allowed: the seed is provenance the caller controls,
// and methods on the constructed *rand.Rand derive from it.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

// PureTime is allowed: time.Duration arithmetic and constants are pure
// values, only the wall-clock reads are banned.
func PureTime(d time.Duration) float64 {
	return d.Seconds() + time.Millisecond.Seconds()
}
