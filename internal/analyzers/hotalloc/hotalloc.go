// Package hotalloc implements the hotalloc analyzer: no
// allocation-prone constructs in the event-driven core's per-cycle /
// per-uop paths. The bench-smoke gate holds the simulator to a 0.05
// allocs-per-instruction floor (internal/tools/benchsmoke); this pass
// locks in *why* that number holds by forbidding the three constructs
// that silently reintroduce steady-state allocation:
//
//   - append that grows a fresh, unpreallocated local slice (persistent
//     struct-field buffers, parameters, and make(..., cap) locals are
//     fine — those amortize);
//   - closures that capture variables (a capturing func literal
//     allocates its environment per call; non-capturing literals are
//     static and free);
//   - boxing a concrete value into an interface argument, variable, or
//     conversion (each box is a heap allocation once it escapes).
//
// The hot region is seeded by `//vca:hot` doc-comment directives on the
// scheduler, commit, fetch, and rename stage functions and propagates
// through same-package static calls, so an alloc cannot hide in a
// helper. `//vca:cold` on a function cuts propagation — the escape hatch
// for config-gated debug paths (Chrome tracing, panic formatting) that
// are reachable but never run per cycle in measured configurations.
// Arguments of a panic(...) call are exempt everywhere: a path that
// ends the process may format freely.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"vca/internal/analyzers/analysis"
)

// Annotation tags. TagHot and TagCold are function-level (doc-comment
// directives); TagAllow is statement-level, on or directly above the
// offending statement, for the rare allocation inside a hot function
// that is provably not per-cycle (run-fatal error construction).
const (
	TagHot   = "//vca:hot"
	TagCold  = "//vca:cold"
	TagAllow = "//lint:hotalloc"
)

// Analyzer flags allocation-prone constructs in //vca:hot call paths.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid unpreallocated append, capturing closures, and interface boxing in //vca:hot per-cycle paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index this package's function declarations by their object,
	// keeping file order so reports come out deterministically.
	decls := make(map[types.Object]*ast.FuncDecl)
	var order []types.Object
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
					order = append(order, obj)
				}
			}
		}
	}

	// Seed with //vca:hot functions and propagate through same-package
	// static calls, stopping at //vca:cold.
	hot := make(map[types.Object]bool)
	var queue []types.Object
	for _, obj := range order {
		if analysis.FuncTagged(decls[obj], TagHot) {
			hot[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fd := decls[obj]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObject(pass, call)
			target, isLocal := decls[callee]
			if callee == nil || !isLocal || hot[callee] {
				return true
			}
			if analysis.FuncTagged(target, TagCold) {
				return true
			}
			hot[callee] = true
			queue = append(queue, callee)
			return true
		})
	}

	for _, obj := range order {
		if hot[obj] {
			checkFunc(pass, decls[obj])
		}
	}
	return nil
}

// calleeObject resolves a call's static callee within any package, or
// nil for func values, builtins, and interface dispatch.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// checkFunc walks one hot function's body. cp tracks the innermost
// enclosing statement's position so a TagAllow annotation above a
// multi-line statement covers every expression inside it.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd == nil || fd.Body == nil {
		return
	}
	name := fd.Name.Name
	locals := localSliceOrigins(pass, fd)
	cp := &checkPass{pass: pass, stmt: fd.Body.Pos()}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok {
			cp.stmt = st.Pos()
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass, n) {
				return false // a path that ends the process may allocate
			}
			if isBuiltinAppend(pass, n) {
				if !allowedAppendTarget(pass, locals, n.Args[0]) {
					cp.report(n.Pos(), "append grows an unpreallocated slice in hot ("+TagHot+") function "+name+"; preallocate with make(len, cap) or reuse a persistent buffer")
				}
				return true
			}
			checkCallBoxing(cp, n, name)
		case *ast.FuncLit:
			if capturesVariables(pass, n) {
				cp.report(n.Pos(), "closure captures variables in hot ("+TagHot+") function "+name+" (allocates its environment per call); hoist it to a method or named function")
			}
			return false // literal body is its own (non-hot) scope
		case *ast.AssignStmt:
			checkAssignBoxing(cp, n, name)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkPass carries the report context through one function's walk.
type checkPass struct {
	pass *analysis.Pass
	stmt token.Pos // innermost enclosing statement
}

// report emits a diagnostic unless the enclosing statement (or the
// flagged position itself) carries a TagAllow annotation.
func (cp *checkPass) report(pos token.Pos, msg string) {
	if cp.pass.Ann.StmtAllowed(cp.stmt, TagAllow) || cp.pass.Ann.StmtAllowed(pos, TagAllow) {
		return
	}
	cp.pass.Reportf(pos, msg)
}

// localSliceOrigins maps each local variable object to the expression
// that originated it (the RHS of its := or var declaration), so append
// targets can be traced to a preallocation.
func localSliceOrigins(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]ast.Expr {
	origins := make(map[types.Object]ast.Expr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					origins[obj] = n.Rhs[i]
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					obj := pass.TypesInfo.Defs[nm]
					if obj == nil {
						continue
					}
					if i < len(vs.Values) {
						origins[obj] = vs.Values[i]
					} else {
						origins[obj] = nil // var s []T: zero value, grows from nil
					}
				}
			}
		}
		return true
	})
	return origins
}

// allowedAppendTarget reports whether the slice being appended to has
// amortized or preallocated backing: a struct field or indexed element
// (persistent buffer), a parameter or package-level variable (the
// caller owns the allocation policy), a make with explicit capacity, a
// reslice of an allowed target, or a call result.
func allowedAppendTarget(pass *analysis.Pass, locals map[types.Object]ast.Expr, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true // field or element of something persistent
	case *ast.StarExpr:
		// *ops where ops is a *[]T out-parameter: the caller owns the
		// backing allocation policy.
		return allowedAppendTarget(pass, locals, e.X)
	case *ast.SliceExpr:
		return allowedAppendTarget(pass, locals, e.X)
	case *ast.CallExpr:
		if isBuiltinAppend(pass, e) {
			return allowedAppendTarget(pass, locals, e.Args[0])
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return len(e.Args) >= 3 // make([]T, len, cap)
			}
		}
		return true // some function constructed it; its policy applies
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level buffer
		}
		origin, isLocal := locals[obj]
		if !isLocal {
			return true // parameter or receiver: caller's policy
		}
		if origin == nil {
			return false // var s []T — grows from nil
		}
		return allowedAppendTarget(pass, locals, origin)
	}
	return false
}

// capturesVariables reports whether a func literal references variables
// declared outside itself (other than package-level ones).
func capturesVariables(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || v.Pkg() != pass.Pkg {
			return true // package-level or foreign
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// checkCallBoxing flags concrete values passed to interface parameters.
func checkCallBoxing(cp *checkPass, call *ast.CallExpr, name string) {
	pass := cp.pass
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) where T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			cp.report(call.Pos(), "conversion boxes a concrete value into an interface in hot ("+TagHot+") function "+name)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isTypeParam(pt) && isConcrete(pass, arg) {
			cp.report(arg.Pos(), "argument boxes a concrete value into an interface parameter in hot ("+TagHot+") function "+name)
		}
	}
}

// checkAssignBoxing flags concrete values assigned to interface
// variables.
func checkAssignBoxing(cp *checkPass, s *ast.AssignStmt, name string) {
	pass := cp.pass
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		lt, ok := pass.TypesInfo.Types[l]
		if !ok || lt.Type == nil {
			// := defines: look up the defined object's type.
			if id, isIdent := l.(*ast.Ident); isIdent {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					if types.IsInterface(obj.Type()) && isConcrete(pass, s.Rhs[i]) {
						cp.report(s.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in hot ("+TagHot+") function "+name)
					}
				}
			}
			continue
		}
		if types.IsInterface(lt.Type) && !isTypeParam(lt.Type) && isConcrete(pass, s.Rhs[i]) {
			cp.report(s.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in hot ("+TagHot+") function "+name)
		}
	}
}

// isConcrete reports whether the expression's static type is a
// non-interface, non-nil type (the boxing case).
func isConcrete(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type) && !isTypeParam(tv.Type)
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

// isPanic reports whether the call is to the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// isBuiltinAppend reports whether the call is to the builtin append.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
