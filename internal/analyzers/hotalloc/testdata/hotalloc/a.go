// Package hotalloctest is the hotalloc analyzer fixture. The hot region
// seeds at Step (//vca:hot), propagates into helper through the static
// call, stops at traceSlow (//vca:cold), and never reaches ColdPath —
// allocation there is free to do whatever it likes.
package hotalloctest

import "fmt"

type machine struct {
	buf  []int
	sink any
}

// Step is the fixture's per-cycle entry point.
//
//vca:hot
func (m *machine) Step(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v)) // panic arguments are exempt
	}

	m.buf = append(m.buf, v) // persistent struct-field buffer: amortized

	var fresh []int
	fresh = append(fresh, v) // want "append grows an unpreallocated slice"
	_ = fresh

	f := func() int { return v } // want "closure captures variables"
	_ = f()

	g := func() int { return 42 } // non-capturing literal: static, free
	_ = g()

	m.sink = v // want "assignment boxes a concrete value"
	_ = any(v) // want "conversion boxes a concrete value"

	fmt.Println(v) // want "argument boxes a concrete value"

	m.helper(v)
	m.traceSlow(v)

	//lint:hotalloc run-fatal error construction; executes at most once per run
	m.fail(fmt.Errorf("bad value %d", v))
}

// helper carries no tag but is reached from Step through a static call,
// so the hot region covers it.
func (m *machine) helper(v int) {
	local := make([]int, 0, 8)
	local = append(local, v) // make with explicit capacity: preallocated
	_ = local

	var sl []int
	sl = append(sl, v) // want "append grows an unpreallocated slice"
	_ = sl
}

// traceSlow is config-gated debug output, reachable from Step but never
// run per cycle in measured configurations.
//
//vca:cold
func (m *machine) traceSlow(v int) {
	fmt.Println("trace", v) // cold cuts propagation: not checked
}

// fail is hot (reached from Step) but only moves interfaces around —
// err is already boxed, so nothing new allocates.
func (m *machine) fail(err error) {
	m.sink = err
}

// ColdPath is outside the hot region entirely: nothing tagged reaches
// it, so its appends are not the analyzer's business.
func ColdPath(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
