package hotalloc_test

import (
	"testing"

	"vca/internal/analyzers/analysistest"
	"vca/internal/analyzers/hotalloc"
)

// TestFixture checks the analyzer against its testdata package: every
// want line must fire and nothing else may.
func TestFixture(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/hotalloc")
}
