// Package sortfunctest is the sortfunc analyzer fixture: every
// reflective sort.Slice-family call is flagged; the generic slices
// functions and the non-reflective sort helpers stay silent.
package sortfunctest

import (
	"slices"
	"sort"
)

func Ints(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "use slices.SortFunc"
}

func Stable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "use slices.SortStableFunc"
}

func IsSorted(xs []int) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "use slices.IsSortedFunc"
}

// Good shows the sanctioned forms: the generic slices family and the
// non-reflective sort helpers.
func Good(xs []int) {
	slices.Sort(xs)
	slices.SortFunc(xs, func(a, b int) int { return a - b })
	sort.Ints(xs)
}
