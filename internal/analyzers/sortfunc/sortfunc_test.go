package sortfunc_test

import (
	"testing"

	"vca/internal/analyzers/analysistest"
	"vca/internal/analyzers/sortfunc"
)

// TestFixture checks the analyzer against its testdata package: every
// want line must fire and nothing else may.
func TestFixture(t *testing.T) {
	analysistest.Run(t, sortfunc.Analyzer, "testdata/sortfunc")
}
