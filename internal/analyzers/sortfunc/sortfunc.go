// Package sortfunc implements the sortfunc analyzer: prefer the
// generic, reflection-free slices.SortFunc family (go 1.22) over
// sort.Slice / sort.SliceStable / sort.SliceIsSorted. The sort.Slice
// forms cost an interface allocation and reflective swaps per call, and
// their less-func signature invites comparators with no deterministic
// tie-break; slices.SortFunc's three-way comparator makes the total
// order explicit. PR 5 migrated the simulator core; this pass keeps the
// rest of the tree from regressing.
package sortfunc

import (
	"go/ast"
	"go/types"

	"vca/internal/analyzers/analysis"
)

// Analyzer flags sort.Slice-family calls.
var Analyzer = &analysis.Analyzer{
	Name: "sortfunc",
	Doc:  "prefer slices.SortFunc / slices.SortStableFunc / slices.IsSortedFunc over the reflective sort.Slice family",
	Run:  run,
}

// replacements maps the flagged sort functions to their slices-package
// successors.
var replacements = map[string]string{
	"Slice":         "slices.SortFunc",
	"SliceStable":   "slices.SortStableFunc",
	"SliceIsSorted": "slices.IsSortedFunc",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
				return true
			}
			if repl, flagged := replacements[obj.Name()]; flagged {
				pass.Reportf(call.Pos(), "sort."+obj.Name()+" is reflective and allocation-prone; use "+repl)
			}
			return true
		})
	}
	return nil
}
