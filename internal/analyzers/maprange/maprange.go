// Package maprange implements the maprange analyzer: iteration over a
// map is unordered, so a range-over-map whose effects are
// order-sensitive is a determinism bug — it feeds Go's randomized map
// order into return values, serialized output, or append order.
//
// The pass proves a loop body order-insensitive with a conservative
// structural check; everything it cannot prove must either sort
// explicitly (collect keys, slices.Sort, then index) or carry a
// `//lint:maporder <justification>` annotation on the range statement.
//
// The commutativity argument accepted without annotation:
//
//   - integer compound accumulation (+=, -=, *=, |=, &=, ^=, &^=) and
//     ++/-- — each iteration contributes a commutative delta. Floating
//     accumulation is NOT accepted: float addition is non-associative,
//     so even a "sum" depends on iteration order bit-for-bit.
//   - writes keyed by a range variable (out[k] = f(v), delete(m2, k)) —
//     map keys are distinct, so iterations touch disjoint cells.
//   - max/min folds: inside `if` whose condition is a comparison, plain
//     assignment to variables the condition mentions.
//   - pure local scaffolding: := definitions, continue, and nested
//     control flow built from the forms above.
//
// Early return, break, append, sends, and arbitrary calls inside the
// body are all order-sensitive (or unprovable) and get flagged.
package maprange

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"vca/internal/analyzers/analysis"
)

// exprString renders an expression to canonical source text, the
// equality the max/min-fold check compares operands by.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// Tag is the allowlist annotation for proven-commutative map loops.
const Tag = "//lint:maporder"

// Analyzer flags order-sensitive iteration over maps.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag range-over-map whose effects are order-sensitive; sort first or annotate " + Tag,
	Run:  run,
}

const msg = "map iteration order is random and this loop body is order-sensitive; collect and sort the keys first, or annotate the loop " + Tag + " with a commutativity argument"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Ann.StmtAllowed(rng.Pos(), Tag) {
				return true
			}
			c := &checker{pass: pass, rangeVars: rangeVars(pass, rng)}
			if !c.okBlock(rng.Body) {
				pass.Reportf(rng.Pos(), msg)
			}
			return true
		})
	}
	return nil
}

// rangeVars collects the loop's key/value variable objects.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

type checker struct {
	pass      *analysis.Pass
	rangeVars map[types.Object]bool
}

func (c *checker) okBlock(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.okStmt(s) {
			return false
		}
	}
	return true
}

// okStmt reports whether one statement is provably order-insensitive.
func (c *checker) okStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return c.okAssign(s, nil)
	case *ast.ExprStmt:
		return c.isDelete(s.X)
	case *ast.BlockStmt:
		return c.okBlock(s)
	case *ast.IfStmt:
		return c.okIf(s)
	case *ast.BranchStmt:
		// continue is harmless; break makes "which iterations ran"
		// order-dependent.
		return s.Tok == token.CONTINUE
	case *ast.RangeStmt:
		// A nested range is order-insensitive if its body is (a nested
		// range over a map is additionally checked on its own).
		return c.okStmt(s.Body)
	case *ast.ForStmt:
		return (s.Init == nil || c.okStmt(s.Init)) && (s.Post == nil || c.okStmt(s.Post)) && c.okBlock(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil && !c.okStmt(s.Init) {
			return false
		}
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				if !c.okStmt(st) {
					return false
				}
			}
		}
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if containsAppend(v) {
					return false
				}
			}
		}
		return true
	}
	return false
}

// commutative compound-assignment operators; sound for integers only.
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN:     true,
	token.SUB_ASSIGN:     true,
	token.MUL_ASSIGN:     true,
	token.OR_ASSIGN:      true,
	token.AND_ASSIGN:     true,
	token.XOR_ASSIGN:     true,
	token.AND_NOT_ASSIGN: true,
}

// okAssign vets one assignment. cond, when non-nil, is the enclosing
// if's comparison condition and licenses the exact max/min fold
// (okMinMaxFold).
func (c *checker) okAssign(s *ast.AssignStmt, cond *ast.BinaryExpr) bool {
	for _, v := range s.Rhs {
		if containsAppend(v) {
			return false
		}
	}
	switch {
	case commutativeOps[s.Tok]:
		// Commutative only over integers: float addition is
		// non-associative and string += is concatenation.
		for _, l := range s.Lhs {
			if !isIntegerish(c.pass, l) {
				return false
			}
		}
		return true
	case s.Tok == token.DEFINE:
		return true
	case s.Tok == token.ASSIGN:
		if cond != nil && c.okMinMaxFold(s, cond) {
			return true
		}
		for i, l := range s.Lhs {
			if ix, ok := l.(*ast.IndexExpr); ok && c.mentionsRangeVar(ix.Index) {
				continue // write keyed by a range variable: disjoint cells
			}
			if _, ok := l.(*ast.Ident); ok && i < len(s.Rhs) {
				if tv, has := c.pass.TypesInfo.Types[s.Rhs[i]]; has && tv.Value != nil {
					continue // x = <constant>: idempotent, any order
				}
			}
			// Anything else is last-writer-wins: order-dependent.
			return false
		}
		return true
	}
	return false
}

// okMinMaxFold recognizes exactly `if X op Y { Y = X }` (op a strict or
// non-strict comparison): a running max/min, which is commutative,
// associative, and idempotent regardless of iteration order. Any looser
// shape — assigning a third variable under the guard (argmax), or
// assigning a value other than the compared one — reintroduces order
// dependence on ties and is rejected.
func (c *checker) okMinMaxFold(s *ast.AssignStmt, cond *ast.BinaryExpr) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := exprString(c.pass.Fset, s.Lhs[0]), exprString(c.pass.Fset, s.Rhs[0])
	x, y := exprString(c.pass.Fset, cond.X), exprString(c.pass.Fset, cond.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// okIf vets an if statement; a comparison condition unlocks the
// max/min-fold allowance for the guarded assignments.
func (c *checker) okIf(s *ast.IfStmt) bool {
	if s.Init != nil && !c.okStmt(s.Init) {
		return false
	}
	var cond *ast.BinaryExpr
	if be, ok := s.Cond.(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			cond = be
		}
	}
	okBody := func(b *ast.BlockStmt) bool {
		for _, st := range b.List {
			if as, ok := st.(*ast.AssignStmt); ok && c.okAssign(as, cond) {
				continue
			}
			if !c.okStmt(st) {
				return false
			}
		}
		return true
	}
	if !okBody(s.Body) {
		return false
	}
	switch e := s.Else.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		return okBody(e)
	case *ast.IfStmt:
		return c.okIf(e)
	}
	return false
}

func (c *checker) mentionsRangeVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.rangeVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isDelete reports whether e is a call to the builtin delete.
func (c *checker) isDelete(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "delete"
}

func isIntegerish(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func containsAppend(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		}
		return !found
	})
	return found
}
