// Package maprangetest is the maprange analyzer fixture: order-sensitive
// loops carry want comments; the commutative shapes and the annotated
// collect-then-sort loop must stay silent.
package maprangetest

import (
	"fmt"
	"slices"
)

// Sum is commutative integer accumulation: allowed without annotation.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes cells keyed by a range variable — map keys are
// distinct, so iterations touch disjoint cells: allowed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Max is the strict max/min fold: commutative, associative, idempotent.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Prune deletes under a guard; delete keyed by the range variable is a
// disjoint-cell write.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Print feeds the randomized order straight into serialized output.
func Print(m map[string]int) {
	for k, v := range m { // want "map iteration order is random"
		fmt.Println(k, v)
	}
}

// Keys builds an order-dependent slice: flagged without annotation.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is random"
		keys = append(keys, k)
	}
	return keys
}

// First leaks whichever key the runtime happens to yield first.
func First(m map[string]int) string {
	for k := range m { // want "map iteration order is random"
		return k
	}
	return ""
}

// FloatSum is flagged: float addition is non-associative, so even a
// plain sum is order-sensitive bit-for-bit.
func FloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration order is random"
		total += v
	}
	return total
}

// SortedKeys is the sanctioned fix for Keys: the annotation records the
// commutativity argument and the sort restores a total order.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:maporder keys are collected then sorted before use
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
