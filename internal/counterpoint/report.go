package counterpoint

import (
	"encoding/json"
	"slices"
	"strings"

	"vca/internal/verify"
)

// ReportSchema versions the refinement-report JSON. Bump on any field
// change; the golden fixture in testdata pins the current shape.
const ReportSchema = 1

// Report is the machine-readable refinement report a counter-oracle
// hunt produces: per-predicate tallies with the tightest observed
// slack, plus one Refutation per (cell, predicate) violation carrying
// the witness values and the shrunk minimal reproduction.
type Report struct {
	Schema int      `json:"schema"`
	Source string   `json:"source"`          // "matrix" or "sweep"
	Seed   int64    `json:"seed,omitempty"`  // sweep plan seed
	Cells  int      `json:"cells"`           // cells evaluated
	Fault  *Perturb `json:"fault,omitempty"` // injected perturbation, if any

	Predicates  []PredicateSummary `json:"predicates"`
	Refutations []Refutation       `json:"refutations,omitempty"`

	index map[string]int // predicate name -> Predicates index
}

// PredicateSummary tallies one predicate across every evaluated cell.
// MinSlack is the tightest margin among cells where the predicate held
// — the "how close to refuted" honesty number — and MinSlackCell names
// the cell that produced it.
type PredicateSummary struct {
	Name    string `json:"name"`
	Algebra string `json:"algebra"`
	Desc    string `json:"desc"`

	Holds   int `json:"holds"`
	Refuted int `json:"refuted"`
	Vacuous int `json:"vacuous"`

	MinSlack     *int64 `json:"min_slack,omitempty"`
	MinSlackCell string `json:"min_slack_cell,omitempty"`
}

// Refutation is one observed violation: the predicate, the cell that
// refuted it, the witness counter values, and — for sweep cells, where
// the failing configuration is a serializable spec — the original and
// shrunk (machine, program) pairs. ShrunkWitness/ShrunkSlack record the
// violation as reproduced by the minimal config.
type Refutation struct {
	Predicate string            `json:"predicate"`
	Algebra   string            `json:"algebra"`
	Cell      string            `json:"cell"`
	Slack     int64             `json:"slack"`
	Witness   map[string]uint64 `json:"witness,omitempty"`

	Machine       *verify.MachineSpec `json:"machine,omitempty"`
	Program       *verify.ProgramSpec `json:"program,omitempty"`
	Shrunk        *verify.Case        `json:"shrunk,omitempty"`
	ShrunkSlack   int64               `json:"shrunk_slack,omitempty"`
	ShrunkWitness map[string]uint64   `json:"shrunk_witness,omitempty"`
}

// NewReport starts an empty report over a predicate set, with one
// summary row per predicate in catalogue order.
func NewReport(source string, preds []Predicate) *Report {
	r := &Report{
		Schema: ReportSchema,
		Source: source,
		index:  make(map[string]int, len(preds)),
	}
	for _, p := range preds {
		r.index[p.Name] = len(r.Predicates)
		r.Predicates = append(r.Predicates, PredicateSummary{
			Name:    p.Name,
			Algebra: p.Algebra(),
			Desc:    p.Desc,
		})
	}
	return r
}

// Observe folds one verdict into the predicate's summary row.
func (r *Report) Observe(cell string, v Verdict) {
	i, ok := r.index[v.Predicate]
	if !ok {
		return
	}
	s := &r.Predicates[i]
	switch v.Status {
	case StatusHolds:
		s.Holds++
		if s.MinSlack == nil || v.Slack < *s.MinSlack {
			slack := v.Slack
			s.MinSlack = &slack
			s.MinSlackCell = cell
		}
	case StatusRefuted:
		s.Refuted++
	case StatusVacuous:
		s.Vacuous++
	}
}

// Add records one refutation.
func (r *Report) Add(ref Refutation) { r.Refutations = append(r.Refutations, ref) }

// Finish sorts the refutation list (cell, then predicate) so the
// report is deterministic regardless of worker scheduling.
func (r *Report) Finish() {
	slices.SortFunc(r.Refutations, func(a, b Refutation) int {
		if a.Cell != b.Cell {
			return strings.Compare(a.Cell, b.Cell)
		}
		return strings.Compare(a.Predicate, b.Predicate)
	})
}

// AnyRefuted reports whether any predicate was refuted anywhere.
func (r *Report) AnyRefuted() bool {
	for _, s := range r.Predicates {
		if s.Refuted > 0 {
			return true
		}
	}
	return false
}

// VacuousEverywhere lists predicates that never produced a non-vacuous
// verdict across the whole report — assumptions the evaluated cells
// never exercised, which the counterpoint gate treats as a failure
// (an oracle that cannot fire proves nothing).
func (r *Report) VacuousEverywhere() []string {
	var out []string
	for _, s := range r.Predicates {
		if s.Holds == 0 && s.Refuted == 0 {
			out = append(out, s.Name)
		}
	}
	return out
}

// MarshalIndent renders the report as stable, human-diffable JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
