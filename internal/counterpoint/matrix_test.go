package counterpoint

// matrix_test.go — the oracle's teeth, proven against the golden
// matrix (experiments.CounterpointMatrix, the same cell set `make
// counterpoint-gate` measures):
//
//   - no predicate is refuted at head, and none is vacuous across the
//     whole matrix (an oracle that cannot fire proves nothing);
//   - every concrete counter any predicate reads has teeth: perturbing
//     it makes at least one predicate refute somewhere;
//   - every predicate in the catalogue can itself be made to fire by
//     perturbing one of the counters it reads.
//
// The matrix is simulated once (all cells, shared across the tests in
// this file); perturbation and re-evaluation are pure map operations.

import (
	"os"
	"sort"
	"sync"
	"testing"

	"vca/internal/experiments"
	"vca/internal/simcache"
)

var (
	matrixOnce sync.Once
	matrixIns  []Input
	matrixErr  error
)

// matrixInputs measures every golden-matrix cell into an Input, plus
// the serving cache's own simcache.* registry as a pseudo-cell —
// mirroring exactly what the counterpoint gate evaluates.
func matrixInputs(t *testing.T) []Input {
	t.Helper()
	matrixOnce.Do(func() {
		dir, err := os.MkdirTemp("", "counterpoint-matrix-*")
		if err != nil {
			matrixErr = err
			return
		}
		defer os.RemoveAll(dir)
		cache, err := simcache.Open(dir)
		if err != nil {
			matrixErr = err
			return
		}
		cells := experiments.CounterpointMatrix()
		ins := make([]Input, len(cells))
		runner := simcache.Runner{}
		matrixErr = runner.Run(len(cells), func(i int) error {
			counters, params, err := experiments.RunMatrixCell(cells[i], experiments.MatrixStop, cache)
			if err != nil {
				return err
			}
			ins[i] = Input{Cell: cells[i].Name, Counters: counters, Params: params}
			return nil
		})
		if matrixErr != nil {
			return
		}
		matrixIns = append(ins, Input{
			Cell:     "simcache/served-matrix",
			Counters: cache.MetricsRegistry().CounterMap(),
			Params:   map[string]uint64{},
		})
	})
	if matrixErr != nil {
		t.Fatalf("measuring golden matrix: %v", matrixErr)
	}
	return matrixIns
}

// TestMatrixCleanAndNoVacuousPredicates is the in-tree form of the
// counterpoint gate's two failure modes: no refutation anywhere, and
// no predicate vacuous across every cell.
func TestMatrixCleanAndNoVacuousPredicates(t *testing.T) {
	ins := matrixInputs(t)
	preds := Catalog()
	rep := NewReport("matrix", preds)
	rep.Cells = len(ins)
	for _, in := range ins {
		for _, v := range EvalAll(preds, in) {
			rep.Observe(in.Cell, v)
			if v.Status == StatusRefuted {
				t.Errorf("%s refuted at %s (slack %d, witness %v)", v.Predicate, in.Cell, v.Slack, v.Witness)
			}
		}
	}
	for _, name := range rep.VacuousEverywhere() {
		t.Errorf("%s is vacuous across the whole matrix: no cell exercises it", name)
	}
}

// teethDeltas are the two perturbation directions the teeth tests
// inject: a huge inflation and a full drain (Apply clamps at zero).
var teethDeltas = []int64{1 << 40, -(1 << 40)}

// referencedCounters returns the sorted union of concrete counter
// names any catalogue predicate reads from any matrix input, filtered
// to names actually registered by at least one cell.
func referencedCounters(ins []Input) []string {
	seen := map[string]bool{}
	for _, in := range ins {
		for _, p := range Catalog() {
			for _, name := range p.Counters(in) {
				if _, ok := in.Counters[name]; ok {
					seen[name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TestEveryReferencedCounterHasTeeth proves the oracle watches every
// counter it claims to: for each registered counter any predicate
// reads, some perturbation of that counter alone must make at least
// one predicate refute in at least one matrix cell. A counter that
// survives both deltas unrefuted is dead weight in the algebra — the
// catalogue would never notice it going wrong.
func TestEveryReferencedCounterHasTeeth(t *testing.T) {
	ins := matrixInputs(t)
	preds := Catalog()
	names := referencedCounters(ins)
	if len(names) < 30 {
		t.Fatalf("only %d referenced counters — catalogue or matrix shrank unexpectedly", len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			for _, delta := range teethDeltas {
				fault := Perturb{Counter: name, Delta: delta}
				for _, cell := range ins {
					if _, ok := cell.Counters[name]; !ok {
						continue
					}
					perturbed := Input{Cell: cell.Cell, Counters: fault.Apply(cell.Counters), Params: cell.Params}
					for _, v := range EvalAll(preds, perturbed) {
						if v.Status == StatusRefuted {
							return // this counter has teeth
						}
					}
				}
			}
			t.Errorf("no predicate refutes when %q is perturbed by %v in any matrix cell", name, teethDeltas)
		})
	}
}

// TestEveryPredicateCanFire proves each predicate is individually
// falsifiable: some single-counter perturbation of its own referenced
// counters makes *that* predicate refute in some matrix cell. This is
// the acceptance bar for adding a predicate to the catalogue — an
// assumption no fault can violate is not an assumption worth sweeping.
func TestEveryPredicateCanFire(t *testing.T) {
	ins := matrixInputs(t)
	for _, p := range Catalog() {
		t.Run(p.Name, func(t *testing.T) {
			for _, cell := range ins {
				for _, name := range p.Counters(cell) {
					if _, ok := cell.Counters[name]; !ok {
						continue
					}
					for _, delta := range teethDeltas {
						fault := Perturb{Counter: name, Delta: delta}
						perturbed := Input{Cell: cell.Cell, Counters: fault.Apply(cell.Counters), Params: cell.Params}
						if p.Eval(perturbed).Status == StatusRefuted {
							return // provably able to fire
						}
					}
				}
			}
			t.Errorf("%s: no single-counter perturbation fires it in any matrix cell", p.Name)
		})
	}
}
