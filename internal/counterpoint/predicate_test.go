package counterpoint

import (
	"math"
	"reflect"
	"testing"
)

func in(counters, params map[string]uint64) Input {
	return Input{Cell: "test", Counters: counters, Params: params}
}

func TestAlgebraRendering(t *testing.T) {
	cases := []struct {
		pred Predicate
		want string
	}{
		{GE("a", "", C("x.y"), C("z")), "x.y >= z"},
		{EQ("b", "", C("x"), Sum(C("a"), C("b"), L(3))), "x == a + b + 3"},
		{GE("c", "", Prod(P("width"), C("cycles")), C("uops")), "width * cycles >= uops"},
		{GE("d", "", Prod(Sum(C("a"), C("b")), L(2)), C("c")), "(a + b) * 2 >= c"},
		{GE("e", "", Glob("mem.dl1.accesses.*"), Glob("mem.dl1.misses.*")), "sum(mem.dl1.accesses.*) >= sum(mem.dl1.misses.*)"},
	}
	for _, c := range cases {
		if got := c.pred.Algebra(); got != c.want {
			t.Errorf("%s: Algebra() = %q, want %q", c.pred.Name, got, c.want)
		}
	}
}

func TestGlobRejectsBadPatterns(t *testing.T) {
	for _, pattern := range []string{"no.star", "mid*fix", "two.*.stars*"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Glob(%q) did not panic", pattern)
				}
			}()
			Glob(pattern)
		}()
	}
}

func TestEvalVerdicts(t *testing.T) {
	counters := map[string]uint64{
		"issued":         10,
		"committed":      7,
		"zero":           0,
		"stall.rob_full": 3,
		"stall.iq_full":  2,
	}
	params := map[string]uint64{"width": 4}

	cases := []struct {
		name  string
		pred  Predicate
		want  Status
		slack int64
	}{
		{"ge-holds", GE("p", "", C("issued"), C("committed")), StatusHolds, 3},
		{"ge-refuted", GE("p", "", C("committed"), C("issued")), StatusRefuted, -3},
		{"eq-holds", EQ("p", "", C("issued"), Sum(C("committed"), L(3))), StatusHolds, 0},
		{"eq-refuted-low", EQ("p", "", C("committed"), C("issued")), StatusRefuted, -3},
		{"eq-refuted-high", EQ("p", "", C("issued"), C("committed")), StatusRefuted, -3},
		{"param-product", GE("p", "", Prod(P("width"), C("committed")), C("issued")), StatusHolds, 18},
		{"glob-sum", GE("p", "", C("issued"), Glob("stall.*")), StatusHolds, 5},
		{"vacuous-missing-counter", GE("p", "", C("absent"), C("issued")), StatusVacuous, 0},
		{"vacuous-missing-param", GE("p", "", Prod(P("absent"), C("issued")), C("committed")), StatusVacuous, 0},
		{"vacuous-empty-glob", GE("p", "", C("issued"), Glob("nothing.*")), StatusVacuous, 0},
		// 0 >= 0 holds arithmetically but proves nothing: all-zero
		// witnesses downgrade to vacuous.
		{"vacuous-all-zero", GE("p", "", C("zero"), C("zero")), StatusVacuous, 0},
		// ...but a violation with zero-valued counters is still a
		// violation, never downgraded.
		{"refuted-beats-vacuous", GE("p", "", C("zero"), L(5)), StatusRefuted, -5},
	}
	for _, c := range cases {
		v := c.pred.Eval(in(counters, params))
		if v.Status != c.want {
			t.Errorf("%s: status %s, want %s", c.name, v.Status, c.want)
		}
		if v.Status != StatusVacuous && v.Slack != c.slack {
			t.Errorf("%s: slack %d, want %d", c.name, v.Slack, c.slack)
		}
	}
}

func TestEvalWitness(t *testing.T) {
	p := GE("p", "", Prod(P("width"), C("cycles")), Glob("stall.*"))
	v := p.Eval(in(map[string]uint64{"cycles": 100, "stall.a": 5, "stall.b": 7, "other": 1},
		map[string]uint64{"width": 4}))
	want := map[string]uint64{"param.width": 4, "cycles": 100, "stall.a": 5, "stall.b": 7}
	if !reflect.DeepEqual(v.Witness, want) {
		t.Errorf("witness %v, want %v", v.Witness, want)
	}
}

func TestCountersExpandsGlobs(t *testing.T) {
	p := GE("p", "", Sum(C("cycles"), C("missing")), Glob("stall.*"))
	got := p.Counters(in(map[string]uint64{"cycles": 1, "stall.b": 2, "stall.a": 3, "other": 4}, nil))
	want := []string{"cycles", "missing", "stall.a", "stall.b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Counters() = %v, want %v", got, want)
	}
}

func TestSlackSaturates(t *testing.T) {
	if got := slackOf(math.MaxUint64, 0); got != math.MaxInt64 {
		t.Errorf("slackOf(max, 0) = %d", got)
	}
	if got := slackOf(0, math.MaxUint64); got != math.MinInt64 {
		t.Errorf("slackOf(0, max) = %d", got)
	}
	if got := abs64(math.MinInt64); got != math.MaxInt64 {
		t.Errorf("abs64(min) = %d", got)
	}
}

func TestPerturbApply(t *testing.T) {
	orig := map[string]uint64{"a": 10, "b": 3}

	got := Perturb{Counter: "a", Delta: 5}.Apply(orig)
	if got["a"] != 15 || got["b"] != 3 {
		t.Errorf("positive delta: %v", got)
	}
	// A negative delta larger than the value clamps at zero.
	if got := (Perturb{Counter: "b", Delta: -100}).Apply(orig); got["b"] != 0 {
		t.Errorf("clamped delta: %v", got)
	}
	if got := (Perturb{Counter: "a", Delta: -4}).Apply(orig); got["a"] != 6 {
		t.Errorf("partial negative delta: %v", got)
	}
	// An absent counter stays absent — faults perturb real events, they
	// do not invent counters the machine never registered.
	if got := (Perturb{Counter: "ghost", Delta: 9}).Apply(orig); len(got) != 2 {
		t.Errorf("absent counter was invented: %v", got)
	}
	if orig["a"] != 10 || orig["b"] != 3 {
		t.Errorf("Apply modified its input: %v", orig)
	}
}

func TestCatalogWellFormed(t *testing.T) {
	preds := Catalog()
	if len(preds) < 10 {
		t.Fatalf("catalogue has %d predicates, want >= 10", len(preds))
	}
	seen := map[string]bool{}
	for _, p := range preds {
		if p.Name == "" || p.Desc == "" {
			t.Errorf("predicate %+v missing name or description", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate predicate name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Algebra() == "" {
			t.Errorf("%s: empty algebra", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	all := Catalog()
	if got, err := ByName(nil); err != nil || len(got) != len(all) {
		t.Fatalf("ByName(nil) = %d predicates, err %v; want full catalogue", len(got), err)
	}
	// Selection preserves catalogue order regardless of request order.
	got, err := ByName([]string{"issue-ge-commit", "rob-flow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "rob-flow" || got[1].Name != "issue-ge-commit" {
		t.Errorf("ByName out of catalogue order: %v", []string{got[0].Name, got[1].Name})
	}
	if _, err := ByName([]string{"rob-flow", "no-such-predicate"}); err == nil {
		t.Error("unknown predicate name did not error")
	}
}
