package counterpoint

import (
	"fmt"
	"math/rand"
	"sync"

	"vca/internal/progen"
	"vca/internal/simcache"
	"vca/internal/verify"
)

// EvalAll evaluates a predicate set against one input, in order.
func EvalAll(preds []Predicate, in Input) []Verdict {
	out := make([]Verdict, len(preds))
	for i, p := range preds {
		out[i] = p.Eval(in)
	}
	return out
}

// PlanSweep expands the refute-and-refine cross-product: every
// rename/window family × thread count × tight/roomy register file ×
// program profile, with each cell's program seed drawn sequentially
// from one RNG so the plan is a pure function of the base seed
// (worker-count independent, like verify.Plan). Cells the machine
// constructor would refuse are filtered out.
func PlanSweep(seed int64) []verify.Case {
	r := rand.New(rand.NewSource(seed))

	type family struct{ rename, window string }
	families := []family{
		{"conventional", "none"},
		{"conventional", "conv"},
		{"vca", "none"},
		{"vca", "ideal"},
		{"vca", "vca"},
	}

	profiles := []progen.Config{
		{Blocks: 10},
		{Blocks: 12, Loops: true, Aliasing: true},
		{Helpers: 3, Blocks: 8, Recursion: true, MaxRecDepth: 6},
	}

	var out []verify.Case
	for _, fam := range families {
		for _, threads := range []int{1, 2} {
			for _, roomy := range []bool{false, true} {
				regs := physRegsFor(fam.rename, fam.window, threads, roomy)
				for pi, prof := range profiles {
					gen := prof
					if fam.window != "none" && pi == 2 {
						gen.WindowLadder = 4 // stress the window stack on windowed machines
					}
					c := verify.Case{
						Machine: verify.MachineSpec{
							Rename:   fam.rename,
							Window:   fam.window,
							Threads:  threads,
							PhysRegs: regs,
						},
						Program: verify.ProgramSpec{Seed: r.Int63(), Gen: gen},
					}
					if !c.Machine.Constructs() {
						continue
					}
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// physRegsFor picks a tight or roomy register file for a machine
// family: tight sizes stress spill/eviction paths, roomy sizes the
// steady state. Conventional machines need the full per-thread logical
// file resident; VCA needs only its register cache.
func physRegsFor(rename, window string, threads int, roomy bool) int {
	switch {
	case rename == "vca":
		if roomy {
			return 192
		}
		return 40 + 8*threads
	case window == "conv":
		// The windowed logical file scales with PhysRegs (nwin resident
		// windows), so conventional-window SMT only constructs in the
		// single-resident-window band; single-thread machines can afford
		// a deeper resident stack.
		if threads >= 2 {
			if roomy {
				return 159
			}
			return 144
		}
		if roomy {
			return 352 // eight resident windows
		}
		return 160 // two resident windows
	default: // conventional flat
		if roomy {
			return 65*threads + 160
		}
		return 65*threads + 32
	}
}

// cellName renders a sweep cell's stable identifier.
func cellName(i int, c verify.Case) string {
	return fmt.Sprintf("sweep[%03d] %s/%s t%d r%d seed%d",
		i, c.Machine.Rename, c.Machine.Window, c.Machine.Threads, c.Machine.PhysRegs, c.Program.Seed)
}

// SweepOptions configures a refute-and-refine hunt.
type SweepOptions struct {
	Seed       int64    // plan seed (PlanSweep)
	Jobs       int      // parallel workers (0 = GOMAXPROCS)
	MaxCells   int      // truncate the plan to its first N cells (0 = all)
	Predicates []string // subset of catalogue names (nil = all)
	Fault      *Perturb // optional perturbation applied to every cell
	NoShrink   bool     // skip minimal-repro shrinking on refutation
	// Progress, when set, is called as cells complete (any order,
	// serialized): done cells so far, total, this cell's name and
	// refutation count.
	Progress func(done, total int, cell string, refuted int)
}

// Sweep plans and runs the cross-product, evaluates the predicate set
// against every cell's counter map, shrinks each refutation to a
// minimal (machine, program) repro with the verify shrinker, and
// returns the refinement report. The returned error aggregates
// harness-level failures (a cell that will not simulate), never a mere
// refutation — refutations are the report's payload.
func Sweep(opts SweepOptions) (*Report, error) {
	preds, err := ByName(opts.Predicates)
	if err != nil {
		return nil, err
	}
	cases := PlanSweep(opts.Seed)
	if opts.MaxCells > 0 && len(cases) > opts.MaxCells {
		cases = cases[:opts.MaxCells]
	}

	type cellResult struct {
		verdicts []Verdict
		refs     []Refutation
	}
	results := make([]cellResult, len(cases))

	var (
		mu   sync.Mutex
		done int
	)
	runner := simcache.Runner{Jobs: opts.Jobs, KeepGoing: true}
	runErr := runner.Run(len(cases), func(i int) error {
		c := cases[i]
		name := cellName(i, c)
		in, err := runCell(c, opts.Fault)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		in.Cell = name
		res := cellResult{verdicts: EvalAll(preds, in)}
		for pi, v := range res.verdicts {
			if v.Status != StatusRefuted {
				continue
			}
			ref := Refutation{
				Predicate: v.Predicate,
				Algebra:   preds[pi].Algebra(),
				Cell:      name,
				Slack:     v.Slack,
				Witness:   v.Witness,
				Machine:   &cases[i].Machine,
				Program:   &cases[i].Program,
			}
			if !opts.NoShrink {
				shrinkRefutation(&ref, c, preds[pi], opts.Fault)
			}
			res.refs = append(res.refs, ref)
		}
		mu.Lock()
		results[i] = res
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(cases), name, len(res.refs))
		}
		mu.Unlock()
		return nil
	})

	rep := NewReport("sweep", preds)
	rep.Seed = opts.Seed
	rep.Cells = len(cases)
	rep.Fault = opts.Fault
	for i, res := range results {
		name := cellName(i, cases[i])
		for _, v := range res.verdicts {
			rep.Observe(name, v)
		}
		for _, ref := range res.refs {
			rep.Add(ref)
		}
	}
	rep.Finish()
	return rep, runErr
}

// runCell measures one sweep cell: counter map plus parameters, with
// the optional fault applied to the counters before evaluation.
func runCell(c verify.Case, fault *Perturb) (Input, error) {
	counters, err := verify.RunCounters(c.Machine, c.Program)
	if err != nil {
		return Input{}, err
	}
	params, err := c.Machine.Params()
	if err != nil {
		return Input{}, err
	}
	if fault != nil {
		counters = fault.Apply(counters)
	}
	return Input{Counters: counters, Params: params}, nil
}

// shrinkRefutation greedily minimizes the refuting (machine, program)
// pair: a candidate shrink is kept only if the predicate still refutes
// on a re-measured run (fault re-applied, so injected refutations
// shrink too). The shrunk pair's own witness and slack are recorded.
func shrinkRefutation(ref *Refutation, c verify.Case, pred Predicate, fault *Perturb) {
	refutes := func(m verify.MachineSpec, p verify.ProgramSpec) bool {
		in, err := runCell(verify.Case{Machine: m, Program: p}, fault)
		if err != nil {
			return false // a cell that no longer simulates is not a repro
		}
		return pred.Eval(in).Status == StatusRefuted
	}
	sm, sp := verify.Shrink(c.Machine, c.Program, refutes)
	ref.Shrunk = &verify.Case{Machine: sm, Program: sp}
	if in, err := runCell(verify.Case{Machine: sm, Program: sp}, fault); err == nil {
		v := pred.Eval(in)
		ref.ShrunkSlack = v.Slack
		ref.ShrunkWitness = v.Witness
	}
}
