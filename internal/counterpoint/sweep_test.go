package counterpoint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vca/internal/verify"
)

var update = flag.Bool("update", false, "rewrite golden fixtures from this run")

// TestPlanSweepDeterministicAndConstructs pins the sweep plan: a seed
// fully determines the cell list, every planned machine constructs,
// and the cross-product is big enough to mean something.
func TestPlanSweepDeterministicAndConstructs(t *testing.T) {
	a, b := PlanSweep(7), PlanSweep(7)
	if len(a) == 0 {
		t.Fatal("empty sweep plan")
	}
	if len(a) < 40 {
		t.Errorf("sweep plan has %d cells, want >= 40", len(a))
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Error("same seed planned different sweeps")
	}
	for i, c := range a {
		if !c.Machine.Constructs() {
			t.Errorf("cell %d (%+v) does not construct", i, c.Machine)
		}
	}
	jc, _ := json.Marshal(PlanSweep(8))
	if bytes.Equal(ja, jc) {
		t.Error("different seeds planned identical sweeps")
	}
}

// TestSeededRefutationShrinksAndReportRoundTrips is the refute-and-
// refine loop end to end with an injected fault: inflating
// core.commit.uops must refute issue-ge-commit, each refutation must
// shrink to a repro no larger than the original that still refutes,
// and the refinement report must match the golden fixture byte for
// byte and survive a JSON round trip.
func TestSeededRefutationShrinksAndReportRoundTrips(t *testing.T) {
	fault := &Perturb{Counter: "core.commit.uops", Delta: 1 << 40}
	rep, err := Sweep(SweepOptions{
		Seed:       1,
		MaxCells:   2,
		Predicates: []string{"issue-ge-commit"},
		Fault:      fault,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !rep.AnyRefuted() {
		t.Fatal("injected commit-uops inflation did not refute issue-ge-commit")
	}
	if len(rep.Refutations) != 2 {
		t.Fatalf("got %d refutations, want one per cell (2)", len(rep.Refutations))
	}
	for _, ref := range rep.Refutations {
		if ref.Predicate != "issue-ge-commit" {
			t.Errorf("unexpected predicate %s refuted at %s", ref.Predicate, ref.Cell)
		}
		if ref.Shrunk == nil {
			t.Fatalf("%s: no shrunk repro", ref.Cell)
		}
		if ref.ShrunkSlack >= 0 {
			t.Errorf("%s: shrunk repro no longer refutes (slack %d)", ref.Cell, ref.ShrunkSlack)
		}
		orig, _ := json.Marshal(verify.Case{Machine: *ref.Machine, Program: *ref.Program})
		shrunk, _ := json.Marshal(*ref.Shrunk)
		if len(shrunk) > len(orig) {
			t.Errorf("%s: shrunk repro larger than original (%d > %d bytes)", ref.Cell, len(shrunk), len(orig))
		}
	}

	got, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "refutation_report.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("refinement report drifted from golden fixture %s (run with -update and review the diff)\ngot:\n%s", golden, got)
	}

	var back Report
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != ReportSchema || back.Source != "sweep" || back.Fault == nil ||
		back.Fault.Counter != fault.Counter || len(back.Refutations) != len(rep.Refutations) {
		t.Errorf("round-tripped report lost fields: %+v", back)
	}
	if back.Refutations[0].Shrunk == nil || back.Refutations[0].Witness == nil {
		t.Error("round-tripped refutation lost its shrunk repro or witness")
	}
}

// TestSweepCleanAtHead spot-checks the oracle on unperturbed cells: a
// slice of the real sweep must produce no refutations and a populated
// per-predicate summary.
func TestSweepCleanAtHead(t *testing.T) {
	rep, err := Sweep(SweepOptions{Seed: 1, MaxCells: 4, NoShrink: true})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if rep.AnyRefuted() {
		for _, ref := range rep.Refutations {
			t.Errorf("%s refuted at %s (slack %d, witness %v)", ref.Predicate, ref.Cell, ref.Slack, ref.Witness)
		}
	}
	if rep.Cells != 4 || len(rep.Predicates) != len(Catalog()) {
		t.Errorf("report shape: cells %d, predicates %d", rep.Cells, len(rep.Predicates))
	}
	holds := 0
	for _, s := range rep.Predicates {
		holds += s.Holds
	}
	if holds == 0 {
		t.Error("no predicate held anywhere — sweep inputs are empty?")
	}
}
