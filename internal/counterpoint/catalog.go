package counterpoint

import (
	"fmt"
	"slices"
)

// Catalog returns the full predicate catalogue in its stable,
// documented order (docs/VERIFICATION.md "Counter oracle" carries the
// same table). Each predicate is a microarchitectural assumption the
// simulator's design claims; the counter-oracle gate and the
// -counterpoint sweep exist to hunt for cells that refute one.
//
// The flow-conservation predicates deliberately use >= rather than ==:
// StopAfter runs freeze the machine mid-flight, so uops legitimately
// rest in the fetch queue, ROB, and IQ when the run ends. The ==
// predicates are reserved for relations with no in-flight residue
// (cache demand flow, ASTQ-issued traffic, singleflight accounting).
func Catalog() []Predicate {
	return []Predicate{
		// ---- pipeline flow conservation ----
		GE("rob-flow",
			"every uop that leaves the ROB was renamed into it: renamed covers committed + ROB-squashed (the remainder is still ROB-resident)",
			C("core.rename.uops"),
			Sum(C("core.commit.uops"), C("core.squash.rob_uops"))),
		GE("iq-flow",
			"every uop that leaves the IQ was dispatched into it: renamed covers issued + IQ-squashed (the remainder is still IQ-resident)",
			C("core.rename.uops"),
			Sum(C("core.issue.uops"), C("core.squash.iq_uops"))),
		GE("issue-ge-commit",
			"a uop must issue before it can retire, so issued uops bound committed uops",
			C("core.issue.uops"),
			C("core.commit.uops")),
		GE("fetch-flow",
			"rename consumes only what fetch or the window-trap injector produced; squashes can drain the fetch queue but never mint uops",
			Sum(C("core.fetch.insts"), C("core.rename.injected_uops"), C("core.squash.rob_uops")),
			Sum(C("core.rename.uops"), C("core.commit.squashed"))),
		GE("squash-rob-le-total",
			"uops squashed out of the ROB are a subset of all squashed uops (the rest died pre-rename in the fetch queue)",
			C("core.commit.squashed"),
			C("core.squash.rob_uops")),
		GE("squash-iq-le-rob",
			"every IQ purge victim also left the ROB: un-issued squashed uops are a subset of ROB-squashed uops",
			C("core.squash.rob_uops"),
			C("core.squash.iq_uops")),
		GE("commit-width-bound",
			"commit retires at most `width` uops per cycle, so width * cycles bounds total commit",
			Prod(P("width"), C("core.cycles")),
			C("core.commit.uops")),

		// ---- per-stage stall accounting ----
		GE("fetch-stall-bound",
			"fetch attributes at most one stall cause per cycle, so the cause decomposition is bounded by total cycles",
			C("core.cycles"),
			Glob("core.fetch.stall.*")),
		GE("rename-stall-bound",
			"rename attributes at most one stall cause per cycle (the stage stops at its first blocked uop)",
			C("core.cycles"),
			Glob("core.rename.stall.*")),
		GE("commit-stall-bound",
			"commit attributes at most one retired-nothing cause per cycle",
			C("core.cycles"),
			Glob("core.commit.stall.*")),
		GE("rename-structural-stalls",
			"the structural rename stall causes jointly cover every counted stall cycle (injected-uop stalls bump a cause without counting a stall cycle, so the causes over-cover)",
			Sum(C("core.rename.stall.rob_full"), C("core.rename.stall.iq_full"),
				C("core.rename.stall.lsq_full"), C("core.rename.stall.no_phys"),
				C("core.rename.stall.vca_ports"), C("core.rename.stall.vca_astq"),
				C("core.rename.stall.vca_table")),
			C("core.rename.stall_cycles")),

		// ---- branch predictor sanity ----
		GE("cond-mispredicts-bound",
			"a conditional branch can only mispredict if it was predicted",
			C("branch.cond_lookups"),
			C("branch.cond_mispredicts")),
		GE("mispredict-lookup-bound",
			"every resolved misprediction came from a predictor decision: a conditional lookup, a BTB probe, or a RAS prediction (direct jumps cannot mispredict)",
			Sum(C("branch.cond_lookups"), C("branch.btb_lookups"), C("branch.ras_predicts")),
			C("core.exec.mispredicts")),
		GE("predictor-probe-bound",
			"each fetched instruction makes at most one predictor probe — a conditional lookup, a BTB probe, or a RAS prediction — so fetched instructions bound total probes",
			C("core.fetch.insts"),
			Sum(C("branch.cond_lookups"), C("branch.btb_lookups"), C("branch.ras_predicts"))),

		// ---- memory hierarchy ----
		GE("il1-miss-le-access",
			"IL1 misses are a subset of IL1 accesses, summed over causes",
			Glob("mem.il1.accesses.*"),
			Glob("mem.il1.misses.*")),
		GE("dl1-miss-le-access",
			"DL1 misses are a subset of DL1 accesses, summed over causes",
			Glob("mem.dl1.accesses.*"),
			Glob("mem.dl1.misses.*")),
		GE("l2-miss-le-access",
			"L2 misses are a subset of L2 accesses, summed over causes",
			Glob("mem.l2.accesses.*"),
			Glob("mem.l2.misses.*")),
		EQ("l2-demand-flow",
			"the L2 sees exactly the L1 misses: every IL1/DL1 miss fills through the L2 and nothing else accesses it (writebacks are counted separately)",
			Glob("mem.l2.accesses.*"),
			Sum(Glob("mem.il1.misses.*"), Glob("mem.dl1.misses.*"))),
		EQ("il1-program-only",
			"instruction fetch is the only IL1 client: spill/fill and window-trap traffic is data-side by construction",
			Glob("mem.il1.accesses.*"),
			C("mem.il1.accesses.program")),

		// ---- VCA spill/fill and window-trap accounting ----
		EQ("spill-fill-dl1-traffic",
			"every ASTQ spill/fill issue performs exactly one DL1 access tagged spill_fill, and nothing else carries that tag",
			C("mem.dl1.accesses.spill_fill"),
			Sum(C("core.astq.spills_issued"), C("core.astq.fills_issued"))),
		GE("spills-ge-issued",
			"the renamer generates every spill the ASTQ issues (the difference is still ASTQ-pending at run end)",
			C("rename.vca.spills"),
			C("core.astq.spills_issued")),
		GE("fills-ge-issued",
			"the renamer generates every fill the ASTQ issues (the difference is still ASTQ-pending at run end)",
			C("rename.vca.fills"),
			C("core.astq.fills_issued")),
		GE("vca-free-flow",
			"a VCA physical register can only be freed by overwrite or rollback after being allocated or filled",
			Sum(C("rename.vca.dest_allocs"), C("rename.vca.fills")),
			Sum(C("rename.vca.overwrite_frees"), C("rename.vca.rollback_frees"))),
		GE("window-trap-inject-bound",
			"a conventional window trap injects at most window_slots spill/fill uops, so window_slots * traps bounds injected uops",
			Prod(P("window_slots"), C("core.window.traps")),
			C("core.rename.injected_uops")),
		GE("window-trap-dl1-bound",
			"window-trap DL1 traffic comes only from injected trap uops, each performing at most one access",
			C("core.rename.injected_uops"),
			C("mem.dl1.accesses.window_trap")),

		// ---- result-cache service accounting ----
		EQ("cache-misses-eq-simulations",
			"the result cache simulates exactly once per miss: singleflight dedups concurrent identical jobs onto one leader simulation",
			C("simcache.misses"),
			C("simcache.simulations")),
		GE("cache-stores-le-misses",
			"only a miss's simulation result is stored back, so stores are bounded by misses",
			C("simcache.misses"),
			C("simcache.stores")),
	}
}

// ByName resolves a list of predicate names against the catalogue,
// preserving catalogue order and rejecting unknown names.
func ByName(names []string) ([]Predicate, error) {
	if len(names) == 0 {
		return Catalog(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Predicate
	for _, p := range Catalog() {
		if want[p.Name] {
			out = append(out, p)
			delete(want, p.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want { //lint:maporder names are collected then sorted before use
			unknown = append(unknown, n)
		}
		slices.Sort(unknown)
		return nil, fmt.Errorf("counterpoint: unknown predicate(s) %q", unknown)
	}
	return out, nil
}
