// Package counterpoint turns the simulator's counter surface from
// passive logging into an active correctness oracle, after the
// CounterPoint methodology (PAPERS.md: "Using Hardware Event Counters
// to Refute and Refine Microarchitectural Assumptions"): a
// microarchitectural assumption is written down as a named
// counter-algebra predicate — a relation over one run's counter map —
// and then the config space is swept hunting for a cell that *refutes*
// it. A refutation is handed to the internal/verify greedy shrinker
// for a minimal reproduction, and the whole hunt is summarized in a
// machine-readable refinement report (report.go).
//
// The pieces, one file each:
//
//   - predicate.go — the term algebra (counters, config parameters,
//     literals, sums, products, glob-sums), the GE/EQ relations, the
//     three-valued verdict (holds / refuted / vacuous) with slack and
//     witness, and the Perturb fault-injection hook that proves each
//     predicate can fire.
//   - catalog.go — the named predicates themselves, grounded in the
//     flow identities the cycle-level invariant checker asserts
//     (docs/VERIFICATION.md "Counter oracle" documents the algebra).
//   - report.go — the refinement-report schema, pinned by a golden
//     fixture.
//   - sweep.go — the refute-and-refine driver over the internal/verify
//     config cross-product (cmd/experiments -counterpoint).
//
// Evaluation is pure: predicates read a finished run's counter map and
// never touch a live metrics.Registry, so the same catalogue evaluates
// matrix cells, sweep cells, and service snapshots alike.
package counterpoint

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Input is one evaluated cell: a finished run's counter map plus the
// configuration-derived parameters its predicates may reference (e.g.
// pipeline width, window slots). Cell names the run for reports.
type Input struct {
	Cell     string
	Counters map[string]uint64
	Params   map[string]uint64
}

// Term is one side (or sub-expression) of a predicate: it evaluates to
// a uint64 over an Input. Terms are built with C, P, L, Sum, Prod, and
// Glob; they render themselves as counter algebra via String.
type Term interface {
	// eval returns the term's value. ok=false means the term does not
	// apply to this input — a referenced counter or parameter is absent,
	// or a glob matched nothing — which makes the predicate vacuous.
	// Every counter and parameter read is recorded in wit (nil skips).
	eval(in Input, wit map[string]uint64) (v uint64, ok bool)
	// counters reports the concrete counter names the term reads from
	// this input (globs expand against the input's counter map).
	counters(in Input, add func(string))
	String() string
}

type ctrTerm struct{ name string }

func (t ctrTerm) eval(in Input, wit map[string]uint64) (uint64, bool) {
	v, ok := in.Counters[t.name]
	if ok && wit != nil {
		wit[t.name] = v
	}
	return v, ok
}
func (t ctrTerm) counters(in Input, add func(string)) { add(t.name) }
func (t ctrTerm) String() string                      { return t.name }

type paramTerm struct{ name string }

func (t paramTerm) eval(in Input, wit map[string]uint64) (uint64, bool) {
	v, ok := in.Params[t.name]
	if ok && wit != nil {
		wit["param."+t.name] = v
	}
	return v, ok
}
func (t paramTerm) counters(Input, func(string)) {}
func (t paramTerm) String() string               { return t.name }

type litTerm struct{ v uint64 }

func (t litTerm) eval(Input, map[string]uint64) (uint64, bool) { return t.v, true }
func (t litTerm) counters(Input, func(string))                 {}
func (t litTerm) String() string                               { return strconv.FormatUint(t.v, 10) }

type sumTerm struct{ terms []Term }

func (t sumTerm) eval(in Input, wit map[string]uint64) (uint64, bool) {
	var total uint64
	for _, s := range t.terms {
		v, ok := s.eval(in, wit)
		if !ok {
			return 0, false
		}
		total += v
	}
	return total, true
}
func (t sumTerm) counters(in Input, add func(string)) {
	for _, s := range t.terms {
		s.counters(in, add)
	}
}
func (t sumTerm) String() string {
	parts := make([]string, len(t.terms))
	for i, s := range t.terms {
		parts[i] = s.String()
	}
	return strings.Join(parts, " + ")
}

type prodTerm struct{ a, b Term }

func (t prodTerm) eval(in Input, wit map[string]uint64) (uint64, bool) {
	av, aok := t.a.eval(in, wit)
	bv, bok := t.b.eval(in, wit)
	if !aok || !bok {
		return 0, false
	}
	return av * bv, true
}
func (t prodTerm) counters(in Input, add func(string)) {
	t.a.counters(in, add)
	t.b.counters(in, add)
}
func (t prodTerm) String() string {
	return parens(t.a) + " * " + parens(t.b)
}

func parens(t Term) string {
	if _, isSum := t.(sumTerm); isSum {
		return "(" + t.String() + ")"
	}
	return t.String()
}

// globTerm sums every counter whose name matches a trailing-* pattern.
// A glob that matches nothing makes the predicate vacuous: the counter
// family is absent from this machine, so the relation says nothing.
type globTerm struct{ prefix string } // pattern was prefix + "*"

func (t globTerm) eval(in Input, wit map[string]uint64) (uint64, bool) {
	var total uint64
	matched := false
	for name, v := range in.Counters {
		if strings.HasPrefix(name, t.prefix) {
			matched = true
			total += v
			if wit != nil {
				wit[name] = v
			}
		}
	}
	return total, matched
}
func (t globTerm) counters(in Input, add func(string)) {
	//lint:maporder add only inserts into a set; Counters sorts before returning
	for name := range in.Counters {
		if strings.HasPrefix(name, t.prefix) {
			add(name)
		}
	}
}
func (t globTerm) String() string { return "sum(" + t.prefix + "*)" }

// C references a named counter; the predicate is vacuous on inputs that
// do not register it (e.g. rename.vca.* on a conventional machine).
func C(name string) Term { return ctrTerm{name} }

// P references a configuration parameter (Input.Params).
func P(name string) Term { return paramTerm{name} }

// L is a literal constant.
func L(v uint64) Term { return litTerm{v} }

// Sum adds terms.
func Sum(terms ...Term) Term { return sumTerm{terms} }

// Prod multiplies two terms (e.g. width * cycles).
func Prod(a, b Term) Term { return prodTerm{a, b} }

// Glob sums every counter matching a trailing-star pattern, e.g.
// "core.fetch.stall.*". Only a single trailing * is supported.
func Glob(pattern string) Term {
	if !strings.HasSuffix(pattern, "*") || strings.Count(pattern, "*") != 1 {
		panic(fmt.Sprintf("counterpoint: glob %q must end in a single *", pattern))
	}
	return globTerm{prefix: strings.TrimSuffix(pattern, "*")}
}

// relOp is the predicate's relation.
type relOp uint8

const (
	opGE relOp = iota // lhs >= rhs
	opEQ              // lhs == rhs
)

func (o relOp) String() string {
	if o == opEQ {
		return "=="
	}
	return ">="
}

// Predicate is one named counter-algebra assumption.
type Predicate struct {
	Name string // stable kebab-case identifier
	Desc string // the microarchitectural claim, in prose
	op   relOp
	lhs  Term
	rhs  Term
}

// GE declares the assumption lhs >= rhs.
func GE(name, desc string, lhs, rhs Term) Predicate {
	return Predicate{Name: name, Desc: desc, op: opGE, lhs: lhs, rhs: rhs}
}

// EQ declares the assumption lhs == rhs.
func EQ(name, desc string, lhs, rhs Term) Predicate {
	return Predicate{Name: name, Desc: desc, op: opEQ, lhs: lhs, rhs: rhs}
}

// Algebra renders the relation as counter algebra, e.g.
// "core.issue.uops >= core.commit.uops".
func (p Predicate) Algebra() string {
	return p.lhs.String() + " " + p.op.String() + " " + p.rhs.String()
}

// Counters returns the sorted concrete counter names the predicate
// reads from this input (glob patterns expanded against the counter
// map; plain references included whether or not the input has them).
func (p Predicate) Counters(in Input) []string {
	seen := make(map[string]struct{})
	add := func(n string) { seen[n] = struct{}{} }
	p.lhs.counters(in, add)
	p.rhs.counters(in, add)
	out := make([]string, 0, len(seen))
	for n := range seen { //lint:maporder names are collected then sorted before use
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Status is a verdict's three-valued outcome.
type Status string

// Verdict statuses. A predicate is vacuous when it does not apply to
// the input (a referenced counter, parameter, or glob family is
// absent) or when it holds with every counter witness at zero — a
// relation among events that never happened proves nothing. A refuted
// verdict is never downgraded to vacuous: zero witnesses that violate
// the relation are still a violation.
const (
	StatusHolds   Status = "holds"
	StatusRefuted Status = "refuted"
	StatusVacuous Status = "vacuous"
)

// Verdict is one predicate evaluated against one input. Slack is the
// margin to violation: for lhs >= rhs it is lhs-rhs (negative =
// refuted); for lhs == rhs it is -|lhs-rhs| (zero = holds). Witness
// records every counter and parameter value the evaluation read
// (parameters under a "param." prefix).
type Verdict struct {
	Predicate string            `json:"predicate"`
	Status    Status            `json:"status"`
	Slack     int64             `json:"slack"`
	Witness   map[string]uint64 `json:"witness,omitempty"`
}

// slackOf computes lv-rv saturated into int64.
func slackOf(lv, rv uint64) int64 {
	if lv >= rv {
		if d := lv - rv; d <= math.MaxInt64 {
			return int64(d)
		}
		return math.MaxInt64
	}
	if d := rv - lv; d <= math.MaxInt64 {
		return -int64(d)
	}
	return math.MinInt64
}

// Eval evaluates the predicate against one input.
func (p Predicate) Eval(in Input) Verdict {
	wit := make(map[string]uint64)
	v := Verdict{Predicate: p.Name, Witness: wit}
	lv, lok := p.lhs.eval(in, wit)
	rv, rok := p.rhs.eval(in, wit)
	if !lok || !rok {
		v.Status = StatusVacuous
		return v
	}
	switch p.op {
	case opEQ:
		v.Slack = -abs64(slackOf(lv, rv))
	default:
		v.Slack = slackOf(lv, rv)
	}
	switch {
	case v.Slack < 0:
		v.Status = StatusRefuted
	case p.engaged(in):
		v.Status = StatusHolds
	default:
		v.Status = StatusVacuous
	}
	return v
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return v
}

// engaged reports whether at least one counter the predicate reads is
// nonzero in the input — the evidence that the relation was actually
// exercised rather than trivially 0 >= 0.
func (p Predicate) engaged(in Input) bool {
	hot := false
	check := func(n string) {
		if in.Counters[n] > 0 {
			hot = true
		}
	}
	p.lhs.counters(in, check)
	p.rhs.counters(in, check)
	return hot
}

// Perturb is the fault-injection hook (the counter-surface analogue of
// the invariant checker's InjectLeak): it shifts one named counter by
// Delta before evaluation, so tests can prove a predicate fires when
// its relation is violated. A negative delta clamps at zero; a counter
// absent from the map stays absent.
type Perturb struct {
	Counter string `json:"counter"`
	Delta   int64  `json:"delta"`
}

// Apply returns a copy of counters with the perturbation applied. The
// input map is never modified.
func (f Perturb) Apply(counters map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(counters))
	for k, v := range counters {
		out[k] = v
	}
	v, ok := out[f.Counter]
	if !ok {
		return out
	}
	switch {
	case f.Delta >= 0:
		out[f.Counter] = v + uint64(f.Delta)
	case uint64(-f.Delta) >= v:
		out[f.Counter] = 0
	default:
		out[f.Counter] = v - uint64(-f.Delta)
	}
	return out
}
