package minic

import "fmt"

// checker resolves names, propagates types, and inserts implicit
// conversions (int<->float) so codegen sees a fully-typed tree.
type checker struct {
	unit   *unit
	funcs  map[string]*funcDecl
	scopes []map[string]*symbol
	fn     *funcDecl
	loops  int
}

func check(u *unit) error {
	c := &checker{unit: u, funcs: map[string]*funcDecl{}}
	global := map[string]*symbol{}
	for _, g := range u.globals {
		if _, dup := global[g.name]; dup {
			return fmt.Errorf("duplicate global %q", g.name)
		}
		global[g.name] = g
	}
	for _, f := range u.funcs {
		if _, dup := c.funcs[f.name]; dup {
			return fmt.Errorf("duplicate function %q", f.name)
		}
		if _, dup := global[f.name]; dup {
			return fmt.Errorf("%q is both a global and a function", f.name)
		}
		c.funcs[f.name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return fmt.Errorf("no main function")
	}
	c.scopes = []map[string]*symbol{global}
	for _, f := range u.funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(s *symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.name]; dup {
		return fmt.Errorf("duplicate variable %q", s.name)
	}
	top[s.name] = s
	return nil
}

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(f *funcDecl) error {
	c.fn = f
	c.push()
	defer c.pop()
	for _, p := range f.params {
		if p.ty.Kind == TypeArray || p.ty.Kind == TypeVoid {
			return fmt.Errorf("function %s: invalid parameter type %s", f.name, p.ty)
		}
		if err := c.define(p); err != nil {
			return fmt.Errorf("function %s: %v", f.name, err)
		}
	}
	return c.checkStmt(f.body)
}

func (c *checker) checkStmt(s stmt) error {
	switch s := s.(type) {
	case *blockStmt:
		c.push()
		defer c.pop()
		for _, inner := range s.stmts {
			if err := c.checkStmt(inner); err != nil {
				return err
			}
		}
		return nil

	case *declStmt:
		if s.sym.ty.Kind == TypeVoid {
			return c.errf(s.line, "cannot declare void variable %q", s.sym.name)
		}
		if s.init != nil {
			init, err := c.checkExpr(s.init)
			if err != nil {
				return err
			}
			s.init, err = c.convert(init, s.sym.ty, s.line)
			if err != nil {
				return err
			}
		}
		if err := c.define(s.sym); err != nil {
			return c.errf(s.line, "%v", err)
		}
		c.fn.locals = append(c.fn.locals, s.sym)
		return nil

	case *assignStmt:
		lhs, err := c.checkExpr(s.lhs)
		if err != nil {
			return err
		}
		if !isLvalue(lhs) {
			return c.errf(s.line, "left side of assignment is not assignable")
		}
		s.lhs = lhs
		rhs, err := c.checkExpr(s.rhs)
		if err != nil {
			return err
		}
		s.rhs, err = c.convert(rhs, lhs.exprType(), s.line)
		return err

	case *ifStmt:
		cond, err := c.checkExpr(s.cond)
		if err != nil {
			return err
		}
		s.cond, err = c.toCondition(cond, s.line)
		if err != nil {
			return err
		}
		if err := c.checkStmt(s.then); err != nil {
			return err
		}
		if s.els != nil {
			return c.checkStmt(s.els)
		}
		return nil

	case *whileStmt:
		cond, err := c.checkExpr(s.cond)
		if err != nil {
			return err
		}
		s.cond, err = c.toCondition(cond, s.line)
		if err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		if err := c.checkStmt(s.body); err != nil {
			return err
		}
		if s.post != nil {
			return c.checkStmt(s.post)
		}
		return nil

	case *returnStmt:
		if c.fn.ret.Kind == TypeVoid {
			if s.val != nil {
				return c.errf(s.line, "void function %s returns a value", c.fn.name)
			}
			return nil
		}
		if s.val == nil {
			return c.errf(s.line, "function %s must return %s", c.fn.name, c.fn.ret)
		}
		val, err := c.checkExpr(s.val)
		if err != nil {
			return err
		}
		s.val, err = c.convert(val, c.fn.ret, s.line)
		return err

	case *breakStmt:
		if c.loops == 0 {
			return c.errf(s.line, "break outside loop")
		}
		return nil

	case *continueStmt:
		if c.loops == 0 {
			return c.errf(s.line, "continue outside loop")
		}
		return nil

	case *exprStmt:
		x, err := c.checkExpr(s.x)
		if err != nil {
			return err
		}
		s.x = x
		return nil

	case *printStmt:
		if s.arg == nil {
			return nil
		}
		arg, err := c.checkExpr(s.arg)
		if err != nil {
			return err
		}
		want := tyInt
		if s.kind == "float" {
			want = tyFloat
		}
		s.arg, err = c.convert(arg, want, s.line)
		return err
	}
	return fmt.Errorf("checker: unknown statement %T", s)
}

func (c *checker) errf(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func isLvalue(e expr) bool {
	switch e := e.(type) {
	case *varRef:
		return e.ty.Kind != TypeArray
	case *indexExpr:
		return true
	case *unop:
		return e.op == "*"
	}
	return false
}

// convert coerces e to want, inserting casts for int<->float and treating
// char as int in registers.
func (c *checker) convert(e expr, want *Type, line int) (expr, error) {
	have := e.exprType()
	switch {
	case sameType(have, want):
		return e, nil
	case have.isScalarInt() && want.isScalarInt():
		// int/char/pointer interconvert freely in registers (narrowing
		// happens at stores).
		return e, nil
	case have.isScalarInt() && want.isFloat():
		return &castExpr{exprBase: exprBase{ty: tyFloat, line: line}, x: e}, nil
	case have.isFloat() && want.isScalarInt():
		return &castExpr{exprBase: exprBase{ty: tyInt, line: line}, x: e}, nil
	case have.Kind == TypeArray && want.Kind == TypePtr && sameType(have.Elem, want.Elem):
		return e, nil // decay
	}
	return nil, c.errf(line, "cannot convert %s to %s", have, want)
}

// toCondition coerces an expression to an integer truth value.
func (c *checker) toCondition(e expr, line int) (expr, error) {
	t := e.exprType()
	switch {
	case t.isScalarInt():
		return e, nil
	case t.isFloat():
		// f != 0.0
		z := &floatLit{exprBase: exprBase{ty: tyFloat, line: line}}
		return &binop{exprBase: exprBase{ty: tyInt, line: line}, op: "!=", l: e, r: z}, nil
	}
	return nil, c.errf(line, "%s is not a condition", t)
}

func (c *checker) checkExpr(e expr) (expr, error) {
	switch e := e.(type) {
	case *intLit:
		e.ty = tyInt
		return e, nil

	case *floatLit:
		e.ty = tyFloat
		return e, nil

	case *varRef:
		sym := c.lookup(e.name)
		if sym == nil {
			return nil, c.errf(e.line, "undefined variable %q", e.name)
		}
		e.sym = sym
		e.ty = sym.ty
		return e, nil

	case *castExpr:
		x, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		e.x = x
		xt := x.exprType()
		if !xt.isScalarInt() && !xt.isFloat() {
			return nil, c.errf(e.line, "cannot cast %s", xt)
		}
		return e, nil

	case *unop:
		x, err := c.checkExpr(e.x)
		if err != nil {
			return nil, err
		}
		e.x = x
		xt := x.exprType()
		switch e.op {
		case "-":
			if !xt.isScalarInt() && !xt.isFloat() {
				return nil, c.errf(e.line, "cannot negate %s", xt)
			}
			e.ty = xt
			if xt.Kind == TypeChar {
				e.ty = tyInt
			}
		case "!":
			cond, err := c.toCondition(x, e.line)
			if err != nil {
				return nil, err
			}
			e.x = cond
			e.ty = tyInt
		case "*":
			base := xt
			if base.Kind == TypeArray {
				base = ptrTo(base.Elem)
			}
			if base.Kind != TypePtr {
				return nil, c.errf(e.line, "cannot dereference %s", xt)
			}
			e.ty = base.Elem
		case "&":
			lv, ok := x.(*varRef)
			if !ok {
				if ix, isIdx := x.(*indexExpr); isIdx {
					e.ty = ptrTo(ix.ty)
					return e, nil
				}
				return nil, c.errf(e.line, "can only take the address of a variable or element")
			}
			lv.sym.addrTaken = true
			t := lv.ty
			if t.Kind == TypeArray {
				t = t.Elem
			}
			e.ty = ptrTo(t)
		default:
			return nil, c.errf(e.line, "unknown unary operator %q", e.op)
		}
		return e, nil

	case *indexExpr:
		base, err := c.checkExpr(e.base)
		if err != nil {
			return nil, err
		}
		idx, err := c.checkExpr(e.idx)
		if err != nil {
			return nil, err
		}
		e.base, e.idx = base, idx
		bt := base.exprType()
		if bt.Kind != TypeArray && bt.Kind != TypePtr {
			return nil, c.errf(e.line, "cannot index %s", bt)
		}
		if !idx.exprType().isScalarInt() {
			return nil, c.errf(e.line, "array index must be integral")
		}
		e.ty = bt.Elem
		return e, nil

	case *callExpr:
		fn, ok := c.funcs[e.name]
		if !ok {
			return nil, c.errf(e.line, "undefined function %q", e.name)
		}
		if len(e.args) != len(fn.params) {
			return nil, c.errf(e.line, "%s wants %d arguments, got %d", e.name, len(fn.params), len(e.args))
		}
		for i, a := range e.args {
			arg, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			e.args[i], err = c.convert(arg, fn.params[i].ty, e.line)
			if err != nil {
				return nil, err
			}
		}
		e.fn = fn
		e.ty = fn.ret
		return e, nil

	case *binop:
		l, err := c.checkExpr(e.l)
		if err != nil {
			return nil, err
		}
		r, err := c.checkExpr(e.r)
		if err != nil {
			return nil, err
		}
		e.l, e.r = l, r
		lt, rt := l.exprType(), r.exprType()

		switch e.op {
		case "&&", "||":
			e.l, err = c.toCondition(l, e.line)
			if err != nil {
				return nil, err
			}
			e.r, err = c.toCondition(r, e.line)
			if err != nil {
				return nil, err
			}
			e.ty = tyInt
			return e, nil

		case "==", "!=", "<", "<=", ">", ">=":
			if lt.isFloat() || rt.isFloat() {
				if e.l, err = c.convert(l, tyFloat, e.line); err != nil {
					return nil, err
				}
				if e.r, err = c.convert(r, tyFloat, e.line); err != nil {
					return nil, err
				}
			} else if !lt.isScalarInt() || !rt.isScalarInt() {
				return nil, c.errf(e.line, "cannot compare %s and %s", lt, rt)
			}
			e.ty = tyInt
			return e, nil

		case "%", "&", "|", "^", "<<", ">>":
			if !lt.isScalarInt() || !rt.isScalarInt() {
				return nil, c.errf(e.line, "%q needs integer operands", e.op)
			}
			e.ty = tyInt
			return e, nil

		case "+", "-":
			// Pointer arithmetic: ptr ± int.
			base := decay(lt)
			if base.Kind == TypePtr && rt.isScalarInt() && rt.Kind != TypePtr {
				e.ty = base
				return e, nil
			}
			fallthrough
		case "*", "/":
			if lt.isFloat() || rt.isFloat() {
				if e.l, err = c.convert(l, tyFloat, e.line); err != nil {
					return nil, err
				}
				if e.r, err = c.convert(r, tyFloat, e.line); err != nil {
					return nil, err
				}
				e.ty = tyFloat
				return e, nil
			}
			if !lt.isScalarInt() || !rt.isScalarInt() {
				return nil, c.errf(e.line, "cannot apply %q to %s and %s", e.op, lt, rt)
			}
			e.ty = tyInt
			return e, nil
		}
		return nil, c.errf(e.line, "unknown operator %q", e.op)
	}
	return nil, fmt.Errorf("checker: unknown expression %T", e)
}

// decay converts array types to pointers for expression purposes.
func decay(t *Type) *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}
