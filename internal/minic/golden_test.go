package minic

import "testing"

// Golden algorithm suite: classic programs exercising the whole language
// surface, each verified under both ABIs against known-correct answers.

func TestGoldenQuicksort(t *testing.T) {
	runBoth(t, `
int a[64];
int seed = 7;
int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed % 1000;
}
void qsort(int lo, int hi) {
	if (lo >= hi) { return; }
	int pivot = a[(lo + hi) / 2];
	int i = lo;
	int j = hi;
	while (i <= j) {
		while (a[i] < pivot) { i = i + 1; }
		while (a[j] > pivot) { j = j - 1; }
		if (i <= j) {
			int t = a[i]; a[i] = a[j]; a[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	qsort(lo, j);
	qsort(i, hi);
}
int main() {
	int i;
	for (i = 0; i < 64; i = i + 1) { a[i] = rnd(); }
	qsort(0, 63);
	int sorted = 1;
	for (i = 1; i < 64; i = i + 1) {
		if (a[i - 1] > a[i]) { sorted = 0; }
	}
	print_int(sorted);
	print_int(a[0] <= a[63]);
	return 0;
}`, "11")
}

func TestGoldenSieve(t *testing.T) {
	runBoth(t, `
char comp[1000];
int main() {
	int count = 0;
	int i;
	for (i = 2; i < 1000; i = i + 1) {
		if (!comp[i]) {
			count = count + 1;
			int j;
			for (j = i + i; j < 1000; j = j + i) { comp[j] = 1; }
		}
	}
	print_int(count);   // 168 primes below 1000
	return 0;
}`, "168")
}

func TestGoldenGCD(t *testing.T) {
	runBoth(t, `
int gcd(int x, int y) {
	if (y == 0) { return x; }
	return gcd(y, x % y);
}
int main() {
	print_int(gcd(1071, 462));  // 21
	print_int(gcd(17, 5));      // 1
	print_int(gcd(100, 100));   // 100
	return 0;
}`, "211100")
}

func TestGoldenMatMul(t *testing.T) {
	runBoth(t, `
int a[16];
int b[16];
int c[16];
int main() {
	int i;
	for (i = 0; i < 16; i = i + 1) { a[i] = i; b[i] = 16 - i; }
	int r;
	for (r = 0; r < 4; r = r + 1) {
		int col;
		for (col = 0; col < 4; col = col + 1) {
			int s = 0;
			int k;
			for (k = 0; k < 4; k = k + 1) {
				s = s + a[r * 4 + k] * b[k * 4 + col];
			}
			c[r * 4 + col] = s;
		}
	}
	int sum = 0;
	for (i = 0; i < 16; i = i + 1) { sum = sum + c[i]; }
	print_int(sum);
	return 0;
}`, "3760")
}

func TestGoldenNewtonSqrt(t *testing.T) {
	runBoth(t, `
float nsqrt(float v) {
	float g = v;
	int i;
	for (i = 0; i < 20; i = i + 1) { g = 0.5 * (g + v / g); }
	return g;
}
int main() {
	print_int((int)(nsqrt(2.0) * 100000.0));  // 141421
	print_str(" ");
	print_int((int)nsqrt(144.0));             // 12
	return 0;
}`, "141421 12")
}

func TestGoldenStringReverse(t *testing.T) {
	runBoth(t, `
char buf[32];
int strlen_(char* s) {
	int n = 0;
	while (s[n] != 0) { n = n + 1; }
	return n;
}
void reverse(char* s, int n) {
	int i = 0;
	int j = n - 1;
	while (i < j) {
		char t = s[i];
		s[i] = s[j];
		s[j] = t;
		i = i + 1;
		j = j - 1;
	}
}
int main() {
	buf[0] = 'h'; buf[1] = 'e'; buf[2] = 'l'; buf[3] = 'l'; buf[4] = 'o';
	int n = strlen_(buf);
	reverse(buf, n);
	int i;
	for (i = 0; i < n; i = i + 1) { print_char(buf[i]); }
	return 0;
}`, "olleh")
}

func TestGoldenCollatz(t *testing.T) {
	runBoth(t, `
int steps(int n) {
	int c = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		c = c + 1;
	}
	return c;
}
int main() {
	print_int(steps(27));  // 111
	return 0;
}`, "111")
}

func TestGoldenAckermannSmall(t *testing.T) {
	// Deep mutual recursion stresses windows hard.
	runBoth(t, `
int ack(int m, int n) {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	print_int(ack(2, 3));  // 9
	print_int(ack(3, 3));  // 61
	return 0;
}`, "961")
}

func TestGoldenBinarySearch(t *testing.T) {
	runBoth(t, `
int a[128];
int bsearch_(int key) {
	int lo = 0;
	int hi = 127;
	while (lo <= hi) {
		int mid = (lo + hi) / 2;
		if (a[mid] == key) { return mid; }
		if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
	}
	return -1;
}
int main() {
	int i;
	for (i = 0; i < 128; i = i + 1) { a[i] = i * 3; }
	print_int(bsearch_(99));   // 33
	print_int(bsearch_(100));  // -1
	print_int(bsearch_(0));    // 0
	return 0;
}`, "33-10")
}

func TestGoldenFixedPointTrig(t *testing.T) {
	// Taylor series sine — float-heavy with conversions.
	runBoth(t, `
float sine(float x) {
	float term = x;
	float sum = x;
	int i;
	for (i = 1; i <= 9; i = i + 1) {
		float k = (float)(2 * i) * (float)(2 * i + 1);
		term = 0.0 - term * x * x / k;
		sum = sum + term;
	}
	return sum;
}
int main() {
	print_int((int)(sine(1.5707963) * 10000.0));   // 9999 (sin pi/2, truncated)
	print_str(" ");
	print_int((int)(sine(0.5235987) * 10000.0));   // ~5000 (sin pi/6)
	return 0;
}`, "9999 4999")
}
