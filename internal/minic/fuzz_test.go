package minic

import (
	"testing"
	"unicode/utf8"

	"vca/internal/emu"
)

// FuzzCompile feeds arbitrary source through the full mini-C pipeline
// under both ABIs. The contract under test: the compiler never panics;
// whenever a program compiles it also assembles (compiler output is
// always well-formed assembly); and when the flat build runs to a clean
// exit within budget, the windowed build exists, exits, and produces
// identical output — the dual-ABI equivalence every downstream
// experiment depends on.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"int main() { print_int(42); return 0; }",
		// Recursion and multi-argument calls (windowed path stress).
		"int ack(int m, int n) { if (m == 0) { return n + 1; } if (n == 0) { return ack(m - 1, 1); } return ack(m - 1, ack(m, n - 1)); }\n" +
			"int main() { print_int(ack(2, 3)); return 0; }",
		// Globals, arrays, chars, loops, division.
		"int g = 7;\nchar buf[32];\nint main() { int i; for (i = 0; i < 32; i = i + 1) { buf[i] = i * g; }\n" +
			"int s = 0; while (g > 0) { s = s + buf[g]; g = g - 1; } print_int(s / 3); return 0; }",
		// Nested conditionals and logical operators.
		"int f(int x) { if (x > 3 && x < 10 || x == 0) { return x * 2; } return x - 1; }\n" +
			"int main() { int i; int t = 0; for (i = 0; i < 12; i = i + 1) { t = t + f(i); } print_int(t); return 0; }",
		// Near-misses for the parser and checker error paths.
		"int main() { return 0 }",
		"int main() { undeclared = 1; return 0; }",
		"int f(int x) { return x; } int f(int y) { return y; }",
		"int main() { int a[\n}",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) || len(src) > 1<<16 {
			t.Skip()
		}
		flat, errFlat := Build("fuzz", src, ABIFlat)
		win, errWin := Build("fuzz", src, ABIWindowed)
		if (errFlat == nil) != (errWin == nil) {
			t.Fatalf("ABIs disagree on validity: flat err %v, windowed err %v\n%s", errFlat, errWin, src)
		}
		if errFlat != nil {
			return
		}

		mf := emu.New(flat, emu.Config{Windowed: false, MaxInsts: 2_000_000})
		reasonF, errF := mf.Run()
		if errF != nil || reasonF != emu.StopExited {
			return // runtime fault or budget exhausted: nothing to compare
		}
		mw := emu.New(win, emu.Config{Windowed: true, MaxInsts: 20_000_000})
		reasonW, errW := mw.Run()
		if errW != nil || reasonW != emu.StopExited {
			t.Fatalf("flat build exits cleanly but windowed does not: %v (%v)\n%s", errW, reasonW, src)
		}
		if fo, wo := mf.Output.String(), mw.Output.String(); fo != wo {
			t.Fatalf("ABI output divergence: flat %q, windowed %q\n%s", fo, wo, src)
		}
	})
}
