package minic

import (
	"fmt"

	"vca/internal/asm"
	"vca/internal/program"
)

// Compile translates minic source to assembly text under the given ABI.
func Compile(src string, abi ABI) (string, error) {
	u, err := parse(src)
	if err != nil {
		return "", fmt.Errorf("minic: %w", err)
	}
	if err := check(u); err != nil {
		return "", fmt.Errorf("minic: %w", err)
	}
	text, err := generate(u, abi)
	if err != nil {
		return "", err
	}
	return text, nil
}

// Build compiles and assembles source into a loadable program. The
// resulting image must run on a machine whose window support matches the
// ABI (emu.Config.Windowed / the core's window model).
func Build(name, src string, abi ABI) (*program.Program, error) {
	text, err := Compile(src, abi)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p, err := asm.AssembleWith(text, asm.Options{Name: fmt.Sprintf("%s.%s", name, abi)})
	if err != nil {
		return nil, fmt.Errorf("%s (%s ABI): assembling compiler output: %w", name, abi, err)
	}
	return p, nil
}
