package minic

import (
	"fmt"
	"strings"
	"testing"

	"vca/internal/emu"
)

// runBoth compiles src under both ABIs, runs each on the matching
// functional machine, checks both produce `want`, and returns the two
// machines for further stat checks (flat, windowed).
func runBoth(t *testing.T, src, want string) (*emu.Machine, *emu.Machine) {
	t.Helper()
	var machines [2]*emu.Machine
	for i, abi := range []ABI{ABIFlat, ABIWindowed} {
		prog, err := Build("test", src, abi)
		if err != nil {
			t.Fatalf("%v build: %v", abi, err)
		}
		m := emu.New(prog, emu.Config{Windowed: abi == ABIWindowed, MaxInsts: 50_000_000})
		reason, err := m.Run()
		if err != nil {
			t.Fatalf("%v run: %v", abi, err)
		}
		if reason != emu.StopExited {
			t.Fatalf("%v: stopped for %v", abi, reason)
		}
		if got := m.Output.String(); got != want {
			t.Errorf("%v ABI output %q, want %q", abi, got, want)
		}
		machines[i] = m
	}
	return machines[0], machines[1]
}

func TestHelloArithmetic(t *testing.T) {
	runBoth(t, `
int main() {
	int x = 6;
	int y = 7;
	print_int(x * y);
	print_str("\n");
	return 0;
}`, "42\n")
}

func TestOperatorZoo(t *testing.T) {
	runBoth(t, `
int main() {
	print_int(17 / 5); print_str(" ");
	print_int(17 % 5); print_str(" ");
	print_int(-17 / 5); print_str(" ");
	print_int(6 & 3); print_str(" ");
	print_int(6 | 3); print_str(" ");
	print_int(6 ^ 3); print_str(" ");
	print_int(1 << 10); print_str(" ");
	print_int(-16 >> 2); print_str(" ");
	print_int(3 < 4); print_int(4 < 3); print_int(3 <= 3);
	print_int(5 > 4); print_int(4 >= 5); print_int(7 == 7); print_int(7 != 7);
	return 0;
}`, "3 2 -3 2 7 5 1024 -4 1011010")
}

func TestControlFlow(t *testing.T) {
	runBoth(t, `
int main() {
	int i;
	int total = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i == 9) { break; }
		total = total + i;   // 1+3+5+7 = 16
	}
	while (total > 10) { total = total - 3; }
	print_int(total);  // 16-3-3 = 10
	return 0;
}`, "10")
}

func TestShortCircuitConditions(t *testing.T) {
	// a[10] would read out of bounds; the guard must short-circuit in
	// condition position.
	runBoth(t, `
int a[10];
int hits;
int probe(int i) { hits = hits + 1; return a[i]; }
int main() {
	int i = 10;
	if (i < 10 && probe(i) == 99) { print_str("bad"); }
	if (i >= 10 || probe(i) == 99) { print_str("ok"); }
	print_int(hits);
	int f = 0;
	if (!(f != 0) && (1 || probe(0))) { print_str("!"); }
	return 0;
}`, "ok0!")
}

func TestRecursionAndCallsInExpressions(t *testing.T) {
	flat, win := runBoth(t, `
int fib(int n) {
	if (n <= 1) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() {
	print_int(fib(15));
	return 0;
}`, "610")
	// The windowed binary must be shorter and do less memory traffic.
	if win.Stats.Insts >= flat.Stats.Insts {
		t.Errorf("windowed insts %d >= flat %d", win.Stats.Insts, flat.Stats.Insts)
	}
	if win.Stats.Loads+win.Stats.Stores >= flat.Stats.Loads+flat.Stats.Stores {
		t.Errorf("windowed memory ops %d >= flat %d",
			win.Stats.Loads+win.Stats.Stores, flat.Stats.Loads+flat.Stats.Stores)
	}
	if win.Stats.CondBranches != flat.Stats.CondBranches {
		t.Errorf("conditional branch counts differ: %d vs %d",
			win.Stats.CondBranches, flat.Stats.CondBranches)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	runBoth(t, `
int g = 41;
int arr[8];
float fg = 2.5;
int main() {
	g = g + 1;
	int i;
	for (i = 0; i < 8; i = i + 1) { arr[i] = i * i; }
	print_int(g); print_str(" ");
	print_int(arr[7]); print_str(" ");
	print_float(fg * 2.0);
	return 0;
}`, "42 49 5")
}

func TestPointers(t *testing.T) {
	runBoth(t, `
int data[4];
int sum(int* p, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i = i + 1) { s = s + *(p + i); }
	return s;
}
int main() {
	data[0] = 10; data[1] = 20; data[2] = 30; data[3] = 40;
	int* p = data;
	p[1] = 25;
	print_int(sum(data, 4));
	int x = 5;
	int* q = &x;
	*q = 6;
	print_int(x);
	return 0;
}`, "1056")
}

func TestCharArraysAndStrings(t *testing.T) {
	runBoth(t, `
char buf[16];
int main() {
	int i;
	for (i = 0; i < 5; i = i + 1) { buf[i] = 'a' + i; }
	for (i = 0; i < 5; i = i + 1) { print_char(buf[i]); }
	char c = 'Z';
	print_char(c);
	print_char(10);
	return 0;
}`, "abcdeZ\n")
}

func TestFloats(t *testing.T) {
	runBoth(t, `
float half(float x) { return x / 2.0; }
int main() {
	float a = 3.0;
	float b = half(a) + 0.25;   // 1.75
	print_float(b); print_str(" ");
	print_int((int)(b * 4.0));  // 7
	print_str(" ");
	float c = (float)10 / 4.0;
	print_float(c);
	print_str(" ");
	print_int(b < a);
	print_int(a <= 3.0);
	print_int(a != 3.0);
	return 0;
}`, "1.75 7 2.5 110")
}

func TestDeepExpressionSpills(t *testing.T) {
	// Depth > 5 forces integer temp spills.
	runBoth(t, `
int main() {
	int r = (1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + 9))))))));
	print_int(r);
	print_int((1*2) + ((3*4) + ((5*6) + ((7*8) + (9*10)))));  // 190
	return 0;
}`, "45190")
}

func TestManyLocalsOverflowToStack(t *testing.T) {
	// 20 int locals exceed the 16 s-registers: some spill to the frame.
	src := "int main() {\n"
	sum := []string{}
	for i := 0; i < 20; i++ {
		src += lf("\tint v%d = %d;\n", i, i+1)
		sum = append(sum, lf("v%d", i))
	}
	src += "\tprint_int(" + strings.Join(sum, " + ") + ");\n\treturn 0;\n}"
	runBoth(t, src, "210") // sum 1..20
}

func lf(f string, a ...any) string { return fmt.Sprintf(f, a...) }

func TestCallsPreserveTemporaries(t *testing.T) {
	// A value live across a call must survive (temp-save machinery).
	flat, win := runBoth(t, `
int id(int x) { return x; }
int main() {
	int a = 100;
	print_int(a + id(1) + a * id(2));  // 100+1+200 = 301
	print_int(id(id(id(5))));
	return 0;
}`, "3015")
	_ = flat
	_ = win
}

func TestNestedCallsManyArgs(t *testing.T) {
	runBoth(t, `
int six(int a, int b, int c, int d, int e, int f) {
	return a + 10*b + 100*c + 1000*d + 10000*e + 100000*f;
}
int main() {
	print_int(six(1, 2, 3, 4, 5, 6));
	return 0;
}`, "654321")
}

func TestMixedFloatIntArgs(t *testing.T) {
	runBoth(t, `
float mix(int a, float x, int b, float y) {
	return (float)(a + b) + x * y;
}
int main() {
	print_float(mix(1, 2.0, 3, 4.0));  // 4 + 8 = 12
	return 0;
}`, "12")
}

func TestVoidFunctions(t *testing.T) {
	runBoth(t, `
int counter;
void bump(int by) { counter = counter + by; }
int main() {
	bump(3); bump(4);
	print_int(counter);
	return 0;
}`, "7")
}

func TestLeafParamInArgRegs(t *testing.T) {
	// Leaf functions must not touch the stack at all (flat ABI included).
	text, err := Compile(`
int leafsum(int a, int b) { int c = a + b; return c * 2; }
int main() { print_int(leafsum(2, 3)); return 0; }
`, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the leafsum body: between "leafsum:" and the next label of main.
	i := strings.Index(text, "leafsum:")
	j := strings.Index(text[i:], "main:")
	body := text[i : i+j]
	for _, op := range []string{"stq", "ldq", "subi sp", "addi sp"} {
		if strings.Contains(body, op) {
			t.Errorf("leaf function touches memory/stack (%s):\n%s", op, body)
		}
	}
	runBoth(t, `
int leafsum(int a, int b) { int c = a + b; return c * 2; }
int main() { print_int(leafsum(2, 3)); return 0; }
`, "10")
}

func TestWindowedEpilogueUsesS15(t *testing.T) {
	text, err := Compile(`
int helper() { return 1; }
int outer() { return helper() + 1; }
int main() { return outer(); }
`, ABIWindowed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "mov s15, ra") {
		t.Error("windowed non-leaf should stash ra in s15")
	}
	if !strings.Contains(text, "ret (s15)") {
		t.Error("windowed non-leaf should return via s15")
	}
	if strings.Contains(text, "stq ra") {
		t.Error("windowed ABI must not save ra to memory")
	}
}

func TestLocalArrays(t *testing.T) {
	runBoth(t, `
int main() {
	int tmp[8];
	int i;
	for (i = 0; i < 8; i = i + 1) { tmp[i] = i; }
	int s = 0;
	for (i = 0; i < 8; i = i + 1) { s = s + tmp[i]; }
	print_int(s);
	return 0;
}`, "28")
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":        `int f() { return 0; }`,
		"undefined var":  `int main() { return x; }`,
		"undefined fn":   `int main() { return g(); }`,
		"dup global":     "int g; int g; int main() { return 0; }",
		"dup local":      "int main() { int a; int a; return 0; }",
		"arg count":      "int f(int a) { return a; } int main() { return f(); }",
		"bad types":      `int main() { int a[3]; float* p = a; return 0; }`,
		"void var":       "int main() { void v; return 0; }",
		"break outside":  "int main() { break; return 0; }",
		"assign rvalue":  "int main() { 3 = 4; return 0; }",
		"deref int":      "int main() { int x; return *x; }",
		"index scalar":   "int main() { int x; return x[0]; }",
		"void ret value": "void f() { return 3; } int main() { f(); return 0; }",
		"missing ret":    "int f() { return; } int main() { return f(); }",
		"lex error":      "int main() { return `; }",
		"parse error":    "int main() { if return; }",
	}
	for name, src := range cases {
		if _, err := Compile(src, ABIFlat); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	src := `
float a = 1.5;
int main() {
	print_float(a + 2.5 + 1.5);
	print_str("x"); print_str("y");
	return 0;
}`
	t1, err := Compile(src, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Compile(src, ABIFlat)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("compiler output is not deterministic")
	}
	runBoth(t, src, "5.5xy")
}

func TestComments(t *testing.T) {
	runBoth(t, `
// line comment
/* block
   comment */
int main() { /* inline */ print_int(1); return 0; } // trailing
`, "1")
}

func TestCharSemantics(t *testing.T) {
	runBoth(t, `
char g;
int main() {
	g = 300;          // truncates to 44 in memory
	print_int(g);
	char c = 300;     // register-homed char also truncates on assignment
	print_int(c);
	return 0;
}`, "4444")
}

func TestHexLiterals(t *testing.T) {
	runBoth(t, `
int main() {
	print_int(0xFF + 0x10);
	return 0;
}`, "271")
}
