package minic

// Type is a minic type. Arrays decay to pointers in expressions.
type Type struct {
	Kind TypeKind
	Elem *Type // pointer/array element
	Len  int   // array length
}

type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeFloat
	TypeChar
	TypePtr
	TypeArray
)

var (
	tyVoid  = &Type{Kind: TypeVoid}
	tyInt   = &Type{Kind: TypeInt}
	tyFloat = &Type{Kind: TypeFloat}
	tyChar  = &Type{Kind: TypeChar}
)

func ptrTo(e *Type) *Type { return &Type{Kind: TypePtr, Elem: e} }
func arrayOf(e *Type, n int) *Type {
	return &Type{Kind: TypeArray, Elem: e, Len: n}
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeChar:
		return "char"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// isScalarInt reports int-like types held in integer registers.
func (t *Type) isScalarInt() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePtr
}

func (t *Type) isFloat() bool { return t.Kind == TypeFloat }

// size returns the in-memory size of a value of this type.
func (t *Type) size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeArray:
		return t.Len * t.Elem.size()
	default:
		return 8
	}
}

func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == TypePtr || a.Kind == TypeArray {
		return sameType(a.Elem, b.Elem)
	}
	return true
}

// Expressions.

type expr interface{ exprType() *Type }

type exprBase struct {
	ty   *Type
	line int
}

func (e *exprBase) exprType() *Type { return e.ty }

type intLit struct {
	exprBase
	val int64
}

type floatLit struct {
	exprBase
	val float64
}

// varRef names a global or local variable (or array, which decays).
type varRef struct {
	exprBase
	name string
	sym  *symbol
}

type binop struct {
	exprBase
	op   string // "+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "&", "|", "^", "<<", ">>"
	l, r expr
}

type unop struct {
	exprBase
	op string // "-", "!", "*", "&"
	x  expr
}

type callExpr struct {
	exprBase
	name string
	args []expr
	fn   *funcDecl
}

type indexExpr struct {
	exprBase
	base expr
	idx  expr
}

type castExpr struct {
	exprBase
	x expr
}

// Statements.

type stmt interface{ stmtNode() }

type stmtBase struct{ line int }

func (stmtBase) stmtNode() {}

type declStmt struct {
	stmtBase
	sym  *symbol
	init expr // may be nil
}

type assignStmt struct {
	stmtBase
	lhs expr // varRef, indexExpr, or unop{*}
	rhs expr
}

type ifStmt struct {
	stmtBase
	cond      expr
	then, els stmt // els may be nil
}

type whileStmt struct {
	stmtBase
	cond expr
	body stmt
	post stmt // for-loop increment; runs after body and on continue
}

type blockStmt struct {
	stmtBase
	stmts []stmt
}

type returnStmt struct {
	stmtBase
	val expr // nil for void
}

type exprStmt struct {
	stmtBase
	x expr
}

type breakStmt struct{ stmtBase }
type continueStmt struct{ stmtBase }

type printStmt struct {
	stmtBase
	kind string // "int", "float", "char", "str"
	arg  expr   // nil for str
	str  string
}

// Declarations.

// symbol is a named variable: global, local, or parameter.
type symbol struct {
	name    string
	ty      *Type
	global  bool
	init    int64   // global scalar initializer bits
	finit   float64 // for float globals
	hasInit bool

	// Back-end allocation (filled by codegen).
	reg       int  // allocated callee-saved register index, -1 if none
	stackOff  int  // frame offset when reg == -1 or addressable
	addrTaken bool // needs memory (arrays, &x)
}

type funcDecl struct {
	name    string
	ret     *Type
	params  []*symbol
	body    *blockStmt
	line    int
	isLeaf  bool // no calls in body (computed by codegen pre-scan)
	locals  []*symbol
	strLits []strLit // filled by codegen, in emission order
}

// strLit is a string literal placed in .data.
type strLit struct {
	label string
	text  string
}

type unit struct {
	globals []*symbol
	funcs   []*funcDecl
	strings map[string]string // literal -> label
}
