package minic

import "fmt"

// parser builds an untyped AST; the checker pass resolves names and types.
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	u := &unit{strings: map[string]string{}}
	for !p.atEOF() {
		if err := p.topLevel(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %v", text, p.cur())
	}
	return nil
}

func (p *parser) peekIsType() bool {
	t := p.cur()
	return t.kind == tokKeyword && (t.text == "int" || t.text == "float" || t.text == "char" || t.text == "void")
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	t := p.advance()
	var ty *Type
	switch t.text {
	case "int":
		ty = tyInt
	case "float":
		ty = tyFloat
	case "char":
		ty = tyChar
	case "void":
		ty = tyVoid
	default:
		return nil, p.errf("expected type, found %v", t)
	}
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	return ty, nil
}

// topLevel parses one global declaration or function definition.
func (p *parser) topLevel(u *unit) error {
	if !p.peekIsType() {
		return p.errf("expected declaration, found %v", p.cur())
	}
	line := p.cur().line
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	nameTok := p.advance()
	if nameTok.kind != tokIdent {
		return p.errf("expected name, found %v", nameTok)
	}
	name := nameTok.text

	if p.cur().text == "(" && p.cur().kind == tokPunct {
		return p.funcDef(u, ty, name, line)
	}

	// Global variable (possibly array, possibly initialized).
	sym := &symbol{name: name, ty: ty, global: true, reg: -1}
	if p.accept("[") {
		n := p.advance()
		if n.kind != tokIntLit || n.ival <= 0 {
			return p.errf("bad array length")
		}
		if err := p.expect("]"); err != nil {
			return err
		}
		sym.ty = arrayOf(ty, int(n.ival))
		sym.addrTaken = true
	}
	if p.accept("=") {
		t := p.advance()
		negate := false
		if t.kind == tokPunct && t.text == "-" {
			negate = true
			t = p.advance()
		}
		switch t.kind {
		case tokIntLit, tokCharLit:
			sym.init = t.ival
			if negate {
				sym.init = -sym.init
			}
			sym.hasInit = true
		case tokFloatLit:
			sym.finit = t.fval
			if negate {
				sym.finit = -sym.finit
			}
			sym.hasInit = true
		default:
			return p.errf("global initializer must be a constant")
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	u.globals = append(u.globals, sym)
	return nil
}

func (p *parser) funcDef(u *unit, ret *Type, name string, line int) error {
	fn := &funcDecl{name: name, ret: ret, line: line}
	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		for {
			if p.cur().kind == tokKeyword && p.cur().text == "void" && p.toks[p.pos+1].text == ")" {
				p.advance()
				break
			}
			pty, err := p.parseType()
			if err != nil {
				return err
			}
			pn := p.advance()
			if pn.kind != tokIdent {
				return p.errf("expected parameter name")
			}
			fn.params = append(fn.params, &symbol{name: pn.text, ty: pty, reg: -1})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fn.body = body
	u.funcs = append(u.funcs, fn)
	return nil
}

func (p *parser) block() (*blockStmt, error) {
	line := p.cur().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{stmtBase: stmtBase{line: line}}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	line := p.cur().line
	base := stmtBase{line: line}
	switch {
	case p.cur().text == "{" && p.cur().kind == tokPunct:
		return p.block()

	case p.peekIsType():
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.advance()
		if nameTok.kind != tokIdent {
			return nil, p.errf("expected variable name")
		}
		sym := &symbol{name: nameTok.text, ty: ty, reg: -1}
		if p.accept("[") {
			n := p.advance()
			if n.kind != tokIntLit || n.ival <= 0 {
				return nil, p.errf("bad array length")
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			sym.ty = arrayOf(ty, int(n.ival))
			sym.addrTaken = true
		}
		var init expr
		if p.accept("=") {
			init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &declStmt{stmtBase: base, sym: sym, init: init}, nil

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		var els stmt
		if p.accept("else") {
			els, err = p.statement()
			if err != nil {
				return nil, err
			}
		}
		return &ifStmt{stmtBase: base, cond: cond, then: then, els: els}, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &whileStmt{stmtBase: base, cond: cond, body: body}, nil

	case p.accept("for"):
		// Desugar for(init; cond; post) body into { init; while(cond) { body; post } }.
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init stmt
		if !p.accept(";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var cond expr = &intLit{val: 1}
		if p.cur().text != ";" {
			c, err := p.expression()
			if err != nil {
				return nil, err
			}
			cond = c
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var post stmt
		if p.cur().text != ")" {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		loop := &whileStmt{stmtBase: base, cond: cond, body: body, post: post}
		out := &blockStmt{stmtBase: base}
		if init != nil {
			out.stmts = append(out.stmts, init)
		}
		out.stmts = append(out.stmts, loop)
		return out, nil

	case p.accept("return"):
		var val expr
		if p.cur().text != ";" {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			val = v
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &returnStmt{stmtBase: base, val: val}, nil

	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &breakStmt{stmtBase: base}, nil

	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &continueStmt{stmtBase: base}, nil

	case p.cur().kind == tokIdent && isPrintBuiltin(p.cur().text):
		kind := p.cur().text[len("print_"):]
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ps := &printStmt{stmtBase: base, kind: kind}
		if kind == "str" {
			t := p.advance()
			if t.kind != tokStrLit {
				return nil, p.errf("print_str wants a string literal")
			}
			ps.str = t.text
		} else {
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			ps.arg = arg
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return ps, nil
	}

	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

func isPrintBuiltin(name string) bool {
	switch name {
	case "print_int", "print_float", "print_char", "print_str":
		return true
	}
	return false
}

// simpleStmt is an assignment or expression statement (no trailing ';').
func (p *parser) simpleStmt() (stmt, error) {
	base := stmtBase{line: p.cur().line}
	lhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &assignStmt{stmtBase: base, lhs: lhs, rhs: rhs}, nil
	}
	return &exprStmt{stmtBase: base, x: lhs}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression() (expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, isBin := binPrec[t.text]
		if t.kind != tokPunct || !isBin || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binop{exprBase: exprBase{line: t.line}, op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "*", "&":
			p.advance()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unop{exprBase: exprBase{line: t.line}, op: t.text, x: x}, nil
		case "(":
			// Cast? "(type)" expr
			if p.toks[p.pos+1].kind == tokKeyword &&
				(p.toks[p.pos+1].text == "int" || p.toks[p.pos+1].text == "float" || p.toks[p.pos+1].text == "char") {
				p.advance()
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				return &castExpr{exprBase: exprBase{ty: ty, line: t.line}, x: x}, nil
			}
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokPunct && t.text == "[":
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{exprBase: exprBase{line: t.line}, base: x, idx: idx}
		case t.kind == tokPunct && t.text == "(":
			vr, ok := x.(*varRef)
			if !ok {
				return nil, p.errf("only named functions can be called")
			}
			p.advance()
			call := &callExpr{exprBase: exprBase{line: t.line}, name: vr.name}
			if !p.accept(")") {
				for {
					arg, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, arg)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.advance()
	switch t.kind {
	case tokIntLit, tokCharLit:
		return &intLit{exprBase: exprBase{line: t.line}, val: t.ival}, nil
	case tokFloatLit:
		return &floatLit{exprBase: exprBase{line: t.line}, val: t.fval}, nil
	case tokIdent:
		return &varRef{exprBase: exprBase{line: t.line}, name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("line %d: unexpected %v in expression", t.line, t)
}
