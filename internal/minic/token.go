// Package minic implements a small C-like language and its compiler to
// the repository's ISA. It plays the role of the paper's modified gcc
// (§3.1): the same source program compiles under two ABIs — ABIFlat, which
// saves and restores callee-saved registers with explicit stack loads and
// stores, and ABIWindowed, which keeps them in register windows rotated by
// call/return. The dynamic instruction-count difference between the two
// binaries is exactly the Table 2 path-length-ratio effect.
//
// Language summary:
//
//	types:        int (64-bit signed), float (float64), char (byte),
//	              pointers (int*, float*, char*), 1-D arrays
//	declarations: globals (with optional scalar initializers), locals,
//	              functions with typed parameters
//	statements:   if/else, while, for, break, continue, return, blocks,
//	              expression statements, print_int/print_float/
//	              print_char/print_str builtins
//	expressions:  arithmetic, comparisons, &&/||/! (short-circuit),
//	              array indexing, unary * and &, calls, casts (int)/(float)
package minic

import (
	"fmt"
	"strconv"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokCharLit
	tokStrLit
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "float": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokIntLit, tokFloatLit:
		return t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the entire source up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-byte punctuation, longest first.
var puncts = []string{
	"&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.peekByte()

	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line}, nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			l.pos += 2
			for l.pos < len(l.src) && isHex(l.src[l.pos]) {
				l.pos++
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.peekByte() == '.' && isDigit(l.at(1)) {
				isFloat = true
				l.pos++
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			if l.peekByte() == 'e' || l.peekByte() == 'E' {
				save := l.pos
				l.pos++
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.pos++
				}
				if isDigit(l.peekByte()) {
					isFloat = true
					for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
						l.pos++
					}
				} else {
					l.pos = save
				}
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return token{}, l.errf("bad float literal %q", text)
			}
			return token{kind: tokFloatLit, text: text, fval: f, line: line}, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf("bad integer literal %q", text)
		}
		return token{kind: tokIntLit, text: text, ival: v, line: line}, nil

	case c == '\'':
		l.pos++
		var v byte
		if l.peekByte() == '\\' {
			l.pos++
			switch l.peekByte() {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return token{}, l.errf("bad escape in char literal")
			}
			l.pos++
		} else {
			v = l.peekByte()
			l.pos++
		}
		if l.peekByte() != '\'' {
			return token{}, l.errf("unterminated char literal")
		}
		l.pos++
		return token{kind: tokCharLit, text: string(v), ival: int64(v), line: line}, nil

	case c == '"':
		l.pos++
		var out []byte
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				break
			}
			if ch == '\\' {
				l.pos++
				switch l.peekByte() {
				case 'n':
					out = append(out, '\n')
				case 't':
					out = append(out, '\t')
				case '0':
					out = append(out, 0)
				case '\\':
					out = append(out, '\\')
				case '"':
					out = append(out, '"')
				default:
					return token{}, l.errf("bad escape in string")
				}
				l.pos++
				continue
			}
			if ch == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			out = append(out, ch)
			l.pos++
		}
		return token{kind: tokStrLit, text: string(out), line: line}, nil
	}

	for _, p := range puncts {
		if len(l.src)-l.pos >= len(p) && l.src[l.pos:l.pos+len(p)] == p {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: line}, nil
		}
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
