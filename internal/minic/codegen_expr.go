package minic

import (
	"fmt"

	"vca/internal/isa"
)

// Expression evaluation uses a compile-time operand stack mapped onto the
// caller-saved temporaries (t0-t4, ft0-ft10). When temporaries run out,
// the deepest in-register operand spills to a frame slot; values live
// across calls are saved either to frame slots (flat ABI) or to unused
// windowed registers (windowed ABI — the window itself preserves them).
//
// Conditions in if/while are compiled as jump code, so && and || in
// condition position short-circuit. In value position they are compiled
// branchless (non-short-circuit); see the package comment.

func (fg *fngen) allocReg(cls opclass) isa.Reg {
	free := &fg.freeInt
	if cls == clsFP {
		free = &fg.freeFP
	}
	if n := len(*free); n > 0 {
		r := (*free)[n-1]
		*free = (*free)[:n-1]
		return r
	}
	// Spill the deepest in-register operand of this class.
	for i := range fg.stack {
		o := &fg.stack[i]
		if !o.spilled && o.cls == cls {
			slot := fg.takeSlot()
			fg.storeSlot(o.cls, o.reg, slot)
			r := o.reg
			o.spilled, o.slot = true, slot
			return r
		}
	}
	fg.errf("function %s: expression too complex (out of %v temporaries)", fg.fn.name, cls)
	return isa.RegT0
}

func (fg *fngen) freeReg(cls opclass, r isa.Reg) {
	if cls == clsFP {
		fg.freeFP = append(fg.freeFP, r)
	} else {
		fg.freeInt = append(fg.freeInt, r)
	}
}

func (fg *fngen) takeSlot() int {
	for i := range fg.slotUsed {
		if !fg.slotUsed[i] {
			fg.slotUsed[i] = true
			return i
		}
	}
	fg.errf("function %s: out of spill slots", fg.fn.name)
	return 0
}

func (fg *fngen) storeSlot(cls opclass, r isa.Reg, slot int) {
	if cls == clsFP {
		fg.emit("        stf %s, %d(sp)", r, fg.spillSlotOff(slot))
	} else {
		fg.emit("        stq %s, %d(sp)", r, fg.spillSlotOff(slot))
	}
}

func (fg *fngen) loadSlot(cls opclass, r isa.Reg, slot int) {
	if cls == clsFP {
		fg.emit("        ldf %s, %d(sp)", r, fg.spillSlotOff(slot))
	} else {
		fg.emit("        ldq %s, %d(sp)", r, fg.spillSlotOff(slot))
	}
}

// pushNew allocates a fresh register, pushes it, and returns it.
func (fg *fngen) pushNew(cls opclass) isa.Reg {
	r := fg.allocReg(cls)
	fg.stack = append(fg.stack, operand{cls: cls, reg: r})
	return r
}

// pushExisting pushes a register the caller already owns.
func (fg *fngen) pushExisting(cls opclass, r isa.Reg) {
	fg.stack = append(fg.stack, operand{cls: cls, reg: r})
}

// popOp removes the top operand, reloading it into a register if spilled.
// The caller owns the register and must drop() it (or push it back).
func (fg *fngen) popOp() operand {
	n := len(fg.stack) - 1
	o := fg.stack[n]
	fg.stack = fg.stack[:n]
	if o.spilled {
		r := fg.allocReg(o.cls)
		fg.loadSlot(o.cls, r, o.slot)
		fg.slotUsed[o.slot] = false
		o.spilled, o.reg = false, r
	}
	return o
}

func (fg *fngen) drop(o operand) { fg.freeReg(o.cls, o.reg) }

// ---- expression generation (leaves one operand on the stack) ----

func (fg *fngen) genExpr(e expr) {
	switch e := e.(type) {
	case *intLit:
		r := fg.pushNew(clsInt)
		fg.emit("        li %s, %d", r, e.val)

	case *floatLit:
		lbl := fg.floatLabel(e.val)
		a := fg.allocReg(clsInt)
		fg.emit("        la %s, %s", a, lbl)
		r := fg.pushNew(clsFP)
		fg.emit("        ldf %s, 0(%s)", r, a)
		fg.freeReg(clsInt, a)

	case *varRef:
		fg.genVarLoad(e.sym)

	case *castExpr:
		fg.genExpr(e.x)
		from := classOf(e.x.exprType())
		to := classOf(e.ty)
		switch {
		case from == to:
			if e.ty.Kind == TypeChar {
				o := fg.popOp()
				fg.emit("        andi %s, %s, 255", o.reg, o.reg)
				fg.pushExisting(clsInt, o.reg)
			}
		case to == clsFP:
			o := fg.popOp()
			r := fg.allocReg(clsFP)
			fg.emit("        cvtif %s, %s", r, o.reg)
			fg.drop(o)
			fg.pushExisting(clsFP, r)
		default:
			o := fg.popOp()
			r := fg.allocReg(clsInt)
			fg.emit("        cvtfi %s, %s", r, o.reg)
			fg.drop(o)
			fg.pushExisting(clsInt, r)
		}

	case *unop:
		fg.genUnop(e)

	case *indexExpr:
		fg.genAddr(e)
		fg.genLoadFromAddr(e.ty)

	case *callExpr:
		fg.genCall(e)

	case *binop:
		fg.genBinop(e)

	default:
		fg.errf("codegen: unknown expression %T", e)
	}
}

// genVarLoad pushes the value of a variable (or the address, for arrays).
func (fg *fngen) genVarLoad(s *symbol) {
	if s.ty.Kind == TypeArray {
		// Array name decays to its address.
		r := fg.pushNew(clsInt)
		if s.global {
			fg.emit("        la %s, %s", r, globalLabel(s.name))
		} else {
			fg.emit("        addi %s, sp, %d", r, s.stackOff)
		}
		return
	}
	cls := classOf(s.ty)
	if home, ok := homeReg(s); ok {
		r := fg.pushNew(cls)
		if cls == clsFP {
			fg.emit("        fmov %s, %s", r, home)
		} else {
			fg.emit("        mov %s, %s", r, home)
		}
		return
	}
	if s.global {
		a := fg.allocReg(clsInt)
		fg.emit("        la %s, %s", a, globalLabel(s.name))
		r := fg.pushNew(cls)
		fg.emit("        %s %s, 0(%s)", loadOp(s.ty), r, a)
		fg.freeReg(clsInt, a)
		return
	}
	r := fg.pushNew(cls)
	fg.emit("        %s %s, %d(sp)", loadOp(s.ty), r, s.stackOff)
}

func loadOp(t *Type) string {
	switch {
	case t.isFloat():
		return "ldf"
	case t.Kind == TypeChar:
		return "ldbu"
	default:
		return "ldq"
	}
}

func storeOp(t *Type) string {
	switch {
	case t.isFloat():
		return "stf"
	case t.Kind == TypeChar:
		return "stb"
	default:
		return "stq"
	}
}

// genAddr pushes the address of an lvalue (or array element).
func (fg *fngen) genAddr(e expr) {
	switch e := e.(type) {
	case *varRef:
		s := e.sym
		r := fg.pushNew(clsInt)
		switch {
		case s.global:
			fg.emit("        la %s, %s", r, globalLabel(s.name))
		case s.reg >= 0:
			fg.errf("codegen: address of register-homed %q", s.name)
		default:
			fg.emit("        addi %s, sp, %d", r, s.stackOff)
		}

	case *indexExpr:
		bt := e.base.exprType()
		if bt.Kind == TypeArray {
			fg.genAddr(e.base)
		} else {
			fg.genExpr(e.base) // pointer value is the address
		}
		fg.genExpr(e.idx)
		idx := fg.popOp()
		base := fg.popOp()
		if e.ty.size() == 8 {
			fg.emit("        slli %s, %s, 3", idx.reg, idx.reg)
		}
		fg.emit("        add %s, %s, %s", base.reg, base.reg, idx.reg)
		fg.drop(idx)
		fg.pushExisting(clsInt, base.reg)

	case *unop:
		if e.op == "*" {
			fg.genExpr(e.x)
			return
		}
		if e.op == "&" {
			fg.genAddr(e.x)
			return
		}
		fg.errf("codegen: cannot take address of unary %q", e.op)

	default:
		fg.errf("codegen: not an lvalue: %T", e)
	}
}

// genLoadFromAddr replaces the address on top of the stack with the loaded
// value of type t.
func (fg *fngen) genLoadFromAddr(t *Type) {
	a := fg.popOp()
	if t.isFloat() {
		r := fg.allocReg(clsFP)
		fg.emit("        ldf %s, 0(%s)", r, a.reg)
		fg.drop(a)
		fg.pushExisting(clsFP, r)
		return
	}
	fg.emit("        %s %s, 0(%s)", loadOp(t), a.reg, a.reg)
	fg.pushExisting(clsInt, a.reg)
}

func (fg *fngen) genUnop(e *unop) {
	switch e.op {
	case "-":
		fg.genExpr(e.x)
		o := fg.popOp()
		if o.cls == clsFP {
			fg.emit("        fsub %s, fzero, %s", o.reg, o.reg)
		} else {
			fg.emit("        neg %s, %s", o.reg, o.reg)
		}
		fg.pushExisting(o.cls, o.reg)
	case "!":
		fg.genExpr(e.x)
		o := fg.popOp()
		fg.emit("        cmpeqi %s, %s, 0", o.reg, o.reg)
		fg.pushExisting(clsInt, o.reg)
	case "*":
		fg.genExpr(e.x)
		fg.genLoadFromAddr(e.ty)
	case "&":
		fg.genAddr(e.x)
	default:
		fg.errf("codegen: unary %q", e.op)
	}
}

func (fg *fngen) genBinop(e *binop) {
	switch e.op {
	case "&&", "||":
		// Value position: branchless, non-short-circuit.
		fg.genExpr(e.l)
		fg.normalizeBool()
		fg.genExpr(e.r)
		fg.normalizeBool()
		b := fg.popOp()
		a := fg.popOp()
		if e.op == "&&" {
			fg.emit("        and %s, %s, %s", a.reg, a.reg, b.reg)
		} else {
			fg.emit("        or %s, %s, %s", a.reg, a.reg, b.reg)
		}
		fg.drop(b)
		fg.pushExisting(clsInt, a.reg)
		return

	case "==", "!=", "<", "<=", ">", ">=":
		fg.genExpr(e.l)
		fg.genExpr(e.r)
		fg.genCompare(e.op, classOf(e.l.exprType()) == clsFP)
		return
	}

	fg.genExpr(e.l)
	fg.genExpr(e.r)
	b := fg.popOp()
	a := fg.popOp()

	if e.ty.Kind == TypePtr {
		// Pointer arithmetic: scale the integer side by the element size.
		if e.ty.Elem.size() == 8 {
			fg.emit("        slli %s, %s, 3", b.reg, b.reg)
		}
		op := "add"
		if e.op == "-" {
			op = "sub"
		}
		fg.emit("        %s %s, %s, %s", op, a.reg, a.reg, b.reg)
		fg.drop(b)
		fg.pushExisting(clsInt, a.reg)
		return
	}

	if a.cls == clsFP {
		var op string
		switch e.op {
		case "+":
			op = "fadd"
		case "-":
			op = "fsub"
		case "*":
			op = "fmul"
		case "/":
			op = "fdiv"
		default:
			fg.errf("codegen: float %q", e.op)
			op = "fadd"
		}
		fg.emit("        %s %s, %s, %s", op, a.reg, a.reg, b.reg)
		fg.drop(b)
		fg.pushExisting(clsFP, a.reg)
		return
	}

	var op string
	switch e.op {
	case "+":
		op = "add"
	case "-":
		op = "sub"
	case "*":
		op = "mul"
	case "/":
		op = "div"
	case "%":
		op = "rem"
	case "&":
		op = "and"
	case "|":
		op = "or"
	case "^":
		op = "xor"
	case "<<":
		op = "sll"
	case ">>":
		op = "sra"
	default:
		fg.errf("codegen: int %q", e.op)
		op = "add"
	}
	fg.emit("        %s %s, %s, %s", op, a.reg, a.reg, b.reg)
	fg.drop(b)
	fg.pushExisting(clsInt, a.reg)
}

// normalizeBool converts the top-of-stack integer into 0/1.
func (fg *fngen) normalizeBool() {
	o := fg.popOp()
	fg.emit("        cmpult %s, zero, %s", o.reg, o.reg)
	fg.pushExisting(clsInt, o.reg)
}

// genCompare pops two operands and pushes the 0/1 comparison result.
func (fg *fngen) genCompare(op string, isFP bool) {
	b := fg.popOp()
	a := fg.popOp()
	x, y := a.reg, b.reg
	var mnem string
	var negate bool
	if isFP {
		switch op {
		case "==":
			mnem = "fcmpeq"
		case "!=":
			mnem, negate = "fcmpeq", true
		case "<":
			mnem = "fcmplt"
		case "<=":
			mnem = "fcmple"
		case ">":
			mnem = "fcmplt"
			x, y = y, x
		case ">=":
			mnem = "fcmple"
			x, y = y, x
		}
		r := fg.allocReg(clsInt)
		fg.emit("        %s %s, %s, %s", mnem, r, x, y)
		if negate {
			fg.emit("        cmpeqi %s, %s, 0", r, r)
		}
		fg.drop(a)
		fg.drop(b)
		fg.pushExisting(clsInt, r)
		return
	}
	switch op {
	case "==":
		mnem = "cmpeq"
	case "!=":
		mnem, negate = "cmpeq", true
	case "<":
		mnem = "cmplt"
	case "<=":
		mnem = "cmple"
	case ">":
		mnem = "cmplt"
		x, y = y, x
	case ">=":
		mnem = "cmple"
		x, y = y, x
	}
	fg.emit("        %s %s, %s, %s", mnem, x, x, y)
	if negate {
		fg.emit("        cmpeqi %s, %s, 0", x, x)
	}
	if x == a.reg {
		fg.drop(b)
		fg.pushExisting(clsInt, a.reg)
	} else {
		fg.drop(a)
		fg.pushExisting(clsInt, b.reg)
	}
}

// genCall evaluates arguments, saves live temporaries, and emits the call.
func (fg *fngen) genCall(e *callExpr) {
	for _, a := range e.args {
		fg.genExpr(a)
	}

	// Assign argument registers by class position.
	argRegs := make([]isa.Reg, len(e.args))
	ia, fa := 0, 0
	for i, p := range e.fn.params {
		if classOf(p.ty) == clsFP {
			argRegs[i] = isa.RegFA0 + isa.Reg(fa)
			fa++
		} else {
			argRegs[i] = isa.RegA0 + isa.Reg(ia)
			ia++
		}
	}
	// Pop args, last first, into their registers.
	for i := len(e.args) - 1; i >= 0; i-- {
		o := fg.popOp()
		if o.cls == clsFP {
			fg.emit("        fmov %s, %s", argRegs[i], o.reg)
		} else {
			fg.emit("        mov %s, %s", argRegs[i], o.reg)
		}
		fg.drop(o)
	}

	// Save operands that are live across the call. Spilled entries are
	// already in the frame; in-register ones go to windowed registers
	// (windowed ABI) or temp-save frame slots (flat ABI).
	type saved struct {
		idx   int
		toReg isa.Reg
		inReg bool
	}
	var saves []saved
	winInt, winFP := 0, 0
	for i := range fg.stack {
		o := &fg.stack[i]
		if o.spilled {
			continue
		}
		var dst isa.Reg
		useReg := false
		if fg.abi == ABIWindowed {
			if o.cls == clsFP && winFP < len(fg.freeWinFP) {
				dst, useReg = fg.freeWinFP[winFP], true
				winFP++
			} else if o.cls == clsInt && winInt < len(fg.freeWinInt) {
				dst, useReg = fg.freeWinInt[winInt], true
				winInt++
			}
		}
		if useReg {
			if o.cls == clsFP {
				fg.emit("        fmov %s, %s", dst, o.reg)
			} else {
				fg.emit("        mov %s, %s", dst, o.reg)
			}
		} else {
			off := fg.tempSaveOff + 8*i
			if o.cls == clsFP {
				fg.emit("        stf %s, %d(sp)", o.reg, off)
			} else {
				fg.emit("        stq %s, %d(sp)", o.reg, off)
			}
		}
		saves = append(saves, saved{idx: i, toReg: dst, inReg: useReg})
	}

	fg.emit("        jsr %s", e.fn.name)

	for _, s := range saves {
		o := &fg.stack[s.idx]
		if s.inReg {
			if o.cls == clsFP {
				fg.emit("        fmov %s, %s", o.reg, s.toReg)
			} else {
				fg.emit("        mov %s, %s", o.reg, s.toReg)
			}
		} else {
			off := fg.tempSaveOff + 8*s.idx
			if o.cls == clsFP {
				fg.emit("        ldf %s, %d(sp)", o.reg, off)
			} else {
				fg.emit("        ldq %s, %d(sp)", o.reg, off)
			}
		}
	}

	if e.fn.ret.Kind != TypeVoid {
		cls := classOf(e.fn.ret)
		r := fg.pushNew(cls)
		if cls == clsFP {
			fg.emit("        fmov %s, %s", r, isa.RegFV0)
		} else {
			fg.emit("        mov %s, %s", r, isa.RegV0)
		}
	}
}

// ---- statements ----

func (fg *fngen) genStmt(s stmt) {
	switch s := s.(type) {
	case *blockStmt:
		for _, inner := range s.stmts {
			fg.genStmt(inner)
		}

	case *declStmt:
		if s.init != nil {
			fg.genAssignTo(s.sym, s.init)
			return
		}
		// Zero-initialize for deterministic simulation.
		fg.genZero(s.sym)

	case *assignStmt:
		fg.genAssign(s)

	case *ifStmt:
		els := fg.label(fg.fn)
		fg.genCondBr(s.cond, els, false)
		fg.genStmt(s.then)
		if s.els == nil {
			fg.emit("%s:", els)
			return
		}
		end := fg.label(fg.fn)
		fg.emit("        jmp %s", end)
		fg.emit("%s:", els)
		fg.genStmt(s.els)
		fg.emit("%s:", end)

	case *whileStmt:
		cond := fg.label(fg.fn)
		end := fg.label(fg.fn)
		cont := cond
		if s.post != nil {
			cont = fg.label(fg.fn)
		}
		fg.breakLbl = append(fg.breakLbl, end)
		fg.contLbl = append(fg.contLbl, cont)
		fg.emit("%s:", cond)
		fg.genCondBr(s.cond, end, false)
		fg.genStmt(s.body)
		if s.post != nil {
			fg.emit("%s:", cont)
			fg.genStmt(s.post)
		}
		fg.emit("        jmp %s", cond)
		fg.emit("%s:", end)
		fg.breakLbl = fg.breakLbl[:len(fg.breakLbl)-1]
		fg.contLbl = fg.contLbl[:len(fg.contLbl)-1]

	case *breakStmt:
		fg.emit("        jmp %s", fg.breakLbl[len(fg.breakLbl)-1])

	case *continueStmt:
		fg.emit("        jmp %s", fg.contLbl[len(fg.contLbl)-1])

	case *returnStmt:
		if s.val != nil {
			fg.genExpr(s.val)
			o := fg.popOp()
			if o.cls == clsFP {
				fg.emit("        fmov %s, %s", isa.RegFV0, o.reg)
			} else {
				fg.emit("        mov %s, %s", isa.RegV0, o.reg)
			}
			fg.drop(o)
		}
		fg.emit("        jmp %s", fg.retLabel)

	case *exprStmt:
		fg.genExpr(s.x)
		if s.x.exprType().Kind != TypeVoid {
			o := fg.popOp()
			fg.drop(o)
		}

	case *printStmt:
		fg.genPrint(s)

	default:
		fg.errf("codegen: unknown statement %T", s)
	}
}

func (fg *fngen) genZero(sym *symbol) {
	if sym.ty.Kind == TypeArray {
		return // arrays start zeroed only as globals; locals are written before use
	}
	if home, ok := homeReg(sym); ok {
		if classOf(sym.ty) == clsFP {
			fg.emit("        fmov %s, fzero", home)
		} else {
			fg.emit("        mov %s, zero", home)
		}
		return
	}
	if classOf(sym.ty) == clsFP {
		fg.emit("        stf fzero, %d(sp)", sym.stackOff)
	} else {
		fg.emit("        %s zero, %d(sp)", storeOp(sym.ty), sym.stackOff)
	}
}

// genAssignTo stores an evaluated expression into a symbol's home.
func (fg *fngen) genAssignTo(sym *symbol, rhs expr) {
	fg.genExpr(rhs)
	o := fg.popOp()
	if home, ok := homeReg(sym); ok {
		switch {
		case classOf(sym.ty) == clsFP:
			fg.emit("        fmov %s, %s", home, o.reg)
		case sym.ty.Kind == TypeChar:
			fg.emit("        andi %s, %s, 255", home, o.reg)
		default:
			fg.emit("        mov %s, %s", home, o.reg)
		}
		fg.drop(o)
		return
	}
	if sym.global {
		a := fg.allocReg(clsInt)
		fg.emit("        la %s, %s", a, globalLabel(sym.name))
		fg.emit("        %s %s, 0(%s)", storeOp(sym.ty), o.reg, a)
		fg.freeReg(clsInt, a)
	} else {
		fg.emit("        %s %s, %d(sp)", storeOp(sym.ty), o.reg, sym.stackOff)
	}
	fg.drop(o)
}

func (fg *fngen) genAssign(s *assignStmt) {
	if vr, ok := s.lhs.(*varRef); ok {
		fg.genAssignTo(vr.sym, s.rhs)
		return
	}
	// Memory destination: evaluate value, then address, then store.
	fg.genExpr(s.rhs)
	fg.genAddr(s.lhs)
	a := fg.popOp()
	v := fg.popOp()
	fg.emit("        %s %s, 0(%s)", storeOp(s.lhs.exprType()), v.reg, a.reg)
	fg.drop(a)
	fg.drop(v)
}

// genCondBr compiles e as jump code: branch to label when e is true
// (branchIfTrue) or false. Short-circuits && and ||.
func (fg *fngen) genCondBr(e expr, label string, branchIfTrue bool) {
	if b, ok := e.(*binop); ok {
		switch b.op {
		case "&&":
			if !branchIfTrue {
				fg.genCondBr(b.l, label, false)
				fg.genCondBr(b.r, label, false)
			} else {
				skip := fg.label(fg.fn)
				fg.genCondBr(b.l, skip, false)
				fg.genCondBr(b.r, label, true)
				fg.emit("%s:", skip)
			}
			return
		case "||":
			if branchIfTrue {
				fg.genCondBr(b.l, label, true)
				fg.genCondBr(b.r, label, true)
			} else {
				skip := fg.label(fg.fn)
				fg.genCondBr(b.l, skip, true)
				fg.genCondBr(b.r, label, false)
				fg.emit("%s:", skip)
			}
			return
		}
	}
	if u, ok := e.(*unop); ok && u.op == "!" {
		fg.genCondBr(u.x, label, !branchIfTrue)
		return
	}
	fg.genExpr(e)
	o := fg.popOp()
	if branchIfTrue {
		fg.emit("        bne %s, %s", o.reg, label)
	} else {
		fg.emit("        beq %s, %s", o.reg, label)
	}
	fg.drop(o)
}

func (fg *fngen) genPrint(s *printStmt) {
	switch s.kind {
	case "str":
		lbl := fmt.Sprintf("str.%s.%d", fg.fn.name, len(fg.fn.strLits))
		fg.fn.strLits = append(fg.fn.strLits, strLit{label: lbl, text: s.str})
		fg.emit("        la a0, %s", lbl)
		fg.emit("        li a1, %d", len(s.str))
		fg.emit("        syscall %d", isa.SysPutStr)
	case "float":
		fg.genExpr(s.arg)
		o := fg.popOp()
		fg.emit("        fmov fa0, %s", o.reg)
		fg.emit("        syscall %d", isa.SysPutFloat)
		fg.drop(o)
	default: // int, char
		fg.genExpr(s.arg)
		o := fg.popOp()
		fg.emit("        mov a0, %s", o.reg)
		code := isa.SysPutInt
		if s.kind == "char" {
			code = isa.SysPutChar
		}
		fg.emit("        syscall %d", code)
		fg.drop(o)
	}
}
