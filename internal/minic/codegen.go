package minic

import (
	"fmt"
	"math"
	"strings"

	"vca/internal/isa"
)

// ABI selects the calling convention the code generator targets.
type ABI int

const (
	// ABIFlat is the conventional ABI: callee-saved registers (s0-s15,
	// fs0-fs15) are preserved with explicit stores and loads in every
	// function that uses them — the traffic register windows eliminate.
	ABIFlat ABI = iota
	// ABIWindowed targets a register-windowed machine: call/return rotate
	// the windowed registers, so callee-saved state needs no save/restore
	// code. Binaries built this way must run with window support enabled.
	ABIWindowed
)

func (a ABI) String() string {
	if a == ABIWindowed {
		return "windowed"
	}
	return "flat"
}

const (
	numIntTemps   = 5  // t0-t4
	numFPTemps    = 11 // ft0-ft10
	numSpillSlots = 6
	numTempSave   = 16
	maxIntArgs    = 6
	maxFPArgs     = 4
)

var intTempRegs = []isa.Reg{isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4}

func fpTempReg(i int) isa.Reg { return isa.RegFT0 + isa.Reg(i) }

// opclass distinguishes operand register files.
type opclass int

const (
	clsInt opclass = iota
	clsFP
)

func classOf(t *Type) opclass {
	if t.isFloat() {
		return clsFP
	}
	return clsInt
}

// operand is one entry of the expression evaluation stack.
type operand struct {
	cls     opclass
	reg     isa.Reg
	spilled bool
	slot    int // spill-area slot when spilled
}

// gen is the per-unit code generator.
type gen struct {
	abi       ABI
	unit      *unit
	out       []string
	labels    int
	flits     map[uint64]string // float literal pool (dedup)
	flitOrder []uint64          // deterministic emission order
	errs      []error
}

// generate produces the complete assembly text for a checked unit.
func generate(u *unit, abi ABI) (string, error) {
	g := &gen{abi: abi, unit: u, flits: map[uint64]string{}}

	g.emit("        .text")
	g.emit("_start: jsr main")
	g.emit("        mov a0, v0")
	g.emit("        syscall %d", isa.SysExit)
	for _, f := range u.funcs {
		g.genFunc(f)
	}
	g.genData()

	if len(g.errs) > 0 {
		var sb strings.Builder
		for _, e := range g.errs {
			fmt.Fprintln(&sb, e)
		}
		return "", fmt.Errorf("minic codegen:\n%s", sb.String())
	}
	return strings.Join(g.out, "\n") + "\n", nil
}

func (g *gen) emit(format string, args ...any) {
	g.out = append(g.out, fmt.Sprintf(format, args...))
}

func (g *gen) errf(format string, args ...any) {
	g.errs = append(g.errs, fmt.Errorf(format, args...))
}

func (g *gen) label(fn *funcDecl) string {
	g.labels++
	return fmt.Sprintf("%s.L%d", fn.name, g.labels)
}

func (g *gen) floatLabel(v float64) string {
	bits := math.Float64bits(v)
	if l, ok := g.flits[bits]; ok {
		return l
	}
	l := fmt.Sprintf("flit.%d", len(g.flits))
	g.flits[bits] = l
	g.flitOrder = append(g.flitOrder, bits)
	return l
}

func globalLabel(name string) string { return "g." + name }

func (g *gen) genData() {
	g.emit("        .data")
	for _, s := range g.unit.globals {
		g.emit("        .align 8")
		switch {
		case s.ty.Kind == TypeArray:
			g.emit("%s: .space %d", globalLabel(s.name), s.ty.size())
		case s.ty.isFloat():
			g.emit("%s: .quad 0x%x", globalLabel(s.name), math.Float64bits(s.finit))
		default:
			g.emit("%s: .quad %d", globalLabel(s.name), s.init)
		}
	}
	for _, f := range g.unit.funcs {
		for _, sl := range f.strLits {
			g.emit("%s: .ascii %q", sl.label, sl.text)
		}
	}
	for _, bits := range g.flitOrder {
		g.emit("        .align 8")
		g.emit("%s: .quad 0x%x", g.flits[bits], bits)
	}
}

// fngen is the per-function generator state.
type fngen struct {
	*gen
	fn   *funcDecl
	leaf bool

	// Register allocation results.
	usedS  []int // callee-saved integer registers allocated (indices)
	usedFS []int
	// Free windowed registers usable as call-crossing temp homes in the
	// windowed ABI.
	freeWinInt []isa.Reg
	freeWinFP  []isa.Reg

	// Frame layout (offsets from post-prologue sp).
	frame       int
	spillOff    int
	tempSaveOff int
	saveBase    int  // where saved ra/s/fs registers start (flat ABI)
	negSpill    bool // leaf with no frame: spills below sp
	retLabel    string

	// Expression machinery.
	stack    []operand
	freeInt  []isa.Reg
	freeFP   []isa.Reg
	slotUsed [numSpillSlots]bool

	breakLbl, contLbl []string
}

// scanCalls reports whether any statement in the tree performs a call.
func scanCalls(s stmt) bool {
	found := false
	walkStmt(s, func(e expr) {
		if _, ok := e.(*callExpr); ok {
			found = true
		}
	})
	return found
}

// scanPrints reports whether the tree contains print builtins, which
// clobber a0/a1/fa0 and therefore forbid argument-register variable homes.
func scanPrints(s stmt) bool {
	found := false
	var ws func(stmt)
	ws = func(s stmt) {
		switch s := s.(type) {
		case *printStmt:
			found = true
		case *blockStmt:
			for _, inner := range s.stmts {
				ws(inner)
			}
		case *ifStmt:
			ws(s.then)
			if s.els != nil {
				ws(s.els)
			}
		case *whileStmt:
			ws(s.body)
			if s.post != nil {
				ws(s.post)
			}
		}
	}
	if s != nil {
		ws(s)
	}
	return found
}

// walkStmt applies f to every expression in the statement tree.
func walkStmt(s stmt, f func(expr)) {
	var we func(expr)
	we = func(e expr) {
		if e == nil {
			return
		}
		f(e)
		switch e := e.(type) {
		case *binop:
			we(e.l)
			we(e.r)
		case *unop:
			we(e.x)
		case *castExpr:
			we(e.x)
		case *indexExpr:
			we(e.base)
			we(e.idx)
		case *callExpr:
			for _, a := range e.args {
				we(a)
			}
		}
	}
	var ws func(stmt)
	ws = func(s stmt) {
		switch s := s.(type) {
		case *blockStmt:
			for _, inner := range s.stmts {
				ws(inner)
			}
		case *declStmt:
			we(s.init)
		case *assignStmt:
			we(s.lhs)
			we(s.rhs)
		case *ifStmt:
			we(s.cond)
			ws(s.then)
			if s.els != nil {
				ws(s.els)
			}
		case *whileStmt:
			we(s.cond)
			ws(s.body)
			if s.post != nil {
				ws(s.post)
			}
		case *returnStmt:
			we(s.val)
		case *exprStmt:
			we(s.x)
		case *printStmt:
			we(s.arg)
		}
	}
	if s != nil {
		ws(s)
	}
}

func (g *gen) genFunc(f *funcDecl) {
	fg := &fngen{gen: g, fn: f}
	fg.leaf = !scanCalls(f.body)
	f.isLeaf = fg.leaf

	fg.allocateHomes()
	fg.layoutFrame()
	fg.retLabel = fg.label(f)

	fg.freeInt = append([]isa.Reg(nil), intTempRegs...)
	for i := 0; i < numFPTemps; i++ {
		fg.freeFP = append(fg.freeFP, fpTempReg(i))
	}

	g.emit("%s:", f.name)
	fg.prologue()
	fg.genStmt(f.body)
	// Fall off the end: void functions return; value functions return 0.
	fg.epilogue()
}

// allocateHomes assigns params and scalar locals to callee-saved registers
// (or frame slots when addressable or when registers run out).
func (fg *fngen) allocateHomes() {
	f := fg.fn
	maxS, maxFS := 16, 16
	if fg.abi == ABIWindowed && !fg.leaf {
		maxS = 15 // s15 reserved as the ra stash
	}
	nextS, nextFS := 0, 0

	home := func(s *symbol) {
		if s.ty.Kind == TypeArray || s.addrTaken {
			s.reg = -1
			return
		}
		if classOf(s.ty) == clsFP {
			if nextFS < maxFS {
				s.reg = nextFS
				nextFS++
				fg.usedFS = append(fg.usedFS, s.reg)
				return
			}
		} else if nextS < maxS {
			s.reg = nextS
			nextS++
			fg.usedS = append(fg.usedS, s.reg)
			return
		}
		s.reg = -1
	}

	// Leaf functions keep parameters in their argument registers and home
	// scalar locals in the remaining caller-saved argument registers —
	// leaving callee-saved registers (and thus, in the flat ABI, their
	// save/restore traffic) for functions that actually need them. Print
	// builtins clobber a0/a1/fa0, so functions containing them use
	// callee-saved homes even when leaf.
	if fg.leaf && !scanPrints(fg.fn.body) {
		ia, fa := 0, 0
		for _, p := range f.params {
			if classOf(p.ty) == clsFP {
				p.reg = 100 + fa // encoded: fp arg-register home
				fa++
			} else {
				p.reg = 200 + ia // encoded: int arg-register home
				ia++
			}
		}
		for _, l := range f.locals {
			if l.ty.Kind == TypeArray || l.addrTaken {
				l.reg = -1
				continue
			}
			if classOf(l.ty) == clsFP && fa < maxFPArgs {
				l.reg = 100 + fa
				fa++
			} else if classOf(l.ty) == clsInt && ia < maxIntArgs {
				l.reg = 200 + ia
				ia++
			} else {
				home(l)
			}
		}
	} else {
		for _, p := range f.params {
			home(p)
		}
		for _, l := range f.locals {
			home(l)
		}
	}

	// Remaining windowed registers double as call-crossing temp homes in
	// the windowed ABI.
	if fg.abi == ABIWindowed {
		for i := nextS; i < maxS; i++ {
			fg.freeWinInt = append(fg.freeWinInt, isa.IntReg(i))
		}
		for i := nextFS; i < maxFS; i++ {
			fg.freeWinFP = append(fg.freeWinFP, isa.FPReg(i))
		}
	}

	ia, fa := 0, 0
	for _, p := range f.params {
		if classOf(p.ty) == clsFP {
			fa++
		} else {
			ia++
		}
	}
	if ia > maxIntArgs || fa > maxFPArgs {
		fg.errf("function %s: too many parameters (max %d int, %d float)", f.name, maxIntArgs, maxFPArgs)
	}
}

// layoutFrame computes the stack frame. Layout (offsets from sp):
//
//	[0, 48)            expression spill slots
//	[48, 176)          temp-save slots for values live across calls
//	[176, ...)         memory-homed scalars, then arrays
//	...                saved fs / s registers (flat ABI)
//	...                saved ra (flat ABI, non-leaf)
//
// Leaf functions with no memory locals keep spill slots below sp (a red
// zone) and need no frame at all.
func (fg *fngen) layoutFrame() {
	off := 0
	fg.spillOff = off
	off += numSpillSlots * 8
	if !fg.leaf {
		fg.tempSaveOff = off
		off += numTempSave * 8
	}

	memBytes := 0
	place := func(s *symbol) {
		if s.reg >= 0 {
			return
		}
		size := (s.ty.size() + 7) &^ 7
		s.stackOff = off + memBytes
		memBytes += size
	}
	for _, p := range fg.fn.params {
		place(p)
	}
	for _, l := range fg.fn.locals {
		place(l)
	}
	off += memBytes

	fg.saveBase = off
	if fg.abi == ABIFlat {
		off += 8 * (len(fg.usedS) + len(fg.usedFS))
		if !fg.leaf {
			off += 8 // ra
		}
	}

	if fg.leaf && memBytes == 0 && (fg.abi == ABIWindowed || len(fg.usedS)+len(fg.usedFS) == 0) {
		// No frame at all: spill slots live in the red zone below sp.
		fg.negSpill = true
		fg.frame = 0
		return
	}
	fg.frame = (off + 15) &^ 15
	if fg.frame > 8000 {
		fg.errf("function %s: frame too large (%d bytes); move arrays to globals", fg.fn.name, fg.frame)
	}
}

func (fg *fngen) spillSlotOff(slot int) int {
	if fg.negSpill {
		return -8 * (slot + 1)
	}
	return fg.spillOff + 8*slot
}

// sReg/fsReg map allocation indices to registers.
func sReg(i int) isa.Reg  { return isa.IntReg(i) }
func fsReg(i int) isa.Reg { return isa.FPReg(i) }

// homeReg returns the register home of a symbol, decoding the leaf
// arg-register encoding.
func homeReg(s *symbol) (isa.Reg, bool) {
	switch {
	case s.reg < 0:
		return 0, false
	case s.reg >= 200:
		return isa.RegA0 + isa.Reg(s.reg-200), true
	case s.reg >= 100:
		return isa.RegFA0 + isa.Reg(s.reg-100), true
	case classOf(s.ty) == clsFP:
		return fsReg(s.reg), true
	default:
		return sReg(s.reg), true
	}
}

func (fg *fngen) prologue() {
	if fg.frame > 0 {
		fg.emit("        subi sp, sp, %d", fg.frame)
	}
	if fg.abi == ABIFlat {
		off := fg.saveBase
		if !fg.leaf {
			fg.emit("        stq ra, %d(sp)", off)
			off += 8
		}
		for _, i := range fg.usedS {
			fg.emit("        stq %s, %d(sp)", sReg(i), off)
			off += 8
		}
		for _, i := range fg.usedFS {
			fg.emit("        stf %s, %d(sp)", fsReg(i), off)
			off += 8
		}
	} else if !fg.leaf {
		fg.emit("        mov s15, ra")
	}

	// Move parameters to their homes.
	ia, fa := 0, 0
	for _, p := range fg.fn.params {
		var src isa.Reg
		isFP := classOf(p.ty) == clsFP
		if isFP {
			src = isa.RegFA0 + isa.Reg(fa)
			fa++
		} else {
			src = isa.RegA0 + isa.Reg(ia)
			ia++
		}
		if r, ok := homeReg(p); ok {
			if r != src {
				if isFP {
					fg.emit("        fmov %s, %s", r, src)
				} else {
					fg.emit("        mov %s, %s", r, src)
				}
			}
		} else {
			if isFP {
				fg.emit("        stf %s, %d(sp)", src, p.stackOff)
			} else {
				fg.emit("        stq %s, %d(sp)", src, p.stackOff)
			}
		}
	}
}

func (fg *fngen) epilogue() {
	fg.emit("%s:", fg.retLabel)
	if fg.abi == ABIFlat {
		off := fg.saveBase
		if !fg.leaf {
			fg.emit("        ldq ra, %d(sp)", off)
			off += 8
		}
		for _, i := range fg.usedS {
			fg.emit("        ldq %s, %d(sp)", sReg(i), off)
			off += 8
		}
		for _, i := range fg.usedFS {
			fg.emit("        ldf %s, %d(sp)", fsReg(i), off)
			off += 8
		}
	}
	if fg.frame > 0 {
		fg.emit("        addi sp, sp, %d", fg.frame)
	}
	if fg.abi == ABIWindowed && !fg.leaf {
		fg.emit("        ret (s15)")
	} else {
		fg.emit("        ret")
	}
}
