// Package program defines the executable image produced by the assembler
// (and, through it, the mini-C compiler) and consumed by the functional
// emulator and the cycle-level core: a text segment of predecoded
// instructions, a data segment, an entry point, and a symbol table.
package program

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"sync"

	"vca/internal/isa"
)

// Standard memory layout. Everything is far below the VCA register backing
// store region so program accesses and register spills can never collide.
const (
	DefaultTextBase = 0x0001_0000 // 64 KiB
	DefaultDataBase = 0x0040_0000 // 4 MiB
	StackTop        = 0x0800_0000 // 128 MiB; stacks grow down
	// RegSpaceBase is where memory-mapped logical register contexts live
	// (§2.1.1). Each hardware thread context gets a RegSpaceStride-sized
	// region: globals at the bottom, the register-window stack growing
	// down from the top.
	RegSpaceBase   = 0x4000_0000_0000
	RegSpaceStride = 0x0000_0100_0000 // 16 MiB per thread context
)

// Program is a loadable executable image.
type Program struct {
	Name     string
	TextBase uint64
	Text     []isa.Word
	DataBase uint64
	Data     []byte
	Entry    uint64
	Symbols  map[string]uint64

	// Lazily-built decode caches, shared by every machine bound to this
	// program (see Predecode and Meta). Both slices are read-only after
	// construction; Text must not be mutated once either accessor has run.
	decodeOnce sync.Once
	decoded    []isa.Inst
	meta       []isa.Meta
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 { return p.TextBase + uint64(len(p.Text))*4 }

// InText reports whether pc falls inside the text segment and is
// word-aligned.
func (p *Program) InText(pc uint64) bool {
	return pc >= p.TextBase && pc < p.TextEnd() && pc%4 == 0
}

// WordAt returns the raw instruction word at pc, or 0 (an invalid
// instruction) when pc is outside the text segment. Out-of-text fetches
// happen naturally on mispredicted paths; they decode to isa.OpInvalid and
// are squashed before commit.
func (p *Program) WordAt(pc uint64) isa.Word {
	if !p.InText(pc) {
		return 0
	}
	return p.Text[(pc-p.TextBase)/4]
}

// InstAt decodes the instruction at pc (see WordAt for out-of-text
// behavior).
func (p *Program) InstAt(pc uint64) isa.Inst { return isa.Decode(p.WordAt(pc)) }

// Predecode decodes the entire text segment once, for simulators that want
// an indexable decoded form. The result is computed on first use and
// shared by all callers; treat it as read-only.
func (p *Program) Predecode() []isa.Inst {
	p.decodeOnce.Do(p.decode)
	return p.decoded
}

// Meta returns per-instruction predecoded operand and class metadata
// (isa.MetaOf of each text word), index-aligned with Predecode. Like
// Predecode, it is computed once and shared; treat it as read-only.
func (p *Program) Meta() []isa.Meta {
	p.decodeOnce.Do(p.decode)
	return p.meta
}

func (p *Program) decode() {
	p.decoded = make([]isa.Inst, len(p.Text))
	p.meta = make([]isa.Meta, len(p.Text))
	for i, w := range p.Text {
		inst := isa.Decode(w)
		p.decoded[i] = inst
		p.meta[i] = isa.MetaOf(inst)
	}
}

// Symbol returns the address of a label defined by the source.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// SymbolFor returns the name of the symbol covering addr (the nearest
// symbol at or below it), for diagnostics. Returns "" when none.
func (p *Program) SymbolFor(addr uint64) string {
	best, bestAddr := "", uint64(0)
	//lint:maporder argmax fold with a total tie-break (addr, then name) is order-insensitive
	for name, a := range p.Symbols {
		if a <= addr && (best == "" || a > bestAddr || (a == bestAddr && name < best)) {
			best, bestAddr = name, a
		}
	}
	if best == "" {
		return ""
	}
	if addr == bestAddr {
		return best
	}
	return fmt.Sprintf("%s+0x%x", best, addr-bestAddr)
}

// Validate performs structural sanity checks on the image.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("program %q: empty text segment", p.Name)
	}
	if !p.InText(p.Entry) {
		return fmt.Errorf("program %q: entry 0x%x outside text [0x%x,0x%x)",
			p.Name, p.Entry, p.TextBase, p.TextEnd())
	}
	if p.TextBase%4 != 0 {
		return fmt.Errorf("program %q: unaligned text base 0x%x", p.Name, p.TextBase)
	}
	if p.DataBase < p.TextEnd() && len(p.Data) > 0 {
		return fmt.Errorf("program %q: data segment overlaps text", p.Name)
	}
	return nil
}

// Loader is the subset of a memory system the program loader needs.
type Loader interface {
	WriteBytes(addr uint64, data []byte)
}

// LoadInto copies both segments into a memory image.
func (p *Program) LoadInto(m Loader) {
	text := make([]byte, 4*len(p.Text))
	for i, w := range p.Text {
		text[4*i+0] = byte(w)
		text[4*i+1] = byte(w >> 8)
		text[4*i+2] = byte(w >> 16)
		text[4*i+3] = byte(w >> 24)
	}
	m.WriteBytes(p.TextBase, text)
	if len(p.Data) > 0 {
		m.WriteBytes(p.DataBase, p.Data)
	}
}

// Disasm renders the whole text segment with addresses and symbols, for
// debugging and the assembler CLI.
func (p *Program) Disasm() string {
	type sym struct {
		addr uint64
		name string
	}
	var syms []sym
	for n, a := range p.Symbols { //lint:maporder symbols are collected then sorted before use
		syms = append(syms, sym{a, n})
	}
	slices.SortFunc(syms, func(a, b sym) int {
		if a.addr != b.addr {
			return cmp.Compare(a.addr, b.addr)
		}
		return strings.Compare(a.name, b.name)
	})
	var out []byte
	si := 0
	for i, w := range p.Text {
		pc := p.TextBase + uint64(i)*4
		for si < len(syms) && syms[si].addr <= pc {
			if syms[si].addr == pc {
				out = append(out, fmt.Sprintf("%s:\n", syms[si].name)...)
			}
			si++
		}
		out = append(out, fmt.Sprintf("  %06x:  %s\n", pc, isa.Decode(w).DisasmAt(pc))...)
	}
	return string(out)
}

// ThreadRegSpace returns the VCA logical-register backing region for a
// hardware thread context: the global-register base pointer and the initial
// (topmost) window base pointer. Base pointers are skewed per thread by an
// odd slot count — in a real system each context's base pointer is an
// arbitrary OS-assigned address, so different contexts do not alias to the
// same rename-table sets the way stride-aligned regions would.
func ThreadRegSpace(thread int) (gbp, wbp uint64) {
	base := uint64(RegSpaceBase) + uint64(thread)*RegSpaceStride
	skew := uint64(thread) * 41 * 8
	gbp = base + skew
	wbp = base + RegSpaceStride - isa.WindowBytes - skew
	return gbp, wbp
}
