package program

import (
	"strings"
	"testing"

	"vca/internal/isa"
)

func sampleProgram() *Program {
	w1, _ := isa.EncodeI(isa.OpAddI, uint8(isa.ZeroInt), uint8(isa.RegT0), 7)
	w2 := isa.EncodeSys(isa.SysExit)
	return &Program{
		Name:     "sample",
		TextBase: DefaultTextBase,
		Text:     []isa.Word{w1, w2},
		DataBase: DefaultDataBase,
		Data:     []byte{1, 2, 3},
		Entry:    DefaultTextBase,
		Symbols:  map[string]uint64{"main": DefaultTextBase, "end": DefaultTextBase + 4},
	}
}

func TestValidate(t *testing.T) {
	p := sampleProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleProgram()
	bad.Entry = 12 // unaligned + outside text
	if bad.Validate() == nil {
		t.Error("bad entry accepted")
	}
	empty := sampleProgram()
	empty.Text = nil
	if empty.Validate() == nil {
		t.Error("empty text accepted")
	}
	overlap := sampleProgram()
	overlap.DataBase = overlap.TextBase
	if overlap.Validate() == nil {
		t.Error("overlapping segments accepted")
	}
}

func TestWordAtBounds(t *testing.T) {
	p := sampleProgram()
	if p.InstAt(p.TextBase).Op != isa.OpAddI {
		t.Error("first instruction wrong")
	}
	// Outside text and misaligned fetches yield invalid instructions, not
	// panics (wrong-path fetches do this constantly).
	if p.InstAt(p.TextBase-4).Op != isa.OpInvalid {
		t.Error("below-text fetch should be invalid")
	}
	if p.InstAt(p.TextEnd()).Op != isa.OpInvalid {
		t.Error("past-end fetch should be invalid")
	}
	if p.InstAt(p.TextBase+2).Op != isa.OpInvalid {
		t.Error("misaligned fetch should be invalid")
	}
}

func TestPredecodeMatchesInstAt(t *testing.T) {
	p := sampleProgram()
	dec := p.Predecode()
	for i := range p.Text {
		pc := p.TextBase + uint64(i)*4
		if dec[i] != p.InstAt(pc) {
			t.Errorf("predecode mismatch at %#x", pc)
		}
	}
}

func TestSymbols(t *testing.T) {
	p := sampleProgram()
	if a, ok := p.Symbol("main"); !ok || a != p.TextBase {
		t.Error("symbol lookup failed")
	}
	if _, ok := p.Symbol("nope"); ok {
		t.Error("phantom symbol")
	}
	if got := p.SymbolFor(p.TextBase + 4); got != "end" {
		t.Errorf("SymbolFor = %q", got)
	}
	if got := p.SymbolFor(p.TextBase + 8); got != "end+0x4" {
		t.Errorf("SymbolFor offset = %q", got)
	}
}

func TestDisasmContainsSymbolsAndAddrs(t *testing.T) {
	p := sampleProgram()
	d := p.Disasm()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "addi") {
		t.Errorf("disasm:\n%s", d)
	}
}

func TestThreadRegSpaceWindowRoom(t *testing.T) {
	for tid := 0; tid < 8; tid++ {
		gbp, wbp := ThreadRegSpace(tid)
		if (wbp-gbp)%8 != 0 {
			t.Error("unaligned window base")
		}
		// Room for at least a few thousand frames.
		if (wbp-gbp)/isa.WindowBytes < 1000 {
			t.Error("window stack too small")
		}
	}
}
