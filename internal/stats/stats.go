// Package stats implements the paper's measurement methodology (§3.1-3.2):
// execution time estimated as CPI times complete dynamic path length,
// normalized execution times, and the weighted speedup / weighted cache
// access metrics used for the SMT studies.
package stats

import (
	"fmt"
	"math"
)

// ExecTime estimates a benchmark's full execution time as the product of
// the detailed simulation's CPI and the complete run's dynamic instruction
// count (§3.1: "We estimate execution time as the product of the CPI from
// the detailed SimPoint simulation and the complete benchmark's dynamic
// instruction count").
func ExecTime(cpi float64, pathLen uint64) float64 {
	return cpi * float64(pathLen)
}

// AccessesTotal scales a per-instruction cache access rate to a complete
// run (§3.1: "Total cache accesses are calculated similarly").
func AccessesTotal(accessesPerInst float64, pathLen uint64) float64 {
	return accessesPerInst * float64(pathLen)
}

// Normalize divides each value by the reference, for "normalized to the
// baseline with 256 physical registers" plots.
func Normalize(values []float64, ref float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / ref
	}
	return out
}

// WeightedSpeedup computes the SMT speedup metric of §3.2: the sum over
// threads of single-thread execution time divided by the thread's
// execution time in the multithreaded run. Single-thread times come from
// the reference machine (baseline, 256 registers).
func WeightedSpeedup(singleTimes, smtTimes []float64) (float64, error) {
	if len(singleTimes) != len(smtTimes) {
		return 0, fmt.Errorf("stats: %d single times vs %d smt times", len(singleTimes), len(smtTimes))
	}
	var s float64
	for i := range smtTimes {
		if smtTimes[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive smt time %v", smtTimes[i])
		}
		s += singleTimes[i] / smtTimes[i]
	}
	return s, nil
}

// WeightedCacheAccesses computes the §4.3 cache metric: the sum over
// threads of the run's accesses-per-instruction relative to the thread's
// single-threaded accesses-per-instruction.
func WeightedCacheAccesses(singleAPI, smtAPI []float64) (float64, error) {
	if len(singleAPI) != len(smtAPI) {
		return 0, fmt.Errorf("stats: length mismatch")
	}
	var s float64
	for i := range smtAPI {
		if singleAPI[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive single-thread access rate")
		}
		s += smtAPI[i] / singleAPI[i]
	}
	return s, nil
}

// GeoMean returns the geometric mean (used to aggregate normalized times
// across benchmarks).
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range values {
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(values)))
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
