package stats

import (
	"math"
	"testing"
)

func TestExecTimeAndNormalize(t *testing.T) {
	if ExecTime(2.0, 1000) != 2000 {
		t.Error("ExecTime")
	}
	if AccessesTotal(0.25, 1000) != 250 {
		t.Error("AccessesTotal")
	}
	n := Normalize([]float64{2, 4, 8}, 4)
	if n[0] != 0.5 || n[1] != 1 || n[2] != 2 {
		t.Errorf("Normalize = %v", n)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two threads each running at half their single-thread speed: the
	// machine does one thread's worth of work -> speedup 1.0.
	s, err := WeightedSpeedup([]float64{100, 200}, []float64{200, 400})
	if err != nil || math.Abs(s-1.0) > 1e-12 {
		t.Errorf("speedup %v err %v", s, err)
	}
	// Perfect scaling: both at single-thread speed -> 2.0.
	s, _ = WeightedSpeedup([]float64{100, 200}, []float64{100, 200})
	if math.Abs(s-2.0) > 1e-12 {
		t.Errorf("perfect speedup %v", s)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero time should error")
	}
}

func TestWeightedCacheAccesses(t *testing.T) {
	// Each thread makes the same accesses/inst as alone -> sum = n.
	w, err := WeightedCacheAccesses([]float64{0.3, 0.4}, []float64{0.3, 0.4})
	if err != nil || math.Abs(w-2.0) > 1e-12 {
		t.Errorf("weighted accesses %v err %v", w, err)
	}
	w, _ = WeightedCacheAccesses([]float64{0.2}, []float64{0.3})
	if math.Abs(w-1.5) > 1e-12 {
		t.Errorf("inflated accesses %v", w)
	}
}

func TestMeans(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean")
	}
	if math.Abs(GeoMean([]float64{1, 4})-2) > 1e-12 {
		t.Error("GeoMean")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs")
	}
}
