// Checkpoints: serializable, versioned, content-addressable images of a
// functional machine's complete architectural state. A checkpoint is the
// handoff format between the fast functional engine and the detailed
// core (fast-forward warmup, vcasim -checkpoint/-restore) and the unit
// of work for parallel-region simulation (internal/experiments): the
// region runner manufactures one checkpoint per region boundary and each
// region job restores one.
//
// The image holds exactly the state the ISA defines — PC, globals, the
// window-frame stack, sparse memory pages — plus execution provenance
// (cumulative Stats, program output so far, the program's image hash) so
// a restored run continues as if it had never stopped and stitched
// results add up exactly. Content addressing (ContentAddress) is a
// SHA-256 over the canonical JSON payload; two runs that reach the same
// architectural state produce byte-identical images because memory
// snapshots are sorted and all-zero pages are dropped (mem.Snapshot).
package emu

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"vca/internal/isa"
	"vca/internal/mem"
	"vca/internal/program"
)

// CheckpointVersion is the checkpoint image schema version. Bump it for
// any change to the Checkpoint layout or to the semantics of the state
// it captures; decoding rejects mismatched versions rather than guessing.
const CheckpointVersion = 1

// Checkpoint is one serializable architectural-state image.
type Checkpoint struct {
	Version int `json:"version"`
	// Program names the binary this state belongs to; ProgramHash pins
	// the exact image (text, data, entry) so a checkpoint can never be
	// restored onto a different program.
	Program     string `json:"program"`
	ProgramHash string `json:"program_hash"`
	// Windowed records the ABI mode the state was produced under; frames
	// beyond the first exist only when true.
	Windowed bool `json:"windowed"`
	// Insts is the dynamic instruction count at capture (provenance: it
	// is Stats.Insts, duplicated at top level as the region boundary id).
	Insts uint64 `json:"insts"`

	PC      uint64     `json:"pc"`
	Globals []uint64   `json:"globals"` // isa.GlobalSlots values
	Windows [][]uint64 `json:"windows"` // frames 0..depth, isa.WindowSlots each
	// WMasks is index-aligned with Windows: bit s of WMasks[d] marks frame
	// d's slot s as written since the frame was pushed. Never-written
	// (dead) slots read as zero functionally but may hold stale values in
	// a detailed machine; the state-transplant audit uses the mask to
	// canonicalize them.
	WMasks   []uint32 `json:"wmasks"`
	Exited   bool     `json:"exited,omitempty"`
	ExitCode int64    `json:"exit_code,omitempty"`

	Stats  Stats           `json:"stats"`
	Output []byte          `json:"output,omitempty"`
	Pages  []mem.PageImage `json:"pages"`

	// Checksum (sha256 of the canonical payload) detects file corruption;
	// Encode sets it, DecodeCheckpoint verifies it. It equals
	// ContentAddress by construction.
	Checksum string `json:"checksum,omitempty"`
}

// ProgramHash returns the content hash of a program image (text words,
// data bytes, load addresses, entry point). It is the program-identity
// component of checkpoint validation and of checkpoint cache keys.
func ProgramHash(p *program.Program) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], p.TextBase)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], p.DataBase)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], p.Entry)
	h.Write(buf[:])
	var word [4]byte
	for _, w := range p.Text {
		binary.LittleEndian.PutUint32(word[:], uint32(w))
		h.Write(word[:])
	}
	h.Write(p.Data)
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint captures the machine's current architectural state as a
// deep-copied, serializable image.
func (m *Machine) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Version:     CheckpointVersion,
		Program:     m.prog.Name,
		ProgramHash: ProgramHash(m.prog),
		Windowed:    m.cfg.Windowed,
		Insts:       m.Stats.Insts,
		PC:          m.pc,
		Globals:     append([]uint64(nil), m.globals[:]...),
		Windows:     make([][]uint64, m.depth+1),
		WMasks:      append([]uint32(nil), m.wmask[:m.depth+1]...),
		Exited:      m.exited,
		ExitCode:    m.exitCode,
		Stats:       m.Stats,
		Output:      append([]byte(nil), m.Output.Bytes()...),
		Pages:       m.mem.Snapshot(),
	}
	for d := 0; d <= m.depth; d++ {
		ck.Windows[d] = append([]uint64(nil), m.windows[d][:]...)
	}
	return ck
}

// Validate checks that a checkpoint is structurally sound and belongs to
// the given program and ABI mode.
func (ck *Checkpoint) Validate(p *program.Program, windowed bool) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("emu: checkpoint version %d, this build reads %d", ck.Version, CheckpointVersion)
	}
	if h := ProgramHash(p); ck.ProgramHash != h {
		return fmt.Errorf("emu: checkpoint was taken from program %q (hash %.12s), not this %q (hash %.12s)",
			ck.Program, ck.ProgramHash, p.Name, h)
	}
	if ck.Windowed != windowed {
		return fmt.Errorf("emu: checkpoint ABI mode windowed=%v, machine windowed=%v", ck.Windowed, windowed)
	}
	if len(ck.Globals) != isa.GlobalSlots {
		return fmt.Errorf("emu: checkpoint has %d globals, want %d", len(ck.Globals), isa.GlobalSlots)
	}
	if len(ck.Windows) == 0 {
		return fmt.Errorf("emu: checkpoint has no window frames")
	}
	if !windowed && len(ck.Windows) != 1 {
		return fmt.Errorf("emu: flat checkpoint has %d window frames, want 1", len(ck.Windows))
	}
	for d, w := range ck.Windows {
		if len(w) != isa.WindowSlots {
			return fmt.Errorf("emu: checkpoint window frame %d has %d slots, want %d", d, len(w), isa.WindowSlots)
		}
	}
	if len(ck.WMasks) != len(ck.Windows) {
		return fmt.Errorf("emu: checkpoint has %d write masks for %d window frames", len(ck.WMasks), len(ck.Windows))
	}
	return nil
}

// RestoreCheckpoint replaces the machine's architectural state with the
// checkpoint's. The machine must be bound to the same program image and
// ABI mode the checkpoint was taken from.
func (m *Machine) RestoreCheckpoint(ck *Checkpoint) error {
	if err := ck.Validate(m.prog, m.cfg.Windowed); err != nil {
		return err
	}
	if err := m.mem.Restore(ck.Pages); err != nil {
		return err
	}
	m.pc = ck.PC
	copy(m.globals[:], ck.Globals)
	m.depth = len(ck.Windows) - 1
	if cap(m.windows) <= m.depth {
		m.windows = make([]frame, m.depth+1, m.depth+64)
		m.wmask = make([]uint32, m.depth+1, m.depth+64)
	} else {
		m.windows = m.windows[:m.depth+1]
		m.wmask = m.wmask[:m.depth+1]
	}
	for d := range ck.Windows {
		copy(m.windows[d][:], ck.Windows[d])
		m.wmask[d] = ck.WMasks[d]
	}
	m.cur = &m.windows[m.depth]
	m.curMask = &m.wmask[m.depth]
	m.Stats = ck.Stats
	m.Output.Reset()
	m.Output.Write(ck.Output)
	m.exited, m.exitCode = ck.Exited, ck.ExitCode
	return nil
}

// NewFromCheckpoint builds a machine for p and restores ck into it.
func NewFromCheckpoint(p *program.Program, cfg Config, ck *Checkpoint) (*Machine, error) {
	m := New(p, cfg)
	if err := m.RestoreCheckpoint(ck); err != nil {
		return nil, err
	}
	return m, nil
}

// payload returns the canonical serialized form: the image with the
// checksum field cleared.
func (ck *Checkpoint) payload() ([]byte, error) {
	c := *ck
	c.Checksum = ""
	return json.Marshal(&c)
}

// ContentAddress returns the checkpoint's content hash: identical
// architectural states (including provenance) hash identically.
func (ck *Checkpoint) ContentAddress() (string, error) {
	b, err := ck.payload()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the checkpoint as checksummed JSON.
func (ck *Checkpoint) Encode(w io.Writer) error {
	addr, err := ck.ContentAddress()
	if err != nil {
		return err
	}
	ck.Checksum = addr
	enc := json.NewEncoder(w)
	return enc.Encode(ck)
}

// DecodeCheckpoint reads a checkpoint written by Encode, verifying the
// schema version and the content checksum.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("emu: decoding checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("emu: checkpoint version %d, this build reads %d", ck.Version, CheckpointVersion)
	}
	want := ck.Checksum
	if want == "" {
		return nil, fmt.Errorf("emu: checkpoint has no checksum")
	}
	got, err := ck.ContentAddress()
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("emu: checkpoint checksum mismatch (file corrupt?): stored %.12s, computed %.12s", want, got)
	}
	return &ck, nil
}
