package emu

import (
	"bytes"
	"strings"
	"testing"

	"vca/internal/asm"
	"vca/internal/progen"
)

// TestCheckpointRoundTrip proves save → restore → continue is invisible:
// a run interrupted by a checkpoint (serialized and decoded through the
// wire format for good measure) finishes with the same architectural
// state, statistics, and output as an uninterrupted one.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, seed := range []int64{4, 9} {
		src := progen.FromSeed(seed)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		for _, windowed := range []bool{false, true} {
			// Uninterrupted reference run.
			ref := New(prog, Config{Windowed: windowed})
			if _, err := ref.Run(); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Interrupted run: stop partway, checkpoint, serialize,
			// decode, restore into a fresh machine, finish.
			cut := ref.Stats.Insts / 2
			m := New(prog, Config{Windowed: windowed})
			if _, err := m.FastRun(cut); err != nil {
				t.Fatalf("fast-forward: %v", err)
			}
			ck := m.Checkpoint()
			var buf bytes.Buffer
			if err := ck.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			ck2, err := DecodeCheckpoint(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			a1, err := ck.ContentAddress()
			if err != nil {
				t.Fatal(err)
			}
			a2, err := ck2.ContentAddress()
			if err != nil {
				t.Fatal(err)
			}
			if a1 != a2 {
				t.Fatalf("content address changed across encode/decode: %s vs %s", a1, a2)
			}
			resumed, err := NewFromCheckpoint(prog, Config{Windowed: windowed}, ck2)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if _, err := resumed.Run(); err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			compareMachines(t, "resumed vs reference", ref, resumed, true)
		}
	}
}

// TestCheckpointValidation exercises the rejection paths: a checkpoint
// must not restore onto a different program or ABI mode, and a corrupted
// image must not decode.
func TestCheckpointValidation(t *testing.T) {
	progA, err := asm.Assemble(progen.FromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	progB, err := asm.Assemble(progen.FromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(progA, Config{})
	if _, err := m.FastRun(100); err != nil {
		t.Fatal(err)
	}
	ck := m.Checkpoint()

	if err := ck.Validate(progB, false); err == nil || !strings.Contains(err.Error(), "not this") {
		t.Fatalf("wrong program: got %v, want program-hash rejection", err)
	}
	if err := ck.Validate(progA, true); err == nil || !strings.Contains(err.Error(), "windowed") {
		t.Fatalf("wrong ABI: got %v, want ABI rejection", err)
	}
	if err := ck.Validate(progA, false); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Replace(buf.Bytes(), []byte(`"pc":`), []byte(`"pc":1`), 1)
	if _, err := DecodeCheckpoint(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt image: got %v, want checksum rejection", err)
	}
}
